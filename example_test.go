package tradeoff_test

import (
	"fmt"
	"log"

	"tradeoff"
)

// ExampleNewFramework runs the whole pipeline on a tiny instance: build
// the embedded benchmark system, generate a trace, evolve a front, and
// query the efficient region.
func ExampleNewFramework() {
	sys := tradeoff.RealSystem()
	trace, err := tradeoff.GenerateTrace(sys, tradeoff.TraceConfig{NumTasks: 40, Window: 300}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := tradeoff.NewFramework(sys, trace)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fw.Optimize(tradeoff.Options{
		Generations:    50,
		PopulationSize: 20,
		Seeds:          []tradeoff.Heuristic{tradeoff.MinEnergy},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Front) > 1)
	fmt.Println(res.Front[0].Energy <= res.Front[len(res.Front)-1].Energy)
	// Output:
	// true
	// true
}

// ExampleNewSystemBuilder models a custom two-tier environment.
func ExampleNewSystemBuilder() {
	b := tradeoff.NewSystemBuilder()
	cpu := b.MachineType("cpu-node", tradeoff.GeneralPurpose, 2)
	acc := b.MachineType("accelerator", tradeoff.SpecialPurpose, 1)
	train := b.TaskType("train", tradeoff.SpecialPurpose)
	etl := b.TaskType("etl", tradeoff.GeneralPurpose)
	b.Set(train, cpu, 600, 200)
	b.Set(train, acc, 60, 300)
	b.Set(etl, cpu, 120, 150)
	sys, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.NumMachines(), sys.NumTaskTypes())
	fmt.Println(sys.Capable(etl, acc))
	// Output:
	// 3 2
	// false
}

// ExampleAnalyzeUPE locates the knee of a hand-built front.
func ExampleAnalyzeUPE() {
	front := []tradeoff.FrontPoint{
		{Utility: 10, Energy: 1e6},
		{Utility: 40, Energy: 2e6},
		{Utility: 45, Energy: 4e6},
	}
	region, err := tradeoff.AnalyzeUPE(front, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peak at %.0f MJ\n", region.Peak.Energy/1e6)
	// Output:
	// peak at 2 MJ
}
