package tradeoff_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"tradeoff/internal/experiments"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/obs"
	"tradeoff/internal/rng"
)

// TestObserverBitIdenticalAcrossDataSets is the acceptance test for the
// telemetry layer's central invariant: attaching the full observer
// chain (metrics registry + JSONL trace writer) must leave every data
// set's evolution bit-for-bit unchanged — same allocations, objectives,
// ranks, and crowding, in the same order.
func TestObserverBitIdenticalAcrossDataSets(t *testing.T) {
	for _, tc := range []struct {
		dsNum, pop, gens int
	}{
		{1, 20, 10},
		{2, 16, 5},
		{3, 12, 3},
	} {
		ds, err := experiments.ByNumber(tc.dsNum, 1)
		if err != nil {
			t.Fatal(err)
		}
		newEngine := func() *nsga2.Engine {
			eng, err := nsga2.New(ds.Evaluator, nsga2.Config{PopulationSize: tc.pop}, rng.New(7))
			if err != nil {
				t.Fatal(err)
			}
			return eng
		}
		plain := newEngine()
		observed := newEngine()
		observed.SetObserver(obs.Combine(
			obs.NewMetrics(obs.NewRegistry()),
			obs.NewTraceWriter(io.Discard, nil),
		))
		plain.Run(tc.gens)
		observed.Run(tc.gens)

		pp, op := plain.Population(), observed.Population()
		if len(pp) != len(op) {
			t.Fatalf("data set %d: population sizes %d vs %d", tc.dsNum, len(pp), len(op))
		}
		for i := range pp {
			a, b := pp[i], op[i]
			if a.Rank != b.Rank || a.Crowding != b.Crowding {
				t.Fatalf("data set %d individual %d: rank/crowding diverged with observer", tc.dsNum, i)
			}
			for m := range a.Objectives {
				if a.Objectives[m] != b.Objectives[m] {
					t.Fatalf("data set %d individual %d objective %d: %v vs %v",
						tc.dsNum, i, m, a.Objectives[m], b.Objectives[m])
				}
			}
			for g := range a.Alloc.Machine {
				if a.Alloc.Machine[g] != b.Alloc.Machine[g] || a.Alloc.Order[g] != b.Alloc.Order[g] {
					t.Fatalf("data set %d individual %d gene %d diverged with observer", tc.dsNum, i, g)
				}
			}
		}
	}
}

// TestTraceReproducibleAndValid runs the same evolution twice with an
// injected clock and checks the JSONL traces are byte-identical and
// pass the schema validator.
func TestTraceReproducibleAndValid(t *testing.T) {
	ds, err := experiments.ByNumber(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	runTrace := func() []byte {
		var buf bytes.Buffer
		var ticks int64
		clock := func() int64 { ticks += 1000; return ticks }
		eng, err := nsga2.New(ds.Evaluator, nsga2.Config{PopulationSize: 16}, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		tw := obs.NewTraceWriter(&buf, clock)
		eng.SetObserver(obs.Labeled{Label: "ds1/test", Next: tw})
		eng.Run(8)
		if err := tw.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := runTrace(), runTrace()
	if !bytes.Equal(a, b) {
		t.Fatal("traces differ across identical runs with an injected clock")
	}
	sum, err := obs.ValidateTrace(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("trace fails validation: %v", err)
	}
	if sum.Generations != 8 {
		t.Fatalf("trace holds %d generation records, want 8", sum.Generations)
	}
	if lines := strings.Count(string(a), "\n"); lines != 8 {
		t.Fatalf("trace holds %d lines, want 8", lines)
	}
}
