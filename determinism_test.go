package tradeoff_test

import (
	"testing"

	"tradeoff/internal/experiments"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/rng"
)

// TestWorkerCountInvariance is the determinism regression test for the
// parallel variation phase: every offspring pair draws from its own rng
// stream derived from the generation counter, so two engines that differ
// only in worker count must evolve bit-identical populations — same
// allocations, objectives, ranks, and crowding, in the same order.
func TestWorkerCountInvariance(t *testing.T) {
	for _, dsNum := range []int{1, 2} {
		ds, err := experiments.ByNumber(dsNum, 1)
		if err != nil {
			t.Fatal(err)
		}
		newEngine := func(workers int) *nsga2.Engine {
			eng, err := nsga2.New(ds.Evaluator, nsga2.Config{
				PopulationSize: 40,
				Workers:        workers,
			}, rng.New(7))
			if err != nil {
				t.Fatal(err)
			}
			return eng
		}
		serial := newEngine(1)
		parallel := newEngine(8)
		serial.Run(25)
		parallel.Run(25)

		sp, pp := serial.Population(), parallel.Population()
		if len(sp) != len(pp) {
			t.Fatalf("data set %d: population sizes %d vs %d", dsNum, len(sp), len(pp))
		}
		for i := range sp {
			a, b := sp[i], pp[i]
			if a.Rank != b.Rank || a.Crowding != b.Crowding {
				t.Fatalf("data set %d individual %d: rank/crowding (%d, %v) vs (%d, %v)",
					dsNum, i, a.Rank, a.Crowding, b.Rank, b.Crowding)
			}
			for m := range a.Objectives {
				if a.Objectives[m] != b.Objectives[m] {
					t.Fatalf("data set %d individual %d objective %d: %v vs %v",
						dsNum, i, m, a.Objectives[m], b.Objectives[m])
				}
			}
			for g := range a.Alloc.Machine {
				if a.Alloc.Machine[g] != b.Alloc.Machine[g] || a.Alloc.Order[g] != b.Alloc.Order[g] {
					t.Fatalf("data set %d individual %d gene %d: (%d,%d) vs (%d,%d)",
						dsNum, i, g, a.Alloc.Machine[g], a.Alloc.Order[g],
						b.Alloc.Machine[g], b.Alloc.Order[g])
				}
			}
		}
	}
}
