module tradeoff

go 1.22
