package datagen

import (
	"testing"

	"tradeoff/internal/data"
)

func TestInstanceDeterministicAndScaled(t *testing.T) {
	base := data.RealSystem()
	sys1, tr1, err := Instance(base, Default(), 500, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.NumTasks() != 500 {
		t.Fatalf("trace has %d tasks, want 500", tr1.NumTasks())
	}
	// Zero window picks the data-set-2 arrival density: 0.9 s per task.
	if tr1.Window != 450 {
		t.Fatalf("default window %v, want 450", tr1.Window)
	}
	sys2, tr2, err := Instance(base, Default(), 500, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sys1.NumMachines() != sys2.NumMachines() || sys1.ETC.At(10, 3) != sys2.ETC.At(10, 3) {
		t.Fatal("instance system not deterministic in seed")
	}
	// Task holds a TUF pointer, so compare the value fields.
	a, b := tr1.Tasks[499], tr2.Tasks[499]
	if len(tr1.Tasks) != len(tr2.Tasks) || a.Type != b.Type || a.Arrival != b.Arrival {
		t.Fatal("instance trace not deterministic in seed")
	}
	// An explicit window overrides the density default.
	_, tr3, err := Instance(base, Default(), 100, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tr3.Window != 60 {
		t.Fatalf("explicit window %v, want 60", tr3.Window)
	}
}

func TestInstanceValidation(t *testing.T) {
	if _, _, err := Instance(data.RealSystem(), Default(), 0, 0, 1); err == nil {
		t.Fatal("zero tasks accepted")
	}
}
