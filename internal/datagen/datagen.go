// Package datagen implements the paper's §III-D2 synthetic data creation
// method: enlarging a real ETC/EPC data set while preserving its
// heterogeneity characteristics (coefficient of variation, skewness,
// kurtosis).
//
// The pipeline, applied identically to the ETC and the EPC matrix:
//
//  1. Compute the row average (across machine types) of every real task
//     type, and the mean/variance/skewness/kurtosis (mvsk) of those row
//     averages.
//  2. Build a Gram-Charlier expansion PDF from the mvsk values and sample
//     it to create the row averages of new task types.
//  3. Per machine type, compute the task-type execution-time ratios
//     (entry / row average) of the real task types, fit a Gram-Charlier
//     PDF to their mvsk, and sample a ratio for each new task type; the
//     new entry is ratio × new row average.
//  4. Append special-purpose machine types: each accelerates a small
//     number of task types at Speedup× the task's average execution time
//     (ETC = row average / Speedup); its EPC is the task's average power
//     across machines — explicitly not divided by the speedup.
package datagen

import (
	"fmt"
	"math"

	"tradeoff/internal/hcs"
	"tradeoff/internal/rng"
	"tradeoff/internal/stats"
)

// Config parameterizes Enlarge.
type Config struct {
	// NewTaskTypes is the number of synthetic task types to append.
	NewTaskTypes int
	// SpecialMachineTypes is the number of special-purpose machine types
	// to append.
	SpecialMachineTypes int
	// MinTasksPerSpecial and MaxTasksPerSpecial bound how many task types
	// each special-purpose machine type accelerates (paper: two to three).
	MinTasksPerSpecial, MaxTasksPerSpecial int
	// Speedup divides the average execution time for accelerated task
	// types (paper: ~10x).
	Speedup float64
	// GeneralCounts gives machine-instance counts per base machine type;
	// nil means one instance each.
	GeneralCounts []int
	// SpecialCounts gives machine-instance counts per special-purpose
	// machine type; nil means one instance each.
	SpecialCounts []int
	// PowerClasses optionally assigns each synthetic task type an energy
	// character (§III-D: "computationally intensive tasks, memory
	// intensive tasks, or I/O intensive tasks"): a class is drawn per new
	// task type by weight and its multiplier scales the sampled EPC row.
	// Nil disables class scaling.
	PowerClasses []PowerClass
}

// PowerClass is one task energy character for Config.PowerClasses.
type PowerClass struct {
	Name string
	// Multiplier scales the sampled power row (e.g. compute-bound 1.2,
	// memory-bound 1.0, I/O-bound 0.7).
	Multiplier float64
	// Weight is the relative frequency of the class.
	Weight float64
}

// DefaultPowerClasses returns a three-class energy-character mix.
func DefaultPowerClasses() []PowerClass {
	return []PowerClass{
		{Name: "compute-intensive", Multiplier: 1.2, Weight: 0.4},
		{Name: "memory-intensive", Multiplier: 1.0, Weight: 0.4},
		{Name: "io-intensive", Multiplier: 0.7, Weight: 0.2},
	}
}

// Default returns the configuration of the paper's data sets 2 and 3:
// 25 new task types (30 total), 4 special-purpose machine types
// accelerating 2–3 task types each at 10x, and the Table III machine
// counts (30 machines over 13 machine types).
func Default() Config {
	return Config{
		NewTaskTypes:        25,
		SpecialMachineTypes: 4,
		MinTasksPerSpecial:  2,
		MaxTasksPerSpecial:  3,
		Speedup:             10,
		GeneralCounts:       []int{2, 3, 3, 3, 2, 4, 2, 5, 2},
		SpecialCounts:       []int{1, 1, 1, 1},
	}
}

func (c *Config) validate(base *hcs.System) error {
	if c.NewTaskTypes < 0 {
		return fmt.Errorf("datagen: NewTaskTypes %d, want >= 0", c.NewTaskTypes)
	}
	if c.SpecialMachineTypes < 0 {
		return fmt.Errorf("datagen: SpecialMachineTypes %d, want >= 0", c.SpecialMachineTypes)
	}
	if c.SpecialMachineTypes > 0 {
		if c.MinTasksPerSpecial < 1 || c.MaxTasksPerSpecial < c.MinTasksPerSpecial {
			return fmt.Errorf("datagen: tasks-per-special range [%d,%d] invalid", c.MinTasksPerSpecial, c.MaxTasksPerSpecial)
		}
		if !(c.Speedup > 0) {
			return fmt.Errorf("datagen: speedup %v, want > 0", c.Speedup)
		}
		total := base.NumTaskTypes() + c.NewTaskTypes
		if c.SpecialMachineTypes*c.MaxTasksPerSpecial > total {
			return fmt.Errorf("datagen: %d special machines × %d tasks exceed %d task types",
				c.SpecialMachineTypes, c.MaxTasksPerSpecial, total)
		}
	}
	if c.GeneralCounts != nil && len(c.GeneralCounts) != base.NumMachineTypes() {
		return fmt.Errorf("datagen: %d general counts for %d base machine types", len(c.GeneralCounts), base.NumMachineTypes())
	}
	if c.SpecialCounts != nil && len(c.SpecialCounts) != c.SpecialMachineTypes {
		return fmt.Errorf("datagen: %d special counts for %d special machine types", len(c.SpecialCounts), c.SpecialMachineTypes)
	}
	return nil
}

// sampler produces positive samples approximately matching a target
// moment set; it degrades to a constant for degenerate targets.
type sampler struct {
	gc       *stats.GramCharlier
	constant float64
}

func newSampler(values []float64) (*sampler, error) {
	m, err := stats.SampleMoments(values)
	if err != nil {
		return nil, err
	}
	if m.Variance <= 0 {
		return &sampler{constant: m.Mean}, nil
	}
	gc, err := stats.NewGramCharlier(m)
	if err != nil {
		return nil, err
	}
	return &sampler{gc: gc}, nil
}

func (s *sampler) sample(src *rng.Source) float64 {
	if s.gc == nil {
		return s.constant
	}
	return s.gc.SamplePositive(src)
}

// Enlarge applies the §III-D2 pipeline to a base system (typically
// data.RealSystem()). The base system's machine types and task types are
// preserved as the leading rows/columns of the result; synthetic task
// types and special-purpose machine types are appended. The result is
// validated before being returned. Enlarge is deterministic in src.
func Enlarge(base *hcs.System, cfg Config, src *rng.Source) (*hcs.System, error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("datagen: invalid base system: %w", err)
	}
	for _, mt := range base.MachineTypes {
		if mt.Category != hcs.GeneralPurpose {
			return nil, fmt.Errorf("datagen: base system must be all general-purpose; %q is not", mt.Name)
		}
	}
	if err := cfg.validate(base); err != nil {
		return nil, err
	}

	nBaseTasks := base.NumTaskTypes()
	nBaseMachines := base.NumMachineTypes()
	nTasks := nBaseTasks + cfg.NewTaskTypes
	nMachines := nBaseMachines + cfg.SpecialMachineTypes

	// Grow ETC, then EPC, with the identical procedure.
	etcGrown, err := growMatrix(base.ETC, cfg.NewTaskTypes, src)
	if err != nil {
		return nil, fmt.Errorf("datagen: growing ETC: %w", err)
	}
	epcGrown, err := growMatrix(base.EPC, cfg.NewTaskTypes, src)
	if err != nil {
		return nil, fmt.Errorf("datagen: growing EPC: %w", err)
	}
	if len(cfg.PowerClasses) > 0 {
		weights := make([]float64, len(cfg.PowerClasses))
		for i, pc := range cfg.PowerClasses {
			if !(pc.Multiplier > 0) {
				return nil, fmt.Errorf("datagen: power class %q multiplier %v, want > 0", pc.Name, pc.Multiplier)
			}
			weights[i] = pc.Weight
		}
		for t := nBaseTasks; t < nTasks; t++ {
			mult := cfg.PowerClasses[src.Pick(weights)].Multiplier
			for mu := range epcGrown[t] {
				epcGrown[t][mu] *= mult
			}
		}
	}

	// Choose the accelerated task types: distinct across all
	// special-purpose machine types (each special task type has one
	// accelerated machine type, §III-C).
	taskCategories := make([]hcs.Category, nTasks)
	acceleratedBy := make([]int, nTasks) // -1 = none
	for i := range acceleratedBy {
		acceleratedBy[i] = -1
	}
	pool := src.Perm(nTasks)
	poolIdx := 0
	specialTasks := make([][]int, cfg.SpecialMachineTypes)
	for sm := 0; sm < cfg.SpecialMachineTypes; sm++ {
		k := cfg.MinTasksPerSpecial
		if cfg.MaxTasksPerSpecial > cfg.MinTasksPerSpecial {
			k += src.Intn(cfg.MaxTasksPerSpecial - cfg.MinTasksPerSpecial + 1)
		}
		for j := 0; j < k && poolIdx < len(pool); j++ {
			tt := pool[poolIdx]
			poolIdx++
			specialTasks[sm] = append(specialTasks[sm], tt)
			taskCategories[tt] = hcs.SpecialPurpose
			acceleratedBy[tt] = nBaseMachines + sm
		}
	}

	// Assemble the full matrices.
	etc := hcs.NewMatrix(nTasks, nMachines)
	epc := hcs.NewMatrix(nTasks, nMachines)
	etcRowAvg := stats.RowAverages(etcGrown, hcs.Incapable)
	epcRowAvg := stats.RowAverages(epcGrown, hcs.Incapable)
	for t := 0; t < nTasks; t++ {
		for mu := 0; mu < nBaseMachines; mu++ {
			etc.Set(t, mu, etcGrown[t][mu])
			epc.Set(t, mu, epcGrown[t][mu])
		}
		for sm := 0; sm < cfg.SpecialMachineTypes; sm++ {
			mu := nBaseMachines + sm
			if acceleratedBy[t] == mu {
				etc.Set(t, mu, etcRowAvg[t]/cfg.Speedup)
				epc.Set(t, mu, epcRowAvg[t]) // not divided by the speedup
			} else {
				etc.Set(t, mu, hcs.Incapable)
				epc.Set(t, mu, hcs.Incapable)
			}
		}
	}

	out := &hcs.System{ETC: etc, EPC: epc}
	out.MachineTypes = append(out.MachineTypes, base.MachineTypes...)
	for sm := 0; sm < cfg.SpecialMachineTypes; sm++ {
		out.MachineTypes = append(out.MachineTypes, hcs.MachineType{
			Name:     fmt.Sprintf("Special-purpose machine %c", 'A'+sm),
			Category: hcs.SpecialPurpose,
		})
	}
	out.TaskTypes = append(out.TaskTypes, base.TaskTypes...)
	for i := 0; i < cfg.NewTaskTypes; i++ {
		out.TaskTypes = append(out.TaskTypes, hcs.TaskType{Name: fmt.Sprintf("synthetic-task-%02d", i+1)})
	}
	for t := 0; t < nTasks; t++ {
		out.TaskTypes[t].Category = taskCategories[t]
	}

	// Machine instances: special-purpose first (Table III order), then
	// the general-purpose suite.
	id := 0
	addInstances := func(mu, count int) {
		for k := 0; k < count; k++ {
			out.Machines = append(out.Machines, hcs.Machine{ID: id, Type: mu})
			id++
		}
	}
	for sm := 0; sm < cfg.SpecialMachineTypes; sm++ {
		count := 1
		if cfg.SpecialCounts != nil {
			count = cfg.SpecialCounts[sm]
		}
		addInstances(nBaseMachines+sm, count)
	}
	for mu := 0; mu < nBaseMachines; mu++ {
		count := 1
		if cfg.GeneralCounts != nil {
			count = cfg.GeneralCounts[mu]
		}
		addInstances(mu, count)
	}

	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("datagen: enlarged system invalid: %w", err)
	}
	return out, nil
}

// growMatrix appends newRows synthetic task-type rows to a base matrix
// following steps 1–3 of the pipeline, returning the full matrix as row
// slices (base rows first, copied).
func growMatrix(base hcs.Matrix, newRows int, src *rng.Source) ([][]float64, error) {
	rows := base.RowsCopy()
	if newRows == 0 {
		return rows, nil
	}
	// Step 1: row averages of the real task types and their moments.
	rowAvg := stats.RowAverages(rows, hcs.Incapable)
	avgSampler, err := newSampler(rowAvg)
	if err != nil {
		return nil, fmt.Errorf("row averages: %w", err)
	}
	// Step 3 preparation: per machine type, fit the ratio distribution.
	ratioSamplers := make([]*sampler, base.Cols())
	for mu := 0; mu < base.Cols(); mu++ {
		ratios := stats.ColumnRatios(rows, rowAvg, mu, hcs.Incapable)
		s, err := newSampler(ratios)
		if err != nil {
			return nil, fmt.Errorf("machine %d ratios: %w", mu, err)
		}
		ratioSamplers[mu] = s
	}
	// Step 2 + 3: sample new rows.
	for r := 0; r < newRows; r++ {
		avg := avgSampler.sample(src)
		row := make([]float64, base.Cols())
		for mu := range row {
			ratio := ratioSamplers[mu].sample(src)
			v := ratio * avg
			if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
				// Physically impossible sample; fall back to the average.
				v = avg
			}
			row[mu] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// HeterogeneityReport compares the row-average heterogeneity of the real
// (leading) task types against the synthetic ones in an enlarged matrix.
type HeterogeneityReport struct {
	Real      stats.Heterogeneity
	Synthetic stats.Heterogeneity
	Distance  float64
}

// CompareHeterogeneity measures how well the first nReal rows' row
// averages match the remaining rows' row averages in heterogeneity.
func CompareHeterogeneity(m hcs.Matrix, nReal int) (HeterogeneityReport, error) {
	if nReal <= 0 || nReal >= m.Rows() {
		return HeterogeneityReport{}, fmt.Errorf("datagen: nReal %d outside (0, %d)", nReal, m.Rows())
	}
	rows := m.RowsCopy()
	avg := stats.RowAverages(rows, hcs.Incapable)
	real, err := stats.MeasureHeterogeneity(avg[:nReal])
	if err != nil {
		return HeterogeneityReport{}, err
	}
	synth, err := stats.MeasureHeterogeneity(avg[nReal:])
	if err != nil {
		return HeterogeneityReport{}, err
	}
	return HeterogeneityReport{Real: real, Synthetic: synth, Distance: real.Distance(synth)}, nil
}
