package datagen

import (
	"math"
	"testing"

	"tradeoff/internal/data"
	"tradeoff/internal/hcs"
	"tradeoff/internal/rng"
	"tradeoff/internal/stats"
)

func enlargeDefault(t *testing.T, seed uint64) *hcs.System {
	t.Helper()
	sys, err := Enlarge(data.RealSystem(), Default(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestEnlargeDefaultDimensions(t *testing.T) {
	sys := enlargeDefault(t, 1)
	if sys.NumTaskTypes() != 30 {
		t.Fatalf("task types = %d, want 30", sys.NumTaskTypes())
	}
	if sys.NumMachineTypes() != 13 {
		t.Fatalf("machine types = %d, want 13", sys.NumMachineTypes())
	}
	if sys.NumMachines() != data.TotalMachinesTableIII {
		t.Fatalf("machines = %d, want %d", sys.NumMachines(), data.TotalMachinesTableIII)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEnlargePreservesBaseData(t *testing.T) {
	base := data.RealSystem()
	sys := enlargeDefault(t, 2)
	for tt := 0; tt < base.NumTaskTypes(); tt++ {
		for mu := 0; mu < base.NumMachineTypes(); mu++ {
			if sys.ETC.At(tt, mu) != base.ETC.At(tt, mu) {
				t.Fatalf("real ETC[%d][%d] changed", tt, mu)
			}
			if sys.EPC.At(tt, mu) != base.EPC.At(tt, mu) {
				t.Fatalf("real EPC[%d][%d] changed", tt, mu)
			}
		}
	}
	for mu := 0; mu < base.NumMachineTypes(); mu++ {
		if sys.MachineTypes[mu].Name != base.MachineTypes[mu].Name {
			t.Fatalf("machine type %d renamed", mu)
		}
	}
}

func TestEnlargeDeterministic(t *testing.T) {
	a := enlargeDefault(t, 3)
	b := enlargeDefault(t, 3)
	for tt := 0; tt < a.NumTaskTypes(); tt++ {
		for mu := 0; mu < a.NumMachineTypes(); mu++ {
			x, y := a.ETC.At(tt, mu), b.ETC.At(tt, mu)
			if x != y && !(math.IsInf(x, 1) && math.IsInf(y, 1)) {
				t.Fatalf("not deterministic at ETC[%d][%d]", tt, mu)
			}
		}
	}
}

func TestSpecialPurposeStructure(t *testing.T) {
	sys := enlargeDefault(t, 4)
	nBase := 9
	for sm := nBase; sm < sys.NumMachineTypes(); sm++ {
		if sys.MachineTypes[sm].Category != hcs.SpecialPurpose {
			t.Fatalf("machine type %d not special-purpose", sm)
		}
		capable := 0
		for tt := 0; tt < sys.NumTaskTypes(); tt++ {
			if sys.Capable(tt, sm) {
				capable++
				if sys.TaskTypes[tt].Category != hcs.SpecialPurpose {
					t.Fatalf("task %d accelerated but not special-purpose category", tt)
				}
			}
		}
		if capable < 2 || capable > 3 {
			t.Fatalf("special machine %d accelerates %d task types, want 2-3", sm, capable)
		}
	}
}

func TestSpecialPurposeSpeedupAndPower(t *testing.T) {
	sys := enlargeDefault(t, 5)
	nBase := 9
	etcRows := make([][]float64, sys.NumTaskTypes())
	epcRows := make([][]float64, sys.NumTaskTypes())
	for tt := 0; tt < sys.NumTaskTypes(); tt++ {
		etcRows[tt] = sys.ETC.Row(tt)[:nBase] // general columns only
		epcRows[tt] = sys.EPC.Row(tt)[:nBase]
	}
	etcAvg := stats.RowAverages(etcRows, hcs.Incapable)
	epcAvg := stats.RowAverages(epcRows, hcs.Incapable)
	for sm := nBase; sm < sys.NumMachineTypes(); sm++ {
		for tt := 0; tt < sys.NumTaskTypes(); tt++ {
			if !sys.Capable(tt, sm) {
				continue
			}
			wantETC := etcAvg[tt] / 10
			if math.Abs(sys.ETC.At(tt, sm)-wantETC) > 1e-9*wantETC {
				t.Fatalf("special ETC[%d][%d] = %v, want %v", tt, sm, sys.ETC.At(tt, sm), wantETC)
			}
			if math.Abs(sys.EPC.At(tt, sm)-epcAvg[tt]) > 1e-9*epcAvg[tt] {
				t.Fatalf("special EPC[%d][%d] = %v, want average power %v (not divided by 10)",
					tt, sm, sys.EPC.At(tt, sm), epcAvg[tt])
			}
		}
	}
}

func TestEachSpecialTaskHasOneAcceleratedMachine(t *testing.T) {
	sys := enlargeDefault(t, 6)
	nBase := 9
	for tt := 0; tt < sys.NumTaskTypes(); tt++ {
		accel := 0
		for sm := nBase; sm < sys.NumMachineTypes(); sm++ {
			if sys.Capable(tt, sm) {
				accel++
			}
		}
		switch sys.TaskTypes[tt].Category {
		case hcs.SpecialPurpose:
			if accel != 1 {
				t.Fatalf("special task %d accelerated by %d machines, want 1", tt, accel)
			}
		case hcs.GeneralPurpose:
			if accel != 0 {
				t.Fatalf("general task %d accelerated by %d machines, want 0", tt, accel)
			}
		}
	}
}

func TestSyntheticEntriesPositive(t *testing.T) {
	sys := enlargeDefault(t, 7)
	for tt := 0; tt < sys.NumTaskTypes(); tt++ {
		for mu := 0; mu < sys.NumMachineTypes(); mu++ {
			etc := sys.ETC.At(tt, mu)
			if math.IsInf(etc, 1) {
				continue
			}
			if !(etc > 0) {
				t.Fatalf("ETC[%d][%d] = %v", tt, mu, etc)
			}
			if !(sys.EPC.At(tt, mu) > 0) {
				t.Fatalf("EPC[%d][%d] = %v", tt, mu, sys.EPC.At(tt, mu))
			}
		}
	}
}

func TestHeterogeneityPreservedLargeSample(t *testing.T) {
	// With many synthetic task types, the synthetic row-average
	// heterogeneity must approach the real one (the paper's core claim
	// for the data-creation method). Skew/kurtosis of a 5-point base are
	// noisy, so tolerances are loose but meaningful.
	cfg := Default()
	cfg.NewTaskTypes = 2000
	cfg.SpecialMachineTypes = 0
	cfg.GeneralCounts = nil
	cfg.SpecialCounts = nil
	sys, err := Enlarge(data.RealSystem(), cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CompareHeterogeneity(sys.ETC, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Real.CV-rep.Synthetic.CV) > 0.25*math.Abs(rep.Real.CV) {
		t.Errorf("CV drift: real %v synthetic %v", rep.Real.CV, rep.Synthetic.CV)
	}
	if math.Abs(rep.Real.Skewness-rep.Synthetic.Skewness) > 0.6 {
		t.Errorf("skewness drift: real %v synthetic %v", rep.Real.Skewness, rep.Synthetic.Skewness)
	}
	if math.Abs(rep.Real.Kurtosis-rep.Synthetic.Kurtosis) > 1.5 {
		t.Errorf("kurtosis drift: real %v synthetic %v", rep.Real.Kurtosis, rep.Synthetic.Kurtosis)
	}
}

func TestRelativeMachinePerformancePreserved(t *testing.T) {
	// Fast machines (ratio < 1 on real tasks) should stay mostly fast on
	// synthetic tasks: compare mean ratios.
	cfg := Default()
	cfg.NewTaskTypes = 500
	cfg.SpecialMachineTypes = 0
	cfg.GeneralCounts = nil
	cfg.SpecialCounts = nil
	sys, err := Enlarge(data.RealSystem(), cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	rows := sys.ETC.RowsCopy()
	avg := stats.RowAverages(rows, hcs.Incapable)
	meanRatio := func(mu, lo, hi int) float64 {
		var sum float64
		var n int
		for tt := lo; tt < hi; tt++ {
			sum += rows[tt][mu] / avg[tt]
			n++
		}
		return sum / float64(n)
	}
	for mu := 0; mu < 9; mu++ {
		real := meanRatio(mu, 0, 5)
		synth := meanRatio(mu, 5, sys.NumTaskTypes())
		if math.Abs(real-synth) > 0.25 {
			t.Errorf("machine %d mean ratio drift: real %v synthetic %v", mu, real, synth)
		}
	}
}

func TestEnlargeConfigValidation(t *testing.T) {
	base := data.RealSystem()
	src := rng.New(1)
	bad := []Config{
		{NewTaskTypes: -1},
		{SpecialMachineTypes: -1},
		{SpecialMachineTypes: 1, MinTasksPerSpecial: 0, MaxTasksPerSpecial: 2, Speedup: 10},
		{SpecialMachineTypes: 1, MinTasksPerSpecial: 3, MaxTasksPerSpecial: 2, Speedup: 10},
		{SpecialMachineTypes: 1, MinTasksPerSpecial: 1, MaxTasksPerSpecial: 1, Speedup: 0},
		{SpecialMachineTypes: 4, MinTasksPerSpecial: 2, MaxTasksPerSpecial: 3, Speedup: 10, NewTaskTypes: 0, GeneralCounts: []int{1}},
		{NewTaskTypes: 1, SpecialCounts: []int{1}},
		{SpecialMachineTypes: 10, MinTasksPerSpecial: 2, MaxTasksPerSpecial: 3, Speedup: 10}, // 30 > 5 tasks
	}
	for i, cfg := range bad {
		if _, err := Enlarge(base, cfg, src); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEnlargeRejectsSpecialBase(t *testing.T) {
	sys := enlargeDefault(t, 10) // already has special machines
	if _, err := Enlarge(sys, Default(), rng.New(1)); err == nil {
		t.Fatal("special-purpose base accepted")
	}
}

func TestEnlargeZeroGrowthIsIdentityPlusInstances(t *testing.T) {
	base := data.RealSystem()
	sys, err := Enlarge(base, Config{}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumTaskTypes() != base.NumTaskTypes() || sys.NumMachineTypes() != base.NumMachineTypes() {
		t.Fatal("zero-growth config changed type counts")
	}
}

func TestCompareHeterogeneityErrors(t *testing.T) {
	sys := enlargeDefault(t, 12)
	if _, err := CompareHeterogeneity(sys.ETC, 0); err == nil {
		t.Error("nReal=0 accepted")
	}
	if _, err := CompareHeterogeneity(sys.ETC, sys.NumTaskTypes()); err == nil {
		t.Error("nReal=rows accepted")
	}
}

func BenchmarkEnlargeDefault(b *testing.B) {
	base := data.RealSystem()
	cfg := Default()
	for i := 0; i < b.N; i++ {
		if _, err := Enlarge(base, cfg, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPowerClassesScaleEPC(t *testing.T) {
	// Same seed with and without classes: class-scaled EPC rows must be
	// element-wise scaled versions of the unscaled ones.
	cfg := Default()
	cfg.SpecialMachineTypes = 0
	cfg.GeneralCounts = nil
	cfg.SpecialCounts = nil
	cfg.NewTaskTypes = 20
	plain, err := Enlarge(data.RealSystem(), cfg, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	cfg.PowerClasses = DefaultPowerClasses()
	classed, err := Enlarge(data.RealSystem(), cfg, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	// ETC identical (classes touch EPC only)... note: class draws consume
	// RNG after both matrices grew, so growth samples match.
	for tt := 0; tt < plain.NumTaskTypes(); tt++ {
		for mu := 0; mu < plain.NumMachineTypes(); mu++ {
			if plain.ETC.At(tt, mu) != classed.ETC.At(tt, mu) {
				t.Fatalf("ETC changed by power classes at [%d][%d]", tt, mu)
			}
		}
	}
	// Each synthetic EPC row is scaled by one of the class multipliers.
	valid := map[float64]bool{1.2: true, 1.0: true, 0.7: true}
	for tt := 5; tt < classed.NumTaskTypes(); tt++ {
		ratio := classed.EPC.At(tt, 0) / plain.EPC.At(tt, 0)
		found := false
		for m := range valid {
			if math.Abs(ratio-m) < 1e-9 {
				found = true
			}
		}
		if !found {
			t.Fatalf("task %d EPC ratio %v not a class multiplier", tt, ratio)
		}
		// Whole row scaled consistently.
		for mu := 1; mu < 9; mu++ {
			r2 := classed.EPC.At(tt, mu) / plain.EPC.At(tt, mu)
			if math.Abs(r2-ratio) > 1e-9 {
				t.Fatalf("task %d row scaled inconsistently", tt)
			}
		}
	}
	// Real task types untouched.
	for tt := 0; tt < 5; tt++ {
		if classed.EPC.At(tt, 0) != plain.EPC.At(tt, 0) {
			t.Fatal("real task EPC scaled")
		}
	}
}

func TestPowerClassesValidation(t *testing.T) {
	cfg := Default()
	cfg.SpecialMachineTypes = 0
	cfg.GeneralCounts = nil
	cfg.SpecialCounts = nil
	cfg.PowerClasses = []PowerClass{{Name: "bad", Multiplier: 0, Weight: 1}}
	if _, err := Enlarge(data.RealSystem(), cfg, rng.New(1)); err == nil {
		t.Fatal("zero multiplier accepted")
	}
}
