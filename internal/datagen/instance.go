package datagen

import (
	"fmt"

	"tradeoff/internal/hcs"
	"tradeoff/internal/rng"
	"tradeoff/internal/workload"
)

// Instance synthesizes a complete scale instance: the base system
// enlarged per cfg with the §III-D2 mvsk-preserving pipeline, plus an
// n-task workload trace over window seconds. A zero window picks a
// task-count-proportional default keeping the paper's data-set-2
// arrival density (1000 tasks over 900 s), so 50k/200k/1M-task
// instances stay comparably loaded rather than compressing arrivals.
//
// Everything is deterministic in seed, using the repository's fixed
// stream split: stream (seed, 2) enlarges the system (the same stream
// experiments.DataSet2 uses) and stream (seed, 10) generates the trace
// (the same stream the tradeoff command uses when regenerating a trace
// for a loaded system file) — so an instance written to disk can be
// reproduced byte for byte from its seed alone.
func Instance(base *hcs.System, cfg Config, tasks int, window float64, seed uint64) (*hcs.System, *workload.Trace, error) {
	if tasks < 1 {
		return nil, nil, fmt.Errorf("datagen: instance needs tasks >= 1, got %d", tasks)
	}
	if window == 0 {
		window = 0.9 * float64(tasks)
	}
	sys, err := Enlarge(base, cfg, rng.NewStream(seed, 2))
	if err != nil {
		return nil, nil, fmt.Errorf("datagen: enlarging instance system: %w", err)
	}
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: tasks, Window: window}, rng.NewStream(seed, 10))
	if err != nil {
		return nil, nil, fmt.Errorf("datagen: generating instance trace: %w", err)
	}
	return sys, tr, nil
}
