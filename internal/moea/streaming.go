package moea

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// spillRecSize is the fixed width of one spilled archive record: two
// int64 ε-box coordinates, two IEEE-754 objective words, and one int64
// payload, all little-endian. Fixed-width records keep spill runs
// seekable and make the on-disk size an exact linear function of the
// point count.
const spillRecSize = 40

// spillRun locates one sorted run inside the spill file.
type spillRun struct {
	off   int64
	count int64
}

// StreamingArchive maintains a bi-objective ε-dominance archive over
// point streams too large to hold one archive's worth of state per
// point in memory. Points are folded into an in-memory staircase
// segment (a NewEpsilonArchive); whenever the segment reaches the
// budget it is spilled to a temp file as one sorted run of fixed-width
// records and restarted empty. Finalize k-way merges the runs with
// box-dominance dedup, reproducing — exactly, duel-for-duel — the front
// a single unbounded ε-archive would have produced from the same stream
// (see DESIGN.md §15 for the associativity argument). Memory is bounded
// by O(budget + runs), independent of the stream length.
//
// The archive is 2-D only: the spill format relies on the staircase
// fast path keeping segments sorted by box coordinate. Payloads are
// fixed-width int64 values (typically indices into caller-side state)
// so they survive the disk round trip.
//
// A StreamingArchive is not safe for concurrent use.
type StreamingArchive struct {
	space  Space
	eps    []float64
	budget int
	dir    string

	seg  *Archive
	file *os.File
	runs []spillRun
	next int64  // next spill write offset
	buf  []byte // reusable spill encode buffer

	err      error
	done     bool
	points   [][]float64 // set by Finalize, improving objective-0 order
	payloads []int64
}

// NewStreamingArchive returns an empty streaming ε-archive over a
// bi-objective space. budget is the maximum in-memory segment size
// (points) before a spill; eps follows NewEpsilonArchive. dir is the
// directory for the spill file ("" selects the system temp directory);
// the file is created lazily on first spill and removed by Finalize or
// Close.
func NewStreamingArchive(space Space, eps []float64, budget int, dir string) *StreamingArchive {
	if space.Dim() != 2 {
		panic("moea: streaming archive needs a bi-objective space (staircase spill order)")
	}
	if budget < 1 {
		panic("moea: streaming archive needs budget >= 1")
	}
	return &StreamingArchive{
		space:  space,
		eps:    append([]float64(nil), eps...),
		budget: budget,
		dir:    dir,
		seg:    NewEpsilonArchive(space, eps, budget),
	}
}

// Len returns the current in-memory segment size. It never exceeds the
// budget: Add spills eagerly on reaching it.
func (sa *StreamingArchive) Len() int {
	if sa.seg == nil {
		return 0
	}
	return sa.seg.Len()
}

// Runs returns the number of sorted runs spilled to disk so far.
func (sa *StreamingArchive) Runs() int { return len(sa.runs) }

// SpilledBytes returns the spill file size in bytes.
func (sa *StreamingArchive) SpilledBytes() int64 { return sa.next }

// Add offers a point with a fixed-width payload. The return value is
// the in-memory segment's verdict — an upper bound on global
// acceptance: a locally rejected point is always globally dominated,
// but a locally accepted one may still be eliminated against earlier
// spilled runs at Finalize.
func (sa *StreamingArchive) Add(point []float64, payload int64) bool {
	if sa.done {
		panic("moea: streaming archive already finalized")
	}
	ok := sa.seg.Add(point, payload)
	if sa.seg.Len() >= sa.budget {
		sa.spill()
	}
	return ok
}

// spill appends the in-memory segment to the spill file as one sorted
// run (the 2-D staircase keeps entries ordered by box0 ascending) and
// restarts the segment empty. I/O errors are latched and surfaced by
// Finalize.
func (sa *StreamingArchive) spill() {
	n := sa.seg.Len()
	if n == 0 {
		return
	}
	defer func() {
		sa.seg = NewEpsilonArchive(sa.space, sa.eps, sa.budget)
	}()
	if sa.err != nil {
		return
	}
	if sa.file == nil {
		f, err := os.CreateTemp(sa.dir, "moea-spill-*.bin")
		if err != nil {
			sa.err = fmt.Errorf("moea: creating spill file: %w", err)
			return
		}
		sa.file = f
	}
	if sa.buf == nil {
		sa.buf = make([]byte, 0, sa.budget*spillRecSize)
	}
	b := sa.buf[:0]
	for i := 0; i < n; i++ {
		b = binary.LittleEndian.AppendUint64(b, uint64(sa.seg.boxes[2*i]))
		b = binary.LittleEndian.AppendUint64(b, uint64(sa.seg.boxes[2*i+1]))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(sa.seg.points[i][0]))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(sa.seg.points[i][1]))
		b = binary.LittleEndian.AppendUint64(b, uint64(sa.seg.payloads[i].(int64)))
	}
	if _, err := sa.file.WriteAt(b, sa.next); err != nil {
		sa.err = fmt.Errorf("moea: writing spill run %d: %w", len(sa.runs), err)
		return
	}
	sa.runs = append(sa.runs, spillRun{off: sa.next, count: int64(n)})
	sa.next += int64(len(b))
}

// Finalize merges the spilled runs and the live segment into the final
// front, releases the spill file, and makes Points/Payloads available.
// The archive accepts no further points afterwards.
func (sa *StreamingArchive) Finalize() error {
	if sa.done {
		return fmt.Errorf("moea: streaming archive already finalized")
	}
	sa.done = true
	defer sa.release()
	if sa.err == nil && len(sa.runs) == 0 {
		// Everything fit in one segment: it already is the final archive.
		pts, pays := sa.seg.Points(), sa.seg.Payloads()
		sa.points = pts
		sa.payloads = make([]int64, len(pays))
		for i := range pays {
			sa.payloads[i] = pays[i].(int64)
		}
		return nil
	}
	sa.spill() // flush the live segment as the last run
	if sa.err != nil {
		return sa.err
	}
	return sa.merge()
}

// Points returns the final front's objective vectors in improving
// objective-0 order (the same order Archive.Points uses). Valid only
// after a successful Finalize.
func (sa *StreamingArchive) Points() [][]float64 { return sa.points }

// Payloads returns the payloads aligned with Points.
func (sa *StreamingArchive) Payloads() []int64 { return sa.payloads }

// Close releases the spill file and the in-memory segment without
// producing a front. Safe to call at any time, including after
// Finalize; it is then a no-op.
func (sa *StreamingArchive) Close() {
	sa.done = true
	sa.release()
}

// release drops the spill file and working state, keeping any
// Finalize results.
func (sa *StreamingArchive) release() {
	if sa.file != nil {
		sa.file.Close()           //nolint:errcheck // read-only by now; the remove is what matters
		os.Remove(sa.file.Name()) //nolint:errcheck // best-effort temp cleanup
		sa.file = nil
	}
	sa.seg = nil
	sa.runs = nil
	sa.buf = nil
}

// mergeSrc is one sorted run being consumed by the k-way merge: the
// spill file section reader plus the current record, decoded.
type mergeSrc struct {
	r    *bufio.Reader
	left int64
	run  int

	b0, b1 int64
	pt     [2]float64
	pay    int64
}

// advance decodes the next record, reporting false at run end.
func (s *mergeSrc) advance() (bool, error) {
	if s.left == 0 {
		return false, nil
	}
	s.left--
	var rec [spillRecSize]byte
	if _, err := io.ReadFull(s.r, rec[:]); err != nil {
		return false, fmt.Errorf("moea: reading spill run %d: %w", s.run, err)
	}
	s.b0 = int64(binary.LittleEndian.Uint64(rec[0:8]))
	s.b1 = int64(binary.LittleEndian.Uint64(rec[8:16]))
	s.pt[0] = math.Float64frombits(binary.LittleEndian.Uint64(rec[16:24]))
	s.pt[1] = math.Float64frombits(binary.LittleEndian.Uint64(rec[24:32]))
	s.pay = int64(binary.LittleEndian.Uint64(rec[32:40]))
	return true, nil
}

// less orders merge sources by (box0, box1, run index). Run index last
// makes same-box records pop in arrival order, so the duel fold sees
// the earlier run's winner as the incumbent — the order the duel's
// tie-breaking rules are defined over.
func (s *mergeSrc) less(t *mergeSrc) bool {
	if s.b0 != t.b0 {
		return s.b0 < t.b0
	}
	if s.b1 != t.b1 {
		return s.b1 < t.b1
	}
	return s.run < t.run
}

// merge k-way merges the spilled runs into the final front.
//
// Each run is internally box-nondominated and sorted by box0 ascending
// (hence box1 descending — the staircase). The merge walks the union in
// (box0, box1) order and applies two rules:
//
//   - Same box across runs: fold with the same duel the in-memory
//     archive uses, incumbent = earlier run. The duel reduces to
//     "argmin ε-normalized corner distance, earliest arrival on ties",
//     which is associative over arrival-ordered groupings — so folding
//     per-run winners in run order equals folding the raw stream.
//   - Distinct boxes: a box survives iff no other occupied box
//     dominates it. In (box0, box1 ascending) order that is one sweep:
//     within a box0 column only the first (minimum box1) entry can
//     survive, and it survives iff its box1 is strictly below the
//     minimum box1 of every earlier column.
func (sa *StreamingArchive) merge() error {
	h := make([]*mergeSrc, 0, len(sa.runs))
	for i, run := range sa.runs {
		s := &mergeSrc{
			r:    bufio.NewReaderSize(io.NewSectionReader(sa.file, run.off, run.count*spillRecSize), 1<<12),
			left: run.count,
			run:  i,
		}
		ok, err := s.advance()
		if err != nil {
			return err
		}
		if ok {
			h = append(h, s)
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	// step consumes the top source's current record: advance it and
	// restore the heap, dropping it when exhausted.
	step := func() error {
		ok, err := h[0].advance()
		if err != nil {
			return err
		}
		if !ok {
			h[0] = h[len(h)-1]
			h[len(h)-1] = nil
			h = h[:len(h)-1]
		}
		if len(h) > 0 {
			siftDown(h, 0)
		}
		return nil
	}
	var (
		minB1   = int64(math.MaxInt64)
		curB0   int64
		haveCol bool
	)
	for len(h) > 0 {
		b0, b1 := h[0].b0, h[0].b1
		winPt, winPay := h[0].pt, h[0].pay
		if err := step(); err != nil {
			return err
		}
		for len(h) > 0 && h[0].b0 == b0 && h[0].b1 == b1 {
			if sa.challengerWins(b0, b1, winPt, h[0].pt) {
				winPt, winPay = h[0].pt, h[0].pay
			}
			if err := step(); err != nil {
				return err
			}
		}
		if haveCol && b0 == curB0 {
			continue // dominated by this column's minimum-box1 entry
		}
		curB0, haveCol = b0, true
		if b1 < minB1 {
			minB1 = b1
			sa.points = append(sa.points, []float64{winPt[0], winPt[1]})
			sa.payloads = append(sa.payloads, winPay)
		}
	}
	return nil
}

// siftDown restores the min-heap property below index i.
func siftDown(h []*mergeSrc, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h[l].less(h[m]) {
			m = l
		}
		if r < len(h) && h[r].less(h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// challengerWins replays Archive.duel for two points sharing box
// (b0, b1): the dominating point wins; between incomparable points the
// one closer to the box's utopia corner (ε-normalized canonical
// coordinates) wins; exact ties keep the incumbent. The arithmetic
// matches duel term for term, so merge outcomes are bit-identical to
// in-memory ones.
func (sa *StreamingArchive) challengerWins(b0, b1 int64, inc, cand [2]float64) bool {
	i0, i1 := sa.canon2(inc)
	c0, c1 := sa.canon2(cand)
	if c0 <= i0 && c1 <= i1 && (c0 < i0 || c1 < i1) {
		return true // candidate dominates
	}
	if (i0 <= c0 && i1 <= c1 && (i0 < c0 || i1 < c1)) || (c0 == i0 && c1 == i1) {
		return false // incumbent dominates, or exact duplicate
	}
	f0, f1 := float64(b0), float64(b1)
	cc0 := c0/sa.eps[0] - f0
	cc1 := c1/sa.eps[1] - f1
	ci0 := i0/sa.eps[0] - f0
	ci1 := i1/sa.eps[1] - f1
	return cc0*cc0+cc1*cc1 < ci0*ci0+ci1*ci1
}

// canon2 returns both coordinates in canonical minimization sense.
func (sa *StreamingArchive) canon2(p [2]float64) (float64, float64) {
	c0, c1 := p[0], p[1]
	if sa.space.Senses[0] == Maximize {
		c0 = -c0
	}
	if sa.space.Senses[1] == Maximize {
		c1 = -c1
	}
	return c0, c1
}
