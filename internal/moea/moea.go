// Package moea provides the multi-objective optimization machinery the
// NSGA-II engine is built on: Pareto dominance over objective vectors
// with per-objective optimization senses, Deb's fast nondominated sort,
// the dominance-count ranking described in the paper's §IV-D, crowding
// distance, an incremental nondominated archive, and quality indicators
// (bi-objective hypervolume and Deb's spread).
package moea

import (
	"fmt"
	"math"
	"sort"
)

// Sense is the optimization direction of one objective.
type Sense int

const (
	// Minimize means smaller values are better.
	Minimize Sense = iota
	// Maximize means larger values are better.
	Maximize
)

func (s Sense) String() string {
	switch s {
	case Minimize:
		return "minimize"
	case Maximize:
		return "maximize"
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Space describes the objective space: one Sense per objective.
type Space struct {
	Senses []Sense
}

// NewSpace returns a Space over the given senses.
func NewSpace(senses ...Sense) Space { return Space{Senses: senses} }

// UtilityEnergySpace is the paper's bi-objective space: maximize total
// utility earned (objective 0), minimize total energy consumed
// (objective 1).
func UtilityEnergySpace() Space { return NewSpace(Maximize, Minimize) }

// Dim returns the number of objectives.
func (sp Space) Dim() int { return len(sp.Senses) }

// better reports whether x is strictly better than y in objective i.
func (sp Space) better(i int, x, y float64) bool {
	if sp.Senses[i] == Maximize {
		return x > y
	}
	return x < y
}

// Dominates reports whether a dominates b: a is at least as good as b in
// every objective and strictly better in at least one (§IV-C).
func (sp Space) Dominates(a, b []float64) bool {
	if len(a) != sp.Dim() || len(b) != sp.Dim() {
		panic(fmt.Sprintf("moea: objective vectors of length %d/%d in %d-dim space", len(a), len(b), sp.Dim()))
	}
	strictly := false
	for i := range sp.Senses {
		switch {
		case sp.better(i, a[i], b[i]):
			strictly = true
		case sp.better(i, b[i], a[i]):
			return false
		}
	}
	return strictly
}

// Incomparable reports whether neither point dominates the other and the
// points differ (both lie on a common front, like solutions A and C of
// the paper's Fig. 2).
func (sp Space) Incomparable(a, b []float64) bool {
	return !sp.Dominates(a, b) && !sp.Dominates(b, a)
}

// FastNondominatedSort partitions point indices into fronts: front 0 is
// the nondominated set; front k is nondominated once fronts < k are
// removed. This is the O(M·N²) algorithm of Deb et al. (2002).
func (sp Space) FastNondominatedSort(points [][]float64) [][]int {
	n := len(points)
	if n == 0 {
		return nil
	}
	dominated := make([][]int, n) // dominated[i]: indices i dominates
	count := make([]int, n)       // count[i]: how many points dominate i
	var first []int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case sp.Dominates(points[i], points[j]):
				dominated[i] = append(dominated[i], j)
				count[j]++
			case sp.Dominates(points[j], points[i]):
				dominated[j] = append(dominated[j], i)
				count[i]++
			}
		}
	}
	for i := 0; i < n; i++ {
		if count[i] == 0 {
			first = append(first, i)
		}
	}
	var fronts [][]int
	cur := first
	for len(cur) > 0 {
		fronts = append(fronts, cur)
		var next []int
		for _, i := range cur {
			for _, j := range dominated[i] {
				count[j]--
				if count[j] == 0 {
					next = append(next, j)
				}
			}
		}
		cur = next
	}
	return fronts
}

// DominanceCountRanks returns, for each point, 1 + the number of points
// that dominate it — the ranking rule as literally stated in the paper's
// §IV-D. Rank-1 points coincide with front 0 of FastNondominatedSort;
// deeper ranks differ in general.
func (sp Space) DominanceCountRanks(points [][]float64) []int {
	n := len(points)
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case sp.Dominates(points[i], points[j]):
				ranks[j]++
			case sp.Dominates(points[j], points[i]):
				ranks[i]++
			}
		}
	}
	return ranks
}

// ParetoFront returns the indices of the nondominated points, sorted by
// the first objective (ascending in minimization order).
func (sp Space) ParetoFront(points [][]float64) []int {
	fronts := sp.FastNondominatedSort(points)
	if len(fronts) == 0 {
		return nil
	}
	front := append([]int(nil), fronts[0]...)
	sort.Slice(front, func(x, y int) bool {
		a, b := points[front[x]], points[front[y]]
		av, bv := a[0], b[0]
		if sp.Senses[0] == Maximize {
			return av > bv
		}
		return av < bv
	})
	return front
}

// CrowdingDistance returns Deb's crowding distance for the points at the
// given indices (one front). Boundary points in any objective get +Inf.
// Distances are normalized per objective by the front's value range.
func (sp Space) CrowdingDistance(points [][]float64, front []int) []float64 {
	n := len(front)
	dist := make([]float64, n)
	if n == 0 {
		return dist
	}
	if n <= 2 {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		return dist
	}
	idx := make([]int, n) // positions into front
	for m := 0; m < sp.Dim(); m++ {
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return points[front[idx[a]]][m] < points[front[idx[b]]][m]
		})
		lo := points[front[idx[0]]][m]
		hi := points[front[idx[n-1]]][m]
		dist[idx[0]] = math.Inf(1)
		dist[idx[n-1]] = math.Inf(1)
		span := hi - lo
		if span == 0 {
			continue
		}
		for k := 1; k < n-1; k++ {
			if math.IsInf(dist[idx[k]], 1) {
				continue
			}
			dist[idx[k]] += (points[front[idx[k+1]]][m] - points[front[idx[k-1]]][m]) / span
		}
	}
	return dist
}
