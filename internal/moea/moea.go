// Package moea provides the multi-objective optimization machinery the
// NSGA-II engine is built on: Pareto dominance over objective vectors
// with per-objective optimization senses, Deb's fast nondominated sort,
// the dominance-count ranking described in the paper's §IV-D, crowding
// distance, an incremental nondominated archive, and quality indicators
// (bi-objective hypervolume and Deb's spread).
package moea

import (
	"fmt"
	"sort"
)

// Sense is the optimization direction of one objective.
type Sense int

const (
	// Minimize means smaller values are better.
	Minimize Sense = iota
	// Maximize means larger values are better.
	Maximize
)

func (s Sense) String() string {
	switch s {
	case Minimize:
		return "minimize"
	case Maximize:
		return "maximize"
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Space describes the objective space: one Sense per objective.
type Space struct {
	Senses []Sense
}

// NewSpace returns a Space over the given senses.
func NewSpace(senses ...Sense) Space { return Space{Senses: senses} }

// UtilityEnergySpace is the paper's bi-objective space: maximize total
// utility earned (objective 0), minimize total energy consumed
// (objective 1).
func UtilityEnergySpace() Space { return NewSpace(Maximize, Minimize) }

// Dim returns the number of objectives.
func (sp Space) Dim() int { return len(sp.Senses) }

// better reports whether x is strictly better than y in objective i.
func (sp Space) better(i int, x, y float64) bool {
	if sp.Senses[i] == Maximize {
		return x > y
	}
	return x < y
}

// Dominates reports whether a dominates b: a is at least as good as b in
// every objective and strictly better in at least one (§IV-C).
func (sp Space) Dominates(a, b []float64) bool {
	if len(a) != sp.Dim() || len(b) != sp.Dim() {
		panic(fmt.Sprintf("moea: objective vectors of length %d/%d in %d-dim space", len(a), len(b), sp.Dim()))
	}
	strictly := false
	for i := range sp.Senses {
		switch {
		case sp.better(i, a[i], b[i]):
			strictly = true
		case sp.better(i, b[i], a[i]):
			return false
		}
	}
	return strictly
}

// Incomparable reports whether neither point dominates the other and the
// points differ (both lie on a common front, like solutions A and C of
// the paper's Fig. 2).
func (sp Space) Incomparable(a, b []float64) bool {
	return !sp.Dominates(a, b) && !sp.Dominates(b, a)
}

// FastNondominatedSort partitions point indices into fronts: front 0 is
// the nondominated set; front k is nondominated once fronts < k are
// removed. Indices are ascending within each front. Two-objective spaces
// dispatch to the O(N log N) sweep of NondominatedSort2D; higher
// dimensions use the generic O(M·N²) algorithm of Deb et al. (2002).
// Callers ranking populations repeatedly should hold a Ranker instead to
// avoid re-allocating scratch.
func (sp Space) FastNondominatedSort(points [][]float64) [][]int {
	return new(Ranker).Fronts(sp, points)
}

// NondominatedSort2D is the bi-objective O(N log N) sweep sort: points
// are ordered lexicographically by the minimization-converted
// objectives, then each is placed on the first front that does not
// dominate it, located by binary search. The fronts are identical (as
// sets) to the generic algorithm's. It panics if the space is not
// two-dimensional.
func (sp Space) NondominatedSort2D(points [][]float64) [][]int {
	if sp.Dim() != 2 {
		panic(fmt.Sprintf("moea: NondominatedSort2D on %d-dim space", sp.Dim()))
	}
	if len(points) == 0 {
		return nil
	}
	return new(Ranker).fronts2D(sp, points)
}

// NondominatedSortGeneric is the dimension-agnostic O(M·N²) pairwise
// algorithm, exported so tests and higher-dimensional callers can
// cross-check the 2-D sweep against it.
func (sp Space) NondominatedSortGeneric(points [][]float64) [][]int {
	if len(points) == 0 {
		return nil
	}
	return new(Ranker).frontsGeneric(sp, points)
}

// DominanceCountRanks returns, for each point, 1 + the number of points
// that dominate it — the ranking rule as literally stated in the paper's
// §IV-D. Rank-1 points coincide with front 0 of FastNondominatedSort;
// deeper ranks differ in general. Hot loops should use
// Ranker.DominanceCountGroups, which reuses scratch.
func (sp Space) DominanceCountRanks(points [][]float64) []int {
	n := len(points)
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case sp.Dominates(points[i], points[j]):
				ranks[j]++
			case sp.Dominates(points[j], points[i]):
				ranks[i]++
			}
		}
	}
	return ranks
}

// ParetoFront returns the indices of the nondominated points, sorted by
// the first objective (ascending in minimization order).
func (sp Space) ParetoFront(points [][]float64) []int {
	fronts := sp.FastNondominatedSort(points)
	if len(fronts) == 0 {
		return nil
	}
	front := append([]int(nil), fronts[0]...)
	sort.Slice(front, func(x, y int) bool {
		a, b := points[front[x]], points[front[y]]
		av, bv := a[0], b[0]
		if sp.Senses[0] == Maximize {
			return av > bv
		}
		return av < bv
	})
	return front
}

// CrowdingDistance returns Deb's crowding distance for the points at the
// given indices (one front). Boundary points in any objective get +Inf.
// Distances are normalized per objective by the front's value range.
// Two-objective staircase fronts take a single-sort fast path; see
// Ranker.Crowding, which hot loops should call directly to reuse
// scratch.
func (sp Space) CrowdingDistance(points [][]float64, front []int) []float64 {
	return new(Ranker).Crowding(sp, points, front)
}
