package moea

import (
	"fmt"
	"math"
	"sort"
)

// Hypervolume2D returns the hypervolume indicator of a bi-objective point
// set with respect to a reference point: the area of objective space
// dominated by the set and bounded by the reference. The reference must
// be dominated by (worse than) every point in the set in both
// objectives; points that do not dominate the reference are ignored.
// Larger is better. It panics if the space is not two-dimensional.
func (sp Space) Hypervolume2D(points [][]float64, ref []float64) float64 {
	if sp.Dim() != 2 {
		panic(fmt.Sprintf("moea: Hypervolume2D on %d-dim space", sp.Dim()))
	}
	if len(ref) != 2 {
		panic("moea: Hypervolume2D needs a 2-dim reference point")
	}
	// Convert to minimization coordinates.
	conv := func(p []float64) (x, y float64) {
		x, y = p[0], p[1]
		if sp.Senses[0] == Maximize {
			x = -x
		}
		if sp.Senses[1] == Maximize {
			y = -y
		}
		return
	}
	rx, ry := conv(ref)
	type pt struct{ x, y float64 }
	var pts []pt
	for _, p := range points {
		x, y := conv(p)
		if x < rx && y < ry {
			pts = append(pts, pt{x, y})
		}
	}
	if len(pts) == 0 {
		return 0
	}
	// Keep only the nondominated lower-left staircase: sort by x, sweep y.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].x != pts[j].x {
			return pts[i].x < pts[j].x
		}
		return pts[i].y < pts[j].y
	})
	var area float64
	bestY := ry
	for _, p := range pts {
		if p.y >= bestY {
			continue // dominated by an earlier (smaller-x) point
		}
		area += (rx - p.x) * (bestY - p.y)
		bestY = p.y
	}
	return area
}

// Spread returns Deb's Δ spread/diversity indicator for a bi-objective
// front: low values indicate evenly spaced solutions. It returns 0 for
// fronts with fewer than 3 points. It panics if the space is not
// two-dimensional.
func (sp Space) Spread(points [][]float64) float64 {
	if sp.Dim() != 2 {
		panic(fmt.Sprintf("moea: Spread on %d-dim space", sp.Dim()))
	}
	front := sp.ParetoFront(points)
	if len(front) < 3 {
		return 0
	}
	// Distances between consecutive front points in objective space.
	d := make([]float64, 0, len(front)-1)
	var sum float64
	for i := 1; i < len(front); i++ {
		a, b := points[front[i-1]], points[front[i]]
		dist := math.Hypot(a[0]-b[0], a[1]-b[1])
		d = append(d, dist)
		sum += dist
	}
	mean := sum / float64(len(d))
	if mean == 0 {
		return 0
	}
	var dev float64
	for _, di := range d {
		dev += math.Abs(di - mean)
	}
	return dev / (float64(len(d)) * mean)
}

// Coverage returns the C-metric C(A, B): the fraction of points in B that
// are dominated by at least one point in A. C(A,B)=1 means A completely
// dominates B. It returns 0 when B is empty.
func (sp Space) Coverage(a, b [][]float64) float64 {
	if len(b) == 0 {
		return 0
	}
	dominated := 0
	for _, pb := range b {
		for _, pa := range a {
			if sp.Dominates(pa, pb) {
				dominated++
				break
			}
		}
	}
	return float64(dominated) / float64(len(b))
}

// ReferenceFrom returns a reference point strictly dominated by every
// point in the sets, suitable for Hypervolume2D: the per-objective worst
// value across all sets, degraded by the given positive margin fraction
// of the observed range (at least an absolute epsilon).
func (sp Space) ReferenceFrom(margin float64, sets ...[][]float64) []float64 {
	if sp.Dim() != 2 {
		panic("moea: ReferenceFrom supports 2-dim spaces")
	}
	worst := []float64{math.Inf(-1), math.Inf(-1)}
	best := []float64{math.Inf(1), math.Inf(1)}
	seen := false
	for _, set := range sets {
		for _, p := range set {
			seen = true
			for i := 0; i < 2; i++ {
				v := p[i]
				if sp.Senses[i] == Maximize {
					v = -v
				}
				if v > worst[i] {
					worst[i] = v
				}
				if v < best[i] {
					best[i] = v
				}
			}
		}
	}
	if !seen {
		return []float64{0, 0}
	}
	ref := make([]float64, 2)
	for i := 0; i < 2; i++ {
		span := worst[i] - best[i]
		pad := margin * span
		if pad < 1e-9 {
			pad = 1e-9
		}
		v := worst[i] + pad
		if sp.Senses[i] == Maximize {
			v = -v
		}
		ref[i] = v
	}
	return ref
}
