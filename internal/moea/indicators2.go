package moea

import (
	"fmt"
	"math"
)

// Additional quality indicators used in the MOEA literature for comparing
// approximation fronts against a reference set: the additive epsilon
// indicator and the inverted generational distance (IGD).

// EpsilonIndicator returns the additive ε-indicator I_ε+(a, ref): the
// smallest ε such that shifting every point of a by ε (toward worse in
// every objective allowance) makes a weakly dominate every point of ref.
// Smaller is better; 0 or negative means a weakly dominates ref as-is.
// Both sets must be nonempty.
func (sp Space) EpsilonIndicator(a, ref [][]float64) (float64, error) {
	if len(a) == 0 || len(ref) == 0 {
		return 0, fmt.Errorf("moea: epsilon indicator needs nonempty sets")
	}
	// In minimization coordinates: eps(a_point, r_point) = max_i (a_i - r_i);
	// I = max over r of min over a.
	worst := math.Inf(-1)
	for _, r := range ref {
		best := math.Inf(1)
		for _, p := range a {
			eps := math.Inf(-1)
			for i := range sp.Senses {
				pv, rv := p[i], r[i]
				if sp.Senses[i] == Maximize {
					pv, rv = -pv, -rv
				}
				if d := pv - rv; d > eps {
					eps = d
				}
			}
			if eps < best {
				best = eps
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst, nil
}

// IGD returns the inverted generational distance from an approximation
// set a to a reference front ref: the mean Euclidean distance from each
// reference point to its nearest approximation point. Smaller is better.
// Objectives are used unscaled; normalize externally when ranges differ
// wildly.
func (sp Space) IGD(a, ref [][]float64) (float64, error) {
	if len(a) == 0 || len(ref) == 0 {
		return 0, fmt.Errorf("moea: IGD needs nonempty sets")
	}
	var sum float64
	for _, r := range ref {
		best := math.Inf(1)
		for _, p := range a {
			var d2 float64
			for i := range sp.Senses {
				d := p[i] - r[i]
				d2 += d * d
			}
			if d2 < best {
				best = d2
			}
		}
		sum += math.Sqrt(best)
	}
	return sum / float64(len(ref)), nil
}

// NormalizedIGD rescales both sets to the reference set's per-objective
// [min,max] box before computing IGD, making the indicator comparable
// across instances with different objective magnitudes.
func (sp Space) NormalizedIGD(a, ref [][]float64) (float64, error) {
	if len(a) == 0 || len(ref) == 0 {
		return 0, fmt.Errorf("moea: IGD needs nonempty sets")
	}
	d := sp.Dim()
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := 0; i < d; i++ {
		lo[i], hi[i] = math.Inf(1), math.Inf(-1)
	}
	for _, r := range ref {
		for i := 0; i < d; i++ {
			lo[i] = math.Min(lo[i], r[i])
			hi[i] = math.Max(hi[i], r[i])
		}
	}
	scale := func(p []float64) []float64 {
		out := make([]float64, d)
		for i := 0; i < d; i++ {
			span := hi[i] - lo[i]
			if span == 0 {
				span = 1
			}
			out[i] = (p[i] - lo[i]) / span
		}
		return out
	}
	sa := make([][]float64, len(a))
	for i, p := range a {
		sa[i] = scale(p)
	}
	sr := make([][]float64, len(ref))
	for i, r := range ref {
		sr[i] = scale(r)
	}
	return sp.IGD(sa, sr)
}
