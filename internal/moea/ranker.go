package moea

import (
	"fmt"
	"math"
	"sort"
)

// Ranker bundles the scratch buffers nondominated sorting, crowding
// distance, and dominance-count ranking need, so callers that rank
// populations every generation (the NSGA-II engine) do not allocate in
// steady state. The slices returned by Ranker methods are owned by the
// Ranker and valid only until its next method call; copy them to retain.
// A Ranker is not safe for concurrent use. The zero value is ready.
//
// For two-objective spaces Fronts runs Kung-style sweep sorting in
// O(n log n) instead of the generic O(d·n²) pairwise algorithm — the
// asymptotic win the bi-objective scheduling literature leans on for
// large fronts (cf. arXiv:1907.04080, arXiv:1501.05414).
type Ranker struct {
	// Front-sorting scratch (shared by 2-D sweep, generic, and
	// dominance-count paths; disjoint from crowding scratch).
	frontOf []int   // front index per point
	counts  []int   // bucket sizes, then fill cursors
	store   []int   // flat backing array for the returned fronts
	fronts  [][]int // front headers into store

	// 2-D sweep scratch.
	xs, ys []float64 // minimization-converted coordinates
	order  []int     // lexicographic processing order
	minX   []float64 // per-front coordinates of the minimal-y point
	minY   []float64
	lex    lexSorter

	// Generic-path scratch.
	domStore [][]int // dominated[i]: points i dominates (ragged, reused)
	domCount []int   // how many points dominate i
	queue    []int   // cascade worklist

	// Crowding scratch.
	dist []float64
	idx  []int
	obj  objSorter
}

// NewRanker returns an empty Ranker. Equivalent to new(Ranker); provided
// for discoverability.
func NewRanker() *Ranker { return &Ranker{} }

// Fronts partitions point indices into nondominated fronts, like
// Space.FastNondominatedSort, reusing the Ranker's buffers. Indices are
// ascending within each front. Two-objective spaces dispatch to the
// O(n log n) sweep; higher dimensions use the generic algorithm.
//
//detlint:hotpath
func (r *Ranker) Fronts(sp Space, points [][]float64) [][]int {
	if len(points) == 0 {
		return nil
	}
	if sp.Dim() == 2 {
		return r.fronts2D(sp, points)
	}
	return r.frontsGeneric(sp, points)
}

// growInts resizes an []int scratch to length n.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// conv maps a point to minimization coordinates.
func (sp Space) conv2D(p []float64) (x, y float64) {
	x, y = p[0], p[1]
	if sp.Senses[0] == Maximize {
		x = -x
	}
	if sp.Senses[1] == Maximize {
		y = -y
	}
	return x, y
}

// fronts2D is the bi-objective sweep: sort points lexicographically by
// the (minimization-converted) first then second objective, then insert
// each point into the first front whose minimal-second-objective point
// does not dominate it, found by binary search. Dominance by a front is
// monotone in the front index (every point of front f+1 has a dominator
// in front f), so binary search over fronts is sound, and checking only
// the front's minimal-y point suffices: any other member with y ≤ q.y
// would dominate that member, contradicting front membership.
//
//detlint:hotpath
func (r *Ranker) fronts2D(sp Space, points [][]float64) [][]int {
	n := len(points)
	if sp.Dim() != 2 {
		panic(fmt.Sprintf("moea: 2-D sweep on %d-dim space", sp.Dim()))
	}
	r.xs = growFloats(r.xs, n)
	r.ys = growFloats(r.ys, n)
	r.order = growInts(r.order, n)
	r.frontOf = growInts(r.frontOf, n)
	r.minX = growFloats(r.minX, n)
	r.minY = growFloats(r.minY, n)
	for i, p := range points {
		if len(p) != 2 {
			panic(fmt.Sprintf("moea: point %d has %d objectives in 2-dim space", i, len(p)))
		}
		r.xs[i], r.ys[i] = sp.conv2D(p)
		r.order[i] = i
	}
	r.lex.xs, r.lex.ys, r.lex.order = r.xs, r.ys, r.order
	sort.Sort(&r.lex)

	nf := 0
	for _, q := range r.order {
		qx, qy := r.xs[q], r.ys[q]
		// First front whose minimal-y point does not dominate q. Every
		// stored (minX, minY) was processed earlier, so minX ≤ qx holds.
		lo, hi := 0, nf
		for lo < hi {
			mid := (lo + hi) / 2
			if r.minY[mid] < qy || (r.minY[mid] == qy && r.minX[mid] < qx) {
				lo = mid + 1 // front mid dominates q
			} else {
				hi = mid
			}
		}
		f := lo
		if f == nf {
			nf++
			r.minX[f], r.minY[f] = qx, qy
		} else if qy <= r.minY[f] {
			r.minX[f], r.minY[f] = qx, qy
		}
		r.frontOf[q] = f
	}
	return r.bucketize(n, nf)
}

// frontsGeneric is Deb's O(d·n²) algorithm over reusable buffers,
// producing ascending index order within each front (same convention as
// the 2-D sweep).
//
//detlint:hotpath
func (r *Ranker) frontsGeneric(sp Space, points [][]float64) [][]int {
	n := len(points)
	r.domCount = growInts(r.domCount, n)
	if cap(r.domStore) < n {
		r.domStore = make([][]int, n)
	}
	r.domStore = r.domStore[:n]
	for i := 0; i < n; i++ {
		r.domCount[i] = 0
		r.domStore[i] = r.domStore[i][:0]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case sp.Dominates(points[i], points[j]):
				r.domStore[i] = append(r.domStore[i], j)
				r.domCount[j]++
			case sp.Dominates(points[j], points[i]):
				r.domStore[j] = append(r.domStore[j], i)
				r.domCount[i]++
			}
		}
	}
	r.frontOf = growInts(r.frontOf, n)
	r.queue = r.queue[:0]
	for i := 0; i < n; i++ {
		if r.domCount[i] == 0 {
			r.frontOf[i] = 0
			r.queue = append(r.queue, i)
		}
	}
	nf := 0
	for head := 0; head < len(r.queue); head++ {
		i := r.queue[head]
		if r.frontOf[i] >= nf {
			nf = r.frontOf[i] + 1
		}
		for _, j := range r.domStore[i] {
			r.domCount[j]--
			if r.domCount[j] == 0 {
				r.frontOf[j] = r.frontOf[i] + 1
				r.queue = append(r.queue, j)
			}
		}
	}
	return r.bucketize(n, nf)
}

// bucketize groups the n points into their fronts from r.frontOf,
// ascending index order within each front, skipping empty fronts.
//
//detlint:hotpath
func (r *Ranker) bucketize(n, nf int) [][]int {
	r.counts = growInts(r.counts, nf)
	for f := 0; f < nf; f++ {
		r.counts[f] = 0
	}
	for i := 0; i < n; i++ {
		r.counts[r.frontOf[i]]++
	}
	// Prefix-sum the bucket sizes into fill cursors.
	r.store = growInts(r.store, n)
	start := 0
	for f := 0; f < nf; f++ {
		c := r.counts[f]
		r.counts[f] = start
		start += c
	}
	for i := 0; i < n; i++ {
		f := r.frontOf[i]
		r.store[r.counts[f]] = i
		r.counts[f]++
	}
	// counts[f] now holds the end of bucket f.
	r.fronts = r.fronts[:0]
	prev := 0
	for f := 0; f < nf; f++ {
		end := r.counts[f]
		if end > prev {
			r.fronts = append(r.fronts, r.store[prev:end])
		}
		prev = end
	}
	return r.fronts
}

// DominanceCountGroups partitions point indices into ascending-rank
// groups under the dominance-count rule (rank = 1 + number of
// dominators), reusing the Ranker's buffers like Fronts.
//
//detlint:hotpath
func (r *Ranker) DominanceCountGroups(sp Space, points [][]float64) [][]int {
	n := len(points)
	if n == 0 {
		return nil
	}
	r.frontOf = growInts(r.frontOf, n)
	for i := range r.frontOf {
		r.frontOf[i] = 0
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case sp.Dominates(points[i], points[j]):
				r.frontOf[j]++
			case sp.Dominates(points[j], points[i]):
				r.frontOf[i]++
			}
		}
	}
	nf := 0
	for _, f := range r.frontOf {
		if f >= nf {
			nf = f + 1
		}
	}
	return r.bucketize(n, nf)
}

// Crowding computes Deb's crowding distance for one front, like
// Space.CrowdingDistance, reusing the Ranker's buffers. In two-objective
// spaces, when the front is a strict staircase (distinct first-objective
// values, strictly monotone second objective — always true for a
// mutually nondominated front without duplicates), the second
// objective's neighbor gaps are read off the first objective's sorted
// order, halving the sorting work; the result is identical to the
// generic path.
//
//detlint:hotpath
func (r *Ranker) Crowding(sp Space, points [][]float64, front []int) []float64 {
	n := len(front)
	r.dist = growFloats(r.dist, n)
	dist := r.dist
	if n == 0 {
		return dist
	}
	if n <= 2 {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		return dist
	}
	for i := range dist {
		dist[i] = 0
	}
	r.idx = growInts(r.idx, n)
	idx := r.idx
	r.obj.points, r.obj.front, r.obj.idx = points, front, idx

	m := 0
	for i := range idx {
		idx[i] = i
	}
	r.obj.m = m
	sort.Sort(&r.obj)
	r.accumulate(points, front, idx, m)

	if sp.Dim() == 2 {
		if dir := staircaseDir(points, front, idx); dir != 0 {
			// Objective 1 sorted order is idx itself (dir > 0) or its
			// reverse (dir < 0); either way neighbor pairs coincide, and
			// the boundary points are idx[0] and idx[n-1].
			lo := points[front[idx[0]]][1]
			hi := points[front[idx[n-1]]][1]
			if lo > hi {
				lo, hi = hi, lo
			}
			dist[idx[0]] = math.Inf(1)
			dist[idx[n-1]] = math.Inf(1)
			if span := hi - lo; span != 0 {
				for k := 1; k < n-1; k++ {
					if math.IsInf(dist[idx[k]], 1) {
						continue
					}
					gap := points[front[idx[k+1]]][1] - points[front[idx[k-1]]][1]
					if gap < 0 {
						gap = -gap
					}
					dist[idx[k]] += gap / span
				}
			}
			return dist
		}
	}
	for m = 1; m < sp.Dim(); m++ {
		for i := range idx {
			idx[i] = i
		}
		r.obj.m = m
		sort.Sort(&r.obj)
		r.accumulate(points, front, idx, m)
	}
	return dist
}

// accumulate adds objective m's crowding contributions for an idx slice
// sorted ascending by that objective.
//
//detlint:hotpath
func (r *Ranker) accumulate(points [][]float64, front, idx []int, m int) {
	n := len(idx)
	dist := r.dist
	lo := points[front[idx[0]]][m]
	hi := points[front[idx[n-1]]][m]
	dist[idx[0]] = math.Inf(1)
	dist[idx[n-1]] = math.Inf(1)
	span := hi - lo
	if span == 0 {
		return
	}
	for k := 1; k < n-1; k++ {
		if math.IsInf(dist[idx[k]], 1) {
			continue
		}
		dist[idx[k]] += (points[front[idx[k+1]]][m] - points[front[idx[k-1]]][m]) / span
	}
}

// staircaseDir reports whether, along idx (sorted ascending by objective
// 0), objective 0 is strictly increasing and objective 1 strictly
// monotone: +1 increasing, -1 decreasing, 0 not a strict staircase.
func staircaseDir(points [][]float64, front, idx []int) int {
	n := len(idx)
	dir := 0
	for k := 1; k < n; k++ {
		a, b := points[front[idx[k-1]]], points[front[idx[k]]]
		if !(a[0] < b[0]) {
			return 0
		}
		switch {
		case a[1] < b[1]:
			if dir < 0 {
				return 0
			}
			dir = 1
		case a[1] > b[1]:
			if dir > 0 {
				return 0
			}
			dir = -1
		default:
			return 0
		}
	}
	return dir
}

// lexSorter orders point indices by (x, then y) ascending.
type lexSorter struct {
	xs, ys []float64
	order  []int
}

func (s *lexSorter) Len() int { return len(s.order) }
func (s *lexSorter) Less(a, b int) bool {
	i, j := s.order[a], s.order[b]
	if s.xs[i] != s.xs[j] {
		return s.xs[i] < s.xs[j]
	}
	return s.ys[i] < s.ys[j]
}
func (s *lexSorter) Swap(a, b int) { s.order[a], s.order[b] = s.order[b], s.order[a] }

// objSorter orders front positions ascending by one objective.
type objSorter struct {
	points [][]float64
	front  []int
	idx    []int
	m      int
}

func (s *objSorter) Len() int { return len(s.idx) }
func (s *objSorter) Less(a, b int) bool {
	return s.points[s.front[s.idx[a]]][s.m] < s.points[s.front[s.idx[b]]][s.m]
}
func (s *objSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }
