package moea

import (
	"math"
	"testing"
)

func TestEpsilonIndicatorIdentical(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	set := [][]float64{{1, 3}, {2, 2}, {3, 1}}
	eps, err := sp.EpsilonIndicator(set, set)
	if err != nil {
		t.Fatal(err)
	}
	if eps != 0 {
		t.Fatalf("self epsilon = %v, want 0", eps)
	}
}

func TestEpsilonIndicatorDominatingSet(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	better := [][]float64{{0, 2}, {1, 0}}
	worse := [][]float64{{1, 3}, {2, 1}}
	eps, err := sp.EpsilonIndicator(better, worse)
	if err != nil {
		t.Fatal(err)
	}
	if eps > 0 {
		t.Fatalf("dominating set has epsilon %v, want <= 0", eps)
	}
	back, err := sp.EpsilonIndicator(worse, better)
	if err != nil {
		t.Fatal(err)
	}
	if back <= 0 {
		t.Fatalf("dominated set has epsilon %v, want > 0", back)
	}
}

func TestEpsilonIndicatorKnownValue(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	a := [][]float64{{2, 2}}
	ref := [][]float64{{1, 1}}
	eps, err := sp.EpsilonIndicator(a, ref)
	if err != nil {
		t.Fatal(err)
	}
	if eps != 1 {
		t.Fatalf("epsilon = %v, want 1", eps)
	}
}

func TestEpsilonIndicatorMaximizeSense(t *testing.T) {
	sp := UtilityEnergySpace()
	a := [][]float64{{8, 2}}    // utility 8, energy 2
	ref := [][]float64{{10, 2}} // needs +2 utility
	eps, err := sp.EpsilonIndicator(a, ref)
	if err != nil {
		t.Fatal(err)
	}
	if eps != 2 {
		t.Fatalf("epsilon = %v, want 2", eps)
	}
}

func TestEpsilonIndicatorErrors(t *testing.T) {
	sp := NewSpace(Minimize)
	if _, err := sp.EpsilonIndicator(nil, [][]float64{{1}}); err == nil {
		t.Fatal("empty a accepted")
	}
	if _, err := sp.EpsilonIndicator([][]float64{{1}}, nil); err == nil {
		t.Fatal("empty ref accepted")
	}
}

func TestIGDZeroForSuperset(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	ref := [][]float64{{1, 3}, {2, 2}}
	a := [][]float64{{1, 3}, {2, 2}, {5, 5}}
	igd, err := sp.IGD(a, ref)
	if err != nil {
		t.Fatal(err)
	}
	if igd != 0 {
		t.Fatalf("IGD = %v, want 0", igd)
	}
}

func TestIGDKnownValue(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	a := [][]float64{{0, 0}}
	ref := [][]float64{{3, 4}, {0, 1}}
	igd, err := sp.IGD(a, ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(igd-3) > 1e-12 { // (5 + 1) / 2
		t.Fatalf("IGD = %v, want 3", igd)
	}
}

func TestIGDImprovesWithBetterApproximation(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	ref := [][]float64{{0, 4}, {1, 3}, {2, 2}, {3, 1}, {4, 0}}
	coarse := [][]float64{{0, 4}, {4, 0}}
	fine := [][]float64{{0, 4}, {2, 2}, {4, 0}}
	c, err := sp.IGD(coarse, ref)
	if err != nil {
		t.Fatal(err)
	}
	f, err := sp.IGD(fine, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !(f < c) {
		t.Fatalf("finer approximation IGD %v not below coarse %v", f, c)
	}
}

func TestNormalizedIGDScaleInvariance(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	ref := [][]float64{{0, 400}, {100, 300}, {200, 200}, {300, 100}, {400, 0}}
	a := [][]float64{{0, 400}, {200, 200}, {400, 0}}
	n1, err := sp.NormalizedIGD(a, ref)
	if err != nil {
		t.Fatal(err)
	}
	// Scale the second objective by 1000; normalized IGD must not change.
	scale := func(set [][]float64) [][]float64 {
		out := make([][]float64, len(set))
		for i, p := range set {
			out[i] = []float64{p[0], p[1] * 1000}
		}
		return out
	}
	n2, err := sp.NormalizedIGD(scale(a), scale(ref))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n1-n2) > 1e-12 {
		t.Fatalf("normalized IGD not scale invariant: %v vs %v", n1, n2)
	}
}

func TestIGDErrors(t *testing.T) {
	sp := NewSpace(Minimize)
	if _, err := sp.IGD(nil, [][]float64{{1}}); err == nil {
		t.Fatal("empty a accepted")
	}
	if _, err := sp.NormalizedIGD([][]float64{{1}}, nil); err == nil {
		t.Fatal("empty ref accepted")
	}
}
