package moea

import (
	"math"
	"testing"
	"testing/quick"

	"tradeoff/internal/rng"
)

// fig2 points in (utility, energy) with Maximize, Minimize senses:
// A dominates B; A and C are incomparable (paper Fig. 2).
var (
	fig2Space = UtilityEnergySpace()
	ptA       = []float64{10, 5}
	ptB       = []float64{8, 7}
	ptC       = []float64{6, 3}
)

func TestDominanceFigure2(t *testing.T) {
	sp := fig2Space
	if !sp.Dominates(ptA, ptB) {
		t.Error("A should dominate B")
	}
	if sp.Dominates(ptB, ptA) {
		t.Error("B should not dominate A")
	}
	if !sp.Incomparable(ptA, ptC) {
		t.Error("A and C should be incomparable")
	}
	if !sp.Incomparable(ptC, ptA) {
		t.Error("incomparability should be symmetric")
	}
}

func TestDominanceIsIrreflexive(t *testing.T) {
	sp := fig2Space
	if sp.Dominates(ptA, ptA) {
		t.Error("a point must not dominate itself")
	}
}

func TestDominanceEqualInOneStrictInOther(t *testing.T) {
	sp := fig2Space
	a := []float64{10, 5}
	b := []float64{10, 6} // same utility, more energy
	if !sp.Dominates(a, b) {
		t.Error("equal-in-one, better-in-other must dominate")
	}
}

func TestDominancePanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	fig2Space.Dominates([]float64{1}, []float64{1, 2})
}

func TestDominanceStrictPartialOrderProperty(t *testing.T) {
	// Antisymmetry and transitivity on random triples.
	sp := NewSpace(Minimize, Minimize, Maximize)
	check := func(seed uint32) bool {
		src := rng.New(uint64(seed))
		p := func() []float64 {
			return []float64{src.Range(0, 4), src.Range(0, 4), src.Range(0, 4)}
		}
		a, b, c := p(), p(), p()
		if sp.Dominates(a, b) && sp.Dominates(b, a) {
			return false // antisymmetry violated
		}
		if sp.Dominates(a, b) && sp.Dominates(b, c) && !sp.Dominates(a, c) {
			return false // transitivity violated
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func randomPoints(src *rng.Source, n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		// Small discrete grid to force duplicates and ties.
		pts[i] = []float64{float64(src.Intn(8)), float64(src.Intn(8))}
	}
	return pts
}

func TestFastNondominatedSortAgainstBruteForce(t *testing.T) {
	sp := UtilityEnergySpace()
	src := rng.New(11)
	for trial := 0; trial < 100; trial++ {
		pts := randomPoints(src, 1+src.Intn(40))
		fronts := sp.FastNondominatedSort(pts)

		// Every point appears exactly once.
		seen := make([]bool, len(pts))
		for _, f := range fronts {
			for _, i := range f {
				if seen[i] {
					t.Fatal("point appears in two fronts")
				}
				seen[i] = true
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("point %d missing from fronts", i)
			}
		}

		// Front 0 must equal the brute-force nondominated set.
		brute := map[int]bool{}
		for i := range pts {
			dominated := false
			for j := range pts {
				if i != j && sp.Dominates(pts[j], pts[i]) {
					dominated = true
					break
				}
			}
			if !dominated {
				brute[i] = true
			}
		}
		if len(fronts) == 0 {
			if len(brute) != 0 {
				t.Fatal("empty fronts for nonempty set")
			}
			continue
		}
		if len(fronts[0]) != len(brute) {
			t.Fatalf("front 0 size %d, brute force %d", len(fronts[0]), len(brute))
		}
		for _, i := range fronts[0] {
			if !brute[i] {
				t.Fatalf("point %d in front 0 but dominated", i)
			}
		}

		// No point in front k may dominate a point in an earlier front,
		// and within a front no point dominates another.
		for k, f := range fronts {
			for _, i := range f {
				for _, j := range f {
					if i != j && sp.Dominates(pts[i], pts[j]) {
						t.Fatalf("front %d contains dominating pair", k)
					}
				}
			}
		}
	}
}

func TestFastNondominatedSortEmpty(t *testing.T) {
	if got := fig2Space.FastNondominatedSort(nil); got != nil {
		t.Fatal("expected nil fronts for empty input")
	}
}

func TestDominanceCountRanks(t *testing.T) {
	sp := UtilityEnergySpace()
	// B is dominated by A only; C nondominated; A nondominated.
	pts := [][]float64{ptA, ptB, ptC}
	ranks := sp.DominanceCountRanks(pts)
	if ranks[0] != 1 || ranks[2] != 1 {
		t.Fatalf("nondominated ranks = %v, want 1", ranks)
	}
	if ranks[1] != 2 {
		t.Fatalf("B rank = %d, want 2 (dominated by A only)", ranks[1])
	}
}

func TestDominanceCountRank1MatchesFront0(t *testing.T) {
	sp := UtilityEnergySpace()
	src := rng.New(13)
	for trial := 0; trial < 50; trial++ {
		pts := randomPoints(src, 1+src.Intn(30))
		ranks := sp.DominanceCountRanks(pts)
		fronts := sp.FastNondominatedSort(pts)
		front0 := map[int]bool{}
		for _, i := range fronts[0] {
			front0[i] = true
		}
		for i, r := range ranks {
			if (r == 1) != front0[i] {
				t.Fatalf("rank-1 and front-0 disagree at %d", i)
			}
		}
	}
}

func TestParetoFrontSorted(t *testing.T) {
	sp := UtilityEnergySpace()
	pts := [][]float64{{5, 5}, {9, 9}, {1, 1}, {7, 7}, {3, 3}}
	// All incomparable (higher utility costs more energy) -> all on front.
	front := sp.ParetoFront(pts)
	if len(front) != 5 {
		t.Fatalf("front size %d, want 5", len(front))
	}
	// Sorted by utility descending (Maximize sense).
	for i := 1; i < len(front); i++ {
		if pts[front[i]][0] > pts[front[i-1]][0] {
			t.Fatal("front not sorted by first objective improving order")
		}
	}
}

func TestCrowdingDistanceBoundariesInfinite(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	pts := [][]float64{{0, 10}, {2, 8}, {4, 6}, {6, 4}, {10, 0}}
	front := []int{0, 1, 2, 3, 4}
	d := sp.CrowdingDistance(pts, front)
	if !math.IsInf(d[0], 1) || !math.IsInf(d[4], 1) {
		t.Fatalf("boundary distances = %v", d)
	}
	for i := 1; i < 4; i++ {
		if math.IsInf(d[i], 1) || d[i] <= 0 {
			t.Fatalf("interior distance %d = %v", i, d[i])
		}
	}
}

func TestCrowdingDistanceRewardsIsolation(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	// Points on a line; index 2 is crowded, index 1 is isolated.
	pts := [][]float64{{0, 100}, {50, 50}, {90, 10}, {91, 9}, {100, 0}}
	front := []int{0, 1, 2, 3, 4}
	d := sp.CrowdingDistance(pts, front)
	if !(d[1] > d[2]) {
		t.Fatalf("isolated point should have larger distance: %v", d)
	}
}

func TestCrowdingDistanceSmallFronts(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	pts := [][]float64{{1, 2}, {3, 4}}
	d := sp.CrowdingDistance(pts, []int{0, 1})
	if !math.IsInf(d[0], 1) || !math.IsInf(d[1], 1) {
		t.Fatal("fronts of size <= 2 should be all infinite")
	}
	if got := sp.CrowdingDistance(pts, nil); len(got) != 0 {
		t.Fatal("empty front should yield empty distances")
	}
}

func TestCrowdingDistanceDegenerateObjective(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	// All points share objective 1; span 0 must not produce NaN.
	pts := [][]float64{{0, 5}, {1, 5}, {2, 5}, {3, 5}}
	d := sp.CrowdingDistance(pts, []int{0, 1, 2, 3})
	for i, v := range d {
		if math.IsNaN(v) {
			t.Fatalf("distance %d is NaN", i)
		}
	}
}

func TestSenseString(t *testing.T) {
	if Minimize.String() != "minimize" || Maximize.String() != "maximize" {
		t.Fatal("Sense strings wrong")
	}
	if Sense(7).String() == "" {
		t.Fatal("unknown sense empty")
	}
}
