package moea

import (
	"math"
	"testing"

	"tradeoff/internal/rng"
)

// allSpaces2D enumerates the four sense combinations of a bi-objective
// space.
func allSpaces2D() []Space {
	return []Space{
		NewSpace(Minimize, Minimize),
		NewSpace(Minimize, Maximize),
		NewSpace(Maximize, Minimize),
		NewSpace(Maximize, Maximize),
	}
}

// randomPoints2D draws n points; quantizing to a small grid forces
// duplicate coordinates and exact ties.
func randomPoints2D(src *rng.Source, n int, quantized bool) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		x, y := src.Float64(), src.Float64()
		if quantized {
			x = math.Floor(x*8) / 8
			y = math.Floor(y*8) / 8
		}
		pts[i] = []float64{x, y}
	}
	return pts
}

func frontsEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for f := range a {
		if len(a[f]) != len(b[f]) {
			return false
		}
		for k := range a[f] {
			if a[f][k] != b[f][k] {
				return false
			}
		}
	}
	return true
}

// TestSort2DMatchesGenericProperty cross-checks the O(n log n) sweep
// against the generic pairwise algorithm on 1,000 random point sets,
// covering all sense combinations, duplicate-heavy quantized sets, and
// sizes from empty to a few hundred.
func TestSort2DMatchesGenericProperty(t *testing.T) {
	src := rng.New(42)
	for trial := 0; trial < 1000; trial++ {
		sp := allSpaces2D()[trial%4]
		n := src.Intn(120)
		if trial%10 == 0 {
			n = 200 + src.Intn(200)
		}
		pts := randomPoints2D(src, n, trial%3 == 0)
		fast := sp.NondominatedSort2D(pts)
		slow := sp.NondominatedSortGeneric(pts)
		if !frontsEqual(fast, slow) {
			t.Fatalf("trial %d (n=%d, senses=%v): sweep fronts %v != generic %v",
				trial, n, sp.Senses, fast, slow)
		}
	}
}

// TestSort2DKnownFronts pins a hand-checked instance in min/min space.
func TestSort2DKnownFronts(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	pts := [][]float64{
		{1, 5}, // front 0
		{2, 2}, // front 0
		{5, 1}, // front 0
		{2, 6}, // front 1 (dominated by {1,5})
		{3, 3}, // front 1 (dominated by {2,2})
		{3, 3}, // duplicate: same front as its twin
		{6, 6}, // front 2
	}
	fronts := sp.NondominatedSort2D(pts)
	want := [][]int{{0, 1, 2}, {3, 4, 5}, {6}}
	if !frontsEqual(fronts, want) {
		t.Fatalf("fronts %v, want %v", fronts, want)
	}
}

func TestSort2DPanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 3-dim space")
		}
	}()
	NewSpace(Minimize, Minimize, Minimize).NondominatedSort2D(nil)
}

// referenceCrowding is a deliberately naive reimplementation of Deb's
// crowding distance used as an oracle.
func referenceCrowding(sp Space, points [][]float64, front []int) []float64 {
	n := len(front)
	dist := make([]float64, n)
	if n == 0 {
		return dist
	}
	if n <= 2 {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		return dist
	}
	for m := 0; m < sp.Dim(); m++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		// Insertion sort by objective m (stable; values are distinct in
		// the cases this oracle is used for).
		for i := 1; i < n; i++ {
			for j := i; j > 0 && points[front[idx[j]]][m] < points[front[idx[j-1]]][m]; j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		lo := points[front[idx[0]]][m]
		hi := points[front[idx[n-1]]][m]
		dist[idx[0]] = math.Inf(1)
		dist[idx[n-1]] = math.Inf(1)
		span := hi - lo
		if span == 0 {
			continue
		}
		for k := 1; k < n-1; k++ {
			if math.IsInf(dist[idx[k]], 1) {
				continue
			}
			dist[idx[k]] += (points[front[idx[k+1]]][m] - points[front[idx[k-1]]][m]) / span
		}
	}
	return dist
}

// TestCrowdingFastPathMatchesReference exercises the 2-D staircase fast
// path: fronts produced by nondominated sorting of distinct random
// points are strict staircases, so the single-sort path runs and must
// agree exactly with the naive oracle.
func TestCrowdingFastPathMatchesReference(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 300; trial++ {
		sp := allSpaces2D()[trial%4]
		pts := randomPoints2D(src, 3+src.Intn(80), false)
		for _, front := range sp.FastNondominatedSort(pts) {
			got := sp.CrowdingDistance(pts, front)
			want := referenceCrowding(sp, pts, front)
			for k := range want {
				if got[k] != want[k] && !(math.IsInf(got[k], 1) && math.IsInf(want[k], 1)) {
					t.Fatalf("trial %d front %v position %d: crowding %v, want %v",
						trial, front, k, got[k], want[k])
				}
			}
		}
	}
}

// TestCrowdingGenericFallback feeds non-staircase index sets (not
// mutually nondominated), which must take the generic path and still
// match the oracle.
func TestCrowdingGenericFallback(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	pts := [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 0.5}, {0.5, 3}}
	front := []int{0, 1, 2, 3, 4}
	got := sp.CrowdingDistance(pts, front)
	want := referenceCrowding(sp, pts, front)
	for k := range want {
		if got[k] != want[k] && !(math.IsInf(got[k], 1) && math.IsInf(want[k], 1)) {
			t.Fatalf("position %d: crowding %v, want %v", k, got[k], want[k])
		}
	}
}

// TestRankerReuse verifies a single Ranker produces correct results over
// repeated calls with varying sizes (the buffers shrink and grow).
func TestRankerReuse(t *testing.T) {
	r := NewRanker()
	src := rng.New(11)
	for trial := 0; trial < 200; trial++ {
		sp := allSpaces2D()[trial%4]
		pts := randomPoints2D(src, src.Intn(150), trial%2 == 0)
		got := r.Fronts(sp, pts)
		want := sp.NondominatedSortGeneric(pts)
		if !frontsEqual(got, want) {
			t.Fatalf("trial %d: reused ranker fronts diverge", trial)
		}
	}
}

// TestDominanceCountGroupsMatchesRanks cross-checks the scratch-reusing
// grouping against the allocating DominanceCountRanks.
func TestDominanceCountGroupsMatchesRanks(t *testing.T) {
	r := NewRanker()
	src := rng.New(13)
	for trial := 0; trial < 200; trial++ {
		sp := allSpaces2D()[trial%4]
		pts := randomPoints2D(src, src.Intn(100), trial%2 == 0)
		ranks := sp.DominanceCountRanks(pts)
		groups := r.DominanceCountGroups(sp, pts)
		seen := 0
		prevRank := 0
		for _, g := range groups {
			if len(g) == 0 {
				t.Fatalf("trial %d: empty group", trial)
			}
			rank := ranks[g[0]]
			if rank <= prevRank {
				t.Fatalf("trial %d: group ranks not ascending", trial)
			}
			prevRank = rank
			for _, i := range g {
				if ranks[i] != rank {
					t.Fatalf("trial %d: mixed ranks in group", trial)
				}
				seen++
			}
		}
		if seen != len(pts) {
			t.Fatalf("trial %d: groups cover %d of %d points", trial, seen, len(pts))
		}
	}
}

func BenchmarkSort2DvsGeneric(b *testing.B) {
	src := rng.New(3)
	sp := UtilityEnergySpace()
	pts := randomPoints2D(src, 2000, false)
	b.Run("sweep", func(b *testing.B) {
		b.ReportAllocs()
		r := NewRanker()
		for i := 0; i < b.N; i++ {
			r.Fronts(sp, pts)
		}
	})
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		r := NewRanker()
		for i := 0; i < b.N; i++ {
			r.frontsGeneric(sp, pts)
		}
	})
}
