package moea

import (
	"math"
	"testing"

	"tradeoff/internal/rng"
)

func TestArchiveBasics(t *testing.T) {
	ar := NewArchive(UtilityEnergySpace())
	if !ar.Add(ptA, "A") {
		t.Fatal("first add rejected")
	}
	if ar.Add(ptB, "B") {
		t.Fatal("dominated point accepted")
	}
	if !ar.Add(ptC, "C") {
		t.Fatal("incomparable point rejected")
	}
	if ar.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ar.Len())
	}
}

func TestArchiveEviction(t *testing.T) {
	ar := NewArchive(UtilityEnergySpace())
	ar.Add([]float64{5, 5}, 1)
	ar.Add([]float64{4, 4}, 2)
	// Dominates both.
	if !ar.Add([]float64{6, 3}, 3) {
		t.Fatal("dominating point rejected")
	}
	if ar.Len() != 1 {
		t.Fatalf("Len = %d after eviction, want 1", ar.Len())
	}
	if ar.Payloads()[0] != 3 {
		t.Fatal("wrong survivor")
	}
}

func TestArchiveRejectsDuplicates(t *testing.T) {
	ar := NewArchive(UtilityEnergySpace())
	ar.Add([]float64{5, 5}, 1)
	if ar.Add([]float64{5, 5}, 2) {
		t.Fatal("duplicate accepted")
	}
}

func TestArchiveInvariantNondominated(t *testing.T) {
	sp := UtilityEnergySpace()
	ar := NewArchive(sp)
	src := rng.New(3)
	for i := 0; i < 500; i++ {
		ar.Add([]float64{src.Range(0, 10), src.Range(0, 10)}, i)
	}
	pts := ar.Points()
	for i := range pts {
		for j := range pts {
			if i != j && sp.Dominates(pts[i], pts[j]) {
				t.Fatal("archive contains dominated point")
			}
		}
	}
	// Points sorted by utility descending.
	for i := 1; i < len(pts); i++ {
		if pts[i][0] > pts[i-1][0] {
			t.Fatal("archive points not sorted")
		}
	}
}

func TestArchivePointsAreCopies(t *testing.T) {
	ar := NewArchive(UtilityEnergySpace())
	ar.Add([]float64{5, 5}, nil)
	pts := ar.Points()
	pts[0][0] = 999
	if ar.Points()[0][0] == 999 {
		t.Fatal("Points exposes internal storage")
	}
}

func TestHypervolume2DKnownArea(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	pts := [][]float64{{1, 3}, {2, 2}, {3, 1}}
	ref := []float64{4, 4}
	// Staircase area: (4-1)*(4-3) + (4-2)*(3-2) + (4-3)*(2-1) = 3+2+1 = 6.
	if got := sp.Hypervolume2D(pts, ref); math.Abs(got-6) > 1e-12 {
		t.Fatalf("HV = %v, want 6", got)
	}
}

func TestHypervolume2DMaximizeSense(t *testing.T) {
	sp := UtilityEnergySpace() // maximize U, minimize E
	pts := [][]float64{{3, 1}, {2, 2}, {1, 3}}
	// In minimization coords: (-3,1), (-2,2), (-1,3); ref (0,4).
	ref := []float64{0, 4}
	// Area: (0-(-3))*(4-1)=9 for first; then bestY=1, others dominated in y.
	// (-2,2): y=2 >= 1 -> skipped; (-1,3) skipped. Total 9.
	if got := sp.Hypervolume2D(pts, ref); math.Abs(got-9) > 1e-12 {
		t.Fatalf("HV = %v, want 9", got)
	}
}

func TestHypervolume2DIgnoresPointsOutsideRef(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	pts := [][]float64{{5, 5}}
	if got := sp.Hypervolume2D(pts, []float64{4, 4}); got != 0 {
		t.Fatalf("HV = %v, want 0", got)
	}
}

func TestHypervolume2DDominatedPointsDoNotAdd(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	base := sp.Hypervolume2D([][]float64{{1, 1}}, []float64{4, 4})
	with := sp.Hypervolume2D([][]float64{{1, 1}, {2, 2}}, []float64{4, 4})
	if math.Abs(base-with) > 1e-12 {
		t.Fatalf("dominated point changed HV: %v vs %v", base, with)
	}
}

func TestHypervolumeMonotoneUnderImprovement(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	src := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		var pts [][]float64
		for i := 0; i < 10; i++ {
			pts = append(pts, []float64{src.Range(0, 3), src.Range(0, 3)})
		}
		ref := []float64{4, 4}
		before := sp.Hypervolume2D(pts, ref)
		// Add a point dominating an existing one.
		pts = append(pts, []float64{pts[0][0] - 0.1, pts[0][1] - 0.1})
		after := sp.Hypervolume2D(pts, ref)
		if after < before-1e-12 {
			t.Fatalf("hypervolume decreased after adding dominating point")
		}
	}
}

func TestSpreadUniformVsClustered(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	uniform := [][]float64{{0, 4}, {1, 3}, {2, 2}, {3, 1}, {4, 0}}
	clustered := [][]float64{{0, 4}, {0.1, 3.9}, {0.2, 3.8}, {0.3, 3.7}, {4, 0}}
	if u, c := sp.Spread(uniform), sp.Spread(clustered); !(u < c) {
		t.Fatalf("uniform spread %v should be below clustered %v", u, c)
	}
}

func TestSpreadSmallFront(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	if got := sp.Spread([][]float64{{1, 1}, {2, 0}}); got != 0 {
		t.Fatalf("Spread of 2-point front = %v, want 0", got)
	}
}

func TestCoverage(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	a := [][]float64{{0, 0}}
	b := [][]float64{{1, 1}, {2, 2}, {0, 0}}
	// a dominates the first two of b, not the equal third.
	if got := sp.Coverage(a, b); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Coverage = %v, want 2/3", got)
	}
	if got := sp.Coverage(a, nil); got != 0 {
		t.Fatalf("Coverage with empty B = %v", got)
	}
}

func TestReferenceFromDominatedByAll(t *testing.T) {
	sp := UtilityEnergySpace()
	src := rng.New(6)
	var set [][]float64
	for i := 0; i < 40; i++ {
		set = append(set, []float64{src.Range(1, 9), src.Range(1, 9)})
	}
	ref := sp.ReferenceFrom(0.05, set)
	for _, p := range set {
		if !sp.Dominates(p, ref) {
			t.Fatalf("point %v does not dominate reference %v", p, ref)
		}
	}
	// Hypervolume with this reference counts every point.
	if hv := sp.Hypervolume2D(set, ref); hv <= 0 {
		t.Fatalf("HV = %v, want > 0", hv)
	}
}

func TestReferenceFromEmpty(t *testing.T) {
	sp := UtilityEnergySpace()
	ref := sp.ReferenceFrom(0.05)
	if len(ref) != 2 {
		t.Fatal("reference has wrong dimension")
	}
}

func BenchmarkFastNondominatedSort200(b *testing.B) {
	sp := UtilityEnergySpace()
	src := rng.New(1)
	pts := make([][]float64, 200)
	for i := range pts {
		pts[i] = []float64{src.Range(0, 100), src.Range(0, 100)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sp.FastNondominatedSort(pts)
	}
}

func BenchmarkCrowdingDistance200(b *testing.B) {
	sp := UtilityEnergySpace()
	src := rng.New(2)
	pts := make([][]float64, 200)
	front := make([]int, 200)
	for i := range pts {
		pts[i] = []float64{src.Range(0, 100), src.Range(0, 100)}
		front[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sp.CrowdingDistance(pts, front)
	}
}

func BenchmarkHypervolume200(b *testing.B) {
	sp := UtilityEnergySpace()
	src := rng.New(3)
	pts := make([][]float64, 200)
	for i := range pts {
		pts[i] = []float64{src.Range(0, 100), src.Range(0, 100)}
	}
	ref := sp.ReferenceFrom(0.05, pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sp.Hypervolume2D(pts, ref)
	}
}

func TestBoundedArchivePrunes(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	ar := NewBoundedArchive(sp, 5)
	// Insert 50 mutually nondominated points along a line.
	for i := 0; i < 50; i++ {
		x := float64(i)
		ar.Add([]float64{x, 49 - x}, i)
	}
	if ar.Len() != 5 {
		t.Fatalf("bounded archive holds %d, want 5", ar.Len())
	}
	// Boundary points survive (infinite crowding distance).
	pts := ar.Points()
	hasMinX, hasMaxX := false, false
	for _, p := range pts {
		if p[0] == 0 {
			hasMinX = true
		}
		if p[0] == 49 {
			hasMaxX = true
		}
	}
	if !hasMinX || !hasMaxX {
		t.Fatalf("boundary points pruned: %v", pts)
	}
}

func TestBoundedArchiveStillRejectsDominated(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	ar := NewBoundedArchive(sp, 3)
	ar.Add([]float64{1, 1}, nil)
	if ar.Add([]float64{2, 2}, nil) {
		t.Fatal("dominated point accepted by bounded archive")
	}
}

func TestNewBoundedArchivePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for maxSize 0")
		}
	}()
	NewBoundedArchive(NewSpace(Minimize), 0)
}

// --- Hypervolume2D degenerate inputs (duplicates, reference-equal
// points, single-point fronts) ---------------------------------------

func TestHypervolume2DDuplicatePoints(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	ref := []float64{10, 10}
	single := sp.Hypervolume2D([][]float64{{2, 3}}, ref)
	dup := sp.Hypervolume2D([][]float64{{2, 3}, {2, 3}, {2, 3}}, ref)
	if single != dup {
		t.Fatalf("duplicates changed hypervolume: %v vs %v", single, dup)
	}
	if want := (10.0 - 2) * (10 - 3); single != want {
		t.Fatalf("hypervolume %v, want %v", single, want)
	}
}

func TestHypervolume2DPointEqualToReference(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	ref := []float64{5, 5}
	// A point equal to the reference dominates zero area and must
	// contribute nothing (it does not strictly dominate the reference).
	if hv := sp.Hypervolume2D([][]float64{{5, 5}}, ref); hv != 0 {
		t.Fatalf("reference-equal point contributed %v", hv)
	}
	// Equal in just one coordinate: also excluded (needs to be strictly
	// better in both to bound positive area).
	if hv := sp.Hypervolume2D([][]float64{{5, 1}, {1, 5}}, ref); hv != 0 {
		t.Fatalf("edge points contributed %v", hv)
	}
	// A strictly dominating point mixed with reference-equal ones counts
	// exactly once.
	hv := sp.Hypervolume2D([][]float64{{5, 5}, {4, 4}, {5, 1}}, ref)
	if want := 1.0; hv != want {
		t.Fatalf("hypervolume %v, want %v", hv, want)
	}
}

func TestHypervolume2DSinglePointFront(t *testing.T) {
	for _, sp := range []Space{
		NewSpace(Minimize, Minimize),
		UtilityEnergySpace(),
	} {
		ref := []float64{0, 100}
		pt := []float64{10, 20}
		if sp.Senses[0] == Minimize {
			ref[0] = 100
		}
		hv := sp.Hypervolume2D([][]float64{pt}, ref)
		want := (100.0 - 10) * (100 - 20)
		if sp.Senses[0] == Maximize {
			want = (10.0 - 0) * (100 - 20)
		}
		if hv != want {
			t.Fatalf("senses %v: hypervolume %v, want %v", sp.Senses, hv, want)
		}
	}
}

func TestHypervolume2DEmptyFront(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	if hv := sp.Hypervolume2D(nil, []float64{1, 1}); hv != 0 {
		t.Fatalf("empty front hypervolume %v", hv)
	}
}

func TestHypervolume2DDuplicateColumn(t *testing.T) {
	// Several points sharing one coordinate: only the best survives the
	// staircase; duplicates of the staircase corner must not double-count.
	sp := NewSpace(Minimize, Minimize)
	ref := []float64{10, 10}
	hv := sp.Hypervolume2D([][]float64{{2, 3}, {2, 5}, {2, 9}, {4, 3}}, ref)
	if want := (10.0 - 2) * (10 - 3); hv != want {
		t.Fatalf("hypervolume %v, want %v", hv, want)
	}
}
