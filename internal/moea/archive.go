package moea

import (
	"math"
	"sort"
)

// Archive incrementally maintains a nondominated set of objective
// vectors with attached payloads. Adding a dominated point is a no-op;
// adding a dominating point evicts everything it dominates. Duplicated
// objective vectors are kept only once (first wins).
//
// Two modes share the API:
//
//   - Exact mode (NewArchive / NewBoundedArchive): plain Pareto
//     dominance, O(n) scan per insert. Suitable for small fronts.
//   - ε-dominance mode (NewEpsilonArchive): objective space is cut into
//     an ε-grid and at most one representative is kept per occupied box
//     (DESIGN.md §13). Insert cost is O(log n) against the 2-D box
//     staircase with an O(1) hash fast path for repeat boxes, and the
//     archive size is bounded by the grid resolution regardless of how
//     many points stream in — the property that keeps million-point
//     fronts tractable.
type Archive struct {
	space    Space
	points   [][]float64
	payloads []interface{}
	// maxSize bounds the archive; 0 means unbounded. When full, the most
	// crowded point is pruned to make room, keeping the front spread.
	maxSize int

	// ε-grid state; nil eps selects exact mode. boxes holds the
	// canonical (minimization-sense) box coordinates of every entry,
	// dim values per entry, aligned with points/payloads. In the 2-D
	// fast path entries are kept sorted by box0 strictly ascending —
	// mutual box-nondominance then forces box1 strictly descending, a
	// staircase that binary-searches in O(log n). freeVals recycles
	// point buffers so steady-state inserts never allocate.
	eps      []float64
	boxes    []int64
	freeVals [][]float64
	hints    []boxHint
}

// boxHint is one slot of the direct-mapped box→index hint table: the
// O(1) fast path for candidates landing in an already-occupied box (the
// common case once a front has formed). Hints are verified against the
// live staircase before use, so stale entries are harmless.
type boxHint struct {
	b0, b1 int64
	idx    int32
	live   bool
}

// boxHintSize is the hint-table size (power of two).
const boxHintSize = 256

// NewArchive returns an empty unbounded archive over the given space.
func NewArchive(space Space) *Archive {
	return &Archive{space: space}
}

// NewBoundedArchive returns an archive that holds at most maxSize
// nondominated points, pruning the most crowded one on overflow.
func NewBoundedArchive(space Space, maxSize int) *Archive {
	if maxSize < 1 {
		panic("moea: bounded archive needs maxSize >= 1")
	}
	return &Archive{space: space, maxSize: maxSize}
}

// NewEpsilonArchive returns a bounded ε-dominance archive: objective
// space is partitioned into boxes of per-objective width eps[k]
// (canonicalized to minimization sense), at most one point is retained
// per occupied box, and a candidate is rejected when an occupied box
// dominates its box component-wise. Within one box the duel keeps the
// dominating point, or failing that the point closer to the box's
// utopia corner, with ties resolved for the incumbent — so outcomes are
// deterministic in the insertion order. maxSize is a hard cap on top of
// the grid bound; on overflow the most crowded point is pruned.
//
// All storage is preallocated at construction: steady-state Add never
// allocates.
func NewEpsilonArchive(space Space, eps []float64, maxSize int) *Archive {
	if maxSize < 1 {
		panic("moea: epsilon archive needs maxSize >= 1")
	}
	dim := len(space.Senses)
	if len(eps) != dim {
		panic("moea: epsilon archive needs one eps per objective")
	}
	for _, e := range eps {
		if !(e > 0) {
			panic("moea: epsilon archive needs eps > 0")
		}
	}
	capSlots := maxSize + 1 // one transient extra before overflow pruning
	ar := &Archive{
		space:    space,
		maxSize:  maxSize,
		eps:      append([]float64(nil), eps...),
		points:   make([][]float64, 0, capSlots),
		payloads: make([]interface{}, 0, capSlots),
		boxes:    make([]int64, 0, capSlots*dim),
		freeVals: make([][]float64, 0, capSlots),
		hints:    make([]boxHint, boxHintSize),
	}
	back := make([]float64, capSlots*dim)
	for s := 0; s < capSlots; s++ {
		ar.freeVals = append(ar.freeVals, back[s*dim:s*dim:(s+1)*dim])
	}
	return ar
}

// Len returns the number of archived points.
func (ar *Archive) Len() int { return len(ar.points) }

// Epsilon returns a copy of the per-objective box widths, or nil for an
// exact-mode archive.
func (ar *Archive) Epsilon() []float64 {
	if ar.eps == nil {
		return nil
	}
	return append([]float64(nil), ar.eps...)
}

// Add offers a point to the archive. It returns true if the point was
// accepted (i.e. it is nondominated — box-wise in ε mode — with respect
// to the archive and not an exact duplicate). The point is copied;
// rejected points and payloads are never retained.
//
//detlint:pure
func (ar *Archive) Add(point []float64, payload interface{}) bool {
	if ar.eps != nil {
		return ar.addEps(point, payload)
	}
	for _, p := range ar.points {
		if ar.space.Dominates(p, point) || equalVec(p, point) {
			return false
		}
	}
	// Evict points the newcomer dominates.
	keepPts := ar.points[:0]
	keepPay := ar.payloads[:0]
	for i, p := range ar.points {
		if !ar.space.Dominates(point, p) {
			keepPts = append(keepPts, p)
			keepPay = append(keepPay, ar.payloads[i])
		}
	}
	// Clear the vacated tail so evicted points and payloads are
	// released to the collector, not retained by the backing arrays.
	for i := len(keepPts); i < len(ar.points); i++ {
		ar.points[i] = nil
		ar.payloads[i] = nil
	}
	ar.points = keepPts
	ar.payloads = keepPay
	ar.points = append(ar.points, append([]float64(nil), point...))
	ar.payloads = append(ar.payloads, payload)
	if ar.maxSize > 0 && len(ar.points) > ar.maxSize {
		ar.pruneMostCrowded()
	}
	return true
}

// canon returns objective k of point in canonical minimization sense.
func (ar *Archive) canon(point []float64, k int) float64 {
	if ar.space.Senses[k] == Maximize {
		return -point[k]
	}
	return point[k]
}

// boxCoord returns the ε-grid coordinate of objective k of point.
func (ar *Archive) boxCoord(point []float64, k int) int64 {
	return int64(math.Floor(ar.canon(point, k) / ar.eps[k]))
}

// addEps dispatches an ε-mode insert: the 2-D staircase fast path for
// bi-objective spaces, a linear box scan otherwise.
//
//detlint:hotpath
func (ar *Archive) addEps(point []float64, payload interface{}) bool {
	if len(point) != len(ar.eps) {
		panic("moea: point dimension mismatch")
	}
	if len(ar.eps) == 2 {
		return ar.addEps2D(point, payload)
	}
	return ar.addEpsGeneric(point, payload)
}

// hashBox mixes a 2-D box coordinate into a hint-table slot with fixed
// constants (splitmix64 finalizer), so runs are reproducible across
// processes.
func hashBox(b0, b1 int64) uint64 {
	x := uint64(b0)*0x9e3779b97f4a7c15 ^ uint64(b1)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// addEps2D inserts into the sorted box staircase: box0 strictly
// ascending, box1 strictly descending. A verified hash hint resolves
// repeat boxes in O(1); otherwise a manual binary search (sort.Search's
// closure would allocate here) finds the candidate's column in
// O(log n). Structural edits splice a contiguous run, so the staircase
// invariant is maintained without re-sorting.
//
//detlint:hotpath
func (ar *Archive) addEps2D(point []float64, payload interface{}) bool {
	b0 := ar.boxCoord(point, 0)
	b1 := ar.boxCoord(point, 1)
	n := len(ar.points)

	// O(1) fast path: a verified hint for an already-occupied box.
	h := hashBox(b0, b1) & (boxHintSize - 1)
	if e := &ar.hints[h]; e.live && e.b0 == b0 && e.b1 == b1 {
		if i := int(e.idx); i < n && ar.boxes[2*i] == b0 && ar.boxes[2*i+1] == b1 {
			return ar.duel(i, point, payload)
		}
		e.live = false // stale after a structural edit; fall through
	}

	// Lower bound: first entry with box0 >= b0.
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ar.boxes[2*mid] < b0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	if i < n && ar.boxes[2*i] == b0 {
		if ar.boxes[2*i+1] == b1 {
			ar.hints[h] = boxHint{b0: b0, b1: b1, idx: int32(i), live: true}
			return ar.duel(i, point, payload)
		}
		if ar.boxes[2*i+1] < b1 {
			return false // same column, strictly better row ⇒ box-dominated
		}
		// Entry i shares the column with a worse row: it falls inside
		// the eviction run below.
	} else if i > 0 && ar.boxes[2*(i-1)+1] <= b1 {
		// The staircase predecessor has box0 < b0; with box1 <= b1 it
		// box-dominates the candidate. Because box1 is descending, the
		// predecessor holds the minimum box1 over all columns <= b0, so
		// this single probe decides dominance for the whole prefix.
		return false
	}
	// Evict the box-dominated run [i, j): entries with box0 >= b0 and
	// box1 >= b1 form a contiguous prefix of the suffix.
	j := i
	for j < n && ar.boxes[2*j+1] >= b1 {
		j++
	}
	ar.spliceEps(i, j, b0, b1, point, payload)
	ar.hints[h] = boxHint{b0: b0, b1: b1, idx: int32(i), live: true}
	if len(ar.points) > ar.maxSize {
		ar.pruneEps()
	}
	return true
}

// spliceEps replaces the entry run [i, j) with one new entry at i,
// recycling freed point buffers. All slices were preallocated at
// construction, so no allocation happens here.
//
//detlint:hotpath
func (ar *Archive) spliceEps(i, j int, b0, b1 int64, point []float64, payload interface{}) {
	n := len(ar.points)
	dim := len(ar.eps)
	if j == i {
		// Pure insert: shift the suffix right by one and fill slot i
		// from the free-buffer stack.
		ar.points = ar.points[:n+1]
		ar.payloads = ar.payloads[:n+1]
		ar.boxes = ar.boxes[:dim*(n+1)]
		copy(ar.points[i+1:], ar.points[i:n])
		copy(ar.payloads[i+1:], ar.payloads[i:n])
		copy(ar.boxes[dim*(i+1):], ar.boxes[dim*i:dim*n])
		k := len(ar.freeVals) - 1
		v := ar.freeVals[k][:dim]
		ar.freeVals = ar.freeVals[:k]
		copy(v, point)
		ar.points[i] = v
		ar.payloads[i] = payload
		ar.boxes[dim*i] = b0
		ar.boxes[dim*i+1] = b1
		return
	}
	// Overwrite entry i in place, recycle (i, j), close the gap.
	copy(ar.points[i], point)
	ar.payloads[i] = payload
	ar.boxes[dim*i] = b0
	ar.boxes[dim*i+1] = b1
	if j == i+1 {
		return
	}
	nf := len(ar.freeVals)
	ar.freeVals = ar.freeVals[:nf+(j-i-1)]
	for k := i + 1; k < j; k++ {
		ar.freeVals[nf] = ar.points[k]
		nf++
	}
	copy(ar.points[i+1:], ar.points[j:n])
	copy(ar.payloads[i+1:], ar.payloads[j:n])
	copy(ar.boxes[dim*(i+1):], ar.boxes[dim*j:dim*n])
	m := n - (j - i - 1)
	for k := m; k < n; k++ {
		ar.points[k] = nil // release evicted refs, do not retain
		ar.payloads[k] = nil
	}
	ar.points = ar.points[:m]
	ar.payloads = ar.payloads[:m]
	ar.boxes = ar.boxes[:dim*m]
}

// duel resolves a candidate landing in entry i's box: the dominating
// point wins; between incomparable points the one closer to the box's
// utopia corner (ε-normalized canonical coordinates) wins; exact ties
// keep the incumbent. The replacement reuses the incumbent's buffer.
//
//detlint:hotpath
func (ar *Archive) duel(i int, point []float64, payload interface{}) bool {
	inc := ar.points[i]
	if ar.space.Dominates(point, inc) {
		copy(inc, point)
		ar.payloads[i] = payload
		return true
	}
	if ar.space.Dominates(inc, point) || equalVec(inc, point) {
		return false
	}
	var dc, dq float64
	for k := range point {
		bk := float64(ar.boxCoord(point, k))
		cc := ar.canon(point, k)/ar.eps[k] - bk
		cq := ar.canon(inc, k)/ar.eps[k] - bk
		dc += cc * cc
		dq += cq * cq
	}
	if dc < dq {
		copy(inc, point)
		ar.payloads[i] = payload
		return true
	}
	return false
}

// addEpsGeneric is the ε-mode fallback for spaces with other than two
// objectives: a linear scan over the (bounded) box set. Entries are
// kept in insertion order; Points/Payloads sort on output.
func (ar *Archive) addEpsGeneric(point []float64, payload interface{}) bool {
	dim := len(ar.eps)
	n := len(ar.points)
	for i := 0; i < n; i++ {
		leq, geq := true, true
		for k := 0; k < dim; k++ {
			eb, cb := ar.boxes[i*dim+k], ar.boxCoord(point, k)
			if eb > cb {
				leq = false
			}
			if eb < cb {
				geq = false
			}
		}
		if leq && geq {
			return ar.duel(i, point, payload)
		}
		if leq {
			return false // an occupied box dominates the candidate's
		}
	}
	// Evict entries whose boxes the candidate dominates (>= in every
	// coordinate; equality was handled above), compacting in order.
	w := 0
	for i := 0; i < n; i++ {
		dominated := true
		for k := 0; k < dim; k++ {
			if ar.boxes[i*dim+k] < ar.boxCoord(point, k) {
				dominated = false
				break
			}
		}
		if dominated {
			ar.freeVals = ar.freeVals[:len(ar.freeVals)+1]
			ar.freeVals[len(ar.freeVals)-1] = ar.points[i]
			continue
		}
		ar.points[w] = ar.points[i]
		ar.payloads[w] = ar.payloads[i]
		copy(ar.boxes[w*dim:(w+1)*dim], ar.boxes[i*dim:(i+1)*dim])
		w++
	}
	for k := w; k < n; k++ {
		ar.points[k] = nil
		ar.payloads[k] = nil
	}
	k := len(ar.freeVals) - 1
	v := ar.freeVals[k][:dim]
	ar.freeVals = ar.freeVals[:k]
	copy(v, point)
	ar.points = ar.points[:w+1]
	ar.payloads = ar.payloads[:w+1]
	ar.boxes = ar.boxes[:(w+1)*dim]
	ar.points[w] = v
	ar.payloads[w] = payload
	for d := 0; d < dim; d++ {
		ar.boxes[w*dim+d] = ar.boxCoord(point, d)
	}
	if len(ar.points) > ar.maxSize {
		ar.pruneEps()
	}
	return true
}

// pruneEps removes the point with the smallest crowding distance while
// preserving entry order (the 2-D staircase must stay sorted), and
// recycles its buffer.
func (ar *Archive) pruneEps() {
	front := make([]int, len(ar.points))
	for i := range front {
		front[i] = i
	}
	dist := ar.space.CrowdingDistance(ar.points, front)
	victim := -1
	for i, d := range dist {
		if victim == -1 || d < dist[victim] {
			victim = i
		}
	}
	if victim == -1 {
		return
	}
	n := len(ar.points)
	dim := len(ar.eps)
	ar.freeVals = ar.freeVals[:len(ar.freeVals)+1]
	ar.freeVals[len(ar.freeVals)-1] = ar.points[victim]
	copy(ar.points[victim:], ar.points[victim+1:n])
	copy(ar.payloads[victim:], ar.payloads[victim+1:n])
	copy(ar.boxes[dim*victim:], ar.boxes[dim*(victim+1):dim*n])
	ar.points[n-1] = nil
	ar.payloads[n-1] = nil
	ar.points = ar.points[:n-1]
	ar.payloads = ar.payloads[:n-1]
	ar.boxes = ar.boxes[:dim*(n-1)]
}

// pruneMostCrowded removes the point with the smallest crowding distance
// (never a boundary point, whose distance is infinite).
func (ar *Archive) pruneMostCrowded() {
	front := make([]int, len(ar.points))
	for i := range front {
		front[i] = i
	}
	dist := ar.space.CrowdingDistance(ar.points, front)
	victim := -1
	for i, d := range dist {
		if victim == -1 || d < dist[victim] {
			victim = i
		}
	}
	if victim == -1 {
		return
	}
	last := len(ar.points) - 1
	ar.points[victim] = ar.points[last]
	ar.payloads[victim] = ar.payloads[last]
	ar.points[last] = nil // release, do not retain
	ar.payloads[last] = nil
	ar.points = ar.points[:last]
	ar.payloads = ar.payloads[:last]
}

// Points returns copies of the archived objective vectors, sorted by the
// first objective in improving order.
func (ar *Archive) Points() [][]float64 {
	out := make([][]float64, len(ar.points))
	idx := ar.sortedIdx()
	for i, j := range idx {
		out[i] = append([]float64(nil), ar.points[j]...)
	}
	return out
}

// Payloads returns the payloads in the same order as Points.
func (ar *Archive) Payloads() []interface{} {
	idx := ar.sortedIdx()
	out := make([]interface{}, len(idx))
	for i, j := range idx {
		out[i] = ar.payloads[j]
	}
	return out
}

// sortedIdx orders entries by the first objective in improving order.
// The comparator is total (ties fall back to entry index) so the two
// independent calls from Points and Payloads always agree.
func (ar *Archive) sortedIdx() []int {
	idx := make([]int, len(ar.points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		x, y := ar.points[idx[a]][0], ar.points[idx[b]][0]
		if x != y {
			if ar.space.Senses[0] == Maximize {
				return x > y
			}
			return x < y
		}
		return idx[a] < idx[b]
	})
	return idx
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
