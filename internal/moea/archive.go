package moea

import "sort"

// Archive incrementally maintains a nondominated set of objective
// vectors with attached payloads. Adding a dominated point is a no-op;
// adding a dominating point evicts everything it dominates. Duplicated
// objective vectors are kept only once (first wins).
type Archive struct {
	space    Space
	points   [][]float64
	payloads []interface{}
	// maxSize bounds the archive; 0 means unbounded. When full, the most
	// crowded point is pruned to make room, keeping the front spread.
	maxSize int
}

// NewArchive returns an empty unbounded archive over the given space.
func NewArchive(space Space) *Archive {
	return &Archive{space: space}
}

// NewBoundedArchive returns an archive that holds at most maxSize
// nondominated points, pruning the most crowded one on overflow.
func NewBoundedArchive(space Space, maxSize int) *Archive {
	if maxSize < 1 {
		panic("moea: bounded archive needs maxSize >= 1")
	}
	return &Archive{space: space, maxSize: maxSize}
}

// Len returns the number of archived points.
func (ar *Archive) Len() int { return len(ar.points) }

// Add offers a point to the archive. It returns true if the point was
// accepted (i.e. it is nondominated with respect to the archive and not
// an exact duplicate).
func (ar *Archive) Add(point []float64, payload interface{}) bool {
	for _, p := range ar.points {
		if ar.space.Dominates(p, point) || equalVec(p, point) {
			return false
		}
	}
	// Evict points the newcomer dominates.
	keepPts := ar.points[:0]
	keepPay := ar.payloads[:0]
	for i, p := range ar.points {
		if !ar.space.Dominates(point, p) {
			keepPts = append(keepPts, p)
			keepPay = append(keepPay, ar.payloads[i])
		}
	}
	ar.points = keepPts
	ar.payloads = keepPay
	ar.points = append(ar.points, append([]float64(nil), point...))
	ar.payloads = append(ar.payloads, payload)
	if ar.maxSize > 0 && len(ar.points) > ar.maxSize {
		ar.pruneMostCrowded()
	}
	return true
}

// pruneMostCrowded removes the point with the smallest crowding distance
// (never a boundary point, whose distance is infinite).
func (ar *Archive) pruneMostCrowded() {
	front := make([]int, len(ar.points))
	for i := range front {
		front[i] = i
	}
	dist := ar.space.CrowdingDistance(ar.points, front)
	victim := -1
	for i, d := range dist {
		if victim == -1 || d < dist[victim] {
			victim = i
		}
	}
	if victim == -1 {
		return
	}
	last := len(ar.points) - 1
	ar.points[victim] = ar.points[last]
	ar.payloads[victim] = ar.payloads[last]
	ar.points = ar.points[:last]
	ar.payloads = ar.payloads[:last]
}

// Points returns copies of the archived objective vectors, sorted by the
// first objective in improving order.
func (ar *Archive) Points() [][]float64 {
	out := make([][]float64, len(ar.points))
	idx := ar.sortedIdx()
	for i, j := range idx {
		out[i] = append([]float64(nil), ar.points[j]...)
	}
	return out
}

// Payloads returns the payloads in the same order as Points.
func (ar *Archive) Payloads() []interface{} {
	idx := ar.sortedIdx()
	out := make([]interface{}, len(idx))
	for i, j := range idx {
		out[i] = ar.payloads[j]
	}
	return out
}

func (ar *Archive) sortedIdx() []int {
	idx := make([]int, len(ar.points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		x, y := ar.points[idx[a]][0], ar.points[idx[b]][0]
		if ar.space.Senses[0] == Maximize {
			return x > y
		}
		return x < y
	})
	return idx
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
