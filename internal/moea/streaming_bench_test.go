package moea

// Benchmarks for the streaming ε-archive (Makefile bench-dist,
// BENCH_dist.json): the insert path under a budget small enough that
// spills actually happen, and the k-way finalize merge that folds the
// spilled runs back into one staircase.

import (
	"testing"

	"tradeoff/internal/rng"
)

// BenchmarkStreamingArchiveSpillStream streams 50k trade-off points
// through a 2k-point segment budget — dozens of spills per op — and
// finalizes, measuring the full bounded-memory pipeline end to end.
func BenchmarkStreamingArchiveSpillStream(b *testing.B) {
	sp := UtilityEnergySpace()
	eps := []float64{0.02, 0.02}
	pts := streamPoints(rng.New(11), sp, 50_000, 10)
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sa := NewStreamingArchive(sp, eps, 2048, dir)
		for j, p := range pts {
			sa.Add(p, int64(j))
		}
		if err := sa.Finalize(); err != nil {
			b.Fatal(err)
		}
		sa.Close()
	}
}

// BenchmarkStreamingArchiveInMemory is the same stream with a budget
// that never spills — the baseline that isolates the disk and merge
// overhead of the spilling run above.
func BenchmarkStreamingArchiveInMemory(b *testing.B) {
	sp := UtilityEnergySpace()
	eps := []float64{0.02, 0.02}
	pts := streamPoints(rng.New(11), sp, 50_000, 10)
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sa := NewStreamingArchive(sp, eps, 1<<20, dir)
		for j, p := range pts {
			sa.Add(p, int64(j))
		}
		if err := sa.Finalize(); err != nil {
			b.Fatal(err)
		}
		sa.Close()
	}
}
