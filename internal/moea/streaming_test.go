package moea

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tradeoff/internal/rng"
)

// streamPoints generates a deterministic stream hugging a trade-off
// curve: objective 1 worsens as objective 0 improves, so most points
// are mutually nondominated and the in-memory segment actually fills
// (a uniform random cloud's nondominated subset is only ~ln n points
// and would never trigger a spill). Half the parameters are quantized
// to a coarse lattice, forcing exact duplicates and same-box duels
// across spill runs; a quarter of the points get off-curve noise in the
// worsening direction, producing dominated points too.
func streamPoints(r *rng.Source, sp Space, n int, scale float64) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		var t float64
		if r.Intn(2) == 0 {
			t = float64(r.Intn(200)) * scale / 200
		} else {
			t = r.Float64() * scale
		}
		frac := t / scale
		e := frac * frac * scale
		if sp.Senses[0] == sp.Senses[1] {
			e = scale - e // same-sense spaces trade off along a falling curve
		}
		if r.Intn(4) == 0 {
			noise := r.Float64() * scale * 0.2
			if sp.Senses[1] == Minimize {
				e += noise
			} else {
				e -= noise
			}
		}
		pts[i] = []float64{t, e}
	}
	return pts
}

// runStreamingVsArchive feeds the same stream to a StreamingArchive and
// an effectively-unbounded in-memory ε-archive, requires identical
// fronts and payloads, and returns the number of spilled runs so
// callers can assert the merge path was actually exercised.
func runStreamingVsArchive(t *testing.T, sp Space, eps []float64, budget, n int, seed uint64, scale float64) int {
	t.Helper()
	pts := streamPoints(rng.New(seed), sp, n, scale)
	ref := NewEpsilonArchive(sp, eps, n+1)
	sa := NewStreamingArchive(sp, eps, budget, t.TempDir())
	defer sa.Close()
	for i, p := range pts {
		ref.Add(p, int64(i))
		sa.Add(p, int64(i))
		if sa.Len() > budget {
			t.Fatalf("insert %d: segment length %d exceeds budget %d", i, sa.Len(), budget)
		}
	}
	runs := sa.Runs()
	if err := sa.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if !reflect.DeepEqual(sa.Points(), ref.Points()) {
		t.Fatalf("budget %d: streaming front differs from in-memory front:\n got %v\nwant %v",
			budget, sa.Points(), ref.Points())
	}
	refPays := ref.Payloads()
	pays := sa.Payloads()
	if len(pays) != len(refPays) {
		t.Fatalf("payload count %d, want %d", len(pays), len(refPays))
	}
	for i := range pays {
		if pays[i] != refPays[i].(int64) {
			t.Fatalf("payload %d = %d, want %d (duel outcomes diverged)", i, pays[i], refPays[i])
		}
	}
	return runs
}

func TestStreamingMatchesArchive(t *testing.T) {
	for _, tc := range []struct {
		name   string
		sp     Space
		eps    []float64
		budget int
		n      int
		seed   uint64
		scale  float64
	}{
		{"coarse", UtilityEnergySpace(), []float64{0.25, 0.25}, 16, 4000, 1, 10},
		{"fine", UtilityEnergySpace(), []float64{0.01, 0.01}, 24, 3000, 2, 1},
		{"anisotropic", UtilityEnergySpace(), []float64{0.5, 0.05}, 4, 2500, 3, 5},
		{"one-box", UtilityEnergySpace(), []float64{1000, 1000}, 1, 800, 4, 10},
		{"min-min", NewSpace(Minimize, Minimize), []float64{0.2, 0.3}, 12, 3000, 5, 7},
		{"budget-1", UtilityEnergySpace(), []float64{0.3, 0.3}, 1, 400, 6, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runs := runStreamingVsArchive(t, tc.sp, tc.eps, tc.budget, tc.n, tc.seed, tc.scale)
			if runs == 0 {
				t.Fatalf("stream never spilled: merge path not exercised (budget %d)", tc.budget)
			}
			t.Logf("runs=%d", runs)
		})
	}
}

func TestStreamingNoSpillFastPath(t *testing.T) {
	sp := UtilityEnergySpace()
	eps := []float64{0.1, 0.1}
	if runs := runStreamingVsArchive(t, sp, eps, 1<<20, 500, 9, 3); runs != 0 {
		t.Fatalf("runs = %d, want pure in-memory path", runs)
	}

	sa := NewStreamingArchive(sp, eps, 1<<20, t.TempDir())
	defer sa.Close()
	for _, p := range streamPoints(rng.New(9), sp, 500, 3) {
		sa.Add(p, 0)
	}
	if sa.Runs() != 0 || sa.SpilledBytes() != 0 {
		t.Fatalf("unexpected spill: runs=%d bytes=%d", sa.Runs(), sa.SpilledBytes())
	}
	if err := sa.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
}

// TestStreamingBoundedMemory streams a large point set through a small
// budget: the in-memory segment must stay within budget, runs must
// spill, the spill file must be removed by Finalize, and the front must
// still equal the in-memory reference (whose size the ε-grid bounds).
func TestStreamingBoundedMemory(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 100_000
	}
	sp := UtilityEnergySpace()
	eps := []float64{0.05, 0.05}
	const budget = 128
	dir := t.TempDir()
	pts := streamPoints(rng.New(11), sp, n, 20)
	ref := NewEpsilonArchive(sp, eps, n+1)
	sa := NewStreamingArchive(sp, eps, budget, dir)
	defer sa.Close()
	for i, p := range pts {
		ref.Add(p, int64(i))
		sa.Add(p, int64(i))
		if sa.Len() > budget {
			t.Fatalf("insert %d: segment length %d exceeds budget %d", i, sa.Len(), budget)
		}
	}
	if sa.Runs() == 0 {
		t.Fatal("no spill runs despite stream far beyond budget")
	}
	t.Logf("n=%d runs=%d spilled=%dB front=%d", n, sa.Runs(), sa.SpilledBytes(), ref.Len())
	if err := sa.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if !reflect.DeepEqual(sa.Points(), ref.Points()) {
		t.Fatalf("streaming front differs from in-memory front (%d vs %d points)",
			len(sa.Points()), len(ref.Points()))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill file left behind after Finalize: %v", ents)
	}
}

// TestStreamingDuelAcrossRuns pins the cross-run duel semantics: the
// winner of a box contested between spilled runs must follow the same
// dominance / corner-distance / tie-to-incumbent rules as the in-memory
// archive. The filler point occupies an incomparable box so the segment
// reaches the budget and spills between the two contestants.
func TestStreamingDuelAcrossRuns(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	eps := []float64{1, 1}
	filler := []float64{10.5, -0.5} // box (10, -1): incomparable with box (0, 0)
	for _, tc := range []struct {
		name    string
		first   []float64 // lands in run 1
		second  []float64 // same box as first, lands in run 2
		wantPay int64
	}{
		{"later-dominates", []float64{0.6, 0.6}, []float64{0.4, 0.4}, 2},
		{"earlier-dominates", []float64{0.4, 0.4}, []float64{0.6, 0.6}, 0},
		{"later-closer-to-corner", []float64{0.7, 0.2}, []float64{0.3, 0.4}, 2},
		{"exact-tie-keeps-incumbent", []float64{0.4, 0.3}, []float64{0.3, 0.4}, 0},
		{"duplicate-keeps-incumbent", []float64{0.6, 0.6}, []float64{0.6, 0.6}, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sa := NewStreamingArchive(sp, eps, 2, t.TempDir())
			defer sa.Close()
			sa.Add(tc.first, 0)
			sa.Add(filler, 1) // second point: segment reaches the budget and spills
			if sa.Runs() != 1 {
				t.Fatalf("runs = %d, want 1 after filler", sa.Runs())
			}
			sa.Add(tc.second, 2)
			if err := sa.Finalize(); err != nil {
				t.Fatalf("Finalize: %v", err)
			}
			var got int64 = -1
			for i, p := range sa.Points() {
				if p[0] < 1 { // the contested box; the filler sits at 10.5
					got = sa.Payloads()[i]
				}
			}
			if got != tc.wantPay {
				t.Fatalf("contested box kept payload %d, want %d (points %v, payloads %v)",
					got, tc.wantPay, sa.Points(), sa.Payloads())
			}
		})
	}
}

func TestStreamingValidation(t *testing.T) {
	sp := UtilityEnergySpace()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("3-dim space", func() {
		NewStreamingArchive(NewSpace(Minimize, Minimize, Minimize), []float64{1, 1, 1}, 8, "")
	})
	mustPanic("zero budget", func() { NewStreamingArchive(sp, []float64{1, 1}, 0, "") })
	mustPanic("bad eps", func() { NewStreamingArchive(sp, []float64{1, -1}, 8, "") })
	mustPanic("eps arity", func() { NewStreamingArchive(sp, []float64{1}, 8, "") })

	sa := NewStreamingArchive(sp, []float64{1, 1}, 8, t.TempDir())
	sa.Add([]float64{1, 1}, 0)
	if err := sa.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if err := sa.Finalize(); err == nil {
		t.Fatal("second Finalize did not error")
	}
	mustPanic("add after finalize", func() { sa.Add([]float64{2, 2}, 1) })
}

// TestStreamingCloseRemovesSpill asserts Close releases the spill file
// without finalizing.
func TestStreamingCloseRemovesSpill(t *testing.T) {
	dir := t.TempDir()
	sp := UtilityEnergySpace()
	sa := NewStreamingArchive(sp, []float64{0.01, 0.01}, 4, dir)
	for _, p := range streamPoints(rng.New(13), sp, 64, 5) {
		sa.Add(p, 0)
	}
	if sa.Runs() == 0 {
		t.Fatal("expected at least one spill run")
	}
	if ents, _ := os.ReadDir(dir); len(ents) == 0 {
		t.Fatal("no spill file before Close")
	}
	sa.Close()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Errorf("spill file left behind after Close: %s", filepath.Join(dir, e.Name()))
	}
	if sa.Points() != nil {
		t.Fatal("Close produced points")
	}
}
