package moea

import (
	"math"
	"sort"
	"testing"

	"tradeoff/internal/rng"
)

// --- exact-mode semantics ---------------------------------------------------

func TestArchiveExactBasics(t *testing.T) {
	ar := NewArchive(UtilityEnergySpace())
	if !ar.Add([]float64{1, 5}, "a") {
		t.Fatal("first point rejected")
	}
	if ar.Add([]float64{1, 5}, "dup") {
		t.Fatal("exact duplicate accepted")
	}
	if ar.Add([]float64{0.5, 6}, "dominated") {
		t.Fatal("dominated point accepted")
	}
	if !ar.Add([]float64{2, 4}, "b") { // dominates (1,5)
		t.Fatal("dominating point rejected")
	}
	if ar.Len() != 1 {
		t.Fatalf("Len = %d after eviction, want 1", ar.Len())
	}
	if got := ar.Payloads()[0]; got != "b" {
		t.Fatalf("surviving payload = %v, want b", got)
	}
}

// TestArchiveEvictedPayloadNotRetained asserts that payloads (and point
// vectors) dropped by an eviction are cleared from the backing arrays
// rather than kept alive past the slice length, and that a rejected
// point's payload never enters the archive at all.
func TestArchiveEvictedPayloadNotRetained(t *testing.T) {
	ar := NewArchive(UtilityEnergySpace())
	for i := 0; i < 8; i++ {
		// Mutually nondominated fan: utility up, energy up.
		ar.Add([]float64{float64(i), float64(i)}, i)
	}
	if ar.Len() != 8 {
		t.Fatalf("Len = %d, want 8", ar.Len())
	}
	// One point dominating everything evicts all eight.
	if !ar.Add([]float64{100, -1}, "king") {
		t.Fatal("dominating point rejected")
	}
	if ar.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ar.Len())
	}
	backPay := ar.payloads[:cap(ar.payloads)]
	for i := 1; i < len(backPay); i++ {
		if backPay[i] != nil {
			t.Errorf("payload backing slot %d retains %v after eviction", i, backPay[i])
		}
	}
	backPts := ar.points[:cap(ar.points)]
	for i := 1; i < len(backPts); i++ {
		if backPts[i] != nil {
			t.Errorf("point backing slot %d retains %v after eviction", i, backPts[i])
		}
	}
	// Duplicate-objective rejection must not store the payload anywhere.
	if ar.Add([]float64{100, -1}, "ghost") {
		t.Fatal("duplicate accepted")
	}
	for i, p := range ar.payloads[:cap(ar.payloads)] {
		if p == "ghost" {
			t.Errorf("rejected payload retained at backing slot %d", i)
		}
	}
	// Bounded-mode pruning must clear the vacated swap slot too.
	br := NewBoundedArchive(NewSpace(Minimize, Minimize, Minimize), 2)
	br.Add([]float64{0, 1, 2}, "p0")
	br.Add([]float64{1, 2, 0}, "p1")
	br.Add([]float64{2, 0, 1}, "p2") // overflow: one pruned
	if br.Len() != 2 {
		t.Fatalf("bounded Len = %d, want 2", br.Len())
	}
	bb := br.payloads[:cap(br.payloads)]
	for i := br.Len(); i < len(bb); i++ {
		if bb[i] != nil {
			t.Errorf("bounded archive retains payload %v at backing slot %d", bb[i], i)
		}
	}
}

// TestArchivePayloadsMatchPoints drives adds and evictions and checks
// Payloads() stays aligned with Points(), including first-objective ties
// (possible in spaces with three objectives).
func TestArchivePayloadsMatchPoints(t *testing.T) {
	sp := NewSpace(Minimize, Minimize, Minimize)
	ar := NewArchive(sp)
	type tagged struct{ pt []float64 }
	src := rng.New(41)
	for i := 0; i < 400; i++ {
		p := []float64{float64(src.Intn(4)), src.Float64() * 10, src.Float64() * 10}
		ar.Add(p, &tagged{pt: append([]float64(nil), p...)})
	}
	pts := ar.Points()
	pays := ar.Payloads()
	if len(pts) != len(pays) {
		t.Fatalf("len(Points)=%d len(Payloads)=%d", len(pts), len(pays))
	}
	for i := range pts {
		tg := pays[i].(*tagged)
		for k := range pts[i] {
			if pts[i][k] != tg.pt[k] {
				t.Fatalf("entry %d: point %v but payload tagged %v", i, pts[i], tg.pt)
			}
		}
	}
}

// --- ε-mode semantics -------------------------------------------------------

func TestNewEpsilonArchiveValidation(t *testing.T) {
	cases := []func(){
		func() { NewEpsilonArchive(UtilityEnergySpace(), []float64{0.1, 0.1}, 0) },
		func() { NewEpsilonArchive(UtilityEnergySpace(), []float64{0.1}, 10) },
		func() { NewEpsilonArchive(UtilityEnergySpace(), []float64{0.1, 0}, 10) },
		func() { NewEpsilonArchive(UtilityEnergySpace(), []float64{0.1, math.NaN()}, 10) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
	ar := NewEpsilonArchive(UtilityEnergySpace(), []float64{0.5, 0.5}, 16)
	if eps := ar.Epsilon(); len(eps) != 2 || eps[0] != 0.5 {
		t.Fatalf("Epsilon() = %v", eps)
	}
	if NewArchive(UtilityEnergySpace()).Epsilon() != nil {
		t.Fatal("exact archive reports an epsilon")
	}
}

// refEpsArchive is a deliberately naive reference implementation of the
// same ε-dominance semantics: linear scans, no staircase, no hints. The
// production archive must agree with it entry for entry on any insert
// stream.
type refEpsArchive struct {
	sp       Space
	eps      []float64
	pts      [][]float64
	payloads []interface{}
}

func (r *refEpsArchive) box(p []float64) []int64 {
	b := make([]int64, len(r.eps))
	for k := range r.eps {
		c := p[k]
		if r.sp.Senses[k] == Maximize {
			c = -c
		}
		b[k] = int64(math.Floor(c / r.eps[k]))
	}
	return b
}

func (r *refEpsArchive) add(p []float64, payload interface{}) bool {
	bp := r.box(p)
	same := -1
	for i, q := range r.pts {
		bq := r.box(q)
		leq, geq := true, true
		for k := range bp {
			if bq[k] > bp[k] {
				leq = false
			}
			if bq[k] < bp[k] {
				geq = false
			}
		}
		if leq && geq {
			same = i
			break
		}
		if leq {
			return false
		}
	}
	if same >= 0 {
		q := r.pts[same]
		if r.sp.Dominates(p, q) {
			r.pts[same] = append([]float64(nil), p...)
			r.payloads[same] = payload
			return true
		}
		if r.sp.Dominates(q, p) || equalVec(q, p) {
			return false
		}
		var dp, dq float64
		for k := range p {
			cp, cq := p[k], q[k]
			if r.sp.Senses[k] == Maximize {
				cp, cq = -cp, -cq
			}
			corner := float64(bp[k])
			a := cp/r.eps[k] - corner
			b := cq/r.eps[k] - corner
			dp += a * a
			dq += b * b
		}
		if dp < dq {
			r.pts[same] = append([]float64(nil), p...)
			r.payloads[same] = payload
			return true
		}
		return false
	}
	var keepP [][]float64
	var keepL []interface{}
	for i, q := range r.pts {
		bq := r.box(q)
		dominated := true
		for k := range bp {
			if bq[k] < bp[k] {
				dominated = false
				break
			}
		}
		if !dominated {
			keepP = append(keepP, q)
			keepL = append(keepL, r.payloads[i])
		}
	}
	r.pts = append(keepP, append([]float64(nil), p...))
	r.payloads = append(keepL, payload)
	return true
}

// canonKey renders a point for set comparison.
func canonKey(p []float64) string {
	s := ""
	for _, v := range p {
		s += "|"
		s += strconvF(v)
	}
	return s
}

func strconvF(v float64) string {
	// Exact bit pattern, so distinct floats never collide.
	u := math.Float64bits(v)
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[u&0xf]
		u >>= 4
	}
	return string(b[:])
}

// runEpsVsReference streams n random points through the production
// archive and the reference and requires identical accept verdicts and
// identical surviving (point, payload) sets.
func runEpsVsReference(t *testing.T, sp Space, eps []float64, n int, seed uint64, clusterScale float64) {
	t.Helper()
	ar := NewEpsilonArchive(sp, eps, 1<<16) // large cap: grid is the bound
	ref := &refEpsArchive{sp: sp, eps: eps}
	src := rng.New(seed)
	dim := sp.Dim()
	for i := 0; i < n; i++ {
		p := make([]float64, dim)
		for k := range p {
			p[k] = src.Float64() * clusterScale
		}
		gotA := ar.Add(p, i)
		gotR := ref.add(p, i)
		if gotA != gotR {
			t.Fatalf("insert %d (%v): archive=%v reference=%v", i, p, gotA, gotR)
		}
		if ar.Len() != len(ref.pts) {
			t.Fatalf("insert %d: Len=%d reference=%d", i, ar.Len(), len(ref.pts))
		}
	}
	want := map[string]interface{}{}
	for i, p := range ref.pts {
		want[canonKey(p)] = ref.payloads[i]
	}
	pts, pays := ar.Points(), ar.Payloads()
	if len(pts) != len(want) {
		t.Fatalf("final size %d, reference %d", len(pts), len(want))
	}
	for i, p := range pts {
		pay, ok := want[canonKey(p)]
		if !ok {
			t.Fatalf("point %v not in reference archive", p)
		}
		if pay != pays[i] {
			t.Fatalf("point %v: payload %v, reference %v", p, pays[i], pay)
		}
	}
}

func TestEpsilonArchiveMatchesReference2D(t *testing.T) {
	sp := UtilityEnergySpace()
	for _, tc := range []struct {
		eps   []float64
		n     int
		seed  uint64
		scale float64
	}{
		{[]float64{0.25, 0.25}, 3000, 1, 10},  // coarse grid, many duels
		{[]float64{0.01, 0.01}, 2000, 2, 1},   // fine grid, many boxes
		{[]float64{0.5, 0.05}, 2500, 3, 5},    // anisotropic
		{[]float64{1000, 1000}, 500, 4, 10},   // single box: pure duels
		{[]float64{0.1, 0.1}, 1500, 5, 0.001}, // negative-corner boxes unused; tight cluster
	} {
		runEpsVsReference(t, sp, tc.eps, tc.n, tc.seed, tc.scale)
	}
}

func TestEpsilonArchiveMatchesReference3D(t *testing.T) {
	sp := NewSpace(Minimize, Maximize, Minimize)
	runEpsVsReference(t, sp, []float64{0.2, 0.3, 0.25}, 2000, 7, 4)
}

// TestEpsilonArchiveStaircaseInvariant white-box checks the 2-D entry
// order: box0 strictly ascending, box1 strictly descending.
func TestEpsilonArchiveStaircaseInvariant(t *testing.T) {
	ar := NewEpsilonArchive(UtilityEnergySpace(), []float64{0.1, 0.1}, 4096)
	src := rng.New(11)
	for i := 0; i < 4000; i++ {
		ar.Add([]float64{src.Float64() * 8, src.Float64() * 8}, nil)
		n := ar.Len()
		for j := 1; j < n; j++ {
			if ar.boxes[2*j] <= ar.boxes[2*(j-1)] {
				t.Fatalf("insert %d: box0 not strictly ascending at %d", i, j)
			}
			if ar.boxes[2*j+1] >= ar.boxes[2*(j-1)+1] {
				t.Fatalf("insert %d: box1 not strictly descending at %d", i, j)
			}
		}
	}
}

// TestEpsilonArchiveBounded checks the maxSize cap holds under a stream
// that occupies far more boxes than the cap.
func TestEpsilonArchiveBounded(t *testing.T) {
	ar := NewEpsilonArchive(UtilityEnergySpace(), []float64{1e-4, 1e-4}, 32)
	src := rng.New(13)
	for i := 0; i < 5000; i++ {
		// Sample along a utility/energy tradeoff curve so the stream is
		// mostly mutually nondominated and occupies thousands of boxes
		// (a uniform cloud's staircase is only ~ln n points, which
		// would never press against the cap).
		u := src.Float64()
		e := u + 1e-3*src.Float64()
		ar.Add([]float64{u, e}, i)
		if ar.Len() > 32 {
			t.Fatalf("insert %d: Len=%d exceeds cap 32", i, ar.Len())
		}
	}
	if ar.Len() != 32 {
		t.Fatalf("final Len=%d, want full cap 32", ar.Len())
	}
	pts := ar.Points()
	sp := ar.space
	for i := range pts {
		for j := range pts {
			if i != j && sp.Dominates(pts[i], pts[j]) {
				// Box-nondominance implies the staircase never holds a
				// box-dominated pair; the crowding prune preserves that.
				t.Fatalf("archived points %v dominates %v", pts[i], pts[j])
			}
		}
	}
}

// TestEpsilonArchiveTieKeepsIncumbent pins the deterministic within-box
// tie-break: equal corner distance keeps the earlier point.
func TestEpsilonArchiveTieKeepsIncumbent(t *testing.T) {
	sp := NewSpace(Minimize, Minimize)
	ar := NewEpsilonArchive(sp, []float64{1, 1}, 8)
	// Both in box (0,0); incomparable; symmetric distances to corner.
	if !ar.Add([]float64{0.25, 0.5}, "first") {
		t.Fatal("first rejected")
	}
	if ar.Add([]float64{0.5, 0.25}, "second") {
		t.Fatal("tied challenger replaced the incumbent")
	}
	if got := ar.Payloads()[0]; got != "first" {
		t.Fatalf("payload = %v, want first", got)
	}
	// A strictly closer challenger replaces.
	if !ar.Add([]float64{0.2, 0.2}, "closer") {
		t.Fatal("closer challenger rejected")
	}
	if got := ar.Payloads()[0]; got != "closer" {
		t.Fatalf("payload = %v, want closer", got)
	}
	if ar.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ar.Len())
	}
}

// TestEpsilonArchiveSteadyStateAllocs: once the front stabilizes,
// repeat-box offers must not allocate.
func TestEpsilonArchiveSteadyStateAllocs(t *testing.T) {
	ar := NewEpsilonArchive(UtilityEnergySpace(), []float64{0.5, 0.5}, 64)
	src := rng.New(17)
	pts := make([][]float64, 256)
	for i := range pts {
		pts[i] = []float64{src.Float64() * 4, src.Float64() * 4}
		ar.Add(pts[i], i)
	}
	i := 0
	avg := testing.AllocsPerRun(512, func() {
		// nil payload: boxing a non-interned value would itself allocate
		// and mask what this test measures.
		ar.Add(pts[i%len(pts)], nil)
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state Add allocates %v per op, want 0", avg)
	}
}

// TestEpsilonArchivePayloadRelease: evicted entries release their
// payload references from the backing array.
func TestEpsilonArchivePayloadRelease(t *testing.T) {
	ar := NewEpsilonArchive(UtilityEnergySpace(), []float64{0.1, 0.1}, 64)
	for i := 0; i < 8; i++ {
		// Staircase of mutually nondominated boxes.
		ar.Add([]float64{float64(i), float64(i)}, i)
	}
	// Dominates every box: evicts all eight in one splice.
	if !ar.Add([]float64{100, -100}, "sweep") {
		t.Fatal("sweeping point rejected")
	}
	if ar.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ar.Len())
	}
	back := ar.payloads[:cap(ar.payloads)]
	for i := 1; i < len(back); i++ {
		if back[i] != nil {
			t.Errorf("ε archive retains payload %v at backing slot %d", back[i], i)
		}
	}
}

// TestEpsilonArchiveSortedOutput: Points is sorted by the improving
// direction of objective 0 and aligned with Payloads.
func TestEpsilonArchiveSortedOutput(t *testing.T) {
	ar := NewEpsilonArchive(UtilityEnergySpace(), []float64{0.2, 0.2}, 128)
	src := rng.New(19)
	for i := 0; i < 1000; i++ {
		p := []float64{src.Float64() * 6, src.Float64() * 6}
		ar.Add(p, canonKey(p))
	}
	pts, pays := ar.Points(), ar.Payloads()
	if !sort.SliceIsSorted(pts, func(a, b int) bool { return pts[a][0] > pts[b][0] }) {
		t.Fatal("Points not sorted by improving utility")
	}
	for i := range pts {
		if pays[i] != canonKey(pts[i]) {
			t.Fatalf("entry %d: payload %v does not match point %v", i, pays[i], pts[i])
		}
	}
}
