package workload

import (
	"sort"
	"strconv"
	"strings"
	"testing"

	"tradeoff/internal/data"
	"tradeoff/internal/rng"
)

func TestImportCSVWithTUFColumns(t *testing.T) {
	sys := data.RealSystem()
	csvData := `arrival,task_type,priority,horizon
30,C-Ray,10,600
5,7-Zip Compression,4,300
10,2,8,450
`
	tr, err := ImportCSV(strings.NewReader(csvData), sys, 900, nil, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTasks() != 3 || tr.Window != 900 {
		t.Fatalf("trace shape: %d tasks, window %v", tr.NumTasks(), tr.Window)
	}
	// Sorted by arrival: 5, 10, 30.
	if tr.Tasks[0].Arrival != 5 || tr.Tasks[2].Arrival != 30 {
		t.Fatalf("arrivals not sorted: %v %v", tr.Tasks[0].Arrival, tr.Tasks[2].Arrival)
	}
	// Task named by index 2 resolves to Warsow.
	if tr.Tasks[1].Type != 2 {
		t.Fatalf("numeric task type = %d", tr.Tasks[1].Type)
	}
	// Names resolved case-insensitively.
	if tr.Tasks[2].Type != 0 {
		t.Fatalf("C-Ray resolved to %d", tr.Tasks[2].Type)
	}
	// TUF built from priority/horizon: linear decay.
	if got := tr.Tasks[2].TUF.Value(0); got != 10 {
		t.Fatalf("TUF max = %v", got)
	}
	if got := tr.Tasks[2].TUF.Value(600); got != 0 {
		t.Fatalf("TUF at horizon = %v", got)
	}
}

func TestImportCSVPolicyFallback(t *testing.T) {
	sys := data.RealSystem()
	csvData := "arrival,task_type\n0,C-Ray\n9,Warsow\n"
	tr, err := ImportCSV(strings.NewReader(csvData), sys, 0, nil, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Window defaults to the last arrival.
	if tr.Window != 9 {
		t.Fatalf("window = %v", tr.Window)
	}
	for _, task := range tr.Tasks {
		if task.TUF == nil || task.TUF.Validate() != nil {
			t.Fatal("policy TUF missing or invalid")
		}
	}
}

func TestImportCSVErrors(t *testing.T) {
	sys := data.RealSystem()
	cases := map[string]string{
		"no header rows":     "arrival,task_type\n",
		"missing arrival":    "task_type\nC-Ray\n",
		"missing task_type":  "arrival\n5\n",
		"bad arrival":        "arrival,task_type\nxx,C-Ray\n",
		"unknown type":       "arrival,task_type\n5,NoSuchTask\n",
		"index out of range": "arrival,task_type\n5,99\n",
		"priority only":      "arrival,task_type,priority\n5,C-Ray,3\n",
		"bad priority":       "arrival,task_type,priority,horizon\n5,C-Ray,xx,10\n",
		"zero horizon":       "arrival,task_type,priority,horizon\n5,C-Ray,3,0\n",
	}
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := ImportCSV(strings.NewReader(cases[name]), sys, 100, nil, rng.New(1)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestImportCSVRoundTripThroughEvaluator(t *testing.T) {
	// Imported traces must drive the full pipeline.
	sys := data.RealSystem()
	var sb strings.Builder
	sb.WriteString("arrival,task_type,priority,horizon\n")
	src := rng.New(3)
	for i := 0; i < 50; i++ {
		sb.WriteString(strings.Join([]string{
			fmtF(src.Range(0, 600)),
			sys.TaskTypes[src.Intn(5)].Name,
			fmtF(src.Range(1, 10)),
			fmtF(src.Range(100, 900)),
		}, ",") + "\n")
	}
	tr, err := ImportCSV(strings.NewReader(sb.String()), sys, 600, nil, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTasks() != 50 {
		t.Fatalf("%d tasks", tr.NumTasks())
	}
	if _, err := Stats(tr, sys); err != nil {
		t.Fatal(err)
	}
}

func fmtF(v float64) string {
	return strconv.FormatFloat(v, 'f', 4, 64)
}
