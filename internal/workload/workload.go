// Package workload models the dynamic task trace of the paper's §III-C:
// tasks of various task types arriving within a specified time window,
// each carrying its arrival time and a time-utility function. Because the
// analysis is post-mortem and static, a Trace records everything a
// resource allocation needs a priori.
package workload

import (
	"fmt"
	"math"
	"sort"

	"tradeoff/internal/hcs"
	"tradeoff/internal/rng"
	"tradeoff/internal/utility"
)

// Task is one task instance in a trace.
type Task struct {
	// ID is the task's index in the trace, ordered by arrival time.
	ID int
	// Type indexes the system's task types.
	Type int
	// Arrival is the arrival time in seconds from the trace start.
	Arrival float64
	// TUF is the task's time-utility function, evaluated at
	// completion − arrival.
	TUF *utility.Function
}

// Trace is a recorded workload over a time window.
type Trace struct {
	Tasks  []Task
	Window float64 // seconds
}

// NumTasks returns the number of tasks in the trace.
func (tr *Trace) NumTasks() int { return len(tr.Tasks) }

// MaxUtility returns the utility earned if every task completed at the
// instant it arrived — an unreachable upper bound useful for normalizing
// results.
func (tr *Trace) MaxUtility() float64 {
	var sum float64
	for i := range tr.Tasks {
		sum += tr.Tasks[i].TUF.MaxValue()
	}
	return sum
}

// Validate checks trace invariants against a system: tasks sorted by
// arrival with dense IDs, arrivals within [0, Window], valid task types,
// and a valid TUF on every task.
func (tr *Trace) Validate(sys *hcs.System) error {
	if tr.Window <= 0 {
		return fmt.Errorf("workload: window %v, want > 0", tr.Window)
	}
	if len(tr.Tasks) == 0 {
		return fmt.Errorf("workload: trace has no tasks")
	}
	prev := math.Inf(-1)
	for i := range tr.Tasks {
		t := &tr.Tasks[i]
		if t.ID != i {
			return fmt.Errorf("workload: task %d has ID %d, want dense arrival-ordered IDs", i, t.ID)
		}
		if t.Type < 0 || t.Type >= sys.NumTaskTypes() {
			return fmt.Errorf("workload: task %d has type %d out of range", i, t.Type)
		}
		if t.Arrival < 0 || t.Arrival > tr.Window || math.IsNaN(t.Arrival) {
			return fmt.Errorf("workload: task %d arrival %v outside [0, %v]", i, t.Arrival, tr.Window)
		}
		if t.Arrival < prev {
			return fmt.Errorf("workload: task %d arrives at %v before predecessor at %v", i, t.Arrival, prev)
		}
		prev = t.Arrival
		if t.TUF == nil {
			return fmt.Errorf("workload: task %d has no TUF", i)
		}
		if err := t.TUF.Validate(); err != nil {
			return fmt.Errorf("workload: task %d TUF invalid: %w", i, err)
		}
	}
	return nil
}

// Clone returns a deep copy of the trace (TUFs are cloned too).
func (tr *Trace) Clone() *Trace {
	c := &Trace{Window: tr.Window, Tasks: make([]Task, len(tr.Tasks))}
	for i, t := range tr.Tasks {
		c.Tasks[i] = Task{ID: t.ID, Type: t.Type, Arrival: t.Arrival, TUF: t.TUF.Clone()}
	}
	return c
}

// ArrivalProcess generates task arrival times within a window.
type ArrivalProcess int

const (
	// UniformArrivals draws each arrival independently and uniformly over
	// the window.
	UniformArrivals ArrivalProcess = iota
	// PoissonArrivals spaces arrivals with exponential gaps scaled so the
	// expected count fills the window, truncated to the window.
	PoissonArrivals
	// BurstArrivals concentrates most of the trace into narrow bursts: a
	// fraction of tasks arrives uniformly, the rest inside a few short
	// windows — the diurnal-peak pattern that stresses utility decay.
	BurstArrivals
)

// TUFPolicy assigns a time-utility function to a freshly generated task.
type TUFPolicy interface {
	// NewTUF returns the TUF for a task of the given type.
	NewTUF(src *rng.Source, taskType int) *utility.Function
}

// GenConfig configures trace generation.
type GenConfig struct {
	NumTasks int
	Window   float64 // seconds
	Arrival  ArrivalProcess
	// TypeWeights gives the relative frequency of each task type; nil
	// means uniform over the system's task types.
	TypeWeights []float64
	// TUF assigns utility functions; nil means DefaultTUFPolicy.
	TUF TUFPolicy
}

// Generate produces a trace for the given system. It is deterministic in
// the provided source.
func Generate(sys *hcs.System, cfg GenConfig, src *rng.Source) (*Trace, error) {
	if cfg.NumTasks <= 0 {
		return nil, fmt.Errorf("workload: NumTasks %d, want > 0", cfg.NumTasks)
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("workload: Window %v, want > 0", cfg.Window)
	}
	weights := cfg.TypeWeights
	if weights == nil {
		weights = make([]float64, sys.NumTaskTypes())
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != sys.NumTaskTypes() {
		return nil, fmt.Errorf("workload: %d type weights for %d task types", len(weights), sys.NumTaskTypes())
	}
	policy := cfg.TUF
	if policy == nil {
		policy = NewDefaultTUFPolicy(sys)
	}

	arrivals := make([]float64, cfg.NumTasks)
	switch cfg.Arrival {
	case UniformArrivals:
		for i := range arrivals {
			arrivals[i] = src.Range(0, cfg.Window)
		}
	case PoissonArrivals:
		rate := float64(cfg.NumTasks) / cfg.Window
		t := 0.0
		for i := range arrivals {
			t += src.ExpFloat64() / rate
			arrivals[i] = math.Mod(t, cfg.Window) // wrap to keep the count exact
		}
	case BurstArrivals:
		// Three bursts, each 5% of the window wide, absorbing 70% of the
		// tasks; the remainder arrives uniformly.
		const bursts = 3
		const burstWidthFrac = 0.05
		const burstShare = 0.7
		centers := make([]float64, bursts)
		for b := range centers {
			centers[b] = cfg.Window * (float64(b) + 0.5) / bursts
		}
		for i := range arrivals {
			if src.Bool(burstShare) {
				c := centers[src.Intn(bursts)]
				half := cfg.Window * burstWidthFrac / 2
				lo, hi := c-half, c+half
				if lo < 0 {
					lo = 0
				}
				if hi > cfg.Window {
					hi = cfg.Window
				}
				arrivals[i] = src.Range(lo, hi)
			} else {
				arrivals[i] = src.Range(0, cfg.Window)
			}
		}
	default:
		return nil, fmt.Errorf("workload: unknown arrival process %d", cfg.Arrival)
	}
	sort.Float64s(arrivals)

	tr := &Trace{Window: cfg.Window, Tasks: make([]Task, cfg.NumTasks)}
	for i := range tr.Tasks {
		tt := src.Pick(weights)
		tr.Tasks[i] = Task{
			ID:      i,
			Type:    tt,
			Arrival: arrivals[i],
			TUF:     policy.NewTUF(src, tt),
		}
	}
	if err := tr.Validate(sys); err != nil {
		return nil, fmt.Errorf("workload: generated invalid trace: %w", err)
	}
	return tr, nil
}

// PriorityClass is one tier of task importance in the default policy.
type PriorityClass struct {
	Name     string
	Priority float64 // maximum utility
	Weight   float64 // relative frequency
}

// DefaultTUFPolicy draws a priority class (high/medium/low), an urgency
// level, and a utility characteristic class shape per task, scaling decay
// horizons to the task type's average execution time so that utility
// decays on the timescale the task actually runs at. This mirrors how the
// ESSC parameters are policy decisions set per task class (§IV-B1).
type DefaultTUFPolicy struct {
	Classes []PriorityClass
	// AvgExec holds the mean execution time of each task type across its
	// capable machine types, used to scale urgency.
	AvgExec []float64
	// UrgencyLevels scale the decay horizon: horizon = level × AvgExec.
	UrgencyLevels []float64
}

// NewDefaultTUFPolicy builds the default policy for a system.
func NewDefaultTUFPolicy(sys *hcs.System) *DefaultTUFPolicy {
	p := &DefaultTUFPolicy{
		Classes: []PriorityClass{
			{Name: "high", Priority: 16, Weight: 0.2},
			{Name: "medium", Priority: 8, Weight: 0.5},
			{Name: "low", Priority: 2, Weight: 0.3},
		},
		UrgencyLevels: []float64{2, 4, 8},
		AvgExec:       make([]float64, sys.NumTaskTypes()),
	}
	for t := 0; t < sys.NumTaskTypes(); t++ {
		var sum float64
		var n int
		for mu := 0; mu < sys.NumMachineTypes(); mu++ {
			if sys.Capable(t, mu) {
				sum += sys.ETC.At(t, mu)
				n++
			}
		}
		if n > 0 {
			p.AvgExec[t] = sum / float64(n)
		} else {
			p.AvgExec[t] = 1
		}
	}
	return p
}

// NewTUF implements TUFPolicy.
func (p *DefaultTUFPolicy) NewTUF(src *rng.Source, taskType int) *utility.Function {
	weights := make([]float64, len(p.Classes))
	for i, c := range p.Classes {
		weights[i] = c.Weight
	}
	class := p.Classes[src.Pick(weights)]
	level := p.UrgencyLevels[src.Intn(len(p.UrgencyLevels))]
	horizon := level * p.AvgExec[taskType]

	// Three characteristic-class shapes, echoing Fig. 1's interval
	// structure: plateaus, a grace period with linear decay, or a pure
	// linear ramp.
	var segs []utility.Segment
	switch src.Intn(3) {
	case 0: // three plateaus then zero
		segs = []utility.Segment{
			{Duration: horizon * 0.25, StartFrac: 1, EndFrac: 1, Shape: utility.Constant},
			{Duration: horizon * 0.35, StartFrac: 0.8, EndFrac: 0.8, Shape: utility.Constant},
			{Duration: horizon * 0.40, StartFrac: 0.45, EndFrac: 0.45, Shape: utility.Constant},
		}
	case 1: // grace period, then linear decay to zero
		segs = []utility.Segment{
			{Duration: horizon * 0.3, StartFrac: 1, EndFrac: 1, Shape: utility.Constant},
			{Duration: horizon * 0.7, StartFrac: 1, EndFrac: 0, Shape: utility.Linear},
		}
	default: // pure linear decay
		segs = []utility.Segment{
			{Duration: horizon, StartFrac: 1, EndFrac: 0, Shape: utility.Linear},
		}
	}
	f, err := utility.New(class.Priority, 0, segs...)
	if err != nil {
		panic(fmt.Sprintf("workload: default TUF invalid: %v", err))
	}
	return f
}
