package workload

import (
	"bytes"
	"strings"
	"testing"

	"tradeoff/internal/data"
	"tradeoff/internal/rng"
)

func TestTraceJSONRoundTrip(t *testing.T) {
	sys := data.RealSystem()
	tr, err := Generate(sys, GenConfig{NumTasks: 40, Window: 900}, rng.New(61))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTrace(raw, sys)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != tr.NumTasks() || back.Window != tr.Window {
		t.Fatal("roundtrip changed shape")
	}
	for i := range tr.Tasks {
		a, b := tr.Tasks[i], back.Tasks[i]
		if a.Type != b.Type || a.Arrival != b.Arrival {
			t.Fatalf("task %d changed", i)
		}
		// TUF behaviour must survive the roundtrip.
		for _, dt := range []float64{0, 10, 100, 1e6} {
			if a.TUF.Value(dt) != b.TUF.Value(dt) {
				t.Fatalf("task %d TUF changed at %v", i, dt)
			}
		}
	}
}

func TestDecodeTraceRejectsCorruption(t *testing.T) {
	sys := data.RealSystem()
	tr, err := Generate(sys, GenConfig{NumTasks: 10, Window: 900}, rng.New(62))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(raw, []byte(`"Type": 0`), []byte(`"Type": 99`), 1)
	if !bytes.Equal(bad, raw) {
		if _, err := DecodeTrace(bad, sys); err == nil {
			t.Fatal("corrupted trace accepted")
		}
	}
	if _, err := DecodeTrace([]byte("{not json"), sys); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestTraceStats(t *testing.T) {
	sys := data.RealSystem()
	tr, err := Generate(sys, GenConfig{NumTasks: 250, Window: 900}, rng.New(63))
	if err != nil {
		t.Fatal(err)
	}
	st, err := Stats(tr, sys)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumTasks != 250 || st.Window != 900 {
		t.Fatal("basic stats wrong")
	}
	total := 0
	for _, n := range st.TypeCounts {
		total += n
	}
	if total != 250 {
		t.Fatalf("type counts sum to %d", total)
	}
	if st.ArrivalRate <= 0 || st.OfferedLoad <= 0 || st.MaxUtility <= 0 {
		t.Fatalf("non-positive derived stats: %+v", st)
	}
	if st.SpecialPurposeTasks != 0 {
		t.Fatal("real system has no special-purpose tasks")
	}
	var buf bytes.Buffer
	st.Write(&buf, sys)
	out := buf.String()
	if !strings.Contains(out, "offered load") || !strings.Contains(out, "top task types") {
		t.Fatalf("stats output incomplete:\n%s", out)
	}
}

func TestStatsRejectsInvalidTrace(t *testing.T) {
	sys := data.RealSystem()
	if _, err := Stats(&Trace{Window: 10}, sys); err == nil {
		t.Fatal("invalid trace accepted")
	}
}
