package workload

import (
	"fmt"
	"io"
	"sort"

	"tradeoff/internal/hcs"
)

// TraceStats summarizes a trace against a system, the numbers a system
// administrator checks before trusting an analysis run.
type TraceStats struct {
	NumTasks int
	Window   float64
	// ArrivalRate is tasks per second.
	ArrivalRate float64
	// TypeCounts maps task type index to its task count.
	TypeCounts []int
	// OfferedLoad is the total average execution demand (Σ mean ETC over
	// capable machine types per task) divided by machine-seconds
	// available in the window. Values near or above 1 mean the window
	// alone cannot absorb the work and queues must spill past it.
	OfferedLoad float64
	// MaxUtility is the unreachable utility upper bound.
	MaxUtility float64
	// SpecialPurposeTasks counts tasks whose type is special-purpose.
	SpecialPurposeTasks int
}

// Stats computes TraceStats for a trace on a system.
func Stats(tr *Trace, sys *hcs.System) (TraceStats, error) {
	if err := tr.Validate(sys); err != nil {
		return TraceStats{}, err
	}
	st := TraceStats{
		NumTasks:    tr.NumTasks(),
		Window:      tr.Window,
		ArrivalRate: float64(tr.NumTasks()) / tr.Window,
		TypeCounts:  make([]int, sys.NumTaskTypes()),
		MaxUtility:  tr.MaxUtility(),
	}
	avgExec := make([]float64, sys.NumTaskTypes())
	for t := 0; t < sys.NumTaskTypes(); t++ {
		var sum float64
		var n int
		for mu := 0; mu < sys.NumMachineTypes(); mu++ {
			if sys.Capable(t, mu) {
				sum += sys.ETC.At(t, mu)
				n++
			}
		}
		if n > 0 {
			avgExec[t] = sum / float64(n)
		}
	}
	var demand float64
	for i := range tr.Tasks {
		tt := tr.Tasks[i].Type
		st.TypeCounts[tt]++
		demand += avgExec[tt]
		if sys.TaskTypes[tt].Category == hcs.SpecialPurpose {
			st.SpecialPurposeTasks++
		}
	}
	st.OfferedLoad = demand / (float64(sys.NumMachines()) * tr.Window)
	return st, nil
}

// Write prints the stats in a human-readable layout, listing the top
// task types by count.
func (st TraceStats) Write(w io.Writer, sys *hcs.System) {
	fmt.Fprintf(w, "trace: %d tasks over %.0f s (%.3f tasks/s), offered load %.2f\n",
		st.NumTasks, st.Window, st.ArrivalRate, st.OfferedLoad)
	fmt.Fprintf(w, "max attainable utility: %.1f; special-purpose tasks: %d\n",
		st.MaxUtility, st.SpecialPurposeTasks)
	type tc struct {
		t, n int
	}
	var counts []tc
	for t, n := range st.TypeCounts {
		if n > 0 {
			counts = append(counts, tc{t, n})
		}
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].n > counts[j].n })
	limit := 10
	if len(counts) < limit {
		limit = len(counts)
	}
	fmt.Fprintf(w, "top task types:\n")
	for _, c := range counts[:limit] {
		fmt.Fprintf(w, "  %-34s %d\n", sys.TaskTypes[c.t].Name, c.n)
	}
}
