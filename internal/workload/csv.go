package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"tradeoff/internal/hcs"
	"tradeoff/internal/rng"
	"tradeoff/internal/utility"
)

// ImportCSV reads a trace recorded by an external system — the paper's
// claim that the framework can "take traces from any given system" and
// analyze them. The CSV needs a header with at least:
//
//	arrival     seconds from trace start
//	task_type   a task-type name (matched against the system) or index
//
// and optionally:
//
//	priority    maximum utility (with horizon, builds a linear-decay TUF)
//	horizon     seconds until utility reaches zero
//
// Tasks without priority/horizon columns get TUFs from the policy (nil
// means DefaultTUFPolicy, driven by src). Rows may be unordered; the
// window is the last arrival unless a larger one is given.
func ImportCSV(r io.Reader, sys *hcs.System, window float64, policy TUFPolicy, src *rng.Source) (*Trace, error) {
	records, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading CSV: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("workload: CSV needs a header and at least one row")
	}
	col := map[string]int{}
	for i, h := range records[0] {
		col[strings.ToLower(strings.TrimSpace(h))] = i
	}
	arrivalCol, ok := col["arrival"]
	if !ok {
		return nil, fmt.Errorf("workload: CSV missing arrival column")
	}
	typeCol, ok := col["task_type"]
	if !ok {
		return nil, fmt.Errorf("workload: CSV missing task_type column")
	}
	prioCol, hasPrio := col["priority"]
	horizonCol, hasHorizon := col["horizon"]
	if hasPrio != hasHorizon {
		return nil, fmt.Errorf("workload: priority and horizon columns must appear together")
	}
	byName := map[string]int{}
	for i, tt := range sys.TaskTypes {
		byName[strings.ToLower(tt.Name)] = i
	}
	if policy == nil {
		policy = NewDefaultTUFPolicy(sys)
	}
	if src == nil {
		src = rng.New(1)
	}

	type row struct {
		arrival float64
		ttype   int
		tuf     *utility.Function
	}
	rows := make([]row, 0, len(records)-1)
	for ln, rec := range records[1:] {
		get := func(c int) string { return strings.TrimSpace(rec[c]) }
		if arrivalCol >= len(rec) || typeCol >= len(rec) {
			return nil, fmt.Errorf("workload: row %d too short", ln+2)
		}
		arrival, err := strconv.ParseFloat(get(arrivalCol), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d arrival: %w", ln+2, err)
		}
		typeField := get(typeCol)
		ttype, ok := byName[strings.ToLower(typeField)]
		if !ok {
			idx, err := strconv.Atoi(typeField)
			if err != nil || idx < 0 || idx >= sys.NumTaskTypes() {
				return nil, fmt.Errorf("workload: row %d unknown task type %q", ln+2, typeField)
			}
			ttype = idx
		}
		var tuf *utility.Function
		if hasPrio && prioCol < len(rec) && get(prioCol) != "" {
			prio, err := strconv.ParseFloat(get(prioCol), 64)
			if err != nil {
				return nil, fmt.Errorf("workload: row %d priority: %w", ln+2, err)
			}
			horizon, err := strconv.ParseFloat(get(horizonCol), 64)
			if err != nil {
				return nil, fmt.Errorf("workload: row %d horizon: %w", ln+2, err)
			}
			if !(prio > 0) || !(horizon > 0) {
				return nil, fmt.Errorf("workload: row %d priority/horizon must be positive", ln+2)
			}
			tuf = utility.LinearDecay(prio, horizon)
		} else {
			tuf = policy.NewTUF(src, ttype)
		}
		rows = append(rows, row{arrival: arrival, ttype: ttype, tuf: tuf})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].arrival < rows[j].arrival })

	tr := &Trace{Window: window}
	for i, r := range rows {
		tr.Tasks = append(tr.Tasks, Task{ID: i, Type: r.ttype, Arrival: r.arrival, TUF: r.tuf})
		if r.arrival > tr.Window {
			tr.Window = r.arrival
		}
	}
	if tr.Window <= 0 {
		tr.Window = 1
	}
	if err := tr.Validate(sys); err != nil {
		return nil, fmt.Errorf("workload: imported trace invalid: %w", err)
	}
	return tr, nil
}
