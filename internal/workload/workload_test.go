package workload

import (
	"math"
	"testing"

	"tradeoff/internal/data"
	"tradeoff/internal/rng"
	"tradeoff/internal/utility"
)

func genTrace(t *testing.T, n int, window float64, arrival ArrivalProcess) *Trace {
	t.Helper()
	sys := data.RealSystem()
	tr, err := Generate(sys, GenConfig{NumTasks: n, Window: window, Arrival: arrival}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGenerateUniform(t *testing.T) {
	tr := genTrace(t, 250, 900, UniformArrivals)
	if tr.NumTasks() != 250 {
		t.Fatalf("NumTasks = %d", tr.NumTasks())
	}
	if err := tr.Validate(data.RealSystem()); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratePoisson(t *testing.T) {
	tr := genTrace(t, 250, 900, PoissonArrivals)
	if err := tr.Validate(data.RealSystem()); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	sys := data.RealSystem()
	cfg := GenConfig{NumTasks: 50, Window: 900}
	a, err := Generate(sys, cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(sys, cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tasks {
		if a.Tasks[i].Type != b.Tasks[i].Type || a.Tasks[i].Arrival != b.Tasks[i].Arrival {
			t.Fatalf("generation not deterministic at task %d", i)
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	sys := data.RealSystem()
	src := rng.New(1)
	if _, err := Generate(sys, GenConfig{NumTasks: 0, Window: 10}, src); err == nil {
		t.Error("NumTasks=0 accepted")
	}
	if _, err := Generate(sys, GenConfig{NumTasks: 5, Window: 0}, src); err == nil {
		t.Error("Window=0 accepted")
	}
	if _, err := Generate(sys, GenConfig{NumTasks: 5, Window: 10, TypeWeights: []float64{1}}, src); err == nil {
		t.Error("mismatched TypeWeights accepted")
	}
	if _, err := Generate(sys, GenConfig{NumTasks: 5, Window: 10, Arrival: ArrivalProcess(7)}, src); err == nil {
		t.Error("unknown arrival process accepted")
	}
}

func TestTypeWeightsRespected(t *testing.T) {
	sys := data.RealSystem()
	weights := []float64{0, 0, 1, 0, 0}
	tr, err := Generate(sys, GenConfig{NumTasks: 100, Window: 10, TypeWeights: weights}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tr.Tasks {
		if task.Type != 2 {
			t.Fatalf("task %d has type %d, want 2", task.ID, task.Type)
		}
	}
}

func TestArrivalsSortedAndWithinWindow(t *testing.T) {
	for _, ap := range []ArrivalProcess{UniformArrivals, PoissonArrivals} {
		tr := genTrace(t, 500, 3600, ap)
		prev := -1.0
		for _, task := range tr.Tasks {
			if task.Arrival < prev {
				t.Fatalf("arrivals not sorted (process %d)", ap)
			}
			if task.Arrival < 0 || task.Arrival > 3600 {
				t.Fatalf("arrival %v outside window (process %d)", task.Arrival, ap)
			}
			prev = task.Arrival
		}
	}
}

func TestMaxUtilityPositive(t *testing.T) {
	tr := genTrace(t, 100, 900, UniformArrivals)
	mu := tr.MaxUtility()
	if mu <= 0 {
		t.Fatalf("MaxUtility = %v", mu)
	}
	// Every individual TUF value is bounded by its max.
	var sum float64
	for _, task := range tr.Tasks {
		sum += task.TUF.Value(0)
	}
	if math.Abs(sum-mu) > 1e-9 {
		t.Fatalf("MaxUtility %v != sum of Value(0) %v", mu, sum)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	sys := data.RealSystem()
	fresh := func() *Trace { return genTrace(t, 20, 900, UniformArrivals) }

	tr := fresh()
	tr.Tasks[3].ID = 99
	if err := tr.Validate(sys); err == nil {
		t.Error("non-dense ID accepted")
	}

	tr = fresh()
	tr.Tasks[3].Type = 99
	if err := tr.Validate(sys); err == nil {
		t.Error("bad type accepted")
	}

	tr = fresh()
	tr.Tasks[3].Arrival = -1
	if err := tr.Validate(sys); err == nil {
		t.Error("negative arrival accepted")
	}

	tr = fresh()
	tr.Tasks[3].Arrival = tr.Tasks[10].Arrival + 1 // out of order
	if err := tr.Validate(sys); err == nil {
		t.Error("unsorted arrivals accepted")
	}

	tr = fresh()
	tr.Tasks[3].TUF = nil
	if err := tr.Validate(sys); err == nil {
		t.Error("nil TUF accepted")
	}

	tr = fresh()
	tr.Window = 0
	if err := tr.Validate(sys); err == nil {
		t.Error("zero window accepted")
	}

	empty := &Trace{Window: 10}
	if err := empty.Validate(sys); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestCloneDeep(t *testing.T) {
	tr := genTrace(t, 10, 900, UniformArrivals)
	c := tr.Clone()
	c.Tasks[0].Arrival = 1e9
	c.Tasks[0].TUF.Priority = 1e9
	if tr.Tasks[0].Arrival == 1e9 || tr.Tasks[0].TUF.Priority == 1e9 {
		t.Fatal("Clone aliases original")
	}
}

func TestDefaultTUFPolicyScalesToExecTime(t *testing.T) {
	sys := data.RealSystem()
	p := NewDefaultTUFPolicy(sys)
	if len(p.AvgExec) != sys.NumTaskTypes() {
		t.Fatal("AvgExec length wrong")
	}
	// Kernel compile (type 4) is the longest task; its TUF horizons must
	// exceed those of Warsow (type 2), the shortest.
	src := rng.New(3)
	var hLong, hShort float64
	for i := 0; i < 200; i++ {
		hLong += p.NewTUF(src, 4).Horizon()
		hShort += p.NewTUF(src, 2).Horizon()
	}
	if hLong <= hShort {
		t.Fatalf("TUF horizons not scaled to execution time: long=%v short=%v", hLong, hShort)
	}
}

func TestDefaultTUFPolicyProducesValidMonotoneFunctions(t *testing.T) {
	sys := data.RealSystem()
	p := NewDefaultTUFPolicy(sys)
	src := rng.New(4)
	for i := 0; i < 500; i++ {
		f := p.NewTUF(src, i%sys.NumTaskTypes())
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

type fixedTUF struct{ f *utility.Function }

func (p fixedTUF) NewTUF(_ *rng.Source, _ int) *utility.Function { return p.f }

func TestCustomTUFPolicy(t *testing.T) {
	sys := data.RealSystem()
	f := utility.StepDeadline(5, 100)
	tr, err := Generate(sys, GenConfig{NumTasks: 10, Window: 50, TUF: fixedTUF{f}}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tr.Tasks {
		if task.TUF.MaxValue() != 5 {
			t.Fatal("custom TUF policy ignored")
		}
	}
}

func BenchmarkGenerate1000(b *testing.B) {
	sys := data.RealSystem()
	cfg := GenConfig{NumTasks: 1000, Window: 900}
	for i := 0; i < b.N; i++ {
		if _, err := Generate(sys, cfg, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBurstArrivalsShape(t *testing.T) {
	tr := genTrace(t, 2000, 3600, BurstArrivals)
	if err := tr.Validate(data.RealSystem()); err != nil {
		t.Fatal(err)
	}
	// Count tasks inside the three 5%-wide burst windows: must be well
	// above the uniform expectation (15% of tasks).
	inBurst := 0
	for _, task := range tr.Tasks {
		for b := 0; b < 3; b++ {
			c := 3600 * (float64(b) + 0.5) / 3
			if task.Arrival >= c-90 && task.Arrival <= c+90 {
				inBurst++
				break
			}
		}
	}
	frac := float64(inBurst) / 2000
	if frac < 0.5 {
		t.Fatalf("burst windows hold %.0f%% of tasks, want >= 50%%", frac*100)
	}
}
