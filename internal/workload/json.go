package workload

import (
	"encoding/json"
	"fmt"

	"tradeoff/internal/hcs"
)

// JSON serialization for traces. TUFs serialize structurally (priority,
// segments, tail); decoded traces are validated against the target
// system before use.

// MarshalJSON implements json.Marshaler for Trace.
func (tr *Trace) MarshalJSON() ([]byte, error) {
	type alias Trace // avoid recursion
	return json.Marshal((*alias)(tr))
}

// DecodeTrace parses a trace from JSON and validates it against sys.
func DecodeTrace(raw []byte, sys *hcs.System) (*Trace, error) {
	var tr Trace
	if err := json.Unmarshal(raw, &tr); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	if err := tr.Validate(sys); err != nil {
		return nil, fmt.Errorf("workload: decoded trace invalid: %w", err)
	}
	return &tr, nil
}

// EncodeTrace renders a trace as indented JSON.
func EncodeTrace(tr *Trace) ([]byte, error) {
	return json.MarshalIndent(tr, "", "  ")
}
