package wssa

import (
	"testing"

	"tradeoff/internal/data"
	"tradeoff/internal/heuristics"
	"tradeoff/internal/moea"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
	"tradeoff/internal/workload"
)

func newEval(t testing.TB, n int) *sched.Evaluator {
	t.Helper()
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: n, Window: 900}, rng.New(91))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sched.NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidation(t *testing.T) {
	e := newEval(t, 10)
	bad := []Config{
		{Weight: -0.1},
		{Weight: 1.1},
		{Weight: 0.5, Iterations: -3},
		{Weight: 0.5, StartTemp: -1},
		{Weight: 0.5, StartTemp: 0.001, EndTemp: 0.01}, // end > start
	}
	for i, cfg := range bad {
		if _, err := Anneal(e, cfg, rng.New(1)); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	badStart := sched.NewAllocation(3)
	if _, err := Anneal(e, Config{Weight: 0.5, Start: badStart}, rng.New(1)); err == nil {
		t.Error("invalid start accepted")
	}
}

func TestAnnealImprovesScalarizedObjective(t *testing.T) {
	e := newEval(t, 80)
	src := rng.New(2)
	start := e.RandomAllocation(src)
	startEv := e.Evaluate(start)
	res, err := Anneal(e, Config{Weight: 0.7, Iterations: 3000, Start: start}, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(res.Alloc); err != nil {
		t.Fatal(err)
	}
	// Scalarized score of the result must beat the start's.
	u0, e0 := startEv.Utility, startEv.Energy
	score := func(ev sched.Evaluation) float64 { return 0.7*(ev.Utility/u0) - 0.3*(ev.Energy/e0) }
	if !(score(res.Evaluation) > score(startEv)) {
		t.Fatalf("annealing did not improve: %v -> %v", score(startEv), score(res.Evaluation))
	}
	if res.Accepted == 0 {
		t.Fatal("no moves accepted")
	}
}

func TestAnnealDeterministic(t *testing.T) {
	e := newEval(t, 40)
	run := func() sched.Evaluation {
		res, err := Anneal(e, Config{Weight: 0.5, Iterations: 1000}, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		return res.Evaluation
	}
	if run() != run() {
		t.Fatal("annealing not deterministic")
	}
}

func TestWeightExtremesPullObjectives(t *testing.T) {
	e := newEval(t, 100)
	energyFocused, err := Anneal(e, Config{Weight: 0, Iterations: 4000}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	utilityFocused, err := Anneal(e, Config{Weight: 1, Iterations: 4000}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if !(energyFocused.Evaluation.Energy < utilityFocused.Evaluation.Energy) {
		t.Fatalf("w=0 energy %v not below w=1 energy %v",
			energyFocused.Evaluation.Energy, utilityFocused.Evaluation.Energy)
	}
	if !(utilityFocused.Evaluation.Utility > energyFocused.Evaluation.Utility) {
		t.Fatalf("w=1 utility %v not above w=0 utility %v",
			utilityFocused.Evaluation.Utility, energyFocused.Evaluation.Utility)
	}
}

func TestLadderProducesTradeoffs(t *testing.T) {
	e := newEval(t, 80)
	weights := []float64{0, 0.25, 0.5, 0.75, 1}
	results, err := Ladder(e, weights, Config{Iterations: 2000}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(weights) {
		t.Fatalf("%d results", len(results))
	}
	// At least one pair must be mutually nondominated — the ladder
	// sketches a trade-off, not a single point.
	sp := moea.UtilityEnergySpace()
	tradeoff := false
	for i := range results {
		for j := i + 1; j < len(results); j++ {
			a := []float64{results[i].Evaluation.Utility, results[i].Evaluation.Energy}
			b := []float64{results[j].Evaluation.Utility, results[j].Evaluation.Energy}
			if sp.Incomparable(a, b) {
				tradeoff = true
			}
		}
	}
	if !tradeoff {
		t.Fatal("ladder produced no mutually nondominated pair")
	}
}

func TestLadderEmptyWeights(t *testing.T) {
	e := newEval(t, 10)
	if _, err := Ladder(e, nil, Config{}, rng.New(1)); err == nil {
		t.Fatal("empty weights accepted")
	}
}

func TestSeededAnnealNotWorseThanSeedScore(t *testing.T) {
	e := newEval(t, 80)
	seed := heuristics.BuildMaxUtility(e)
	seedEv := e.Evaluate(seed)
	res, err := Anneal(e, Config{Weight: 1, Iterations: 2000, Start: seed}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	// Weight 1 = pure utility; best-seen tracking means the result can
	// never earn less utility than the seed.
	if res.Evaluation.Utility < seedEv.Utility-1e-9 {
		t.Fatalf("seeded anneal lost utility: %v -> %v", seedEv.Utility, res.Evaluation.Utility)
	}
}

func BenchmarkAnneal250x1000(b *testing.B) {
	e := newEval(b, 250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Anneal(e, Config{Weight: 0.5, Iterations: 1000}, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
