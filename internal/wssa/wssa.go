// Package wssa implements a weighted-sum simulated-annealing scheduler,
// the style of bi-objective solver the paper contrasts itself against in
// §II (Abbasi et al. [8]): one run scalarizes the two objectives with a
// fixed weight and anneals toward a single solution; sweeping the weight
// produces a ladder of solutions approximating a front — at the cost of
// one full run per point, unlike NSGA-II's one-run front.
//
// The neighborhood operators mirror the genetic operators of the NSGA-II
// adaptation so the comparison isolates the search strategy: a move
// either reassigns one task to a random eligible machine or swaps the
// global scheduling order of two tasks.
package wssa

import (
	"fmt"
	"math"

	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// Config parameterizes one annealing run.
type Config struct {
	// Weight blends the objectives: the scalar score is
	// w·(utility/U0) − (1−w)·(energy/E0), maximized. 0 ≤ Weight ≤ 1.
	// U0 and E0 are normalization constants taken from the start state.
	Weight float64
	// Iterations is the number of annealing steps. Default 10000.
	Iterations int
	// StartTemp is the initial temperature in normalized-score units.
	// Default 0.05.
	StartTemp float64
	// EndTemp is the final temperature. Default 1e-4.
	EndTemp float64
	// Start optionally seeds the annealer; nil starts from a random
	// allocation.
	Start *sched.Allocation
}

func (c *Config) fillAndValidate() error {
	if c.Iterations == 0 {
		c.Iterations = 10000
	}
	if c.StartTemp == 0 {
		c.StartTemp = 0.05
	}
	if c.EndTemp == 0 {
		c.EndTemp = 1e-4
	}
	if c.Weight < 0 || c.Weight > 1 {
		return fmt.Errorf("wssa: weight %v outside [0,1]", c.Weight)
	}
	if c.Iterations < 1 {
		return fmt.Errorf("wssa: iterations %d, want >= 1", c.Iterations)
	}
	if !(c.StartTemp > 0) || !(c.EndTemp > 0) || c.EndTemp > c.StartTemp {
		return fmt.Errorf("wssa: temperatures (%v, %v) invalid", c.StartTemp, c.EndTemp)
	}
	return nil
}

// Result is one annealing run's outcome.
type Result struct {
	Alloc      *sched.Allocation
	Evaluation sched.Evaluation
	// Accepted counts accepted moves (diagnostics).
	Accepted int
	// Iterations actually performed.
	Iterations int
}

// Anneal runs simulated annealing with geometric cooling and returns the
// best-scoring allocation seen. Deterministic in src.
func Anneal(e *sched.Evaluator, cfg Config, src *rng.Source) (*Result, error) {
	if err := cfg.fillAndValidate(); err != nil {
		return nil, err
	}
	cur := cfg.Start
	if cur == nil {
		cur = e.RandomAllocation(src)
	} else {
		if err := e.Validate(cur); err != nil {
			return nil, fmt.Errorf("wssa: invalid start: %w", err)
		}
		cur = cur.Clone()
	}
	sess := e.NewSession()
	curEv := sess.Evaluate(cur)

	// Normalization constants from the start state keep the scalarized
	// objective dimensionless; guard against zeros.
	u0 := curEv.Utility
	if u0 <= 0 {
		u0 = 1
	}
	e0 := curEv.Energy
	if e0 <= 0 {
		e0 = 1
	}
	score := func(ev sched.Evaluation) float64 {
		return cfg.Weight*(ev.Utility/u0) - (1-cfg.Weight)*(ev.Energy/e0)
	}

	curScore := score(curEv)
	best := &Result{Alloc: cur.Clone(), Evaluation: curEv, Iterations: cfg.Iterations}
	bestScore := curScore

	cooling := math.Pow(cfg.EndTemp/cfg.StartTemp, 1/float64(cfg.Iterations))
	temp := cfg.StartTemp
	tasks := e.Trace().Tasks
	n := cur.Len()

	// Scratch for undoing moves without re-cloning.
	for it := 0; it < cfg.Iterations; it++ {
		// Propose: machine reassignment or order swap, equiprobable.
		var undo func()
		if src.Bool(0.5) {
			k := src.Intn(n)
			el := e.Eligible(tasks[k].Type)
			old := cur.Machine[k]
			cur.Machine[k] = int32(el[src.Intn(len(el))])
			undo = func() { cur.Machine[k] = old }
		} else {
			x, y := src.Intn(n), src.Intn(n)
			cur.Order[x], cur.Order[y] = cur.Order[y], cur.Order[x]
			undo = func() { cur.Order[x], cur.Order[y] = cur.Order[y], cur.Order[x] }
		}
		ev := sess.Evaluate(cur)
		sc := score(ev)
		accept := sc >= curScore
		if !accept {
			// Metropolis criterion.
			accept = src.Float64() < math.Exp((sc-curScore)/temp)
		}
		if accept {
			curScore, curEv = sc, ev
			best.Accepted++
			if sc > bestScore {
				bestScore = sc
				best.Alloc = cur.Clone()
				best.Evaluation = ev
			}
		} else {
			undo()
		}
		temp *= cooling
	}
	return best, nil
}

// Ladder runs one annealing per weight and returns the results in weight
// order — the multi-run protocol a weighted-sum solver needs to sketch a
// front. Deterministic in src (each run gets a split stream).
func Ladder(e *sched.Evaluator, weights []float64, base Config, src *rng.Source) ([]*Result, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("wssa: no weights")
	}
	out := make([]*Result, len(weights))
	for i, w := range weights {
		cfg := base
		cfg.Weight = w
		r, err := Anneal(e, cfg, src.Split())
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
