package report

import (
	"strings"
	"testing"
	"time"

	"tradeoff/internal/core"
	"tradeoff/internal/data"
	"tradeoff/internal/heuristics"
	"tradeoff/internal/rng"
	"tradeoff/internal/workload"
)

func newResult(t *testing.T) (*core.Framework, *core.Result) {
	t.Helper()
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: 60, Window: 600}, rng.New(121))
	if err != nil {
		t.Fatal(err)
	}
	fw, err := core.New(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.Optimize(core.Options{
		Generations:    30,
		PopulationSize: 16,
		Seeds:          []heuristics.Heuristic{heuristics.MinEnergy, heuristics.MaxUtility},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fw, res
}

func TestRenderContainsAllSections(t *testing.T) {
	fw, res := newResult(t)
	out, err := Render(fw, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Utility/Energy Trade-off Analysis",
		"## System",
		"## Workload",
		"## Pareto front",
		"## Operating-point guidance",
		"## Recommended allocation",
		"max utility-per-energy",
		"machine type",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "Generated ") {
		t.Error("timestamp present without GeneratedAt")
	}
}

func TestRenderTimestampAndTitle(t *testing.T) {
	fw, res := newResult(t)
	out, err := Render(fw, res, Options{
		Title:       "Cluster X weekly review",
		GeneratedAt: time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# Cluster X weekly review") {
		t.Error("custom title missing")
	}
	if !strings.Contains(out, "2026-07-04T12:00:00Z") {
		t.Error("timestamp missing")
	}
}

func TestRenderDownsamplesLargeFronts(t *testing.T) {
	fw, res := newResult(t)
	out, err := Render(fw, res, Options{MaxFrontRows: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) > 3 && !strings.Contains(out, "downsampled") {
		t.Error("large front not downsampled")
	}
}

func TestRenderCustomBudgets(t *testing.T) {
	fw, res := newResult(t)
	out, err := Render(fw, res, Options{Budgets: []float64{1, res.Front[0].Energy * 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "unattainable") {
		t.Error("impossible budget should read unattainable")
	}
}

func TestRenderDeterministic(t *testing.T) {
	fw, res := newResult(t)
	a, err := Render(fw, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Render(fw, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("report rendering not deterministic")
	}
}

func TestWriteRejectsEmptyFront(t *testing.T) {
	fw, _ := newResult(t)
	var sb strings.Builder
	if err := Write(&sb, fw, &core.Result{}, Options{}); err == nil {
		t.Fatal("empty result accepted")
	}
}
