// Package report renders a complete analysis run as a self-contained
// Markdown document — the artifact a system administrator files after
// using the framework: system inventory, trace statistics, the Pareto
// front with its efficient region, operating-point guidance, and the
// per-machine breakdown of the recommended allocation.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"tradeoff/internal/analysis"
	"tradeoff/internal/core"
	"tradeoff/internal/hcs"
	"tradeoff/internal/plot"
	"tradeoff/internal/workload"
)

// Options configures report rendering.
type Options struct {
	// Title heads the document. Default "Utility/Energy Trade-off Analysis".
	Title string
	// GeneratedAt stamps the document; zero means omit the stamp (keeps
	// byte-identical golden outputs).
	GeneratedAt time.Time
	// MaxFrontRows truncates the front table (0 = 25).
	MaxFrontRows int
	// Budgets, in joules, for the operating-point table; nil derives a
	// ladder from the front extent.
	Budgets []float64
}

// Write renders the report for an optimization result.
func Write(w io.Writer, fw *core.Framework, res *core.Result, opts Options) error {
	if len(res.Front) == 0 {
		return fmt.Errorf("report: empty front")
	}
	if opts.Title == "" {
		opts.Title = "Utility/Energy Trade-off Analysis"
	}
	if opts.MaxFrontRows == 0 {
		opts.MaxFrontRows = 25
	}

	fmt.Fprintf(w, "# %s\n\n", opts.Title)
	if !opts.GeneratedAt.IsZero() {
		fmt.Fprintf(w, "_Generated %s._\n\n", opts.GeneratedAt.Format(time.RFC3339))
	}

	writeSystemSection(w, fw.System())
	if err := writeTraceSection(w, fw); err != nil {
		return err
	}
	writeFrontSection(w, res, opts)
	writeGuidanceSection(w, res, opts)
	return writeMachineSection(w, fw, res)
}

func writeSystemSection(w io.Writer, sys *hcs.System) {
	fmt.Fprintf(w, "## System\n\n")
	fmt.Fprintf(w, "%d machines across %d machine types; %d task types.\n\n",
		sys.NumMachines(), sys.NumMachineTypes(), sys.NumTaskTypes())
	fmt.Fprintf(w, "| machine type | category | instances |\n|---|---|---|\n")
	for mu, mt := range sys.MachineTypes {
		fmt.Fprintf(w, "| %s | %s | %d |\n", mt.Name, mt.Category, len(sys.MachinesOfType(mu)))
	}
	fmt.Fprintln(w)
}

func writeTraceSection(w io.Writer, fw *core.Framework) error {
	st, err := workload.Stats(fw.Trace(), fw.System())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Workload\n\n")
	fmt.Fprintf(w, "%d tasks over %.0f s (%.3f tasks/s); offered load %.2f; "+
		"utility upper bound %.1f; %d special-purpose tasks.\n\n",
		st.NumTasks, st.Window, st.ArrivalRate, st.OfferedLoad, st.MaxUtility, st.SpecialPurposeTasks)
	return nil
}

func writeFrontSection(w io.Writer, res *core.Result, opts Options) {
	fmt.Fprintf(w, "## Pareto front\n\n")
	fmt.Fprintf(w, "%d mutually nondominated allocations after %d generations; hypervolume %.4g.\n\n",
		len(res.Front), res.Generations, res.Hypervolume)

	chart := &plot.Chart{
		XLabel: "total energy consumed (MJ)",
		YLabel: "total utility earned",
		Series: []plot.Series{{Name: "front"}},
	}
	for _, p := range res.Front {
		chart.Series[0].Points = append(chart.Series[0].Points, plot.Point{X: p.Energy / 1e6, Y: p.Utility})
	}
	fmt.Fprintf(w, "```\n%s```\n\n", chart.ASCII(72, 18))

	rows := len(res.Front)
	step := 1
	if rows > opts.MaxFrontRows {
		step = (rows + opts.MaxFrontRows - 1) / opts.MaxFrontRows
	}
	fmt.Fprintf(w, "| # | energy (MJ) | utility | utility/MJ | note |\n|---|---|---|---|---|\n")
	for i := 0; i < rows; i += step {
		p := res.Front[i]
		note := ""
		switch {
		case i == res.Region.PeakIndex:
			note = "**max utility-per-energy**"
		case i >= res.Region.Lo && i <= res.Region.Hi:
			note = "efficient region"
		}
		fmt.Fprintf(w, "| %d | %.4f | %.1f | %.2f | %s |\n", i, p.Energy/1e6, p.Utility, p.UPE()*1e6, note)
	}
	if step > 1 {
		fmt.Fprintf(w, "\n_(front downsampled 1:%d for brevity; %d solutions total)_\n", step, rows)
	}
	fmt.Fprintln(w)
}

func writeGuidanceSection(w io.Writer, res *core.Result, opts Options) {
	fmt.Fprintf(w, "## Operating-point guidance\n\n")
	fmt.Fprintf(w, "Most efficient solution: **%.4f MJ for %.1f utility** (%.2f utility/MJ).\n\n",
		res.Region.Peak.Energy/1e6, res.Region.Peak.Utility, res.Region.PeakUPE*1e6)
	budgets := opts.Budgets
	if budgets == nil {
		lo := res.Front[0].Energy
		hi := res.Front[len(res.Front)-1].Energy
		for _, f := range []float64{1.0, 1.1, 1.25, 1.5} {
			if b := lo * f; b <= hi*1.0001 {
				budgets = append(budgets, b)
			}
		}
		if len(budgets) == 0 {
			budgets = []float64{hi}
		}
	}
	fmt.Fprintf(w, "| energy budget (MJ) | best utility | solution |\n|---|---|---|\n")
	for _, b := range budgets {
		idx := analysis.BestUnderBudget(res.Front, b)
		if idx < 0 {
			fmt.Fprintf(w, "| %.4f | unattainable | - |\n", b/1e6)
			continue
		}
		fmt.Fprintf(w, "| %.4f | %.1f | #%d |\n", b/1e6, res.Front[idx].Utility, idx)
	}
	fmt.Fprintln(w)
}

func writeMachineSection(w io.Writer, fw *core.Framework, res *core.Result) error {
	fmt.Fprintf(w, "## Recommended allocation (efficient-region peak)\n\n")
	alloc := res.Allocations[res.Region.PeakIndex]
	var sb strings.Builder
	if err := fw.Evaluator().WriteReport(&sb, alloc); err != nil {
		return err
	}
	fmt.Fprintf(w, "```\n%s```\n", sb.String())
	return nil
}

// Render is a convenience that returns the report as a string.
func Render(fw *core.Framework, res *core.Result, opts Options) (string, error) {
	var sb strings.Builder
	if err := Write(&sb, fw, res, opts); err != nil {
		return "", err
	}
	return sb.String(), nil
}
