//go:build !unix

package dist

import (
	"fmt"
	"io"
	"os/exec"
)

// WorkerFD is the file descriptor a worker process inherits its wire
// socket on (unsupported on this platform).
const WorkerFD = 3

// Proc is one spawned worker process (unsupported on this platform).
type Proc struct {
	Conn *Conn
	cmd  *exec.Cmd
}

// Wait reaps the worker process.
func (p *Proc) Wait() error { return p.cmd.Wait() }

// Kill force-terminates the worker process.
func (p *Proc) Kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill() //nolint:errcheck // best-effort teardown
	}
}

// StartWorkers reports that socketpair-based worker spawning needs a
// unix platform.
func StartWorkers(n int, onBytes func(int), command func(worker int) *exec.Cmd) ([]*Proc, error) {
	return nil, fmt.Errorf("dist: distributed islands need a unix platform (socketpair)")
}

// WorkerSocket reports that the inherited worker socket needs a unix
// platform.
func WorkerSocket() io.ReadWriteCloser {
	return nil
}
