//go:build unix

package dist

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"syscall"
)

// WorkerFD is the file descriptor a worker process inherits its wire
// socket on: the first ExtraFiles slot after stdin/stdout/stderr.
const WorkerFD = 3

// Proc is one spawned worker process and the parent side of its socket.
type Proc struct {
	// Conn is the parent's framed connection to the worker.
	Conn *Conn
	cmd  *exec.Cmd
}

// Wait reaps the worker process.
func (p *Proc) Wait() error { return p.cmd.Wait() }

// Kill force-terminates the worker process (best effort).
func (p *Proc) Kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill() //nolint:errcheck // best-effort teardown
	}
}

// StartWorkers forks n workers, each over its own socketpair. command
// builds worker w's exec.Cmd (typically the current binary re-executed
// with a worker flag); its socket end is appended to ExtraFiles, so
// with no other extra files it arrives on fd WorkerFD. onBytes, when
// non-nil, observes every wire frame's size on the parent side. On any
// spawn failure every already-started worker is killed and reaped.
func StartWorkers(n int, onBytes func(int), command func(worker int) *exec.Cmd) ([]*Proc, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: %d workers, want >= 1", n)
	}
	var procs []*Proc
	fail := func(err error) ([]*Proc, error) {
		for _, p := range procs {
			p.Conn.Close() //nolint:errcheck // teardown
			p.Kill()
			p.Wait() //nolint:errcheck // teardown
		}
		return nil, err
	}
	for w := 0; w < n; w++ {
		fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM, 0)
		if err != nil {
			return fail(fmt.Errorf("dist: socketpair: %w", err))
		}
		// ExtraFiles dups the child end into the worker, so both originals
		// can be close-on-exec here in the parent.
		syscall.CloseOnExec(fds[0])
		syscall.CloseOnExec(fds[1])
		parentEnd := os.NewFile(uintptr(fds[0]), "dist-parent")
		childEnd := os.NewFile(uintptr(fds[1]), "dist-worker")
		cmd := command(w)
		cmd.ExtraFiles = append(cmd.ExtraFiles, childEnd)
		if err := cmd.Start(); err != nil {
			parentEnd.Close() //nolint:errcheck // teardown
			childEnd.Close()  //nolint:errcheck // teardown
			return fail(fmt.Errorf("dist: start worker %d: %w", w, err))
		}
		childEnd.Close() //nolint:errcheck // child holds its own dup
		procs = append(procs, &Proc{Conn: NewConn(parentEnd, onBytes), cmd: cmd})
	}
	return procs, nil
}

// WorkerSocket opens the wire socket a worker process inherited on fd
// WorkerFD.
func WorkerSocket() io.ReadWriteCloser {
	return os.NewFile(WorkerFD, "dist-socket")
}
