// Package dist distributes an island-model NSGA-II run across worker
// processes (DESIGN.md §15). A parent process forks N workers over
// socketpairs; each worker runs a contiguous shard of the island ring
// with the asynchronous logical-clock schedule (internal/nsga2), and
// the ring's boundary edges are carried over the wire by a
// deterministic, length-framed binary codec. The parent routes elite
// migrations between workers, aggregates their telemetry shards, and
// merges their fronts — bit-identical to the in-process async run.
//
// Wire format: every frame is
//
//	[u32 payload length, little-endian] [u8 message type] [payload]
//
// and every payload field is fixed-width little-endian (no varints, no
// gob/JSON on the hot path). Genome genes travel as uint32 two's-
// complement images of their int32 values; objectives as IEEE-754
// bits. The codec rejects truncated frames, trailing payload garbage,
// and unknown message types with structured *WireError values.
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// WireVersion is the protocol version carried in every MsgHello; the
// parent refuses workers speaking a different version.
const WireVersion = 1

// MaxFrame bounds a frame's payload length. Far above any real
// migration payload, it keeps a corrupt or adversarial length prefix
// from provoking a giant allocation.
const MaxFrame = 1 << 30

// MsgType identifies a frame's payload schema.
type MsgType uint8

const (
	// MsgHello is the worker's handshake: protocol version, shard
	// range, and per-island telemetry baselines.
	MsgHello MsgType = iota + 1
	// MsgRestore carries islands-snapshot segments from parent to
	// worker for a cross-process resume.
	MsgRestore
	// MsgRestored acknowledges a restore with fresh baselines.
	MsgRestored
	// MsgRun starts a run of a given number of generations.
	MsgRun
	// MsgElites is one boundary ring edge's migration payload at one
	// logical tick (worker → parent → destination worker).
	MsgElites
	// MsgReport ends a worker's run: per-tick per-island counter
	// shards plus the worker's wire-stall time.
	MsgReport
	// MsgFrontReq asks a worker for its islands' rank-1 fronts.
	MsgFrontReq
	// MsgFront answers MsgFrontReq.
	MsgFront
	// MsgSnapshotReq asks a worker for its islands' snapshot segments.
	MsgSnapshotReq
	// MsgSnapshot answers MsgSnapshotReq.
	MsgSnapshot
	// MsgAbort reports a fatal worker error to the parent.
	MsgAbort
	// MsgExit asks a worker to shut down cleanly.
	MsgExit
)

// numMsgTypes is one past the last valid MsgType.
const numMsgTypes = int(MsgExit) + 1

// String names the message type for errors and logs.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgRestore:
		return "restore"
	case MsgRestored:
		return "restored"
	case MsgRun:
		return "run"
	case MsgElites:
		return "elites"
	case MsgReport:
		return "report"
	case MsgFrontReq:
		return "front-req"
	case MsgFront:
		return "front"
	case MsgSnapshotReq:
		return "snapshot-req"
	case MsgSnapshot:
		return "snapshot"
	case MsgAbort:
		return "abort"
	case MsgExit:
		return "exit"
	default:
		return fmt.Sprintf("msg(%d)", uint8(t))
	}
}

// Sentinel causes for wire failures, reachable through errors.Is on a
// *WireError.
var (
	// ErrTruncated reports a stream that ended inside a frame header or
	// payload, or a payload shorter than its message's schema.
	ErrTruncated = errors.New("truncated frame")
	// ErrTrailingGarbage reports payload bytes left over after a
	// message's schema was fully decoded.
	ErrTrailingGarbage = errors.New("trailing garbage after payload")
	// ErrFrameTooLarge reports a length prefix beyond MaxFrame.
	ErrFrameTooLarge = errors.New("frame exceeds size limit")
	// ErrUnknownMessage reports a type byte outside the protocol.
	ErrUnknownMessage = errors.New("unknown message type")
	// ErrBadPayload reports schema-valid framing around nonsense
	// content (impossible counts, version mismatches).
	ErrBadPayload = errors.New("malformed payload")
	// ErrUnexpectedMessage reports a well-formed message arriving where
	// the protocol state machine does not allow it.
	ErrUnexpectedMessage = errors.New("unexpected message")
)

// WireError is the structured decode failure, mirroring obs.TraceError:
// the 1-based frame index in the stream (0 when unknown), the message
// type being decoded (0 when the header itself failed), and the
// underlying cause.
type WireError struct {
	Frame int
	Msg   MsgType
	Err   error
}

func (e *WireError) Error() string {
	switch {
	case e.Frame > 0 && e.Msg != 0:
		return fmt.Sprintf("dist: frame %d (%s): %v", e.Frame, e.Msg, e.Err)
	case e.Frame > 0:
		return fmt.Sprintf("dist: frame %d: %v", e.Frame, e.Err)
	case e.Msg != 0:
		return fmt.Sprintf("dist: %s: %v", e.Msg, e.Err)
	default:
		return fmt.Sprintf("dist: %v", e.Err)
	}
}

func (e *WireError) Unwrap() error { return e.Err }

// frameErr builds a *WireError for a framing failure. Error
// construction lives outside the hotpath bodies so steady-state frames
// never touch fmt; every caller is on a path that terminates the
// stream.
func frameErr(frame int, t MsgType, format string, args ...any) error {
	return &WireError{Frame: frame, Msg: t, Err: fmt.Errorf(format, args...)}
}

// Little-endian append helpers. All payload content flows through
// these, so the byte layout is fixed by construction.

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// wireReader is a bounds-checked cursor over one frame's payload.
// Reads past the end latch the sticky truncation flag instead of
// panicking, so decode functions can check once at the end.
type wireReader struct {
	buf   []byte
	off   int
	short bool
}

//detlint:hotpath
func (r *wireReader) u32() uint32 {
	if r.off+4 > len(r.buf) {
		r.short = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

//detlint:hotpath
func (r *wireReader) u64() uint64 {
	if r.off+8 > len(r.buf) {
		r.short = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// remaining reports the undecoded byte count.
func (r *wireReader) remaining() int { return len(r.buf) - r.off }

// finish validates that the payload was consumed exactly: no truncation
// latched, no trailing bytes left.
func (r *wireReader) finish(t MsgType) error {
	if r.short {
		return &WireError{Msg: t, Err: fmt.Errorf("payload ends early at offset %d: %w", r.off, ErrTruncated)}
	}
	if r.off != len(r.buf) {
		return &WireError{Msg: t, Err: fmt.Errorf("%d byte(s) after payload: %w", len(r.buf)-r.off, ErrTrailingGarbage)}
	}
	return nil
}

// Encoder frames and writes wire messages. Not safe for concurrent use;
// connections serialize writers externally.
type Encoder struct {
	w io.Writer
	// buf is the reused frame buffer: header then payload.
	buf []byte
	// onBytes, when non-nil, observes every written frame's size
	// (telemetry hook; never alters the stream).
	onBytes func(n int)
}

// NewEncoder returns an Encoder writing frames to w. onBytes may be
// nil.
func NewEncoder(w io.Writer, onBytes func(n int)) *Encoder {
	return &Encoder{w: w, onBytes: onBytes}
}

// writeFrame patches the header around the payload staged in e.buf
// (which must begin with 5 reserved header bytes) and writes the frame.
//
//detlint:hotpath
func (e *Encoder) writeFrame(t MsgType) error {
	payload := len(e.buf) - 5
	if payload > MaxFrame {
		return frameErr(0, t, "payload of %d bytes: %w", payload, ErrFrameTooLarge)
	}
	binary.LittleEndian.PutUint32(e.buf[:4], uint32(payload))
	e.buf[4] = byte(t)
	if _, err := e.w.Write(e.buf); err != nil {
		return &WireError{Msg: t, Err: err}
	}
	if e.onBytes != nil {
		e.onBytes(len(e.buf))
	}
	return nil
}

// begin resets the frame buffer, reserving the header bytes.
//
//detlint:hotpath
func (e *Encoder) begin() {
	e.buf = e.buf[:0]
	e.buf = append(e.buf, 0, 0, 0, 0, 0)
}

// Decoder reads and unframes wire messages. The returned payload slice
// is valid until the next call. Not safe for concurrent use.
type Decoder struct {
	r     io.Reader
	buf   []byte
	head  [5]byte
	frame int
	// onBytes, when non-nil, observes every read frame's size.
	onBytes func(n int)
}

// NewDecoder returns a Decoder reading frames from r. onBytes may be
// nil.
func NewDecoder(r io.Reader, onBytes func(n int)) *Decoder {
	return &Decoder{r: r, onBytes: onBytes}
}

// Frame returns the number of frames fully read so far.
func (d *Decoder) Frame() int { return d.frame }

// Next reads one frame and returns its type and payload. A clean
// stream end at a frame boundary returns io.EOF; an end inside a frame
// returns a *WireError wrapping ErrTruncated.
//
//detlint:hotpath
func (d *Decoder) Next() (MsgType, []byte, error) {
	if _, err := io.ReadFull(d.r, d.head[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, frameErr(d.frame+1, 0, "header: %w (%w)", err, ErrTruncated)
	}
	n := binary.LittleEndian.Uint32(d.head[:4])
	t := MsgType(d.head[4])
	if int(t) <= 0 || int(t) >= numMsgTypes {
		return 0, nil, frameErr(d.frame+1, 0, "type byte %d: %w", d.head[4], ErrUnknownMessage)
	}
	if n > MaxFrame {
		return 0, nil, frameErr(d.frame+1, t, "length prefix %d: %w", n, ErrFrameTooLarge)
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		return 0, nil, frameErr(d.frame+1, t, "payload: %w (%w)", err, ErrTruncated)
	}
	d.frame++
	if d.onBytes != nil {
		d.onBytes(5 + int(n))
	}
	return t, d.buf, nil
}
