//go:build unix

package dist

// Process-boundary tests: workers are this test binary re-executed via
// StartWorkers, inheriting their socket on fd WorkerFD exactly as
// cmd/tradeoff workers do. TestMain diverts re-executed copies into
// serveProcWorker before the test framework starts, so the parent test
// drives real child processes over real socketpairs.

import (
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"testing"

	"tradeoff/internal/moea"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/obs"
	"tradeoff/internal/rng"
)

// Worker parameters cross the process boundary as environment
// variables; everything else is re-derived deterministically from them.
// A set WORKER variable is itself the worker-mode marker.
const procEnvPrefix = "TRADEOFF_DIST_PROC_"

func procEnv(k string) string {
	return os.Getenv(procEnvPrefix + k) //detlint:allow purity test-harness re-exec channel, set only by this file
}

func TestMain(m *testing.M) {
	if procEnv("WORKER") == "" {
		os.Exit(m.Run())
	}
	if err := serveProcWorker(); err != nil {
		fmt.Fprintln(os.Stderr, "dist proc worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// serveProcWorker is the child-process side: rebuild the evaluator and
// configuration from the environment, then serve the inherited socket.
func serveProcWorker() error {
	num := func(k string) int {
		v, err := strconv.Atoi(procEnv(k))
		if err != nil {
			panic(fmt.Sprintf("dist proc worker: bad %s%s: %v", procEnvPrefix, k, err))
		}
		return v
	}
	eval, err := buildEval(num("DATASET"), num("TASKS"))
	if err != nil {
		return err
	}
	sock := WorkerSocket()
	if sock == nil {
		return fmt.Errorf("no inherited socket on fd %d", WorkerFD)
	}
	return ServeWorker(sock, WorkerEnv{
		Worker:  num("WORKER"),
		Workers: num("WORKERS"),
		Eval:    eval,
		Config:  distCfg(num("ISLANDS"), num("INTERVAL"), num("MIGRANTS"), num("POP")),
		Seed:    uint64(num("SEED")),
	})
}

// procCluster is a distributed run over real worker processes.
type procCluster struct {
	coord *Coordinator
	procs []*Proc
}

func startProcCluster(t *testing.T, dataset, tasks int, cfg nsga2.IslandConfig, seed uint64,
	workers int, o obs.Observer) *procCluster {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	env := os.Environ() //detlint:allow purity test-harness re-exec channel, forwarded verbatim plus worker params
	for _, kv := range []struct {
		k string
		v int
	}{
		{"WORKERS", workers}, {"DATASET", dataset}, {"TASKS", tasks},
		{"ISLANDS", cfg.Islands}, {"INTERVAL", cfg.MigrationInterval},
		{"MIGRANTS", cfg.Migrants}, {"POP", cfg.Engine.PopulationSize},
		{"SEED", int(seed)},
	} {
		env = append(env, fmt.Sprintf("%s%s=%d", procEnvPrefix, kv.k, kv.v))
	}
	procs, err := StartWorkers(workers, nil, func(w int) *exec.Cmd {
		cmd := exec.Command(exe)
		cmd.Env = append(append([]string{}, env...), fmt.Sprintf("%sWORKER=%d", procEnvPrefix, w))
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		return cmd
	})
	if err != nil {
		t.Fatal(err)
	}
	conns := make([]*Conn, len(procs))
	for i, p := range procs {
		conns[i] = p.Conn
	}
	coord, err := NewCoordinator(conns, CoordinatorConfig{
		Islands:           cfg.Islands,
		MigrationInterval: cfg.MigrationInterval,
		Migrants:          cfg.Migrants,
		PopulationSize:    cfg.Engine.PopulationSize,
		NumMachines:       0,
		Observer:          o,
	})
	if err != nil {
		for _, p := range procs {
			p.Conn.Close() //nolint:errcheck // teardown
			p.Kill()
			p.Wait() //nolint:errcheck // teardown
		}
		t.Fatal(err)
	}
	return &procCluster{coord: coord, procs: procs}
}

func (c *procCluster) stop(t *testing.T) {
	t.Helper()
	if err := c.coord.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	for w, p := range c.procs {
		if err := p.Wait(); err != nil {
			t.Errorf("worker process %d: %v", w, err)
		}
	}
}

// TestProcDistributedMatchesInProcess: across real process boundaries
// and every worker count, the distributed run must match the in-process
// async run bit for bit — front genotypes and telemetry events.
func TestProcDistributedMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("forks worker processes")
	}
	const tasks, seed = 40, 99
	cfg := distCfg(4, 5, 2, 8)
	e := newEval(t, tasks)
	ref, err := nsga2.NewIslands(e, cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	refLog := &eventLog{}
	ref.SetObserver(refLog)
	ref.Run(13)
	refFront := ref.ParetoFront()

	for _, workers := range []int{1, 2, 4} {
		distLog := &eventLog{}
		cl := startProcCluster(t, 0, tasks, cfg, seed, workers, distLog)
		if err := cl.coord.Run(13); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		union, err := cl.coord.Front()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		cl.stop(t)
		if !sameIndividuals(nsga2.MergeFronts(moea.UtilityEnergySpace(), union), refFront) {
			t.Errorf("workers=%d: front differs from in-process run", workers)
		}
		if !reflect.DeepEqual(distLog.migs, refLog.migs) {
			t.Errorf("workers=%d: migration events differ", workers)
		}
	}
}

// TestProcDistributedDatasets: bit-identity holds on each paper data
// set's machine mix, not just the synthetic system.
func TestProcDistributedDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("forks worker processes")
	}
	const tasks, seed = 30, 7
	cfg := distCfg(3, 4, 1, 6)
	for dataset := 1; dataset <= 3; dataset++ {
		e, err := buildEval(dataset, tasks)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := nsga2.NewIslands(e, cfg, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		ref.Run(9)
		cl := startProcCluster(t, dataset, tasks, cfg, seed, 2, nil)
		if err := cl.coord.Run(9); err != nil {
			t.Fatalf("dataset %d: %v", dataset, err)
		}
		union, err := cl.coord.Front()
		if err != nil {
			t.Fatalf("dataset %d: %v", dataset, err)
		}
		cl.stop(t)
		if !sameIndividuals(nsga2.MergeFronts(moea.UtilityEnergySpace(), union), ref.ParetoFront()) {
			t.Errorf("dataset %d: front differs from in-process run", dataset)
		}
	}
}

// TestProcSnapshotHandoff: snapshots cross real process boundaries in
// both directions and land exactly where the unbroken run lands.
func TestProcSnapshotHandoff(t *testing.T) {
	if testing.Short() {
		t.Skip("forks worker processes")
	}
	const tasks, seed, pause, total = 40, 7, 7, 18
	cfg := distCfg(4, 5, 2, 8)
	e := newEval(t, tasks)
	full, err := nsga2.NewIslands(e, cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	full.Run(total)
	wantFront := full.ParetoFront()

	// Worker processes start the run; an in-process model finishes it.
	cl := startProcCluster(t, 0, tasks, cfg, seed, 2, nil)
	if err := cl.coord.Run(pause); err != nil {
		t.Fatal(err)
	}
	snap, err := cl.coord.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cl.stop(t)
	resumed, err := nsga2.NewIslands(e, cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	resumed.Run(total - pause)
	if !sameIndividuals(resumed.ParetoFront(), wantFront) {
		t.Error("process → in-process resume diverged from the unbroken run")
	}

	// An in-process model starts the run; worker processes finish it.
	head, err := nsga2.NewIslands(e, cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	head.Run(pause)
	cl = startProcCluster(t, 0, tasks, cfg, 1, 3, nil)
	if err := cl.coord.Restore(head.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := cl.coord.Run(total - pause); err != nil {
		t.Fatal(err)
	}
	union, err := cl.coord.Front()
	if err != nil {
		t.Fatal(err)
	}
	cl.stop(t)
	if !sameIndividuals(nsga2.MergeFronts(moea.UtilityEnergySpace(), union), wantFront) {
		t.Error("in-process → process resume diverged from the unbroken run")
	}
}
