package dist

import (
	"fmt"
	"sync"

	"tradeoff/internal/nsga2"
	"tradeoff/internal/obs"
)

// CoordinatorConfig parameterizes the parent side of a distributed
// island run. Every field describing the ring must match the workers'
// WorkerEnv exactly; the coordinator verifies what it can from the
// handshakes.
type CoordinatorConfig struct {
	// Islands, MigrationInterval, Migrants mirror the workers'
	// nsga2.IslandConfig (explicit, no defaulting).
	Islands           int
	MigrationInterval int
	Migrants          int
	// PopulationSize is the per-island population (for the aggregated
	// stats events); NumMachines sizes cache-capacity context the same
	// way the in-process island model reports it.
	PopulationSize int
	NumMachines    int
	// Observer, when non-nil, receives the authoritative full-ring
	// telemetry stream: per tick, every ring edge's migration event in
	// from-ascending order, then one aggregated "islands" stats event —
	// bit-identical to the in-process island model's sequence.
	Observer obs.Observer
	// Board, when non-nil, receives wire byte, round-trip, and stall
	// telemetry.
	Board *obs.DistBoard
}

// Coordinator drives worker shards through handshake, runs, front and
// snapshot collection, and shutdown. During a run it routes boundary
// migrations: each worker's outbound frames are read by a per-worker
// reader goroutine and forwarded through a one-deep queue to the
// destination worker — the queue plus socket buffering gives every
// boundary edge at least the one-delivery capacity the in-process
// mailboxes have, preserving the deadlock-freedom argument of the
// logical-clock schedule (DESIGN.md §15). Not safe for concurrent use.
type Coordinator struct {
	cfg    CoordinatorConfig
	conns  []*Conn
	lo, hi []int
	gen    int
	// aggBase mirrors Islands.aggBase: cross-island counter sums at the
	// last emitted stats event, seeded from the handshake baselines.
	aggBase nsga2.ShardTick
	failed  error
}

// NewCoordinator performs the handshake over the given worker
// connections (in worker order) and verifies the shard geometry:
// contiguous ranges covering [0, Islands) with equal generation
// counters.
func NewCoordinator(conns []*Conn, cfg CoordinatorConfig) (*Coordinator, error) {
	switch {
	case len(conns) < 1:
		return nil, fmt.Errorf("dist: no worker connections")
	case cfg.Islands < len(conns):
		return nil, fmt.Errorf("dist: %d islands across %d workers", cfg.Islands, len(conns))
	case cfg.MigrationInterval < 1:
		return nil, fmt.Errorf("dist: migration interval %d, want >= 1", cfg.MigrationInterval)
	case cfg.Migrants < 0:
		return nil, fmt.Errorf("dist: migrants %d, want >= 0", cfg.Migrants)
	}
	c := &Coordinator{cfg: cfg, conns: conns}
	for w, conn := range conns {
		payload, err := conn.expectReply(MsgHello)
		if err != nil {
			return nil, fmt.Errorf("dist: worker %d handshake: %w", w, err)
		}
		cfg.Board.AddRoundtrip()
		m, err := DecodeHello(payload)
		if err != nil {
			return nil, fmt.Errorf("dist: worker %d handshake: %w", w, err)
		}
		wantLo, wantHi := ShardRange(cfg.Islands, len(conns), w)
		switch {
		case int(m.Worker) != w || int(m.Workers) != len(conns) || int(m.Islands) != cfg.Islands:
			return nil, fmt.Errorf("dist: worker %d announced worker %d/%d over %d islands",
				w, m.Worker, m.Workers, m.Islands)
		case int(m.Lo) != wantLo || int(m.Hi) != wantHi:
			return nil, fmt.Errorf("dist: worker %d announced shard [%d, %d), want [%d, %d)",
				w, m.Lo, m.Hi, wantLo, wantHi)
		case w > 0 && int(m.Generation) != c.gen:
			return nil, fmt.Errorf("dist: worker %d at generation %d, worker 0 at %d", w, m.Generation, c.gen)
		}
		if w == 0 {
			c.gen = int(m.Generation)
		}
		c.lo = append(c.lo, int(m.Lo))
		c.hi = append(c.hi, int(m.Hi))
		for _, b := range m.Baselines {
			c.aggBase.Add(tickFromWire(b))
		}
	}
	return c, nil
}

// Generation returns the number of completed generations.
func (c *Coordinator) Generation() int { return c.gen }

// owner returns the worker whose shard holds the given global island.
func (c *Coordinator) owner(island int) int {
	for w := range c.lo {
		if island >= c.lo[w] && island < c.hi[w] {
			return w
		}
	}
	return -1
}

// fail latches the coordinator's first fatal error and tears the
// connections down so every blocked reader and writer unblocks.
func (c *Coordinator) fail(err error) error {
	if c.failed == nil {
		c.failed = err
	}
	for _, conn := range c.conns {
		conn.Close() //nolint:errcheck // teardown
	}
	return c.failed
}

// Run advances the whole ring by the given number of generations:
// it starts every worker, routes boundary migrations between them until
// all reports arrive, then emits the full-ring telemetry for the run.
func (c *Coordinator) Run(generations int) error {
	if c.failed != nil {
		return c.failed
	}
	if generations <= 0 {
		return nil
	}
	nw := len(c.conns)
	firstTick, nticks := nsga2.RingTicks(c.gen, c.gen+generations,
		c.cfg.MigrationInterval, c.cfg.Migrants, c.cfg.Islands)
	for w, conn := range c.conns {
		if err := conn.SendRun(&WireRun{Generations: int64(generations)}); err != nil {
			return c.fail(fmt.Errorf("dist: worker %d: %w", w, err))
		}
	}

	reports := make([]*WireReport, nw)
	rerrs := make([]error, nw)
	werrs := make([]error, nw)
	fwd := make([]chan *WireElites, nw)
	for w := range fwd {
		fwd[w] = make(chan *WireElites, 1)
	}
	var tearOnce sync.Once
	tear := func() {
		for _, conn := range c.conns {
			conn.Close() //nolint:errcheck // teardown
		}
	}

	var writers sync.WaitGroup
	for w := 0; w < nw; w++ {
		writers.Add(1)
		go func(w int, conn *Conn) {
			defer writers.Done()
			// After a send failure the writer keeps draining so no reader
			// blocks on a full queue during teardown.
			for m := range fwd[w] {
				if werrs[w] != nil {
					continue
				}
				if err := conn.SendElites(m); err != nil {
					werrs[w] = fmt.Errorf("dist: forward to worker %d: %w", w, err)
					tearOnce.Do(tear)
				}
			}
		}(w, c.conns[w])
	}

	var readers sync.WaitGroup
	for w := 0; w < nw; w++ {
		readers.Add(1)
		go func(w int, conn *Conn) {
			defer readers.Done()
			for {
				typ, payload, err := conn.Next()
				if err != nil {
					rerrs[w] = fmt.Errorf("dist: worker %d: %w", w, err)
					tearOnce.Do(tear)
					return
				}
				switch typ {
				case MsgElites:
					m, err := DecodeElites(payload)
					if err != nil {
						rerrs[w] = fmt.Errorf("dist: worker %d: %w", w, err)
						tearOnce.Do(tear)
						return
					}
					from := int(m.From)
					if from+1 != c.hi[w] {
						rerrs[w] = fmt.Errorf("dist: worker %d sent elites from island %d, boundary is %d",
							w, from, c.hi[w]-1)
						tearOnce.Do(tear)
						return
					}
					dest := c.owner((from + 1) % c.cfg.Islands)
					c.cfg.Board.AddRoundtrip()
					fwd[dest] <- m
				case MsgReport:
					m, err := DecodeReport(payload)
					if err != nil {
						rerrs[w] = fmt.Errorf("dist: worker %d: %w", w, err)
						tearOnce.Do(tear)
					} else {
						reports[w] = m
					}
					return
				case MsgAbort:
					m, err := DecodeAbort(payload)
					if err != nil {
						rerrs[w] = fmt.Errorf("dist: worker %d: %w", w, err)
					} else {
						rerrs[w] = fmt.Errorf("dist: worker %d aborted: %s", w, m.Msg)
					}
					tearOnce.Do(tear)
					return
				case MsgHello, MsgRestore, MsgRestored, MsgRun, MsgFrontReq, MsgFront,
					MsgSnapshotReq, MsgSnapshot, MsgExit:
					rerrs[w] = &WireError{Frame: conn.dec.Frame(), Msg: typ,
						Err: fmt.Errorf("from running worker %d: %w", w, ErrUnexpectedMessage)}
					tearOnce.Do(tear)
					return
				}
			}
		}(w, c.conns[w])
	}

	readers.Wait()
	for w := range fwd {
		close(fwd[w])
	}
	writers.Wait()

	for w := 0; w < nw; w++ {
		if rerrs[w] != nil {
			return c.fail(rerrs[w])
		}
	}
	for w := 0; w < nw; w++ {
		if werrs[w] != nil {
			return c.fail(werrs[w])
		}
	}
	for w, rep := range reports {
		if len(rep.Ticks) != nticks {
			return c.fail(fmt.Errorf("dist: worker %d reported %d ticks, want %d", w, len(rep.Ticks), nticks))
		}
		for t := range rep.Ticks {
			if len(rep.Ticks[t]) != c.hi[w]-c.lo[w] {
				return c.fail(fmt.Errorf("dist: worker %d tick %d has %d islands, want %d",
					w, t, len(rep.Ticks[t]), c.hi[w]-c.lo[w]))
			}
		}
		c.cfg.Board.ObserveStall(w, float64(rep.StallNanos)/1e9)
	}
	c.gen += generations

	if c.cfg.Observer == nil {
		return nil
	}
	// Emit per tick: every ring edge's migration event in from-ascending
	// global order, then the aggregated shard stats — the exact sequence
	// the in-process island model serializes.
	for t := 0; t < nticks; t++ {
		gen := firstTick + t*c.cfg.MigrationInterval
		var agg nsga2.ShardTick
		for w := 0; w < nw; w++ {
			for li := 0; li < c.hi[w]-c.lo[w]; li++ {
				tick := tickFromWire(reports[w].Ticks[t][li])
				gi := c.lo[w] + li
				c.cfg.Observer.ObserveMigration(obs.MigrationEvent{
					Generation: gen,
					From:       gi,
					To:         (gi + 1) % c.cfg.Islands,
					Count:      tick.Migrants,
				})
				agg.Add(tick)
			}
		}
		c.cfg.Observer.ObserveGeneration(nsga2.ShardStatsEvent(
			gen, c.cfg.PopulationSize*c.cfg.Islands, c.cfg.NumMachines, agg, c.aggBase))
		c.aggBase = agg
	}
	return nil
}

// Front collects every worker's per-island rank-1 fronts and returns
// their union in global island order — the same union the in-process
// Islands.ParetoFront merges (apply nsga2.MergeFronts to finish).
func (c *Coordinator) Front() ([]nsga2.Individual, error) {
	if c.failed != nil {
		return nil, c.failed
	}
	var union []nsga2.Individual
	for w, conn := range c.conns {
		if err := conn.SendControl(MsgFrontReq); err != nil {
			return nil, c.fail(fmt.Errorf("dist: worker %d: %w", w, err))
		}
		payload, err := conn.expectReply(MsgFront)
		if err != nil {
			return nil, c.fail(fmt.Errorf("dist: worker %d: %w", w, err))
		}
		c.cfg.Board.AddRoundtrip()
		m, err := DecodeFront(payload)
		if err != nil {
			return nil, c.fail(fmt.Errorf("dist: worker %d: %w", w, err))
		}
		if len(m.Fronts) != c.hi[w]-c.lo[w] {
			return nil, c.fail(fmt.Errorf("dist: worker %d sent %d fronts, want %d",
				w, len(m.Fronts), c.hi[w]-c.lo[w]))
		}
		union = append(union, frontFromWire(m)...)
	}
	return union, nil
}

// Snapshot collects every worker's snapshot segments into one
// IslandsSnapshot, interchangeable with the in-process
// Islands.Snapshot.
func (c *Coordinator) Snapshot() (*nsga2.IslandsSnapshot, error) {
	if c.failed != nil {
		return nil, c.failed
	}
	snap := &nsga2.IslandsSnapshot{Generation: c.gen}
	for w, conn := range c.conns {
		if err := conn.SendControl(MsgSnapshotReq); err != nil {
			return nil, c.fail(fmt.Errorf("dist: worker %d: %w", w, err))
		}
		payload, err := conn.expectReply(MsgSnapshot)
		if err != nil {
			return nil, c.fail(fmt.Errorf("dist: worker %d: %w", w, err))
		}
		c.cfg.Board.AddRoundtrip()
		m, err := DecodeSnapshot(payload)
		if err != nil {
			return nil, c.fail(fmt.Errorf("dist: worker %d: %w", w, err))
		}
		if int(m.Generation) != c.gen || len(m.Segments) != c.hi[w]-c.lo[w] {
			return nil, c.fail(fmt.Errorf("dist: worker %d snapshot at generation %d with %d segments, want %d at %d",
				w, m.Generation, len(m.Segments), c.hi[w]-c.lo[w], c.gen))
		}
		snap.Islands = append(snap.Islands, segmentsFromWire(m.Segments)...)
	}
	return snap, nil
}

// Restore pushes an islands snapshot out to the workers (each receives
// its shard's segments), resyncing the telemetry baselines — the
// cross-process counterpart of Islands.Restore.
func (c *Coordinator) Restore(snap *nsga2.IslandsSnapshot) error {
	if c.failed != nil {
		return c.failed
	}
	if snap == nil || len(snap.Islands) != c.cfg.Islands {
		return fmt.Errorf("dist: restore needs %d island snapshots", c.cfg.Islands)
	}
	var base nsga2.ShardTick
	for w, conn := range c.conns {
		if err := conn.SendRestore(&WireRestore{
			Generation: int64(snap.Generation),
			Lo:         int32(c.lo[w]),
			Segments:   segmentsToWire(snap.Islands[c.lo[w]:c.hi[w]]),
		}); err != nil {
			return c.fail(fmt.Errorf("dist: worker %d: %w", w, err))
		}
		payload, err := conn.expectReply(MsgRestored)
		if err != nil {
			return c.fail(fmt.Errorf("dist: worker %d: %w", w, err))
		}
		c.cfg.Board.AddRoundtrip()
		m, err := DecodeRestored(payload)
		if err != nil {
			return c.fail(fmt.Errorf("dist: worker %d: %w", w, err))
		}
		if len(m.Baselines) != c.hi[w]-c.lo[w] {
			return c.fail(fmt.Errorf("dist: worker %d acknowledged %d islands, want %d",
				w, len(m.Baselines), c.hi[w]-c.lo[w]))
		}
		for _, b := range m.Baselines {
			base.Add(tickFromWire(b))
		}
	}
	c.gen = snap.Generation
	c.aggBase = base
	return nil
}

// Close asks every worker to exit (best effort) and closes the
// connections.
func (c *Coordinator) Close() error {
	var first error
	for _, conn := range c.conns {
		if err := conn.SendControl(MsgExit); err != nil && first == nil && c.failed == nil {
			first = err
		}
	}
	for _, conn := range c.conns {
		if err := conn.Close(); err != nil && first == nil && c.failed == nil {
			first = err
		}
	}
	return first
}
