package dist

import (
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tradeoff/internal/data"
	"tradeoff/internal/experiments"
	"tradeoff/internal/moea"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/obs"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
	"tradeoff/internal/workload"
)

// buildEval constructs the shared test problem: dataset 0 is the
// synthetic system, 1-3 the paper's data sets, each with an n-task
// trace from a fixed generation seed. Worker processes rebuild the same
// evaluator from the same numbers (see proc_test.go).
func buildEval(dataset, n int) (*sched.Evaluator, error) {
	sys := data.RealSystem()
	if dataset > 0 {
		ds, err := experiments.ByNumber(dataset, 21)
		if err != nil {
			return nil, err
		}
		sys = ds.System
	}
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: n, Window: 900}, rng.New(21))
	if err != nil {
		return nil, err
	}
	return sched.NewEvaluator(sys, tr)
}

func newEval(t testing.TB, n int) *sched.Evaluator {
	t.Helper()
	e, err := buildEval(0, n)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func distCfg(islands, interval, migrants, pop int) nsga2.IslandConfig {
	return nsga2.IslandConfig{
		Islands:           islands,
		MigrationInterval: interval,
		Migrants:          migrants,
		Async:             true,
		Engine:            nsga2.Config{PopulationSize: pop, Workers: 2},
	}
}

// eventLog records a telemetry stream for bit-exact comparison. All
// emitters here serialize events from a single goroutine.
type eventLog struct {
	gens []obs.GenerationStats
	migs []obs.MigrationEvent
}

func (l *eventLog) ObserveGeneration(g obs.GenerationStats) { l.gens = append(l.gens, g) }
func (l *eventLog) ObserveMigration(m obs.MigrationEvent)   { l.migs = append(l.migs, m) }
func (l *eventLog) ObserveRun(obs.RunEvent)                 {}

// cluster is an in-process distributed run: workers served over
// net.Pipe, which has zero buffering — the harshest transport for the
// deadlock-freedom argument.
type cluster struct {
	coord *Coordinator
	wg    sync.WaitGroup
	errs  []error
}

func startCluster(t testing.TB, e *sched.Evaluator, cfg nsga2.IslandConfig, seed uint64,
	workers int, o obs.Observer, board *obs.DistBoard) *cluster {
	t.Helper()
	c := &cluster{errs: make([]error, workers)}
	conns := make([]*Conn, workers)
	for w := 0; w < workers; w++ {
		parent, child := net.Pipe()
		conns[w] = NewConn(parent, board.AddBytes)
		c.wg.Add(1)
		go func(w int, child net.Conn) {
			defer c.wg.Done()
			c.errs[w] = ServeWorker(child, WorkerEnv{
				Worker: w, Workers: workers, Eval: e, Config: cfg, Seed: seed,
			})
		}(w, child)
	}
	coord, err := NewCoordinator(conns, CoordinatorConfig{
		Islands:           cfg.Islands,
		MigrationInterval: cfg.MigrationInterval,
		Migrants:          cfg.Migrants,
		PopulationSize:    cfg.Engine.PopulationSize,
		NumMachines:       e.NumMachines(),
		Observer:          o,
		Board:             board,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.coord = coord
	return c
}

// stop shuts the cluster down and fails the test on any worker error.
func (c *cluster) stop(t testing.TB) {
	t.Helper()
	if err := c.coord.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	c.wg.Wait()
	for w, err := range c.errs {
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
		}
	}
}

func sameIndividuals(a, b []nsga2.Individual) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Objectives, b[i].Objectives) ||
			!reflect.DeepEqual(a[i].Alloc.Machine, b[i].Alloc.Machine) ||
			!reflect.DeepEqual(a[i].Alloc.Order, b[i].Alloc.Order) {
			return false
		}
	}
	return true
}

// TestDistributedMatchesInProcess: for every worker count, a
// distributed run must be bit-identical to the in-process async run —
// merged front (with genotypes), migration-event sequence, and
// aggregated islands stats — across multiple Run calls.
func TestDistributedMatchesInProcess(t *testing.T) {
	e := newEval(t, 40)
	cfg := distCfg(4, 5, 2, 8)
	const seed = 99
	space := moea.UtilityEnergySpace()

	ref, err := nsga2.NewIslands(e, cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	refLog := &eventLog{}
	ref.SetObserver(refLog)
	ref.Run(7)
	ref.Run(6)
	refFront := ref.ParetoFront()

	for _, workers := range []int{1, 2, 3, 4} {
		distLog := &eventLog{}
		cl := startCluster(t, e, cfg, seed, workers, distLog, nil)
		if err := cl.coord.Run(7); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := cl.coord.Run(6); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := cl.coord.Generation(); got != 13 {
			t.Fatalf("workers=%d: generation %d, want 13", workers, got)
		}
		union, err := cl.coord.Front()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		front := nsga2.MergeFronts(space, union)
		if !sameIndividuals(front, refFront) {
			t.Errorf("workers=%d: merged front differs from in-process run", workers)
		}
		if !reflect.DeepEqual(distLog.migs, refLog.migs) {
			t.Errorf("workers=%d: migration events differ\n got %+v\nwant %+v", workers, distLog.migs, refLog.migs)
		}
		if !reflect.DeepEqual(distLog.gens, refLog.gens) {
			t.Errorf("workers=%d: islands stats differ\n got %+v\nwant %+v", workers, distLog.gens, refLog.gens)
		}
		cl.stop(t)
	}
}

// TestDistributedSnapshotHandoff proves resume across the process
// boundary in both directions: distributed → in-process and
// in-process → distributed must both land exactly where the unbroken
// in-process run lands.
func TestDistributedSnapshotHandoff(t *testing.T) {
	e := newEval(t, 40)
	cfg := distCfg(4, 5, 2, 8)
	const seed, pause, total = 7, 7, 18

	full, err := nsga2.NewIslands(e, cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	full.Run(total)
	wantFront := full.ParetoFront()

	// Distributed start, in-process finish.
	cl := startCluster(t, e, cfg, seed, 2, nil, nil)
	if err := cl.coord.Run(pause); err != nil {
		t.Fatal(err)
	}
	snap, err := cl.coord.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cl.stop(t)
	if snap.Generation != pause {
		t.Fatalf("snapshot at generation %d, want %d", snap.Generation, pause)
	}
	resumed, err := nsga2.NewIslands(e, cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	resumed.Run(total - pause)
	if !sameIndividuals(resumed.ParetoFront(), wantFront) {
		t.Error("distributed → in-process resume diverged from the unbroken run")
	}

	// In-process start, distributed finish.
	head, err := nsga2.NewIslands(e, cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	head.Run(pause)
	cl = startCluster(t, e, cfg, 1, 3, nil, nil)
	if err := cl.coord.Restore(head.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := cl.coord.Run(total - pause); err != nil {
		t.Fatal(err)
	}
	union, err := cl.coord.Front()
	if err != nil {
		t.Fatal(err)
	}
	cl.stop(t)
	front := nsga2.MergeFronts(moea.UtilityEnergySpace(), union)
	if !sameIndividuals(front, wantFront) {
		t.Error("in-process → distributed resume diverged from the unbroken run")
	}
}

// TestDistributedRestoredTelemetry: a restored distributed run must
// resync its stats baselines, emitting the same tail of events an
// in-process run restored at the same point emits.
func TestDistributedRestoredTelemetry(t *testing.T) {
	e := newEval(t, 30)
	cfg := distCfg(3, 4, 1, 6)
	const seed, pause, total = 5, 6, 14

	head, err := nsga2.NewIslands(e, cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	head.Run(pause)
	snap := head.Snapshot()

	refResumed, err := nsga2.NewIslands(e, cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := refResumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	refLog := &eventLog{}
	refResumed.SetObserver(refLog)
	refResumed.Run(total - pause)

	// Same construction seed as the reference: engine caches survive
	// Restore, so post-resume cache counters depend on the pre-restore
	// initial populations (which a real run derives from the same -seed).
	distLog := &eventLog{}
	cl := startCluster(t, e, cfg, 2, 2, distLog, nil)
	if err := cl.coord.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := cl.coord.Run(total - pause); err != nil {
		t.Fatal(err)
	}
	cl.stop(t)
	if !reflect.DeepEqual(distLog.migs, refLog.migs) {
		t.Errorf("migration events differ\n got %+v\nwant %+v", distLog.migs, refLog.migs)
	}
	if !reflect.DeepEqual(distLog.gens, refLog.gens) {
		t.Errorf("islands stats differ\n got %+v\nwant %+v", distLog.gens, refLog.gens)
	}
}

// TestDistBoardCounters: the wire observability hooks must see traffic.
func TestDistBoardCounters(t *testing.T) {
	e := newEval(t, 30)
	cfg := distCfg(4, 3, 2, 6)
	board := obs.NewDistBoard(obs.NewRegistry(), 2)
	cl := startCluster(t, e, cfg, 11, 2, nil, board)
	if err := cl.coord.Run(6); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.coord.Front(); err != nil {
		t.Fatal(err)
	}
	cl.stop(t)
	if board.WireBytes() == 0 {
		t.Error("no wire bytes counted")
	}
	// 2 hellos + 2 migration ticks × 2 boundary edges + 2 front replies.
	if got := board.Roundtrips(); got < 8 {
		t.Errorf("roundtrips %d, want >= 8", got)
	}
}

// TestDistHandshakeValidation: a geometry mismatch between coordinator
// and workers must fail the handshake.
func TestDistHandshakeValidation(t *testing.T) {
	e := newEval(t, 30)
	cfg := distCfg(4, 5, 2, 6)
	conns := make([]*Conn, 2)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		parent, child := net.Pipe()
		conns[w] = NewConn(parent, nil)
		wg.Add(1)
		go func(w int, child net.Conn) {
			defer wg.Done()
			ServeWorker(child, WorkerEnv{Worker: w, Workers: 2, Eval: e, Config: cfg, Seed: 1}) //nolint:errcheck // abandoned by the failing handshake
		}(w, child)
	}
	_, err := NewCoordinator(conns, CoordinatorConfig{
		Islands: 5, MigrationInterval: 5, Migrants: 2, PopulationSize: 6, NumMachines: e.NumMachines(),
	})
	if err == nil || !strings.Contains(err.Error(), "islands") {
		t.Fatalf("err %v, want island-count mismatch", err)
	}
	for _, c := range conns {
		c.Close() //nolint:errcheck // teardown
	}
	wg.Wait()
}

// TestDistWorkerAbortSurfaces: a worker-side failure travels to the
// coordinator as a structured abort carrying the worker's message.
func TestDistWorkerAbortSurfaces(t *testing.T) {
	e := newEval(t, 30)
	parent, child := net.Pipe()
	done := make(chan error, 1)
	go func() {
		// 1 island across 2 workers cannot shard.
		done <- ServeWorker(child, WorkerEnv{Worker: 0, Workers: 2, Eval: e, Config: distCfg(1, 5, 2, 6), Seed: 1})
	}()
	_, err := NewCoordinator([]*Conn{NewConn(parent, nil)}, CoordinatorConfig{
		Islands: 1, MigrationInterval: 5, Migrants: 2, PopulationSize: 6, NumMachines: e.NumMachines(),
	})
	if err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("err %v, want worker abort", err)
	}
	if werr := <-done; werr == nil {
		t.Fatal("worker returned nil, want shard error")
	}
	parent.Close() //nolint:errcheck // teardown
}
