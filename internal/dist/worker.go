package dist

import (
	"fmt"
	"io"

	"tradeoff/internal/nsga2"
	"tradeoff/internal/obs"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// ShardRange returns the contiguous range [lo, hi) of global island
// indices worker w owns when an islands-island ring is split across
// workers processes: the same balanced split for every caller, so the
// coordinator and workers agree on the partition without exchanging it.
func ShardRange(islands, workers, worker int) (lo, hi int) {
	return worker * islands / workers, (worker + 1) * islands / workers
}

// WorkerEnv is everything a worker process needs to build and serve its
// shard. The evaluator, configuration, and seed must be identical
// across the parent and every worker — each worker re-derives its
// islands' rng streams from the shared seed (NewIslandShard splits once
// per ring position), which is what makes the distributed run
// bit-identical to the in-process one.
type WorkerEnv struct {
	// Worker is this worker's index in [0, Workers).
	Worker int
	// Workers is the total worker count.
	Workers int
	// Eval is the worker's own evaluator over the shared problem input.
	Eval *sched.Evaluator
	// Config is the full-ring island configuration; Islands must be
	// explicit (the worker refuses to guess a default that the parent
	// might fill differently).
	Config nsga2.IslandConfig
	// Seed is the run's shared root rng seed.
	Seed uint64
	// Observer, when non-nil, receives this worker's own migration
	// events (worker-local trace); the parent emits the authoritative
	// full-ring telemetry stream.
	Observer obs.Observer
	// Clock, when non-nil, times boundary-edge stalls for the report.
	Clock obs.Clock
}

// nowNanos reads the optional clock.
func nowNanos(c obs.Clock) int64 {
	if c == nil {
		return 0
	}
	return c()
}

// wireInEdge is the shard's inbound boundary Mailbox: island Lo's
// predecessor edge, read straight off the worker socket. During a run
// only MsgElites frames arrive, in tick order, so the edge owns the
// connection's read side until the run ends.
type wireInEdge struct {
	conn       *Conn
	clock      obs.Clock
	expectFrom int32
	tick       int32
	stall      int64
}

//detlint:hotpath
func (e *wireInEdge) Recv() ([]nsga2.Individual, error) {
	t0 := nowNanos(e.clock)
	typ, payload, err := e.conn.Next()
	if err == io.EOF {
		return nil, frameErr(0, MsgElites, "connection closed mid-run: %w", ErrTruncated)
	}
	if err != nil {
		return nil, err
	}
	if typ != MsgElites {
		return nil, frameErr(e.conn.dec.Frame(), typ, "awaiting elites mid-run: %w", ErrUnexpectedMessage)
	}
	m, err := DecodeElites(payload)
	if err != nil {
		return nil, err
	}
	if m.From != e.expectFrom || m.Tick != e.tick {
		return nil, badPayload(MsgElites, "tick %d from island %d, want tick %d from island %d",
			m.Tick, m.From, e.tick, e.expectFrom)
	}
	e.tick++
	e.stall += nowNanos(e.clock) - t0
	return fromWireElites(m), nil
}

func (e *wireInEdge) Send([]nsga2.Individual) error {
	return fmt.Errorf("dist: inbound boundary edge cannot send")
}

func (e *wireInEdge) Depth() int { return 0 }

// wireOutEdge is the shard's outbound boundary Mailbox: island Hi-1's
// successor edge, written straight onto the worker socket (the
// coordinator forwards to the owning worker).
type wireOutEdge struct {
	conn  *Conn
	clock obs.Clock
	from  int32
	tick  int32
	stall int64
}

//detlint:hotpath
func (e *wireOutEdge) Send(elites []nsga2.Individual) error {
	t0 := nowNanos(e.clock)
	m := toWireElites(int(e.tick), int(e.from), elites)
	err := e.conn.SendElites(&m)
	e.tick++
	e.stall += nowNanos(e.clock) - t0
	return err
}

func (e *wireOutEdge) Recv() ([]nsga2.Individual, error) {
	return nil, fmt.Errorf("dist: outbound boundary edge cannot receive")
}

func (e *wireOutEdge) Depth() int { return 0 }

// ServeWorker builds the worker's island shard, performs the handshake,
// and serves the coordinator's control loop until MsgExit or stream
// end. A worker-side failure is reported to the parent as MsgAbort
// (best effort) and returned.
func ServeWorker(rw io.ReadWriteCloser, env WorkerEnv) error {
	conn := NewConn(rw, nil)
	err := serveWorker(conn, env)
	if err != nil {
		conn.SendAbort(&WireAbort{Msg: err.Error()}) //nolint:errcheck // best-effort report on a possibly dead socket
	}
	return err
}

func serveWorker(conn *Conn, env WorkerEnv) error {
	cfg := env.Config
	switch {
	case env.Workers < 1 || env.Worker < 0 || env.Worker >= env.Workers:
		return fmt.Errorf("dist: worker %d of %d", env.Worker, env.Workers)
	case env.Eval == nil:
		return fmt.Errorf("dist: nil evaluator")
	case cfg.Islands < 1:
		return fmt.Errorf("dist: worker needs an explicit island count")
	case cfg.Islands < env.Workers:
		return fmt.Errorf("dist: %d islands across %d workers", cfg.Islands, env.Workers)
	}
	lo, hi := ShardRange(cfg.Islands, env.Workers, env.Worker)
	shard, err := nsga2.NewIslandShard(env.Eval, cfg, rng.New(env.Seed), lo, hi)
	if err != nil {
		return err
	}
	if err := conn.SendHello(&WireHello{
		Version:    WireVersion,
		Worker:     int32(env.Worker),
		Workers:    int32(env.Workers),
		Islands:    int32(cfg.Islands),
		Lo:         int32(lo),
		Hi:         int32(hi),
		Generation: int64(shard.Generation()),
		Baselines:  ticksToWire(shard.Baselines()),
	}); err != nil {
		return err
	}
	for {
		typ, payload, err := conn.Next()
		if err == io.EOF {
			// The parent went away without MsgExit (crash or kill); there
			// is nobody left to serve.
			return nil
		}
		if err != nil {
			return err
		}
		switch typ {
		case MsgRestore:
			m, err := DecodeRestore(payload)
			if err != nil {
				return err
			}
			if int(m.Lo) != lo || len(m.Segments) != hi-lo {
				return badPayload(MsgRestore, "segments [%d, %d) for shard [%d, %d)",
					m.Lo, int(m.Lo)+len(m.Segments), lo, hi)
			}
			if err := shard.Restore(int(m.Generation), segmentsFromWire(m.Segments)); err != nil {
				return err
			}
			if err := conn.SendRestored(&WireRestored{Baselines: ticksToWire(shard.Baselines())}); err != nil {
				return err
			}
		case MsgRun:
			m, err := DecodeRun(payload)
			if err != nil {
				return err
			}
			if err := runShard(conn, env, shard, int(m.Generations)); err != nil {
				return err
			}
		case MsgFrontReq:
			if err := DecodeControl(typ, payload); err != nil {
				return err
			}
			front := frontToWire(shard.Fronts())
			if err := conn.SendFront(&front); err != nil {
				return err
			}
		case MsgSnapshotReq:
			if err := DecodeControl(typ, payload); err != nil {
				return err
			}
			if err := conn.SendSnapshot(&WireSnapshot{
				Generation: int64(shard.Generation()),
				Segments:   segmentsToWire(shard.Snapshots()),
			}); err != nil {
				return err
			}
		case MsgExit:
			return DecodeControl(typ, payload)
		case MsgHello, MsgRestored, MsgElites, MsgReport, MsgFront, MsgSnapshot, MsgAbort:
			return &WireError{Frame: conn.dec.Frame(), Msg: typ,
				Err: fmt.Errorf("in worker control state: %w", ErrUnexpectedMessage)}
		}
	}
}

// runShard executes one MsgRun: it runs the shard with wire-backed
// boundary edges, emits the worker-local migration events, and reports
// the per-tick counter shards and stall time back to the parent.
func runShard(conn *Conn, env WorkerEnv, shard *nsga2.IslandShard, generations int) error {
	cfg := env.Config
	k := cfg.Islands
	lo, hi := shard.Lo(), shard.Hi()
	start := shard.Generation()
	firstTick, nticks := nsga2.RingTicks(start, start+generations, cfg.MigrationInterval, cfg.Migrants, k)
	var in, out nsga2.Mailbox
	var inE *wireInEdge
	var outE *wireOutEdge
	if nticks > 0 && !(lo == 0 && hi == k) {
		inE = &wireInEdge{conn: conn, clock: env.Clock, expectFrom: int32((lo - 1 + k) % k)}
		outE = &wireOutEdge{conn: conn, clock: env.Clock, from: int32(hi - 1)}
		in, out = inE, outE
	}
	recs, err := shard.Run(generations, in, out)
	if err != nil {
		return err
	}
	if env.Observer != nil {
		for t := 0; t < nticks; t++ {
			gen := firstTick + t*cfg.MigrationInterval
			for li := 0; li < hi-lo; li++ {
				env.Observer.ObserveMigration(obs.MigrationEvent{
					Generation: gen,
					From:       lo + li,
					To:         (lo + li + 1) % k,
					Count:      recs[li][t].Migrants,
				})
			}
		}
	}
	rep := &WireReport{Ticks: make([][]WireShardTick, nticks)}
	for t := 0; t < nticks; t++ {
		rep.Ticks[t] = make([]WireShardTick, hi-lo)
		for li := 0; li < hi-lo; li++ {
			rep.Ticks[t][li] = tickToWire(recs[li][t])
		}
	}
	if inE != nil {
		rep.StallNanos = inE.stall + outE.stall
	}
	return conn.SendReport(rep)
}
