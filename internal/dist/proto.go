package dist

import (
	"fmt"
	"math"
)

// Wire message schemas. Every Wire* struct has an encode side (append*
// payload builders under the Encoder entry points) and a decode side
// (Decode* functions over a frame payload); the detlint distwire
// analyzer verifies each field is consumed by both.

// WireIndividual is one elite chromosome on the wire: its genotype as
// uint32 images of the int32 genes, plus its objective vector. Inject
// re-evaluates migrants on arrival, so objectives travel only for
// cross-checks and tooling.
type WireIndividual struct {
	Machine    []int32
	Order      []int32
	Objectives []float64
}

// WireElites is one boundary ring edge's migration payload at one
// logical tick.
type WireElites struct {
	// Tick is the 0-based logical migration tick index within the run.
	Tick int32
	// From is the sending global island index; the ring edge determines
	// the destination island (From+1 modulo the ring size).
	From int32
	Inds []WireIndividual
}

// WireShardTick is one island's counter shard at one logical tick —
// the flat wire image of nsga2.ShardTick.
type WireShardTick struct {
	FullEvals, DeltaEvals                                       uint64
	MachinesSimulated, MachinesInherited, TypedTasks, TypedRuns uint64
	CacheHits, CacheMisses, CacheEvictions                      uint64
	CacheSize, CacheCapacity                                    int64
	MachineCacheHits, MachineCacheMisses, MachineCacheEvictions uint64
	MachineCacheSize, MachineCacheCapacity                      int64
	ArenaInUse, ArenaSlots                                      int64
	Migrants                                                    int64
}

// WireHello is the worker handshake: version, shard geometry, the
// islands-level generation counter, and per-island telemetry baselines
// for the coordinator's aggregated diffs.
type WireHello struct {
	Version    int32
	Worker     int32
	Workers    int32
	Islands    int32
	Lo, Hi     int32
	Generation int64
	Baselines  []WireShardTick
}

// WireGenome is one chromosome genotype inside a snapshot segment.
type WireGenome struct {
	Machine []int32
	Order   []int32
}

// WireSegment is one island's engine snapshot: generation counter, rng
// state, and the full population genotype.
type WireSegment struct {
	Generation int64
	RngS       uint64
	RngInc     uint64
	Genomes    []WireGenome
}

// WireRestore carries snapshot segments to a worker for a
// cross-process resume: the islands-level generation plus one segment
// per shard island in global order starting at Lo.
type WireRestore struct {
	Generation int64
	Lo         int32
	Segments   []WireSegment
}

// WireRestored acknowledges a restore with post-restore baselines.
type WireRestored struct {
	Baselines []WireShardTick
}

// WireRun starts a run.
type WireRun struct {
	Generations int64
}

// WireReport ends a worker's run: recorded shards per tick per shard
// island (global order), plus the wall time the worker spent blocked on
// boundary-edge wire waits.
type WireReport struct {
	// Ticks[t][i] is shard island i's counters at logical tick t.
	Ticks [][]WireShardTick
	// StallNanos is the worker's total boundary-edge wait time.
	StallNanos int64
}

// WireFront carries each shard island's rank-1 front, in global island
// order.
type WireFront struct {
	Fronts [][]WireIndividual
}

// WireSnapshot carries a worker's snapshot segments back to the
// parent, with the shard's islands-level generation counter.
type WireSnapshot struct {
	Generation int64
	Segments   []WireSegment
}

// WireAbort reports a fatal worker-side error.
type WireAbort struct {
	Msg string
}

// badPayload builds the structured decode failure for impossible
// content.
func badPayload(t MsgType, format string, args ...any) error {
	return &WireError{Msg: t, Err: fmt.Errorf(format+": %w", append(args, ErrBadPayload)...)}
}

// appendIndividual encodes one chromosome.
func appendIndividual(b []byte, ind *WireIndividual) []byte {
	b = appendU32(b, uint32(len(ind.Machine)))
	for _, v := range ind.Machine {
		b = appendU32(b, uint32(v))
	}
	b = appendU32(b, uint32(len(ind.Order)))
	for _, v := range ind.Order {
		b = appendU32(b, uint32(v))
	}
	b = appendU32(b, uint32(len(ind.Objectives)))
	for _, v := range ind.Objectives {
		b = appendU64(b, math.Float64bits(v))
	}
	return b
}

// readInt32s decodes a u32-counted run of int32 values.
func readInt32s(r *wireReader) []int32 {
	n := int(r.u32())
	if r.short || n < 0 || n > r.remaining()/4 {
		r.short = true
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.u32())
	}
	return out
}

// readIndividual decodes one chromosome.
func readIndividual(r *wireReader) WireIndividual {
	var ind WireIndividual
	ind.Machine = readInt32s(r)
	ind.Order = readInt32s(r)
	n := int(r.u32())
	if r.short || n < 0 || n > r.remaining()/8 {
		r.short = true
		return ind
	}
	ind.Objectives = make([]float64, n)
	for i := range ind.Objectives {
		ind.Objectives[i] = math.Float64frombits(r.u64())
	}
	return ind
}

// appendTick encodes one counter shard (19 fixed u64 slots).
func appendTick(b []byte, ts *WireShardTick) []byte {
	b = appendU64(b, ts.FullEvals)
	b = appendU64(b, ts.DeltaEvals)
	b = appendU64(b, ts.MachinesSimulated)
	b = appendU64(b, ts.MachinesInherited)
	b = appendU64(b, ts.TypedTasks)
	b = appendU64(b, ts.TypedRuns)
	b = appendU64(b, ts.CacheHits)
	b = appendU64(b, ts.CacheMisses)
	b = appendU64(b, ts.CacheEvictions)
	b = appendU64(b, uint64(ts.CacheSize))
	b = appendU64(b, uint64(ts.CacheCapacity))
	b = appendU64(b, ts.MachineCacheHits)
	b = appendU64(b, ts.MachineCacheMisses)
	b = appendU64(b, ts.MachineCacheEvictions)
	b = appendU64(b, uint64(ts.MachineCacheSize))
	b = appendU64(b, uint64(ts.MachineCacheCapacity))
	b = appendU64(b, uint64(ts.ArenaInUse))
	b = appendU64(b, uint64(ts.ArenaSlots))
	b = appendU64(b, uint64(ts.Migrants))
	return b
}

// readTick decodes one counter shard.
func readTick(r *wireReader) WireShardTick {
	var ts WireShardTick
	ts.FullEvals = r.u64()
	ts.DeltaEvals = r.u64()
	ts.MachinesSimulated = r.u64()
	ts.MachinesInherited = r.u64()
	ts.TypedTasks = r.u64()
	ts.TypedRuns = r.u64()
	ts.CacheHits = r.u64()
	ts.CacheMisses = r.u64()
	ts.CacheEvictions = r.u64()
	ts.CacheSize = int64(r.u64())
	ts.CacheCapacity = int64(r.u64())
	ts.MachineCacheHits = r.u64()
	ts.MachineCacheMisses = r.u64()
	ts.MachineCacheEvictions = r.u64()
	ts.MachineCacheSize = int64(r.u64())
	ts.MachineCacheCapacity = int64(r.u64())
	ts.ArenaInUse = int64(r.u64())
	ts.ArenaSlots = int64(r.u64())
	ts.Migrants = int64(r.u64())
	return ts
}

// readTicks decodes a u32-counted run of counter shards.
func readTicks(r *wireReader) []WireShardTick {
	n := int(r.u32())
	if r.short || n < 0 || n > r.remaining()/(19*8) {
		r.short = true
		return nil
	}
	out := make([]WireShardTick, n)
	for i := range out {
		out[i] = readTick(r)
	}
	return out
}

// appendSegment encodes one island snapshot segment.
func appendSegment(b []byte, s *WireSegment) []byte {
	b = appendU64(b, uint64(s.Generation))
	b = appendU64(b, s.RngS)
	b = appendU64(b, s.RngInc)
	b = appendU32(b, uint32(len(s.Genomes)))
	for i := range s.Genomes {
		g := &s.Genomes[i]
		b = appendU32(b, uint32(len(g.Machine)))
		for _, v := range g.Machine {
			b = appendU32(b, uint32(v))
		}
		b = appendU32(b, uint32(len(g.Order)))
		for _, v := range g.Order {
			b = appendU32(b, uint32(v))
		}
	}
	return b
}

// readSegment decodes one island snapshot segment.
func readSegment(r *wireReader) WireSegment {
	var s WireSegment
	s.Generation = int64(r.u64())
	s.RngS = r.u64()
	s.RngInc = r.u64()
	n := int(r.u32())
	if r.short || n < 0 || n > r.remaining()/8 {
		r.short = true
		return s
	}
	s.Genomes = make([]WireGenome, n)
	for i := range s.Genomes {
		s.Genomes[i].Machine = readInt32s(r)
		s.Genomes[i].Order = readInt32s(r)
	}
	return s
}

// readSegments decodes a u32-counted run of segments.
func readSegments(r *wireReader) []WireSegment {
	n := int(r.u32())
	if r.short || n < 0 || n > r.remaining()/(3*8+4) {
		r.short = true
		return nil
	}
	out := make([]WireSegment, n)
	for i := range out {
		out[i] = readSegment(r)
	}
	return out
}

// EncodeHello writes the worker handshake.
func (e *Encoder) EncodeHello(m *WireHello) error {
	e.begin()
	e.buf = appendU32(e.buf, uint32(m.Version))
	e.buf = appendU32(e.buf, uint32(m.Worker))
	e.buf = appendU32(e.buf, uint32(m.Workers))
	e.buf = appendU32(e.buf, uint32(m.Islands))
	e.buf = appendU32(e.buf, uint32(m.Lo))
	e.buf = appendU32(e.buf, uint32(m.Hi))
	e.buf = appendU64(e.buf, uint64(m.Generation))
	e.buf = appendU32(e.buf, uint32(len(m.Baselines)))
	for i := range m.Baselines {
		e.buf = appendTick(e.buf, &m.Baselines[i])
	}
	return e.writeFrame(MsgHello)
}

// DecodeHello parses a MsgHello payload.
func DecodeHello(payload []byte) (*WireHello, error) {
	r := &wireReader{buf: payload}
	m := &WireHello{
		Version:    int32(r.u32()),
		Worker:     int32(r.u32()),
		Workers:    int32(r.u32()),
		Islands:    int32(r.u32()),
		Lo:         int32(r.u32()),
		Hi:         int32(r.u32()),
		Generation: int64(r.u64()),
	}
	m.Baselines = readTicks(r)
	if err := r.finish(MsgHello); err != nil {
		return nil, err
	}
	if m.Version != WireVersion {
		return nil, badPayload(MsgHello, "protocol version %d, want %d", m.Version, WireVersion)
	}
	if m.Lo < 0 || m.Hi <= m.Lo || m.Hi > m.Islands || len(m.Baselines) != int(m.Hi-m.Lo) {
		return nil, badPayload(MsgHello, "shard [%d, %d) of %d islands with %d baselines", m.Lo, m.Hi, m.Islands, len(m.Baselines))
	}
	return m, nil
}

// EncodeRestore writes a cross-process restore request.
func (e *Encoder) EncodeRestore(m *WireRestore) error {
	e.begin()
	e.buf = appendU64(e.buf, uint64(m.Generation))
	e.buf = appendU32(e.buf, uint32(m.Lo))
	e.buf = appendU32(e.buf, uint32(len(m.Segments)))
	for i := range m.Segments {
		e.buf = appendSegment(e.buf, &m.Segments[i])
	}
	return e.writeFrame(MsgRestore)
}

// DecodeRestore parses a MsgRestore payload.
func DecodeRestore(payload []byte) (*WireRestore, error) {
	r := &wireReader{buf: payload}
	m := &WireRestore{Generation: int64(r.u64()), Lo: int32(r.u32())}
	m.Segments = readSegments(r)
	if err := r.finish(MsgRestore); err != nil {
		return nil, err
	}
	return m, nil
}

// EncodeRestored writes a restore acknowledgement.
func (e *Encoder) EncodeRestored(m *WireRestored) error {
	e.begin()
	e.buf = appendU32(e.buf, uint32(len(m.Baselines)))
	for i := range m.Baselines {
		e.buf = appendTick(e.buf, &m.Baselines[i])
	}
	return e.writeFrame(MsgRestored)
}

// DecodeRestored parses a MsgRestored payload.
func DecodeRestored(payload []byte) (*WireRestored, error) {
	r := &wireReader{buf: payload}
	m := &WireRestored{Baselines: readTicks(r)}
	if err := r.finish(MsgRestored); err != nil {
		return nil, err
	}
	return m, nil
}

// EncodeRun writes a run request.
func (e *Encoder) EncodeRun(m *WireRun) error {
	e.begin()
	e.buf = appendU64(e.buf, uint64(m.Generations))
	return e.writeFrame(MsgRun)
}

// DecodeRun parses a MsgRun payload.
func DecodeRun(payload []byte) (*WireRun, error) {
	r := &wireReader{buf: payload}
	m := &WireRun{Generations: int64(r.u64())}
	if err := r.finish(MsgRun); err != nil {
		return nil, err
	}
	if m.Generations <= 0 {
		return nil, badPayload(MsgRun, "generations %d", m.Generations)
	}
	return m, nil
}

// EncodeElites writes one boundary edge's migration payload. This is
// the per-tick hot path: the frame buffer is reused across calls.
//
//detlint:hotpath
func (e *Encoder) EncodeElites(m *WireElites) error {
	e.begin()
	e.buf = appendU32(e.buf, uint32(m.Tick))
	e.buf = appendU32(e.buf, uint32(m.From))
	e.buf = appendU32(e.buf, uint32(len(m.Inds)))
	for i := range m.Inds {
		e.buf = appendIndividual(e.buf, &m.Inds[i])
	}
	return e.writeFrame(MsgElites)
}

// DecodeElites parses a MsgElites payload. Per-tick hot path: the
// returned individuals are freshly allocated (they outlive the frame
// buffer and are injected into an engine arena).
//
//detlint:hotpath
func DecodeElites(payload []byte) (*WireElites, error) {
	r := &wireReader{buf: payload}
	m := &WireElites{Tick: int32(r.u32()), From: int32(r.u32())}
	n := int(r.u32())
	if r.short || n < 0 || n > r.remaining()/12 {
		return nil, (&wireReader{buf: payload, short: true}).finish(MsgElites)
	}
	m.Inds = make([]WireIndividual, n)
	for i := range m.Inds {
		m.Inds[i] = readIndividual(r)
	}
	if err := r.finish(MsgElites); err != nil {
		return nil, err
	}
	if m.Tick < 0 || m.From < 0 {
		return nil, badPayload(MsgElites, "tick %d from island %d", m.Tick, m.From)
	}
	return m, nil
}

// EncodeReport writes a worker's end-of-run report.
func (e *Encoder) EncodeReport(m *WireReport) error {
	e.begin()
	e.buf = appendU32(e.buf, uint32(len(m.Ticks)))
	for t := range m.Ticks {
		e.buf = appendU32(e.buf, uint32(len(m.Ticks[t])))
		for i := range m.Ticks[t] {
			e.buf = appendTick(e.buf, &m.Ticks[t][i])
		}
	}
	e.buf = appendU64(e.buf, uint64(m.StallNanos))
	return e.writeFrame(MsgReport)
}

// DecodeReport parses a MsgReport payload.
func DecodeReport(payload []byte) (*WireReport, error) {
	r := &wireReader{buf: payload}
	m := &WireReport{}
	n := int(r.u32())
	if r.short || n < 0 || n > r.remaining()/4 {
		return nil, (&wireReader{buf: payload, short: true}).finish(MsgReport)
	}
	m.Ticks = make([][]WireShardTick, n)
	for t := range m.Ticks {
		m.Ticks[t] = readTicks(r)
	}
	m.StallNanos = int64(r.u64())
	if err := r.finish(MsgReport); err != nil {
		return nil, err
	}
	return m, nil
}

// EncodeControl writes an empty-payload control frame (MsgFrontReq,
// MsgSnapshotReq, MsgExit).
func (e *Encoder) EncodeControl(t MsgType) error {
	e.begin()
	return e.writeFrame(t)
}

// DecodeControl validates an empty control payload.
func DecodeControl(t MsgType, payload []byte) error {
	r := &wireReader{buf: payload}
	return r.finish(t)
}

// EncodeFront writes a worker's per-island fronts.
func (e *Encoder) EncodeFront(m *WireFront) error {
	e.begin()
	e.buf = appendU32(e.buf, uint32(len(m.Fronts)))
	for f := range m.Fronts {
		e.buf = appendU32(e.buf, uint32(len(m.Fronts[f])))
		for i := range m.Fronts[f] {
			e.buf = appendIndividual(e.buf, &m.Fronts[f][i])
		}
	}
	return e.writeFrame(MsgFront)
}

// DecodeFront parses a MsgFront payload.
func DecodeFront(payload []byte) (*WireFront, error) {
	r := &wireReader{buf: payload}
	m := &WireFront{}
	n := int(r.u32())
	if r.short || n < 0 || n > r.remaining()/4 {
		return nil, (&wireReader{buf: payload, short: true}).finish(MsgFront)
	}
	m.Fronts = make([][]WireIndividual, n)
	for f := range m.Fronts {
		c := int(r.u32())
		if r.short || c < 0 || c > r.remaining()/12 {
			return nil, (&wireReader{buf: payload, short: true}).finish(MsgFront)
		}
		m.Fronts[f] = make([]WireIndividual, c)
		for i := range m.Fronts[f] {
			m.Fronts[f][i] = readIndividual(r)
		}
	}
	if err := r.finish(MsgFront); err != nil {
		return nil, err
	}
	return m, nil
}

// EncodeSnapshot writes a worker's snapshot segments.
func (e *Encoder) EncodeSnapshot(m *WireSnapshot) error {
	e.begin()
	e.buf = appendU64(e.buf, uint64(m.Generation))
	e.buf = appendU32(e.buf, uint32(len(m.Segments)))
	for i := range m.Segments {
		e.buf = appendSegment(e.buf, &m.Segments[i])
	}
	return e.writeFrame(MsgSnapshot)
}

// DecodeSnapshot parses a MsgSnapshot payload.
func DecodeSnapshot(payload []byte) (*WireSnapshot, error) {
	r := &wireReader{buf: payload}
	m := &WireSnapshot{Generation: int64(r.u64())}
	m.Segments = readSegments(r)
	if err := r.finish(MsgSnapshot); err != nil {
		return nil, err
	}
	return m, nil
}

// EncodeAbort writes a worker failure report.
func (e *Encoder) EncodeAbort(m *WireAbort) error {
	e.begin()
	e.buf = appendU32(e.buf, uint32(len(m.Msg)))
	e.buf = append(e.buf, m.Msg...)
	return e.writeFrame(MsgAbort)
}

// DecodeAbort parses a MsgAbort payload.
func DecodeAbort(payload []byte) (*WireAbort, error) {
	r := &wireReader{buf: payload}
	n := int(r.u32())
	if r.short || n < 0 || n > r.remaining() {
		return nil, (&wireReader{buf: payload, short: true}).finish(MsgAbort)
	}
	m := &WireAbort{Msg: string(r.buf[r.off : r.off+n])}
	r.off += n
	if err := r.finish(MsgAbort); err != nil {
		return nil, err
	}
	return m, nil
}
