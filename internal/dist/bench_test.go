package dist

// Benchmarks for the distributed-islands slice of the regression gate
// (Makefile bench-dist, BENCH_dist.json): the wire codec's hot paths in
// isolation, and full coordinator round trips over in-process pipes
// against the single-process async island run as the baseline. On a
// multi-core host the cluster benchmarks also measure the wall-clock
// speedup of sharding; on a single core they still gate the wire and
// scheduling overhead, which is what regresses silently.

import (
	"bytes"
	"io"
	"testing"

	"tradeoff/internal/nsga2"
	"tradeoff/internal/rng"
)

// discardConn is a write-only transport for encode benchmarks.
type discardConn struct{}

func (discardConn) Read([]byte) (int, error)    { return 0, io.EOF }
func (discardConn) Write(p []byte) (int, error) { return len(p), nil }
func (discardConn) Close() error                { return nil }

// nopCloser adapts a bytes.Buffer to the Conn transport.
type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }

// benchElites builds a migration payload of the benchmark's canonical
// shape: two elites over a 40-task genome, the default migration batch
// of every -distribute run in this repo's experiments.
func benchElites(inds, genes int) *WireElites {
	m := &WireElites{Tick: 3, From: 1, Inds: make([]WireIndividual, inds)}
	for i := range m.Inds {
		mach := make([]int32, genes)
		ord := make([]int32, genes)
		for j := range mach {
			mach[j] = int32(j % 8)
			ord[j] = int32(j)
		}
		m.Inds[i] = WireIndividual{
			Machine:    mach,
			Order:      ord,
			Objectives: []float64{float64(i) + 0.5, 1 / (float64(i) + 1)},
		}
	}
	return m
}

func BenchmarkDistEncodeElites(b *testing.B) {
	conn := NewConn(discardConn{}, nil)
	m := benchElites(2, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.SendElites(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistDecodeElites(b *testing.B) {
	var buf bytes.Buffer
	conn := NewConn(nopCloser{&buf}, nil)
	if err := conn.SendElites(benchElites(2, 40)); err != nil {
		b.Fatal(err)
	}
	payload := buf.Bytes()[5:] // strip the frame header
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeElites(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// benchClusterRun is one full distributed run per iteration: spawn the
// in-process worker goroutines over net.Pipe, run 10 generations of a
// 4-island ring, pull the merged front, and tear down.
func benchClusterRun(b *testing.B, workers int) {
	e := newEval(b, 40)
	cfg := distCfg(4, 5, 2, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := startCluster(b, e, cfg, 99, workers, nil, nil)
		if err := c.coord.Run(10); err != nil {
			b.Fatal(err)
		}
		if _, err := c.coord.Front(); err != nil {
			b.Fatal(err)
		}
		c.stop(b)
	}
}

func BenchmarkDistClusterRun1Worker(b *testing.B)  { benchClusterRun(b, 1) }
func BenchmarkDistClusterRun2Workers(b *testing.B) { benchClusterRun(b, 2) }
func BenchmarkDistClusterRun4Workers(b *testing.B) { benchClusterRun(b, 4) }

// BenchmarkDistInProcessRun is the single-process async baseline the
// cluster benchmarks are read against: same ring, same seed, same
// generations, no wire.
func BenchmarkDistInProcessRun(b *testing.B) {
	e := newEval(b, 40)
	cfg := distCfg(4, 5, 2, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		isl, err := nsga2.NewIslands(e, cfg, rng.New(99))
		if err != nil {
			b.Fatal(err)
		}
		isl.Run(10)
		isl.ParetoFront()
	}
}
