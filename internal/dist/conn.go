package dist

import (
	"fmt"
	"io"
	"sync"
)

// Conn is one framed wire connection: an Encoder and Decoder over the
// same stream. Writes are serialized by an internal mutex (the
// coordinator's forwarding goroutines and control path share a worker's
// socket); reads are not locked — the protocol guarantees a single
// reader at a time, with ownership handed off between the control path
// and a run's boundary-edge goroutine at run boundaries.
type Conn struct {
	rw  io.ReadWriteCloser
	enc *Encoder
	dec *Decoder
	wmu sync.Mutex
}

// NewConn wraps a stream. onBytes, when non-nil, observes every frame's
// size in both directions (telemetry hook).
func NewConn(rw io.ReadWriteCloser, onBytes func(n int)) *Conn {
	return &Conn{rw: rw, enc: NewEncoder(rw, onBytes), dec: NewDecoder(rw, onBytes)}
}

// Close closes the underlying stream. Safe to call concurrently with
// blocked reads and writes, which fail over to errors.
func (c *Conn) Close() error { return c.rw.Close() }

// Next reads one frame. Single reader at a time.
func (c *Conn) Next() (MsgType, []byte, error) { return c.dec.Next() }

// SendHello writes a handshake under the write lock.
func (c *Conn) SendHello(m *WireHello) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.EncodeHello(m)
}

// SendRestore writes a restore request under the write lock.
func (c *Conn) SendRestore(m *WireRestore) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.EncodeRestore(m)
}

// SendRestored writes a restore acknowledgement under the write lock.
func (c *Conn) SendRestored(m *WireRestored) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.EncodeRestored(m)
}

// SendRun writes a run request under the write lock.
func (c *Conn) SendRun(m *WireRun) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.EncodeRun(m)
}

// SendElites writes one migration payload under the write lock. This is
// the per-tick hot path.
//
//detlint:hotpath
func (c *Conn) SendElites(m *WireElites) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.EncodeElites(m)
}

// SendReport writes an end-of-run report under the write lock.
func (c *Conn) SendReport(m *WireReport) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.EncodeReport(m)
}

// SendControl writes an empty control frame under the write lock.
func (c *Conn) SendControl(t MsgType) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.EncodeControl(t)
}

// SendFront writes a front reply under the write lock.
func (c *Conn) SendFront(m *WireFront) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.EncodeFront(m)
}

// SendSnapshot writes a snapshot reply under the write lock.
func (c *Conn) SendSnapshot(m *WireSnapshot) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.EncodeSnapshot(m)
}

// SendAbort writes a failure report under the write lock.
func (c *Conn) SendAbort(m *WireAbort) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.EncodeAbort(m)
}

// expectReply reads the next frame, requiring the given type. A worker
// abort is surfaced as its carried error; a clean stream end counts as
// truncation because a reply was owed.
func (c *Conn) expectReply(want MsgType) ([]byte, error) {
	typ, payload, err := c.dec.Next()
	if err == io.EOF {
		return nil, &WireError{Msg: want, Err: fmt.Errorf("connection closed awaiting reply: %w", ErrTruncated)}
	}
	if err != nil {
		return nil, err
	}
	if typ == MsgAbort && want != MsgAbort {
		m, aerr := DecodeAbort(payload)
		if aerr != nil {
			return nil, aerr
		}
		return nil, fmt.Errorf("dist: worker aborted: %s", m.Msg)
	}
	if typ != want {
		return nil, &WireError{Frame: c.dec.Frame(), Msg: typ,
			Err: fmt.Errorf("awaiting %s: %w", want, ErrUnexpectedMessage)}
	}
	return payload, nil
}
