package dist

import (
	"tradeoff/internal/nsga2"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// Conversions between the engine's in-memory types and their wire
// images. The wire carries genotypes and counters only; objectives ride
// along for tooling, and everything an engine needs is re-derived
// deterministically on the receiving side (Inject re-evaluates,
// Restore re-ranks).

// toWireIndividual builds the wire image of one individual. The slices
// alias the individual's buffers: encode reads them synchronously and
// never retains them.
func toWireIndividual(ind *nsga2.Individual) WireIndividual {
	return WireIndividual{
		Machine:    ind.Alloc.Machine,
		Order:      ind.Alloc.Order,
		Objectives: ind.Objectives,
	}
}

// fromWireIndividual materializes a received individual. The wire
// slices are freshly allocated by the decoder, so the allocation owns
// them.
func fromWireIndividual(w *WireIndividual) nsga2.Individual {
	return nsga2.Individual{
		Alloc:      &sched.Allocation{Machine: w.Machine, Order: w.Order},
		Objectives: w.Objectives,
	}
}

// toWireElites builds one migration payload from elite clones.
func toWireElites(tick, from int, elites []nsga2.Individual) WireElites {
	m := WireElites{Tick: int32(tick), From: int32(from)}
	m.Inds = make([]WireIndividual, len(elites))
	for i := range elites {
		m.Inds[i] = toWireIndividual(&elites[i])
	}
	return m
}

// fromWireElites materializes a received migration payload.
func fromWireElites(m *WireElites) []nsga2.Individual {
	out := make([]nsga2.Individual, len(m.Inds))
	for i := range m.Inds {
		out[i] = fromWireIndividual(&m.Inds[i])
	}
	return out
}

// tickToWire flattens an engine counter shard onto the wire.
func tickToWire(t nsga2.ShardTick) WireShardTick {
	return WireShardTick{
		FullEvals:             t.Sess.FullEvals,
		DeltaEvals:            t.Sess.DeltaEvals,
		MachinesSimulated:     t.Sess.MachinesSimulated,
		MachinesInherited:     t.Sess.MachinesInherited,
		TypedTasks:            t.Sess.TypedTasks,
		TypedRuns:             t.Sess.TypedRuns,
		CacheHits:             t.CacheHits,
		CacheMisses:           t.CacheMisses,
		CacheEvictions:        t.CacheEvictions,
		CacheSize:             int64(t.CacheSize),
		CacheCapacity:         int64(t.CacheCapacity),
		MachineCacheHits:      t.MachineCacheHits,
		MachineCacheMisses:    t.MachineCacheMisses,
		MachineCacheEvictions: t.MachineCacheEvictions,
		MachineCacheSize:      int64(t.MachineCacheSize),
		MachineCacheCapacity:  int64(t.MachineCacheCapacity),
		ArenaInUse:            int64(t.ArenaInUse),
		ArenaSlots:            int64(t.ArenaSlots),
		Migrants:              int64(t.Migrants),
	}
}

// tickFromWire rebuilds an engine counter shard from its wire image.
func tickFromWire(w WireShardTick) nsga2.ShardTick {
	return nsga2.ShardTick{
		Sess: sched.DeltaStats{
			FullEvals:         w.FullEvals,
			DeltaEvals:        w.DeltaEvals,
			MachinesSimulated: w.MachinesSimulated,
			MachinesInherited: w.MachinesInherited,
			TypedTasks:        w.TypedTasks,
			TypedRuns:         w.TypedRuns,
		},
		CacheHits:             w.CacheHits,
		CacheMisses:           w.CacheMisses,
		CacheEvictions:        w.CacheEvictions,
		CacheSize:             int(w.CacheSize),
		CacheCapacity:         int(w.CacheCapacity),
		MachineCacheHits:      w.MachineCacheHits,
		MachineCacheMisses:    w.MachineCacheMisses,
		MachineCacheEvictions: w.MachineCacheEvictions,
		MachineCacheSize:      int(w.MachineCacheSize),
		MachineCacheCapacity:  int(w.MachineCacheCapacity),
		ArenaInUse:            int(w.ArenaInUse),
		ArenaSlots:            int(w.ArenaSlots),
		Migrants:              int(w.Migrants),
	}
}

// ticksToWire converts a run of counter shards.
func ticksToWire(ts []nsga2.ShardTick) []WireShardTick {
	out := make([]WireShardTick, len(ts))
	for i, t := range ts {
		out[i] = tickToWire(t)
	}
	return out
}

// ticksFromWire converts a run of wire counter shards.
func ticksFromWire(ws []WireShardTick) []nsga2.ShardTick {
	out := make([]nsga2.ShardTick, len(ws))
	for i, w := range ws {
		out[i] = tickFromWire(w)
	}
	return out
}

// segmentToWire converts one engine snapshot. The JSON snapshot schema
// stores genes as []int; the wire narrows them to their int32 gene
// domain (machine indices and order ranks).
func segmentToWire(s *nsga2.Snapshot) WireSegment {
	w := WireSegment{
		Generation: int64(s.Generation),
		RngS:       s.RNG.S,
		RngInc:     s.RNG.Inc,
	}
	w.Genomes = make([]WireGenome, len(s.Population))
	for i, g := range s.Population {
		w.Genomes[i] = WireGenome{Machine: narrow32(g.Machine), Order: narrow32(g.Order)}
	}
	return w
}

// segmentFromWire rebuilds one engine snapshot.
func segmentFromWire(w *WireSegment) *nsga2.Snapshot {
	s := &nsga2.Snapshot{
		Generation: int(w.Generation),
		RNG:        rng.State{S: w.RngS, Inc: w.RngInc},
	}
	s.Population = make([]nsga2.GenomeSnapshot, len(w.Genomes))
	for i, g := range w.Genomes {
		s.Population[i] = nsga2.GenomeSnapshot{Machine: widen32(g.Machine), Order: widen32(g.Order)}
	}
	return s
}

// segmentsToWire converts a shard's snapshots.
func segmentsToWire(snaps []*nsga2.Snapshot) []WireSegment {
	out := make([]WireSegment, len(snaps))
	for i, s := range snaps {
		out[i] = segmentToWire(s)
	}
	return out
}

// segmentsFromWire rebuilds a shard's snapshots.
func segmentsFromWire(ws []WireSegment) []*nsga2.Snapshot {
	out := make([]*nsga2.Snapshot, len(ws))
	for i := range ws {
		out[i] = segmentFromWire(&ws[i])
	}
	return out
}

func narrow32(src []int) []int32 {
	out := make([]int32, len(src))
	for i, v := range src {
		out[i] = int32(v)
	}
	return out
}

func widen32(src []int32) []int {
	out := make([]int, len(src))
	for i, v := range src {
		out[i] = int(v)
	}
	return out
}

// frontToWire converts a shard's per-island fronts.
func frontToWire(fronts [][]nsga2.Individual) WireFront {
	m := WireFront{Fronts: make([][]WireIndividual, len(fronts))}
	for f, front := range fronts {
		m.Fronts[f] = make([]WireIndividual, len(front))
		for i := range front {
			m.Fronts[f][i] = toWireIndividual(&front[i])
		}
	}
	return m
}

// frontFromWire flattens received per-island fronts into the union the
// coordinator merges, preserving island order.
func frontFromWire(m *WireFront) []nsga2.Individual {
	var out []nsga2.Individual
	for f := range m.Fronts {
		for i := range m.Fronts[f] {
			out = append(out, fromWireIndividual(&m.Fronts[f][i]))
		}
	}
	return out
}
