package dist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

// encodeFrames runs fn against an encoder writing into a fresh buffer
// and returns the raw stream.
func encodeFrames(t *testing.T, fn func(e *Encoder) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fn(NewEncoder(&buf, nil)); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// decodeOne reads exactly one frame from raw.
func decodeOne(t *testing.T, raw []byte) (MsgType, []byte) {
	t.Helper()
	typ, payload, err := NewDecoder(bytes.NewReader(raw), nil).Next()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return typ, payload
}

// TestWireGoldenElites pins the byte-exact frame layout: any codec
// change that reshuffles fields or widths breaks this test, which is
// the point — the wire format is part of the determinism contract.
func TestWireGoldenElites(t *testing.T) {
	m := &WireElites{
		Tick: 3,
		From: 7,
		Inds: []WireIndividual{{
			Machine:    []int32{1, -1},
			Order:      []int32{0},
			Objectives: []float64{0.5},
		}},
	}
	raw := encodeFrames(t, func(e *Encoder) error { return e.EncodeElites(m) })
	want := []byte{
		44, 0, 0, 0, // payload length 44
		byte(MsgElites), // type
		3, 0, 0, 0,      // tick
		7, 0, 0, 0, // from
		1, 0, 0, 0, // 1 individual
		2, 0, 0, 0, // 2 machine genes
		1, 0, 0, 0, // gene 1
		255, 255, 255, 255, // gene -1 two's complement
		1, 0, 0, 0, // 1 order gene
		0, 0, 0, 0, // gene 0
		1, 0, 0, 0, // 1 objective
		0, 0, 0, 0, 0, 0, 224, 63, // 0.5 as IEEE-754 LE
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("frame bytes\n got %v\nwant %v", raw, want)
	}
	typ, payload := decodeOne(t, raw)
	if typ != MsgElites {
		t.Fatalf("type %v, want elites", typ)
	}
	got, err := DecodeElites(payload)
	if err != nil {
		t.Fatalf("DecodeElites: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip: got %+v, want %+v", got, m)
	}
}

// TestWireGoldenRun pins the simplest frame end to end.
func TestWireGoldenRun(t *testing.T) {
	raw := encodeFrames(t, func(e *Encoder) error {
		return e.EncodeRun(&WireRun{Generations: 258})
	})
	want := []byte{8, 0, 0, 0, byte(MsgRun), 2, 1, 0, 0, 0, 0, 0, 0}
	if !bytes.Equal(raw, want) {
		t.Fatalf("frame bytes\n got %v\nwant %v", raw, want)
	}
}

func sampleHello() *WireHello {
	return &WireHello{
		Version: WireVersion, Worker: 1, Workers: 2,
		Islands: 4, Lo: 2, Hi: 4, Generation: 50,
		Baselines: []WireShardTick{
			{FullEvals: 10, CacheHits: 3, ArenaSlots: 8, Migrants: 2},
			{DeltaEvals: 7, MachineCacheMisses: 1, CacheCapacity: 16},
		},
	}
}

func sampleSegments() []WireSegment {
	return []WireSegment{
		{Generation: 9, RngS: 0xdeadbeef, RngInc: 0x1234,
			Genomes: []WireGenome{{Machine: []int32{0, 1, 2}, Order: []int32{2, 1, 0}}}},
		{Generation: 9, RngS: 1, RngInc: 3, Genomes: []WireGenome{}},
	}
}

// TestWireRoundTrips covers every message type through a single
// multi-frame stream.
func TestWireRoundTrips(t *testing.T) {
	hello := sampleHello()
	restore := &WireRestore{Generation: 9, Lo: 2, Segments: sampleSegments()}
	restored := &WireRestored{Baselines: hello.Baselines}
	run := &WireRun{Generations: 25}
	elites := &WireElites{Tick: 0, From: 3, Inds: []WireIndividual{
		{Machine: []int32{5}, Order: []int32{0}, Objectives: []float64{1.5, -2.25}},
		{Machine: []int32{}, Order: []int32{}, Objectives: []float64{}},
	}}
	report := &WireReport{
		Ticks: [][]WireShardTick{
			{{FullEvals: 1}, {FullEvals: 2}},
			{{FullEvals: 3, Migrants: 2}, {TypedRuns: 4}},
		},
		StallNanos: 12345,
	}
	front := &WireFront{Fronts: [][]WireIndividual{
		{{Machine: []int32{1}, Order: []int32{0}, Objectives: []float64{0.5, 2}}},
		{},
	}}
	snap := &WireSnapshot{Generation: 9, Segments: sampleSegments()}
	abort := &WireAbort{Msg: "island 3: boom"}

	raw := encodeFrames(t, func(e *Encoder) error {
		for _, enc := range []func() error{
			func() error { return e.EncodeHello(hello) },
			func() error { return e.EncodeRestore(restore) },
			func() error { return e.EncodeRestored(restored) },
			func() error { return e.EncodeRun(run) },
			func() error { return e.EncodeElites(elites) },
			func() error { return e.EncodeReport(report) },
			func() error { return e.EncodeControl(MsgFrontReq) },
			func() error { return e.EncodeFront(front) },
			func() error { return e.EncodeControl(MsgSnapshotReq) },
			func() error { return e.EncodeSnapshot(snap) },
			func() error { return e.EncodeAbort(abort) },
			func() error { return e.EncodeControl(MsgExit) },
		} {
			if err := enc(); err != nil {
				return err
			}
		}
		return nil
	})

	var recv int
	dec := NewDecoder(bytes.NewReader(raw), func(n int) { recv += n })
	check := func(want any, got any, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("decode frame %d: %v", dec.Frame(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got %+v, want %+v", dec.Frame(), got, want)
		}
	}
	for i := 0; ; i++ {
		typ, payload, err := dec.Next()
		if err == io.EOF {
			if i != 12 {
				t.Fatalf("stream ended after %d frames, want 12", i)
			}
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", i+1, err)
		}
		switch typ {
		case MsgHello:
			m, err := DecodeHello(payload)
			check(hello, m, err)
		case MsgRestore:
			m, err := DecodeRestore(payload)
			check(restore, m, err)
		case MsgRestored:
			m, err := DecodeRestored(payload)
			check(restored, m, err)
		case MsgRun:
			m, err := DecodeRun(payload)
			check(run, m, err)
		case MsgElites:
			m, err := DecodeElites(payload)
			check(elites, m, err)
		case MsgReport:
			m, err := DecodeReport(payload)
			check(report, m, err)
		case MsgFrontReq:
			if err := DecodeControl(typ, payload); err != nil {
				t.Fatalf("front-req: %v", err)
			}
		case MsgFront:
			m, err := DecodeFront(payload)
			check(front, m, err)
		case MsgSnapshotReq:
			if err := DecodeControl(typ, payload); err != nil {
				t.Fatalf("snapshot-req: %v", err)
			}
		case MsgSnapshot:
			m, err := DecodeSnapshot(payload)
			check(snap, m, err)
		case MsgAbort:
			m, err := DecodeAbort(payload)
			check(abort, m, err)
		case MsgExit:
			if err := DecodeControl(typ, payload); err != nil {
				t.Fatalf("exit: %v", err)
			}
		}
	}
	if recv != len(raw) {
		t.Fatalf("decoder byte hook saw %d bytes, stream has %d", recv, len(raw))
	}
}

// TestWireEncoderByteHook verifies the telemetry hook observes full
// frame sizes.
func TestWireEncoderByteHook(t *testing.T) {
	var buf bytes.Buffer
	var sent int
	e := NewEncoder(&buf, func(n int) { sent += n })
	if err := e.EncodeRun(&WireRun{Generations: 1}); err != nil {
		t.Fatal(err)
	}
	if sent != buf.Len() || sent != 13 {
		t.Fatalf("hook saw %d bytes, stream has %d (want 13)", sent, buf.Len())
	}
}

// TestWireTruncatedFrames feeds every proper prefix of a valid stream
// to the decoder: each must fail with a *WireError wrapping
// ErrTruncated (or hit a clean EOF exactly at a frame boundary).
func TestWireTruncatedFrames(t *testing.T) {
	raw := encodeFrames(t, func(e *Encoder) error {
		return e.EncodeElites(&WireElites{Tick: 1, From: 2, Inds: []WireIndividual{
			{Machine: []int32{3, 4}, Order: []int32{1, 0}, Objectives: []float64{2.5}},
		}})
	})
	for cut := 0; cut < len(raw); cut++ {
		_, _, err := NewDecoder(bytes.NewReader(raw[:cut]), nil).Next()
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut 0: err %v, want clean io.EOF", err)
			}
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: err %v, want ErrTruncated", cut, err)
		}
		var werr *WireError
		if !errors.As(err, &werr) {
			t.Fatalf("cut %d: err %T is not a *WireError", cut, err)
		}
		if werr.Frame != 1 {
			t.Fatalf("cut %d: frame index %d, want 1", cut, werr.Frame)
		}
	}
}

// TestWireTruncatedPayloads hands every proper prefix of each message's
// payload to its decode function: all must report ErrTruncated, none
// may panic or over-allocate.
func TestWireTruncatedPayloads(t *testing.T) {
	cases := []struct {
		name string
		typ  MsgType
		enc  func(e *Encoder) error
		dec  func(p []byte) error
	}{
		{"hello", MsgHello, func(e *Encoder) error { return e.EncodeHello(sampleHello()) },
			func(p []byte) error { _, err := DecodeHello(p); return err }},
		{"restore", MsgRestore,
			func(e *Encoder) error {
				return e.EncodeRestore(&WireRestore{Generation: 1, Lo: 0, Segments: sampleSegments()})
			},
			func(p []byte) error { _, err := DecodeRestore(p); return err }},
		{"elites", MsgElites,
			func(e *Encoder) error {
				return e.EncodeElites(&WireElites{Inds: []WireIndividual{
					{Machine: []int32{1, 2}, Order: []int32{0, 1}, Objectives: []float64{3}},
				}})
			},
			func(p []byte) error { _, err := DecodeElites(p); return err }},
		{"report", MsgReport,
			func(e *Encoder) error {
				return e.EncodeReport(&WireReport{Ticks: [][]WireShardTick{{{FullEvals: 9}}}, StallNanos: 5})
			},
			func(p []byte) error { _, err := DecodeReport(p); return err }},
		{"front", MsgFront,
			func(e *Encoder) error {
				return e.EncodeFront(&WireFront{Fronts: [][]WireIndividual{
					{{Machine: []int32{1}, Order: []int32{0}, Objectives: []float64{1, 2}}},
				}})
			},
			func(p []byte) error { _, err := DecodeFront(p); return err }},
		{"snapshot", MsgSnapshot,
			func(e *Encoder) error {
				return e.EncodeSnapshot(&WireSnapshot{Generation: 2, Segments: sampleSegments()})
			},
			func(p []byte) error { _, err := DecodeSnapshot(p); return err }},
		{"abort", MsgAbort,
			func(e *Encoder) error { return e.EncodeAbort(&WireAbort{Msg: "bad"}) },
			func(p []byte) error { _, err := DecodeAbort(p); return err }},
	}
	for _, tc := range cases {
		raw := encodeFrames(t, tc.enc)
		payload := raw[5:]
		for cut := 0; cut < len(payload); cut++ {
			err := tc.dec(payload[:cut])
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("%s: cut %d: err %v, want ErrTruncated", tc.name, cut, err)
			}
			var werr *WireError
			if !errors.As(err, &werr) || werr.Msg != tc.typ {
				t.Fatalf("%s: cut %d: err %v lacks message type %v", tc.name, cut, err, tc.typ)
			}
		}
	}
}

// TestWireTrailingGarbage appends stray bytes inside a frame's payload
// (adjusting the length prefix so framing stays valid): every decode
// function must reject the leftovers.
func TestWireTrailingGarbage(t *testing.T) {
	cases := []struct {
		name string
		enc  func(e *Encoder) error
		dec  func(p []byte) error
	}{
		{"hello", func(e *Encoder) error { return e.EncodeHello(sampleHello()) },
			func(p []byte) error { _, err := DecodeHello(p); return err }},
		{"run", func(e *Encoder) error { return e.EncodeRun(&WireRun{Generations: 2}) },
			func(p []byte) error { _, err := DecodeRun(p); return err }},
		{"elites", func(e *Encoder) error { return e.EncodeElites(&WireElites{}) },
			func(p []byte) error { _, err := DecodeElites(p); return err }},
		{"restored", func(e *Encoder) error { return e.EncodeRestored(&WireRestored{}) },
			func(p []byte) error { _, err := DecodeRestored(p); return err }},
		{"control", func(e *Encoder) error { return e.EncodeControl(MsgExit) },
			func(p []byte) error { return DecodeControl(MsgExit, p) }},
		{"abort", func(e *Encoder) error { return e.EncodeAbort(&WireAbort{Msg: "x"}) },
			func(p []byte) error { _, err := DecodeAbort(p); return err }},
	}
	for _, tc := range cases {
		raw := encodeFrames(t, tc.enc)
		payload := append(append([]byte{}, raw[5:]...), 0xEE)
		err := tc.dec(payload)
		if !errors.Is(err, ErrTrailingGarbage) {
			t.Fatalf("%s: err %v, want ErrTrailingGarbage", tc.name, err)
		}
		var werr *WireError
		if !errors.As(err, &werr) {
			t.Fatalf("%s: err %T is not a *WireError", tc.name, err)
		}
	}
}

// TestWireHeaderRejection covers the decoder's header-level failures:
// unknown type bytes (including 0) and oversized length prefixes.
func TestWireHeaderRejection(t *testing.T) {
	frame := func(n uint32, typ byte) []byte {
		b := binary.LittleEndian.AppendUint32(nil, n)
		return append(b, typ)
	}
	for _, typ := range []byte{0, byte(numMsgTypes), 200, 255} {
		_, _, err := NewDecoder(bytes.NewReader(frame(0, typ)), nil).Next()
		if !errors.Is(err, ErrUnknownMessage) {
			t.Fatalf("type byte %d: err %v, want ErrUnknownMessage", typ, err)
		}
	}
	_, _, err := NewDecoder(bytes.NewReader(frame(MaxFrame+1, byte(MsgRun))), nil).Next()
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized prefix: err %v, want ErrFrameTooLarge", err)
	}
	var werr *WireError
	if !errors.As(err, &werr) || werr.Msg != MsgRun {
		t.Fatalf("oversized prefix: err %v lacks message type", err)
	}
	// A hostile length prefix below the cap but far beyond the stream
	// must fail as truncated, not allocate-and-hang.
	_, _, err = NewDecoder(bytes.NewReader(frame(1<<20, byte(MsgElites))), nil).Next()
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("short stream: err %v, want ErrTruncated", err)
	}
}

// TestWireBadPayloads covers schema-valid framing around impossible
// content.
func TestWireBadPayloads(t *testing.T) {
	badHello := sampleHello()
	badHello.Version = WireVersion + 1
	raw := encodeFrames(t, func(e *Encoder) error { return e.EncodeHello(badHello) })
	if _, err := DecodeHello(raw[5:]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("version mismatch: err %v, want ErrBadPayload", err)
	}

	shardHello := sampleHello()
	shardHello.Hi = shardHello.Lo // empty shard
	shardHello.Baselines = nil
	raw = encodeFrames(t, func(e *Encoder) error { return e.EncodeHello(shardHello) })
	if _, err := DecodeHello(raw[5:]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("empty shard: err %v, want ErrBadPayload", err)
	}

	raw = encodeFrames(t, func(e *Encoder) error { return e.EncodeRun(&WireRun{Generations: 0}) })
	if _, err := DecodeRun(raw[5:]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("zero generations: err %v, want ErrBadPayload", err)
	}

	raw = encodeFrames(t, func(e *Encoder) error { return e.EncodeElites(&WireElites{Tick: -1}) })
	if _, err := DecodeElites(raw[5:]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("negative tick: err %v, want ErrBadPayload", err)
	}
}

// FuzzWireCodec drives the full decode surface with arbitrary bytes.
// Every outcome must be a clean io.EOF, a structured *WireError, or a
// successfully decoded message that re-encodes to an identical frame
// (the round-trip property that makes the wire deterministic).
func FuzzWireCodec(f *testing.F) {
	// Seed with one valid frame of every message type plus mutation bait.
	seed := func(fn func(e *Encoder) error) {
		var buf bytes.Buffer
		if err := fn(NewEncoder(&buf, nil)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(func(e *Encoder) error { return e.EncodeHello(sampleHello()) })
	seed(func(e *Encoder) error {
		return e.EncodeRestore(&WireRestore{Generation: 3, Lo: 1, Segments: sampleSegments()})
	})
	seed(func(e *Encoder) error { return e.EncodeRestored(&WireRestored{}) })
	seed(func(e *Encoder) error { return e.EncodeRun(&WireRun{Generations: 100}) })
	seed(func(e *Encoder) error {
		return e.EncodeElites(&WireElites{Tick: 25, From: 3, Inds: []WireIndividual{
			{Machine: []int32{0, 5, -3}, Order: []int32{2, 0, 1}, Objectives: []float64{0.25, math.Inf(1)}},
		}})
	})
	seed(func(e *Encoder) error {
		return e.EncodeReport(&WireReport{Ticks: [][]WireShardTick{{{FullEvals: 1}, {DeltaEvals: 2}}}, StallNanos: 7})
	})
	seed(func(e *Encoder) error { return e.EncodeControl(MsgFrontReq) })
	seed(func(e *Encoder) error {
		return e.EncodeFront(&WireFront{Fronts: [][]WireIndividual{{{Machine: []int32{9}, Order: []int32{0}, Objectives: []float64{1, 2}}}}})
	})
	seed(func(e *Encoder) error { return e.EncodeControl(MsgSnapshotReq) })
	seed(func(e *Encoder) error {
		return e.EncodeSnapshot(&WireSnapshot{Generation: 8, Segments: sampleSegments()})
	})
	seed(func(e *Encoder) error { return e.EncodeAbort(&WireAbort{Msg: "fuzz"}) })
	seed(func(e *Encoder) error { return e.EncodeControl(MsgExit) })
	f.Add([]byte{})
	f.Add([]byte{255, 255, 255, 255, 5})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data), nil)
		for {
			typ, payload, err := dec.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				var werr *WireError
				if !errors.As(err, &werr) {
					t.Fatalf("frame error is %T, want *WireError: %v", err, err)
				}
				return
			}
			var reenc func(e *Encoder) error
			switch typ {
			case MsgHello:
				m, err := DecodeHello(payload)
				if err != nil {
					requireWireError(t, err)
					return
				}
				reenc = func(e *Encoder) error { return e.EncodeHello(m) }
			case MsgRestore:
				m, err := DecodeRestore(payload)
				if err != nil {
					requireWireError(t, err)
					return
				}
				reenc = func(e *Encoder) error { return e.EncodeRestore(m) }
			case MsgRestored:
				m, err := DecodeRestored(payload)
				if err != nil {
					requireWireError(t, err)
					return
				}
				reenc = func(e *Encoder) error { return e.EncodeRestored(m) }
			case MsgRun:
				m, err := DecodeRun(payload)
				if err != nil {
					requireWireError(t, err)
					return
				}
				reenc = func(e *Encoder) error { return e.EncodeRun(m) }
			case MsgElites:
				m, err := DecodeElites(payload)
				if err != nil {
					requireWireError(t, err)
					return
				}
				reenc = func(e *Encoder) error { return e.EncodeElites(m) }
			case MsgReport:
				m, err := DecodeReport(payload)
				if err != nil {
					requireWireError(t, err)
					return
				}
				reenc = func(e *Encoder) error { return e.EncodeReport(m) }
			case MsgFrontReq, MsgSnapshotReq, MsgExit:
				if err := DecodeControl(typ, payload); err != nil {
					requireWireError(t, err)
					return
				}
				ct := typ
				reenc = func(e *Encoder) error { return e.EncodeControl(ct) }
			case MsgFront:
				m, err := DecodeFront(payload)
				if err != nil {
					requireWireError(t, err)
					return
				}
				reenc = func(e *Encoder) error { return e.EncodeFront(m) }
			case MsgSnapshot:
				m, err := DecodeSnapshot(payload)
				if err != nil {
					requireWireError(t, err)
					return
				}
				reenc = func(e *Encoder) error { return e.EncodeSnapshot(m) }
			case MsgAbort:
				m, err := DecodeAbort(payload)
				if err != nil {
					requireWireError(t, err)
					return
				}
				reenc = func(e *Encoder) error { return e.EncodeAbort(m) }
			}
			// Canonical re-encode must reproduce the accepted frame
			// byte for byte (length prefix + type + payload).
			var buf bytes.Buffer
			if err := reenc(NewEncoder(&buf, nil)); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			got := buf.Bytes()
			if MsgType(got[4]) != typ || !bytes.Equal(got[5:], payload) {
				t.Fatalf("re-encode differs for %v:\n got %v\nwant %v", typ, got[5:], payload)
			}
		}
	})
}

func requireWireError(t *testing.T, err error) {
	t.Helper()
	var werr *WireError
	if !errors.As(err, &werr) {
		t.Fatalf("decode error is %T, want *WireError: %v", err, err)
	}
}
