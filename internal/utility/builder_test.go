package utility

import (
	"errors"
	"math"
	"testing"
)

func TestFromBreakpointsBasic(t *testing.T) {
	f, err := FromBreakpoints(10, []Breakpoint{
		{T: 0, Frac: 1},
		{T: 10, Frac: 1},
		{T: 30, Frac: 0.5},
		{T: 60, Frac: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Value(0); got != 10 {
		t.Errorf("Value(0) = %v", got)
	}
	if got := f.Value(10); got != 10 {
		t.Errorf("Value(10) = %v", got)
	}
	if got := f.Value(20); math.Abs(got-7.5) > 1e-12 {
		t.Errorf("Value(20) = %v, want 7.5", got)
	}
	if got := f.Value(100); got != 0 {
		t.Errorf("Value(100) = %v", got)
	}
}

func TestFromBreakpointsLeadingPlateau(t *testing.T) {
	f, err := FromBreakpoints(4, []Breakpoint{
		{T: 5, Frac: 0.8},
		{T: 15, Frac: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Value(0); math.Abs(got-3.2) > 1e-12 {
		t.Errorf("Value(0) = %v, want plateau at 3.2", got)
	}
	// Tail holds the last fraction.
	if got := f.Value(1000); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Value(tail) = %v, want 0.8", got)
	}
}

func TestFromBreakpointsSortsInput(t *testing.T) {
	f, err := FromBreakpoints(1, []Breakpoint{
		{T: 30, Frac: 0},
		{T: 0, Frac: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Value(0) != 1 {
		t.Fatal("unsorted input mishandled")
	}
}

func TestFromBreakpointsRejectsBadInput(t *testing.T) {
	if _, err := FromBreakpoints(1, []Breakpoint{{T: 0, Frac: 1}}); err == nil {
		t.Error("single breakpoint accepted")
	}
	if _, err := FromBreakpoints(1, []Breakpoint{{T: -1, Frac: 1}, {T: 5, Frac: 0}}); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := FromBreakpoints(1, []Breakpoint{{T: 0, Frac: 1}, {T: 0, Frac: 0.5}}); err == nil {
		t.Error("duplicate time accepted")
	}
	_, err := FromBreakpoints(1, []Breakpoint{{T: 0, Frac: 0.5}, {T: 5, Frac: 0.9}})
	if !errors.Is(err, ErrNotMonotone) {
		t.Errorf("rising fractions: err = %v", err)
	}
}
