package utility

import (
	"fmt"
	"sort"
)

// Breakpoint anchors a utility fraction at a time offset from arrival.
type Breakpoint struct {
	// T is the time since arrival in seconds.
	T float64
	// Frac is the fraction of priority earned at completion time T.
	Frac float64
}

// FromBreakpoints builds a piecewise-linear monotone TUF through the
// given (time, fraction) anchors: utility starts at the first anchor's
// fraction, interpolates linearly between anchors, and stays at the last
// anchor's fraction afterwards. Anchors are sorted by time; fractions
// must be non-increasing in time, within [0,1], and times non-negative
// with no duplicates.
func FromBreakpoints(priority float64, points []Breakpoint) (*Function, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("utility: need at least 2 breakpoints, got %d", len(points))
	}
	ps := append([]Breakpoint(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].T < ps[j].T })
	if ps[0].T < 0 {
		return nil, fmt.Errorf("utility: breakpoint time %v negative", ps[0].T)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].T == ps[i-1].T {
			return nil, fmt.Errorf("utility: duplicate breakpoint time %v", ps[i].T)
		}
		if ps[i].Frac > ps[i-1].Frac {
			return nil, fmt.Errorf("%w: fraction rises from %v to %v at t=%v",
				ErrNotMonotone, ps[i-1].Frac, ps[i].Frac, ps[i].T)
		}
	}
	var segs []Segment
	// Leading plateau from 0 to the first anchor, if it starts after 0.
	if ps[0].T > 0 {
		segs = append(segs, Segment{Duration: ps[0].T, StartFrac: ps[0].Frac, EndFrac: ps[0].Frac, Shape: Constant})
	}
	for i := 1; i < len(ps); i++ {
		shape := Linear
		if ps[i].Frac == ps[i-1].Frac {
			shape = Constant
		}
		segs = append(segs, Segment{
			Duration:  ps[i].T - ps[i-1].T,
			StartFrac: ps[i-1].Frac,
			EndFrac:   ps[i].Frac,
			Shape:     shape,
		})
	}
	return New(priority, ps[len(ps)-1].Frac, segs...)
}
