package utility

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"tradeoff/internal/rng"
)

func TestValidateRejectsBadPriority(t *testing.T) {
	for _, p := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := New(p, 0, Segment{Duration: 1, StartFrac: 1, EndFrac: 1, Shape: Constant}); err == nil {
			t.Errorf("priority %v accepted", p)
		}
	}
}

func TestValidateRejectsNoSegments(t *testing.T) {
	if _, err := New(1, 0); err == nil {
		t.Fatal("empty segment list accepted")
	}
}

func TestValidateRejectsRisingSegment(t *testing.T) {
	_, err := New(1, 0, Segment{Duration: 1, StartFrac: 0.5, EndFrac: 0.8, Shape: Linear})
	if !errors.Is(err, ErrNotMonotone) {
		t.Fatalf("rising segment: err = %v, want ErrNotMonotone", err)
	}
}

func TestValidateRejectsRisingBoundary(t *testing.T) {
	_, err := New(1, 0,
		Segment{Duration: 1, StartFrac: 1, EndFrac: 0.3, Shape: Linear},
		Segment{Duration: 1, StartFrac: 0.9, EndFrac: 0.1, Shape: Linear},
	)
	if !errors.Is(err, ErrNotMonotone) {
		t.Fatalf("rising boundary: err = %v, want ErrNotMonotone", err)
	}
}

func TestValidateRejectsRisingTail(t *testing.T) {
	_, err := New(1, 0.5, Segment{Duration: 1, StartFrac: 1, EndFrac: 0.2, Shape: Linear})
	if !errors.Is(err, ErrNotMonotone) {
		t.Fatalf("rising tail: err = %v, want ErrNotMonotone", err)
	}
}

func TestValidateRejectsExponentialToZero(t *testing.T) {
	if _, err := New(1, 0, Segment{Duration: 1, StartFrac: 1, EndFrac: 0, Shape: Exponential}); err == nil {
		t.Fatal("exponential segment reaching zero accepted")
	}
}

func TestValidateRejectsBadDurations(t *testing.T) {
	for _, d := range []float64{0, -2, math.NaN(), math.Inf(1)} {
		if _, err := New(1, 0, Segment{Duration: d, StartFrac: 1, EndFrac: 1, Shape: Constant}); err == nil {
			t.Errorf("duration %v accepted", d)
		}
	}
}

func TestValidateRejectsNonConstantConstant(t *testing.T) {
	if _, err := New(1, 0, Segment{Duration: 1, StartFrac: 1, EndFrac: 0.5, Shape: Constant}); err == nil {
		t.Fatal("constant segment with differing endpoints accepted")
	}
}

func TestValidateRejectsUnknownShape(t *testing.T) {
	if _, err := New(1, 0, Segment{Duration: 1, StartFrac: 1, EndFrac: 1, Shape: Shape(42)}); err == nil {
		t.Fatal("unknown shape accepted")
	}
}

func TestValidateRejectsFractionsOutOfRange(t *testing.T) {
	if _, err := New(1, 0, Segment{Duration: 1, StartFrac: 1.2, EndFrac: 1, Shape: Linear}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	if _, err := New(1, -0.1, Segment{Duration: 1, StartFrac: 1, EndFrac: 1, Shape: Constant}); err == nil {
		t.Fatal("tail fraction < 0 accepted")
	}
}

func TestFigure1Values(t *testing.T) {
	f := Figure1()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// The two calibration points the paper reads off Fig. 1.
	if got := f.Value(20); got != 12 {
		t.Errorf("Value(20) = %v, want 12", got)
	}
	if got := f.Value(47); got != 7 {
		t.Errorf("Value(47) = %v, want 7", got)
	}
	if got := f.Value(0); got != 15 {
		t.Errorf("Value(0) = %v, want 15", got)
	}
	if got := f.Value(1000); got != 0 {
		t.Errorf("Value(1000) = %v, want 0", got)
	}
}

func TestLinearDecay(t *testing.T) {
	f := LinearDecay(10, 100)
	if got := f.Value(0); got != 10 {
		t.Errorf("Value(0) = %v", got)
	}
	if got := f.Value(50); math.Abs(got-5) > 1e-12 {
		t.Errorf("Value(50) = %v, want 5", got)
	}
	if got := f.Value(100); got != 0 {
		t.Errorf("Value(100) = %v, want 0", got)
	}
}

func TestStepDeadline(t *testing.T) {
	f := StepDeadline(8, 60)
	if f.Value(59.999) != 8 {
		t.Error("utility before deadline should be full priority")
	}
	if f.Value(60) != 0 {
		t.Error("utility at deadline should be zero")
	}
}

func TestExponentialDecay(t *testing.T) {
	f := ExponentialDecay(10, 100, 0.1)
	if math.Abs(f.Value(0)-10) > 1e-12 {
		t.Errorf("Value(0) = %v", f.Value(0))
	}
	if got := f.Value(100); math.Abs(got-0) > 1e-12 {
		t.Errorf("Value(100) = %v, want 0 (tail)", got)
	}
	// Midpoint of a geometric decay from 1 to 0.1 is sqrt(0.1)*10.
	if got, want := f.Value(50), 10*math.Sqrt(0.1); math.Abs(got-want) > 1e-9 {
		t.Errorf("Value(50) = %v, want %v", got, want)
	}
}

func TestValueNegativeElapsed(t *testing.T) {
	f := LinearDecay(10, 100)
	if f.Value(-5) != f.Value(0) {
		t.Fatal("negative elapsed should clamp to 0")
	}
}

func TestMonotoneProperty(t *testing.T) {
	// Any validated function must be non-increasing; probe with random
	// multi-segment functions and random evaluation pairs.
	src := rng.New(42)
	for trial := 0; trial < 200; trial++ {
		f := randomFunction(src)
		if err := f.Validate(); err != nil {
			t.Fatalf("randomFunction produced invalid TUF: %v", err)
		}
		h := f.Horizon()
		prevT, prevV := 0.0, f.Value(0)
		for i := 0; i < 50; i++ {
			dt := src.Range(0, h*1.2)
			if dt < prevT {
				continue
			}
			v := f.Value(dt)
			if v > prevV+1e-9 {
				t.Fatalf("function increased: V(%v)=%v > V(%v)=%v", dt, v, prevT, prevV)
			}
			prevT, prevV = dt, v
		}
	}
}

// randomFunction builds a random valid monotone TUF.
func randomFunction(src *rng.Source) *Function {
	n := 1 + src.Intn(4)
	segs := make([]Segment, 0, n)
	cur := 1.0
	for i := 0; i < n; i++ {
		end := cur * src.Range(0.2, 1.0)
		shape := Shape(src.Intn(3))
		switch shape {
		case Constant:
			end = cur
		case Linear:
			// end stays as drawn; any value in (0, cur] is valid.
		case Exponential:
			if end <= 0 {
				end = cur * 0.5
			}
		}
		segs = append(segs, Segment{
			Duration:  src.Range(1, 50),
			StartFrac: cur,
			EndFrac:   end,
			Shape:     shape,
		})
		cur = end * src.Range(0.5, 1.0) // allow drops at boundaries
		if i < n-1 {
			segs[len(segs)-1].EndFrac = end
		}
		cur = end
	}
	f, err := New(src.Range(1, 20), 0, segs...)
	if err != nil {
		panic(err)
	}
	return f
}

func TestValueWithinBounds(t *testing.T) {
	check := func(seed uint32, elapsedRaw float64) bool {
		src := rng.New(uint64(seed))
		f := randomFunction(src)
		elapsed := math.Abs(math.Mod(elapsedRaw, 1000))
		v := f.Value(elapsed)
		return v >= 0 && v <= f.MaxValue()+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxValueAndHorizon(t *testing.T) {
	f := Figure1()
	if f.MaxValue() != 15 {
		t.Fatalf("MaxValue = %v", f.MaxValue())
	}
	if f.Horizon() != 60 {
		t.Fatalf("Horizon = %v", f.Horizon())
	}
}

func TestCloneIndependent(t *testing.T) {
	f := Figure1()
	c := f.Clone()
	c.Segments[0].Duration = 999
	c.Priority = 1
	if f.Segments[0].Duration == 999 || f.Priority == 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestShapeString(t *testing.T) {
	shapes := []Shape{Constant, Linear, Exponential}
	want := []string{"constant", "linear", "exponential"}
	for i, s := range shapes {
		if s.String() != want[i] {
			t.Errorf("Shape(%d).String() = %q, want %q", s, s.String(), want[i])
		}
	}
	if Shape(9).String() == "" {
		t.Error("unknown shape empty string")
	}
}

func BenchmarkValue(b *testing.B) {
	f := Figure1()
	for i := 0; i < b.N; i++ {
		_ = f.Value(float64(i % 80))
	}
}
