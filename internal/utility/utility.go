// Package utility implements the time-utility functions (TUFs) of the
// paper's §IV-B1, following the model of Briceno et al. (HCW 2011):
// every task is assigned a monotonically decreasing function of its
// completion time built from three ingredients —
//
//   - priority: the maximum utility the task can earn,
//   - urgency: how quickly utility decays,
//   - utility characteristic class: a partition of time into discrete
//     intervals, each holding beginning/ending percentages of the maximum
//     priority and a shape controlling the decay inside the interval.
//
// A Function is a priority plus an ordered list of segments; evaluating
// it at the time elapsed between a task's arrival and its completion
// yields the utility earned. Tasks with hard deadlines are modeled by
// functions that decay to zero at the deadline.
package utility

import (
	"errors"
	"fmt"
	"math"
)

// Shape selects how utility decays inside a segment.
type Shape int

const (
	// Constant holds the segment's start fraction for its whole duration
	// (plateaus, as in the paper's Fig. 1).
	Constant Shape = iota
	// Linear interpolates from the start fraction to the end fraction.
	Linear
	// Exponential decays geometrically from the start fraction to the end
	// fraction (both must be positive).
	Exponential
)

func (s Shape) String() string {
	switch s {
	case Constant:
		return "constant"
	case Linear:
		return "linear"
	case Exponential:
		return "exponential"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Segment is one interval of a utility characteristic class. Fractions
// are of the function's priority; Duration is in the same time unit as
// task completion times (seconds throughout this repository).
type Segment struct {
	Duration  float64
	StartFrac float64
	EndFrac   float64
	Shape     Shape
}

// Function is a complete time-utility function. The zero value is not
// valid; use New or a preset and check Validate.
type Function struct {
	// Priority is the maximum utility the task could earn (the paper's
	// "how important a task is").
	Priority float64
	// Segments partition time after arrival. Time past the last segment
	// earns TailFrac × Priority.
	Segments []Segment
	// TailFrac is the fraction earned after all segments have elapsed
	// (commonly 0; hard-deadline tasks always use 0).
	TailFrac float64
}

// New constructs and validates a Function.
func New(priority float64, tailFrac float64, segments ...Segment) (*Function, error) {
	f := &Function{Priority: priority, Segments: segments, TailFrac: tailFrac}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// ErrNotMonotone is returned by Validate for functions that would
// increase somewhere.
var ErrNotMonotone = errors.New("utility: function is not monotonically decreasing")

// Validate checks that the function is well formed and monotonically
// non-increasing: priority positive; durations positive; fractions within
// [0,1]; within each segment EndFrac ≤ StartFrac; across segment
// boundaries the next StartFrac does not exceed the previous EndFrac; the
// tail does not exceed the last EndFrac; and Exponential segments have
// positive endpoints.
func (f *Function) Validate() error {
	if !(f.Priority > 0) || math.IsInf(f.Priority, 0) || math.IsNaN(f.Priority) {
		return fmt.Errorf("utility: priority %v, want finite > 0", f.Priority)
	}
	if len(f.Segments) == 0 {
		return fmt.Errorf("utility: function needs at least one segment")
	}
	if f.TailFrac < 0 || f.TailFrac > 1 {
		return fmt.Errorf("utility: tail fraction %v outside [0,1]", f.TailFrac)
	}
	prevEnd := 1.0
	for i, seg := range f.Segments {
		if !(seg.Duration > 0) || math.IsInf(seg.Duration, 0) || math.IsNaN(seg.Duration) {
			return fmt.Errorf("utility: segment %d duration %v, want finite > 0", i, seg.Duration)
		}
		if seg.StartFrac < 0 || seg.StartFrac > 1 || seg.EndFrac < 0 || seg.EndFrac > 1 {
			return fmt.Errorf("utility: segment %d fractions (%v, %v) outside [0,1]", i, seg.StartFrac, seg.EndFrac)
		}
		if seg.EndFrac > seg.StartFrac {
			return fmt.Errorf("%w: segment %d rises from %v to %v", ErrNotMonotone, i, seg.StartFrac, seg.EndFrac)
		}
		if seg.StartFrac > prevEnd {
			return fmt.Errorf("%w: segment %d starts at %v above previous end %v", ErrNotMonotone, i, seg.StartFrac, prevEnd)
		}
		if seg.Shape == Exponential && (seg.StartFrac <= 0 || seg.EndFrac <= 0) {
			return fmt.Errorf("utility: segment %d is exponential but has a non-positive endpoint", i)
		}
		if seg.Shape == Constant && seg.EndFrac != seg.StartFrac {
			return fmt.Errorf("utility: segment %d is constant but start %v != end %v", i, seg.StartFrac, seg.EndFrac)
		}
		switch seg.Shape {
		case Constant, Linear, Exponential:
		default:
			return fmt.Errorf("utility: segment %d has unknown shape %d", i, seg.Shape)
		}
		prevEnd = seg.EndFrac
	}
	if f.TailFrac > prevEnd {
		return fmt.Errorf("%w: tail fraction %v above final segment end %v", ErrNotMonotone, f.TailFrac, prevEnd)
	}
	return nil
}

// Value returns the utility earned by a task that completes elapsed time
// units after its arrival (the paper's Υ evaluated at the completion
// time). Negative elapsed values are treated as zero; completion cannot
// precede arrival.
func (f *Function) Value(elapsed float64) float64 {
	if elapsed < 0 {
		elapsed = 0
	}
	t := elapsed
	for _, seg := range f.Segments {
		if t < seg.Duration {
			return f.Priority * segValue(seg, t)
		}
		t -= seg.Duration
	}
	return f.Priority * f.TailFrac
}

func segValue(seg Segment, t float64) float64 {
	switch seg.Shape {
	case Constant:
		return seg.StartFrac
	case Linear:
		return seg.StartFrac + (seg.EndFrac-seg.StartFrac)*(t/seg.Duration)
	case Exponential:
		// Geometric interpolation start * (end/start)^(t/d).
		return seg.StartFrac * math.Pow(seg.EndFrac/seg.StartFrac, t/seg.Duration)
	default:
		panic(fmt.Sprintf("utility: unknown shape %d", seg.Shape))
	}
}

// MaxValue returns the largest utility the function can award (value at
// completion immediately upon arrival).
func (f *Function) MaxValue() float64 {
	if len(f.Segments) == 0 {
		return 0
	}
	return f.Priority * f.Segments[0].StartFrac
}

// Horizon returns the total duration covered by the segments; beyond it
// the function is flat at TailFrac × Priority.
func (f *Function) Horizon() float64 {
	var d float64
	for _, seg := range f.Segments {
		d += seg.Duration
	}
	return d
}

// Clone returns a deep copy.
func (f *Function) Clone() *Function {
	return &Function{
		Priority: f.Priority,
		Segments: append([]Segment(nil), f.Segments...),
		TailFrac: f.TailFrac,
	}
}

// StepDeadline returns a hard-deadline TUF: full priority until the
// deadline, zero afterwards.
func StepDeadline(priority, deadline float64) *Function {
	f, err := New(priority, 0, Segment{Duration: deadline, StartFrac: 1, EndFrac: 1, Shape: Constant})
	if err != nil {
		panic(err) // only reachable with invalid arguments
	}
	return f
}

// LinearDecay returns a TUF that decays linearly from full priority to
// zero over the given horizon.
func LinearDecay(priority, horizon float64) *Function {
	f, err := New(priority, 0, Segment{Duration: horizon, StartFrac: 1, EndFrac: 0, Shape: Linear})
	if err != nil {
		panic(err)
	}
	return f
}

// ExponentialDecay returns a TUF that decays geometrically from full
// priority to floorFrac over the horizon, then drops to zero.
func ExponentialDecay(priority, horizon, floorFrac float64) *Function {
	f, err := New(priority, 0, Segment{Duration: horizon, StartFrac: 1, EndFrac: floorFrac, Shape: Exponential})
	if err != nil {
		panic(err)
	}
	return f
}

// Figure1 reproduces the paper's sample task time-utility function: a
// plateaued, monotonically decreasing function whose value is 12 units at
// completion time 20 and 7 units at completion time 47.
func Figure1() *Function {
	f, err := New(15, 0,
		Segment{Duration: 15, StartFrac: 1, EndFrac: 1, Shape: Constant},                 // 15 units until t=15
		Segment{Duration: 20, StartFrac: 12.0 / 15, EndFrac: 12.0 / 15, Shape: Constant}, // 12 units on [15,35)
		Segment{Duration: 25, StartFrac: 7.0 / 15, EndFrac: 7.0 / 15, Shape: Constant},   // 7 units on [35,60)
	)
	if err != nil {
		panic(err)
	}
	return f
}
