package utility

import (
	"fmt"
	"math"
)

// Table flattens a batch of Functions into contiguous parallel arrays so
// hot loops (schedule evaluation calls one TUF per simulated task) read
// segments from cache-friendly memory instead of chasing a *Function,
// its segment slice, and four fields per segment. Table.Value is
// bit-identical to Function.Value on the source function: it performs
// the same floating-point operations in the same order, only the data
// layout changes.
//
// A Table is immutable after construction and safe for concurrent use.
type Table struct {
	progs []tableProg
	segs  []tableSeg
}

// tableProg is one compiled function: a segment range plus the scalars
// Value needs after segment lookup.
type tableProg struct {
	off  int32
	n    int32
	prio float64
	tail float64
	// tailT is a conservative elapsed-time threshold: any elapsed >=
	// tailT is guaranteed to fall off the end of the segment walk, so
	// Value can return prio*tail without touching the segments. The
	// guard must never fire for an elapsed the walk would place inside
	// a segment: the walk subtracts durations with one rounding per
	// step, so its effective boundary sits within n·2^-52 (relative) of
	// the exact duration sum; a 1e-12 relative margin clears that for
	// any realistic segment count. Times below the threshold take the
	// walk, so the result is bit-identical either way.
	tailT float64
}

// tableSeg is one compiled segment. For Constant and Linear shapes aux
// holds EndFrac-StartFrac (zero for Constant), and the segment value is
// start + aux*(t/dur) — for Constant the product term is exactly +0, so
// the shared formula reproduces Function.Value bit for bit. For
// Exponential aux holds EndFrac/StartFrac and the value is
// start * Pow(aux, t/dur), again matching segValue's arithmetic.
type tableSeg struct {
	dur   float64
	start float64
	aux   float64
	exp   bool
}

// NewTable returns an empty table with capacity hints for n functions
// and totalSegs segments.
func NewTable(n, totalSegs int) *Table {
	return &Table{
		progs: make([]tableProg, 0, n),
		segs:  make([]tableSeg, 0, totalSegs),
	}
}

// Add compiles a validated function into the table and returns its id.
// The function is copied; later mutation of f does not affect the table.
func (tb *Table) Add(f *Function) (int, error) {
	if err := f.Validate(); err != nil {
		return 0, fmt.Errorf("utility: compiling invalid function: %w", err)
	}
	id := len(tb.progs)
	off := int32(len(tb.segs))
	var total float64
	for _, seg := range f.Segments {
		total += seg.Duration
		ts := tableSeg{dur: seg.Duration, start: seg.StartFrac}
		if seg.Shape == Exponential {
			ts.aux = seg.EndFrac / seg.StartFrac
			ts.exp = true
		} else {
			ts.aux = seg.EndFrac - seg.StartFrac
		}
		tb.segs = append(tb.segs, ts)
	}
	tb.progs = append(tb.progs, tableProg{
		off:   off,
		n:     int32(len(f.Segments)),
		prio:  f.Priority,
		tail:  f.TailFrac,
		tailT: total + total*1e-12,
	})
	return id, nil
}

// Len returns the number of compiled functions.
func (tb *Table) Len() int { return len(tb.progs) }

// TailThreshold returns the compiled function's tail guard: any elapsed
// time >= the threshold is guaranteed past every segment, and Value
// returns TailValue without walking the segments. Callers that hoist the
// guard (the typed evaluation kernel) stay bit-identical to Value as
// long as they use this exact threshold and TailValue's exact product.
func (tb *Table) TailThreshold(id int) float64 { return tb.progs[id].tailT }

// TailValue returns the utility earned past TailThreshold. It is the
// same single multiplication Value performs on its tail path, so a
// caller substituting TailValue for Value past the threshold is
// bit-identical.
func (tb *Table) TailValue(id int) float64 {
	p := &tb.progs[id]
	return p.prio * p.tail
}

// Value returns the utility earned by the id-th compiled function at the
// given elapsed time. It is bit-identical to calling Value on the
// function passed to Add.
func (tb *Table) Value(id int, elapsed float64) float64 {
	p := &tb.progs[id]
	t := elapsed
	if t < 0 {
		t = 0
	}
	if t >= p.tailT {
		// Past every segment with margin beyond the walk's worst-case
		// rounding (see tailT): identical to falling off the loop below.
		// On saturated systems most completions land here, so this guard
		// skips the segment walk for the overwhelming share of calls.
		return p.prio * p.tail
	}
	segs := tb.segs[p.off : p.off+p.n]
	for k := range segs {
		sg := &segs[k]
		if t < sg.dur {
			if sg.exp {
				// Same ops as segValue: start * (end/start)^(t/d).
				return p.prio * (sg.start * math.Pow(sg.aux, t/sg.dur))
			}
			// Same ops as segValue Linear; Constant has aux == 0 and
			// t/dur finite, so the product term is +0 and the sum is
			// exactly start.
			return p.prio * (sg.start + sg.aux*(t/sg.dur))
		}
		t -= sg.dur
	}
	return p.prio * p.tail
}
