package utility

import (
	"math"
	"testing"

	"tradeoff/internal/rng"
)

// randomTableFunction draws a valid function with 1-4 segments mixing
// all three shapes, sometimes with a non-zero tail (randomFunction in
// utility_test.go always uses tail 0).
func randomTableFunction(src *rng.Source) *Function {
	nseg := 1 + src.Intn(4)
	segs := make([]Segment, 0, nseg)
	frac := 0.2 + 0.8*src.Float64() // keep positive so Exponential stays legal
	for s := 0; s < nseg; s++ {
		end := frac * (0.1 + 0.9*src.Float64())
		seg := Segment{Duration: 0.5 + 100*src.Float64(), StartFrac: frac, EndFrac: end}
		switch src.Intn(3) {
		case 0:
			seg.Shape = Constant
			seg.EndFrac = seg.StartFrac
		case 1:
			seg.Shape = Linear
		default:
			seg.Shape = Exponential
		}
		segs = append(segs, seg)
		frac = seg.EndFrac
	}
	tail := 0.0
	if src.Bool(0.3) {
		tail = frac * src.Float64()
	}
	f, err := New(0.5+20*src.Float64(), tail, segs...)
	if err != nil {
		panic(err)
	}
	return f
}

// TestTableValueBitIdentical cross-checks Table.Value against
// Function.Value at random, boundary, negative, and far-tail times. The
// two must agree bit for bit: the table performs the same arithmetic on
// flattened data.
func TestTableValueBitIdentical(t *testing.T) {
	src := rng.New(1)
	tb := NewTable(0, 0)
	var fns []*Function
	for i := 0; i < 200; i++ {
		f := randomTableFunction(src)
		id, err := tb.Add(f)
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("Add returned id %d, want %d", id, i)
		}
		fns = append(fns, f)
	}
	if tb.Len() != len(fns) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(fns))
	}
	for id, f := range fns {
		horizon := f.Horizon()
		times := []float64{-5, -1e-9, 0, horizon, horizon * 2, math.Nextafter(horizon, 0)}
		var cum float64
		for _, seg := range f.Segments {
			times = append(times, cum, math.Nextafter(cum, math.Inf(1)), cum+seg.Duration/3)
			cum += seg.Duration
		}
		for trial := 0; trial < 50; trial++ {
			times = append(times, src.Float64()*horizon*1.2)
		}
		for _, at := range times {
			want := f.Value(at)
			got := tb.Value(id, at)
			if got != want {
				t.Fatalf("function %d at t=%v: table %v (%x) vs function %v (%x)",
					id, at, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// TestTableRejectsInvalid checks that Add validates.
func TestTableRejectsInvalid(t *testing.T) {
	tb := NewTable(1, 1)
	if _, err := tb.Add(&Function{Priority: -1}); err == nil {
		t.Fatal("invalid function compiled")
	}
}

// FuzzTableValue feeds arbitrary segment data and times; wherever the
// source function validates, the table must agree exactly.
func FuzzTableValue(f *testing.F) {
	f.Add(uint64(1), 25.0)
	f.Add(uint64(42), -3.0)
	f.Add(uint64(7), 1e9)
	f.Fuzz(func(t *testing.T, seed uint64, at float64) {
		if math.IsNaN(at) {
			return
		}
		src := rng.New(seed)
		fn := randomTableFunction(src)
		tb := NewTable(1, len(fn.Segments))
		id, err := tb.Add(fn)
		if err != nil {
			t.Fatal(err)
		}
		want, got := fn.Value(at), tb.Value(id, at)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("t=%v: table %v vs function %v", at, got, want)
		}
	})
}
