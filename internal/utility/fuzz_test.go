package utility

import (
	"math"
	"testing"
)

// FuzzFunctionMonotone builds two-segment functions from fuzzed
// parameters; every function Validate accepts must be monotonically
// non-increasing and bounded by [0, MaxValue].
func FuzzFunctionMonotone(f *testing.F) {
	f.Add(10.0, 5.0, 0.8, 7.0, 0.3, 12.0, 30.0)
	f.Add(1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 2.0)
	f.Fuzz(func(t *testing.T, priority, d1, frac1, d2, frac2, t1, t2 float64) {
		fn := &Function{
			Priority: priority,
			Segments: []Segment{
				{Duration: d1, StartFrac: 1, EndFrac: frac1, Shape: Linear},
				{Duration: d2, StartFrac: frac1, EndFrac: frac2, Shape: Linear},
			},
		}
		if fn.Validate() != nil {
			return
		}
		a := math.Abs(math.Mod(t1, 1000))
		b := math.Abs(math.Mod(t2, 1000))
		if a > b {
			a, b = b, a
		}
		va, vb := fn.Value(a), fn.Value(b)
		if vb > va+1e-9 {
			t.Fatalf("V(%v)=%v > V(%v)=%v", b, vb, a, va)
		}
		if va < 0 || va > fn.MaxValue()+1e-9 {
			t.Fatalf("value %v outside [0, %v]", va, fn.MaxValue())
		}
	})
}
