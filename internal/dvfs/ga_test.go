package dvfs

import (
	"testing"

	"tradeoff/internal/heuristics"
	"tradeoff/internal/moea"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

func newGA(t testing.TB, tasks int, cfg GAConfig, seed uint64) *GA {
	t.Helper()
	e, _ := newDVFS(t, tasks)
	ga, err := NewGA(e, cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ga
}

func TestGAConfigValidation(t *testing.T) {
	e, _ := newDVFS(t, 10)
	if _, err := NewGA(e, GAConfig{PopulationSize: 5}, rng.New(1)); err == nil {
		t.Error("odd population accepted")
	}
	if _, err := NewGA(e, GAConfig{MutationRate: 2}, rng.New(1)); err == nil {
		t.Error("bad mutation rate accepted")
	}
	if _, err := NewGA(e, GAConfig{}, nil); err == nil {
		t.Error("nil source accepted")
	}
	bad := sched.NewAllocation(3)
	if _, err := NewGA(e, GAConfig{Seeds: []*sched.Allocation{bad}}, rng.New(1)); err == nil {
		t.Error("invalid seed accepted")
	}
}

func TestGAPopulationStaysValid(t *testing.T) {
	ga := newGA(t, 40, GAConfig{PopulationSize: 12, MutationRate: 0.5}, 2)
	for g := 0; g < 15; g++ {
		ga.Step()
		for i := range ga.pop {
			ind := &ga.pop[i]
			if err := ga.eval.Validate(ind.Alloc, ind.PStates); err != nil {
				t.Fatalf("gen %d individual %d: %v", g, i, err)
			}
		}
	}
	if ga.Generation() != 15 {
		t.Fatalf("Generation = %d", ga.Generation())
	}
}

func TestGADeterministic(t *testing.T) {
	run := func() [][]float64 {
		ga := newGA(t, 30, GAConfig{PopulationSize: 10}, 3)
		ga.Run(10)
		return ga.FrontPoints()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic front size")
	}
	for i := range a {
		if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
			t.Fatal("nondeterministic front")
		}
	}
}

func TestGAFrontMutuallyNondominated(t *testing.T) {
	ga := newGA(t, 40, GAConfig{PopulationSize: 16}, 4)
	ga.Run(15)
	sp := moea.UtilityEnergySpace()
	front := ga.FrontPoints()
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	for i := range front {
		for j := range front {
			if i != j && sp.Dominates(front[i], front[j]) {
				t.Fatal("front contains dominated point")
			}
		}
	}
}

func TestGAReachesBelowFullSpeedMinimumEnergy(t *testing.T) {
	// The joint GA can throttle: its minimum energy should undercut the
	// best the machine-assignment-only GA can do at full speed.
	e, base := newDVFS(t, 60)
	seed := heuristics.BuildMinEnergy(base)

	plain, err := nsga2.New(base, nsga2.Config{PopulationSize: 20, Seeds: []*sched.Allocation{seed}}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	plain.Run(30)
	minPlain := minEnergy(plain.FrontPoints())

	ga, err := NewGA(e, GAConfig{PopulationSize: 20, Seeds: []*sched.Allocation{seed}}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	ga.Run(30)
	minJoint := minEnergy(ga.FrontPoints())

	if !(minJoint < minPlain) {
		t.Fatalf("joint GA min energy %v not below full-speed GA %v", minJoint, minPlain)
	}
}

func minEnergy(points [][]float64) float64 {
	best := points[0][1]
	for _, p := range points {
		if p[1] < best {
			best = p[1]
		}
	}
	return best
}

func TestGAParetoFrontCopies(t *testing.T) {
	ga := newGA(t, 20, GAConfig{PopulationSize: 8}, 6)
	front := ga.ParetoFront()
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	front[0].Alloc.Machine[0] = -99
	front[0].PStates[0] = -99
	for i := range ga.pop {
		if ga.pop[i].Alloc.Machine[0] == -99 || ga.pop[i].PStates[0] == -99 {
			t.Fatal("ParetoFront exposes internal state")
		}
	}
}

func BenchmarkGAStep100(b *testing.B) {
	e, _ := newDVFS(b, 100)
	ga, err := NewGA(e, GAConfig{PopulationSize: 50}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ga.Step()
	}
}
