package dvfs

import (
	"fmt"
	"sort"

	"tradeoff/internal/moea"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// A DVFS-aware NSGA-II: the chromosome extends the paper's gene (machine
// assignment + global scheduling order) with a per-task P-state, so the
// search explores machine placement, ordering, and frequency scaling
// jointly. Crossover swaps a contiguous gene segment across all three
// fields; mutation additionally perturbs one gene's P-state.

// Individual is one joint chromosome with its cached evaluation.
type Individual struct {
	Alloc      *sched.Allocation
	PStates    []int
	Objectives []float64 // {utility, energy}
	Rank       int
	Crowding   float64
}

// Clone deep-copies the individual.
func (ind Individual) Clone() Individual {
	return Individual{
		Alloc:      ind.Alloc.Clone(),
		PStates:    append([]int(nil), ind.PStates...),
		Objectives: append([]float64(nil), ind.Objectives...),
		Rank:       ind.Rank,
		Crowding:   ind.Crowding,
	}
}

// GAConfig parameterizes the joint GA.
type GAConfig struct {
	// PopulationSize must be even and >= 2. Default 100.
	PopulationSize int
	// MutationRate is the per-offspring mutation probability. Default 0.1.
	MutationRate float64
	// Seeds are base allocations injected at full speed (P0).
	Seeds []*sched.Allocation
}

func (c *GAConfig) fillAndValidate() error {
	if c.PopulationSize == 0 {
		c.PopulationSize = 100
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.1
	}
	if c.PopulationSize < 2 || c.PopulationSize%2 != 0 {
		return fmt.Errorf("dvfs: population size %d, want even and >= 2", c.PopulationSize)
	}
	if c.MutationRate < 0 || c.MutationRate > 1 {
		return fmt.Errorf("dvfs: mutation rate %v outside [0,1]", c.MutationRate)
	}
	return nil
}

// GA evolves joint (allocation, P-state) chromosomes.
type GA struct {
	cfg   GAConfig
	eval  *Evaluator
	space moea.Space
	src   *rng.Source

	pop        []Individual
	generation int
}

// NewGA builds the initial population: seeds at full speed, the rest
// random in all three gene fields.
func NewGA(eval *Evaluator, cfg GAConfig, src *rng.Source) (*GA, error) {
	if err := cfg.fillAndValidate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("dvfs: nil random source")
	}
	g := &GA{cfg: cfg, eval: eval, space: moea.UtilityEnergySpace(), src: src}
	base := eval.Base()
	n := base.NumTasks()
	for _, s := range cfg.Seeds {
		if len(g.pop) == cfg.PopulationSize {
			break
		}
		if err := base.Validate(s); err != nil {
			return nil, fmt.Errorf("dvfs: invalid seed: %w", err)
		}
		g.pop = append(g.pop, Individual{Alloc: s.Clone(), PStates: make([]int, n)})
	}
	for len(g.pop) < cfg.PopulationSize {
		ps := make([]int, n)
		for i := range ps {
			ps[i] = src.Intn(eval.NumStates())
		}
		g.pop = append(g.pop, Individual{Alloc: base.RandomAllocation(src), PStates: ps})
	}
	for i := range g.pop {
		g.evaluate(&g.pop[i])
	}
	g.rank(g.pop)
	return g, nil
}

// Generation returns the number of completed generations.
func (g *GA) Generation() int { return g.generation }

func (g *GA) evaluate(ind *Individual) {
	ev := g.eval.Evaluate(ind.Alloc, ind.PStates)
	ind.Objectives = []float64{ev.Utility, ev.Energy}
}

// FrontPoints returns the rank-1 objective vectors sorted by descending
// utility.
func (g *GA) FrontPoints() [][]float64 {
	var out [][]float64
	for _, ind := range g.pop {
		if ind.Rank == 1 {
			out = append(out, append([]float64(nil), ind.Objectives...))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] > out[j][0] })
	return out
}

// ParetoFront returns deep copies of the rank-1 individuals.
func (g *GA) ParetoFront() []Individual {
	var out []Individual
	for _, ind := range g.pop {
		if ind.Rank == 1 {
			out = append(out, ind.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Objectives[0] > out[j].Objectives[0] })
	return out
}

// Step advances one generation.
func (g *GA) Step() {
	n := g.cfg.PopulationSize
	offspring := make([]Individual, 0, n)
	for len(offspring) < n {
		p1 := g.pop[g.src.Intn(n)]
		p2 := g.pop[g.src.Intn(n)]
		c1, c2 := g.crossover(p1, p2)
		offspring = append(offspring, c1, c2)
	}
	offspring = offspring[:n]
	for i := range offspring {
		if g.src.Bool(g.cfg.MutationRate) {
			g.mutate(&offspring[i])
		}
		g.evaluate(&offspring[i])
	}
	meta := append(append(make([]Individual, 0, 2*n), g.pop...), offspring...)
	g.pop = g.selectSurvivors(meta, n)
	g.generation++
}

// Run advances the given number of generations.
func (g *GA) Run(generations int) {
	for i := 0; i < generations; i++ {
		g.Step()
	}
}

func (g *GA) crossover(p1, p2 Individual) (Individual, Individual) {
	n := p1.Alloc.Len()
	c1 := Individual{Alloc: p1.Alloc.Clone(), PStates: append([]int(nil), p1.PStates...)}
	c2 := Individual{Alloc: p2.Alloc.Clone(), PStates: append([]int(nil), p2.PStates...)}
	i := g.src.Intn(n)
	j := g.src.Intn(n)
	if i > j {
		i, j = j, i
	}
	for k := i; k <= j; k++ {
		c1.Alloc.Machine[k], c2.Alloc.Machine[k] = c2.Alloc.Machine[k], c1.Alloc.Machine[k]
		c1.Alloc.Order[k], c2.Alloc.Order[k] = c2.Alloc.Order[k], c1.Alloc.Order[k]
		c1.PStates[k], c2.PStates[k] = c2.PStates[k], c1.PStates[k]
	}
	repairOrder(c1.Alloc.Order)
	repairOrder(c2.Alloc.Order)
	return c1, c2
}

// repairOrder mirrors the nsga2 re-ranking repair (stable by value then
// index).
func repairOrder(ord []int32) {
	n := len(ord)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ord[idx[a]] < ord[idx[b]] })
	for pos, gene := range idx {
		ord[gene] = int32(pos)
	}
}

func (g *GA) mutate(ind *Individual) {
	base := g.eval.Base()
	n := ind.Alloc.Len()
	k := g.src.Intn(n)
	el := base.Eligible(base.Trace().Tasks[k].Type)
	ind.Alloc.Machine[k] = int32(el[g.src.Intn(len(el))])
	ind.PStates[k] = g.src.Intn(g.eval.NumStates())
	x, y := g.src.Intn(n), g.src.Intn(n)
	ind.Alloc.Order[x], ind.Alloc.Order[y] = ind.Alloc.Order[y], ind.Alloc.Order[x]
}

func (g *GA) rank(pop []Individual) {
	points := make([][]float64, len(pop))
	for i := range pop {
		points[i] = pop[i].Objectives
	}
	for rank, group := range g.space.FastNondominatedSort(points) {
		dist := g.space.CrowdingDistance(points, group)
		for k, i := range group {
			pop[i].Rank = rank + 1
			pop[i].Crowding = dist[k]
		}
	}
}

func (g *GA) selectSurvivors(meta []Individual, n int) []Individual {
	points := make([][]float64, len(meta))
	for i := range meta {
		points[i] = meta[i].Objectives
	}
	groups := g.space.FastNondominatedSort(points)
	next := make([]Individual, 0, n)
	for _, group := range groups {
		dist := g.space.CrowdingDistance(points, group)
		if len(next)+len(group) <= n {
			for _, i := range group {
				next = append(next, meta[i])
			}
			if len(next) == n {
				break
			}
			continue
		}
		rem := n - len(next)
		order := make([]int, len(group))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return dist[order[a]] > dist[order[b]] })
		for _, k := range order[:rem] {
			next = append(next, meta[group[k]])
		}
		break
	}
	g.rank(next)
	return next
}
