// Package dvfs implements the paper's first future-work item:
// incorporating dynamic voltage and frequency scaling into the trade-off
// analysis. Each machine exposes a set of P-states; running a task at a
// lower frequency stretches its execution time (ETC / f) and shrinks its
// power draw (static fraction + dynamic fraction × f^α, with α ≈ 3 for
// CMOS dynamic power).
//
// The package evaluates allocations extended with a per-task P-state
// choice, and provides a scalarized coordinate-descent optimizer that,
// sweeping the utility-vs-energy weight, turns any fixed NSGA-II
// allocation into a family of DVFS-refined solutions — extending the
// Pareto front beyond what machine assignment alone can reach.
package dvfs

import (
	"fmt"
	"math"

	"tradeoff/internal/sched"
)

// PState is one frequency step, relative to the machine's base frequency.
type PState struct {
	Name string
	// Freq is the relative frequency; 1 is the base, 0.5 half speed.
	Freq float64
}

// Profile describes the DVFS behaviour applied uniformly to all machines.
type Profile struct {
	States []PState
	// Alpha is the dynamic-power frequency exponent (≈3 for CMOS).
	Alpha float64
	// StaticFrac is the fraction of power unaffected by frequency.
	StaticFrac float64
}

// DefaultProfile returns a four-state profile resembling contemporary
// CPU governors: base frequency plus three throttled states.
func DefaultProfile() Profile {
	return Profile{
		States: []PState{
			{Name: "P0", Freq: 1.0},
			{Name: "P1", Freq: 0.85},
			{Name: "P2", Freq: 0.7},
			{Name: "P3", Freq: 0.55},
		},
		Alpha:      3,
		StaticFrac: 0.3,
	}
}

// Validate checks profile invariants.
func (p Profile) Validate() error {
	if len(p.States) == 0 {
		return fmt.Errorf("dvfs: profile has no P-states")
	}
	for i, st := range p.States {
		if !(st.Freq > 0) {
			return fmt.Errorf("dvfs: state %d frequency %v, want > 0", i, st.Freq)
		}
	}
	if p.Alpha < 1 {
		return fmt.Errorf("dvfs: alpha %v, want >= 1", p.Alpha)
	}
	if p.StaticFrac < 0 || p.StaticFrac >= 1 {
		return fmt.Errorf("dvfs: static fraction %v outside [0,1)", p.StaticFrac)
	}
	return nil
}

// timeScale returns the ETC multiplier of state i.
func (p Profile) timeScale(i int) float64 { return 1 / p.States[i].Freq }

// powerScale returns the EPC multiplier of state i.
func (p Profile) powerScale(i int) float64 {
	f := p.States[i].Freq
	return p.StaticFrac + (1-p.StaticFrac)*math.Pow(f, p.Alpha)
}

// EnergyScale returns the per-task energy multiplier of state i:
// timeScale × powerScale. States with EnergyScale < 1 save energy at the
// cost of stretched execution.
func (p Profile) EnergyScale(i int) float64 { return p.timeScale(i) * p.powerScale(i) }

// Evaluator evaluates DVFS-extended allocations against a base
// scheduling evaluator.
type Evaluator struct {
	base    *sched.Evaluator
	profile Profile
	tScale  []float64
	eScale  []float64
}

// NewEvaluator wraps a sched.Evaluator with a DVFS profile.
func NewEvaluator(base *sched.Evaluator, profile Profile) (*Evaluator, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	e := &Evaluator{base: base, profile: profile}
	for i := range profile.States {
		e.tScale = append(e.tScale, profile.timeScale(i))
		e.eScale = append(e.eScale, profile.EnergyScale(i))
	}
	return e, nil
}

// Profile returns the evaluator's DVFS profile.
func (e *Evaluator) Profile() Profile { return e.profile }

// Base returns the wrapped scheduling evaluator.
func (e *Evaluator) Base() *sched.Evaluator { return e.base }

// NumStates returns the number of P-states.
func (e *Evaluator) NumStates() int { return len(e.profile.States) }

// Validate checks a DVFS-extended allocation: the base allocation must be
// valid and every task must carry a P-state index in range.
func (e *Evaluator) Validate(a *sched.Allocation, pstates []int) error {
	if err := e.base.Validate(a); err != nil {
		return err
	}
	if len(pstates) != a.Len() {
		return fmt.Errorf("dvfs: %d p-states for %d tasks", len(pstates), a.Len())
	}
	for i, ps := range pstates {
		if ps < 0 || ps >= e.NumStates() {
			return fmt.Errorf("dvfs: task %d p-state %d out of range [0,%d)", i, ps, e.NumStates())
		}
	}
	return nil
}

// Evaluate simulates the allocation with per-task P-states.
func (e *Evaluator) Evaluate(a *sched.Allocation, pstates []int) sched.Evaluation {
	base := e.base
	n := base.NumTasks()
	seq := make([]int, n)
	for i := 0; i < n; i++ {
		seq[a.Order[i]] = i
	}
	ready := make([]float64, base.NumMachines())
	tasks := base.Trace().Tasks
	var ev sched.Evaluation
	for _, ti := range seq {
		m := a.Machine[ti]
		if m == sched.Dropped {
			continue
		}
		task := &tasks[ti]
		ps := pstates[ti]
		start := ready[m]
		if task.Arrival > start {
			start = task.Arrival
		}
		completion := start + base.ETCInstance(task.Type, int(m))*e.tScale[ps]
		ready[m] = completion
		ev.Utility += task.TUF.Value(completion - task.Arrival)
		ev.Energy += base.EECInstance(task.Type, int(m)) * e.eScale[ps]
		if completion > ev.Makespan {
			ev.Makespan = completion
		}
		ev.Completed++
	}
	return ev
}

// SweepUniform evaluates the allocation with every task forced into the
// same P-state, one evaluation per state, exposing the raw DVFS
// trade-off of a fixed assignment.
func (e *Evaluator) SweepUniform(a *sched.Allocation) []sched.Evaluation {
	out := make([]sched.Evaluation, e.NumStates())
	ps := make([]int, a.Len())
	for s := range out {
		for i := range ps {
			ps[i] = s
		}
		out[s] = e.Evaluate(a, ps)
	}
	return out
}

// OptimizeWeighted refines the per-task P-states of a fixed allocation by
// coordinate descent on the scalarized objective U − λ·E (λ in utility
// units per joule; larger λ favours energy savings). rounds bounds the
// number of full passes; descent stops early at a fixed point. It returns
// the chosen states and their evaluation.
func (e *Evaluator) OptimizeWeighted(a *sched.Allocation, lambda float64, rounds int) ([]int, sched.Evaluation) {
	n := a.Len()
	pstates := make([]int, n) // start at full speed
	best := e.Evaluate(a, pstates)
	score := best.Utility - lambda*best.Energy
	for r := 0; r < rounds; r++ {
		improved := false
		for i := 0; i < n; i++ {
			cur := pstates[i]
			for s := 0; s < e.NumStates(); s++ {
				if s == cur {
					continue
				}
				pstates[i] = s
				ev := e.Evaluate(a, pstates)
				if sc := ev.Utility - lambda*ev.Energy; sc > score {
					score, best, cur = sc, ev, s
					improved = true
				} else {
					pstates[i] = cur
				}
			}
		}
		if !improved {
			break
		}
	}
	return pstates, best
}

// ExtendFront runs OptimizeWeighted across a ladder of λ values, turning
// one allocation into a set of DVFS trade-off points (deduplicated by
// objective pair), sorted by increasing energy.
func (e *Evaluator) ExtendFront(a *sched.Allocation, lambdas []float64, rounds int) []sched.Evaluation {
	seen := map[[2]float64]bool{}
	var out []sched.Evaluation
	for _, l := range lambdas {
		_, ev := e.OptimizeWeighted(a, l, rounds)
		key := [2]float64{ev.Utility, ev.Energy}
		if !seen[key] {
			seen[key] = true
			out = append(out, ev)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Energy < out[j-1].Energy; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
