package dvfs

import (
	"math"
	"testing"

	"tradeoff/internal/data"
	"tradeoff/internal/heuristics"
	"tradeoff/internal/moea"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
	"tradeoff/internal/workload"
)

func newDVFS(t testing.TB, n int) (*Evaluator, *sched.Evaluator) {
	t.Helper()
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: n, Window: 900}, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	base, err := sched.NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(base, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	return e, base
}

func TestProfileValidate(t *testing.T) {
	bad := []Profile{
		{},
		{States: []PState{{Freq: 0}}, Alpha: 3},
		{States: []PState{{Freq: 1}}, Alpha: 0.5},
		{States: []PState{{Freq: 1}}, Alpha: 3, StaticFrac: 1},
		{States: []PState{{Freq: 1}}, Alpha: 3, StaticFrac: -0.1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
	if err := DefaultProfile().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScalesMonotone(t *testing.T) {
	p := DefaultProfile()
	// Lower frequency: slower (timeScale up) but cheaper per task
	// (EnergyScale down) as long as static power is modest.
	for i := 1; i < len(p.States); i++ {
		if !(p.timeScale(i) > p.timeScale(i-1)) {
			t.Fatalf("timeScale not increasing at state %d", i)
		}
		if !(p.EnergyScale(i) < p.EnergyScale(i-1)) {
			t.Fatalf("EnergyScale not decreasing at state %d", i)
		}
	}
	// Full speed is the identity.
	if p.timeScale(0) != 1 || math.Abs(p.EnergyScale(0)-1) > 1e-12 {
		t.Fatal("P0 should be the identity scale")
	}
}

func TestEvaluateFullSpeedMatchesBase(t *testing.T) {
	e, base := newDVFS(t, 80)
	a := base.RandomAllocation(rng.New(1))
	ps := make([]int, a.Len()) // all P0
	got := e.Evaluate(a, ps)
	want := base.Evaluate(a)
	if math.Abs(got.Utility-want.Utility) > 1e-9 || math.Abs(got.Energy-want.Energy) > 1e-9 ||
		math.Abs(got.Makespan-want.Makespan) > 1e-9 {
		t.Fatalf("P0 evaluation diverges from base: %+v vs %+v", got, want)
	}
}

func TestThrottlingSavesEnergyCostsUtility(t *testing.T) {
	e, base := newDVFS(t, 120)
	a := heuristics.BuildMaxUtility(base)
	sweep := e.SweepUniform(a)
	for i := 1; i < len(sweep); i++ {
		if !(sweep[i].Energy < sweep[i-1].Energy) {
			t.Fatalf("state %d did not reduce energy: %v -> %v", i, sweep[i-1].Energy, sweep[i].Energy)
		}
		if sweep[i].Utility > sweep[i-1].Utility+1e-9 {
			t.Fatalf("state %d increased utility while throttling", i)
		}
		if !(sweep[i].Makespan >= sweep[i-1].Makespan) {
			t.Fatalf("state %d shrank makespan while throttling", i)
		}
	}
}

func TestValidate(t *testing.T) {
	e, base := newDVFS(t, 20)
	a := base.RandomAllocation(rng.New(2))
	good := make([]int, a.Len())
	if err := e.Validate(a, good); err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(a, good[:5]); err == nil {
		t.Error("short p-state slice accepted")
	}
	bad := make([]int, a.Len())
	bad[3] = 99
	if err := e.Validate(a, bad); err == nil {
		t.Error("out-of-range p-state accepted")
	}
	badAlloc := a.Clone()
	badAlloc.Machine[0] = 999
	if err := e.Validate(badAlloc, good); err == nil {
		t.Error("invalid base allocation accepted")
	}
}

func TestOptimizeWeightedExtremes(t *testing.T) {
	e, base := newDVFS(t, 60)
	a := heuristics.BuildMaxUtility(base)
	// λ = 0: pure utility, should stay at (or match) full speed.
	psU, evU := e.OptimizeWeighted(a, 0, 3)
	full := e.Evaluate(a, make([]int, a.Len()))
	if evU.Utility < full.Utility-1e-9 {
		t.Fatalf("λ=0 optimization lost utility: %v < %v", evU.Utility, full.Utility)
	}
	// Huge λ: energy dominates; every task should throttle to the
	// cheapest state.
	psE, evE := e.OptimizeWeighted(a, 1e9, 5)
	last := e.NumStates() - 1
	for i, s := range psE {
		if s != last {
			t.Fatalf("task %d at state %d under energy-dominant λ, want %d", i, s, last)
		}
	}
	if !(evE.Energy < evU.Energy) {
		t.Fatal("energy-dominant optimization did not save energy")
	}
	if err := e.Validate(a, psU); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeWeightedNeverWorseThanScore(t *testing.T) {
	e, base := newDVFS(t, 40)
	a := base.RandomAllocation(rng.New(3))
	for _, lambda := range []float64{0, 1e-5, 1e-4, 1e-3} {
		_, ev := e.OptimizeWeighted(a, lambda, 3)
		start := e.Evaluate(a, make([]int, a.Len()))
		if ev.Utility-lambda*ev.Energy < start.Utility-lambda*start.Energy-1e-9 {
			t.Fatalf("λ=%v optimization worsened the scalarized objective", lambda)
		}
	}
}

func TestExtendFrontProducesTradeoffs(t *testing.T) {
	e, base := newDVFS(t, 60)
	a := heuristics.BuildMaxUtility(base)
	evs := e.ExtendFront(a, []float64{0, 1e-5, 1e-4, 1e-3, 1e-2}, 2)
	if len(evs) < 2 {
		t.Fatalf("front has %d points, want >= 2", len(evs))
	}
	// Sorted by energy and energy strictly increases with utility
	// (dedup guarantees distinct objective pairs).
	sp := moea.UtilityEnergySpace()
	for i := 1; i < len(evs); i++ {
		if evs[i].Energy < evs[i-1].Energy {
			t.Fatal("ExtendFront output not energy-sorted")
		}
	}
	// At least one pair must be mutually nondominated (a real trade-off).
	tradeoff := false
	for i := range evs {
		for j := i + 1; j < len(evs); j++ {
			pi := []float64{evs[i].Utility, evs[i].Energy}
			pj := []float64{evs[j].Utility, evs[j].Energy}
			if sp.Incomparable(pi, pj) {
				tradeoff = true
			}
		}
	}
	if !tradeoff {
		t.Fatal("ExtendFront produced no mutually nondominated pair")
	}
}

func TestDroppedTasksSkippedInDVFS(t *testing.T) {
	e, base := newDVFS(t, 20)
	base.AllowDropping = true
	a := base.RandomAllocation(rng.New(4))
	a.Machine[5] = sched.Dropped
	ps := make([]int, a.Len())
	ev := e.Evaluate(a, ps)
	if ev.Completed != a.Len()-1 {
		t.Fatalf("Completed = %d, want %d", ev.Completed, a.Len()-1)
	}
}

func BenchmarkDVFSEvaluate250(b *testing.B) {
	e, base := newDVFS(b, 250)
	a := base.RandomAllocation(rng.New(5))
	ps := make([]int, a.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Evaluate(a, ps)
	}
}

func BenchmarkOptimizeWeighted100(b *testing.B) {
	e, base := newDVFS(b, 100)
	a := heuristics.BuildMaxUtility(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = e.OptimizeWeighted(a, 1e-4, 1)
	}
}
