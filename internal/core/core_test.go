package core

import (
	"testing"

	"tradeoff/internal/data"
	"tradeoff/internal/heuristics"
	"tradeoff/internal/moea"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
	"tradeoff/internal/workload"
)

func newFramework(t testing.TB, n int) *Framework {
	t.Helper()
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: n, Window: 900}, rng.New(51))
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewRejectsInvalid(t *testing.T) {
	sys := data.RealSystem()
	bad := &workload.Trace{Window: 10}
	if _, err := New(sys, bad); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestOptimizeBasics(t *testing.T) {
	f := newFramework(t, 60)
	res, err := f.Optimize(Options{Generations: 30, PopulationSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if len(res.Allocations) != len(res.Front) {
		t.Fatal("allocations not aligned with front")
	}
	// Front sorted by energy and each allocation reproduces its point.
	for i, p := range res.Front {
		if i > 0 && p.Energy < res.Front[i-1].Energy {
			t.Fatal("front not energy-sorted")
		}
		ev, err := f.Evaluate(res.Allocations[i])
		if err != nil {
			t.Fatal(err)
		}
		if ev.Utility != p.Utility || ev.Energy != p.Energy {
			t.Fatalf("allocation %d does not reproduce front point", i)
		}
	}
	if res.Hypervolume <= 0 {
		t.Fatalf("hypervolume = %v", res.Hypervolume)
	}
	if res.Region.PeakIndex < 0 {
		t.Fatal("UPE region missing")
	}
}

func TestOptimizeRejectsBadOptions(t *testing.T) {
	f := newFramework(t, 20)
	if _, err := f.Optimize(Options{Generations: 0}); err == nil {
		t.Error("zero generations accepted")
	}
	if _, err := f.Optimize(Options{Generations: 5, PopulationSize: 7}); err == nil {
		t.Error("odd population accepted")
	}
	if _, err := f.Optimize(Options{Generations: 5, PopulationSize: 10, Checkpoints: []int{9}}); err == nil {
		t.Error("checkpoint beyond generations accepted")
	}
}

func TestOptimizeCheckpoints(t *testing.T) {
	f := newFramework(t, 40)
	res, err := f.Optimize(Options{Generations: 20, PopulationSize: 10, Checkpoints: []int{5, 10, 20}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) != 3 {
		t.Fatalf("%d checkpoints recorded", len(res.Checkpoints))
	}
	if res.Checkpoints[2].Generation != 20 {
		t.Fatal("final checkpoint generation wrong")
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	f := newFramework(t, 40)
	opts := Options{Generations: 15, PopulationSize: 10, RandomSeed: 3}
	a, err := f.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Front) != len(b.Front) {
		t.Fatal("nondeterministic front size")
	}
	for i := range a.Front {
		if a.Front[i] != b.Front[i] {
			t.Fatal("nondeterministic front")
		}
	}
}

func TestSeededOptimizeContainsSeedOrBetter(t *testing.T) {
	f := newFramework(t, 60)
	seed, err := f.Seed(heuristics.MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	seedEv, err := f.Evaluate(seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Optimize(Options{Generations: 10, PopulationSize: 10, Seeds: []heuristics.Heuristic{heuristics.MinEnergy}})
	if err != nil {
		t.Fatal(err)
	}
	// Elitism: the front's minimum energy can never exceed the seed's.
	if res.Front[0].Energy > seedEv.Energy+1e-9 {
		t.Fatalf("front min energy %v above seed energy %v", res.Front[0].Energy, seedEv.Energy)
	}
}

func TestEvaluateValidates(t *testing.T) {
	f := newFramework(t, 20)
	bad := sched.NewAllocation(3)
	if _, err := f.Evaluate(bad); err == nil {
		t.Fatal("invalid allocation accepted")
	}
}

func TestCompareSeeding(t *testing.T) {
	f := newFramework(t, 50)
	results, cmp, err := f.CompareSeeding(Options{Generations: 15, PopulationSize: 10, RandomSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 || len(cmp.Names) != 5 {
		t.Fatalf("expected 5 variants, got %d/%d", len(results), len(cmp.Names))
	}
	for name, r := range results {
		if len(r.Front) == 0 {
			t.Fatalf("variant %s has empty front", name)
		}
	}
	// Coverage matrix is square with zero diagonal.
	for i := range cmp.Coverage {
		if len(cmp.Coverage[i]) != 5 {
			t.Fatal("coverage matrix not square")
		}
		if cmp.Coverage[i][i] != 0 {
			t.Fatal("nonzero self-coverage")
		}
	}
}

func TestFrameworkAccessors(t *testing.T) {
	f := newFramework(t, 20)
	if f.System() == nil || f.Trace() == nil || f.Evaluator() == nil {
		t.Fatal("accessors returned nil")
	}
	sp := moea.UtilityEnergySpace()
	if sp.Dim() != 2 {
		t.Fatal("unexpected objective dimension")
	}
}

func TestOptimizeIslands(t *testing.T) {
	f := newFramework(t, 60)
	res, err := f.Optimize(Options{
		Generations:       20,
		PopulationSize:    10,
		Islands:           3,
		MigrationInterval: 5,
		Seeds:             []heuristics.Heuristic{heuristics.MinEnergy},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty island front")
	}
	for i := 1; i < len(res.Front); i++ {
		if res.Front[i].Energy < res.Front[i-1].Energy {
			t.Fatal("island front not energy-sorted")
		}
	}
	// Allocations reproduce their points.
	for i := range res.Front {
		ev, err := f.Evaluate(res.Allocations[i])
		if err != nil {
			t.Fatal(err)
		}
		if ev.Utility != res.Front[i].Utility || ev.Energy != res.Front[i].Energy {
			t.Fatalf("island allocation %d does not reproduce its point", i)
		}
	}
	if res.Hypervolume <= 0 {
		t.Fatal("no hypervolume")
	}
}

// TestOptimizeAsyncIslandsMatchesSync: the API-level async toggle is
// bit-identical to synchronous island stepping.
func TestOptimizeAsyncIslandsMatchesSync(t *testing.T) {
	f := newFramework(t, 50)
	opts := Options{
		Generations:       18,
		PopulationSize:    8,
		Islands:           3,
		MigrationInterval: 5,
		RandomSeed:        7,
	}
	sync, err := f.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.AsyncIslands = true
	async, err := f.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sync.Front) != len(async.Front) {
		t.Fatalf("front sizes differ: sync %d, async %d", len(sync.Front), len(async.Front))
	}
	for i := range sync.Front {
		if sync.Front[i] != async.Front[i] {
			t.Fatalf("front point %d differs: sync %+v, async %+v", i, sync.Front[i], async.Front[i])
		}
	}
	if sync.Hypervolume != async.Hypervolume {
		t.Fatal("hypervolumes differ")
	}
}

// TestOptimizeArchiveCompaction: ArchiveSize bounds the returned front
// through the ε-dominance archive while keeping the sort contract and
// point/allocation alignment.
func TestOptimizeArchiveCompaction(t *testing.T) {
	f := newFramework(t, 60)
	opts := Options{Generations: 25, PopulationSize: 20, RandomSeed: 4}
	full, err := f.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Front) < 4 {
		t.Skipf("front too small (%d points) to exercise compaction", len(full.Front))
	}
	opts.ArchiveSize = 3
	compact, err := f.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(compact.Front) > 3 {
		t.Fatalf("compacted front has %d points, want <= 3", len(compact.Front))
	}
	if len(compact.Front) == 0 {
		t.Fatal("compacted front empty")
	}
	if len(compact.Allocations) != len(compact.Front) {
		t.Fatal("allocations not aligned with compacted front")
	}
	fullSet := make(map[[2]float64]bool, len(full.Front))
	for _, p := range full.Front {
		fullSet[[2]float64{p.Utility, p.Energy}] = true
	}
	for i, p := range compact.Front {
		if i > 0 && p.Energy < compact.Front[i-1].Energy {
			t.Fatal("compacted front not energy-sorted")
		}
		if !fullSet[[2]float64{p.Utility, p.Energy}] {
			t.Fatalf("compacted point %d not drawn from the full front", i)
		}
		ev, err := f.Evaluate(compact.Allocations[i])
		if err != nil {
			t.Fatal(err)
		}
		if ev.Utility != p.Utility || ev.Energy != p.Energy {
			t.Fatalf("compacted allocation %d does not reproduce its point", i)
		}
	}

	// Explicit widths are honored; malformed widths are rejected.
	opts.ArchiveEpsilon = []float64{1, 1}
	if _, err := f.Optimize(opts); err != nil {
		t.Fatal(err)
	}
	opts.ArchiveEpsilon = []float64{1}
	if _, err := f.Optimize(opts); err == nil {
		t.Fatal("wrong-length ArchiveEpsilon accepted")
	}
	opts.ArchiveEpsilon = []float64{1, -2}
	if _, err := f.Optimize(opts); err == nil {
		t.Fatal("negative ArchiveEpsilon accepted")
	}
}

func TestOptimizeIslandsRejectsCheckpoints(t *testing.T) {
	f := newFramework(t, 20)
	_, err := f.Optimize(Options{Generations: 5, PopulationSize: 4, Islands: 2, Checkpoints: []int{3}})
	if err == nil {
		t.Fatal("checkpoints with islands accepted")
	}
}
