// Package core assembles the paper's analysis framework: given a
// heterogeneous computing system and a workload trace, it builds seeded
// NSGA-II populations, evolves them into Pareto fronts of (total utility
// earned, total energy consumed), and post-processes the fronts the way a
// system administrator would — locating the maximum utility-per-energy
// region and comparing seeding strategies.
//
// The package is the one-stop API a downstream user consumes; the root
// tradeoff package re-exports it.
package core

import (
	"fmt"
	"math"
	"sort"

	"tradeoff/internal/analysis"
	"tradeoff/internal/hcs"
	"tradeoff/internal/heuristics"
	"tradeoff/internal/moea"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/obs"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
	"tradeoff/internal/workload"
)

// Framework is a reusable analysis context for one system + trace pair.
type Framework struct {
	sys   *hcs.System
	trace *workload.Trace
	eval  *sched.Evaluator
}

// New validates the system and trace and returns a Framework.
func New(sys *hcs.System, trace *workload.Trace) (*Framework, error) {
	eval, err := sched.NewEvaluator(sys, trace)
	if err != nil {
		return nil, err
	}
	return &Framework{sys: sys, trace: trace, eval: eval}, nil
}

// System returns the framework's system.
func (f *Framework) System() *hcs.System { return f.sys }

// Trace returns the framework's trace.
func (f *Framework) Trace() *workload.Trace { return f.trace }

// Evaluator exposes the underlying schedule evaluator.
func (f *Framework) Evaluator() *sched.Evaluator { return f.eval }

// Seed builds one greedy seeding allocation.
func (f *Framework) Seed(h heuristics.Heuristic) (*sched.Allocation, error) {
	return h.Build(f.eval)
}

// Evaluate simulates an allocation with the machine-major kernel the
// NSGA-II engine evaluates with, so re-evaluating an allocation returned
// by Optimize reproduces its front point bit for bit.
func (f *Framework) Evaluate(a *sched.Allocation) (sched.Evaluation, error) {
	if err := f.eval.Validate(a); err != nil {
		return sched.Evaluation{}, err
	}
	return f.eval.NewDeltaSession().EvaluateFull(a, f.eval.NewContribs()), nil
}

// Options parameterizes an optimization run.
//
//detlint:optwire
type Options struct {
	// Generations to evolve. Must be > 0.
	Generations int
	// PopulationSize is NSGA-II's N (default 100, must be even).
	PopulationSize int
	// MutationRate is the per-offspring mutation probability (default 0.1).
	MutationRate float64
	// Seeds lists greedy heuristics whose allocations join the initial
	// population; empty means all-random.
	Seeds []heuristics.Heuristic
	// Checkpoints optionally records intermediate fronts at these
	// generation counts (must be nondecreasing and ≤ Generations).
	Checkpoints []int
	// RandomSeed drives all randomness (default 1).
	RandomSeed uint64
	// Workers bounds parallel fitness evaluation (0 = GOMAXPROCS).
	Workers int
	// UPETolerance is the relative band for the utility-per-energy
	// region (default 0.05).
	UPETolerance float64
	// Islands > 1 runs the island model: that many populations of
	// PopulationSize each, evolving in parallel with ring migration
	// every MigrationInterval generations. Checkpoints are not
	// supported with islands.
	Islands int
	// MigrationInterval is the island migration period (default 25).
	MigrationInterval int
	// AsyncIslands selects asynchronous steady-state island stepping:
	// each island advances on its own goroutine under a logical-clock
	// migration schedule with no per-generation barrier. Results and
	// telemetry are bit-identical to synchronous stepping; only
	// meaningful with Islands > 1. See internal/nsga2.
	AsyncIslands bool
	// ArchiveSize, when > 0, bounds the returned front: the final
	// rank-1 points are filtered through an ε-dominance archive keeping
	// at most ArchiveSize well-spread representatives (with their
	// allocations). Region and Hypervolume describe the compacted
	// front. Essential at 10^5+ tasks, where raw fronts can hold
	// thousands of near-duplicate points.
	ArchiveSize int
	// ArchiveEpsilon gives the per-objective ε box widths
	// (utility, energy) for ArchiveSize; empty derives each width from
	// the front's own extent divided by ArchiveSize.
	ArchiveEpsilon []float64
	// ArchiveSpillBudget, when > 0 (with ArchiveSize), compacts the
	// front through a disk-spilling streaming ε-archive instead of the
	// in-memory one: at most ArchiveSpillBudget points are held in
	// memory at a time and sorted runs spill to a temp file, keeping
	// million-point fronts within bounded memory. The ε-grid alone
	// bounds the result (no crowding prune), and outcomes are otherwise
	// duel-for-duel identical to the in-memory archive. See
	// internal/moea.NewStreamingArchive.
	ArchiveSpillBudget int
	// Resume, when non-nil, restores an island-model run from a
	// snapshot before evolving: the run continues from the snapshot's
	// generation up to Generations (the total target), bit-identically
	// to never having paused. Only meaningful with Islands > 1.
	Resume *nsga2.IslandsSnapshot
	// CaptureSnapshot records the island run's final state in
	// Result.FinalSnapshot, from which a later run (in-process or
	// distributed) can resume. Only meaningful with Islands > 1.
	CaptureSnapshot bool
	// CacheCapacity bounds the fitness-memoization cache: 0 picks the
	// engine default (4× the population), negative disables memoization.
	// Results are bit-identical for every setting; see internal/nsga2.
	CacheCapacity int
	// CacheVerify re-simulates every cache hit and panics on divergence.
	// Debug aid: it forfeits the cache's speedup.
	CacheVerify bool
	// MachineCacheCapacity bounds the machine-bucket memoization cache
	// beneath the chromosome cache: 0 picks the engine default (128× the
	// population), negative disables the level. Results are
	// bit-identical for every setting; see internal/nsga2.
	MachineCacheCapacity int
	// MachineCacheVerify re-simulates every machine-cache hit and panics
	// on divergence. Debug aid: it forfeits that level's speedup.
	MachineCacheVerify bool
	// Kernel selects the per-machine simulation loop: sched.KernelTyped
	// (the default) or the sched.KernelScalar reference. Bit-identical;
	// only speed differs.
	Kernel sched.Kernel
	// Evaluation selects the offspring-evaluation strategy:
	// nsga2.DeltaEvaluation (the default, incremental) or
	// nsga2.FullEvaluation (re-simulate every machine). Bit-identical;
	// only speed differs.
	Evaluation nsga2.Evaluation
	// Observer, when non-nil, receives run telemetry: per-generation
	// front/indicator/evaluation events from a single-population run, or
	// migration events from an island run. Observation never consumes
	// randomness or changes results; see internal/obs.
	Observer obs.Observer
	// PhaseTimer, when non-nil, profiles the run's phase-level wall time
	// (selection, variation, cache probe/insert, evaluation, sort,
	// archive compaction, island migration). Profiling never consumes
	// randomness or changes results; see internal/obs.
	PhaseTimer *obs.PhaseTimer
	// IslandBoard, when non-nil, receives per-island health gauges
	// (mailbox depth, tick, cache occupancy, tick skew) from island
	// runs. Only meaningful with Islands > 1; see internal/obs.
	IslandBoard *obs.IslandBoard
}

// Result is the outcome of one optimization run.
type Result struct {
	// Front is the final rank-1 front sorted by increasing energy.
	Front []analysis.FrontPoint
	// Allocations holds the allocation behind each front point, index-
	// aligned with Front.
	Allocations []*sched.Allocation
	// Checkpoints holds intermediate fronts if requested.
	Checkpoints []analysis.Checkpoint
	// Region is the maximum utility-per-energy region of the final front.
	Region analysis.UPERegion
	// Hypervolume of the final front under a reference derived from the
	// run's own extent (useful for comparing runs on the same instance).
	Hypervolume float64
	// Generations actually evolved.
	Generations int
	// FinalSnapshot is the island run's end-of-run snapshot when
	// Options.CaptureSnapshot was set; nil otherwise.
	FinalSnapshot *nsga2.IslandsSnapshot
}

// Optimize runs NSGA-II and returns the analyzed result.
func (f *Framework) Optimize(opts Options) (*Result, error) {
	if opts.Generations <= 0 {
		return nil, fmt.Errorf("core: Generations %d, want > 0", opts.Generations)
	}
	if opts.RandomSeed == 0 {
		opts.RandomSeed = 1
	}
	if opts.UPETolerance == 0 {
		opts.UPETolerance = 0.05
	}
	var seeds []*sched.Allocation
	for _, h := range opts.Seeds {
		a, err := h.Build(f.eval)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, a)
	}
	if opts.Islands > 1 {
		if len(opts.Checkpoints) > 0 {
			return nil, fmt.Errorf("core: checkpoints are not supported with islands")
		}
		return f.optimizeIslands(opts, seeds)
	}
	if opts.Resume != nil || opts.CaptureSnapshot {
		return nil, fmt.Errorf("core: snapshot resume/capture needs Islands > 1")
	}
	eng, err := nsga2.New(f.eval, nsga2.Config{
		PopulationSize: opts.PopulationSize,
		MutationRate:   opts.MutationRate,
		Seeds:          seeds,
		Workers:        opts.Workers,
		CacheCapacity:  opts.CacheCapacity,
		CacheVerify:    opts.CacheVerify,

		MachineCacheCapacity: opts.MachineCacheCapacity,
		MachineCacheVerify:   opts.MachineCacheVerify,
		Kernel:               opts.Kernel,
		Evaluation:           opts.Evaluation,
	}, rng.New(opts.RandomSeed))
	if err != nil {
		return nil, err
	}
	eng.SetObserver(opts.Observer)
	eng.SetPhaseTimer(opts.PhaseTimer)
	var checkpoints []analysis.Checkpoint
	if len(opts.Checkpoints) > 0 {
		last := opts.Checkpoints[len(opts.Checkpoints)-1]
		if last > opts.Generations {
			return nil, fmt.Errorf("core: checkpoint %d beyond Generations %d", last, opts.Generations)
		}
		err := eng.RunCheckpoints(opts.Checkpoints, func(gen int, front []nsga2.Individual) {
			pts := make([]analysis.FrontPoint, len(front))
			for i, ind := range front {
				pts[i] = analysis.FrontPoint{Utility: ind.Objectives[0], Energy: ind.Objectives[1]}
			}
			checkpoints = append(checkpoints, analysis.Checkpoint{Generation: gen, Front: pts})
		})
		if err != nil {
			return nil, err
		}
	}
	eng.Run(opts.Generations - eng.Generation())

	res, err := f.FinishFront(eng.ParetoFront(), opts)
	if err != nil {
		return nil, err
	}
	res.Checkpoints = checkpoints
	return res, nil
}

// FinishFront assembles a Result from a final rank-1 front: it sorts by
// increasing energy (stably, carrying allocations along), deduplicates
// identical objective pairs, and applies the shared post-processing
// (optional ε-archive compaction, UPE region, hypervolume). It is the
// common tail of every optimization mode — single population, islands,
// and the distributed island coordinator, whose merged worker fronts
// enter here so a distributed run's Result is assembled exactly like an
// in-process one.
func (f *Framework) FinishFront(front []nsga2.Individual, opts Options) (*Result, error) {
	if opts.UPETolerance == 0 {
		opts.UPETolerance = 0.05
	}
	sort.SliceStable(front, func(i, j int) bool { return front[i].Objectives[1] < front[j].Objectives[1] })
	res := &Result{Generations: opts.Generations}
	seen := make(map[[2]float64]bool, len(front))
	for _, ind := range front {
		key := [2]float64{ind.Objectives[0], ind.Objectives[1]}
		if seen[key] {
			continue // identical objective pairs add nothing to the front
		}
		seen[key] = true
		res.Front = append(res.Front, analysis.FrontPoint{Utility: ind.Objectives[0], Energy: ind.Objectives[1]})
		res.Allocations = append(res.Allocations, ind.Alloc)
	}
	if err := finishResult(res, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// finishResult applies the optional ε-archive front compaction, then
// computes the UPE region and hypervolume of the front actually
// returned to the caller.
func finishResult(res *Result, opts Options) error {
	t0 := opts.PhaseTimer.Start()
	if err := compactFront(res, opts.ArchiveSize, opts.ArchiveEpsilon, opts.ArchiveSpillBudget); err != nil {
		return err
	}
	if opts.ArchiveSize > 0 {
		// Archive compaction runs once per run, not per generation, so
		// it is bracketed here rather than in Engine.Step.
		opts.PhaseTimer.Record(obs.PhaseArchive, t0)
	}
	region, err := analysis.AnalyzeUPE(res.Front, opts.UPETolerance)
	if err != nil {
		return err
	}
	res.Region = region
	sp := moea.UtilityEnergySpace()
	objs := analysis.ToObjectives(res.Front)
	res.Hypervolume = sp.Hypervolume2D(objs, sp.ReferenceFrom(0.05, objs))
	return nil
}

// compactFront filters res.Front through a bounded ε-dominance archive
// of at most size points, carrying each surviving point's allocation
// along. A no-op when size <= 0. The archive emits points in improving
// utility order (descending, for the Maximize sense); reversing gives
// ascending utility, which for mutually nondominated
// (max-utility, min-energy) points is also ascending energy — the
// Front sort contract is preserved.
func compactFront(res *Result, size int, eps []float64, spill int) error {
	if size <= 0 {
		return nil
	}
	sp := moea.UtilityEnergySpace()
	switch {
	case len(eps) == 0:
		eps = deriveEpsilon(res.Front, size)
	case len(eps) != sp.Dim():
		return fmt.Errorf("core: ArchiveEpsilon has %d widths, want %d (utility, energy)", len(eps), sp.Dim())
	default:
		for _, e := range eps {
			if !(e > 0) || math.IsInf(e, 0) {
				return fmt.Errorf("core: ArchiveEpsilon widths must be positive and finite, got %v", eps)
			}
		}
	}
	if spill > 0 {
		// Disk-spilling compaction: at most spill points in memory, the
		// ε-grid alone bounds the result (no crowding prune).
		sa := moea.NewStreamingArchive(sp, eps, spill, "")
		defer sa.Close()
		for i, p := range res.Front {
			sa.Add([]float64{p.Utility, p.Energy}, int64(i))
		}
		if err := sa.Finalize(); err != nil {
			return err
		}
		pts, pays := sa.Points(), sa.Payloads()
		front := make([]analysis.FrontPoint, len(pts))
		allocs := make([]*sched.Allocation, len(pts))
		for i := range pts {
			j := len(pts) - 1 - i
			front[i] = analysis.FrontPoint{Utility: pts[j][0], Energy: pts[j][1]}
			allocs[i] = res.Allocations[pays[j]]
		}
		res.Front, res.Allocations = front, allocs
		return nil
	}
	ar := moea.NewEpsilonArchive(sp, eps, size)
	for i, p := range res.Front {
		ar.Add([]float64{p.Utility, p.Energy}, i)
	}
	pts, pays := ar.Points(), ar.Payloads()
	front := make([]analysis.FrontPoint, len(pts))
	allocs := make([]*sched.Allocation, len(pts))
	for i := range pts {
		j := len(pts) - 1 - i
		front[i] = analysis.FrontPoint{Utility: pts[j][0], Energy: pts[j][1]}
		allocs[i] = res.Allocations[pays[j].(int)]
	}
	res.Front, res.Allocations = front, allocs
	return nil
}

// deriveEpsilon spreads size ε-boxes across the front's own extent in
// each objective. Degenerate extents (single point, empty front) fall
// back to a unit width, which collapses the objective into one box.
func deriveEpsilon(front []analysis.FrontPoint, size int) []float64 {
	minU, maxU := math.Inf(1), math.Inf(-1)
	minE, maxE := math.Inf(1), math.Inf(-1)
	for _, p := range front {
		minU, maxU = math.Min(minU, p.Utility), math.Max(maxU, p.Utility)
		minE, maxE = math.Min(minE, p.Energy), math.Max(maxE, p.Energy)
	}
	eps := []float64{(maxU - minU) / float64(size), (maxE - minE) / float64(size)}
	for k, e := range eps {
		if !(e > 0) {
			eps[k] = 1
		}
	}
	return eps
}

// IslandConfig builds the nsga2.IslandConfig an island-model run of
// these Options uses, including seed allocations built from
// opts.Seeds. Distributed island workers and their coordinator both
// derive their configuration here, so every process in a distributed
// run agrees on the exact engine parameters an in-process run would
// use — the precondition for bit-identical results.
func (f *Framework) IslandConfig(opts Options) (nsga2.IslandConfig, error) {
	var seeds []*sched.Allocation
	for _, h := range opts.Seeds {
		a, err := h.Build(f.eval)
		if err != nil {
			return nsga2.IslandConfig{}, err
		}
		seeds = append(seeds, a)
	}
	return islandConfigFrom(opts, seeds), nil
}

// islandConfigFrom maps Options onto the island configuration.
func islandConfigFrom(opts Options, seeds []*sched.Allocation) nsga2.IslandConfig {
	return nsga2.IslandConfig{
		Islands:           opts.Islands,
		MigrationInterval: opts.MigrationInterval,
		Async:             opts.AsyncIslands,
		Engine: nsga2.Config{
			PopulationSize: opts.PopulationSize,
			MutationRate:   opts.MutationRate,
			Seeds:          seeds,
			Workers:        opts.Workers,
			CacheCapacity:  opts.CacheCapacity,
			CacheVerify:    opts.CacheVerify,

			MachineCacheCapacity: opts.MachineCacheCapacity,
			MachineCacheVerify:   opts.MachineCacheVerify,
			Kernel:               opts.Kernel,
			Evaluation:           opts.Evaluation,
		},
	}
}

// optimizeIslands runs the island model and assembles the merged front.
func (f *Framework) optimizeIslands(opts Options, seeds []*sched.Allocation) (*Result, error) {
	is, err := nsga2.NewIslands(f.eval, islandConfigFrom(opts, seeds), rng.New(opts.RandomSeed))
	if err != nil {
		return nil, err
	}
	is.SetObserver(opts.Observer)
	is.SetPhaseTimer(opts.PhaseTimer)
	is.SetHealth(opts.IslandBoard)
	if opts.Resume != nil {
		if err := is.Restore(opts.Resume); err != nil {
			return nil, err
		}
	}
	if opts.Generations < is.Generation() {
		return nil, fmt.Errorf("core: Generations %d behind resumed generation %d",
			opts.Generations, is.Generation())
	}
	is.Run(opts.Generations - is.Generation())
	res, err := f.FinishFront(is.ParetoFront(), opts)
	if err != nil {
		return nil, err
	}
	if opts.CaptureSnapshot {
		res.FinalSnapshot = is.Snapshot()
	}
	return res, nil
}

// CompareSeeding runs Optimize once per named variant (each of the four
// greedy heuristics plus an all-random population) with a shared
// configuration, and returns the per-variant results plus the pairwise
// front comparison. This is the §VI seeding study in API form.
func (f *Framework) CompareSeeding(opts Options) (map[string]*Result, analysis.SeedComparison, error) {
	variants := []struct {
		name  string
		seeds []heuristics.Heuristic
	}{
		{"min-energy", []heuristics.Heuristic{heuristics.MinEnergy}},
		{"min-min", []heuristics.Heuristic{heuristics.MinMin}},
		{"max-utility", []heuristics.Heuristic{heuristics.MaxUtility}},
		{"max-utility-per-energy", []heuristics.Heuristic{heuristics.MaxUtilityPerEnergy}},
		{"random", nil},
	}
	results := make(map[string]*Result, len(variants))
	var names []string
	var fronts [][]analysis.FrontPoint
	for _, v := range variants {
		o := opts
		o.Seeds = v.seeds
		// Give each variant an independent stream while keeping the
		// whole study deterministic in opts.RandomSeed.
		if o.RandomSeed == 0 {
			o.RandomSeed = 1
		}
		o.RandomSeed = o.RandomSeed*31 + uint64(len(v.name))
		r, err := f.Optimize(o)
		if err != nil {
			return nil, analysis.SeedComparison{}, fmt.Errorf("core: variant %s: %w", v.name, err)
		}
		results[v.name] = r
		names = append(names, v.name)
		fronts = append(fronts, r.Front)
	}
	cmp, err := analysis.CompareSeeds(names, fronts)
	if err != nil {
		return nil, analysis.SeedComparison{}, err
	}
	return results, cmp, nil
}
