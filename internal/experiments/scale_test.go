package experiments

import "testing"

func TestScaleDataSet(t *testing.T) {
	// Small task count keeps the test fast; the construction path is
	// identical at 50k/200k/1M.
	ds, err := ScaleDataSet(2000, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "scale-2k" {
		t.Fatalf("name %q, want scale-2k", ds.Name)
	}
	if ds.Trace.NumTasks() != 2000 {
		t.Fatalf("trace has %d tasks", ds.Trace.NumTasks())
	}
	// Data-set-2 arrival density: 0.9 s per task.
	if ds.Trace.Window != 1800 {
		t.Fatalf("window %v, want 1800", ds.Trace.Window)
	}
	if ds.System.NumMachines() != 30 {
		t.Fatalf("system has %d machines, want the enlarged 30", ds.System.NumMachines())
	}
	if ds.Evaluator == nil {
		t.Fatal("no evaluator")
	}
	if _, err := ScaleDataSet(0, 0, 3); err == nil {
		t.Fatal("zero tasks accepted")
	}
}

func TestHumanTasks(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{{50000, "50k"}, {200000, "200k"}, {1000000, "1m"}, {2500, "2500"}, {999, "999"}}
	for _, c := range cases {
		if got := humanTasks(c.n); got != c.want {
			t.Errorf("humanTasks(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
