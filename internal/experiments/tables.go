package experiments

import (
	"fmt"
	"io"

	"tradeoff/internal/data"
)

// WriteTableI prints the benchmark machine list (paper Table I).
func WriteTableI(w io.Writer) {
	fmt.Fprintln(w, "Table I: machines (designated by CPU) used in benchmark")
	for _, name := range data.MachineNames {
		fmt.Fprintf(w, "  %s\n", name)
	}
}

// WriteTableII prints the benchmark program list (paper Table II).
func WriteTableII(w io.Writer) {
	fmt.Fprintln(w, "Table II: programs used in benchmark")
	for _, name := range data.TaskNames {
		fmt.Fprintf(w, "  %s\n", name)
	}
}

// WriteTableIII prints the machine-type breakup of the enlarged suite
// (paper Table III) and checks the total.
func WriteTableIII(w io.Writer) {
	fmt.Fprintln(w, "Table III: breakup of machines to machine types")
	fmt.Fprintf(w, "  %-34s %s\n", "machine type", "number of machines")
	total := 0
	for _, row := range data.TableIII() {
		fmt.Fprintf(w, "  %-34s %d\n", row.Name, row.Count)
		total += row.Count
	}
	fmt.Fprintf(w, "  %-34s %d\n", "total", total)
}

// WriteMatrices prints the embedded real ETC and EPC matrices (the data
// behind §III-D1).
func WriteMatrices(w io.Writer) {
	etc, epc := data.RealETC(), data.RealEPC()
	fmt.Fprintln(w, "Real ETC matrix (seconds):")
	writeMatrix(w, etc.RowsCopy())
	fmt.Fprintln(w, "Real EPC matrix (watts):")
	writeMatrix(w, epc.RowsCopy())
}

func writeMatrix(w io.Writer, rows [][]float64) {
	fmt.Fprintf(w, "  %-32s", "task type \\ machine")
	for j := range rows[0] {
		fmt.Fprintf(w, " m%-6d", j)
	}
	fmt.Fprintln(w)
	for i, row := range rows {
		fmt.Fprintf(w, "  %-32s", data.TaskNames[i])
		for _, v := range row {
			fmt.Fprintf(w, " %-7.0f", v)
		}
		fmt.Fprintln(w)
	}
}
