package experiments

import (
	"fmt"
	"io"
	"sort"

	"tradeoff/internal/analysis"
	"tradeoff/internal/heuristics"
	"tradeoff/internal/moea"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/obs"
	"tradeoff/internal/plot"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
	"tradeoff/internal/utility"
)

// Variant names an initial-population seeding strategy of §VI. The zero
// value (nil Heuristic) is the all-random population.
type Variant struct {
	Name string
	// Seed is nil for the all-random population.
	Seed *heuristics.Heuristic
}

// Variants returns the five populations of Figs. 3, 4 and 6, in the
// paper's marker order: min-energy (diamond), min-min (square),
// max-utility (circle), max-utility-per-energy (triangle), random (star).
func Variants() []Variant {
	h := func(x heuristics.Heuristic) *heuristics.Heuristic { return &x }
	return []Variant{
		{Name: "min-energy", Seed: h(heuristics.MinEnergy)},
		{Name: "min-min", Seed: h(heuristics.MinMin)},
		{Name: "max-utility", Seed: h(heuristics.MaxUtility)},
		{Name: "max-utility-per-energy", Seed: h(heuristics.MaxUtilityPerEnergy)},
		{Name: "random", Seed: nil},
	}
}

// RunConfig parameterizes a Pareto-front experiment.
//
//detlint:optwire
type RunConfig struct {
	// PopulationSize is NSGA-II's N. Default 100.
	PopulationSize int
	// MutationRate is the per-offspring mutation probability. Default 0.1.
	MutationRate float64
	// Checkpoints overrides the data set's default checkpoints.
	Checkpoints []int
	// Scale multiplies the chosen checkpoints (for quick smoke runs use
	// e.g. 0.1; for paper-scale pass the PaperCheckpoints explicitly).
	Scale float64
	// Seed drives all randomness. Default 1.
	Seed uint64
	// Workers bounds evaluation parallelism (0 = GOMAXPROCS).
	Workers int
	// CacheCapacity bounds each engine's fitness-memoization cache
	// (0 = engine default of 4x the population, negative = disabled).
	// Results are bit-identical for every setting.
	CacheCapacity int
	// MachineCacheCapacity bounds each engine's machine-bucket
	// memoization cache (0 = engine default, negative = disabled).
	// Results are bit-identical for every setting.
	MachineCacheCapacity int
	// Kernel selects the per-machine simulation kernel
	// (sched.KernelTyped or sched.KernelScalar; both bit-identical).
	Kernel sched.Kernel
	// Observer, when non-nil, receives run telemetry: per-generation
	// events from the serial experiment engines (labeled
	// "dataset/variant") and per-run summary events from RunRepeats.
	// Observation never changes results; see internal/obs.
	Observer obs.Observer
	// PhaseTimer, when non-nil, accumulates a phase-level wall-time
	// profile across every engine an experiment runs. Profiling never
	// changes results; see internal/obs.
	PhaseTimer *obs.PhaseTimer
}

func (c RunConfig) withDefaults(ds *DataSet) RunConfig {
	if c.PopulationSize == 0 {
		c.PopulationSize = 100
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.1
	}
	if c.Checkpoints == nil {
		c.Checkpoints = ds.DefaultCheckpoints
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	scaled := make([]int, len(c.Checkpoints))
	for i, cp := range c.Checkpoints {
		s := int(float64(cp) * c.Scale)
		// Clamp only positive checkpoints: scaling must not erase an
		// explicit generation-0 checkpoint (the initial population's
		// front), nor collapse a positive one to "no evolution".
		if s < 1 && cp > 0 {
			s = 1
		}
		scaled[i] = s
	}
	sort.Ints(scaled)
	c.Checkpoints = scaled
	return c
}

// observerFor returns the engine-level observer for one experiment run,
// labeling its generation events "dataset/name", or nil when telemetry
// is disabled.
func (c RunConfig) observerFor(ds *DataSet, name string) obs.Observer {
	if c.Observer == nil {
		return nil
	}
	return obs.Labeled{Label: ds.Name + "/" + name, Next: c.Observer}
}

// VariantRun is one population's recorded front evolution.
type VariantRun struct {
	Variant     string
	Checkpoints []analysis.Checkpoint
}

// Final returns the front at the last checkpoint.
func (vr *VariantRun) Final() []analysis.FrontPoint {
	if len(vr.Checkpoints) == 0 {
		return nil
	}
	return vr.Checkpoints[len(vr.Checkpoints)-1].Front
}

// FigureResult is a complete Pareto-front experiment: one run per seeding
// variant over common checkpoints (the content of Figs. 3, 4, 6).
type FigureResult struct {
	DataSet     string
	Checkpoints []int
	Runs        []VariantRun
}

// RunParetoFigure evolves one NSGA-II population per seeding variant and
// records the rank-1 front at each checkpoint. This regenerates Figs. 3,
// 4 and 6 when applied to data sets 1, 2 and 3 respectively.
func RunParetoFigure(ds *DataSet, cfg RunConfig) (*FigureResult, error) {
	cfg = cfg.withDefaults(ds)
	res := &FigureResult{DataSet: ds.Name, Checkpoints: cfg.Checkpoints}
	for _, v := range Variants() {
		var seeds []*sched.Allocation
		if v.Seed != nil {
			alloc, err := v.Seed.Build(ds.Evaluator)
			if err != nil {
				return nil, fmt.Errorf("experiments: seed %s: %w", v.Name, err)
			}
			seeds = append(seeds, alloc)
		}
		eng, err := nsga2.New(ds.Evaluator, nsga2.Config{
			PopulationSize:       cfg.PopulationSize,
			MutationRate:         cfg.MutationRate,
			Seeds:                seeds,
			Workers:              cfg.Workers,
			CacheCapacity:        cfg.CacheCapacity,
			MachineCacheCapacity: cfg.MachineCacheCapacity,
			Kernel:               cfg.Kernel,
		}, rng.NewStream(cfg.Seed, hashName(v.Name)))
		if err != nil {
			return nil, fmt.Errorf("experiments: engine for %s: %w", v.Name, err)
		}
		eng.SetObserver(cfg.observerFor(ds, v.Name))
		eng.SetPhaseTimer(cfg.PhaseTimer)
		run := VariantRun{Variant: v.Name}
		err = eng.RunCheckpoints(cfg.Checkpoints, func(gen int, front []nsga2.Individual) {
			pts := make([]analysis.FrontPoint, len(front))
			for i, ind := range front {
				pts[i] = analysis.FrontPoint{Utility: ind.Objectives[0], Energy: ind.Objectives[1]}
			}
			sort.Slice(pts, func(a, b int) bool { return pts[a].Energy < pts[b].Energy })
			run.Checkpoints = append(run.Checkpoints, analysis.Checkpoint{Generation: gen, Front: pts})
		})
		if err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

// hashName derives a stable stream id from a variant name (FNV-1a).
func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Chart renders the fronts at checkpoint index k as a plot.Chart
// (energy in MJ on x, utility on y), matching the figures' axes.
func (fr *FigureResult) Chart(k int) (*plot.Chart, error) {
	if k < 0 || k >= len(fr.Checkpoints) {
		return nil, fmt.Errorf("experiments: checkpoint index %d out of range [0,%d)", k, len(fr.Checkpoints))
	}
	c := &plot.Chart{
		Title:  fmt.Sprintf("%s: Pareto fronts through %d iterations", fr.DataSet, fr.Checkpoints[k]),
		XLabel: "total energy consumed (MJ)",
		YLabel: "total utility earned",
	}
	for _, run := range fr.Runs {
		if k >= len(run.Checkpoints) {
			continue
		}
		s := plot.Series{Name: run.Variant}
		for _, p := range run.Checkpoints[k].Front {
			s.Points = append(s.Points, plot.Point{X: p.Energy / 1e6, Y: p.Utility})
		}
		c.Series = append(c.Series, s)
	}
	return c, nil
}

// WriteSeries prints the experiment's front series (the data behind the
// figure) as aligned text: per checkpoint, per variant, the front's
// extent and quality indicators plus a seeded-vs-random coverage figure.
func (fr *FigureResult) WriteSeries(w io.Writer) error {
	sp := moea.UtilityEnergySpace()
	var random *VariantRun
	for i := range fr.Runs {
		if fr.Runs[i].Variant == "random" {
			random = &fr.Runs[i]
		}
	}
	for k, cp := range fr.Checkpoints {
		fmt.Fprintf(w, "\n%s through %d iterations\n", fr.DataSet, cp)
		fmt.Fprintf(w, "  %-24s %6s %14s %14s %14s %10s\n",
			"population", "front", "minE(MJ)", "maxE(MJ)", "maxU", "C(v,rand)")
		for _, run := range fr.Runs {
			if k >= len(run.Checkpoints) {
				continue
			}
			front := run.Checkpoints[k].Front
			if len(front) == 0 {
				continue
			}
			minE, maxE, maxU := front[0].Energy, front[0].Energy, front[0].Utility
			for _, p := range front {
				if p.Energy < minE {
					minE = p.Energy
				}
				if p.Energy > maxE {
					maxE = p.Energy
				}
				if p.Utility > maxU {
					maxU = p.Utility
				}
			}
			cov := 0.0
			if random != nil && run.Variant != "random" && k < len(random.Checkpoints) {
				cov = sp.Coverage(analysis.ToObjectives(front), analysis.ToObjectives(random.Checkpoints[k].Front))
			}
			fmt.Fprintf(w, "  %-24s %6d %14.4f %14.4f %14.1f %10.2f\n",
				run.Variant, len(front), minE/1e6, maxE/1e6, maxU, cov)
		}
	}
	return nil
}

// Figure1Rows returns the sample time-utility function of Fig. 1
// evaluated over its horizon, including the paper's two calibration
// points (t=20 → 12 units, t=47 → 7 units).
func Figure1Rows() (times, values []float64) {
	f := utility.Figure1()
	for t := 0.0; t <= f.Horizon()+10; t += 1 {
		times = append(times, t)
		values = append(values, f.Value(t))
	}
	return times, values
}

// WriteFigure1 prints the Fig. 1 series.
func WriteFigure1(w io.Writer) {
	times, values := Figure1Rows()
	fmt.Fprintln(w, "Figure 1: sample task time-utility function")
	fmt.Fprintf(w, "  %-16s %s\n", "completion time", "utility earned")
	for i := range times {
		marker := ""
		if times[i] == 20 || times[i] == 47 {
			marker = "   <- paper calibration point"
		}
		fmt.Fprintf(w, "  %-16.0f %.1f%s\n", times[i], values[i], marker)
	}
}

// WriteFigure2 prints the dominance relations of the paper's Fig. 2
// (A dominates B; A and C are incomparable).
func WriteFigure2(w io.Writer) {
	sp := moea.UtilityEnergySpace()
	pts := map[string][]float64{
		"A": {10, 5},
		"B": {8, 7},
		"C": {6, 3},
	}
	fmt.Fprintln(w, "Figure 2: solution dominance (objective = [utility, energy])")
	for _, name := range []string{"A", "B", "C"} {
		fmt.Fprintf(w, "  %s = utility %.0f, energy %.0f\n", name, pts[name][0], pts[name][1])
	}
	order := []string{"A", "B", "C"}
	for _, a := range order {
		for _, b := range order {
			if a == b {
				continue
			}
			switch {
			case sp.Dominates(pts[a], pts[b]):
				fmt.Fprintf(w, "  %s dominates %s\n", a, b)
			case sp.Incomparable(pts[a], pts[b]) && a < b:
				fmt.Fprintf(w, "  %s and %s are incomparable (both on the Pareto front)\n", a, b)
			}
		}
	}
}

// Figure5Result is the utility-per-energy region analysis of Fig. 5.
type Figure5Result struct {
	Region analysis.UPERegion
	// Generations the analyzed front was evolved for.
	Generations int
}

// RunFigure5 evolves the max-utility-per-energy seeded population on a
// data set and locates the maximum utility-per-energy region of its final
// front (Fig. 5 subplots A-C).
func RunFigure5(ds *DataSet, cfg RunConfig) (*Figure5Result, error) {
	cfg = cfg.withDefaults(ds)
	seedAlloc, err := heuristics.MaxUtilityPerEnergy.Build(ds.Evaluator)
	if err != nil {
		return nil, err
	}
	eng, err := nsga2.New(ds.Evaluator, nsga2.Config{
		PopulationSize:       cfg.PopulationSize,
		MutationRate:         cfg.MutationRate,
		Seeds:                []*sched.Allocation{seedAlloc},
		Workers:              cfg.Workers,
		CacheCapacity:        cfg.CacheCapacity,
		MachineCacheCapacity: cfg.MachineCacheCapacity,
		Kernel:               cfg.Kernel,
	}, rng.NewStream(cfg.Seed, hashName("figure5")))
	if err != nil {
		return nil, err
	}
	eng.SetObserver(cfg.observerFor(ds, "figure5"))
	eng.SetPhaseTimer(cfg.PhaseTimer)
	last := cfg.Checkpoints[len(cfg.Checkpoints)-1]
	eng.Run(last)
	pts := analysis.FromObjectives(eng.FrontPoints())
	region, err := analysis.AnalyzeUPE(pts, 0.05)
	if err != nil {
		return nil, err
	}
	return &Figure5Result{Region: region, Generations: last}, nil
}

// WriteFigure5 prints the Fig. 5 series: the front, the UPE-vs-utility
// and UPE-vs-energy peaks, and the located region.
func (r *Figure5Result) WriteFigure5(w io.Writer) {
	reg := r.Region
	fmt.Fprintf(w, "Figure 5: utility-per-energy region after %d iterations\n", r.Generations)
	fmt.Fprintf(w, "  %-14s %-14s %s\n", "energy (MJ)", "utility", "utility/energy (1/MJ)")
	for i, p := range reg.Points {
		marker := ""
		switch {
		case i == reg.PeakIndex:
			marker = "   <- peak"
		case i >= reg.Lo && i <= reg.Hi:
			marker = "   <- region"
		}
		fmt.Fprintf(w, "  %-14.4f %-14.1f %.4f%s\n", p.Energy/1e6, p.Utility, p.UPE()*1e6, marker)
	}
	fmt.Fprintf(w, "  peak: utility %.1f at %.4f MJ (UPE %.4f utility/MJ), region spans indices [%d,%d] of %d\n",
		reg.Peak.Utility, reg.Peak.Energy/1e6, reg.PeakUPE*1e6, reg.Lo, reg.Hi, len(reg.Points))
}
