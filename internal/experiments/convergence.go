package experiments

import (
	"fmt"
	"io"

	"tradeoff/internal/analysis"
	"tradeoff/internal/heuristics"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/plot"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// ConvergenceResult records a hypervolume trajectory: how quickly each
// seeded population's front approaches its final quality. This extends
// the paper's visual "fronts converge with more iterations" argument
// (Figs. 3-4, §VI) with a scalar indicator.
type ConvergenceResult struct {
	DataSet string
	// Variants holds one trajectory per seeding variant.
	Variants []VariantConvergence
}

// VariantConvergence is one population's hypervolume trajectory.
type VariantConvergence struct {
	Variant     string
	Convergence analysis.Convergence
}

// RunConvergence evolves each seeded population and measures the
// hypervolume at every checkpoint.
func RunConvergence(ds *DataSet, cfg RunConfig) (*ConvergenceResult, error) {
	cfg = cfg.withDefaults(ds)
	res := &ConvergenceResult{DataSet: ds.Name}
	for _, v := range Variants() {
		var seeds []*sched.Allocation
		if v.Seed != nil {
			alloc, err := v.Seed.Build(ds.Evaluator)
			if err != nil {
				return nil, err
			}
			seeds = append(seeds, alloc)
		}
		eng, err := nsga2.New(ds.Evaluator, nsga2.Config{
			PopulationSize:       cfg.PopulationSize,
			MutationRate:         cfg.MutationRate,
			Seeds:                seeds,
			Workers:              cfg.Workers,
			CacheCapacity:        cfg.CacheCapacity,
			MachineCacheCapacity: cfg.MachineCacheCapacity,
			Kernel:               cfg.Kernel,
		}, rng.NewStream(cfg.Seed, hashName("conv-"+v.Name)))
		if err != nil {
			return nil, err
		}
		eng.SetObserver(cfg.observerFor(ds, "conv-"+v.Name))
		eng.SetPhaseTimer(cfg.PhaseTimer)
		var cps []analysis.Checkpoint
		err = eng.RunCheckpoints(cfg.Checkpoints, func(gen int, front []nsga2.Individual) {
			pts := make([]analysis.FrontPoint, len(front))
			for i, ind := range front {
				pts[i] = analysis.FrontPoint{Utility: ind.Objectives[0], Energy: ind.Objectives[1]}
			}
			cps = append(cps, analysis.Checkpoint{Generation: gen, Front: pts})
		})
		if err != nil {
			return nil, err
		}
		conv, err := analysis.MeasureConvergence(cps)
		if err != nil {
			return nil, err
		}
		res.Variants = append(res.Variants, VariantConvergence{Variant: v.Name, Convergence: conv})
	}
	return res, nil
}

// Chart renders the hypervolume trajectories as a log-x line chart,
// normalized per variant to its final hypervolume.
func (r *ConvergenceResult) Chart() *plot.LineChart {
	c := &plot.LineChart{
		Title:  r.DataSet + ": hypervolume convergence",
		XLabel: "generation",
		YLabel: "fraction of final hypervolume",
		LogX:   true,
	}
	for _, v := range r.Variants {
		hv := v.Convergence.Hypervolumes
		if len(hv) == 0 {
			continue
		}
		final := hv[len(hv)-1]
		s := plot.Series{Name: v.Variant}
		for i, g := range v.Convergence.Generations {
			y := 0.0
			if final > 0 {
				y = hv[i] / final
			}
			s.Points = append(s.Points, plot.Point{X: float64(g), Y: y})
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// Write prints the trajectories as a table: one row per variant, one
// hypervolume column per checkpoint, normalized to each variant's final
// value so "how converged" reads directly as a fraction.
func (r *ConvergenceResult) Write(w io.Writer) {
	if len(r.Variants) == 0 {
		return
	}
	fmt.Fprintf(w, "%s: hypervolume convergence (fraction of final HV)\n", r.DataSet)
	fmt.Fprintf(w, "  %-24s", "population")
	for _, g := range r.Variants[0].Convergence.Generations {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("gen %d", g))
	}
	fmt.Fprintln(w)
	for _, v := range r.Variants {
		hv := v.Convergence.Hypervolumes
		final := hv[len(hv)-1]
		fmt.Fprintf(w, "  %-24s", v.Variant)
		for _, h := range hv {
			if final > 0 {
				fmt.Fprintf(w, " %10.3f", h/final)
			} else {
				fmt.Fprintf(w, " %10s", "n/a")
			}
		}
		fmt.Fprintln(w)
	}
}

// BaselineComparison places every classic single-solution heuristic in
// the objective space next to the NSGA-II front, quantifying how much of
// the space the evolutionary search opens up beyond any one-shot mapper.
type BaselineComparison struct {
	DataSet string
	// Points maps heuristic name to its (utility, energy) evaluation.
	Names  []string
	Points []analysis.FrontPoint
	// DominatedByFront[i] reports whether the NSGA-II front dominates
	// baseline i.
	DominatedByFront []bool
	// Front is the NSGA-II front used for the comparison.
	Front []analysis.FrontPoint
}

// RunBaselineComparison evaluates the seeding heuristics and the Braun
// et al. baselines against an evolved front.
func RunBaselineComparison(ds *DataSet, cfg RunConfig) (*BaselineComparison, error) {
	cfg = cfg.withDefaults(ds)
	// Evolve one well-seeded population to the final checkpoint.
	var seeds []*sched.Allocation
	for _, h := range heuristics.All {
		a, err := h.Build(ds.Evaluator)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, a)
	}
	eng, err := nsga2.New(ds.Evaluator, nsga2.Config{
		PopulationSize:       cfg.PopulationSize,
		MutationRate:         cfg.MutationRate,
		Seeds:                seeds,
		Workers:              cfg.Workers,
		CacheCapacity:        cfg.CacheCapacity,
		MachineCacheCapacity: cfg.MachineCacheCapacity,
		Kernel:               cfg.Kernel,
	}, rng.NewStream(cfg.Seed, hashName("baselines")))
	if err != nil {
		return nil, err
	}
	eng.SetObserver(cfg.observerFor(ds, "baselines"))
	eng.SetPhaseTimer(cfg.PhaseTimer)
	eng.Run(cfg.Checkpoints[len(cfg.Checkpoints)-1])
	front := analysis.FromObjectives(eng.FrontPoints())

	cmp := &BaselineComparison{DataSet: ds.Name, Front: front}
	add := func(name string, a *sched.Allocation) {
		ev := ds.Evaluator.Evaluate(a)
		p := analysis.FrontPoint{Utility: ev.Utility, Energy: ev.Energy}
		cmp.Names = append(cmp.Names, name)
		cmp.Points = append(cmp.Points, p)
		cmp.DominatedByFront = append(cmp.DominatedByFront, analysis.Dominates(front, []analysis.FrontPoint{p}))
	}
	for _, h := range heuristics.All {
		a, err := h.Build(ds.Evaluator)
		if err != nil {
			return nil, err
		}
		add(h.String(), a)
	}
	for _, b := range heuristics.Baselines {
		add(b.String(), b.Build(ds.Evaluator))
	}
	return cmp, nil
}

// Write prints the comparison.
func (c *BaselineComparison) Write(w io.Writer) {
	fmt.Fprintf(w, "%s: single-solution heuristics vs the evolved front (%d points)\n", c.DataSet, len(c.Front))
	fmt.Fprintf(w, "  %-24s %14s %14s %s\n", "heuristic", "energy (MJ)", "utility", "dominated by front?")
	for i, name := range c.Names {
		p := c.Points[i]
		verdict := "no"
		if c.DominatedByFront[i] {
			verdict = "yes"
		}
		fmt.Fprintf(w, "  %-24s %14.4f %14.1f %s\n", name, p.Energy/1e6, p.Utility, verdict)
	}
}
