package experiments

import (
	"bytes"
	"strings"
	"testing"

	"tradeoff/internal/analysis"
	"tradeoff/internal/moea"
	"tradeoff/internal/obs"
)

// smallCfg keeps experiment tests fast.
var smallCfg = RunConfig{
	PopulationSize: 20,
	Checkpoints:    []int{5, 20, 60},
	Seed:           7,
}

func TestDataSets(t *testing.T) {
	for n := 1; n <= 3; n++ {
		ds, err := ByNumber(n, 1)
		if err != nil {
			t.Fatalf("data set %d: %v", n, err)
		}
		if err := ds.System.Validate(); err != nil {
			t.Fatalf("data set %d system: %v", n, err)
		}
		if err := ds.Trace.Validate(ds.System); err != nil {
			t.Fatalf("data set %d trace: %v", n, err)
		}
		if len(ds.PaperCheckpoints) != 4 || len(ds.DefaultCheckpoints) != 4 {
			t.Fatalf("data set %d checkpoint counts wrong", n)
		}
	}
	if _, err := ByNumber(4, 1); err == nil {
		t.Fatal("data set 4 accepted")
	}
}

func TestDataSetParameters(t *testing.T) {
	ds1, err := DataSet1(1)
	if err != nil {
		t.Fatal(err)
	}
	if ds1.Trace.NumTasks() != 250 || ds1.Trace.Window != 900 {
		t.Fatalf("data set 1 is %d tasks / %v s", ds1.Trace.NumTasks(), ds1.Trace.Window)
	}
	if ds1.System.NumMachines() != 9 {
		t.Fatalf("data set 1 machines = %d", ds1.System.NumMachines())
	}
	ds2, err := DataSet2(1)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Trace.NumTasks() != 1000 || ds2.Trace.Window != 900 {
		t.Fatalf("data set 2 is %d tasks / %v s", ds2.Trace.NumTasks(), ds2.Trace.Window)
	}
	if ds2.System.NumMachines() != 30 || ds2.System.NumMachineTypes() != 13 || ds2.System.NumTaskTypes() != 30 {
		t.Fatal("data set 2 dimensions wrong")
	}
	ds3, err := DataSet3(1)
	if err != nil {
		t.Fatal(err)
	}
	if ds3.Trace.NumTasks() != 4000 || ds3.Trace.Window != 3600 {
		t.Fatalf("data set 3 is %d tasks / %v s", ds3.Trace.NumTasks(), ds3.Trace.Window)
	}
}

func TestVariantsOrderAndCount(t *testing.T) {
	vs := Variants()
	want := []string{"min-energy", "min-min", "max-utility", "max-utility-per-energy", "random"}
	if len(vs) != len(want) {
		t.Fatalf("%d variants", len(vs))
	}
	for i, v := range vs {
		if v.Name != want[i] {
			t.Fatalf("variant %d = %s, want %s", i, v.Name, want[i])
		}
	}
	if vs[4].Seed != nil {
		t.Fatal("random variant must have no seed")
	}
}

func TestRunParetoFigureShape(t *testing.T) {
	ds, err := DataSet1(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParetoFigure(ds, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 5 {
		t.Fatalf("%d runs, want 5", len(res.Runs))
	}
	for _, run := range res.Runs {
		if len(run.Checkpoints) != len(smallCfg.Checkpoints) {
			t.Fatalf("%s has %d checkpoints", run.Variant, len(run.Checkpoints))
		}
		for _, cp := range run.Checkpoints {
			if len(cp.Front) == 0 {
				t.Fatalf("%s empty front at gen %d", run.Variant, cp.Generation)
			}
			// Fronts are mutually nondominated and sorted by energy.
			sp := moea.UtilityEnergySpace()
			objs := analysis.ToObjectives(cp.Front)
			for i := range objs {
				for j := range objs {
					if i != j && sp.Dominates(objs[i], objs[j]) {
						t.Fatalf("%s gen %d front has dominated point", run.Variant, cp.Generation)
					}
				}
			}
			for i := 1; i < len(cp.Front); i++ {
				if cp.Front[i].Energy < cp.Front[i-1].Energy {
					t.Fatalf("%s front not energy-sorted", run.Variant)
				}
			}
		}
	}
}

func TestRunParetoFigureSeedsHelpEarly(t *testing.T) {
	// At the earliest checkpoint, the min-energy population must reach
	// lower energy than the random population (the Figs. 3/4 effect).
	ds, err := DataSet1(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParetoFigure(ds, RunConfig{PopulationSize: 20, Checkpoints: []int{5}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	minE := map[string]float64{}
	for _, run := range res.Runs {
		front := run.Checkpoints[0].Front
		best := front[0].Energy
		for _, p := range front {
			if p.Energy < best {
				best = p.Energy
			}
		}
		minE[run.Variant] = best
	}
	if !(minE["min-energy"] < minE["random"]) {
		t.Fatalf("min-energy seed (%.0f J) not below random (%.0f J) at early checkpoint",
			minE["min-energy"], minE["random"])
	}
}

func TestFigureResultChart(t *testing.T) {
	ds, err := DataSet1(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParetoFigure(ds, RunConfig{PopulationSize: 10, Checkpoints: []int{3}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	chart, err := res.Chart(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chart.Series) != 5 {
		t.Fatalf("chart has %d series", len(chart.Series))
	}
	if _, err := res.Chart(5); err == nil {
		t.Fatal("out-of-range checkpoint accepted")
	}
	ascii := chart.ASCII(60, 16)
	if !strings.Contains(ascii, "dataset1") {
		t.Fatal("chart title missing data set name")
	}
}

func TestWriteSeries(t *testing.T) {
	ds, err := DataSet1(5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParetoFigure(ds, RunConfig{PopulationSize: 10, Checkpoints: []int{3}, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteSeries(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"min-energy", "random", "maxU", "C(v,rand)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("series output missing %q", want)
		}
	}
}

func TestFigure1Rows(t *testing.T) {
	times, values := Figure1Rows()
	if len(times) != len(values) || len(times) == 0 {
		t.Fatal("bad series")
	}
	at := func(tm float64) float64 {
		for i, tt := range times {
			if tt == tm {
				return values[i]
			}
		}
		t.Fatalf("time %v missing", tm)
		return 0
	}
	if at(20) != 12 || at(47) != 7 {
		t.Fatalf("calibration points wrong: U(20)=%v U(47)=%v", at(20), at(47))
	}
	var buf bytes.Buffer
	WriteFigure1(&buf)
	if !strings.Contains(buf.String(), "calibration point") {
		t.Fatal("Figure 1 output missing calibration markers")
	}
}

func TestWriteFigure2(t *testing.T) {
	var buf bytes.Buffer
	WriteFigure2(&buf)
	out := buf.String()
	if !strings.Contains(out, "A dominates B") {
		t.Fatal("missing A dominates B")
	}
	if !strings.Contains(out, "A and C are incomparable") {
		t.Fatal("missing A/C incomparability")
	}
	if strings.Contains(out, "C dominates") || strings.Contains(out, "B dominates") {
		t.Fatal("spurious dominance")
	}
}

func TestRunFigure5(t *testing.T) {
	ds, err := DataSet1(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFigure5(ds, RunConfig{PopulationSize: 20, Checkpoints: []int{5, 40}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations != 40 {
		t.Fatalf("Generations = %d", res.Generations)
	}
	reg := res.Region
	if reg.PeakIndex < 0 || reg.PeakIndex >= len(reg.Points) {
		t.Fatal("bad peak index")
	}
	var buf bytes.Buffer
	res.WriteFigure5(&buf)
	if !strings.Contains(buf.String(), "<- peak") {
		t.Fatal("Figure 5 output missing peak marker")
	}
}

func TestTables(t *testing.T) {
	var buf bytes.Buffer
	WriteTableI(&buf)
	if !strings.Contains(buf.String(), "AMD A8-3870K") || !strings.Contains(buf.String(), "Intel Core i7 3770K @ 4.3 GHz") {
		t.Fatal("Table I incomplete")
	}
	buf.Reset()
	WriteTableII(&buf)
	if !strings.Contains(buf.String(), "C-Ray") || !strings.Contains(buf.String(), "Timed Linux Kernel Compilation") {
		t.Fatal("Table II incomplete")
	}
	buf.Reset()
	WriteTableIII(&buf)
	out := buf.String()
	if !strings.Contains(out, "Special-purpose machine A") || !strings.Contains(out, "total") {
		t.Fatal("Table III incomplete")
	}
	if !strings.Contains(out, "30") {
		t.Fatal("Table III total missing")
	}
	buf.Reset()
	WriteMatrices(&buf)
	if !strings.Contains(buf.String(), "ETC matrix") || !strings.Contains(buf.String(), "EPC matrix") {
		t.Fatal("matrices output incomplete")
	}
}

func TestRunConfigDefaults(t *testing.T) {
	ds, err := DataSet1(7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{}.withDefaults(ds)
	if cfg.PopulationSize != 100 || cfg.MutationRate != 0.1 || cfg.Seed != 1 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if len(cfg.Checkpoints) != len(ds.DefaultCheckpoints) {
		t.Fatal("default checkpoints not applied")
	}
	scaled := RunConfig{Scale: 0.01, Checkpoints: []int{100, 1000}}.withDefaults(ds)
	if scaled.Checkpoints[0] != 1 || scaled.Checkpoints[1] != 10 {
		t.Fatalf("scaling wrong: %v", scaled.Checkpoints)
	}
}

func TestHashNameStable(t *testing.T) {
	if hashName("a") == hashName("b") {
		t.Fatal("hash collision on trivial names")
	}
	if hashName("min-energy") != hashName("min-energy") {
		t.Fatal("hash not deterministic")
	}
}

func TestRunConvergence(t *testing.T) {
	ds, err := DataSet1(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConvergence(ds, RunConfig{PopulationSize: 10, Checkpoints: []int{2, 6, 12}, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 5 {
		t.Fatalf("%d variants", len(res.Variants))
	}
	for _, v := range res.Variants {
		hv := v.Convergence.Hypervolumes
		if len(hv) != 3 {
			t.Fatalf("%s: %d hypervolumes", v.Variant, len(hv))
		}
		// Elitism: the trajectory must be nondecreasing.
		for i := 1; i < len(hv); i++ {
			if hv[i] < hv[i-1]-1e-6 {
				t.Fatalf("%s: hypervolume decreased", v.Variant)
			}
		}
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "hypervolume convergence") {
		t.Fatal("convergence output missing header")
	}
}

func TestRunBaselineComparison(t *testing.T) {
	ds, err := DataSet1(9)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := RunBaselineComparison(ds, RunConfig{PopulationSize: 16, Checkpoints: []int{25}, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// 4 seeding heuristics + 5 baselines.
	if len(cmp.Names) != 9 {
		t.Fatalf("%d heuristics compared", len(cmp.Names))
	}
	if len(cmp.Front) == 0 {
		t.Fatal("empty front")
	}
	var buf bytes.Buffer
	cmp.Write(&buf)
	out := buf.String()
	for _, want := range []string{"min-energy", "olb", "sufferage", "dominated by front?"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison output missing %q", want)
		}
	}
}

func TestRunWSSAComparison(t *testing.T) {
	ds, err := DataSet1(10)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := RunWSSAComparison(ds, RunConfig{PopulationSize: 10, Checkpoints: []int{20}, Seed: 14}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.WSSAPoints) != 6 {
		t.Fatalf("%d SA points, want 6 default weights", len(cmp.WSSAPoints))
	}
	if len(cmp.NSGA2Front) == 0 {
		t.Fatal("empty NSGA-II front")
	}
	if cmp.NSGA2Evaluations <= 0 || cmp.WSSAEvaluations <= 0 {
		t.Fatal("budgets not recorded")
	}
	var buf bytes.Buffer
	cmp.Write(&buf)
	if !strings.Contains(buf.String(), "coverage") {
		t.Fatal("comparison output missing coverage line")
	}
}

func TestRunMutationSweep(t *testing.T) {
	ds, err := DataSet1(11)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := RunMutationSweep(ds, RunConfig{PopulationSize: 10, Checkpoints: []int{15}, Seed: 15}, []float64{0.05, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Hypervolumes) != 2 || len(sweep.FrontSizes) != 2 {
		t.Fatalf("sweep shape wrong: %+v", sweep)
	}
	if sweep.BestRate != 0.05 && sweep.BestRate != 0.3 {
		t.Fatalf("BestRate = %v", sweep.BestRate)
	}
	for _, hv := range sweep.Hypervolumes {
		if hv < 0 {
			t.Fatal("negative hypervolume")
		}
	}
	var buf bytes.Buffer
	sweep.Write(&buf)
	if !strings.Contains(buf.String(), "<- best") {
		t.Fatal("sweep output missing best marker")
	}
}

func TestRunOnlineStudy(t *testing.T) {
	ds, err := DataSet1(12)
	if err != nil {
		t.Fatal(err)
	}
	study, err := RunOnlineStudy(ds, RunConfig{PopulationSize: 16, Checkpoints: []int{25}, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Policies) != 5 {
		t.Fatalf("%d policy rows", len(study.Policies))
	}
	if study.BudgetJoules <= 0 {
		t.Fatal("no budget derived")
	}
	for _, row := range study.Policies {
		if row.Name == "budgeted@peak" && row.Point.Energy > study.BudgetJoules+1e-9 {
			t.Fatalf("budgeted policy exceeded its budget: %v > %v", row.Point.Energy, study.BudgetJoules)
		}
	}
	var buf bytes.Buffer
	study.Write(&buf)
	if !strings.Contains(buf.String(), "budgeted@peak") {
		t.Fatal("study output missing budgeted row")
	}
}

func TestRunHeterogeneityStudy(t *testing.T) {
	study, err := RunHeterogeneityStudy(2000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if study.GramCharlierDistance < 0 || study.CVBDistance < 0 {
		t.Fatal("negative distances")
	}
	// The headline: the Gram-Charlier method preserves all three
	// measures; with a large sample its distance to the real signature
	// must be well below the two-knob CVB baseline's.
	if !(study.GramCharlierDistance < study.CVBDistance) {
		t.Fatalf("Gram-Charlier distance %v not below CVB %v",
			study.GramCharlierDistance, study.CVBDistance)
	}
	if _, err := RunHeterogeneityStudy(2, 1); err == nil {
		t.Fatal("tiny study accepted")
	}
	var buf bytes.Buffer
	study.Write(&buf)
	if !strings.Contains(buf.String(), "gram-charlier") {
		t.Fatal("study output incomplete")
	}
}

func TestConvergenceChart(t *testing.T) {
	ds, err := DataSet1(18)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConvergence(ds, RunConfig{PopulationSize: 10, Checkpoints: []int{2, 8}, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	chart := res.Chart()
	if len(chart.Series) != 5 {
		t.Fatalf("%d chart series", len(chart.Series))
	}
	if !chart.LogX {
		t.Fatal("convergence chart should be log-x")
	}
	svg := chart.SVG(640, 480)
	if !strings.Contains(svg, "polyline") {
		t.Fatal("chart SVG missing lines")
	}
}

func TestRunAblation(t *testing.T) {
	ds, err := DataSet1(20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAblation(ds, RunConfig{PopulationSize: 10, Checkpoints: []int{15}, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d ablation rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Hypervolume < 0 || row.FrontSize == 0 {
			t.Fatalf("bad row %+v", row)
		}
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "repair=shuffle") {
		t.Fatal("ablation output incomplete")
	}
}

func TestRunRepeats(t *testing.T) {
	ds, err := DataSet1(22)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRepeats(ds, RunConfig{PopulationSize: 10, Checkpoints: []int{10}, Seed: 23}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 5 || len(res.Hypervolumes) != 5 || len(res.MaxUtilities) != 5 {
		t.Fatalf("repeat result shape wrong: %+v", res)
	}
	for i := range res.Names {
		h := res.Hypervolumes[i]
		if h.Runs != 3 {
			t.Fatalf("%s: %d runs recorded", res.Names[i], h.Runs)
		}
		if !(h.Min <= h.Q1 && h.Q1 <= h.Median && h.Median <= h.Q3 && h.Q3 <= h.Max) {
			t.Fatalf("%s: quantiles out of order: %+v", res.Names[i], h)
		}
	}
	if _, err := RunRepeats(ds, RunConfig{}, 1); err == nil {
		t.Fatal("single run accepted")
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "hypervolume (min/med/max)") {
		t.Fatal("repeats output incomplete")
	}
}

func TestSummarizeQuantiles(t *testing.T) {
	s := summarize([]float64{4, 1, 3, 2, 5})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("summarize wrong: %+v", s)
	}
	one := summarize([]float64{7})
	if one.Min != 7 || one.Median != 7 || one.Max != 7 {
		t.Fatalf("single-value summary wrong: %+v", one)
	}
}

// TestCheckpointZeroSurvivesScaling pins the generation-0 contract:
// scaling must not erase an explicit 0 checkpoint (the initial
// population's front) while still clamping positive ones to >= 1.
func TestCheckpointZeroSurvivesScaling(t *testing.T) {
	ds, err := DataSet1(7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{Scale: 0.01, Checkpoints: []int{0, 10, 100}}.withDefaults(ds)
	want := []int{0, 1, 1}
	if len(cfg.Checkpoints) != len(want) {
		t.Fatalf("checkpoints %v, want %v", cfg.Checkpoints, want)
	}
	for i := range want {
		if cfg.Checkpoints[i] != want[i] {
			t.Fatalf("checkpoints %v, want %v", cfg.Checkpoints, want)
		}
	}
}

// TestRunConvergenceGenerationZero checks that an explicit generation-0
// checkpoint reaches the convergence measurement as the baseline point.
func TestRunConvergenceGenerationZero(t *testing.T) {
	ds, err := DataSet1(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConvergence(ds, RunConfig{PopulationSize: 10, Checkpoints: []int{0, 4}, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Variants {
		gens := v.Convergence.Generations
		if len(gens) != 2 || gens[0] != 0 || gens[1] != 4 {
			t.Fatalf("%s: checkpoint generations %v, want [0 4]", v.Variant, gens)
		}
	}
}

// eventLog records labeled generation and run events for the experiment
// drivers' telemetry tests.
type eventLog struct {
	labels []string
	gens   []int
	runs   []obs.RunEvent
}

func (l *eventLog) ObserveGeneration(g obs.GenerationStats) {
	l.labels = append(l.labels, g.Label)
	l.gens = append(l.gens, g.Generation)
}

func (l *eventLog) ObserveMigration(obs.MigrationEvent) {}

func (l *eventLog) ObserveRun(e obs.RunEvent) { l.runs = append(l.runs, e) }

// TestRunConvergenceObserverLabels checks that experiment telemetry is
// labeled "dataset/variant" and generations increase per label.
func TestRunConvergenceObserverLabels(t *testing.T) {
	ds, err := DataSet1(8)
	if err != nil {
		t.Fatal(err)
	}
	log := &eventLog{}
	_, err = RunConvergence(ds, RunConfig{PopulationSize: 10, Checkpoints: []int{3}, Seed: 12, Observer: log})
	if err != nil {
		t.Fatal(err)
	}
	if len(log.labels) == 0 {
		t.Fatal("no generation events observed")
	}
	seen := map[string]int{}
	for i, label := range log.labels {
		if !strings.HasPrefix(label, ds.Name+"/conv-") {
			t.Fatalf("event %d: label %q, want prefix %q", i, label, ds.Name+"/conv-")
		}
		if last, ok := seen[label]; ok && log.gens[i] <= last {
			t.Fatalf("label %q: generation %d after %d", label, log.gens[i], last)
		}
		seen[label] = log.gens[i]
	}
	if len(seen) != len(Variants()) {
		t.Fatalf("%d labels, want one per variant (%d)", len(seen), len(Variants()))
	}
}

// TestRunRepeatsObserverDeterministic checks that per-run telemetry is
// emitted in grid order regardless of worker count, and that observing
// changes no statistic.
func TestRunRepeatsObserverDeterministic(t *testing.T) {
	ds, err := DataSet1(9)
	if err != nil {
		t.Fatal(err)
	}
	sweep := func(workers int, log *eventLog) *RepeatResult {
		cfg := RunConfig{PopulationSize: 8, Checkpoints: []int{3}, Seed: 5, Workers: workers}
		if log != nil {
			cfg.Observer = log
		}
		res, err := RunRepeats(ds, cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	logSerial, logParallel := &eventLog{}, &eventLog{}
	plain := sweep(1, nil)
	serial := sweep(1, logSerial)
	parallel := sweep(4, logParallel)

	wantEvents := len(Variants()) * 2
	if len(logSerial.runs) != wantEvents || len(logParallel.runs) != wantEvents {
		t.Fatalf("run events %d / %d, want %d", len(logSerial.runs), len(logParallel.runs), wantEvents)
	}
	for i := range logSerial.runs {
		if logSerial.runs[i] != logParallel.runs[i] {
			t.Fatalf("run event %d differs across worker counts:\n%+v\n%+v",
				i, logSerial.runs[i], logParallel.runs[i])
		}
		wantVariant := Variants()[i/2].Name
		if logSerial.runs[i].Variant != wantVariant || logSerial.runs[i].Run != i%2 {
			t.Fatalf("run event %d out of grid order: %+v", i, logSerial.runs[i])
		}
		if logSerial.runs[i].Dataset != ds.Name {
			t.Fatalf("run event %d dataset %q", i, logSerial.runs[i].Dataset)
		}
	}
	for vi := range plain.Names {
		if plain.Hypervolumes[vi] != serial.Hypervolumes[vi] || serial.Hypervolumes[vi] != parallel.Hypervolumes[vi] {
			t.Fatalf("variant %s: hypervolume stats diverged with observer/workers", plain.Names[vi])
		}
	}
}
