package experiments

import (
	"reflect"
	"testing"

	"tradeoff/internal/nsga2"
	"tradeoff/internal/rng"
)

// smallDataSets builds scaled-down instances of all three paper data
// sets: the real 9x5 system and the enlarged 30x13 system with two trace
// sizes. Full-size traces would make the cross-check needlessly slow;
// the system/trace structure is what varies between the data sets.
func smallDataSets(t *testing.T) []*DataSet {
	t.Helper()
	var out []*DataSet
	for i, build := range []func(uint64) (*DataSet, error){DataSet1, DataSet2, DataSet3} {
		ds, err := build(uint64(50 + i))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ds)
	}
	return out
}

// TestDeltaEvaluationMatchesFullOnDataSets runs a delta-evaluation and a
// full-evaluation engine with the same rng stream on each of the three
// paper data sets and requires bitwise-identical Pareto fronts — the
// incremental path must be invisible on every system/trace shape, not
// just the unit-test instances.
func TestDeltaEvaluationMatchesFullOnDataSets(t *testing.T) {
	if testing.Short() {
		t.Skip("full data-set construction is slow")
	}
	for _, ds := range smallDataSets(t) {
		run := func(mode nsga2.Evaluation) [][]float64 {
			eng, err := nsga2.New(ds.Evaluator, nsga2.Config{
				PopulationSize: 20,
				Evaluation:     mode,
				Workers:        1,
			}, rng.NewStream(3, hashName(ds.Name)))
			if err != nil {
				t.Fatal(err)
			}
			eng.Run(6)
			return eng.FrontPoints()
		}
		delta := run(nsga2.DeltaEvaluation)
		full := run(nsga2.FullEvaluation)
		if !reflect.DeepEqual(delta, full) {
			t.Fatalf("%s: delta front diverged from full front", ds.Name)
		}
	}
}

// TestRunRepeatsWorkerInvariance checks that the parallel variant × run
// fan-out reproduces the serial sweep exactly for every worker count.
func TestRunRepeatsWorkerInvariance(t *testing.T) {
	ds, err := DataSet1(22)
	if err != nil {
		t.Fatal(err)
	}
	base := RunConfig{PopulationSize: 10, Checkpoints: []int{8}, Seed: 23}
	run := func(workers int) *RepeatResult {
		cfg := base
		cfg.Workers = workers
		res, err := RunRepeats(ds, cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 7} {
		if got := run(workers); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: RunRepeats diverged from serial sweep", workers)
		}
	}
}
