package experiments

import (
	"fmt"
	"io"

	"tradeoff/internal/analysis"
	"tradeoff/internal/heuristics"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/online"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// OnlineStudy demonstrates the workflow the paper proposes in §VI: run
// the offline bi-objective analysis, read the energy of the maximum
// utility-per-energy solution off the front, and hand it to an online
// dynamic heuristic as its energy constraint. The study reports each
// online policy's outcome next to the offline front (which upper-bounds
// what any online policy can achieve on the same trace).
type OnlineStudy struct {
	DataSet string
	// Front is the offline NSGA-II front.
	Front []analysis.FrontPoint
	// BudgetJoules is the energy constraint derived from the front's
	// efficient region.
	BudgetJoules float64
	// Policies holds one row per online policy.
	Policies []OnlinePolicyRow
}

// OnlinePolicyRow is one policy's outcome.
type OnlinePolicyRow struct {
	Name    string
	Point   analysis.FrontPoint
	Dropped int
	// OfflineUtilityAtSameEnergy interpolates the offline front at the
	// policy's energy; Ratio = online utility / offline utility.
	OfflineUtilityAtSameEnergy float64
	Ratio                      float64
}

// RunOnlineStudy runs the offline analysis and then the online policies.
func RunOnlineStudy(ds *DataSet, cfg RunConfig) (*OnlineStudy, error) {
	cfg = cfg.withDefaults(ds)
	// Offline: a well-seeded NSGA-II run to the final checkpoint.
	var seeds []*sched.Allocation
	for _, h := range heuristics.All {
		a, err := h.Build(ds.Evaluator)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, a)
	}
	eng, err := nsga2.New(ds.Evaluator, nsga2.Config{
		PopulationSize:       cfg.PopulationSize,
		MutationRate:         cfg.MutationRate,
		Seeds:                seeds,
		Workers:              cfg.Workers,
		CacheCapacity:        cfg.CacheCapacity,
		MachineCacheCapacity: cfg.MachineCacheCapacity,
		Kernel:               cfg.Kernel,
	}, rng.NewStream(cfg.Seed, hashName("online-offline")))
	if err != nil {
		return nil, err
	}
	eng.Run(cfg.Checkpoints[len(cfg.Checkpoints)-1])
	front := analysis.FromObjectives(eng.FrontPoints())
	region, err := analysis.AnalyzeUPE(front, 0.05)
	if err != nil {
		return nil, err
	}
	study := &OnlineStudy{DataSet: ds.Name, Front: front, BudgetJoules: region.Peak.Energy}

	window := ds.Trace.Window
	policies := []online.Policy{
		online.GreedyEnergy{},
		online.GreedyUPE{},
		online.GreedyUtility{},
		online.Budgeted{Budget: study.BudgetJoules, Window: window, DropZeroUtility: true},
		online.Budgeted{Budget: study.BudgetJoules * 1.25, Window: window, DropZeroUtility: true},
	}
	names := []string{"", "", "", "budgeted@peak", "budgeted@1.25peak"}
	for i, p := range policies {
		res, err := online.Simulate(ds.Evaluator, p)
		if err != nil {
			return nil, err
		}
		name := names[i]
		if name == "" {
			name = p.Name()
		}
		pt := analysis.FrontPoint{Utility: res.Evaluation.Utility, Energy: res.Evaluation.Energy}
		offU, err := analysis.Interpolate(front, pt.Energy)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if offU > 0 {
			ratio = pt.Utility / offU
		}
		study.Policies = append(study.Policies, OnlinePolicyRow{
			Name:                       name,
			Point:                      pt,
			Dropped:                    res.Dropped,
			OfflineUtilityAtSameEnergy: offU,
			Ratio:                      ratio,
		})
	}
	return study, nil
}

// Write prints the study.
func (s *OnlineStudy) Write(w io.Writer) {
	fmt.Fprintf(w, "%s: offline front (%d points) informing online heuristics\n", s.DataSet, len(s.Front))
	fmt.Fprintf(w, "  energy budget from the efficient region: %.4f MJ\n", s.BudgetJoules/1e6)
	fmt.Fprintf(w, "  %-22s %14s %12s %8s %16s %8s\n",
		"policy", "energy (MJ)", "utility", "dropped", "offline@same E", "ratio")
	for _, row := range s.Policies {
		fmt.Fprintf(w, "  %-22s %14.4f %12.1f %8d %16.1f %8.2f\n",
			row.Name, row.Point.Energy/1e6, row.Point.Utility, row.Dropped,
			row.OfflineUtilityAtSameEnergy, row.Ratio)
	}
}
