package experiments

import (
	"fmt"
	"io"

	"tradeoff/internal/analysis"
	"tradeoff/internal/moea"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/rng"
	"tradeoff/internal/wssa"
)

// WSSAComparison contrasts the paper's one-run-one-front NSGA-II approach
// against the related-work weighted-sum simulated-annealing protocol
// (§II, ref [8]): the annealer needs one full run per trade-off point.
type WSSAComparison struct {
	DataSet string
	// NSGA2Front is the front of a single NSGA-II run.
	NSGA2Front []analysis.FrontPoint
	// WSSAPoints holds one point per annealing run, in weight order.
	Weights    []float64
	WSSAPoints []analysis.FrontPoint
	// CoverageNSGA2OverWSSA is the fraction of annealing points the
	// NSGA-II front dominates.
	CoverageNSGA2OverWSSA float64
	// CoverageWSSAOverNSGA2 is the reverse coverage.
	CoverageWSSAOverNSGA2 float64
	// Budgets: total allocation evaluations spent by each approach.
	NSGA2Evaluations int
	WSSAEvaluations  int
}

// RunWSSAComparison gives both solvers a comparable evaluation budget:
// NSGA-II runs G generations of a size-N population (≈ N·(G+1)
// evaluations); the annealer splits the same budget across the weight
// ladder.
func RunWSSAComparison(ds *DataSet, cfg RunConfig, weights []float64) (*WSSAComparison, error) {
	cfg = cfg.withDefaults(ds)
	if len(weights) == 0 {
		weights = []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
	}
	gens := cfg.Checkpoints[len(cfg.Checkpoints)-1]

	eng, err := nsga2.New(ds.Evaluator, nsga2.Config{
		PopulationSize:       cfg.PopulationSize,
		MutationRate:         cfg.MutationRate,
		Workers:              cfg.Workers,
		CacheCapacity:        cfg.CacheCapacity,
		MachineCacheCapacity: cfg.MachineCacheCapacity,
		Kernel:               cfg.Kernel,
	}, rng.NewStream(cfg.Seed, hashName("wssa-nsga2")))
	if err != nil {
		return nil, err
	}
	eng.Run(gens)
	front := analysis.FromObjectives(eng.FrontPoints())

	totalBudget := cfg.PopulationSize * (gens + 1)
	perRun := totalBudget / len(weights)
	if perRun < 1 {
		perRun = 1
	}
	results, err := wssa.Ladder(ds.Evaluator, weights, wssa.Config{Iterations: perRun},
		rng.NewStream(cfg.Seed, hashName("wssa-ladder")))
	if err != nil {
		return nil, err
	}
	var pts []analysis.FrontPoint
	for _, r := range results {
		pts = append(pts, analysis.FrontPoint{Utility: r.Evaluation.Utility, Energy: r.Evaluation.Energy})
	}

	sp := moea.UtilityEnergySpace()
	cmp := &WSSAComparison{
		DataSet:          ds.Name,
		NSGA2Front:       front,
		Weights:          weights,
		WSSAPoints:       pts,
		NSGA2Evaluations: totalBudget,
		WSSAEvaluations:  perRun * len(weights),
	}
	cmp.CoverageNSGA2OverWSSA = sp.Coverage(analysis.ToObjectives(front), analysis.ToObjectives(pts))
	cmp.CoverageWSSAOverNSGA2 = sp.Coverage(analysis.ToObjectives(pts), analysis.ToObjectives(front))
	return cmp, nil
}

// Write prints the comparison.
func (c *WSSAComparison) Write(w io.Writer) {
	fmt.Fprintf(w, "%s: NSGA-II (one run, %d evaluations) vs weighted-sum SA (%d runs, %d evaluations)\n",
		c.DataSet, c.NSGA2Evaluations, len(c.Weights), c.WSSAEvaluations)
	fmt.Fprintf(w, "  NSGA-II front: %d trade-off points from a single run\n", len(c.NSGA2Front))
	fmt.Fprintf(w, "  %-10s %14s %14s\n", "weight", "energy (MJ)", "utility")
	for i, p := range c.WSSAPoints {
		fmt.Fprintf(w, "  %-10.2f %14.4f %14.1f\n", c.Weights[i], p.Energy/1e6, p.Utility)
	}
	fmt.Fprintf(w, "  coverage: NSGA-II dominates %.0f%% of SA points; SA dominates %.0f%% of the NSGA-II front\n",
		100*c.CoverageNSGA2OverWSSA, 100*c.CoverageWSSAOverNSGA2)
}
