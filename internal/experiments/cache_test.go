package experiments

import (
	"reflect"
	"testing"

	"tradeoff/internal/nsga2"
	"tradeoff/internal/rng"
)

// TestCacheMatchesUncachedOnDataSets runs a memoizing and a
// non-memoizing engine with the same rng stream on each of the three
// paper data sets — the real 9x5 system and both enlarged traces —
// across worker counts and repair strategies, and requires bitwise-
// identical Pareto fronts at every generation. The cache must be
// invisible on every system/trace shape, not just the unit-test
// instances.
func TestCacheMatchesUncachedOnDataSets(t *testing.T) {
	if testing.Short() {
		t.Skip("full data-set construction is slow")
	}
	for _, ds := range smallDataSets(t) {
		for _, workers := range []int{1, 4} {
			for _, repair := range []nsga2.Repair{nsga2.RerankRepair, nsga2.ShuffleRepair} {
				run := func(cacheCapacity int) [][][]float64 {
					eng, err := nsga2.New(ds.Evaluator, nsga2.Config{
						PopulationSize: 20,
						Workers:        workers,
						Repair:         repair,
						CacheCapacity:  cacheCapacity,
					}, rng.NewStream(3, hashName(ds.Name)))
					if err != nil {
						t.Fatal(err)
					}
					var fronts [][][]float64
					for gen := 0; gen < 6; gen++ {
						eng.Step()
						fronts = append(fronts, eng.FrontPoints())
					}
					return fronts
				}
				cached := run(0) // engine default capacity
				uncached := run(-1)
				if !reflect.DeepEqual(cached, uncached) {
					t.Fatalf("%s workers=%d repair=%v: cached fronts diverged from uncached",
						ds.Name, workers, repair)
				}
			}
		}
	}
}
