package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tradeoff/internal/analysis"
	"tradeoff/internal/moea"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/obs"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// RepeatStats summarizes a metric across repeated runs with different
// random seeds — the variance reporting the paper's single-run figures
// omit, and the first thing a reviewer of a stochastic-search study asks
// for.
type RepeatStats struct {
	Runs   int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

func summarize(values []float64) RepeatStats {
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	quantile := func(p float64) float64 {
		if len(v) == 1 {
			return v[0]
		}
		pos := p * float64(len(v)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 >= len(v) {
			return v[len(v)-1]
		}
		return v[lo] + frac*(v[lo+1]-v[lo])
	}
	return RepeatStats{
		Runs:   len(v),
		Min:    v[0],
		Q1:     quantile(0.25),
		Median: quantile(0.5),
		Q3:     quantile(0.75),
		Max:    v[len(v)-1],
	}
}

// RepeatResult holds per-variant distributions of front quality across
// repeated seeded runs.
type RepeatResult struct {
	DataSet     string
	Generations int
	Runs        int
	// Hypervolume and MaxUtility distributions per variant, in
	// Variants() order.
	Names        []string
	Hypervolumes []RepeatStats
	MaxUtilities []RepeatStats
}

// RunRepeats evolves every seeding variant `runs` times with distinct
// seeds and reports hypervolume and best-utility distributions under a
// common reference point.
//
// The variant × run grid fans out across cfg.Workers goroutines (0 =
// GOMAXPROCS). Each run owns its engine and its per-(variant, run) rng
// stream, the shared evaluator is read-only, and results land in
// grid-indexed slots, so the outcome is bit-identical to a serial sweep
// for every worker count.
func RunRepeats(ds *DataSet, cfg RunConfig, runs int) (*RepeatResult, error) {
	if runs < 2 {
		return nil, fmt.Errorf("experiments: need >= 2 runs, got %d", runs)
	}
	cfg = cfg.withDefaults(ds)
	gens := cfg.Checkpoints[len(cfg.Checkpoints)-1]
	res := &RepeatResult{DataSet: ds.Name, Generations: gens, Runs: runs}

	// Build the seed allocations serially — heuristics share the
	// evaluator's sessions — then fan the independent runs out.
	variants := Variants()
	seeds := make([][]*sched.Allocation, len(variants))
	for vi, v := range variants {
		if v.Seed != nil {
			alloc, err := v.Seed.Build(ds.Evaluator)
			if err != nil {
				return nil, err
			}
			seeds[vi] = append(seeds[vi], alloc)
		}
		res.Names = append(res.Names, v.Name)
	}

	jobs := len(variants) * runs // job vi*runs+r = (variant vi, run r)
	fronts := make([][]analysis.FrontPoint, jobs)
	errs := make([]error, jobs)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= jobs {
					return
				}
				vi, r := j/runs, j%runs
				eng, err := nsga2.New(ds.Evaluator, nsga2.Config{
					PopulationSize:       cfg.PopulationSize,
					MutationRate:         cfg.MutationRate,
					Seeds:                seeds[vi],
					Workers:              1, // parallelism lives in the run fan-out here
					CacheCapacity:        cfg.CacheCapacity,
					MachineCacheCapacity: cfg.MachineCacheCapacity,
					Kernel:               cfg.Kernel,
				}, rng.NewStream(cfg.Seed+uint64(r)*7919, hashName(variants[vi].Name)))
				if err != nil {
					errs[j] = err
					continue
				}
				eng.Run(gens)
				fronts[j] = analysis.FromObjectives(eng.FrontPoints())
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	sp := moea.UtilityEnergySpace()
	sets := make([][][]float64, jobs)
	for i, f := range fronts {
		sets[i] = analysis.ToObjectives(f)
	}
	ref := sp.ReferenceFrom(0.05, sets...)
	hv := make([][]float64, len(res.Names))
	mu := make([][]float64, len(res.Names))
	for i, f := range fronts {
		vi, r := i/runs, i%runs
		h := sp.Hypervolume2D(sets[i], ref)
		hv[vi] = append(hv[vi], h)
		best := 0.0
		for _, p := range f {
			if p.Utility > best {
				best = p.Utility
			}
		}
		mu[vi] = append(mu[vi], best)
		// Per-run telemetry is emitted here, in the serial aggregation
		// loop in grid order, so event order is deterministic for every
		// worker count (the run goroutines themselves must not observe).
		if cfg.Observer != nil {
			cfg.Observer.ObserveRun(obs.RunEvent{
				Dataset:     ds.Name,
				Variant:     res.Names[vi],
				Run:         r,
				Seed:        cfg.Seed + uint64(r)*7919,
				Hypervolume: h,
				MaxUtility:  best,
				FrontSize:   len(f),
			})
		}
	}
	for vi := range res.Names {
		res.Hypervolumes = append(res.Hypervolumes, summarize(hv[vi]))
		res.MaxUtilities = append(res.MaxUtilities, summarize(mu[vi]))
	}
	return res, nil
}

// Write prints the distributions.
func (r *RepeatResult) Write(w io.Writer) {
	fmt.Fprintf(w, "%s: %d runs x %d generations per variant (common reference)\n", r.DataSet, r.Runs, r.Generations)
	fmt.Fprintf(w, "  %-24s %36s %28s\n", "", "hypervolume (min/med/max)", "max utility (min/med/max)")
	for i, name := range r.Names {
		h, u := r.Hypervolumes[i], r.MaxUtilities[i]
		fmt.Fprintf(w, "  %-24s %11.3g %11.3g %11.3g %9.1f %9.1f %9.1f\n",
			name, h.Min, h.Median, h.Max, u.Min, u.Median, u.Max)
	}
}
