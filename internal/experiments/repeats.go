package experiments

import (
	"fmt"
	"io"
	"sort"

	"tradeoff/internal/analysis"
	"tradeoff/internal/moea"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// RepeatStats summarizes a metric across repeated runs with different
// random seeds — the variance reporting the paper's single-run figures
// omit, and the first thing a reviewer of a stochastic-search study asks
// for.
type RepeatStats struct {
	Runs   int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

func summarize(values []float64) RepeatStats {
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	quantile := func(p float64) float64 {
		if len(v) == 1 {
			return v[0]
		}
		pos := p * float64(len(v)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 >= len(v) {
			return v[len(v)-1]
		}
		return v[lo] + frac*(v[lo+1]-v[lo])
	}
	return RepeatStats{
		Runs:   len(v),
		Min:    v[0],
		Q1:     quantile(0.25),
		Median: quantile(0.5),
		Q3:     quantile(0.75),
		Max:    v[len(v)-1],
	}
}

// RepeatResult holds per-variant distributions of front quality across
// repeated seeded runs.
type RepeatResult struct {
	DataSet     string
	Generations int
	Runs        int
	// Hypervolume and MaxUtility distributions per variant, in
	// Variants() order.
	Names        []string
	Hypervolumes []RepeatStats
	MaxUtilities []RepeatStats
}

// RunRepeats evolves every seeding variant `runs` times with distinct
// seeds and reports hypervolume and best-utility distributions under a
// common reference point.
func RunRepeats(ds *DataSet, cfg RunConfig, runs int) (*RepeatResult, error) {
	if runs < 2 {
		return nil, fmt.Errorf("experiments: need >= 2 runs, got %d", runs)
	}
	cfg = cfg.withDefaults(ds)
	gens := cfg.Checkpoints[len(cfg.Checkpoints)-1]
	res := &RepeatResult{DataSet: ds.Name, Generations: gens, Runs: runs}

	type runFront struct {
		variant int
		front   []analysis.FrontPoint
	}
	var fronts []runFront
	for vi, v := range Variants() {
		var seeds []*sched.Allocation
		if v.Seed != nil {
			alloc, err := v.Seed.Build(ds.Evaluator)
			if err != nil {
				return nil, err
			}
			seeds = append(seeds, alloc)
		}
		for r := 0; r < runs; r++ {
			eng, err := nsga2.New(ds.Evaluator, nsga2.Config{
				PopulationSize: cfg.PopulationSize,
				MutationRate:   cfg.MutationRate,
				Seeds:          seeds,
				Workers:        cfg.Workers,
			}, rng.NewStream(cfg.Seed+uint64(r)*7919, hashName(v.Name)))
			if err != nil {
				return nil, err
			}
			eng.Run(gens)
			fronts = append(fronts, runFront{variant: vi, front: analysis.FromObjectives(eng.FrontPoints())})
		}
		res.Names = append(res.Names, v.Name)
	}

	sp := moea.UtilityEnergySpace()
	sets := make([][][]float64, len(fronts))
	for i, f := range fronts {
		sets[i] = analysis.ToObjectives(f.front)
	}
	ref := sp.ReferenceFrom(0.05, sets...)
	hv := make([][]float64, len(res.Names))
	mu := make([][]float64, len(res.Names))
	for i, f := range fronts {
		hv[f.variant] = append(hv[f.variant], sp.Hypervolume2D(sets[i], ref))
		best := 0.0
		for _, p := range f.front {
			if p.Utility > best {
				best = p.Utility
			}
		}
		mu[f.variant] = append(mu[f.variant], best)
	}
	for vi := range res.Names {
		res.Hypervolumes = append(res.Hypervolumes, summarize(hv[vi]))
		res.MaxUtilities = append(res.MaxUtilities, summarize(mu[vi]))
	}
	return res, nil
}

// Write prints the distributions.
func (r *RepeatResult) Write(w io.Writer) {
	fmt.Fprintf(w, "%s: %d runs x %d generations per variant (common reference)\n", r.DataSet, r.Runs, r.Generations)
	fmt.Fprintf(w, "  %-24s %36s %28s\n", "", "hypervolume (min/med/max)", "max utility (min/med/max)")
	for i, name := range r.Names {
		h, u := r.Hypervolumes[i], r.MaxUtilities[i]
		fmt.Fprintf(w, "  %-24s %11.3g %11.3g %11.3g %9.1f %9.1f %9.1f\n",
			name, h.Min, h.Median, h.Max, u.Min, u.Median, u.Max)
	}
}
