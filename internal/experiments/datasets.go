// Package experiments reproduces the paper's evaluation: the three data
// sets of §V-A, the seeded-population Pareto-front studies of Figs. 3, 4
// and 6, the utility-per-energy region analysis of Fig. 5, and the three
// tables. Every experiment is deterministic in its seed and scales its
// iteration counts so the full suite runs on a laptop; paper-scale
// counts remain available behind the Scale knob (see EXPERIMENTS.md).
package experiments

import (
	"fmt"

	"tradeoff/internal/data"
	"tradeoff/internal/datagen"
	"tradeoff/internal/hcs"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
	"tradeoff/internal/workload"
)

// DataSet bundles a system, a trace, and the iteration checkpoints the
// paper evaluates that data set at.
type DataSet struct {
	Name        string
	Description string
	System      *hcs.System
	Trace       *workload.Trace
	Evaluator   *sched.Evaluator
	// PaperCheckpoints are the iteration counts of the paper's figures.
	PaperCheckpoints []int
	// DefaultCheckpoints are laptop-scale counts preserving the figures'
	// qualitative shape.
	DefaultCheckpoints []int
}

// DataSet1 is the real historical data set: nine benchmark machines, five
// task types, 250 tasks arriving over 15 minutes (§V-A).
func DataSet1(seed uint64) (*DataSet, error) {
	sys := data.RealSystem()
	return buildDataSet("dataset1",
		"real 9x5 benchmark data, 250 tasks / 15 min",
		sys, 250, 15*60, seed,
		[]int{100, 1000, 10000, 100000},
		[]int{100, 500, 2500, 10000},
	)
}

// DataSet2 is the enlarged synthetic environment (30 machines over 13
// machine types, 30 task types) with 1000 tasks over 15 minutes.
func DataSet2(seed uint64) (*DataSet, error) {
	sys, err := datagen.Enlarge(data.RealSystem(), datagen.Default(), rng.NewStream(seed, 2))
	if err != nil {
		return nil, err
	}
	return buildDataSet("dataset2",
		"synthetic 30x13 environment, 1000 tasks / 15 min",
		sys, 1000, 15*60, seed,
		[]int{1000, 10000, 100000, 1000000},
		[]int{250, 1000, 4000, 12000},
	)
}

// DataSet3 is the enlarged environment with 4000 tasks over one hour.
func DataSet3(seed uint64) (*DataSet, error) {
	sys, err := datagen.Enlarge(data.RealSystem(), datagen.Default(), rng.NewStream(seed, 3))
	if err != nil {
		return nil, err
	}
	return buildDataSet("dataset3",
		"synthetic 30x13 environment, 4000 tasks / 1 h",
		sys, 4000, 3600, seed,
		[]int{1000, 10000, 100000, 1000000},
		[]int{100, 500, 2000, 6000},
	)
}

// ByNumber returns data set 1, 2 or 3.
func ByNumber(n int, seed uint64) (*DataSet, error) {
	switch n {
	case 1:
		return DataSet1(seed)
	case 2:
		return DataSet2(seed)
	case 3:
		return DataSet3(seed)
	default:
		return nil, fmt.Errorf("experiments: no data set %d (want 1-3)", n)
	}
}

func buildDataSet(name, desc string, sys *hcs.System, tasks int, window float64, seed uint64, paperCPs, defaultCPs []int) (*DataSet, error) {
	tr, err := workload.Generate(sys, workload.GenConfig{
		NumTasks: tasks,
		Window:   window,
	}, rng.NewStream(seed, 10))
	if err != nil {
		return nil, fmt.Errorf("experiments: %s trace: %w", name, err)
	}
	ev, err := sched.NewEvaluator(sys, tr)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s evaluator: %w", name, err)
	}
	return &DataSet{
		Name:               name,
		Description:        desc,
		System:             sys,
		Trace:              tr,
		Evaluator:          ev,
		PaperCheckpoints:   paperCPs,
		DefaultCheckpoints: defaultCPs,
	}, nil
}
