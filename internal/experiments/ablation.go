package experiments

import (
	"fmt"
	"io"

	"tradeoff/internal/analysis"
	"tradeoff/internal/moea"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/rng"
)

// AblationResult scores the engine design choices DESIGN.md §4 calls
// out — permutation repair, ranking rule, and parent selection — by the
// hypervolume each variant reaches under an identical budget and seed.
type AblationResult struct {
	DataSet     string
	Generations int
	Rows        []AblationRow
}

// AblationRow is one configuration's outcome.
type AblationRow struct {
	Name        string
	Hypervolume float64
	FrontSize   int
}

// RunAblation evaluates the baseline configuration plus one-change
// variants.
func RunAblation(ds *DataSet, cfg RunConfig) (*AblationResult, error) {
	cfg = cfg.withDefaults(ds)
	gens := cfg.Checkpoints[len(cfg.Checkpoints)-1]
	// Each variant flips exactly one knob off the baseline; the zero
	// values are the engine defaults (RerankRepair, DebFronts,
	// UniformSelection).
	variants := []struct {
		name      string
		ranking   nsga2.Ranking
		repair    nsga2.Repair
		selection nsga2.Selection
	}{
		{name: "baseline (rerank/deb/uniform)"},
		{name: "repair=shuffle", repair: nsga2.ShuffleRepair},
		{name: "ranking=dominance-count", ranking: nsga2.DominanceCount},
		{name: "selection=tournament", selection: nsga2.TournamentSelection},
	}
	res := &AblationResult{DataSet: ds.Name, Generations: gens}
	var fronts [][]analysis.FrontPoint
	for _, v := range variants {
		ecfg := nsga2.Config{
			PopulationSize:       cfg.PopulationSize,
			MutationRate:         cfg.MutationRate,
			Ranking:              v.ranking,
			Workers:              cfg.Workers,
			Repair:               v.repair,
			Selection:            v.selection,
			CacheCapacity:        cfg.CacheCapacity,
			MachineCacheCapacity: cfg.MachineCacheCapacity,
			Kernel:               cfg.Kernel,
		}
		eng, err := nsga2.New(ds.Evaluator, ecfg, rng.NewStream(cfg.Seed, hashName("abl-"+v.name)))
		if err != nil {
			return nil, err
		}
		eng.Run(gens)
		front := analysis.FromObjectives(eng.FrontPoints())
		fronts = append(fronts, front)
		res.Rows = append(res.Rows, AblationRow{Name: v.name, FrontSize: len(front)})
	}
	sp := moea.UtilityEnergySpace()
	sets := make([][][]float64, len(fronts))
	for i, f := range fronts {
		sets[i] = analysis.ToObjectives(f)
	}
	ref := sp.ReferenceFrom(0.05, sets...)
	for i := range res.Rows {
		res.Rows[i].Hypervolume = sp.Hypervolume2D(sets[i], ref)
	}
	return res, nil
}

// Write prints the ablation table.
func (r *AblationResult) Write(w io.Writer) {
	fmt.Fprintf(w, "%s: design-choice ablation after %d generations (common reference)\n", r.DataSet, r.Generations)
	fmt.Fprintf(w, "  %-32s %14s %8s\n", "configuration", "hypervolume", "front")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-32s %14.4g %8d\n", row.Name, row.Hypervolume, row.FrontSize)
	}
}
