package experiments

import (
	"fmt"
	"io"

	"tradeoff/internal/analysis"
	"tradeoff/internal/moea"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/rng"
)

// MutationSweep reproduces the parameter-selection experiment behind the
// paper's statement that the mutation probability was "selected by
// experimentation" (§IV-D): for each candidate rate, evolve a population
// for a fixed budget and score the final front by hypervolume under a
// common reference.
type MutationSweep struct {
	DataSet     string
	Generations int
	Rates       []float64
	// Hypervolume per rate under a common reference.
	Hypervolumes []float64
	// FrontSizes per rate.
	FrontSizes []int
	// BestRate is the rate with the largest hypervolume.
	BestRate float64
}

// RunMutationSweep evaluates the candidate mutation rates. Nil rates
// default to {0.01, 0.05, 0.1, 0.2, 0.5}.
func RunMutationSweep(ds *DataSet, cfg RunConfig, rates []float64) (*MutationSweep, error) {
	cfg = cfg.withDefaults(ds)
	if rates == nil {
		rates = []float64{0.01, 0.05, 0.1, 0.2, 0.5}
	}
	gens := cfg.Checkpoints[len(cfg.Checkpoints)-1]
	sweep := &MutationSweep{DataSet: ds.Name, Generations: gens, Rates: rates}
	var fronts [][]analysis.FrontPoint
	for _, rate := range rates {
		eng, err := nsga2.New(ds.Evaluator, nsga2.Config{
			PopulationSize:       cfg.PopulationSize,
			MutationRate:         rate,
			Workers:              cfg.Workers,
			CacheCapacity:        cfg.CacheCapacity,
			MachineCacheCapacity: cfg.MachineCacheCapacity,
			Kernel:               cfg.Kernel,
		}, rng.NewStream(cfg.Seed, hashName(fmt.Sprintf("mut-%v", rate))))
		if err != nil {
			return nil, err
		}
		eng.Run(gens)
		front := analysis.FromObjectives(eng.FrontPoints())
		fronts = append(fronts, front)
		sweep.FrontSizes = append(sweep.FrontSizes, len(front))
	}
	sp := moea.UtilityEnergySpace()
	sets := make([][][]float64, len(fronts))
	for i, f := range fronts {
		sets[i] = analysis.ToObjectives(f)
	}
	ref := sp.ReferenceFrom(0.05, sets...)
	best := -1
	for i := range fronts {
		hv := sp.Hypervolume2D(sets[i], ref)
		sweep.Hypervolumes = append(sweep.Hypervolumes, hv)
		if best == -1 || hv > sweep.Hypervolumes[best] {
			best = i
		}
	}
	sweep.BestRate = rates[best]
	return sweep, nil
}

// Write prints the sweep.
func (s *MutationSweep) Write(w io.Writer) {
	fmt.Fprintf(w, "%s: mutation-rate sweep after %d generations\n", s.DataSet, s.Generations)
	fmt.Fprintf(w, "  %-10s %14s %10s\n", "rate", "hypervolume", "front")
	for i, r := range s.Rates {
		marker := ""
		if r == s.BestRate {
			marker = "   <- best"
		}
		fmt.Fprintf(w, "  %-10.2f %14.4g %10d%s\n", r, s.Hypervolumes[i], s.FrontSizes[i], marker)
	}
}
