package experiments

import (
	"fmt"

	"tradeoff/internal/data"
	"tradeoff/internal/datagen"
	"tradeoff/internal/sched"
)

// ScaleDataSet builds a paper-shaped scale instance beyond the three
// §V-A data sets: the enlarged synthetic 30×13 environment carrying an
// n-task trace. These are the 50k/200k/1M-task instances the scaling
// roadmap targets; datagen.Instance keeps the arrival density at data
// set 2's when window is zero and makes the whole instance
// deterministic in seed. Checkpoints follow data set 2's schedules.
func ScaleDataSet(tasks int, window float64, seed uint64) (*DataSet, error) {
	sys, tr, err := datagen.Instance(data.RealSystem(), datagen.Default(), tasks, window, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: scale instance: %w", err)
	}
	ev, err := sched.NewEvaluator(sys, tr)
	if err != nil {
		return nil, fmt.Errorf("experiments: scale evaluator: %w", err)
	}
	return &DataSet{
		Name:               fmt.Sprintf("scale-%s", humanTasks(tasks)),
		Description:        fmt.Sprintf("synthetic 30x13 environment, %d tasks / %.0f s", tasks, tr.Window),
		System:             sys,
		Trace:              tr,
		Evaluator:          ev,
		PaperCheckpoints:   []int{1000, 10000, 100000, 1000000},
		DefaultCheckpoints: []int{250, 1000, 4000, 12000},
	}, nil
}

// humanTasks renders a task count compactly: 50000 → "50k", 1000000 →
// "1m", 2500 → "2500".
func humanTasks(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dm", n/1_000_000)
	case n >= 1000 && n%1000 == 0:
		return fmt.Sprintf("%dk", n/1000)
	default:
		return fmt.Sprintf("%d", n)
	}
}
