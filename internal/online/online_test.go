package online

import (
	"math"
	"testing"

	"tradeoff/internal/data"
	"tradeoff/internal/heuristics"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
	"tradeoff/internal/workload"
)

func newEval(t testing.TB, n int, window float64) *sched.Evaluator {
	t.Helper()
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: n, Window: window}, rng.New(111))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sched.NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSimulateAllPoliciesValid(t *testing.T) {
	e := newEval(t, 150, 900)
	policies := []Policy{
		GreedyUtility{},
		GreedyEnergy{},
		GreedyUPE{},
		Budgeted{Budget: 5e6, Window: 900},
	}
	for _, p := range policies {
		res, err := Simulate(e, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Evaluation.Completed+res.Dropped != e.NumTasks() {
			t.Fatalf("%s: completed %d + dropped %d != %d", p.Name(), res.Evaluation.Completed, res.Dropped, e.NumTasks())
		}
	}
}

func TestSimulateMatchesOfflineReplay(t *testing.T) {
	// Replaying the realized allocation offline must reproduce the
	// online evaluation exactly: dispatch order equals arrival order, so
	// the offline simulator with identity order agrees.
	e := newEval(t, 120, 600)
	for _, p := range []Policy{GreedyUtility{}, GreedyEnergy{}, GreedyUPE{}} {
		res, err := Simulate(e, p)
		if err != nil {
			t.Fatal(err)
		}
		off := e.Evaluate(res.Allocation)
		if math.Abs(off.Utility-res.Evaluation.Utility) > 1e-9 ||
			math.Abs(off.Energy-res.Evaluation.Energy) > 1e-9 ||
			math.Abs(off.Makespan-res.Evaluation.Makespan) > 1e-9 {
			t.Fatalf("%s: offline replay %+v != online %+v", p.Name(), off, res.Evaluation)
		}
	}
}

func TestGreedyEnergyMatchesOfflineMinEnergy(t *testing.T) {
	// Energy is order-independent, so the online min-energy policy must
	// attain exactly the offline Min Energy seed's energy.
	e := newEval(t, 150, 900)
	res, err := Simulate(e, GreedyEnergy{})
	if err != nil {
		t.Fatal(err)
	}
	want := e.Evaluate(heuristics.BuildMinEnergy(e)).Energy
	if math.Abs(res.Evaluation.Energy-want) > 1e-9 {
		t.Fatalf("online min-energy %v != offline %v", res.Evaluation.Energy, want)
	}
}

func TestGreedyUtilityMatchesOfflineMaxUtilitySeed(t *testing.T) {
	// The online greedy-utility policy makes the same decisions as the
	// offline Max Utility seed (both walk tasks in arrival order with
	// the same tie-breaks).
	e := newEval(t, 150, 900)
	res, err := Simulate(e, GreedyUtility{})
	if err != nil {
		t.Fatal(err)
	}
	seed := heuristics.BuildMaxUtility(e)
	for i := range seed.Machine {
		if seed.Machine[i] != res.Allocation.Machine[i] {
			t.Fatalf("task %d: online chose %d, offline seed %d", i, res.Allocation.Machine[i], seed.Machine[i])
		}
	}
}

func TestBudgetedRespectsBudget(t *testing.T) {
	e := newEval(t, 200, 300)
	// Tight budget: half of what greedy utility spends.
	full, err := Simulate(e, GreedyUtility{})
	if err != nil {
		t.Fatal(err)
	}
	budget := full.Evaluation.Energy / 2
	res, err := Simulate(e, Budgeted{Budget: budget, Window: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluation.Energy > budget+1e-9 {
		t.Fatalf("budgeted policy spent %v > budget %v", res.Evaluation.Energy, budget)
	}
	if res.Dropped == 0 {
		t.Fatal("tight budget should force drops")
	}
}

func TestBudgetedBeatsMinEnergyOnUtilityGivenHeadroom(t *testing.T) {
	// With a budget well above the minimum, the budgeted policy should
	// earn more utility than pure min-energy placement.
	e := newEval(t, 150, 900)
	minE, err := Simulate(e, GreedyEnergy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(e, Budgeted{Budget: minE.Evaluation.Energy * 1.5, Window: 900})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Evaluation.Utility > minE.Evaluation.Utility) {
		t.Fatalf("budgeted utility %v not above min-energy %v",
			res.Evaluation.Utility, minE.Evaluation.Utility)
	}
}

func TestBudgetedDropZeroUtility(t *testing.T) {
	// Overloaded instance: with DropZeroUtility the policy must never
	// execute a task that earns nothing.
	e := newEval(t, 250, 60)
	res, err := Simulate(e, Budgeted{Budget: 1e12, Window: 60, DropZeroUtility: true})
	if err != nil {
		t.Fatal(err)
	}
	times, _ := e.NewSession().CompletionTimes(res.Allocation)
	tasks := e.Trace().Tasks
	for i, ct := range times {
		if ct < 0 {
			continue
		}
		if u := tasks[i].TUF.Value(ct - tasks[i].Arrival); u <= 0 {
			t.Fatalf("task %d executed for zero utility", i)
		}
	}
	if res.Dropped == 0 {
		t.Fatal("overloaded instance should drop zero-utility tasks")
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]bool{}
	for _, p := range []Policy{GreedyUtility{}, GreedyEnergy{}, GreedyUPE{}, Budgeted{}} {
		if p.Name() == "" {
			t.Fatal("empty policy name")
		}
		if names[p.Name()] {
			t.Fatalf("duplicate policy name %s", p.Name())
		}
		names[p.Name()] = true
	}
}

type badPolicy struct{}

func (badPolicy) Name() string               { return "bad" }
func (badPolicy) Place(int, *State) Decision { return Decision{Machine: 9999} }

func TestSimulateRejectsBadPolicy(t *testing.T) {
	e := newEval(t, 10, 100)
	if _, err := Simulate(e, badPolicy{}); err == nil {
		t.Fatal("out-of-range placement accepted")
	}
}

func BenchmarkSimulateGreedyUtility250(b *testing.B) {
	e := newEval(b, 250, 900)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(e, GreedyUtility{}); err != nil {
			b.Fatal(err)
		}
	}
}
