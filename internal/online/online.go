// Package online implements an event-driven dynamic scheduler simulator,
// closing the loop the paper sketches in §VI: the offline bi-objective
// analysis is a post-mortem over a recorded trace, and its product — the
// Pareto front and the maximum utility-per-energy region — is meant to
// "set the parameters needed for designing dynamic or online allocation
// heuristics", e.g. an energy constraint handed to "a separate online
// dynamic utility maximization heuristic".
//
// Here tasks are revealed only at their arrival times and dispatched
// immediately and irrevocably to a machine queue (non-preemptive FIFO per
// machine). Policies see the current machine commitments and the energy
// spent so far, nothing else. The Budgeted policy takes the energy value
// of an offline efficient-region solution as its budget, demonstrating
// the offline-informs-online workflow.
package online

import (
	"fmt"
	"math"

	"tradeoff/internal/sched"
)

// Decision is a policy's verdict for one arriving task.
type Decision struct {
	// Machine is the machine instance to enqueue on, or sched.Dropped to
	// reject the task (earns nothing, costs nothing).
	Machine int
}

// State is what a policy may observe when a task arrives.
type State struct {
	// Now is the arrival time of the task being placed.
	Now float64
	// Ready holds each machine's current commitment horizon: the time it
	// will finish everything already enqueued.
	Ready []float64
	// EnergySpent is the energy committed so far, in joules.
	EnergySpent float64
	// Eval exposes ETC/EEC lookups and eligibility.
	Eval *sched.Evaluator
}

// CompletionOn returns the completion time the arriving task would have
// on machine m given current commitments.
func (st *State) CompletionOn(taskType int, m int) float64 {
	start := st.Ready[m]
	if st.Now > start {
		start = st.Now
	}
	return start + st.Eval.ETCInstance(taskType, m)
}

// Policy decides machine placement for arriving tasks.
type Policy interface {
	Name() string
	// Place is called once per task, in arrival order.
	Place(task int, st *State) Decision
}

// Result summarizes one online simulation.
type Result struct {
	Policy     string
	Evaluation sched.Evaluation
	Dropped    int
	// Allocation is the realized allocation (order = dispatch order),
	// suitable for offline re-evaluation or comparison.
	Allocation *sched.Allocation
}

// Simulate runs a policy over the evaluator's trace. Tasks are offered
// in arrival order; the returned allocation reproduces the realized
// schedule under the offline evaluator (with dropping allowed).
func Simulate(e *sched.Evaluator, p Policy) (*Result, error) {
	n := e.NumTasks()
	tasks := e.Trace().Tasks
	st := &State{Ready: make([]float64, e.NumMachines()), Eval: e}
	alloc := sched.NewAllocation(n)
	res := &Result{Policy: p.Name(), Allocation: alloc}
	for i := 0; i < n; i++ {
		task := &tasks[i]
		st.Now = task.Arrival
		d := p.Place(i, st)
		if d.Machine == sched.Dropped {
			alloc.Machine[i] = sched.Dropped
			res.Dropped++
			continue
		}
		if d.Machine < 0 || d.Machine >= e.NumMachines() {
			return nil, fmt.Errorf("online: policy %s placed task %d on machine %d (out of range)", p.Name(), i, d.Machine)
		}
		if !e.System().CapableMachine(task.Type, d.Machine) {
			return nil, fmt.Errorf("online: policy %s placed task %d on incapable machine %d", p.Name(), i, d.Machine)
		}
		alloc.Machine[i] = int32(d.Machine)
		completion := st.CompletionOn(task.Type, d.Machine)
		st.Ready[d.Machine] = completion
		st.EnergySpent += e.EECInstance(task.Type, d.Machine)
		res.Evaluation.Utility += task.TUF.Value(completion - task.Arrival)
		res.Evaluation.Energy += e.EECInstance(task.Type, d.Machine)
		if completion > res.Evaluation.Makespan {
			res.Evaluation.Makespan = completion
		}
		res.Evaluation.Completed++
	}
	// Sanity: the realized schedule, replayed offline, must match.
	e.AllowDropping = true
	if err := e.Validate(alloc); err != nil {
		return nil, fmt.Errorf("online: realized allocation invalid: %w", err)
	}
	return res, nil
}

// --- Policies -------------------------------------------------------------

// GreedyUtility places each task on the machine maximizing its utility
// at the projected completion time (the online analogue of the
// Max Utility seed).
type GreedyUtility struct{}

// Name implements Policy.
func (GreedyUtility) Name() string { return "online-max-utility" }

// Place implements Policy.
func (GreedyUtility) Place(task int, st *State) Decision {
	t := &st.Eval.Trace().Tasks[task]
	best, bestU, bestC := -1, math.Inf(-1), math.Inf(1)
	for _, m := range st.Eval.Eligible(t.Type) {
		c := st.CompletionOn(t.Type, m)
		u := t.TUF.Value(c - t.Arrival)
		if u > bestU || (u == bestU && c < bestC) {
			best, bestU, bestC = m, u, c
		}
	}
	return Decision{Machine: best}
}

// GreedyEnergy places each task on its cheapest machine.
type GreedyEnergy struct{}

// Name implements Policy.
func (GreedyEnergy) Name() string { return "online-min-energy" }

// Place implements Policy.
func (GreedyEnergy) Place(task int, st *State) Decision {
	t := &st.Eval.Trace().Tasks[task]
	best, bestE := -1, math.Inf(1)
	for _, m := range st.Eval.Eligible(t.Type) {
		if c := st.Eval.EECInstance(t.Type, m); c < bestE {
			best, bestE = m, c
		}
	}
	return Decision{Machine: best}
}

// GreedyUPE places each task on the machine maximizing utility earned
// per joule.
type GreedyUPE struct{}

// Name implements Policy.
func (GreedyUPE) Name() string { return "online-max-upe" }

// Place implements Policy.
func (GreedyUPE) Place(task int, st *State) Decision {
	t := &st.Eval.Trace().Tasks[task]
	best, bestR, bestE := -1, math.Inf(-1), math.Inf(1)
	for _, m := range st.Eval.Eligible(t.Type) {
		c := st.CompletionOn(t.Type, m)
		u := t.TUF.Value(c - t.Arrival)
		en := st.Eval.EECInstance(t.Type, m)
		r := u / en
		if r > bestR || (r == bestR && en < bestE) {
			best, bestR, bestE = m, r, en
		}
	}
	return Decision{Machine: best}
}

// Budgeted wraps a utility-maximizing placement in an energy budget —
// the §VI workflow: the budget comes from the offline front (e.g. the
// energy of the maximum utility-per-energy solution). Placement spends
// the budget linearly across the trace: a task may use the cheapest
// machine once the pro-rata budget is exhausted, and is dropped when even
// the cheapest machine would overrun the total budget or its utility
// would be zero.
type Budgeted struct {
	// Budget is the total energy allowance in joules.
	Budget float64
	// Window is the trace window used for pro-rata pacing.
	Window float64
	// DropZeroUtility drops tasks whose best achievable utility is 0
	// (they would only burn energy).
	DropZeroUtility bool
}

// Name implements Policy.
func (b Budgeted) Name() string { return "online-budgeted" }

// Place implements Policy.
func (b Budgeted) Place(task int, st *State) Decision {
	t := &st.Eval.Trace().Tasks[task]
	type option struct {
		m    int
		u, e float64
	}
	var opts []option
	for _, m := range st.Eval.Eligible(t.Type) {
		c := st.CompletionOn(t.Type, m)
		opts = append(opts, option{
			m: m,
			u: t.TUF.Value(c - t.Arrival),
			e: st.Eval.EECInstance(t.Type, m),
		})
	}
	// Cheapest option, for fallback and feasibility.
	cheapest := opts[0]
	for _, o := range opts[1:] {
		if o.e < cheapest.e {
			cheapest = o
		}
	}
	if st.EnergySpent+cheapest.e > b.Budget {
		return Decision{Machine: sched.Dropped} // budget exhausted
	}
	// Pro-rata pacing: how much budget "should" be spent by now.
	pace := b.Budget
	if b.Window > 0 {
		frac := st.Now / b.Window
		if frac > 1 {
			frac = 1
		}
		// Allow a slack of one mean task cost so the policy is not
		// starved at t=0.
		pace = b.Budget*frac + b.Budget/float64(st.Eval.NumTasks())
	}
	best := option{m: -1, u: math.Inf(-1)}
	for _, o := range opts {
		if st.EnergySpent+o.e > pace && o.m != cheapest.m {
			continue // over pace: only the cheapest machine is allowed
		}
		if o.u > best.u || (o.u == best.u && o.e < best.e) {
			best = o
		}
	}
	if best.m == -1 {
		best = cheapest
	}
	if b.DropZeroUtility && best.u <= 0 {
		return Decision{Machine: sched.Dropped}
	}
	return Decision{Machine: best.m}
}
