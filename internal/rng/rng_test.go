package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := NewStream(7, 1)
	b := NewStream(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams produced %d identical values out of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for n := 1; n < 40; n++ {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	s := New(6)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.08*want {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(7)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := s.NormFloat64()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(8)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := s.ExpFloat64()
		if x < 0 {
			t.Fatalf("exponential variate negative: %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	check := func(n uint8) bool {
		size := int(n%50) + 1
		p := s.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(10)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("Perm first-element bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(11)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams produced %d identical values out of 100", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(12).Split()
	b := New(12).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split is not deterministic at step %d", i)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(13)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", p)
	}
}

func TestBoolExtremes(t *testing.T) {
	s := New(14)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestPickRespectsWeights(t *testing.T) {
	s := New(15)
	weights := []float64{1, 0, 3}
	const trials = 100000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[s.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestPickNegativeWeightTreatedAsZero(t *testing.T) {
	s := New(16)
	weights := []float64{-5, 2}
	for i := 0; i < 1000; i++ {
		if s.Pick(weights) != 1 {
			t.Fatal("negative-weight index was picked")
		}
	}
}

func TestPickPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero total weight did not panic")
		}
	}()
	New(17).Pick([]float64{0, 0})
}

func TestRange(t *testing.T) {
	s := New(18)
	for i := 0; i < 10000; i++ {
		v := s.Range(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Range(2,5) = %v out of bounds", v)
		}
	}
}

func TestShuffleAllPositionsMove(t *testing.T) {
	s := New(19)
	n := 100
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
	}
	s.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	fixed := 0
	for i, v := range vals {
		if i == v {
			fixed++
		}
	}
	// Expected number of fixed points of a random permutation is 1.
	if fixed > 10 {
		t.Fatalf("shuffle left %d fixed points out of %d", fixed, n)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Float64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(1000)
	}
}

func TestStateRoundTrip(t *testing.T) {
	a := New(99)
	for i := 0; i < 57; i++ {
		a.Uint64()
	}
	st := a.State()
	b := FromState(st)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("restored source diverged at step %d", i)
		}
	}
}

func TestReseedMatchesNewStream(t *testing.T) {
	var s Source
	for trial := 0; trial < 20; trial++ {
		seed, stream := uint64(trial*17+3), uint64(trial*31+5)
		s.Reseed(seed, stream)
		want := NewStream(seed, stream)
		for i := 0; i < 50; i++ {
			if got, w := s.Uint64(), want.Uint64(); got != w {
				t.Fatalf("trial %d step %d: Reseed diverged from NewStream", trial, i)
			}
		}
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		a, b := New(uint64(n+1)), New(uint64(n+1))
		p := make([]int, n)
		b.PermInto(p)
		want := a.Perm(n)
		for i := range want {
			if p[i] != want[i] {
				t.Fatalf("n=%d: PermInto %v != Perm %v", n, p, want)
			}
		}
	}
}

func TestPermIntoIsPermutation(t *testing.T) {
	s := New(8)
	p := make([]int, 64)
	for trial := 0; trial < 50; trial++ {
		s.PermInto(p)
		seen := make([]bool, len(p))
		for _, v := range p {
			if v < 0 || v >= len(p) || seen[v] {
				t.Fatalf("trial %d: not a permutation: %v", trial, p)
			}
			seen[v] = true
		}
	}
}
