// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the framework.
//
// Experiments in this repository must be exactly reproducible from a seed,
// including when fitness evaluation fans out across goroutines. The
// standard library's global math/rand state is therefore avoided; instead
// every component receives an explicit *rng.Source, and concurrent
// components derive independent streams with Split.
//
// The generator is PCG-XSH-RR 64/32 (O'Neill 2014) driven by a 64-bit LCG,
// with a stream-selector increment so split streams are statistically
// independent.
package rng

import "math"

const (
	pcgMultiplier = 6364136223846793005
	defaultInc    = 1442695040888963407
)

// Source is a deterministic PCG random number generator. It is not safe
// for concurrent use; derive per-goroutine sources with Split.
type Source struct {
	state uint64
	inc   uint64 // must be odd
}

// New returns a Source seeded with seed on the default stream.
func New(seed uint64) *Source {
	return NewStream(seed, defaultInc>>1)
}

// NewStream returns a Source seeded with seed on the given stream. Distinct
// streams produce statistically independent sequences for the same seed.
func NewStream(seed, stream uint64) *Source {
	s := &Source{inc: stream<<1 | 1}
	s.state = s.inc + seed
	s.step()
	return s
}

// Reseed resets the source in place to the exact sequence
// NewStream(seed, stream) would produce, without allocating. Parallel
// components reuse one Source value per worker and Reseed it once per
// work item, so results are independent of how items map to workers.
func (s *Source) Reseed(seed, stream uint64) {
	s.inc = stream<<1 | 1
	s.state = s.inc + seed
	s.step()
}

func (s *Source) step() {
	s.state = s.state*pcgMultiplier + s.inc
}

// Uint32 returns a uniformly distributed 32-bit value.
func (s *Source) Uint32() uint32 {
	old := s.state
	s.step()
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 {
	hi := uint64(s.Uint32())
	lo := uint64(s.Uint32())
	return hi<<32 | lo
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed uint64 in [0, n) using Lemire's
// nearly-divisionless rejection method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Rejection sampling on the top bits avoids modulo bias.
	threshold := -n % n
	for {
		v := s.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Range returns a uniformly distributed float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(q)/q)
	}
}

// ExpFloat64 returns an exponentially distributed variate with rate 1.
func (s *Source) ExpFloat64() float64 {
	// 1-Float64() is in (0,1], so Log never sees zero.
	return -math.Log(1 - s.Float64())
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	s.PermInto(p)
	return p
}

// PermInto fills p with a uniformly random permutation of [0, len(p)),
// drawing the same sequence Perm would. It never allocates, making it
// suitable for hot loops that recycle permutation buffers.
func (s *Source) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// PermInto32 fills p with a uniformly random permutation of [0, len(p)),
// drawing the same rng sequence Perm would. It is the int32 counterpart
// of PermInto for permutation buffers stored narrow (genotype order
// arrays).
func (s *Source) PermInto32(p []int32) {
	for i := range p {
		p[i] = int32(i)
	}
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Split returns a new Source with a stream derived from the current state,
// advancing the parent. Sequences from parent and child do not overlap in
// practice because they use distinct odd increments.
func (s *Source) Split() *Source {
	seed := s.Uint64()
	stream := s.Uint64()
	return NewStream(seed, stream)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Pick returns a uniformly random element index of a weights slice, where
// the probability of index i is weights[i] / sum(weights). Non-positive
// weights are treated as zero. It panics if the sum of weights is not
// positive.
func (s *Source) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Pick requires a positive total weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	// Floating-point slack: return the last positively weighted index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("rng: unreachable")
}

// State captures the generator's full state for serialization; restore
// with FromState. The zero State is not valid.
type State struct {
	S   uint64 `json:"s"`
	Inc uint64 `json:"inc"`
}

// State returns the current generator state.
func (s *Source) State() State { return State{S: s.state, Inc: s.inc} }

// FromState reconstructs a Source that continues exactly where the
// captured source would have.
func FromState(st State) *Source {
	return &Source{state: st.S, inc: st.Inc | 1}
}
