// Package stats implements the statistical machinery the analysis
// framework relies on: descriptive moments, the heterogeneity measures of
// Al-Qawasmeh et al. (coefficient of variation, skewness, kurtosis), and
// the Gram-Charlier type-A expansion used to build probability density
// functions that match a target mean/variance/skewness/kurtosis (mvsk)
// tuple, together with an inverse-transform sampler over those PDFs.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Moments summarizes a sample by its first four standardized moments.
// Skewness is the standardized third central moment; Kurtosis is the
// standardized fourth central moment (3 for a normal distribution, i.e.
// not excess kurtosis).
type Moments struct {
	Mean     float64
	Variance float64
	Skewness float64
	Kurtosis float64
}

// StdDev returns the standard deviation.
func (m Moments) StdDev() float64 { return math.Sqrt(m.Variance) }

// CV returns the coefficient of variation (stddev / mean), the primary
// heterogeneity measure of Al-Qawasmeh et al. It returns +Inf when the
// mean is zero and the deviation is not.
func (m Moments) CV() float64 {
	sd := m.StdDev()
	if m.Mean == 0 {
		if sd == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sd / m.Mean
}

func (m Moments) String() string {
	return fmt.Sprintf("mean=%.6g var=%.6g skew=%.6g kurt=%.6g", m.Mean, m.Variance, m.Skewness, m.Kurtosis)
}

// ErrTooFewSamples is returned when a sample is too small for the
// requested statistic.
var ErrTooFewSamples = errors.New("stats: too few samples")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (divide by n).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return ss / float64(len(xs))
}

// SampleMoments computes the first four standardized moments of xs using
// population (biased) central moments, which is the convention in the
// heterogeneity-measures literature the paper builds on.
func SampleMoments(xs []float64) (Moments, error) {
	if len(xs) < 2 {
		return Moments{}, fmt.Errorf("%w: need at least 2 samples, got %d", ErrTooFewSamples, len(xs))
	}
	mu := Mean(xs)
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - mu
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
	}
	n := float64(len(xs))
	m2 /= n
	m3 /= n
	m4 /= n
	m := Moments{Mean: mu, Variance: m2}
	if m2 > 0 {
		sd := math.Sqrt(m2)
		m.Skewness = m3 / (sd * sd * sd)
		m.Kurtosis = m4 / (m2 * m2)
	} else {
		// Degenerate constant sample: conventionally normal-shaped.
		m.Skewness = 0
		m.Kurtosis = 3
	}
	return m, nil
}

// MustSampleMoments is SampleMoments for callers that have already
// validated the sample size; it panics on error.
func MustSampleMoments(xs []float64) Moments {
	m, err := SampleMoments(xs)
	if err != nil {
		panic(err)
	}
	return m
}

// Min returns the smallest element of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
