package stats

import (
	"math"
	"testing"
)

// FuzzGramCharlierQuantile builds expansions from fuzzed moments and
// checks quantile/CDF consistency and PDF nonnegativity.
func FuzzGramCharlierQuantile(f *testing.F) {
	f.Add(0.0, 1.0, 0.0, 3.0, 0.5)
	f.Add(50.0, 400.0, 0.9, 4.2, 0.25)
	f.Add(-3.0, 0.1, -1.5, 8.0, 0.99)
	f.Fuzz(func(t *testing.T, mean, variance, skew, kurt, p float64) {
		g, err := NewGramCharlier(Moments{Mean: mean, Variance: variance, Skewness: skew, Kurtosis: kurt})
		if err != nil {
			return // invalid moments are rejected, which is fine
		}
		p = math.Abs(math.Mod(p, 1))
		x := g.Quantile(p)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("Quantile(%v) = %v", p, x)
		}
		if c := g.CDF(x); c < -1e-9 || c > 1+1e-9 {
			t.Fatalf("CDF(%v) = %v out of range", x, c)
		}
		if d := g.PDF(x); d < 0 || math.IsNaN(d) {
			t.Fatalf("PDF(%v) = %v", x, d)
		}
	})
}
