package stats

import (
	"math"
	"testing"
	"testing/quick"

	"tradeoff/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestVarianceConstant(t *testing.T) {
	if got := Variance([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("Variance of constants = %v, want 0", got)
	}
}

func TestVarianceKnown(t *testing.T) {
	// Population variance of {1,2,3,4} is 1.25.
	if got := Variance([]float64{1, 2, 3, 4}); !almost(got, 1.25, 1e-12) {
		t.Fatalf("Variance = %v, want 1.25", got)
	}
}

func TestSampleMomentsTooFew(t *testing.T) {
	if _, err := SampleMoments([]float64{1}); err == nil {
		t.Fatal("expected error for single sample")
	}
}

func TestSampleMomentsSymmetric(t *testing.T) {
	m := MustSampleMoments([]float64{-2, -1, 0, 1, 2})
	if !almost(m.Mean, 0, 1e-12) || !almost(m.Skewness, 0, 1e-12) {
		t.Fatalf("symmetric sample: %v", m)
	}
}

func TestSampleMomentsDegenerateKurtosis(t *testing.T) {
	m := MustSampleMoments([]float64{3, 3, 3})
	if m.Kurtosis != 3 || m.Skewness != 0 {
		t.Fatalf("degenerate sample moments = %v", m)
	}
}

func TestSampleMomentsOfNormalDraws(t *testing.T) {
	src := rng.New(100)
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = 10 + 2*src.NormFloat64()
	}
	m := MustSampleMoments(xs)
	if !almost(m.Mean, 10, 0.05) {
		t.Errorf("mean = %v, want ~10", m.Mean)
	}
	if !almost(m.Variance, 4, 0.15) {
		t.Errorf("variance = %v, want ~4", m.Variance)
	}
	if !almost(m.Skewness, 0, 0.05) {
		t.Errorf("skewness = %v, want ~0", m.Skewness)
	}
	if !almost(m.Kurtosis, 3, 0.15) {
		t.Errorf("kurtosis = %v, want ~3", m.Kurtosis)
	}
}

func TestSampleMomentsOfExponentialDraws(t *testing.T) {
	// Exponential(1): mean 1, var 1, skew 2, kurtosis 9.
	src := rng.New(101)
	xs := make([]float64, 400000)
	for i := range xs {
		xs[i] = src.ExpFloat64()
	}
	m := MustSampleMoments(xs)
	if !almost(m.Mean, 1, 0.02) || !almost(m.Variance, 1, 0.05) {
		t.Errorf("exp moments: %v", m)
	}
	if !almost(m.Skewness, 2, 0.15) {
		t.Errorf("exp skewness = %v, want ~2", m.Skewness)
	}
	if !almost(m.Kurtosis, 9, 1.0) {
		t.Errorf("exp kurtosis = %v, want ~9", m.Kurtosis)
	}
}

func TestCV(t *testing.T) {
	m := Moments{Mean: 10, Variance: 4}
	if !almost(m.CV(), 0.2, 1e-12) {
		t.Fatalf("CV = %v, want 0.2", m.CV())
	}
	z := Moments{Mean: 0, Variance: 4}
	if !math.IsInf(z.CV(), 1) {
		t.Fatalf("CV with zero mean should be +Inf, got %v", z.CV())
	}
	d := Moments{Mean: 0, Variance: 0}
	if d.CV() != 0 {
		t.Fatalf("CV of degenerate zero sample should be 0, got %v", d.CV())
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max wrong: %v %v", Min(xs), Max(xs))
	}
}

func TestMinPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestMaxPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max(nil) did not panic")
		}
	}()
	Max(nil)
}

func TestMomentsShiftInvariance(t *testing.T) {
	// Skewness and kurtosis are invariant under affine maps x -> a*x+b (a>0).
	check := func(seed uint32) bool {
		src := rng.New(uint64(seed))
		xs := make([]float64, 64)
		for i := range xs {
			xs[i] = src.ExpFloat64()
		}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = 3*x + 7
		}
		mx := MustSampleMoments(xs)
		my := MustSampleMoments(ys)
		return almost(mx.Skewness, my.Skewness, 1e-9) && almost(mx.Kurtosis, my.Kurtosis, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRowAverages(t *testing.T) {
	rows := [][]float64{{2, 4}, {6, 0}}
	got := RowAverages(rows, -1)
	if got[0] != 3 || got[1] != 3 {
		t.Fatalf("RowAverages = %v", got)
	}
}

func TestRowAveragesSkip(t *testing.T) {
	rows := [][]float64{{2, -1, 4}, {-1, -1, -1}}
	got := RowAverages(rows, -1)
	if got[0] != 3 {
		t.Fatalf("row 0 average = %v, want 3", got[0])
	}
	if got[1] != -1 {
		t.Fatalf("all-skip row should average to skip, got %v", got[1])
	}
}

func TestColumnRatios(t *testing.T) {
	rows := [][]float64{{8, 12}, {5, 15}}
	avg := RowAverages(rows, -1)
	r0 := ColumnRatios(rows, avg, 0, -1)
	if len(r0) != 2 || !almost(r0[0], 0.8, 1e-12) || !almost(r0[1], 0.5, 1e-12) {
		t.Fatalf("ColumnRatios col 0 = %v", r0)
	}
}

func TestColumnRatiosSkips(t *testing.T) {
	rows := [][]float64{{-1, 12}, {5, 15}}
	avg := RowAverages(rows, -1)
	r0 := ColumnRatios(rows, avg, 0, -1)
	if len(r0) != 1 {
		t.Fatalf("expected one ratio, got %v", r0)
	}
}

func TestHeterogeneityDistanceZero(t *testing.T) {
	h := Heterogeneity{CV: 0.5, Skewness: 1, Kurtosis: 4}
	if d := h.Distance(h); d != 0 {
		t.Fatalf("self-distance = %v", d)
	}
}

func TestHeterogeneityDistanceSymmetricInSign(t *testing.T) {
	a := Heterogeneity{CV: 0.5, Skewness: 1, Kurtosis: 4}
	b := Heterogeneity{CV: 0.6, Skewness: 1.5, Kurtosis: 5}
	if !almost(a.Distance(b), 0.5, 1e-12) {
		// max rel diff: CV (0.1/1 floored) -> 0.1; skew 0.5/1 -> 0.5; kurt 1/4 -> 0.25.
		t.Fatalf("distance = %v, want 0.5", a.Distance(b))
	}
}

func TestMeasureHeterogeneity(t *testing.T) {
	h, err := MeasureHeterogeneity([]float64{1, 2, 3, 4, 10})
	if err != nil {
		t.Fatal(err)
	}
	if h.CV <= 0 {
		t.Fatalf("CV should be positive, got %v", h.CV)
	}
	if h.Skewness <= 0 {
		t.Fatalf("right-tailed sample should have positive skew, got %v", h.Skewness)
	}
}
