package stats

import "fmt"

// Heterogeneity bundles the three standard heterogeneity measures used by
// Al-Qawasmeh et al. and adopted by the paper for comparing data sets:
// coefficient of variation, skewness, and kurtosis. Two data sets with
// similar values for all three are considered to exhibit similar
// heterogeneity.
type Heterogeneity struct {
	CV       float64
	Skewness float64
	Kurtosis float64
}

// MeasureHeterogeneity computes the heterogeneity measures of a sample.
func MeasureHeterogeneity(xs []float64) (Heterogeneity, error) {
	m, err := SampleMoments(xs)
	if err != nil {
		return Heterogeneity{}, err
	}
	return Heterogeneity{CV: m.CV(), Skewness: m.Skewness, Kurtosis: m.Kurtosis}, nil
}

// Distance returns a scale-free distance between two heterogeneity
// signatures: the maximum relative discrepancy across the three measures.
// Denominators are floored at 1 so near-zero measures do not explode the
// metric.
func (h Heterogeneity) Distance(o Heterogeneity) float64 {
	rel := func(a, b float64) float64 {
		d := a - b
		if d < 0 {
			d = -d
		}
		den := a
		if den < 0 {
			den = -den
		}
		if den < 1 {
			den = 1
		}
		return d / den
	}
	worst := rel(h.CV, o.CV)
	if d := rel(h.Skewness, o.Skewness); d > worst {
		worst = d
	}
	if d := rel(h.Kurtosis, o.Kurtosis); d > worst {
		worst = d
	}
	return worst
}

func (h Heterogeneity) String() string {
	return fmt.Sprintf("CV=%.4g skew=%.4g kurt=%.4g", h.CV, h.Skewness, h.Kurtosis)
}

// RowAverages returns the mean of each row of a matrix stored as a slice
// of rows. Rows may not be empty. Entries equal to skip are ignored (used
// for "incapable" sentinel entries); a row whose entries are all skipped
// averages to skip.
func RowAverages(rows [][]float64, skip float64) []float64 {
	out := make([]float64, len(rows))
	for i, row := range rows {
		var sum float64
		var n int
		for _, v := range row {
			if v == skip {
				continue
			}
			sum += v
			n++
		}
		if n == 0 {
			out[i] = skip
			continue
		}
		out[i] = sum / float64(n)
	}
	return out
}

// ColumnRatios returns, for column j of the matrix, the per-row ratio
// rows[i][j] / rowAvg[i]. Entries equal to skip (or rows whose average is
// skip or zero) are omitted. This is the "task type execution time ratio"
// of §III-D2: faster machines have ratios below one.
func ColumnRatios(rows [][]float64, rowAvg []float64, col int, skip float64) []float64 {
	var out []float64
	for i, row := range rows {
		if col >= len(row) {
			continue
		}
		v := row[col]
		if v == skip || rowAvg[i] == skip || rowAvg[i] == 0 {
			continue
		}
		out = append(out, v/rowAvg[i])
	}
	return out
}
