package stats

import (
	"math"
	"testing"

	"tradeoff/internal/rng"
)

func TestKSStatisticIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	d, err := KSStatistic(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("KS of identical samples = %v", d)
	}
}

func TestKSStatisticDisjoint(t *testing.T) {
	d, err := KSStatistic([]float64{1, 2, 3}, []float64{10, 11, 12})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSStatisticErrors(t *testing.T) {
	if _, err := KSStatistic(nil, []float64{1}); err == nil {
		t.Error("empty xs accepted")
	}
	if _, err := KSStatistic([]float64{1}, nil); err == nil {
		t.Error("empty ys accepted")
	}
}

func TestKSSameDistributionBelowCritical(t *testing.T) {
	src := rng.New(1)
	const n = 5000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = src.NormFloat64()
		ys[i] = src.NormFloat64()
	}
	d, err := KSStatistic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	crit, err := KSCriticalValue(n, n, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if d > crit {
		t.Fatalf("same-distribution KS %v above critical %v", d, crit)
	}
}

func TestKSDifferentDistributionsAboveCritical(t *testing.T) {
	src := rng.New(2)
	const n = 5000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = src.NormFloat64()
		ys[i] = src.ExpFloat64()
	}
	d, err := KSStatistic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	crit, err := KSCriticalValue(n, n, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if d <= crit {
		t.Fatalf("different-distribution KS %v below critical %v", d, crit)
	}
}

func TestKSOneSampleAgainstOwnCDF(t *testing.T) {
	// Gram-Charlier samples tested against the generating CDF.
	g, err := NewGramCharlier(Moments{Mean: 5, Variance: 4, Skewness: 0.6, Kurtosis: 3.8})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	xs := g.SampleN(src, 4000)
	d, err := KSOneSample(xs, g.CDF)
	if err != nil {
		t.Fatal(err)
	}
	// One-sample critical value ~ 1.63/sqrt(n) at alpha=0.01.
	if crit := 1.63 / math.Sqrt(4000); d > crit {
		t.Fatalf("sampler KS %v above critical %v — sampler does not match its CDF", d, crit)
	}
}

func TestKSOneSampleErrors(t *testing.T) {
	if _, err := KSOneSample(nil, func(float64) float64 { return 0 }); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestKSCriticalValueValidation(t *testing.T) {
	if _, err := KSCriticalValue(0, 5, 0.05); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := KSCriticalValue(5, 5, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := KSCriticalValue(5, 5, 1); err == nil {
		t.Error("alpha=1 accepted")
	}
	// Monotone in alpha: stricter alpha -> larger critical value.
	strict, _ := KSCriticalValue(100, 100, 0.01)
	loose, _ := KSCriticalValue(100, 100, 0.2)
	if !(strict > loose) {
		t.Fatalf("critical values not monotone: %v vs %v", strict, loose)
	}
}
