package stats

import (
	"fmt"
	"math"
	"sort"
)

// Kolmogorov-Smirnov machinery for comparing sampled distributions, used
// to validate that the Gram-Charlier sampler reproduces its target and
// that synthetic data resembles real data beyond the first four moments.

// KSStatistic returns the two-sample Kolmogorov-Smirnov statistic: the
// maximum absolute difference between the empirical CDFs of xs and ys.
func KSStatistic(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, fmt.Errorf("stats: KS needs nonempty samples")
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var d float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x := a[i]
		if b[j] < x {
			x = b[j]
		}
		// Step past every observation equal to x on both sides so ties
		// contribute a single CDF step each.
		for i < len(a) && a[i] == x {
			i++
		}
		for j < len(b) && b[j] == x {
			j++
		}
		fa := float64(i) / float64(len(a))
		fb := float64(j) / float64(len(b))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d, nil
}

// KSOneSample returns the one-sample KS statistic of xs against a
// continuous CDF.
func KSOneSample(xs []float64, cdf func(float64) float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: KS needs a nonempty sample")
	}
	a := append([]float64(nil), xs...)
	sort.Float64s(a)
	n := float64(len(a))
	var d float64
	for i, x := range a {
		c := cdf(x)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if diff := math.Abs(c - lo); diff > d {
			d = diff
		}
		if diff := math.Abs(hi - c); diff > d {
			d = diff
		}
	}
	return d, nil
}

// KSCriticalValue returns the approximate two-sample critical value at
// significance alpha (valid for large samples): c(alpha) ×
// sqrt((n+m)/(n·m)), with c from the asymptotic Kolmogorov distribution.
func KSCriticalValue(n, m int, alpha float64) (float64, error) {
	if n < 1 || m < 1 {
		return 0, fmt.Errorf("stats: KS critical value needs positive sample sizes")
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("stats: alpha %v outside (0,1)", alpha)
	}
	c := math.Sqrt(-0.5 * math.Log(alpha/2))
	return c * math.Sqrt(float64(n+m)/float64(n*m)), nil
}
