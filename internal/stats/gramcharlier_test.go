package stats

import (
	"math"
	"testing"
	"testing/quick"

	"tradeoff/internal/rng"
)

func TestGramCharlierRejectsBadMoments(t *testing.T) {
	cases := []Moments{
		{Mean: 1, Variance: 0},
		{Mean: 1, Variance: -2},
		{Mean: math.NaN(), Variance: 1},
		{Mean: 1, Variance: 1, Skewness: math.Inf(1)},
	}
	for _, c := range cases {
		if _, err := NewGramCharlier(c); err == nil {
			t.Errorf("NewGramCharlier(%v) accepted invalid moments", c)
		}
	}
}

func TestGramCharlierReducesToNormal(t *testing.T) {
	// With skew=0 and kurtosis=3 the correction terms vanish and the PDF
	// must match the normal density.
	g, err := NewGramCharlier(Moments{Mean: 5, Variance: 4, Skewness: 0, Kurtosis: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{1, 3, 5, 7, 9} {
		z := (x - 5) / 2
		want := math.Exp(-z*z/2) / (2 * math.Sqrt(2*math.Pi))
		if got := g.PDF(x); !almost(got, want, 1e-3*want+1e-9) {
			t.Errorf("PDF(%v) = %v, want normal %v", x, got, want)
		}
	}
}

func TestGramCharlierPDFNonNegative(t *testing.T) {
	g, err := NewGramCharlier(Moments{Mean: 0, Variance: 1, Skewness: 1.5, Kurtosis: 7})
	if err != nil {
		t.Fatal(err)
	}
	for z := -8.0; z <= 8; z += 0.01 {
		if g.PDF(z) < 0 {
			t.Fatalf("PDF(%v) negative", z)
		}
	}
}

func TestGramCharlierCDFMonotone(t *testing.T) {
	g, err := NewGramCharlier(Moments{Mean: 10, Variance: 9, Skewness: 0.8, Kurtosis: 4})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for x := -10.0; x <= 30; x += 0.1 {
		c := g.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %v: %v < %v", x, c, prev)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF(%v) = %v out of [0,1]", x, c)
		}
		prev = c
	}
	if g.CDF(-1e9) != 0 || g.CDF(1e9) != 1 {
		t.Fatal("CDF tails wrong")
	}
}

func TestGramCharlierQuantileInvertsCDF(t *testing.T) {
	g, err := NewGramCharlier(Moments{Mean: 3, Variance: 2, Skewness: 0.5, Kurtosis: 3.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		x := g.Quantile(p)
		if got := g.CDF(x); !almost(got, p, 1e-3) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestGramCharlierQuantileEdges(t *testing.T) {
	g, err := NewGramCharlier(Moments{Mean: 0, Variance: 1, Skewness: 0, Kurtosis: 3})
	if err != nil {
		t.Fatal(err)
	}
	if lo := g.Quantile(0); !almost(lo, -gcTailSigmas, 1e-9) {
		t.Fatalf("Quantile(0) = %v", lo)
	}
	if hi := g.Quantile(1); !almost(hi, gcTailSigmas, 1e-9) {
		t.Fatalf("Quantile(1) = %v", hi)
	}
}

func TestGramCharlierSamplerMatchesTargetMoments(t *testing.T) {
	// Moderately skewed, heavy-tailed target, comparable to row-average
	// execution-time distributions in the data sets.
	target := Moments{Mean: 50, Variance: 400, Skewness: 0.9, Kurtosis: 4.2}
	g, err := NewGramCharlier(target)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	xs := g.SampleN(src, 300000)
	m := MustSampleMoments(xs)
	if !almost(m.Mean, target.Mean, 0.5) {
		t.Errorf("sample mean = %v, want ~%v", m.Mean, target.Mean)
	}
	if !almost(m.Variance, target.Variance, 0.06*target.Variance) {
		t.Errorf("sample variance = %v, want ~%v", m.Variance, target.Variance)
	}
	if !almost(m.Skewness, target.Skewness, 0.2) {
		t.Errorf("sample skewness = %v, want ~%v", m.Skewness, target.Skewness)
	}
	if !almost(m.Kurtosis, target.Kurtosis, 0.6) {
		t.Errorf("sample kurtosis = %v, want ~%v", m.Kurtosis, target.Kurtosis)
	}
}

func TestGramCharlierSamplerNormalTarget(t *testing.T) {
	target := Moments{Mean: 0, Variance: 1, Skewness: 0, Kurtosis: 3}
	g, err := NewGramCharlier(target)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(8)
	m := MustSampleMoments(g.SampleN(src, 200000))
	if !almost(m.Mean, 0, 0.02) || !almost(m.Variance, 1, 0.03) ||
		!almost(m.Skewness, 0, 0.05) || !almost(m.Kurtosis, 3, 0.1) {
		t.Fatalf("normal-target sample moments: %v", m)
	}
}

func TestSamplePositive(t *testing.T) {
	// Mean near zero so raw samples are frequently negative.
	g, err := NewGramCharlier(Moments{Mean: 0.1, Variance: 1, Skewness: 0, Kurtosis: 3})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(9)
	for i := 0; i < 5000; i++ {
		if x := g.SamplePositive(src); x <= 0 {
			t.Fatalf("SamplePositive returned %v", x)
		}
	}
}

func TestGramCharlierSampleDeterminism(t *testing.T) {
	g, err := NewGramCharlier(Moments{Mean: 1, Variance: 1, Skewness: 0.3, Kurtosis: 3.3})
	if err != nil {
		t.Fatal(err)
	}
	a := g.SampleN(rng.New(5), 100)
	b := g.SampleN(rng.New(5), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("samples diverged at %d", i)
		}
	}
}

func TestGramCharlierQuantileMonotoneProperty(t *testing.T) {
	g, err := NewGramCharlier(Moments{Mean: 2, Variance: 3, Skewness: -0.7, Kurtosis: 5})
	if err != nil {
		t.Fatal(err)
	}
	check := func(a, b float64) bool {
		p := math.Abs(math.Mod(a, 1))
		q := math.Abs(math.Mod(b, 1))
		if p > q {
			p, q = q, p
		}
		return g.Quantile(p) <= g.Quantile(q)+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGramCharlierPDFIntegratesToOne(t *testing.T) {
	g, err := NewGramCharlier(Moments{Mean: 4, Variance: 2, Skewness: 1.0, Kurtosis: 5})
	if err != nil {
		t.Fatal(err)
	}
	var integral float64
	const dx = 0.001
	for x := 4 - 7*math.Sqrt(2.0); x <= 4+7*math.Sqrt(2.0); x += dx {
		integral += g.PDF(x) * dx
	}
	if !almost(integral, 1, 0.01) {
		t.Fatalf("PDF integrates to %v", integral)
	}
}

func BenchmarkGramCharlierBuild(b *testing.B) {
	target := Moments{Mean: 50, Variance: 400, Skewness: 0.9, Kurtosis: 4.2}
	for i := 0; i < b.N; i++ {
		if _, err := NewGramCharlier(target); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGramCharlierSample(b *testing.B) {
	g, err := NewGramCharlier(Moments{Mean: 50, Variance: 400, Skewness: 0.9, Kurtosis: 4.2})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Sample(src)
	}
}
