package stats

import (
	"fmt"
	"math"

	"tradeoff/internal/rng"
)

// GramCharlier is a probability density built from the Gram-Charlier
// type-A expansion (Kendall, "The Advanced Theory of Statistics"): the
// standard normal density corrected with Hermite-polynomial terms so that
// the resulting distribution has a prescribed mean, variance, skewness and
// kurtosis.
//
// In standardized coordinates z = (x - mean) / sigma the density is
//
//	f(z) = phi(z) * [1 + (g1/6) He3(z) + (g2/24) He4(z)]
//
// where g1 is the skewness, g2 = kurtosis - 3 the excess kurtosis, and
// He3, He4 the probabilists' Hermite polynomials. The raw expansion can
// dip below zero in the tails for strongly non-normal targets; following
// common practice the density is clamped at zero and renumerically
// normalized, which slightly perturbs the realized moments (the paper's
// pipeline only needs approximate preservation of the heterogeneity
// measures, which tests verify).
type GramCharlier struct {
	target Moments
	sigma  float64

	// Numeric CDF table over [lo, hi] in standardized coordinates,
	// used for inverse-transform sampling.
	lo, hi  float64
	cdf     []float64 // cdf[i] = P(Z <= lo + i*dz), normalized to cdf[last] = 1
	dz      float64
	rawMass float64 // integral of the clamped density before normalization
}

// gcTailSigmas bounds the numeric support of the standardized density.
// Six standard deviations keeps truncation error far below the sampler's
// statistical noise.
const gcTailSigmas = 6.0

// gcGridPoints is the resolution of the numeric CDF table.
const gcGridPoints = 4096

// NewGramCharlier builds a Gram-Charlier density matching the target
// moments. It returns an error if the variance is not positive or any
// moment is not finite.
func NewGramCharlier(target Moments) (*GramCharlier, error) {
	if !(target.Variance > 0) {
		return nil, fmt.Errorf("stats: Gram-Charlier requires positive variance, got %v", target.Variance)
	}
	for _, v := range []float64{target.Mean, target.Variance, target.Skewness, target.Kurtosis} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("stats: Gram-Charlier target moment not finite: %v", target)
		}
	}
	g := &GramCharlier{
		target: target,
		sigma:  math.Sqrt(target.Variance),
		lo:     -gcTailSigmas,
		hi:     gcTailSigmas,
	}
	g.buildCDF()
	return g, nil
}

// Target returns the moments the expansion was built from.
func (g *GramCharlier) Target() Moments { return g.target }

// standardDensity evaluates the clamped expansion density at standardized
// coordinate z.
func (g *GramCharlier) standardDensity(z float64) float64 {
	phi := math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
	g1 := g.target.Skewness
	g2 := g.target.Kurtosis - 3
	he3 := z*z*z - 3*z
	he4 := z*z*z*z - 6*z*z + 3
	f := phi * (1 + g1/6*he3 + g2/24*he4)
	if f < 0 {
		return 0
	}
	return f
}

// PDF evaluates the (clamped, renormalized) density at x in original
// coordinates. Outside the truncated support it returns 0.
func (g *GramCharlier) PDF(x float64) float64 {
	z := (x - g.target.Mean) / g.sigma
	if z < g.lo || z > g.hi {
		return 0
	}
	return g.standardDensity(z) / (g.norm() * g.sigma)
}

// norm returns the integral of the clamped standardized density over the
// truncated support (the renormalization constant).
func (g *GramCharlier) norm() float64 { return g.rawMass }

func (g *GramCharlier) buildCDF() {
	g.dz = (g.hi - g.lo) / float64(gcGridPoints-1)
	g.cdf = make([]float64, gcGridPoints)
	prev := g.standardDensity(g.lo)
	var acc float64
	g.cdf[0] = 0
	for i := 1; i < gcGridPoints; i++ {
		z := g.lo + float64(i)*g.dz
		cur := g.standardDensity(z)
		acc += (prev + cur) / 2 * g.dz // trapezoid rule
		g.cdf[i] = acc
		prev = cur
	}
	g.rawMass = acc
	if acc <= 0 {
		// Should be impossible (the normal term always contributes),
		// but guard against pathological inputs.
		g.rawMass = 1
		for i := range g.cdf {
			g.cdf[i] = float64(i) / float64(gcGridPoints-1)
		}
		return
	}
	inv := 1 / acc
	for i := range g.cdf {
		g.cdf[i] *= inv
	}
	g.cdf[gcGridPoints-1] = 1
}

// CDF evaluates the numeric cumulative distribution at x.
func (g *GramCharlier) CDF(x float64) float64 {
	z := (x - g.target.Mean) / g.sigma
	switch {
	case z <= g.lo:
		return 0
	case z >= g.hi:
		return 1
	}
	pos := (z - g.lo) / g.dz
	i := int(pos)
	if i >= gcGridPoints-1 {
		return 1
	}
	frac := pos - float64(i)
	return g.cdf[i] + frac*(g.cdf[i+1]-g.cdf[i])
}

// Quantile returns the x with CDF(x) = p, for p in [0, 1], by binary
// search over the CDF table with linear interpolation.
func (g *GramCharlier) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return g.target.Mean + g.lo*g.sigma
	case p >= 1:
		return g.target.Mean + g.hi*g.sigma
	}
	lo, hi := 0, gcGridPoints-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if g.cdf[mid] < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	c0, c1 := g.cdf[lo], g.cdf[hi]
	frac := 0.5
	if c1 > c0 {
		frac = (p - c0) / (c1 - c0)
	}
	z := g.lo + (float64(lo)+frac)*g.dz
	return g.target.Mean + z*g.sigma
}

// Sample draws one variate by inverse-transform sampling.
func (g *GramCharlier) Sample(src *rng.Source) float64 {
	return g.Quantile(src.Float64())
}

// SampleN draws n variates.
func (g *GramCharlier) SampleN(src *rng.Source, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Sample(src)
	}
	return out
}

// SamplePositive draws one variate conditioned on being strictly
// positive, used for execution times and power values which must be
// physical. It falls back to a small positive fraction of the mean if the
// distribution has negligible positive mass.
func (g *GramCharlier) SamplePositive(src *rng.Source) float64 {
	for i := 0; i < 64; i++ {
		if x := g.Sample(src); x > 0 {
			return x
		}
	}
	// Essentially no positive mass: degrade gracefully.
	m := math.Abs(g.target.Mean)
	if m == 0 {
		m = g.sigma
	}
	return m / 100
}
