package hcs

import "fmt"

// Builder assembles a System incrementally, the ergonomic path for
// downstream users modeling their own environment instead of loading the
// embedded benchmark data. Entries left unset default to Incapable on
// special-purpose machine types and are an error on general-purpose
// machine types (which must execute every task type).
//
//	b := hcs.NewBuilder()
//	xeon := b.MachineType("xeon", hcs.GeneralPurpose, 4)     // 4 instances
//	fpga := b.MachineType("fpga", hcs.SpecialPurpose, 1)
//	render := b.TaskType("render", hcs.SpecialPurpose)
//	b.Set(render, xeon, 120, 150)                            // 120 s at 150 W
//	b.Set(render, fpga, 12, 60)
//	sys, err := b.Build()
type Builder struct {
	machineTypes []MachineType
	instances    []int
	taskTypes    []TaskType
	etc          map[[2]int]float64
	epc          map[[2]int]float64
	errs         []error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{etc: map[[2]int]float64{}, epc: map[[2]int]float64{}}
}

// MachineType declares a machine type with the given number of machine
// instances and returns its index.
func (b *Builder) MachineType(name string, category Category, instances int) int {
	if instances < 1 {
		b.errs = append(b.errs, fmt.Errorf("hcs: machine type %q needs >= 1 instance, got %d", name, instances))
		instances = 1
	}
	b.machineTypes = append(b.machineTypes, MachineType{Name: name, Category: category})
	b.instances = append(b.instances, instances)
	return len(b.machineTypes) - 1
}

// TaskType declares a task type and returns its index.
func (b *Builder) TaskType(name string, category Category) int {
	b.taskTypes = append(b.taskTypes, TaskType{Name: name, Category: category})
	return len(b.taskTypes) - 1
}

// Set records the execution time (seconds) and power draw (watts) of a
// task type on a machine type. Setting a pair twice overwrites it.
func (b *Builder) Set(taskType, machineType int, seconds, watts float64) *Builder {
	if taskType < 0 || taskType >= len(b.taskTypes) {
		b.errs = append(b.errs, fmt.Errorf("hcs: Set with unknown task type %d", taskType))
		return b
	}
	if machineType < 0 || machineType >= len(b.machineTypes) {
		b.errs = append(b.errs, fmt.Errorf("hcs: Set with unknown machine type %d", machineType))
		return b
	}
	key := [2]int{taskType, machineType}
	b.etc[key] = seconds
	b.epc[key] = watts
	return b
}

// Build assembles and validates the System.
func (b *Builder) Build() (*System, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	nt, nm := len(b.taskTypes), len(b.machineTypes)
	if nt == 0 || nm == 0 {
		return nil, fmt.Errorf("hcs: builder needs at least one task type and one machine type")
	}
	etc := NewMatrix(nt, nm)
	epc := NewMatrix(nt, nm)
	for t := 0; t < nt; t++ {
		for mu := 0; mu < nm; mu++ {
			key := [2]int{t, mu}
			sec, ok := b.etc[key]
			if !ok {
				if b.machineTypes[mu].Category == GeneralPurpose {
					return nil, fmt.Errorf("hcs: task type %q has no entry for general-purpose machine type %q",
						b.taskTypes[t].Name, b.machineTypes[mu].Name)
				}
				etc.Set(t, mu, Incapable)
				epc.Set(t, mu, Incapable)
				continue
			}
			etc.Set(t, mu, sec)
			epc.Set(t, mu, b.epc[key])
		}
	}
	sys := &System{
		MachineTypes: append([]MachineType(nil), b.machineTypes...),
		TaskTypes:    append([]TaskType(nil), b.taskTypes...),
		ETC:          etc,
		EPC:          epc,
	}
	id := 0
	for mu, count := range b.instances {
		for k := 0; k < count; k++ {
			sys.Machines = append(sys.Machines, Machine{ID: id, Type: mu})
			id++
		}
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}
