package hcs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// testSystem builds a small valid system: 2 general-purpose machine
// types, 1 special-purpose machine type accelerating task type 1, and 2
// task types, with 4 machine instances.
func testSystem(t *testing.T) *System {
	t.Helper()
	etc, err := MatrixFromRows([][]float64{
		{10, 20, Incapable},
		{30, 15, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	epc, err := MatrixFromRows([][]float64{
		{100, 50, Incapable},
		{120, 60, 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &System{
		MachineTypes: []MachineType{
			{Name: "gp-A", Category: GeneralPurpose},
			{Name: "gp-B", Category: GeneralPurpose},
			{Name: "sp-C", Category: SpecialPurpose},
		},
		TaskTypes: []TaskType{
			{Name: "t0", Category: GeneralPurpose},
			{Name: "t1", Category: SpecialPurpose},
		},
		ETC: etc,
		EPC: epc,
		Machines: []Machine{
			{ID: 0, Type: 0},
			{ID: 1, Type: 1},
			{ID: 2, Type: 1},
			{ID: 3, Type: 2},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("testSystem invalid: %v", err)
	}
	return s
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 {
		t.Fatal("Set/At roundtrip failed")
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatal("dimensions wrong")
	}
}

func TestMatrixFromRowsRagged(t *testing.T) {
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestMatrixFromRowsEmpty(t *testing.T) {
	if _, err := MatrixFromRows(nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestMatrixRowColCopies(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row returned aliasing slice")
	}
	c := m.Col(0)
	c[0] = 77
	if m.At(0, 0) != 1 {
		t.Fatal("Col returned aliasing slice")
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(1, 1)
	m.Set(0, 0, 5)
	c := m.Clone()
	c.Set(0, 0, 6)
	if m.At(0, 0) != 5 {
		t.Fatal("Clone aliases original")
	}
}

func TestEEC(t *testing.T) {
	s := testSystem(t)
	if got := s.EEC(0, 0); got != 1000 {
		t.Fatalf("EEC(0,0) = %v, want 1000", got)
	}
	if got := s.EEC(0, 2); !math.IsInf(got, 1) {
		t.Fatalf("EEC of incapable pair = %v, want +Inf", got)
	}
}

func TestEECMatrix(t *testing.T) {
	s := testSystem(t)
	m := s.EECMatrix()
	if m.At(1, 2) != 3*80 {
		t.Fatalf("EEC[1][2] = %v, want 240", m.At(1, 2))
	}
}

func TestCapable(t *testing.T) {
	s := testSystem(t)
	if s.Capable(0, 2) {
		t.Fatal("task 0 should not run on special-purpose machine type")
	}
	if !s.Capable(1, 2) {
		t.Fatal("task 1 should run on its special-purpose machine type")
	}
	if s.CapableMachine(0, 3) {
		t.Fatal("machine 3 (sp) should not run task 0")
	}
	if !s.CapableMachine(0, 1) {
		t.Fatal("machine 1 (gp) should run task 0")
	}
}

func TestEligibleMachines(t *testing.T) {
	s := testSystem(t)
	got := s.EligibleMachines(0)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("EligibleMachines(0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EligibleMachines(0) = %v, want %v", got, want)
		}
	}
	if got := s.EligibleMachines(1); len(got) != 4 {
		t.Fatalf("EligibleMachines(1) = %v, want all 4", got)
	}
}

func TestMachinesOfType(t *testing.T) {
	s := testSystem(t)
	got := s.MachinesOfType(1)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("MachinesOfType(1) = %v", got)
	}
}

func TestMachineTypeOf(t *testing.T) {
	s := testSystem(t)
	if s.MachineTypeOf(3) != 2 {
		t.Fatal("MachineTypeOf wrong")
	}
}

func TestValidateRejectsDimensionMismatch(t *testing.T) {
	s := testSystem(t)
	s.ETC = NewMatrix(1, 3)
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "ETC is") {
		t.Fatalf("dimension mismatch not caught: %v", err)
	}
}

func TestValidateRejectsNonPositiveETC(t *testing.T) {
	s := testSystem(t)
	s.ETC.Set(0, 0, 0)
	if err := s.Validate(); err == nil {
		t.Fatal("zero ETC accepted")
	}
	s = testSystem(t)
	s.ETC.Set(0, 0, -3)
	if err := s.Validate(); err == nil {
		t.Fatal("negative ETC accepted")
	}
	s = testSystem(t)
	s.ETC.Set(0, 0, math.NaN())
	if err := s.Validate(); err == nil {
		t.Fatal("NaN ETC accepted")
	}
}

func TestValidateRejectsCapabilityDisagreement(t *testing.T) {
	s := testSystem(t)
	s.EPC.Set(0, 2, 55) // ETC says incapable, EPC says capable
	if err := s.Validate(); err == nil {
		t.Fatal("ETC/EPC capability disagreement accepted")
	}
}

func TestValidateRejectsNonDenseMachineIDs(t *testing.T) {
	s := testSystem(t)
	s.Machines[2].ID = 7
	if err := s.Validate(); err == nil {
		t.Fatal("non-dense machine IDs accepted")
	}
}

func TestValidateRejectsBadMachineType(t *testing.T) {
	s := testSystem(t)
	s.Machines[0].Type = 99
	if err := s.Validate(); err == nil {
		t.Fatal("out-of-range machine type accepted")
	}
}

func TestValidateRejectsIncapableGeneralPurpose(t *testing.T) {
	s := testSystem(t)
	s.ETC.Set(0, 0, Incapable)
	s.EPC.Set(0, 0, Incapable)
	if err := s.Validate(); err == nil {
		t.Fatal("general-purpose machine with a hole accepted")
	}
}

func TestValidateRejectsOmnipotentSpecialPurpose(t *testing.T) {
	s := testSystem(t)
	s.ETC.Set(0, 2, 5)
	s.EPC.Set(0, 2, 50)
	if err := s.Validate(); err == nil {
		t.Fatal("special-purpose machine executing everything accepted")
	}
}

func TestValidateRejectsOrphanTaskType(t *testing.T) {
	s := testSystem(t)
	// Remove all machines capable of task 0 (types 0 and 1).
	s.Machines = []Machine{{ID: 0, Type: 2}}
	if err := s.Validate(); err == nil {
		t.Fatal("task type with no eligible machine accepted")
	}
}

func TestValidateRejectsEmptySystems(t *testing.T) {
	if err := (&System{}).Validate(); err == nil {
		t.Fatal("empty system accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := testSystem(t)
	c := s.Clone()
	c.ETC.Set(0, 0, 999)
	c.Machines[0].Type = 1
	c.MachineTypes[0].Name = "mutated"
	if s.ETC.At(0, 0) == 999 || s.Machines[0].Type == 1 || s.MachineTypes[0].Name == "mutated" {
		t.Fatal("Clone shares state with original")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := testSystem(t)
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back System
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumMachineTypes() != s.NumMachineTypes() || back.NumTaskTypes() != s.NumTaskTypes() || back.NumMachines() != s.NumMachines() {
		t.Fatal("JSON roundtrip changed dimensions")
	}
	for tt := 0; tt < s.NumTaskTypes(); tt++ {
		for mu := 0; mu < s.NumMachineTypes(); mu++ {
			a, b := s.ETC.At(tt, mu), back.ETC.At(tt, mu)
			if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
				t.Fatalf("ETC[%d][%d] changed: %v -> %v", tt, mu, a, b)
			}
		}
	}
	if !math.IsInf(back.ETC.At(0, 2), 1) {
		t.Fatal("incapable entry not restored as +Inf")
	}
}

func TestJSONRejectsInvalidSystem(t *testing.T) {
	s := testSystem(t)
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: drop all machines.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(b, &raw); err != nil {
		t.Fatal(err)
	}
	raw["machines"] = json.RawMessage("[]")
	b2, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	var back System
	if err := json.Unmarshal(b2, &back); err == nil {
		t.Fatal("invalid system decoded without error")
	}
}

func TestMatrixJSONRejectsRaggedData(t *testing.T) {
	var m Matrix
	if err := json.Unmarshal([]byte(`{"rows":2,"cols":2,"data":[[1,2],[3]]}`), &m); err == nil {
		t.Fatal("ragged matrix JSON accepted")
	}
	if err := json.Unmarshal([]byte(`{"rows":3,"cols":2,"data":[[1,2],[3,4]]}`), &m); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
}

func TestCategoryString(t *testing.T) {
	if GeneralPurpose.String() != "general-purpose" || SpecialPurpose.String() != "special-purpose" {
		t.Fatal("Category strings wrong")
	}
	if Category(9).String() == "" {
		t.Fatal("unknown category produced empty string")
	}
}
