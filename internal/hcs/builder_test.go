package hcs

import (
	"strings"
	"testing"
)

func TestBuilderHappyPath(t *testing.T) {
	b := NewBuilder()
	xeon := b.MachineType("xeon", GeneralPurpose, 4)
	fpga := b.MachineType("fpga", SpecialPurpose, 1)
	render := b.TaskType("render", SpecialPurpose)
	compress := b.TaskType("compress", GeneralPurpose)
	b.Set(render, xeon, 120, 150)
	b.Set(render, fpga, 12, 60)
	b.Set(compress, xeon, 40, 130)
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumMachines() != 5 {
		t.Fatalf("machines = %d, want 5", sys.NumMachines())
	}
	if sys.Capable(compress, fpga) {
		t.Fatal("unset special pair should be incapable")
	}
	if sys.ETC.At(render, fpga) != 12 || sys.EPC.At(render, fpga) != 60 {
		t.Fatal("set values lost")
	}
}

func TestBuilderRejectsMissingGeneralEntry(t *testing.T) {
	b := NewBuilder()
	xeon := b.MachineType("xeon", GeneralPurpose, 1)
	tt := b.TaskType("render", GeneralPurpose)
	_ = xeon
	_ = tt
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "no entry") {
		t.Fatalf("missing general-purpose entry not caught: %v", err)
	}
}

func TestBuilderRejectsEmpty(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Fatal("empty builder accepted")
	}
}

func TestBuilderRejectsBadIndices(t *testing.T) {
	b := NewBuilder()
	mt := b.MachineType("m", GeneralPurpose, 1)
	tt := b.TaskType("t", GeneralPurpose)
	b.Set(tt, 99, 1, 1)
	b.Set(tt, mt, 10, 100)
	if _, err := b.Build(); err == nil {
		t.Fatal("bad machine index not reported")
	}
	b2 := NewBuilder()
	mt2 := b2.MachineType("m", GeneralPurpose, 1)
	tt2 := b2.TaskType("t", GeneralPurpose)
	b2.Set(99, mt2, 1, 1)
	b2.Set(tt2, mt2, 10, 100)
	if _, err := b2.Build(); err == nil {
		t.Fatal("bad task index not reported")
	}
}

func TestBuilderRejectsNonPositiveValuesViaValidate(t *testing.T) {
	b := NewBuilder()
	mt := b.MachineType("m", GeneralPurpose, 1)
	tt := b.TaskType("t", GeneralPurpose)
	b.Set(tt, mt, 0, 100) // zero ETC: Validate must reject
	if _, err := b.Build(); err == nil {
		t.Fatal("zero ETC accepted")
	}
}

func TestBuilderInstanceCountClamped(t *testing.T) {
	b := NewBuilder()
	b.MachineType("m", GeneralPurpose, 0) // invalid: recorded as error
	tt := b.TaskType("t", GeneralPurpose)
	b.Set(tt, 0, 10, 100)
	if _, err := b.Build(); err == nil {
		t.Fatal("zero-instance machine type accepted")
	}
}

func TestBuilderOverwrite(t *testing.T) {
	b := NewBuilder()
	mt := b.MachineType("m", GeneralPurpose, 1)
	tt := b.TaskType("t", GeneralPurpose)
	b.Set(tt, mt, 10, 100)
	b.Set(tt, mt, 20, 200)
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.ETC.At(tt, mt) != 20 || sys.EPC.At(tt, mt) != 200 {
		t.Fatal("overwrite did not take")
	}
}
