// Package hcs models the heterogeneous computing system of the paper's
// §III: a suite of machines drawn from machine types, a workload drawn
// from task types, and the Estimated Time to Compute (ETC), Estimated
// Power Consumption (EPC), and derived Expected Energy Consumption (EEC)
// matrices that characterize them.
//
// Machine types and task types each belong to one of two categories.
// General-purpose machines can execute every task type; special-purpose
// machines execute only a small subset (typically ~10x faster).
// General-purpose task types run only on general-purpose machines;
// special-purpose task types additionally run on one special-purpose
// machine type. Incapability is encoded as an infinite ETC entry.
package hcs

import (
	"fmt"
	"math"
)

// Category distinguishes general-purpose from special-purpose machine and
// task types.
type Category int

const (
	// GeneralPurpose machines execute all task types; general-purpose
	// task types execute on all general-purpose machines.
	GeneralPurpose Category = iota
	// SpecialPurpose machines execute a small subset of task types at a
	// greatly increased rate; special-purpose task types have one such
	// accelerated machine type.
	SpecialPurpose
)

func (c Category) String() string {
	switch c {
	case GeneralPurpose:
		return "general-purpose"
	case SpecialPurpose:
		return "special-purpose"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Incapable is the ETC/EPC sentinel for a (task type, machine type) pair
// that cannot execute.
var Incapable = math.Inf(1)

// MachineType describes one type of machine in the suite.
type MachineType struct {
	Name     string
	Category Category
}

// TaskType describes one type of task in the workload.
type TaskType struct {
	Name     string
	Category Category
}

// Machine is a concrete machine instance of some machine type.
type Machine struct {
	ID   int // index into System.Machines
	Type int // index into System.MachineTypes
}

// Matrix is a dense task-type × machine-type matrix (rows are task types,
// columns are machine types), the storage for ETC and EPC data.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a rows×cols matrix initialized to zero.
func NewMatrix(rows, cols int) Matrix {
	if rows < 0 || cols < 0 {
		panic("hcs: negative matrix dimension")
	}
	return Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices, which must be rectangular.
func MatrixFromRows(rows [][]float64) (Matrix, error) {
	if len(rows) == 0 {
		return Matrix{}, fmt.Errorf("hcs: matrix needs at least one row")
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return Matrix{}, fmt.Errorf("hcs: ragged matrix: row 0 has %d cols, row %d has %d", cols, i, len(r))
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the number of rows (task types).
func (m Matrix) Rows() int { return m.rows }

// Cols returns the number of columns (machine types).
func (m Matrix) Cols() int { return m.cols }

// At returns the entry for task type t on machine type mu.
func (m Matrix) At(t, mu int) float64 { return m.data[t*m.cols+mu] }

// Set assigns the entry for task type t on machine type mu.
func (m *Matrix) Set(t, mu int, v float64) { m.data[t*m.cols+mu] = v }

// Row returns a copy of row t.
func (m Matrix) Row(t int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[t*m.cols:(t+1)*m.cols])
	return out
}

// Col returns a copy of column mu.
func (m Matrix) Col(mu int) []float64 {
	out := make([]float64, m.rows)
	for t := 0; t < m.rows; t++ {
		out[t] = m.At(t, mu)
	}
	return out
}

// RowsCopy returns the matrix as a fresh slice of row slices.
func (m Matrix) RowsCopy() [][]float64 {
	out := make([][]float64, m.rows)
	for t := range out {
		out[t] = m.Row(t)
	}
	return out
}

// Clone returns a deep copy of the matrix.
func (m Matrix) Clone() Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// System is a complete heterogeneous computing environment: the type
// definitions, the ETC and EPC matrices over those types, and the suite
// of machine instances.
type System struct {
	MachineTypes []MachineType
	TaskTypes    []TaskType
	ETC          Matrix // seconds; Incapable where a pair cannot execute
	EPC          Matrix // watts; Incapable mirrors ETC
	Machines     []Machine
}

// NumMachines returns the number of machine instances in the suite.
func (s *System) NumMachines() int { return len(s.Machines) }

// NumMachineTypes returns the number of machine types.
func (s *System) NumMachineTypes() int { return len(s.MachineTypes) }

// NumTaskTypes returns the number of task types.
func (s *System) NumTaskTypes() int { return len(s.TaskTypes) }

// MachineTypeOf returns the machine type index of machine instance m
// (the paper's Ω function).
func (s *System) MachineTypeOf(m int) int { return s.Machines[m].Type }

// Capable reports whether task type t can execute on machine type mu.
func (s *System) Capable(t, mu int) bool {
	return !math.IsInf(s.ETC.At(t, mu), 1)
}

// CapableMachine reports whether task type t can execute on machine
// instance m.
func (s *System) CapableMachine(t, m int) bool {
	return s.Capable(t, s.Machines[m].Type)
}

// EEC returns the Expected Energy Consumption, in joules, of task type t
// on machine type mu: ETC × EPC (the paper's Eq. 2). It returns Incapable
// for incapable pairs.
func (s *System) EEC(t, mu int) float64 {
	etc := s.ETC.At(t, mu)
	if math.IsInf(etc, 1) {
		return Incapable
	}
	return etc * s.EPC.At(t, mu)
}

// EECMatrix materializes the full EEC matrix.
func (s *System) EECMatrix() Matrix {
	m := NewMatrix(s.NumTaskTypes(), s.NumMachineTypes())
	for t := 0; t < m.rows; t++ {
		for mu := 0; mu < m.cols; mu++ {
			m.Set(t, mu, s.EEC(t, mu))
		}
	}
	return m
}

// EligibleMachines returns the machine instance indices on which task
// type t can execute, in increasing instance order.
func (s *System) EligibleMachines(t int) []int {
	var out []int
	for _, m := range s.Machines {
		if s.Capable(t, m.Type) {
			out = append(out, m.ID)
		}
	}
	return out
}

// MachinesOfType returns the instance indices of machine type mu.
func (s *System) MachinesOfType(mu int) []int {
	var out []int
	for _, m := range s.Machines {
		if m.Type == mu {
			out = append(out, m.ID)
		}
	}
	return out
}

// Validate checks the structural invariants of the system:
// matrix dimensions match the type counts; capable entries are finite and
// strictly positive in both ETC and EPC; ETC and EPC agree on
// capability; machine instance IDs are dense and their types in range;
// every task type has at least one eligible machine instance; and
// special-purpose task/machine relationships hold (general-purpose
// machines execute everything; special-purpose machines execute a strict
// subset).
func (s *System) Validate() error {
	nt, nm := s.NumTaskTypes(), s.NumMachineTypes()
	if nt == 0 {
		return fmt.Errorf("hcs: system has no task types")
	}
	if nm == 0 {
		return fmt.Errorf("hcs: system has no machine types")
	}
	if s.ETC.rows != nt || s.ETC.cols != nm {
		return fmt.Errorf("hcs: ETC is %dx%d, want %dx%d", s.ETC.rows, s.ETC.cols, nt, nm)
	}
	if s.EPC.rows != nt || s.EPC.cols != nm {
		return fmt.Errorf("hcs: EPC is %dx%d, want %dx%d", s.EPC.rows, s.EPC.cols, nt, nm)
	}
	for t := 0; t < nt; t++ {
		for mu := 0; mu < nm; mu++ {
			etc, epc := s.ETC.At(t, mu), s.EPC.At(t, mu)
			etcInc, epcInc := math.IsInf(etc, 1), math.IsInf(epc, 1)
			if etcInc != epcInc {
				return fmt.Errorf("hcs: ETC/EPC disagree on capability of task type %d on machine type %d", t, mu)
			}
			if etcInc {
				continue
			}
			if !(etc > 0) || math.IsNaN(etc) {
				return fmt.Errorf("hcs: ETC[%d][%d] = %v, want > 0", t, mu, etc)
			}
			if !(epc > 0) || math.IsNaN(epc) {
				return fmt.Errorf("hcs: EPC[%d][%d] = %v, want > 0", t, mu, epc)
			}
		}
	}
	if len(s.Machines) == 0 {
		return fmt.Errorf("hcs: system has no machine instances")
	}
	for i, m := range s.Machines {
		if m.ID != i {
			return fmt.Errorf("hcs: machine %d has ID %d, want dense IDs", i, m.ID)
		}
		if m.Type < 0 || m.Type >= nm {
			return fmt.Errorf("hcs: machine %d has type %d out of range [0,%d)", i, m.Type, nm)
		}
	}
	for t := 0; t < nt; t++ {
		if len(s.EligibleMachines(t)) == 0 {
			return fmt.Errorf("hcs: task type %d (%s) has no eligible machine instance", t, s.TaskTypes[t].Name)
		}
	}
	for mu, mt := range s.MachineTypes {
		capable := 0
		for t := 0; t < nt; t++ {
			if s.Capable(t, mu) {
				capable++
			}
		}
		switch mt.Category {
		case GeneralPurpose:
			if capable != nt {
				return fmt.Errorf("hcs: general-purpose machine type %d (%s) executes %d of %d task types", mu, mt.Name, capable, nt)
			}
		case SpecialPurpose:
			if capable == 0 {
				return fmt.Errorf("hcs: special-purpose machine type %d (%s) executes no task types", mu, mt.Name)
			}
			if capable == nt && nt > 1 {
				return fmt.Errorf("hcs: special-purpose machine type %d (%s) executes every task type", mu, mt.Name)
			}
		default:
			return fmt.Errorf("hcs: machine type %d has invalid category %d", mu, mt.Category)
		}
	}
	return nil
}

// Clone returns a deep copy of the system.
func (s *System) Clone() *System {
	c := &System{
		MachineTypes: append([]MachineType(nil), s.MachineTypes...),
		TaskTypes:    append([]TaskType(nil), s.TaskTypes...),
		ETC:          s.ETC.Clone(),
		EPC:          s.EPC.Clone(),
		Machines:     append([]Machine(nil), s.Machines...),
	}
	return c
}
