package hcs

import (
	"encoding/json"
	"fmt"
	"math"
)

// JSON serialization for systems. Infinite (incapable) matrix entries are
// not representable in JSON, so they are encoded as -1, which Validate
// rejects as a live value and therefore cannot collide with real data.

const jsonIncapable = -1

type matrixJSON struct {
	Rows int         `json:"rows"`
	Cols int         `json:"cols"`
	Data [][]float64 `json:"data"`
}

// MarshalJSON implements json.Marshaler.
func (m Matrix) MarshalJSON() ([]byte, error) {
	rows := m.RowsCopy()
	for _, r := range rows {
		for j, v := range r {
			if math.IsInf(v, 1) {
				r[j] = jsonIncapable
			} else if math.IsInf(v, 0) || math.IsNaN(v) {
				return nil, fmt.Errorf("hcs: matrix entry %v not representable in JSON", v)
			}
		}
	}
	return json.Marshal(matrixJSON{Rows: m.rows, Cols: m.cols, Data: rows})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Matrix) UnmarshalJSON(b []byte) error {
	var mj matrixJSON
	if err := json.Unmarshal(b, &mj); err != nil {
		return err
	}
	if len(mj.Data) != mj.Rows {
		return fmt.Errorf("hcs: matrix JSON declares %d rows but has %d", mj.Rows, len(mj.Data))
	}
	for _, r := range mj.Data {
		if len(r) != mj.Cols {
			return fmt.Errorf("hcs: matrix JSON declares %d cols but a row has %d", mj.Cols, len(r))
		}
		for j, v := range r {
			if v == jsonIncapable {
				r[j] = Incapable
			}
		}
	}
	if mj.Rows == 0 {
		*m = Matrix{}
		return nil
	}
	parsed, err := MatrixFromRows(mj.Data)
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

type systemJSON struct {
	MachineTypes []MachineType `json:"machineTypes"`
	TaskTypes    []TaskType    `json:"taskTypes"`
	ETC          Matrix        `json:"etc"`
	EPC          Matrix        `json:"epc"`
	Machines     []Machine     `json:"machines"`
}

// MarshalJSON implements json.Marshaler for System.
func (s *System) MarshalJSON() ([]byte, error) {
	return json.Marshal(systemJSON{
		MachineTypes: s.MachineTypes,
		TaskTypes:    s.TaskTypes,
		ETC:          s.ETC,
		EPC:          s.EPC,
		Machines:     s.Machines,
	})
}

// UnmarshalJSON implements json.Unmarshaler for System. The decoded
// system is validated before being returned.
func (s *System) UnmarshalJSON(b []byte) error {
	var sj systemJSON
	if err := json.Unmarshal(b, &sj); err != nil {
		return err
	}
	decoded := System{
		MachineTypes: sj.MachineTypes,
		TaskTypes:    sj.TaskTypes,
		ETC:          sj.ETC,
		EPC:          sj.EPC,
		Machines:     sj.Machines,
	}
	if err := decoded.Validate(); err != nil {
		return fmt.Errorf("hcs: decoded system invalid: %w", err)
	}
	*s = decoded
	return nil
}
