package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerFloatOrder flags floating-point accumulation into state shared
// across worker goroutines. Float addition is not associative, so a sum
// built in goroutine completion order differs between runs even when
// every access is mutex- or atomic-protected — synchronization buys
// atomicity, not order. The sanctioned pattern (DESIGN.md §9) is the
// fixed-order reduce: each worker writes its own slot (results[i] = v),
// and a single goroutine folds the slots in deterministic index order.
// Per-slot plain assignments are therefore never flagged; compound
// accumulation into captured state is.
var AnalyzerFloatOrder = &Analyzer{
	Name: "floatorder",
	Doc:  "flag float accumulation into captured state inside goroutines",
	Run:  runFloatOrder,
}

func runFloatOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fl, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutineBody(p, fl)
			return true
		})
	}
}

// checkGoroutineBody flags compound float assignments whose target is
// captured from outside the goroutine's function literal.
func checkGoroutineBody(p *Pass, fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch a.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range a.Lhs {
			if !isFloat(p.Info.TypeOf(lhs)) {
				continue
			}
			id := rootIdent(lhs)
			if id == nil {
				continue
			}
			obj := objOf(p.Info, id)
			v, ok := obj.(*types.Var)
			if !ok || v.IsField() {
				continue
			}
			// Captured: declared outside the literal but not at package
			// scope (package-level vars are purity's concern; capture is
			// what makes the accumulation order worker-dependent here).
			if v.Parent() == p.Pkg.Scope() {
				continue
			}
			if v.Pos() < fl.Pos() || v.Pos() > fl.End() {
				p.Reportf(a.Pos(), "goroutine accumulates into captured float %s; the sum depends on scheduling order — write per-worker slots and reduce in fixed order", types.ExprString(lhs))
			}
		}
		return true
	})
}
