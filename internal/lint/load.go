package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one type-checked analysis unit: a package's library files, its
// in-package test files (compiled against the library files), or an
// external _test package.
type Unit struct {
	PkgPath string
	RelDir  string
	// Files are the unit's analysis targets; AllFiles additionally holds
	// the library files a test unit compiles against.
	Files    []*ast.File
	AllFiles []*ast.File
	Pkg      *types.Package
	Info     *types.Info
}

// Module is a loaded, fully type-checked module tree.
type Module struct {
	Fset  *token.FileSet
	Root  string
	Path  string
	Units []*Unit
}

// relPath maps an absolute file name under the module root to a
// root-relative one for diagnostics.
func (m *Module) relPath(name string) string {
	if rel, err := filepath.Rel(m.Root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return name
}

// loader resolves imports: module-local packages are parsed and
// type-checked from source on demand; everything else is delegated to
// the standard library's source importer. It implements types.Importer.
type loader struct {
	fset    *token.FileSet
	root    string // module root directory
	modPath string
	std     types.Importer
	pkgs    map[string]*types.Package // memoized module-local library packages
	infos   map[string]*unitInfo      // syntax + type info per library package
	loading map[string]bool           // cycle detection
}

type unitInfo struct {
	dir   string
	files []*ast.File
	info  *types.Info
}

func newLoader(root, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*types.Package{},
		infos:   map[string]*unitInfo{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		return l.importLocal(path)
	}
	return l.std.Import(path)
}

// dirFor maps a module-local import path to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.modPath {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
}

// pathFor maps a directory under the module root to its import path.
func (l *loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// importLocal type-checks a module-local package's library (non-test)
// files, memoizing the result so every importer shares one instance.
func (l *loader) importLocal(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	files, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	info := newInfo()
	pkg, err := l.check(path, files, info)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	l.infos[path] = &unitInfo{dir: dir, files: files, info: info}
	return pkg, nil
}

// check runs the type checker over one file group.
func (l *loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return pkg, nil
}

// parseDir parses a directory's .go files into library files (the
// primary package) and test files, each sorted by file name.
func (l *loader) parseDir(dir string) (lib, tests []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		if !buildTagsAllow(f) {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			tests = append(tests, f)
		} else {
			lib = append(lib, f)
		}
	}
	return lib, tests, nil
}

// buildTagsAllow evaluates a file's //go:build constraint (if any)
// under the loader's fixed linux/amd64 view — the same single-platform
// convention as the type-checker's Sizes — so platform-split file
// pairs (flight_unix.go / flight_other.go) type-check as one coherent
// package instead of redeclaring each other.
func buildTagsAllow(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // build constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				switch tag {
				case "linux", "unix", "amd64", "gc":
					return true
				}
				return strings.HasPrefix(tag, "go1")
			})
		}
	}
	return true
}

// moduleRoot walks up from dir to the directory containing go.mod and
// returns it with the declared module path.
func moduleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s declares no module path", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// skipDir reports directories the module walk never descends into.
func skipDir(name string) bool {
	switch name {
	case "testdata", "vendor", ".git":
		return true
	}
	return strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// goDirs returns every directory at or below top that contains .go
// files, sorted, skipping testdata/vendor/hidden subtrees below top
// itself.
func goDirs(top string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(top, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != top && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			if p := filepath.Dir(path); len(dirs) == 0 || dirs[len(dirs)-1] != p {
				dirs = append(dirs, p)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadModule parses and type-checks every package in the module rooted
// at or above dir, returning one unit per library package, plus one per
// in-package and external test file group.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	return loadTree(root, modPath, root)
}

// LoadDir loads one directory subtree (plus whatever it imports) as
// analysis units, using the enclosing module for import resolution.
// Fixture trees under testdata load this way; multi-package fixtures
// (a conf package plus a cmd/ main package) land in one Module.
func LoadDir(dir string) (*Module, error) {
	root, modPath, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return loadTree(root, modPath, abs)
}

// loadTree builds the units of every Go directory under top.
func loadTree(root, modPath, top string) (*Module, error) {
	dirs, err := goDirs(top)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, modPath)
	mod := &Module{Fset: l.fset, Root: root, Path: modPath}
	for _, d := range dirs {
		units, err := l.loadDir(d)
		if err != nil {
			return nil, err
		}
		mod.Units = append(mod.Units, units...)
	}
	return mod, nil
}

// loadDir builds the analysis units of one directory: the library
// package, the in-package test group, and the external test package.
func (l *loader) loadDir(dir string) ([]*Unit, error) {
	lib, tests, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	pkgPath := l.pathFor(dir)
	relDir, err := filepath.Rel(l.root, dir)
	if err != nil {
		return nil, err
	}
	relDir = filepath.ToSlash(relDir)

	var units []*Unit
	var libName string
	if len(lib) > 0 {
		if _, err := l.importLocal(pkgPath); err != nil {
			return nil, err
		}
		ui := l.infos[pkgPath]
		libName = lib[0].Name.Name
		units = append(units, &Unit{
			PkgPath:  pkgPath,
			RelDir:   relDir,
			Files:    ui.files,
			AllFiles: ui.files,
			Pkg:      l.pkgs[pkgPath],
			Info:     ui.info,
		})
	}

	// In-package test files compile together with the library files;
	// external _test files form their own package.
	var inPkg, external []*ast.File
	for _, f := range tests {
		if libName != "" && f.Name.Name == libName {
			inPkg = append(inPkg, f)
		} else {
			external = append(external, f)
		}
	}
	if len(inPkg) > 0 {
		all := append(append([]*ast.File{}, lib...), inPkg...)
		info := newInfo()
		pkg, err := l.check(pkgPath, all, info)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{
			PkgPath:  pkgPath + " [tests]",
			RelDir:   relDir,
			Files:    inPkg,
			AllFiles: all,
			Pkg:      pkg,
			Info:     info,
		})
	}
	if len(external) > 0 {
		info := newInfo()
		pkg, err := l.check(pkgPath+"_test", external, info)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{
			PkgPath:  pkgPath + "_test",
			RelDir:   relDir,
			Files:    external,
			AllFiles: external,
			Pkg:      pkg,
			Info:     info,
		})
	}
	return units, nil
}
