package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerSharedState mechanizes the worker-invariance discipline for
// goroutine closures (`go func(...) {...}(...)`): state captured from
// the enclosing function may only be written through an element
// indexed by a goroutine-local variable (per-worker slots, per-island
// shards) or handed off through a channel send. Two shapes are flagged:
//
//   - a plain write (assignment, compound assignment, IncDec) whose
//     lvalue roots at a captured variable and carries no
//     goroutine-local index anywhere in its chain;
//   - a method call whose receiver roots at a captured variable and
//     whose module-local callee transitively mutates its receiver
//     (ModuleIndex.ReceiverMutator).
//
// Calls into other packages (sync.WaitGroup.Done, atomic.Int64.Add)
// have no call-graph node and pass silently, which is exactly the
// escape hatch synchronization primitives need. Writes through locally
// derived pointers into captured state are invisible to this analyzer;
// the race detector remains the backstop for those.
var AnalyzerSharedState = &Analyzer{
	Name: "sharedstate",
	Doc:  "goroutine closures must confine captured-state writes to locally indexed slots, channel sends, or external sync",
	Run:  runSharedState,
}

func runSharedState(p *Pass) {
	if p.Index == nil {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if fl, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				checkGoClosure(p, fl)
			}
			return true
		})
	}
}

func checkGoClosure(p *Pass, fl *ast.FuncLit) {
	// A variable is goroutine-local when declared within the literal's
	// extent: its parameters and everything defined in its body.
	isLocal := func(obj types.Object) bool {
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		return v.Pos() >= fl.Pos() && v.Pos() <= fl.End()
	}
	captured := func(obj types.Object) bool {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return false
		}
		return !isLocal(obj)
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range x.Lhs {
				checkGoWrite(p, fl, lhs, isLocal, captured)
			}
		case *ast.IncDecStmt:
			checkGoWrite(p, fl, x.X, isLocal, captured)
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id := rootIdent(sel.X)
			if id == nil || !captured(objOf(p.Info, id)) {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			if cn := p.Index.NodeOf(fn); cn != nil && p.Index.ReceiverMutator(cn) {
				p.Reportf(x.Pos(), "goroutine calls %s.%s, which mutates the captured %s; confine the mutation to a per-goroutine shard or a mailbox send", id.Name, sel.Sel.Name, id.Name)
			}
		}
		return true
	})
}

// checkGoWrite flags a write inside a goroutine closure whose target
// roots at a captured variable, unless some index along the lvalue
// chain is computed from a goroutine-local variable (the per-slot
// confinement pattern: out[i] = ... with i a goroutine parameter).
func checkGoWrite(p *Pass, fl *ast.FuncLit, lhs ast.Expr, isLocal, captured func(types.Object) bool) {
	lhs = ast.Unparen(lhs)
	root := rootIdent(lhs)
	if root == nil || !captured(objOf(p.Info, root)) {
		return
	}
	for e := lhs; ; {
		switch x := e.(type) {
		case *ast.IndexExpr:
			localIdx := false
			ast.Inspect(x.Index, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && isLocal(objOf(p.Info, id)) {
					localIdx = true
				}
				return true
			})
			if localIdx {
				return
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			p.Reportf(lhs.Pos(), "goroutine writes captured %s without per-slot confinement; index it by a goroutine-local variable, send it over a channel, or keep it goroutine-local", root.Name)
			return
		}
	}
}
