package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerExhaustive requires switches over project enum types to cover
// every declared constant. An enum type is a named integer type declared
// in this module with at least two package-level constants of exactly
// that type (utility.Shape, heuristics.Heuristic, nsga2.Ranking, …). A
// default clause is allowed — validation switches panic there — but it
// does not excuse a missing constant: the point is that adding an enum
// member forces every switch to be revisited, not silently routed to
// default. Coverage is by constant value, so aliases count.
var AnalyzerExhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "require switches over project enum types to cover every declared constant",
	Run:  runExhaustive,
}

func runExhaustive(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(p, sw)
			return true
		})
	}
}

// enumMembers returns the package-level constants of exactly type named,
// or nil if there are fewer than two (not an enum).
func enumMembers(named *types.Named) []*types.Const {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	var members []*types.Const
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			members = append(members, c)
		}
	}
	if len(members) < 2 {
		return nil
	}
	return members
}

func checkSwitch(p *Pass, sw *ast.SwitchStmt) {
	tagType := p.Info.TypeOf(sw.Tag)
	if tagType == nil {
		return
	}
	named, ok := types.Unalias(tagType).(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return
	}
	if path := obj.Pkg().Path(); path != p.ModulePath && !strings.HasPrefix(path, p.ModulePath+"/") {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	members := enumMembers(named)
	if members == nil {
		return
	}
	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			tv, ok := p.Info.Types[expr]
			if !ok || tv.Value == nil {
				// A non-constant case guard means coverage cannot be
				// decided statically; stay silent rather than guess.
				return
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	var missing []string
	for _, m := range members {
		if !covered[m.Val().ExactString()] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	p.Reportf(sw.Switch, "switch over %s.%s is not exhaustive: missing %s", obj.Pkg().Name(), obj.Name(), strings.Join(missing, ", "))
}
