// Package lint implements detlint, the project's static-analysis pass
// enforcing the determinism and hot-path invariants the reproduction
// depends on (DESIGN.md §9). It is built purely on the standard
// library's go/parser, go/ast and go/types: the loader type-checks every
// package in the module from source, and a suite of project-specific
// analyzers walks the typed syntax trees.
//
// The analyzers:
//
//   - purity: internal packages must not import math/rand, call
//     time.Now/time.Since, read the environment, or hold mutable
//     package-level state. All randomness flows through internal/rng.
//   - maprange: a `range` over a map whose body has order-sensitive
//     effects (appends, float accumulation, rng draws, ordered output)
//     is nondeterministic; iterate sorted keys instead.
//   - floatorder: floating-point accumulation into state captured by a
//     goroutine makes the sum depend on goroutine scheduling; use the
//     fixed-order reduce pattern (per-slot writes, serial fold).
//   - hotalloc: functions annotated //detlint:hotpath must not contain
//     appends without a preallocated-capacity guard, fmt.Sprintf
//     outside panic, or variable-capturing closures.
//   - exhaustive: a switch over a project enum type must cover every
//     declared constant, even when a default clause is present.
//
// Four analyzers walk the module-local call graph (callgraph.go) across
// function and package boundaries:
//
//   - snapshotcover: every field of a Snapshot-named struct must be
//     referenced on both the encode (Snapshot/Encode*/Marshal*) and the
//     decode (Restore/Decode*/Unmarshal*) side, through any depth of
//     helpers — a field written but never restored silently breaks
//     resume equivalence.
//   - optwire: every exported field of a //detlint:optwire struct must
//     be read by engine code and transitively reachable from a write in
//     a cmd/ main package, so no option silently loses its CLI plumbing
//     or its engine consumer.
//   - sharedstate: a goroutine closure must not write captured state
//     except through an element indexed by a goroutine-local variable,
//     a channel send, or module-external synchronization primitives —
//     the worker-invariance discipline, mechanized.
//   - interpurity: a //detlint:pure function must not transitively
//     reach wall clocks, math/rand, environment reads, or package-level
//     mutation through any chain of module-local calls.
//
// A finding can be suppressed by placing a comment of the form
// `//detlint:allow <analyzer> <reason>` on the offending line or the
// line directly above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Pos locates the finding; Filename is relative to the module root.
	Pos token.Position
	// Analyzer names the rule that fired.
	Analyzer string
	// Message describes the violation.
	Message string
}

// String renders the canonical `file:line: analyzer: message` form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Pass hands one analysis unit to an analyzer.
type Pass struct {
	Fset *token.FileSet
	// Files are the files the analyzer reports on.
	Files []*ast.File
	// AllFiles is the unit's full file set (Files plus, for test units,
	// the non-test files they compile against). Context-only.
	AllFiles []*ast.File
	// Pkg and Info hold the type-checked unit.
	Pkg  *types.Package
	Info *types.Info
	// PkgPath is the unit's import path; RelDir its directory relative
	// to the module root ("." for the root package).
	PkgPath string
	RelDir  string
	// ModulePath is the module's import path prefix.
	ModulePath string
	// Index is the module-wide call graph, shared across every pass of
	// one Run.
	Index *ModuleIndex

	reportf func(pos token.Pos, format string, args ...any)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.reportf(pos, format, args...)
}

// Analyzer is one detlint rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full detlint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerPurity,
		AnalyzerMapRange,
		AnalyzerFloatOrder,
		AnalyzerHotAlloc,
		AnalyzerExhaustive,
		AnalyzerSnapshotCover,
		AnalyzerOptWire,
		AnalyzerSharedState,
		AnalyzerInterPurity,
	}
}

// Run applies the analyzers to every unit of the module and returns the
// surviving diagnostics sorted by file, line, column, analyzer.
func Run(mod *Module, analyzers []*Analyzer) []Diagnostic {
	index := NewModuleIndex(mod)
	var diags []Diagnostic
	for _, u := range mod.Units {
		allow := allowedLines(mod.Fset, u.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Fset:       mod.Fset,
				Files:      u.Files,
				AllFiles:   u.AllFiles,
				Pkg:        u.Pkg,
				Info:       u.Info,
				PkgPath:    u.PkgPath,
				RelDir:     u.RelDir,
				ModulePath: mod.Path,
				Index:      index,
			}
			name := a.Name
			pass.reportf = func(pos token.Pos, format string, args ...any) {
				position := mod.Fset.Position(pos)
				if allow.suppressed(name, position) {
					return
				}
				position.Filename = mod.relPath(position.Filename)
				diags = append(diags, Diagnostic{
					Pos:      position,
					Analyzer: name,
					Message:  fmt.Sprintf(format, args...),
				})
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// allowSet records `//detlint:allow <analyzer>` comment lines per file.
type allowSet map[string]map[int][]string // filename -> line -> analyzer names

func allowedLines(fset *token.FileSet, files []*ast.File) allowSet {
	set := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//detlint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					set[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], fields[0])
			}
		}
	}
	return set
}

// suppressed reports whether an allow comment for the analyzer sits on
// the diagnostic's line or the line directly above.
func (s allowSet) suppressed(analyzer string, pos token.Position) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// Summary tallies diagnostics per analyzer, including zero rows for
// analyzers that found nothing, in the suite's stable order.
func Summary(analyzers []*Analyzer, diags []Diagnostic) []string {
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	lines := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		lines = append(lines, fmt.Sprintf("%-13s %d", a.Name, counts[a.Name]))
	}
	return lines
}

// rootIdent unwraps selectors, indexes, stars, and parens down to the
// base identifier of an lvalue-ish expression, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object (use or definition).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// pkgFunc reports whether call is pkg.name(...) for an imported package
// with the given import path, returning the selected name.
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := objOf(info, id).(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// isFloat reports whether t is a floating-point type (possibly named).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// namedRecv returns the named type of a method call receiver expression,
// unwrapping pointers, or nil.
func namedRecv(info *types.Info, e ast.Expr) *types.Named {
	t := info.TypeOf(e)
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}
