// Package pos seeds the determinism violations a naive machine-bucket
// memoization layer invites: a process-seeded bucket fingerprint
// (mutable package-level hash state), an eviction scan that iterates
// the row map in hash order, and an annotated probe path that
// allocates per call. Each is the anti-shape of the real machine
// cache's contract — fixed mixing constants, index-ordered slot
// probing, and allocation-free hot paths.
package pos

import "fmt"

// bucketSeed stands in for maphash-style per-process seeding: once the
// seed differs between processes, the same machine schedule fingerprints
// differently, and a resumed run stops inheriting its own rows.
var bucketSeed uint64

func reseedBuckets(v uint64) {
	bucketSeed = v // mutable global: fingerprints depend on call history
}

// row is one machine's cached contribution.
type row struct {
	utility float64
	energy  float64
}

// rowmap caches machine rows keyed by bucket fingerprint with no bound
// and no eviction order.
type rowmap struct {
	rows    map[uint64]row
	victims []uint64
}

// evictStale selects victims by iterating the map: which rows survive
// changes run to run, so two identical runs diverge in their hit
// patterns (and, with a collision, in their populations).
//
//detlint:hotpath
func (c *rowmap) evictStale(cutoff float64) {
	for fp, r := range c.rows {
		if r.utility < cutoff {
			c.victims = append(c.victims, fp) // grows forever, order unstable
		}
	}
	for _, fp := range c.victims {
		delete(c.rows, fp)
	}
}

// probe mixes the mutable seed into the lookup key and formats a label
// per call inside the hot path.
//
//detlint:hotpath
func (c *rowmap) probe(fp uint64) (row, string) {
	r := c.rows[fp^bucketSeed]
	return r, fmt.Sprintf("probed %d rows", len(c.rows))
}
