// Package neg is the determinism-clean machine-bucket shape the engine
// actually uses (DESIGN.md §12): slot packing and per-machine
// fingerprints built from compile-time mixing constants (no process
// seeding), a flat generation-stamped slot table probed in index order
// (no map iteration anywhere near eviction), and rows cached by value
// so the hot paths never allocate.
package neg

// Splitmix-style mixing constants, fixed at compile time: a machine's
// task sequence fingerprints identically in every process, so bucket
// rows survive snapshot/resume and replays bit-identically.
const (
	fpGamma = 0x9e3779b97f4a7c15
	fpM1    = 0xbf58476d1ce4e5b9
	fpM2    = 0x94d049bb133111eb
)

// packSlot packs a machine assignment and task id into one word; the
// +1 keeps the dropped sentinel (-1) at zero.
func packSlot(machine int32, task int) uint64 {
	return uint64(uint32(machine+1))<<32 | uint64(uint32(task))
}

// bucketFP absorbs one machine's execution-order slots with xor-multiply
// and finalizes with the count, allocation-free.
//
//detlint:hotpath
func bucketFP(slots []uint64) uint64 {
	h := fpGamma ^ uint64(len(slots))
	for _, s := range slots {
		h = (h ^ s) * fpM1
	}
	h ^= h >> 30
	h *= fpM2
	h ^= h >> 31
	return h
}

// mrow is one machine's contribution row, cached by value: no owned
// buffers, so insert and hit are single struct copies.
type mrow struct {
	utility float64
	energy  float64
	busy    float64
	ready   float64
	done    int32
}

type mslot struct {
	fp  uint64
	gen int64 // generation stamp; -1 = empty
	row mrow
}

// mcache is power-of-two open addressing with a fixed probe window.
type mcache struct {
	slots  []mslot
	mask   uint64
	window int
}

// lookup probes a bounded window in index order; a miss is -1.
//
//detlint:hotpath
func (c *mcache) lookup(fp uint64) int {
	for o := 0; o < c.window; o++ {
		i := (fp + uint64(o)) & c.mask
		s := &c.slots[i]
		if s.gen >= 0 && s.fp == fp {
			return int(i)
		}
	}
	return -1
}

// insert evicts the oldest-stamped slot in the window on overflow —
// deterministic, clock-free, and allocation-free.
//
//detlint:hotpath
func (c *mcache) insert(fp uint64, gen int64, r mrow) {
	empty, oldest := -1, -1
	var oldestGen int64
	for o := 0; o < c.window; o++ {
		i := int((fp + uint64(o)) & c.mask)
		s := &c.slots[i]
		if s.gen < 0 {
			if empty < 0 {
				empty = i
			}
			continue
		}
		if s.fp == fp {
			s.gen, s.row = gen, r
			return
		}
		if oldest < 0 || s.gen < oldestGen {
			oldest, oldestGen = i, s.gen
		}
	}
	dst := empty
	if dst < 0 {
		dst = oldest
	}
	c.slots[dst] = mslot{fp: fp, gen: gen, row: r}
}
