// Package pos seeds deliberate maprange violations: map iterations
// whose bodies append to outer slices, accumulate floats, draw from an
// rng stream, and write ordered output.
package pos

import (
	"fmt"

	"tradeoff/internal/rng"
)

// Keys collects map keys without sorting them afterwards, so the result
// permutes between runs.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Sum folds float values in map order, reassociating the sum per run.
func Sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// Jitter consumes the rng stream in map order, desynchronizing every
// later draw.
func Jitter(m map[string]float64, src *rng.Source) {
	for k := range m {
		m[k] += src.Float64()
	}
}

// Dump writes rows to ordered output in map order.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
