// Package neg is maprange-clean: every order-sensitive fold runs over
// sorted keys, and the remaining map iterations have order-insensitive
// bodies.
package neg

import (
	"fmt"
	"sort"
)

// Keys uses the sorted-keys guard: the collected keys are sorted before
// anyone observes their order.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum folds in sorted-key order, so the float sum is reproducible.
func Sum(m map[string]float64) float64 {
	total := 0.0
	for _, k := range Keys2(m) {
		total += m[k]
	}
	return total
}

// Keys2 is Keys for float-valued maps.
func Keys2(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Count has an order-insensitive body: integer counting is exact, and
// writes into another map carry no order.
func Count(m map[string]int) (int, map[string]bool) {
	n := 0
	present := map[string]bool{}
	for k := range m {
		n++
		present[k] = true
	}
	return n, present
}

// Dump writes in sorted-key order.
func Dump(m map[string]int) {
	for _, k := range Keys(m) {
		fmt.Printf("%s=%d\n", k, m[k])
	}
}
