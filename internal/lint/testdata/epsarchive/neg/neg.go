// Package neg is the determinism-clean shape of a bounded ε-dominance
// archive — the one internal/moea actually uses: compile-time hash
// constants (no process seeding), a direct-mapped verified hint table
// instead of a map, a manual binary search over the box staircase (no
// sort.Search closure), and a splice that recycles value buffers with
// self-reslices and copy instead of appending on the hot path.
package neg

// Splitmix-style mixing constants, fixed at compile time: the same
// ε-box hashes identically in every process, so hint hits replay.
const (
	hintSize = 256
	hashM1   = 0xbf58476d1ce4e5b9
	hashM2   = 0x94d049bb133111eb
)

// hashBox mixes the two box coordinates, allocation-free.
func hashBox(b0, b1 int64) uint64 {
	x := uint64(b0)*hashM1 ^ uint64(b1)
	x ^= x >> 30
	x *= hashM2
	x ^= x >> 27
	return x
}

type hint struct {
	b0, b1 int64
	idx    int
	live   bool
}

// archive keeps one representative per occupied ε-box on the 2-D
// staircase invariant: box0 strictly ascending, box1 strictly
// descending.
type archive struct {
	points [][]float64
	boxes  []int64 // b0,b1 per entry
	free   [][]float64
	hints  [hintSize]hint
}

// lower returns the first staircase slot with box0 >= b0 — a manual
// binary search, closure-free.
//
//detlint:hotpath
func (a *archive) lower(b0 int64) int {
	lo, hi := 0, len(a.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a.boxes[2*mid] < b0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insert places point into staircase slot i, reusing a recycled value
// buffer and shifting the suffix with copy — the backing arrays were
// sized at construction, so the hot path never appends.
//
//detlint:hotpath
func (a *archive) insert(i int, b0, b1 int64, point []float64) {
	n := len(a.points)
	a.points = a.points[:n+1]
	a.boxes = a.boxes[:2*n+2]
	copy(a.points[i+1:], a.points[i:n])
	copy(a.boxes[2*i+2:], a.boxes[2*i:2*n])
	buf := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	copy(buf, point)
	a.points[i] = buf
	a.boxes[2*i], a.boxes[2*i+1] = b0, b1
	h := hashBox(b0, b1) & (hintSize - 1)
	a.hints[h] = hint{b0: b0, b1: b1, idx: i, live: true}
}
