// Package pos seeds the determinism violations a naive ε-dominance
// archive invites: process-seeded box hashing (mutable package-level
// seed, the hash/maphash pattern), a map-backed box index whose pruning
// scan iterates the map, and an annotated insert path that allocates
// per call.
package pos

import "fmt"

// boxSeed is re-derived at startup in maphash-style code; any mutation
// makes box hashes differ between processes, so replayed runs disagree
// about which grid cells collide and keep different representatives.
var boxSeed uint64

func reseed(v uint64) {
	boxSeed = v // mutable global: box identity now depends on call history
}

type boxKey struct{ b0, b1 int64 }

// grid maps ε-boxes to archive slots with no deterministic order.
type grid struct {
	boxes   map[boxKey]int
	points  [][]float64
	victims []boxKey
}

// prune collects over-full boxes by iterating the map: the victim
// order — and therefore which representatives survive — changes run to
// run.
//
//detlint:hotpath
func (g *grid) prune(maxBox int64) {
	for k := range g.boxes {
		if k.b0 > maxBox {
			g.victims = append(g.victims, k) // grows forever, order unstable
		}
	}
	for _, k := range g.victims {
		delete(g.boxes, k)
	}
}

// insert appends without a capacity guard and formats a label per call
// inside the hot path.
//
//detlint:hotpath
func (g *grid) insert(b0, b1 int64, pt []float64) string {
	k := boxKey{b0 ^ int64(boxSeed), b1}
	g.boxes[k] = len(g.points)
	g.points = append(g.points, pt)
	return fmt.Sprintf("box (%d,%d)", b0, b1)
}
