// Package suppress exercises //detlint:allow comments: one violation
// is excused on its own line, one by the preceding line, and one is
// left unsuppressed so the package still reports exactly one finding.
package suppress

import "time"

// Stamp reads the wall clock twice under suppression and once without.
func Stamp() [3]int64 {
	var out [3]int64
	out[0] = time.Now().UnixNano() //detlint:allow purity boot-time banner only
	//detlint:allow purity second excused read
	out[1] = time.Now().UnixNano()
	out[2] = time.Now().UnixNano() // unsuppressed: detlint must flag this
	return out
}
