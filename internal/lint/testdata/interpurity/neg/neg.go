package neg

import "time"

// depth is pure all the way down, including through direct recursion.
//
//detlint:pure
func depth(n int) int {
	if n <= 0 {
		return 0
	}
	return 1 + depth(n-1)
}

// even and odd form a mutual-recursion cycle under a pure root; the
// walk must terminate without flagging anything.
//
//detlint:pure
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

// clocked is impure but carries no pure marker; interpurity audits only
// marked roots.
func clocked() int64 {
	return time.Now().UnixNano() //detlint:allow purity unmarked helper, outside the interpurity audit
}
