package pos

import "time"

// ticks is mutated two hops below a pure root.
var ticks int

// step is the replayable engine loop; the global write it reaches
// through advance and record breaks the contract.
//
//detlint:pure
func step() {
	advance()
}

func advance() { record() }

func record() {
	ticks++ //detlint:allow purity fixture seeds a mutable global deliberately
}

// stamp claims purity but reaches the wall clock through a helper.
//
//detlint:pure
func stamp() int64 {
	return now()
}

func now() int64 {
	return time.Now().UnixNano() //detlint:allow purity fixture reaches the clock deliberately
}
