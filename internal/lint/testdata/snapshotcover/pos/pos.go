package pos

// engine is a stand-in whose snapshot coverage is broken both ways.
type engine struct {
	gen  int
	seed uint64
}

// EngineSnapshot captures a resumable engine state: Seed is encoded but
// never decoded, Ghost is referenced by neither side.
type EngineSnapshot struct {
	Gen   int
	Seed  uint64
	Ghost float64
}

func (e *engine) Snapshot() *EngineSnapshot {
	return &EngineSnapshot{Gen: e.gen, Seed: e.seed}
}

func (e *engine) Restore(s *EngineSnapshot) {
	e.gen = s.Gen
}
