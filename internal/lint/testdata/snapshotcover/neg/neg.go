package neg

type engine struct {
	gen  int
	seed uint64
}

// EngineSnapshot captures a resumable engine state; every field is
// referenced on both sides, through helpers.
type EngineSnapshot struct {
	Gen  int
	Seed uint64
}

// Snapshot delegates field collection to a helper: coverage must hold
// through the call graph, not just the root body.
func (e *engine) Snapshot() *EngineSnapshot {
	s := &EngineSnapshot{}
	e.fill(s)
	return s
}

func (e *engine) fill(s *EngineSnapshot) {
	s.Gen = e.gen
	s.Seed = e.seed
}

func (e *engine) Restore(s *EngineSnapshot) {
	e.apply(s)
}

func (e *engine) apply(s *EngineSnapshot) {
	e.gen = s.Gen
	e.seed = s.Seed
}
