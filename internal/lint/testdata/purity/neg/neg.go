// Package neg is purity-clean: randomness flows through an explicit
// rng.Source, package-level state is write-once, and no ambient clock or
// environment is consulted.
package neg

import (
	"errors"

	"tradeoff/internal/rng"
)

// ErrEmpty is a sentinel error; never reassigned, so not mutable state.
var ErrEmpty = errors.New("neg: empty")

// weights is a write-once lookup table.
var weights = []float64{1, 2, 3}

// Draw derives all randomness from the caller's source.
func Draw(src *rng.Source) (int, error) {
	if len(weights) == 0 {
		return 0, ErrEmpty
	}
	return src.Pick(weights), nil
}
