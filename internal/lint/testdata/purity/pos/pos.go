// Package pos seeds deliberate purity violations: ambient randomness,
// wall-clock reads, environment reads, and mutable package-level state.
package pos

import (
	"math/rand"
	"os"
	"time"
)

// counter is package-level state mutated by Draw: call history changes
// results, which purity forbids.
var counter int

// Draw mixes every forbidden ambient source into one value.
func Draw() int64 {
	counter++
	n := rand.Int63()
	if os.Getenv("DETLINT_FIXTURE") != "" {
		n++
	}
	start := time.Now()
	n += int64(time.Since(start))
	return n
}
