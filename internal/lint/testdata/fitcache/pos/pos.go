// Package pos seeds the determinism violations a naive fitness-
// memoization layer invites: a process-seeded fingerprint (mutable
// package-level hash state, the hash/maphash pattern), a map-backed
// cache whose eviction scan iterates the map, and an annotated insert
// path that allocates per call.
package pos

import "fmt"

// fpSeed is re-derived at startup in real maphash-style code; any
// mutation makes fingerprints differ between processes, so resumed or
// replayed runs stop hitting their own cache entries.
var fpSeed uint64

func reseed(v uint64) {
	fpSeed = v // mutable global: fingerprints now depend on call history
}

type entry struct {
	utility float64
	energy  float64
}

// cache maps fingerprints to outcomes with no bound or eviction order.
type lruless struct {
	entries map[uint64]entry
	victims []uint64
}

// evictOld scans for victims by iterating the map: the victim order —
// and therefore which entries survive — changes run to run.
//
//detlint:hotpath
func (c *lruless) evictOld(cutoff float64) {
	for fp, e := range c.entries {
		if e.utility < cutoff {
			c.victims = append(c.victims, fp) // grows forever, order unstable
		}
	}
	for _, fp := range c.victims {
		delete(c.entries, fp)
	}
}

// insert allocates a formatted key per call inside the hot path.
//
//detlint:hotpath
func (c *lruless) insert(fp uint64, e entry) string {
	c.entries[fp^fpSeed] = e
	return fmt.Sprintf("cached %d entries", len(c.entries))
}
