// Package neg is the determinism-clean shape of a fitness-memoization
// layer: compile-time fingerprint constants (no process seeding), an
// open-addressing slot array probed in index order (no map iteration),
// generation-stamped clock-free eviction, and hot paths that recycle
// their buffers.
package neg

// Splitmix-style mixing constants, fixed at compile time: the same
// chromosome fingerprints identically in every process, so caches
// survive snapshot/resume and replays.
const (
	fpGamma = 0x9e3779b97f4a7c15
	fpM1    = 0xbf58476d1ce4e5b9
	fpM2    = 0x94d049bb133111eb
)

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= fpM1
	x ^= x >> 27
	x *= fpM2
	x ^= x >> 31
	return x
}

// fingerprint absorbs genes with xor-multiply and finalizes with the
// length, allocation-free.
//
//detlint:hotpath
func fingerprint(genes []uint64) uint64 {
	h := mix64(fpGamma)
	for _, g := range genes {
		h = (h ^ g) * fpM1
	}
	return mix64(h ^ uint64(len(genes)))
}

type slot struct {
	fp  uint64
	gen int64 // generation stamp; -1 = empty
	val float64
}

// cache is power-of-two open addressing with a fixed probe window.
type cache struct {
	slots  []slot
	mask   uint64
	window int
}

// insert probes a bounded window in index order and evicts the
// oldest-stamped slot on overflow — deterministic and clock-free, with
// no steady-state allocation.
//
//detlint:hotpath
func (c *cache) insert(fp uint64, gen int64, val float64) {
	empty, oldest := -1, -1
	var oldestGen int64
	for o := 0; o < c.window; o++ {
		i := int((fp + uint64(o)) & c.mask)
		s := &c.slots[i]
		if s.gen < 0 {
			if empty < 0 {
				empty = i
			}
			continue
		}
		if s.fp == fp {
			s.gen, s.val = gen, val
			return
		}
		if oldest < 0 || s.gen < oldestGen {
			oldest, oldestGen = i, s.gen
		}
	}
	dst := empty
	if dst < 0 {
		dst = oldest
	}
	c.slots[dst] = slot{fp: fp, gen: gen, val: val}
}
