// Package conf declares a fully wired option struct.
package conf

// Options parameterizes the toy run; unexported fields are outside the
// audit.
//
//detlint:optwire
type Options struct {
	Level int

	internal int
}

// Use keeps the unexported field alive for the compiler.
func Use(o Options) int { return o.internal }
