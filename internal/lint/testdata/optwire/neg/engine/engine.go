// Package engine proves wiring propagates through option-reading
// constructors: Params.Depth is never written by the CLI directly, but
// BuildParams derives it from the wired Options.Level.
package engine

import "tradeoff/internal/lint/testdata/optwire/neg/conf"

// Params is the engine-level configuration.
//
//detlint:optwire
type Params struct {
	Depth int
}

// BuildParams translates user options into engine parameters.
func BuildParams(o conf.Options) Params {
	return Params{Depth: o.Level * 2}
}

// Run consumes the derived parameter.
func Run(p Params) int { return p.Depth }
