// Command app wires the one exported knob.
package main

import (
	"flag"
	"fmt"

	"tradeoff/internal/lint/testdata/optwire/neg/conf"
	"tradeoff/internal/lint/testdata/optwire/neg/engine"
)

func main() {
	level := flag.Int("level", 1, "level knob")
	flag.Parse()
	p := engine.BuildParams(conf.Options{Level: *level})
	fmt.Println(engine.Run(p))
}
