// Command app is the fixture CLI entry point: it wires Alpha and Gamma
// but not Beta.
package main

import (
	"flag"
	"fmt"

	"tradeoff/internal/lint/testdata/optwire/pos/conf"
)

func main() {
	alpha := flag.Int("alpha", 1, "alpha knob")
	gamma := flag.Int("gamma", 0, "gamma knob")
	flag.Parse()
	fmt.Println(conf.Run(conf.Config{Alpha: *alpha, Gamma: *gamma}))
}
