// Package conf declares an audited option struct with broken plumbing.
package conf

// Config parameterizes the toy engine: Alpha is wired and consumed,
// Beta is consumed but reachable from no CLI flag, Gamma is written by
// the CLI but consumed by nothing.
//
//detlint:optwire
type Config struct {
	Alpha int
	Beta  int
	Gamma int
}

// Run is the engine site consuming Alpha and Beta.
func Run(c Config) int {
	return c.Alpha + c.Beta
}
