// Package neg is hotalloc-clean: the hotpath function recycles its
// arena with a reset-then-append guard, keeps its only Sprintf inside a
// panic, and sorts through a pre-bound capture-free sorter struct.
package neg

import (
	"fmt"
	"sort"
)

// Evaluator carries scratch state across calls.
type Evaluator struct {
	scratch []int
	sorter  bySlot
}

// bySlot is a pre-bound sorter: binding the slice to a field avoids a
// capturing closure in the hotpath.
type bySlot struct{ xs []int }

func (s bySlot) Len() int           { return len(s.xs) }
func (s bySlot) Less(i, j int) bool { return s.xs[i] < s.xs[j] }
func (s bySlot) Swap(i, j int)      { s.xs[i], s.xs[j] = s.xs[j], s.xs[i] }

// Step runs once per generation without steady-state allocation.
//
//detlint:hotpath
func (e *Evaluator) Step(xs []int) int {
	if len(xs) == 0 {
		panic(fmt.Sprintf("neg: empty input (cap %d)", cap(e.scratch)))
	}
	e.scratch = e.scratch[:0] // reset-then-append arena reuse
	for _, x := range xs {
		e.scratch = append(e.scratch, x)
	}
	e.sorter.xs = e.scratch
	sort.Sort(e.sorter)
	return e.scratch[len(e.scratch)/2]
}

// Cold is not annotated, so allocation rules do not apply here.
func Cold(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("row-%d", i))
	}
	return out
}
