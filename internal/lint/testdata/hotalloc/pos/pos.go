// Package pos seeds deliberate hotalloc violations inside a
// //detlint:hotpath function: unguarded append, fmt.Sprintf outside
// panic, and a capturing closure.
package pos

import (
	"fmt"
	"sort"
)

// Evaluator carries scratch state across calls.
type Evaluator struct {
	scratch []int
	calls   int
}

// Step runs once per generation.
//
//detlint:hotpath
func (e *Evaluator) Step(xs []int) string {
	for _, x := range xs {
		e.scratch = append(e.scratch, x) // no reset-to-zero guard: grows forever
	}
	sort.Slice(e.scratch, func(i, j int) bool { // closure captures e
		return e.scratch[i] < e.scratch[j]
	})
	e.calls++
	return fmt.Sprintf("calls=%d", e.calls)
}
