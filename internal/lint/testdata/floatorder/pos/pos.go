// Package pos seeds deliberate floatorder violations: goroutines
// accumulating floats into captured state, so the sum depends on
// scheduling order even under a mutex.
package pos

import "sync"

// SumParallel races workers onto one captured accumulator.
func SumParallel(xs []float64) float64 {
	var (
		mu  sync.Mutex
		sum float64
		wg  sync.WaitGroup
	)
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			mu.Lock()
			sum += x
			mu.Unlock()
		}(x)
	}
	wg.Wait()
	return sum
}

// Stats accumulates two captured floats through a struct field path.
type Stats struct{ Mean, M2 float64 }

// Fill accumulates into a captured struct from workers.
func Fill(xs []float64) Stats {
	var (
		mu sync.Mutex
		st Stats
		wg sync.WaitGroup
	)
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			mu.Lock()
			st.Mean += x
			mu.Unlock()
		}(x)
	}
	wg.Wait()
	return st
}
