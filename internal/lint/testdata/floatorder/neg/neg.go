// Package neg is floatorder-clean: the fixed-order reduce pattern.
// Workers write disjoint slots; one goroutine folds the slots in index
// order, so the sum is bit-identical for every worker interleaving.
package neg

import "sync"

// SumParallel squares in parallel, reduces serially in fixed order.
func SumParallel(xs []float64) float64 {
	results := make([]float64, len(xs))
	var wg sync.WaitGroup
	for i, x := range xs {
		wg.Add(1)
		go func(i int, x float64) {
			defer wg.Done()
			local := x * x // goroutine-local accumulation is fine
			local += x
			results[i] = local // per-slot plain write, not accumulation
		}(i, x)
	}
	wg.Wait()
	sum := 0.0
	for _, r := range results {
		sum += r
	}
	return sum
}
