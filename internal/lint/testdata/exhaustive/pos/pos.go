// Package pos seeds deliberate exhaustive violations: switches over a
// project enum that omit declared constants, with and without default.
package pos

// Phase enumerates simulation phases.
type Phase int

// Phase values.
const (
	Warmup Phase = iota
	Steady
	Drain
	Shutdown
)

// Describe omits Drain and Shutdown.
func Describe(p Phase) string {
	switch p {
	case Warmup:
		return "warmup"
	case Steady:
		return "steady"
	}
	return "unknown"
}

// Busy omits Shutdown; the default clause does not excuse the gap.
func Busy(p Phase) bool {
	switch p {
	case Warmup, Steady, Drain:
		return true
	default:
		return false
	}
}
