// Package neg is exhaustive-clean: every switch over the enum names
// all declared constants.
package neg

// Phase enumerates simulation phases.
type Phase int

// Phase values.
const (
	Warmup Phase = iota
	Steady
	Drain
)

// Describe covers every Phase constant.
func Describe(p Phase) string {
	switch p {
	case Warmup:
		return "warmup"
	case Steady:
		return "steady"
	case Drain:
		return "drain"
	}
	return "unknown"
}

// Tagless switches are out of scope for the analyzer.
func Tagless(p Phase) string {
	switch {
	case p == Warmup:
		return "warmup"
	default:
		return "other"
	}
}
