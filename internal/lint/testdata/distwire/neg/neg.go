// Package neg is the determinism-clean wire codec shape internal/dist
// actually uses: encode and decode reference every payload field
// symmetrically, pending edges drain in slice (ring) order, the frame
// buffer is reset with a self-reslice so hot-path appends amortize
// against retained capacity, and failure-path formatting lives in a
// cold helper outside the hotpath bodies.
package neg

import (
	"encoding/binary"
	"fmt"
)

const maxFrame = 1 << 20

// elitesSnapshot is one boundary ring edge's migration payload.
type elitesSnapshot struct {
	Tick  int64
	Seed  uint64
	Genes []int32
}

// codec frames messages into a reused buffer.
type codec struct {
	buf []byte
}

// wireErr builds the failure outside any hotpath body, so steady-state
// frames never touch fmt; every caller terminates the stream.
func wireErr(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

// EncodeElites stages one payload, resetting the reused frame buffer
// first so the appends run against established capacity.
//
//detlint:hotpath
func (c *codec) EncodeElites(s *elitesSnapshot) ([]byte, error) {
	c.buf = c.buf[:0]
	c.buf = binary.LittleEndian.AppendUint64(c.buf, uint64(s.Tick))
	c.buf = binary.LittleEndian.AppendUint64(c.buf, s.Seed)
	for _, g := range s.Genes {
		c.buf = append(c.buf, byte(g), byte(g>>8), byte(g>>16), byte(g>>24))
	}
	if len(c.buf) > maxFrame {
		return nil, wireErr("frame of %d bytes exceeds limit", len(c.buf))
	}
	return c.buf, nil
}

// DecodeElites rebuilds the payload, reading every encoded field back
// and sizing the gene slice up front with a 3-arg make.
//
//detlint:hotpath
func DecodeElites(b []byte) (*elitesSnapshot, error) {
	if len(b) < 16 || (len(b)-16)%4 != 0 {
		return nil, wireErr("elites payload of %d bytes: truncated or trailing garbage", len(b))
	}
	s := &elitesSnapshot{
		Tick: int64(binary.LittleEndian.Uint64(b)),
		Seed: binary.LittleEndian.Uint64(b[8:]),
	}
	n := (len(b) - 16) / 4
	s.Genes = make([]int32, 0, n)
	for off := 16; off+4 <= len(b); off += 4 {
		s.Genes = append(s.Genes, int32(binary.LittleEndian.Uint32(b[off:])))
	}
	return s, nil
}

// flush drains the pending boundary edges in ring order — a slice
// indexed by edge, never a map — so the wire carries frames in the
// same sequence every run.
func flush(c *codec, pending []*elitesSnapshot, wire []byte) ([]byte, error) {
	for _, s := range pending {
		if s == nil {
			continue
		}
		frame, err := c.EncodeElites(s)
		if err != nil {
			return nil, err
		}
		wire = append(wire, frame...)
	}
	return wire, nil
}
