// Package pos seeds the determinism violations a naive wire codec for
// distributed island migration invites: an elites payload whose decode
// side silently drops a field (a resumed worker replays a different
// stream), a flush loop that drains pending mailboxes in map order (the
// frame sequence on the wire permutes run to run), and annotated
// hot-path send/receive routines that grow frame buffers with unguarded
// appends and format error strings per frame.
package pos

import (
	"encoding/binary"
	"fmt"
)

const maxFrame = 1 << 20

// elitesSnapshot is one boundary ring edge's migration payload.
type elitesSnapshot struct {
	Tick  int64
	Seed  uint64
	Genes []int32
}

// EncodeElites writes every field as fixed-width little-endian.
func EncodeElites(s *elitesSnapshot) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Tick))
	buf = binary.LittleEndian.AppendUint64(buf, s.Seed)
	for _, g := range s.Genes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(g))
	}
	return buf
}

// DecodeElites rebuilds the payload — but never reads Seed back, so a
// worker restored from the wire silently reseeds from zero.
func DecodeElites(b []byte) *elitesSnapshot {
	s := &elitesSnapshot{Tick: int64(binary.LittleEndian.Uint64(b))}
	for off := 16; off+4 <= len(b); off += 4 {
		s.Genes = append(s.Genes, int32(binary.LittleEndian.Uint32(b[off:])))
	}
	return s
}

// flush drains the pending mailboxes in map order: the frame sequence
// on the wire — and every receiver's migration order — permutes run to
// run.
func flush(pending map[int][]byte, wire []byte) []byte {
	for edge, payload := range pending {
		wire = append(wire, byte(edge))
		wire = append(wire, payload...)
	}
	return wire
}

// send frames one migration payload, growing the frame buffer without
// an established capacity and formatting the oversize error inline.
//
//detlint:hotpath
func send(frame []byte, genes []int32) ([]byte, error) {
	for _, g := range genes {
		frame = append(frame, byte(g), byte(g>>8), byte(g>>16), byte(g>>24))
	}
	if len(frame) > maxFrame {
		return nil, fmt.Errorf("frame of %d bytes exceeds limit", len(frame))
	}
	return frame, nil
}

// receive decodes one payload into a gene slice it grows element by
// element — an allocation per migration tick on the hot path.
//
//detlint:hotpath
func receive(frame []byte) []int32 {
	var genes []int32
	for off := 0; off+4 <= len(frame); off += 4 {
		genes = append(genes, int32(binary.LittleEndian.Uint32(frame[off:])))
	}
	return genes
}
