// Package pos seeds the determinism violations a naive phase profiler
// invites: ambient wall-clock reads inside the engine (instead of an
// injected clock), a mutable package-level accumulator keyed by phase
// name, a summary that iterates the map in random order, and annotated
// hot-path brackets that allocate per call.
package pos

import (
	"fmt"
	"time"
)

// phaseNS accumulates per-phase nanoseconds in a package-level map:
// timer state now depends on call history across every engine in the
// process, and tests cannot isolate it.
var phaseNS = map[string]int64{}

// start opens a bracket on the ambient wall clock, so instrumented runs
// observe the host instead of the injected Clock.
//
//detlint:hotpath
func start() time.Time {
	return time.Now()
}

// record closes a bracket, formatting the phase label per call inside
// the hot path and mutating the global table.
//
//detlint:hotpath
func record(phase string, from time.Time) string {
	phaseNS[phase] += time.Since(from).Nanoseconds()
	return fmt.Sprintf("bracket %s closed", phase)
}

// summary renders the profile by iterating the map: line order — and
// any diff against a golden profile — changes run to run.
//
//detlint:hotpath
func summary() []string {
	var lines []string
	for name, ns := range phaseNS {
		lines = append(lines, fmt.Sprintf("%s=%dns", name, ns))
	}
	return lines
}
