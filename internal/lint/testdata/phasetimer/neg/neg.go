// Package neg is the determinism-clean shape of a phase profiler: an
// injected clock (nil for a constant-zero clock, never the ambient wall
// clock), fixed-slot atomic accumulators indexed by a compile-time
// phase enum (no maps, no per-call allocation), and nil-safe brackets
// so uninstrumented call sites cost one branch.
package neg

import "sync/atomic"

// clock is the injected time source, a nanosecond counter supplied by
// the cmd layer; internal code never reads ambient time.
type clock func() int64

// phase indexes one timed section of the generation loop.
type phase int

const (
	phaseSelect phase = iota
	phaseEval
	phaseSort
	numPhases = int(phaseSort) + 1
)

// timer accumulates wall time per phase with fixed-slot atomic adds:
// one timer may be shared by concurrent islands without locks.
type timer struct {
	clock clock
	ns    [numPhases]atomic.Int64
	count [numPhases]atomic.Int64
}

// start opens a bracket on the injected clock; nil-safe.
//
//detlint:hotpath
func (t *timer) start() int64 {
	if t == nil || t.clock == nil {
		return 0
	}
	return t.clock()
}

// record closes a bracket with two atomic adds into constant slots —
// allocation-free, so profiling never perturbs the hot path.
//
//detlint:hotpath
func (t *timer) record(p phase, from int64) {
	if t == nil {
		return
	}
	var now int64
	if t.clock != nil {
		now = t.clock()
	}
	t.ns[p].Add(now - from)
	t.count[p].Add(1)
}

// totals snapshots the accumulated nanoseconds in index order.
func (t *timer) totals() [numPhases]int64 {
	var out [numPhases]int64
	if t == nil {
		return out
	}
	for p := range out {
		out[p] = t.ns[p].Load()
	}
	return out
}
