package neg

import (
	"sync"
	"sync/atomic"
)

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

// run distributes work with every write confined: per-slot results
// indexed by a goroutine-local variable, goroutine-local receivers, a
// channel handoff, and an atomic counter.
func run(items []int) int {
	out := make([]int, len(items))
	done := make(chan int, len(items))
	var hits atomic.Int64
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i, it int) {
			defer wg.Done()
			var local counter
			local.bump()
			sum := 0
			sum += it
			out[i] = sum + local.n
			hits.Add(1)
			done <- i
		}(i, it)
	}
	wg.Wait()
	total := int(hits.Load())
	for range items {
		total += out[<-done]
	}
	return total
}
