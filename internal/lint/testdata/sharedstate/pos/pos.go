package pos

import "sync"

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

// run fans work out to goroutines that break every confinement rule:
// a captured scalar accumulator, a constant-index slice write, and a
// mutating method call on a captured receiver.
func run(items []int) int {
	var total int
	var st counter
	out := make([]int, len(items))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, it := range items {
		_ = i
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			mu.Lock()
			total += it
			mu.Unlock()
			out[0] = it
			st.bump()
		}(it)
	}
	wg.Wait()
	return total + out[0] + st.n
}
