package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerOptWire audits the plumbing of option structs annotated with
// a `//detlint:optwire` doc-comment line (core.Options, nsga2.Config,
// experiments.RunConfig). Every exported field must be
//
//   - consumed: read somewhere in non-test, non-cmd code (the engine
//     actually honors the knob), and
//   - wired: written in a cmd/ main package, or written as a
//     composite-literal key by a function that itself reads an
//     already-wired option field (the constructor chain a CLI flag
//     flows through — e.g. cmd/tradeoff writes Options, core.Optimize
//     reads Options and writes nsga2.Config).
//
// Plain assignments outside cmd/ never wire a field: default-filling
// methods like withDefaults would otherwise mark every knob as
// CLI-reachable. Deliberate code-level extension points are documented
// with an allow comment on the field.
var AnalyzerOptWire = &Analyzer{
	Name: "optwire",
	Doc:  "every exported //detlint:optwire struct field must be engine-consumed and reachable from a cmd/ CLI write",
	Run:  runOptWire,
}

const optwireMarker = "//detlint:optwire"

func runOptWire(p *Pass) {
	if p.Index == nil || unitIsTest(p.PkgPath) {
		return
	}
	// Collect marked option fields module-wide; report only the ones
	// declared in this unit's files.
	type fieldState struct {
		owner, name string
		pos         token.Pos
		local       bool // declared in p.Files
	}
	var order []types.Object
	states := map[types.Object]*fieldState{}
	localFiles := map[*ast.File]bool{}
	for _, f := range p.Files {
		localFiles[f] = true
	}
	for _, u := range p.Index.Units {
		if unitIsTest(u.PkgPath) {
			continue
		}
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !declMarker(gd.Doc, optwireMarker) && !declMarker(ts.Doc, optwireMarker) {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, fld := range st.Fields.List {
						for _, nm := range fld.Names {
							if !nm.IsExported() {
								continue
							}
							obj := u.Info.Defs[nm]
							if obj == nil || states[obj] != nil {
								continue
							}
							states[obj] = &fieldState{
								owner: ts.Name.Name,
								name:  nm.Name,
								pos:   nm.Pos(),
								local: localFiles[f] && u.Pkg == p.Pkg,
							}
							order = append(order, obj)
						}
					}
				}
			}
		}
	}
	anyLocal := false
	for _, obj := range order {
		if states[obj].local {
			anyLocal = true
		}
	}
	if !anyLocal {
		return
	}

	// One record per function: which option fields it reads, writes via
	// composite-literal keys, and writes at all (for cmd/ seeding).
	type funcRec struct {
		isCmd           bool
		reads           []types.Object
		compositeWrites []types.Object
		allWrites       []types.Object
	}
	var recs []*funcRec
	read := map[types.Object]bool{} // consumption: non-test, non-cmd reads
	for _, u := range p.Index.Units {
		if unitIsTest(u.PkgPath) {
			continue
		}
		isCmd := u.Pkg.Name() == "main" && hasCmdSegment(u.RelDir)
		info := u.Info
		for _, f := range u.Files {
			// Write idents are excluded from read classification below.
			writeIdents := map[*ast.Ident]bool{}
			collect := func(body ast.Node, rec *funcRec) {
				ast.Inspect(body, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.CompositeLit:
						for _, elt := range x.Elts {
							kv, ok := elt.(*ast.KeyValueExpr)
							if !ok {
								continue
							}
							key, ok := kv.Key.(*ast.Ident)
							if !ok {
								continue
							}
							obj := info.Uses[key]
							if states[obj] == nil {
								continue
							}
							writeIdents[key] = true
							if rec != nil {
								rec.compositeWrites = append(rec.compositeWrites, obj)
								rec.allWrites = append(rec.allWrites, obj)
							}
						}
					case *ast.AssignStmt:
						if x.Tok == token.DEFINE {
							return true
						}
						for _, lhs := range x.Lhs {
							sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
							if !ok {
								continue
							}
							obj := info.Uses[sel.Sel]
							if states[obj] == nil {
								continue
							}
							writeIdents[sel.Sel] = true
							if rec != nil {
								rec.allWrites = append(rec.allWrites, obj)
							}
						}
					}
					return true
				})
				ast.Inspect(body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok || writeIdents[id] {
						return true
					}
					obj := info.Uses[id]
					if states[obj] == nil {
						return true
					}
					if rec != nil {
						rec.reads = append(rec.reads, obj)
					}
					if !isCmd {
						read[obj] = true
					}
					return true
				})
			}
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					rec := &funcRec{isCmd: isCmd}
					collect(fd.Body, rec)
					recs = append(recs, rec)
				} else {
					collect(decl, nil) // package-level reads count as consumption
				}
			}
		}
	}

	// Wiring fixpoint: cmd/ writes seed, option-reading constructors
	// propagate through composite-literal keys.
	wired := map[types.Object]bool{}
	for _, r := range recs {
		if r.isCmd {
			for _, obj := range r.allWrites {
				wired[obj] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, r := range recs {
			if r.isCmd || len(r.compositeWrites) == 0 {
				continue
			}
			hot := false
			for _, obj := range r.reads {
				if wired[obj] {
					hot = true
					break
				}
			}
			if !hot {
				continue
			}
			for _, obj := range r.compositeWrites {
				if !wired[obj] {
					wired[obj] = true
					changed = true
				}
			}
		}
	}

	for _, obj := range order {
		st := states[obj]
		if !st.local {
			continue
		}
		switch {
		case !read[obj]:
			p.Reportf(st.pos, "exported option field %s.%s is consumed by no engine code; delete it or wire a consumer", st.owner, st.name)
		case !wired[obj]:
			p.Reportf(st.pos, "exported option field %s.%s is unreachable from any cmd/ CLI write; plumb a flag through (or allow-list a code-level extension point)", st.owner, st.name)
		}
	}
}

// unitIsTest reports whether a unit path names an in-package test group
// or an external _test package.
func unitIsTest(pkgPath string) bool {
	return strings.HasSuffix(pkgPath, " [tests]") || strings.HasSuffix(pkgPath, "_test")
}

// hasCmdSegment reports whether a module-relative directory has a path
// segment named "cmd" (cmd/tradeoff, but also fixture trees like
// testdata/optwire/pos/cmd/app).
func hasCmdSegment(relDir string) bool {
	for _, seg := range strings.Split(relDir, "/") {
		if seg == "cmd" {
			return true
		}
	}
	return false
}
