package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerMapRange flags `range` statements over maps whose loop body
// has order-sensitive effects. Go randomizes map iteration order, so any
// such loop produces run-dependent results: appended slices permute,
// float sums reassociate, rng draws consume the stream in a different
// order, and ordered output interleaves. The fix is to range over sorted
// keys (a slice), which this analyzer never flags.
var AnalyzerMapRange = &Analyzer{
	Name: "maprange",
	Doc:  "flag map iteration whose body appends, accumulates floats, draws rng, or writes ordered output",
	Run:  runMapRange,
}

// orderedWriterPkgs are packages whose Write/WriteString receivers count
// as ordered output sinks.
var orderedWriterPkgs = map[string]bool{
	"strings": true, "bytes": true, "bufio": true, "os": true,
}

func runMapRange(p *Pass) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if effect := orderSensitiveEffect(p, file, rs); effect != "" {
				p.Reportf(rs.For, "map iteration with order-sensitive effect (%s); iterate sorted keys instead", effect)
			}
			return true
		})
	}
}

// sortedLater reports whether obj is passed to a sort call somewhere in
// the function enclosing the range statement — the sorted-keys guard:
// collecting keys into a slice and sorting it canonicalizes the order,
// so the append is not an order-sensitive effect.
func sortedLater(p *Pass, file *ast.File, rs *ast.RangeStmt, obj types.Object) bool {
	body := enclosingFuncBody(file, rs.Pos())
	if body == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := pkgFunc(p.Info, call, "sort")
		if !ok {
			name, ok = pkgFunc(p.Info, call, "slices")
		}
		if !ok || !strings.Contains(name, "Sort") && !strings.HasPrefix(name, "Ints") && !strings.HasPrefix(name, "Strings") && !strings.HasPrefix(name, "Float64s") {
			return true
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil && objOf(p.Info, id) == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// enclosingFuncBody returns the body of the innermost function
// containing pos, or nil.
func enclosingFuncBody(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos > n.End() {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncDecl:
			body = x.Body
		case *ast.FuncLit:
			body = x.Body
		}
		return true
	})
	return body
}

// orderSensitiveEffect returns a description of the first order-sensitive
// effect in the range body, or "".
func orderSensitiveEffect(p *Pass, file *ast.File, rs *ast.RangeStmt) string {
	var effect string
	declaredOutside := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return false
		}
		obj := objOf(p.Info, id)
		if obj == nil {
			return false
		}
		return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			effect = "send on channel"
		case *ast.AssignStmt:
			switch x.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range x.Lhs {
					if isFloat(p.Info.TypeOf(lhs)) && declaredOutside(lhs) {
						effect = "float accumulation into " + types.ExprString(lhs)
						break
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := objOf(p.Info, id).(*types.Builtin); isBuiltin && len(x.Args) > 0 && declaredOutside(x.Args[0]) {
					target := rootIdent(x.Args[0])
					if target == nil || !sortedLater(p, file, rs, objOf(p.Info, target)) {
						effect = "append to " + types.ExprString(x.Args[0])
					}
					return true
				}
			}
			if name, ok := pkgFunc(p.Info, x, "fmt"); ok {
				switch name {
				case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
					effect = "write to ordered output via fmt." + name
					return true
				}
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if recv := namedRecv(p.Info, sel.X); recv != nil && recv.Obj().Pkg() != nil {
					pkgPath := recv.Obj().Pkg().Path()
					name := sel.Sel.Name
					switch {
					case pkgPath == p.ModulePath+"/internal/rng":
						effect = "rng draw (" + recv.Obj().Name() + "." + name + ")"
					case pkgPath == "testing" && (name == "Error" || name == "Errorf" || name == "Log" || name == "Logf"):
						effect = "write to test log via t." + name
					case orderedWriterPkgs[pkgPath] && (name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune"):
						effect = "write to ordered output via " + recv.Obj().Name() + "." + name
					}
				}
			}
		}
		return effect == ""
	})
	return effect
}
