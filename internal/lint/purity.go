package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// AnalyzerPurity forbids ambient nondeterminism in internal packages:
// math/rand imports (randomness must flow through internal/rng),
// wall-clock reads, environment reads, and mutable package-level state.
var AnalyzerPurity = &Analyzer{
	Name: "purity",
	Doc:  "forbid math/rand, wall clocks, env reads, and mutable globals in internal packages",
	Run:  runPurity,
}

// forbiddenCalls maps package path -> selector names -> why.
var forbiddenCalls = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock time is not reproducible; thread timing through explicitly",
		"Since": "wall-clock time is not reproducible; thread timing through explicitly",
	},
	"os": {
		"Getenv":    "ambient environment reads make runs machine-dependent; pass configuration explicitly",
		"LookupEnv": "ambient environment reads make runs machine-dependent; pass configuration explicitly",
		"Environ":   "ambient environment reads make runs machine-dependent; pass configuration explicitly",
	},
}

func runPurity(p *Pass) {
	if p.RelDir != "internal" && !strings.HasPrefix(p.RelDir, "internal/") {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s is forbidden in internal packages; all randomness must flow through tradeoff/internal/rng", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := objOf(p.Info, id).(*types.PkgName)
			if !ok {
				return true
			}
			if why, ok := forbiddenCalls[pn.Imported().Path()][sel.Sel.Name]; ok {
				p.Reportf(sel.Pos(), "use of %s.%s in internal package: %s", pn.Imported().Name(), sel.Sel.Name, why)
			}
			return true
		})
	}
	checkGlobals(p)
}

// checkGlobals flags package-level vars that the package itself mutates
// or takes the address of. Write-once lookup tables and sentinel errors
// pass; anything reassigned, element-written, or aliased is shared
// mutable state that makes results depend on call history.
func checkGlobals(p *Pass) {
	// Collect the package-level var objects declared in the target files.
	globals := map[types.Object]*ast.Ident{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					if obj := p.Info.Defs[name]; obj != nil {
						globals[obj] = name
					}
				}
			}
		}
	}
	if len(globals) == 0 {
		return
	}
	// Find writes anywhere in the unit (including files compiled
	// alongside the targets, e.g. library files under a test unit).
	written := map[types.Object]token.Pos{}
	mark := func(e ast.Expr, pos token.Pos) {
		id := rootIdent(e)
		if id == nil {
			return
		}
		obj := objOf(p.Info, id)
		if _, ok := globals[obj]; ok {
			if _, seen := written[obj]; !seen {
				written[obj] = pos
			}
		}
	}
	for _, f := range p.AllFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					mark(lhs, x.Pos())
				}
			case *ast.IncDecStmt:
				mark(x.X, x.Pos())
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					mark(x.X, x.Pos())
				}
			}
			return true
		})
	}
	for obj, name := range globals {
		if pos, ok := written[obj]; ok {
			where := p.Fset.Position(pos)
			p.Reportf(name.Pos(), "package-level var %s is mutated (e.g. line %d); global mutable state is forbidden in internal packages", name.Name, where.Line)
		}
	}
}
