package lint

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyModuleTree clones the real module's go.mod and .go sources into a
// temp dir so mutation tests can break invariants without touching the
// working tree. Directories the loader skips (testdata, vendor, hidden)
// are not copied.
func copyModuleTree(t *testing.T) string {
	t.Helper()
	src, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	err = filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != src && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") && d.Name() != "go.mod" {
			return nil
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy module: %v", err)
	}
	return dst
}

// mutate applies exactly one textual replacement to rel inside root,
// failing if the anchor is missing or ambiguous so silent drift in the
// mutated file cannot turn the test into a no-op.
func mutate(t *testing.T, root, rel, old, new string) {
	t.Helper()
	path := filepath.Join(root, filepath.FromSlash(rel))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", rel, err)
	}
	if n := strings.Count(string(data), old); n != 1 {
		t.Fatalf("mutation anchor %q occurs %d times in %s, want exactly 1", old, n, rel)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(data), old, new, 1)), 0o644); err != nil {
		t.Fatalf("write %s: %v", rel, err)
	}
}

// runMutated lints the mutated tree with one analyzer and returns the
// rendered findings.
func runMutated(t *testing.T, root, analyzer string) []string {
	t.Helper()
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule on mutated tree: %v", err)
	}
	var lines []string
	for _, d := range Run(mod, []*Analyzer{analyzerByName(t, analyzer)}) {
		lines = append(lines, d.String())
	}
	return lines
}

// TestMutations proves each call-graph analyzer guards its invariant on
// the real module: seed one regression a future refactor could
// plausibly introduce, and require the analyzer to catch it. The
// inverse direction — the unmutated module is clean — is TestModuleClean.
func TestMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("each mutation type-checks the full module; skipped with -short")
	}
	cases := []struct {
		name     string
		analyzer string
		file     string
		old, new string
		want     string
	}{
		{
			// Drop the generation read from the islands decode path: the
			// field is still encoded, so a restored run would silently
			// restart its migration clock.
			name:     "snapshotcover_drops_decode_read",
			analyzer: "snapshotcover",
			file:     "internal/nsga2/snapshot.go",
			old:      "is.generation = s.Generation",
			new:      "is.generation = 0",
			want:     "snapshot field IslandsSnapshot.Generation is referenced on the encode side but never on the decode side",
		},
		{
			// Add an exported knob nobody consumes or wires.
			name:     "optwire_ghost_field",
			analyzer: "optwire",
			file:     "internal/core/core.go",
			old:      "type Options struct {",
			new:      "type Options struct {\n\tGhost int",
			want:     "exported option field Options.Ghost is consumed by no engine code",
		},
		{
			// Collapse the per-island, per-epoch record slot to a shared
			// constant index: every async island now races on one cell.
			name:     "sharedstate_constant_slot",
			analyzer: "sharedstate",
			file:     "internal/nsga2/shard.go",
			old:      "recs[i][t] = captureShard",
			new:      "recs[0][0] = captureShard",
			want:     "goroutine writes captured recs without per-slot confinement",
		},
		{
			// Bump a package-level counter inside the pure-marked restore
			// path.
			name:     "interpurity_global_counter",
			analyzer: "interpurity",
			file:     "internal/nsga2/snapshot.go",
			old:      "func (e *Engine) Restore(s *Snapshot) error {",
			new:      "func (e *Engine) Restore(s *Snapshot) error {\n\trestoreCount++",
			want:     "pure function Engine.Restore writes package-level var restoreCount",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			root := copyModuleTree(t)
			mutate(t, root, tc.file, tc.old, tc.new)
			if tc.name == "interpurity_global_counter" {
				mutate(t, root, tc.file, "\n// GenomeSnapshot",
					"\nvar restoreCount int\n\n// GenomeSnapshot")
			}
			lines := runMutated(t, root, tc.analyzer)
			for _, l := range lines {
				if strings.Contains(l, tc.want) {
					return
				}
			}
			t.Errorf("mutation not caught; want finding containing %q, got:\n%s",
				tc.want, strings.Join(lines, "\n"))
		})
	}
}
