package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerInterPurity propagates the purity rules across the call
// graph: a function annotated with a `//detlint:pure` doc-comment line
// must not reach — directly or through any chain of module-local
// calls — a wall-clock read (time.Now/Since), an environment read
// (os.Getenv and friends), a math/rand draw, or a write to a
// package-level variable. "Pure" here means deterministically
// replayable: mutating the receiver or parameters is fine, ambient
// inputs and global state are not.
//
// One finding is reported per marked root (the first impurity on the
// breadth-first walk), at the root's declaration, naming the call path
// that reaches the impurity. Calls the graph cannot resolve (interface
// methods, func values, external packages) are assumed pure; the
// intra-package purity analyzer keeps internal packages honest at the
// leaves.
var AnalyzerInterPurity = &Analyzer{
	Name: "interpurity",
	Doc:  "a //detlint:pure function must not transitively reach wall clocks, math/rand, env reads, or global mutation",
	Run:  runInterPurity,
}

const pureMarker = "//detlint:pure"

func runInterPurity(p *Pass) {
	if p.Index == nil {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !declMarker(fd.Doc, pureMarker) {
				continue
			}
			root := p.Index.NodeOf(p.Info.Defs[fd.Name])
			if root == nil {
				continue
			}
			checkPureRoot(p, fd, root)
		}
	}
}

func checkPureRoot(p *Pass, fd *ast.FuncDecl, root *FuncNode) {
	parent := map[*FuncNode]*FuncNode{}
	seen := map[*FuncNode]bool{root: true}
	queue := []*FuncNode{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if desc := firstImpurity(n); desc != "" {
			via := ""
			if n != root {
				var chain []string
				for m := n; m != nil; m = parent[m] {
					chain = append(chain, m.Name())
				}
				for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
					chain[i], chain[j] = chain[j], chain[i]
				}
				via = " (via " + strings.Join(chain, " → ") + ")"
			}
			p.Reportf(fd.Name.Pos(), "pure function %s %s%s; a //detlint:pure root must stay deterministically replayable on every call path", root.Name(), desc, via)
			return
		}
		for _, c := range n.Calls {
			if !seen[c.Callee] {
				seen[c.Callee] = true
				parent[c.Callee] = n
				queue = append(queue, c.Callee)
			}
		}
	}
}

// firstImpurity scans one function body for the earliest impurity and
// describes it, or returns "".
func firstImpurity(n *FuncNode) string {
	info := n.Unit.Info
	desc := ""
	pos := token.Pos(-1)
	record := func(p token.Pos, d string) {
		if pos < 0 || p < pos {
			pos, desc = p, d
		}
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.SelectorExpr:
			id, ok := x.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := objOf(info, id).(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			if _, bad := forbiddenCalls[path][x.Sel.Name]; bad {
				record(x.Pos(), "reaches "+pn.Imported().Name()+"."+x.Sel.Name)
			}
			if path == "math/rand" || path == "math/rand/v2" {
				record(x.Pos(), "draws from "+path)
			}
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range x.Lhs {
				if v := packageLevelTarget(info, lhs); v != nil {
					record(lhs.Pos(), "writes package-level var "+v.Name())
				}
			}
		case *ast.IncDecStmt:
			if v := packageLevelTarget(info, x.X); v != nil {
				record(x.Pos(), "writes package-level var "+v.Name())
			}
		}
		return true
	})
	return desc
}

// packageLevelTarget resolves an lvalue to the package-level variable
// it writes through, or nil.
func packageLevelTarget(info *types.Info, lhs ast.Expr) *types.Var {
	id := rootIdent(lhs)
	if id == nil {
		return nil
	}
	v, ok := objOf(info, id).(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	// A package-scope declaration: its scope's parent is Universe.
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return v
	}
	return nil
}
