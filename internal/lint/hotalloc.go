package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerHotAlloc enforces allocation discipline in functions annotated
// with a `//detlint:hotpath` doc-comment line (the NSGA-II step loop,
// the sched evaluation kernels, the moea.Ranker methods). Inside such a
// function three allocation sources are forbidden:
//
//   - append without a preallocated-capacity guard: the appended-to
//     expression must be reset via `x = x[:k]` or created with a 3-arg
//     make in the same function, proving capacity was established;
//   - fmt.Sprintf and friends, except as a panic argument (failure
//     paths may format; steady-state iterations may not);
//   - closures that capture variables: a capturing func literal
//     allocates its environment on every evaluation.
var AnalyzerHotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid unguarded appends, fmt.Sprintf, and capturing closures in //detlint:hotpath functions",
	Run:  runHotAlloc,
}

// hotpathMarker is the doc-comment line that opts a function in.
const hotpathMarker = "//detlint:hotpath"

func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathMarker) {
			return true
		}
	}
	return false
}

func runHotAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotFunc(p, fd)
		}
	}
}

// guardKey canonicalizes an append/reset target so index variables do
// not matter: resetting base[i] in a loop establishes capacity for every
// element slice, so an append to base[j] counts as guarded.
func guardKey(e ast.Expr) string {
	if ix, ok := ast.Unparen(e).(*ast.IndexExpr); ok {
		return types.ExprString(ix.X) + "[_]"
	}
	return types.ExprString(e)
}

// capacityGuards collects the canonical forms of expressions whose
// capacity the function establishes: targets of `x = x[...]` self
// reslices and of 3-arg makes.
func capacityGuards(body *ast.BlockStmt) map[string]bool {
	guards := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i, lhs := range a.Lhs {
			key := guardKey(lhs)
			switch rhs := a.Rhs[i].(type) {
			case *ast.SliceExpr:
				if guardKey(rhs.X) == key {
					guards[key] = true
				}
			case *ast.CallExpr:
				if id, ok := rhs.Fun.(*ast.Ident); ok && id.Name == "make" && len(rhs.Args) == 3 {
					guards[key] = true
				}
			}
		}
		return true
	})
	return guards
}

func checkHotFunc(p *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	guards := capacityGuards(fd.Body)
	var walk func(n ast.Node, inPanic bool)
	walk = func(n ast.Node, inPanic bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok {
					switch objOf(p.Info, id).(type) {
					case *types.Builtin:
						switch id.Name {
						case "append":
							if len(x.Args) > 0 && !guards[guardKey(x.Args[0])] {
								p.Reportf(x.Pos(), "append to %s without preallocated capacity in hotpath %s; reset with x = x[:0] or size with a 3-arg make", types.ExprString(x.Args[0]), name)
							}
						case "panic":
							// Formatting a panic message is fine: it runs
							// once, on the failure path.
							for _, arg := range x.Args {
								walk(arg, true)
							}
							return false
						}
					}
				}
				if fname, ok := pkgFunc(p.Info, x, "fmt"); ok && !inPanic {
					switch fname {
					case "Sprintf", "Sprint", "Sprintln", "Errorf":
						p.Reportf(x.Pos(), "fmt.%s allocates in hotpath %s (allowed only as a panic argument)", fname, name)
					}
				}
			case *ast.FuncLit:
				if capt := capturedVars(p, x); len(capt) > 0 {
					p.Reportf(x.Pos(), "closure capturing %s allocates in hotpath %s; hoist state into a reused struct (cf. crowdOrderSorter)", strings.Join(capt, ", "), name)
				}
			}
			return true
		})
	}
	walk(fd.Body, false)
}

// capturedVars returns the names of variables a func literal captures
// from an enclosing function scope, sorted by first use.
func capturedVars(p *Pass, fl *ast.FuncLit) []string {
	var names []string
	seen := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Package-level vars are not captured; neither are the literal's
		// own parameters and locals (declared within its extent).
		if v.Parent() == p.Pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		if v.Pos() >= fl.Pos() && v.Pos() <= fl.End() {
			return true
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}
