package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the module-local call graph the cross-procedural
// analyzers (snapshotcover, optwire, sharedstate, interpurity) walk. It
// is deliberately lightweight: nodes are declared functions and methods
// with bodies, edges are statically resolvable calls (plain
// identifiers, package-qualified functions, and method selectors whose
// callee go/types resolves to a concrete *types.Func). Calls through
// interface values, stored func values, and method values have no
// edges — each analyzer documents how it degrades under that
// approximation.
//
// Cross-package edges work because the loader memoizes every
// module-local library package: the *types.Func an importing unit sees
// is the identical object the defining unit registered. Test units
// re-type-check library files, so their copies of library functions
// are distinct nodes; this keeps test-only call paths from polluting
// library-side reachability.

// FuncNode is one declared function or method with its resolved
// module-local call edges, in source order.
type FuncNode struct {
	// Fn is the declared object in its unit's object world.
	Fn *types.Func
	// Decl is the syntax; Body is non-nil.
	Decl *ast.FuncDecl
	// Unit is the analysis unit the declaration was type-checked in;
	// identifier resolution inside Decl must use Unit.Info.
	Unit *Unit
	// Calls lists the statically resolved module-local callees.
	Calls []CallSite
}

// CallSite is one resolved call edge.
type CallSite struct {
	Callee *FuncNode
	Pos    token.Pos
}

// Name renders a human-readable function name, with the receiver type
// prefixed for methods ("Engine.Step").
func (n *FuncNode) Name() string {
	if n.Decl.Recv != nil && len(n.Decl.Recv.List) > 0 {
		if id := typeNameOf(n.Decl.Recv.List[0].Type); id != "" {
			return id + "." + n.Decl.Name.Name
		}
	}
	return n.Decl.Name.Name
}

// typeNameOf extracts the base type name of a receiver expression.
func typeNameOf(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr: // generic receiver
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// ModuleIndex is the module-wide call graph plus lazily computed
// receiver-mutation facts, built once per Run and shared by every pass
// through Pass.Index.
type ModuleIndex struct {
	// Units are the module's analysis units in load order.
	Units []*Unit
	nodes []*FuncNode
	byFn  map[*types.Func]*FuncNode
	// recvMut memoizes ReceiverMutator: 0 unknown, 1 visiting, 2 false,
	// 3 true.
	recvMut map[*FuncNode]int8
}

// NewModuleIndex registers every function declaration of every unit and
// resolves the call edges between them.
func NewModuleIndex(mod *Module) *ModuleIndex {
	ix := &ModuleIndex{
		Units:   mod.Units,
		byFn:    map[*types.Func]*FuncNode{},
		recvMut: map[*FuncNode]int8{},
	}
	for _, u := range mod.Units {
		for _, f := range u.AllFiles {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{Fn: fn, Decl: fd, Unit: u}
				ix.byFn[fn] = n
				ix.nodes = append(ix.nodes, n)
			}
		}
	}
	for _, n := range ix.nodes {
		info := n.Unit.Info
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeFunc(info, call); callee != nil {
				if cn := ix.byFn[callee]; cn != nil {
					n.Calls = append(n.Calls, CallSite{Callee: cn, Pos: call.Pos()})
				}
			}
			return true
		})
	}
	return ix
}

// calleeFunc resolves a call expression to its statically known callee,
// unwrapping generic instantiation syntax. Calls through stored func
// values and interface methods resolve to nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(x.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(x.X)
	}
	switch x := fun.(type) {
	case *ast.Ident:
		if fn, ok := objOf(info, x).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// NodeOf returns the node registered for a function object, or nil for
// module-external and unresolved callees.
func (ix *ModuleIndex) NodeOf(obj types.Object) *FuncNode {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return ix.byFn[fn]
}

// Reachable returns the call-graph closure of roots (roots included),
// in deterministic breadth-first order.
func (ix *ModuleIndex) Reachable(roots []*FuncNode) []*FuncNode {
	seen := map[*FuncNode]bool{}
	var order []*FuncNode
	queue := append([]*FuncNode(nil), roots...)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == nil || seen[n] {
			continue
		}
		seen[n] = true
		order = append(order, n)
		for _, c := range n.Calls {
			if !seen[c.Callee] {
				queue = append(queue, c.Callee)
			}
		}
	}
	return order
}

// ReceiverMutator reports whether calling n can mutate state reachable
// from its receiver: a direct write through the receiver (field
// assignment, element write, IncDec, or *r = v) or a call to another
// module-local method on the receiver that itself mutates. Recursion
// cycles resolve to false provisionally, which under-approximates
// pathological mutual recursion; callees the graph cannot resolve
// (interface methods, external packages) are treated as non-mutating.
func (ix *ModuleIndex) ReceiverMutator(n *FuncNode) bool {
	switch ix.recvMut[n] {
	case 1, 2:
		return false
	case 3:
		return true
	}
	ix.recvMut[n] = 1
	res := ix.receiverMutates(n)
	if res {
		ix.recvMut[n] = 3
	} else {
		ix.recvMut[n] = 2
	}
	return res
}

func (ix *ModuleIndex) receiverMutates(n *FuncNode) bool {
	recv := receiverVar(n)
	if recv == nil {
		return false
	}
	info := n.Unit.Info
	mutated := false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if mutated {
			return false
		}
		switch st := node.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				if isRecvWrite(info, lhs, recv) {
					mutated = true
				}
			}
		case *ast.IncDecStmt:
			if isRecvWrite(info, st.X, recv) {
				mutated = true
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id := rootIdent(sel.X); id == nil || objOf(info, id) != recv {
				return true
			}
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
				if cn := ix.byFn[fn]; cn != nil && ix.ReceiverMutator(cn) {
					mutated = true
				}
			}
		}
		return true
	})
	return mutated
}

// receiverVar returns the declared receiver variable of a method node,
// or nil for plain functions and anonymous receivers.
func receiverVar(n *FuncNode) *types.Var {
	if n.Decl.Recv == nil || len(n.Decl.Recv.List) == 0 {
		return nil
	}
	names := n.Decl.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	v, _ := n.Unit.Info.Defs[names[0]].(*types.Var)
	return v
}

// isRecvWrite reports whether lhs writes through the receiver variable:
// the lvalue's root identifier is recv and the lvalue is not the bare
// identifier itself (rebinding a value-receiver copy stays local).
func isRecvWrite(info *types.Info, lhs ast.Expr, recv *types.Var) bool {
	lhs = ast.Unparen(lhs)
	if _, ok := lhs.(*ast.Ident); ok {
		return false
	}
	id := rootIdent(lhs)
	return id != nil && objOf(info, id) == recv
}

// declMarker reports whether a declaration's doc comment contains the
// given //detlint:<name> marker line.
func declMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == marker || len(c.Text) > len(marker) && c.Text[:len(marker)] == marker && c.Text[len(marker)] == ' ' {
			return true
		}
	}
	return false
}
