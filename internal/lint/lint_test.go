package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden.txt files under testdata")

// analyzerByName resolves one analyzer from the suite.
func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// runFixture loads one testdata directory and renders the diagnostics of
// the given analyzers with basename-only file paths, one per line.
func runFixture(t *testing.T, dir string, analyzers []*Analyzer) []string {
	t.Helper()
	mod, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	var lines []string
	for _, d := range Run(mod, analyzers) {
		lines = append(lines, fmt.Sprintf("%s:%d: %s: %s",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message))
	}
	return lines
}

// checkGolden compares lines against dir/golden.txt, rewriting it under
// -update.
func checkGolden(t *testing.T, dir string, lines []string) {
	t.Helper()
	golden := filepath.Join(dir, "golden.txt")
	got := ""
	if len(lines) > 0 {
		got = strings.Join(lines, "\n") + "\n"
	}
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("write %s: %v", golden, err)
		}
		return
	}
	raw, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read %s (run `go test ./internal/lint -update` to create): %v", golden, err)
	}
	if want := string(raw); got != want {
		t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", dir, got, want)
	}
}

// TestFixtures golden-checks every analyzer against its positive fixture
// (must fire) and negative fixture (must stay silent).
func TestFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			posDir := filepath.Join("testdata", a.Name, "pos")
			negDir := filepath.Join("testdata", a.Name, "neg")
			posLines := runFixture(t, posDir, []*Analyzer{a})
			if len(posLines) == 0 {
				t.Errorf("%s: positive fixture produced no diagnostics", a.Name)
			}
			checkGolden(t, posDir, posLines)
			negLines := runFixture(t, negDir, []*Analyzer{a})
			if len(negLines) != 0 {
				t.Errorf("%s: negative fixture produced diagnostics:\n%s",
					a.Name, strings.Join(negLines, "\n"))
			}
			checkGolden(t, negDir, negLines)
		})
	}
}

// TestSeededDiagnosticExact pins the full diagnostic strings for seeded
// violations, one per analyzer, so message wording stays stable.
func TestSeededDiagnosticExact(t *testing.T) {
	cases := []struct {
		analyzer string
		want     string
	}{
		{"purity", `pos.go:6: purity: import of math/rand is forbidden in internal packages; all randomness must flow through tradeoff/internal/rng`},
		{"maprange", `pos.go:16: maprange: map iteration with order-sensitive effect (append to keys); iterate sorted keys instead`},
		{"floatorder", `pos.go:20: floatorder: goroutine accumulates into captured float sum; the sum depends on scheduling order — write per-worker slots and reduce in fixed order`},
		{"hotalloc", `pos.go:28: hotalloc: fmt.Sprintf allocates in hotpath Step (allowed only as a panic argument)`},
		{"exhaustive", `pos.go:18: exhaustive: switch over pos.Phase is not exhaustive: missing Drain, Shutdown`},
		{"snapshotcover", `pos.go:13: snapshotcover: snapshot field EngineSnapshot.Seed is referenced on the encode side but never on the decode side; a restored run silently drops it`},
		{"optwire", `conf.go:11: optwire: exported option field Config.Beta is unreachable from any cmd/ CLI write; plumb a flag through (or allow-list a code-level extension point)`},
		{"sharedstate", `pos.go:24: sharedstate: goroutine writes captured total without per-slot confinement; index it by a goroutine-local variable, send it over a channel, or keep it goroutine-local`},
		{"interpurity", `pos.go:12: interpurity: pure function step writes package-level var ticks (via step → advance → record); a //detlint:pure root must stay deterministically replayable on every call path`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.analyzer, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.analyzer, "pos")
			lines := runFixture(t, dir, []*Analyzer{analyzerByName(t, tc.analyzer)})
			for _, l := range lines {
				if l == tc.want {
					return
				}
			}
			t.Errorf("diagnostic %q not found; got:\n%s", tc.want, strings.Join(lines, "\n"))
		})
	}
}

// TestFitcacheFixture golden-checks the whole analyzer suite against
// the fingerprint/fitness-cache fixture: the positive half seeds the
// violations a naive memoization layer invites (process-seeded hash
// state, map-iteration eviction, allocating hot paths) and must fire
// purity, maprange, and hotalloc; the negative half is the
// constant-seeded, open-addressing, generation-stamped shape the real
// internal/nsga2 cache uses and must stay silent.
func TestFitcacheFixture(t *testing.T) {
	posDir := filepath.Join("testdata", "fitcache", "pos")
	posLines := runFixture(t, posDir, Analyzers())
	for _, want := range []string{"purity", "maprange", "hotalloc"} {
		found := false
		for _, l := range posLines {
			if strings.Contains(l, ": "+want+": ") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("positive fitcache fixture did not trigger %s:\n%s",
				want, strings.Join(posLines, "\n"))
		}
	}
	checkGolden(t, posDir, posLines)
	negDir := filepath.Join("testdata", "fitcache", "neg")
	negLines := runFixture(t, negDir, Analyzers())
	if len(negLines) != 0 {
		t.Errorf("negative fitcache fixture produced diagnostics:\n%s",
			strings.Join(negLines, "\n"))
	}
	checkGolden(t, negDir, negLines)
}

// TestMachineFingerprintFixture golden-checks the machine-bucket
// memoization shape (DESIGN.md §12): the positive fixture seeds the
// three violations a naive bucket cache invites — process-seeded
// fingerprints, map-ordered eviction, hot-path allocation — and each
// must fire; the negative fixture is the engine's real shape (fixed
// mixing constants, index-ordered slot probing, rows by value) and
// must stay silent.
func TestMachineFingerprintFixture(t *testing.T) {
	posDir := filepath.Join("testdata", "mfingerprint", "pos")
	posLines := runFixture(t, posDir, Analyzers())
	for _, want := range []string{"purity", "maprange", "hotalloc"} {
		found := false
		for _, l := range posLines {
			if strings.Contains(l, ": "+want+": ") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("positive mfingerprint fixture did not trigger %s:\n%s",
				want, strings.Join(posLines, "\n"))
		}
	}
	checkGolden(t, posDir, posLines)
	negDir := filepath.Join("testdata", "mfingerprint", "neg")
	negLines := runFixture(t, negDir, Analyzers())
	if len(negLines) != 0 {
		t.Errorf("negative mfingerprint fixture produced diagnostics:\n%s",
			strings.Join(negLines, "\n"))
	}
	checkGolden(t, negDir, negLines)
}

// TestEpsArchiveFixture golden-checks the bounded ε-dominance archive
// shape (DESIGN.md §13): the positive fixture seeds the violations a
// naive grid archive invites — process-seeded box hashing, map-ordered
// pruning, allocating hot-path inserts — and each must fire; the
// negative fixture is internal/moea's real shape (fixed hash constants,
// direct-mapped verified hints, manual binary search, reslice-and-copy
// splices) and must stay silent.
func TestEpsArchiveFixture(t *testing.T) {
	posDir := filepath.Join("testdata", "epsarchive", "pos")
	posLines := runFixture(t, posDir, Analyzers())
	for _, want := range []string{"purity", "maprange", "hotalloc"} {
		found := false
		for _, l := range posLines {
			if strings.Contains(l, ": "+want+": ") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("positive epsarchive fixture did not trigger %s:\n%s",
				want, strings.Join(posLines, "\n"))
		}
	}
	checkGolden(t, posDir, posLines)
	negDir := filepath.Join("testdata", "epsarchive", "neg")
	negLines := runFixture(t, negDir, Analyzers())
	if len(negLines) != 0 {
		t.Errorf("negative epsarchive fixture produced diagnostics:\n%s",
			strings.Join(negLines, "\n"))
	}
	checkGolden(t, negDir, negLines)
}

// TestPhaseTimerFixture golden-checks the phase-profiler shape
// (DESIGN.md §14): the positive fixture seeds the violations a naive
// profiler invites — ambient wall-clock brackets, a mutable global
// accumulator map, map-ordered summaries, allocating hot paths — and
// each must fire; the negative fixture is internal/obs's real shape
// (injected clock, fixed-slot atomic adds indexed by a compile-time
// enum, nil-safe brackets) and must stay silent.
func TestPhaseTimerFixture(t *testing.T) {
	posDir := filepath.Join("testdata", "phasetimer", "pos")
	posLines := runFixture(t, posDir, Analyzers())
	for _, want := range []string{"purity", "maprange", "hotalloc"} {
		found := false
		for _, l := range posLines {
			if strings.Contains(l, ": "+want+": ") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("positive phasetimer fixture did not trigger %s:\n%s",
				want, strings.Join(posLines, "\n"))
		}
	}
	checkGolden(t, posDir, posLines)
	negDir := filepath.Join("testdata", "phasetimer", "neg")
	negLines := runFixture(t, negDir, Analyzers())
	if len(negLines) != 0 {
		t.Errorf("negative phasetimer fixture produced diagnostics:\n%s",
			strings.Join(negLines, "\n"))
	}
	checkGolden(t, negDir, negLines)
}

// TestDistWireFixture golden-checks the distributed wire codec shape
// (DESIGN.md §15): the positive fixture seeds the violations a naive
// migration codec invites — an encode/decode pair that silently drops a
// payload field, map-ordered mailbox flushing, and hot-path
// send/receive with unguarded appends and per-frame formatting — and
// each must fire; the negative fixture is internal/dist's real shape
// (symmetric field coverage, ring-ordered flushing, reset-guarded frame
// buffers, cold-path error construction) and must stay silent.
func TestDistWireFixture(t *testing.T) {
	posDir := filepath.Join("testdata", "distwire", "pos")
	posLines := runFixture(t, posDir, Analyzers())
	for _, want := range []string{"snapshotcover", "maprange", "hotalloc"} {
		found := false
		for _, l := range posLines {
			if strings.Contains(l, ": "+want+": ") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("positive distwire fixture did not trigger %s:\n%s",
				want, strings.Join(posLines, "\n"))
		}
	}
	checkGolden(t, posDir, posLines)
	negDir := filepath.Join("testdata", "distwire", "neg")
	negLines := runFixture(t, negDir, Analyzers())
	if len(negLines) != 0 {
		t.Errorf("negative distwire fixture produced diagnostics:\n%s",
			strings.Join(negLines, "\n"))
	}
	checkGolden(t, negDir, negLines)
}

// TestSuppress checks //detlint:allow: two excused wall-clock reads stay
// silent, the third is reported.
func TestSuppress(t *testing.T) {
	dir := filepath.Join("testdata", "suppress")
	lines := runFixture(t, dir, Analyzers())
	checkGolden(t, dir, lines)
	if len(lines) != 1 {
		t.Fatalf("want exactly 1 unsuppressed finding, got %d:\n%s",
			len(lines), strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[0], "suppress.go:14:") || !strings.Contains(lines[0], "time.Now") {
		t.Errorf("unexpected surviving finding: %s", lines[0])
	}
}

// TestModuleClean runs the whole suite over the real tree: the module
// must lint clean so `make lint` stays a zero-findings gate.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; skipped with -short")
	}
	mod, err := LoadModule("../..")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	diags := Run(mod, Analyzers())
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}
