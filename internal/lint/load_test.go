package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under t.TempDir: keys are
// slash-separated paths relative to the module root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir for %s: %v", rel, err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatalf("write %s: %v", rel, err)
		}
	}
	return root
}

// pkgPaths summarizes a module's units for order-sensitive assertions.
func pkgPaths(mod *Module) []string {
	var paths []string
	for _, u := range mod.Units {
		paths = append(paths, u.PkgPath)
	}
	return paths
}

// TestLoadModuleMissingLocalImport: an import of a module-local path
// with no directory behind it must surface as a load error, not a
// panic or a silently empty unit.
func TestLoadModuleMissingLocalImport(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module brokenmod\n",
		"a/a.go": "package a\n\nimport \"brokenmod/missing\"\n\nvar _ = missing.X\n",
	})
	_, err := LoadModule(root)
	if err == nil {
		t.Fatal("LoadModule succeeded despite missing module-local import")
	}
	if !strings.Contains(err.Error(), "missing") {
		t.Errorf("error does not name the missing package: %v", err)
	}
}

// TestLoadModuleImportCycle: module-local import cycles are reported,
// not looped on.
func TestLoadModuleImportCycle(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module cyclemod\n",
		"a/a.go": "package a\n\nimport \"cyclemod/b\"\n\nvar X = b.Y\n",
		"b/b.go": "package b\n\nimport \"cyclemod/a\"\n\nvar Y = a.X\n",
	})
	_, err := LoadModule(root)
	if err == nil {
		t.Fatal("LoadModule succeeded despite an import cycle")
	}
	if !strings.Contains(err.Error(), "import cycle") {
		t.Errorf("error does not report the cycle: %v", err)
	}
}

// TestLoadModuleHonorsBuildTags: platform-split file pairs (a
// //go:build unix file plus its !unix stub, both declaring the same
// function) must type-check as one coherent package under the
// loader's fixed linux/amd64 view, not redeclare each other.
func TestLoadModuleHonorsBuildTags(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module tagmod\n",
		"a/a.go": "package a\n\nvar X = watch()\n",
		"a/a_unix.go": "//go:build unix\n\npackage a\n\n" +
			"func watch() int { return 1 }\n",
		"a/a_other.go": "//go:build !unix\n\npackage a\n\n" +
			"func watch() int { return 0 }\n",
	})
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	unit := mod.Units[0]
	if len(unit.Files) != 2 {
		t.Fatalf("unit has %d files, want a.go + the unix half", len(unit.Files))
	}
	for _, f := range unit.Files {
		name := mod.Fset.File(f.Pos()).Name()
		if strings.HasSuffix(name, "a_other.go") {
			t.Fatal("!unix file loaded on the linux view")
		}
	}
}

// TestLoadDirOnlyExternalTests: a directory holding nothing but an
// external _test package still yields exactly one unit, and no phantom
// library unit.
func TestLoadDirOnlyExternalTests(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":            "module extonly\n",
		"spec/spec_test.go": "package spec_test\n\nfunc Double(n int) int { return 2 * n }\n",
	})
	mod, err := LoadDir(filepath.Join(root, "spec"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if got, want := pkgPaths(mod), []string{"extonly/spec_test"}; !equalStrings(got, want) {
		t.Fatalf("units = %v, want %v", got, want)
	}
	u := mod.Units[0]
	if len(u.Files) != 1 || len(u.AllFiles) != 1 {
		t.Errorf("external test unit has %d files / %d all-files, want 1/1",
			len(u.Files), len(u.AllFiles))
	}
}

// TestLoadDirThreeUnits: a directory with library files, an in-package
// test, and an external test splits into three units with the expected
// file groupings — and the in-package unit compiles against the library
// files (AllFiles) while analyzing only the test files (Files).
func TestLoadDirThreeUnits(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                 "module threemod\n",
		"th/th.go":               "package th\n\n// Triple is the library side.\nfunc Triple(n int) int { return 3 * n }\n",
		"th/th_internal_test.go": "package th\n\nvar _ = Triple\n",
		"th/th_external_test.go": "package th_test\n\nfunc Indirect(n int) int { return n }\n",
	})
	mod, err := LoadDir(filepath.Join(root, "th"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	want := []string{"threemod/th", "threemod/th [tests]", "threemod/th_test"}
	if got := pkgPaths(mod); !equalStrings(got, want) {
		t.Fatalf("units = %v, want %v", got, want)
	}
	lib, inPkg, ext := mod.Units[0], mod.Units[1], mod.Units[2]
	if len(lib.Files) != 1 || len(lib.AllFiles) != 1 {
		t.Errorf("lib unit files = %d/%d, want 1/1", len(lib.Files), len(lib.AllFiles))
	}
	if len(inPkg.Files) != 1 || len(inPkg.AllFiles) != 2 {
		t.Errorf("in-package test unit files = %d/%d, want 1/2",
			len(inPkg.Files), len(inPkg.AllFiles))
	}
	if len(ext.Files) != 1 || len(ext.AllFiles) != 1 {
		t.Errorf("external test unit files = %d/%d, want 1/1",
			len(ext.Files), len(ext.AllFiles))
	}
	if inPkg.Pkg == lib.Pkg {
		t.Error("in-package test unit shares the library's types.Package; test units must re-typecheck into their own object world")
	}
}

// TestLoadDirRecursive: LoadDir loads the whole subtree, so
// multi-package fixture trees (a conf package plus a cmd/ main) land in
// one Module with cross-package imports resolved to shared objects.
func TestLoadDirRecursive(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":            "module treemod\n",
		"tree/conf/c.go":    "package conf\n\n// Knobs is shared state.\ntype Knobs struct{ N int }\n",
		"tree/cmd/app/m.go": "package main\n\nimport \"treemod/tree/conf\"\n\nfunc main() { _ = conf.Knobs{N: 1} }\n",
	})
	mod, err := LoadDir(filepath.Join(root, "tree"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	want := []string{"treemod/tree/cmd/app", "treemod/tree/conf"}
	if got := pkgPaths(mod); !equalStrings(got, want) {
		t.Fatalf("units = %v, want %v", got, want)
	}
	if mod.Units[0].RelDir != "tree/cmd/app" || mod.Units[1].RelDir != "tree/conf" {
		t.Errorf("RelDirs = %q, %q; want module-root-relative paths",
			mod.Units[0].RelDir, mod.Units[1].RelDir)
	}
	// The importing unit and the conf unit must see one conf package, or
	// cross-package analyzers (optwire) would chase mismatched objects.
	confPkg := mod.Units[1].Pkg
	imported := mod.Units[0].Pkg.Imports()
	found := false
	for _, p := range imported {
		if p == confPkg {
			found = true
		}
	}
	if !found {
		t.Error("cmd/app does not import the memoized conf package instance")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
