package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerSnapshotCover enforces encode/decode symmetry for snapshot
// structs: every field of a struct whose name contains "Snapshot" must
// be referenced both somewhere in the call-graph closure of the unit's
// encode-side roots (functions named Snapshot or prefixed
// Encode/Marshal) and in the closure of its decode-side roots (Restore,
// Decode*, Unmarshal*). A field written by Snapshot but never read by
// Restore means a resumed run silently diverges from the uninterrupted
// one; the reverse means Restore consumes state no snapshot carries.
// Units that declare snapshot structs but lack either side's roots are
// skipped (the pairing lives elsewhere).
var AnalyzerSnapshotCover = &Analyzer{
	Name: "snapshotcover",
	Doc:  "snapshot struct fields must be referenced on both the encode and the decode side",
	Run:  runSnapshotCover,
}

func runSnapshotCover(p *Pass) {
	if p.Index == nil {
		return
	}
	type fieldDecl struct {
		owner, name string
		pos         token.Pos
	}
	var fields []fieldDecl
	fieldIdx := map[types.Object]int{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || !strings.Contains(ts.Name.Name, "Snapshot") && !strings.Contains(ts.Name.Name, "snapshot") {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, nm := range fld.Names {
					obj := p.Info.Defs[nm]
					if obj == nil {
						continue
					}
					fieldIdx[obj] = len(fields)
					fields = append(fields, fieldDecl{owner: ts.Name.Name, name: nm.Name, pos: nm.Pos()})
				}
			}
			return true
		})
	}
	if len(fields) == 0 {
		return
	}

	var enc, dec []*FuncNode
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			node := p.Index.NodeOf(p.Info.Defs[fd.Name])
			if node == nil {
				continue
			}
			name := fd.Name.Name
			switch {
			case name == "Snapshot" || strings.HasPrefix(name, "Encode") || strings.HasPrefix(name, "Marshal"):
				enc = append(enc, node)
			case name == "Restore" || strings.HasPrefix(name, "Decode") || strings.HasPrefix(name, "Unmarshal"):
				dec = append(dec, node)
			}
		}
	}
	if len(enc) == 0 || len(dec) == 0 {
		return
	}
	encSeen := fieldRefs(p.Index, enc, fieldIdx)
	decSeen := fieldRefs(p.Index, dec, fieldIdx)
	for i, fd := range fields {
		switch {
		case encSeen[i] && decSeen[i]:
		case encSeen[i]:
			p.Reportf(fd.pos, "snapshot field %s.%s is referenced on the encode side but never on the decode side; a restored run silently drops it", fd.owner, fd.name)
		case decSeen[i]:
			p.Reportf(fd.pos, "snapshot field %s.%s is referenced on the decode side but never on the encode side; restore reads state no snapshot writes", fd.owner, fd.name)
		default:
			p.Reportf(fd.pos, "snapshot field %s.%s is referenced on neither the encode nor the decode side; dead snapshot state breaks resume the day it matters", fd.owner, fd.name)
		}
	}
}

// fieldRefs marks which of the indexed field objects are referenced
// anywhere in the call-graph closure of roots. Composite-literal keys
// count: go/types records them in Uses.
func fieldRefs(ix *ModuleIndex, roots []*FuncNode, fieldIdx map[types.Object]int) []bool {
	seen := make([]bool, len(fieldIdx))
	for _, n := range ix.Reachable(roots) {
		info := n.Unit.Info
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			id, ok := node.(*ast.Ident)
			if !ok {
				return true
			}
			if i, ok := fieldIdx[objOf(info, id)]; ok {
				seen[i] = true
			}
			return true
		})
	}
	return seen
}
