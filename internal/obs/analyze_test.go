package obs

import (
	"errors"
	"strings"
	"testing"
)

// analysisGeneration builds a minimal valid GenerationStats for trace
// analytics: label, generation, hypervolume, cache hit rate (hits out of
// 10 lookups), and a uniform per-phase time.
func analysisGeneration(label string, gen int, hv float64, hits int, phaseNS int64) GenerationStats {
	g := GenerationStats{
		Label: label, Generation: gen, Population: 4,
		Front:     [][]float64{{10, 2}},
		CacheHits: hits, CacheMisses: 10 - hits,
		DirtyCounts: []int{1}, NumMachines: 4,
		Indicators: Indicators{Hypervolume: hv, FrontSize: 1},
	}
	for p := range g.PhaseNanos {
		g.PhaseNanos[p] = phaseNS
	}
	return g
}

func TestAnalyzeTracePhaseRollup(t *testing.T) {
	var sb strings.Builder
	tw := NewTraceWriter(&sb, nil)
	tw.ObserveGeneration(analysisGeneration("a", 1, 1, 5, 100))
	tw.ObserveGeneration(analysisGeneration("a", 2, 2, 5, 300))
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	an, err := AnalyzeTrace(strings.NewReader(sb.String()), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if an.ProfiledGenerations != 2 {
		t.Fatalf("ProfiledGenerations = %d, want 2", an.ProfiledGenerations)
	}
	if len(an.Phases) != NumPhases {
		t.Fatalf("got %d phase stats, want %d", len(an.Phases), NumPhases)
	}
	for p, st := range an.Phases {
		if st.Phase != Phase(p).String() {
			t.Errorf("phase %d named %q, want %q", p, st.Phase, Phase(p))
		}
		if st.TotalNanos != 400 {
			t.Errorf("phase %s total %d, want 400", st.Phase, st.TotalNanos)
		}
		if want := 1.0 / float64(NumPhases); absf(st.Share-want) > 1e-12 {
			t.Errorf("phase %s share %g, want %g", st.Phase, st.Share, want)
		}
	}
}

func TestAnalyzeTraceUnprofiledHasNoPhases(t *testing.T) {
	var sb strings.Builder
	tw := NewTraceWriter(&sb, nil)
	tw.ObserveGeneration(analysisGeneration("a", 1, 1, 5, 0))
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	an, err := AnalyzeTrace(strings.NewReader(sb.String()), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if an.ProfiledGenerations != 0 || an.Phases != nil {
		t.Fatalf("all-zero phase_ns must not count as profiled: %d profiled, phases %v",
			an.ProfiledGenerations, an.Phases)
	}
}

func TestAnalyzeTraceStallDetection(t *testing.T) {
	var sb strings.Builder
	tw := NewTraceWriter(&sb, nil)
	// "grows" improves every record; "flat" improves once, then holds
	// for 6 records and briefly recovers below tolerance.
	for g := 1; g <= 8; g++ {
		tw.ObserveGeneration(analysisGeneration("grows", g, float64(g), 5, 0))
	}
	for g := 1; g <= 8; g++ {
		hv := 5.0
		if g == 8 {
			hv = 5.0001 // within StallTol of best: still no improvement
		}
		tw.ObserveGeneration(analysisGeneration("flat", g, hv, 5, 0))
	}
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	an, err := AnalyzeTrace(strings.NewReader(sb.String()), AnalyzeOptions{StallWindow: 5, StallTol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Labels) != 2 {
		t.Fatalf("got %d labels, want 2", len(an.Labels))
	}
	grows, flat := an.Labels[0], an.Labels[1]
	if grows.Label != "grows" || flat.Label != "flat" {
		t.Fatalf("label order %q, %q (want first-seen order)", grows.Label, flat.Label)
	}
	if grows.Stalled || grows.MaxPlateau != 0 || grows.BestGen != 8 || grows.HVBest != 8 {
		t.Fatalf("grows analysis %+v", grows)
	}
	if !flat.Stalled || flat.MaxPlateau != 7 || flat.EndPlateau != 7 || flat.BestGen != 1 {
		t.Fatalf("flat analysis %+v", flat)
	}
	if !an.Stalled {
		t.Fatal("analysis must flag the stalled label")
	}
	// A wider window clears the flag.
	an, err = AnalyzeTrace(strings.NewReader(sb.String()), AnalyzeOptions{StallWindow: 50})
	if err != nil {
		t.Fatal(err)
	}
	if an.Stalled {
		t.Fatal("window 50 must not flag a 7-generation plateau")
	}
}

func TestAnalyzeTraceCacheHitTrend(t *testing.T) {
	var sb strings.Builder
	tw := NewTraceWriter(&sb, nil)
	// 8 records: hit rates 0.1, 0.2, ..., 0.8 → quartile = 2 records.
	for g := 1; g <= 8; g++ {
		tw.ObserveGeneration(analysisGeneration("a", g, float64(g), g, 0))
	}
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	an, err := AnalyzeTrace(strings.NewReader(sb.String()), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l := an.Labels[0]
	if absf(l.CacheHitEarly-0.15) > 1e-12 || absf(l.CacheHitLate-0.75) > 1e-12 {
		t.Fatalf("hit trend %g -> %g, want 0.15 -> 0.75", l.CacheHitEarly, l.CacheHitLate)
	}
}

func TestAnalyzeTraceLegacyTraceHasNoCacheTrend(t *testing.T) {
	// v1 records carry no cache telemetry: the trend degrades to -1.
	v1 := `{"type":"generation","ts":1,"label":"a","gen":1,"pop":4,"full_evals":4,"delta_evals":0,"machines_simulated":8,"machines_inherited":0,"dirty_mean":1,"dirty_max":2,"machines":2,"front_size":1,"hv":3.5,"eps":0,"spread":0,"front":[[10,2]]}` + "\n"
	an, err := AnalyzeTrace(strings.NewReader(v1), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l := an.Labels[0]
	if l.CacheHitEarly != -1 || l.CacheHitLate != -1 {
		t.Fatalf("v1 hit trend %g -> %g, want -1 -> -1", l.CacheHitEarly, l.CacheHitLate)
	}
	if an.ProfiledGenerations != 0 {
		t.Fatalf("v1 trace profiled %d generations, want 0", an.ProfiledGenerations)
	}
}

func TestAnalyzeTraceIslands(t *testing.T) {
	var sb strings.Builder
	tw := NewTraceWriter(&sb, nil)
	tw.ObserveGeneration(analysisGeneration("islands", 5, 1, 5, 0))
	tw.ObserveMigration(MigrationEvent{Generation: 5, From: 0, To: 1, Count: 2})
	tw.ObserveMigration(MigrationEvent{Generation: 5, From: 1, To: 2, Count: 2})
	tw.ObserveMigration(MigrationEvent{Generation: 5, From: 2, To: 0, Count: 2})
	tw.ObserveMigration(MigrationEvent{Generation: 10, From: 0, To: 1, Count: 3})
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	an, err := AnalyzeTrace(strings.NewReader(sb.String()), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	is := an.Islands
	if is == nil {
		t.Fatal("no island summary")
	}
	if is.Islands != 3 || is.Ticks != 2 || is.Migrants != 9 {
		t.Fatalf("island summary %+v", is)
	}
	if is.TickSkew != 5 {
		t.Fatalf("tick skew %d, want 5 (island 0 at 10, islands 1-2 at 5)", is.TickSkew)
	}
	if len(is.PerIsland) != 3 {
		t.Fatalf("per-island stats %+v", is.PerIsland)
	}
	if st := is.PerIsland[0]; st.Island != 0 || st.Migrants != 5 || st.LastGen != 10 {
		t.Fatalf("island 0 stats %+v", st)
	}
	if st := is.PerIsland[1]; st.Migrants != 2 || st.LastGen != 5 {
		t.Fatalf("island 1 stats %+v", st)
	}
}

func TestAnalyzeTraceRejectsInvalid(t *testing.T) {
	_, err := AnalyzeTrace(strings.NewReader("garbage\n"), AnalyzeOptions{})
	var te *TraceError
	if !errors.As(err, &te) || te.Line != 1 {
		t.Fatalf("err %v, want *TraceError at line 1", err)
	}
}
