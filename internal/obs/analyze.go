package obs

import (
	"fmt"
	"io"
	"sort"
)

// AnalyzeOptions tunes the offline trace analytics.
type AnalyzeOptions struct {
	// StallWindow is the plateau length that flags a convergence stall:
	// a label stalls when StallWindow consecutive generation records
	// pass without a hypervolume improvement. Default 50.
	StallWindow int
	// StallTol is the relative hypervolume gain below which a
	// generation does not count as an improvement (measured against
	// max(|best so far|, 1)). Default 1e-4.
	StallTol float64
}

func (o AnalyzeOptions) withDefaults() AnalyzeOptions {
	if o.StallWindow <= 0 {
		o.StallWindow = 50
	}
	if o.StallTol <= 0 {
		o.StallTol = 1e-4
	}
	return o
}

// TraceAnalysis is the offline rollup of one JSONL trace (any schema
// version v1–v4): record counts, the cross-trace phase-time rollup,
// per-label convergence and cache trends, and the island migration
// summary. Produced by AnalyzeTrace, rendered by cmd/tracestat.
type TraceAnalysis struct {
	Records TraceSummary    `json:"records"`
	Phases  []PhaseStat     `json:"phases,omitempty"`
	Labels  []LabelAnalysis `json:"labels,omitempty"`
	Islands *IslandSummary  `json:"islands,omitempty"`
	// ProfiledGenerations counts the generation records carrying a
	// nonzero phase profile (v4 traces from a -phase-profile run).
	ProfiledGenerations int `json:"profiled_generations"`
	// Stalled reports whether any label hit a hypervolume plateau of at
	// least StallWindow generations.
	Stalled bool `json:"stalled"`
}

// PhaseStat is one phase's share of the trace's recorded phase time.
type PhaseStat struct {
	Phase      string  `json:"phase"`
	TotalNanos int64   `json:"total_ns"`
	Share      float64 `json:"share"`
}

// LabelAnalysis summarizes one label's generation records: counter
// range, hypervolume trajectory with plateau detection, and the fitness-
// cache hit-rate trend (mean over the first vs last quartile of its
// records, -1 when the trace predates cache telemetry).
type LabelAnalysis struct {
	Label       string `json:"label"`
	Generations int    `json:"generations"`
	FirstGen    int    `json:"first_gen"`
	LastGen     int    `json:"last_gen"`

	HVFirst float64 `json:"hv_first"`
	HVBest  float64 `json:"hv_best"`
	HVLast  float64 `json:"hv_last"`
	// BestGen is the generation of the last hypervolume improvement.
	BestGen int `json:"best_gen"`
	// MaxPlateau is the longest run of consecutive generation records
	// without a hypervolume improvement; Stalled flags MaxPlateau >=
	// StallWindow. EndPlateau is the plateau still open when the trace
	// ends (how stale the best front is).
	MaxPlateau int  `json:"max_plateau"`
	EndPlateau int  `json:"end_plateau"`
	Stalled    bool `json:"stalled"`

	// CacheHitEarly and CacheHitLate are the mean fitness-cache hit
	// rates over the label's first and last quartile of records (-1
	// when no record carried cache telemetry).
	CacheHitEarly float64 `json:"cache_hit_early"`
	CacheHitLate  float64 `json:"cache_hit_late"`
}

// IslandSummary aggregates a trace's migration records.
type IslandSummary struct {
	// Islands is the ring size implied by the largest island index.
	Islands int `json:"islands"`
	// Ticks is the number of distinct migration generations.
	Ticks int `json:"ticks"`
	// Migrants is the total migrant count across all edges.
	Migrants int `json:"migrants"`
	// PerIsland summarizes each island's outbound edges.
	PerIsland []IslandStat `json:"per_island"`
	// TickSkew is the spread (max - min) of the islands' last migration
	// generations: 0 when every island reached the same logical tick.
	TickSkew int `json:"tick_skew"`
}

// IslandStat is one island's outbound migration summary.
type IslandStat struct {
	Island   int `json:"island"`
	Migrants int `json:"migrants"`
	LastGen  int `json:"last_gen"`
}

// labelState accumulates one label's streaming analysis.
type labelState struct {
	out      LabelAnalysis
	hitRates []float64 // per-record hit rate, -1 when the record has none
}

// traceAnalyzer accumulates the streaming analysis across one or more
// traces.
type traceAnalyzer struct {
	opts        AnalyzeOptions
	an          *TraceAnalysis
	phaseTotals PhaseTotals
	labels      map[string]*labelState
	labelOrder  []string
	islands     map[int]*IslandStat
	migTicks    map[int]bool
}

func newTraceAnalyzer(opts AnalyzeOptions) *traceAnalyzer {
	return &traceAnalyzer{
		opts:     opts.withDefaults(),
		an:       &TraceAnalysis{},
		labels:   make(map[string]*labelState),
		islands:  make(map[int]*IslandStat),
		migTicks: make(map[int]bool),
	}
}

func (a *traceAnalyzer) consume(rec *traceRecord) {
	switch rec.Type {
	case "generation":
		label := ""
		if rec.Label != nil {
			label = *rec.Label
		}
		st := a.labels[label]
		if st == nil {
			st = &labelState{}
			st.out.Label = label
			st.out.FirstGen = *rec.Gen
			st.out.HVFirst = *rec.HV
			st.out.HVBest = *rec.HV
			st.out.BestGen = *rec.Gen
			a.labels[label] = st
			a.labelOrder = append(a.labelOrder, label)
		}
		st.out.Generations++
		st.out.LastGen = *rec.Gen
		st.out.HVLast = *rec.HV
		if *rec.HV-st.out.HVBest > a.opts.StallTol*maxf(absf(st.out.HVBest), 1) {
			st.out.HVBest = *rec.HV
			st.out.BestGen = *rec.Gen
			st.out.EndPlateau = 0
		} else if st.out.Generations > 1 {
			st.out.EndPlateau++
			if st.out.EndPlateau > st.out.MaxPlateau {
				st.out.MaxPlateau = st.out.EndPlateau
			}
		}
		if rec.CacheHitRate != nil {
			st.hitRates = append(st.hitRates, *rec.CacheHitRate)
		} else {
			st.hitRates = append(st.hitRates, -1)
		}
		if rec.PhaseNS != nil {
			nonzero := false
			for p, ns := range rec.PhaseNS {
				if p < NumPhases {
					a.phaseTotals[p] += ns
				}
				if ns != 0 {
					nonzero = true
				}
			}
			if nonzero {
				a.an.ProfiledGenerations++
			}
		}
	case "migration":
		from, to, gen := *rec.From, *rec.To, *rec.Gen
		a.migTicks[gen] = true
		for _, i := range []int{from, to} {
			if a.islands[i] == nil {
				a.islands[i] = &IslandStat{Island: i}
			}
		}
		st := a.islands[from]
		st.Migrants += *rec.Count
		if gen > st.LastGen {
			st.LastGen = gen
		}
	}
}

func (a *traceAnalyzer) finish() *TraceAnalysis {
	an := a.an
	var phaseSum int64
	for _, ns := range a.phaseTotals {
		phaseSum += ns
	}
	if phaseSum > 0 {
		for p := Phase(0); int(p) < NumPhases; p++ {
			an.Phases = append(an.Phases, PhaseStat{
				Phase:      p.String(),
				TotalNanos: a.phaseTotals[p],
				Share:      float64(a.phaseTotals[p]) / float64(phaseSum),
			})
		}
	}

	for _, label := range a.labelOrder {
		st := a.labels[label]
		st.out.Stalled = st.out.MaxPlateau >= a.opts.StallWindow
		if st.out.Stalled {
			an.Stalled = true
		}
		st.out.CacheHitEarly, st.out.CacheHitLate = hitRateTrend(st.hitRates)
		an.Labels = append(an.Labels, st.out)
	}

	if len(a.islands) > 0 {
		is := &IslandSummary{Ticks: len(a.migTicks)}
		minLast, maxLast := 0, 0
		var idx []int
		for i := range a.islands {
			idx = append(idx, i)
			if i+1 > is.Islands {
				is.Islands = i + 1
			}
		}
		sort.Ints(idx)
		for k, i := range idx {
			st := a.islands[i]
			is.Migrants += st.Migrants
			is.PerIsland = append(is.PerIsland, *st)
			if k == 0 || st.LastGen < minLast {
				minLast = st.LastGen
			}
			if k == 0 || st.LastGen > maxLast {
				maxLast = st.LastGen
			}
		}
		is.TickSkew = maxLast - minLast
		an.Islands = is
	}
	return an
}

// AnalyzeTrace validates and analyzes a JSONL trace in one pass. The
// trace must satisfy the same schema rules as ValidateTrace (the first
// violation is returned as a *TraceError); v1–v3 records simply lack
// the fields later analytics use, so phase rollups and cache trends
// degrade gracefully on old traces.
func AnalyzeTrace(r io.Reader, opts AnalyzeOptions) (*TraceAnalysis, error) {
	return AnalyzeTraces([]io.Reader{r}, opts)
}

// AnalyzeTraces merges the analysis of several traces — typically a
// distributed run's parent trace plus its per-worker traces. Each trace
// is validated independently; the analysis accumulators are shared, so
// migration summaries aggregate across files: per-island migrant counts
// sum, Ticks is the union of migration generations, and TickSkew spans
// the merged ring, exposing an island left behind by a straggling
// worker no matter whose trace recorded it. Validation errors carry the
// failing reader's index.
func AnalyzeTraces(rs []io.Reader, opts AnalyzeOptions) (*TraceAnalysis, error) {
	a := newTraceAnalyzer(opts)
	for i, r := range rs {
		sum, err := scanTrace(r, func(_ int, rec *traceRecord) { a.consume(rec) })
		if err != nil {
			if len(rs) > 1 {
				return nil, fmt.Errorf("trace %d: %w", i+1, err)
			}
			return nil, err
		}
		a.an.Records.Generations += sum.Generations
		a.an.Records.Migrations += sum.Migrations
		a.an.Records.Runs += sum.Runs
	}
	return a.finish(), nil
}

// hitRateTrend returns the mean cache hit rate over the first and last
// quartile of the per-record rates (at least one record each), ignoring
// records without cache telemetry. Either mean is -1 when its quartile
// holds no rated record.
func hitRateTrend(rates []float64) (early, late float64) {
	q := len(rates) / 4
	if q < 1 {
		q = 1
	}
	mean := func(part []float64) float64 {
		sum, n := 0.0, 0
		for _, r := range part {
			if r >= 0 {
				sum += r
				n++
			}
		}
		if n == 0 {
			return -1
		}
		return sum / float64(n)
	}
	if len(rates) == 0 {
		return -1, -1
	}
	return mean(rates[:q]), mean(rates[len(rates)-q:])
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
