package obs

import (
	"strings"
	"testing"
)

func TestFlightRecorderCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFlightRecorder(0, nil) did not panic")
		}
	}()
	NewFlightRecorder(0, nil)
}

func TestFlightRecorderWrapAround(t *testing.T) {
	const capacity = 4
	fr := NewFlightRecorder(capacity, countingClock(1, 1))
	// Fill to exactly capacity: nothing evicted yet.
	for gen := 1; gen <= capacity; gen++ {
		fr.ObserveGeneration(sampleGeneration(gen))
	}
	if fr.Len() != capacity || fr.TotalObserved() != capacity {
		t.Fatalf("at capacity: Len %d, TotalObserved %d", fr.Len(), fr.TotalObserved())
	}
	var atCap strings.Builder
	if err := fr.Dump(&atCap); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(atCap.String(), "\n"); n != capacity {
		t.Fatalf("dump at capacity has %d lines, want %d", n, capacity)
	}
	if !strings.Contains(atCap.String(), `"gen":1`) {
		t.Fatal("dump at exact capacity must still hold the first event")
	}

	// One more event wraps: the oldest is recycled, window slides.
	fr.ObserveGeneration(sampleGeneration(capacity + 1))
	if fr.Len() != capacity || fr.TotalObserved() != capacity+1 {
		t.Fatalf("after wrap: Len %d, TotalObserved %d", fr.Len(), fr.TotalObserved())
	}
	var wrapped strings.Builder
	if err := fr.Dump(&wrapped); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(wrapped.String(), "\n"), "\n")
	if len(lines) != capacity {
		t.Fatalf("dump after wrap has %d lines, want %d", len(lines), capacity)
	}
	if strings.Contains(wrapped.String(), `"gen":1,`) {
		t.Fatal("oldest event must be evicted on wrap")
	}
	// Oldest-first replay with the original capture timestamps.
	if !strings.Contains(lines[0], `"ts":2`) || !strings.Contains(lines[0], `"gen":2`) {
		t.Fatalf("first dumped line %q, want gen 2 at ts 2", lines[0])
	}
	if !strings.Contains(lines[capacity-1], `"gen":5`) {
		t.Fatalf("last dumped line %q, want gen 5", lines[capacity-1])
	}
}

func TestFlightRecorderDeepCopiesBorrowedBuffers(t *testing.T) {
	fr := NewFlightRecorder(2, nil)
	g := sampleGeneration(1)
	front := [][]float64{{10, 2}, {8, 1}}
	dirty := []int{1, 2, 3}
	g.Front, g.DirtyCounts = front, dirty
	fr.ObserveGeneration(g)
	// The engine recycles its buffers after the call; the slot must not
	// see the mutation.
	front[0][0] = -99
	dirty[0] = -99
	var sb strings.Builder
	if err := fr.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "-99") {
		t.Fatalf("dump aliases the producer's recycled buffers:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "[10,2]") {
		t.Fatalf("dump lost the copied front:\n%s", sb.String())
	}
}

func TestFlightRecorderDumpValidatesAndReplays(t *testing.T) {
	fr := NewFlightRecorder(8, countingClock(100, 1))
	for gen := 1; gen <= 3; gen++ {
		fr.ObserveGeneration(sampleGeneration(gen))
	}
	fr.ObserveMigration(MigrationEvent{Generation: 3, From: 0, To: 1, Count: 2})
	fr.ObserveRun(RunEvent{Dataset: "ds1", Variant: "base", Run: 0, Seed: 42,
		Hypervolume: 38.5, MaxUtility: 10.5, FrontSize: 2})

	var a strings.Builder
	if err := fr.Dump(&a); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateTrace(strings.NewReader(a.String()))
	if err != nil {
		t.Fatalf("dump does not validate: %v\n%s", err, a.String())
	}
	if sum.Generations != 3 || sum.Migrations != 1 || sum.Runs != 1 {
		t.Fatalf("dump summary %+v", sum)
	}

	// Dump is non-consuming: a second dump replays the same bytes.
	var b strings.Builder
	if err := fr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("repeated dumps differ")
	}
}

func TestFlightRecorderMatchesLiveTraceWriter(t *testing.T) {
	// A dump must be byte-identical to what a TraceWriter attached
	// alongside the recorder would have written for the same window.
	// A constant clock keeps the two observers' stamps aligned (a
	// ticking clock would advance between the fan-out calls).
	clock := func() int64 { return 42 }
	var live strings.Builder
	tw := NewTraceWriter(&live, clock)
	fr := NewFlightRecorder(8, clock)
	m := Multi{tw, fr}
	for gen := 1; gen <= 2; gen++ {
		m.ObserveGeneration(sampleGeneration(gen))
	}
	m.ObserveMigration(MigrationEvent{Generation: 2, From: 1, To: 0, Count: 1})
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	var dump strings.Builder
	if err := fr.Dump(&dump); err != nil {
		t.Fatal(err)
	}
	if live.String() != dump.String() {
		t.Fatalf("dump differs from live trace:\nlive:\n%s\ndump:\n%s", live.String(), dump.String())
	}
}
