package obs

// Metrics is an Observer that feeds a Registry, mapping engine and
// runner events to counters, gauges, and the dirty-machine histogram.
// Its record path touches only atomic instruments, so it is safe under
// the island model's and RunRepeats's serial emission and allocates
// nothing per event.
type Metrics struct {
	generations       *Counter
	fullEvals         *Counter
	deltaEvals        *Counter
	machinesSimulated *Counter
	machinesInherited *Counter
	cacheHits         *Counter
	cacheMisses       *Counter
	cacheEvictions    *Counter
	mcacheHits        *Counter
	mcacheMisses      *Counter
	mcacheEvictions   *Counter
	typedTasks        *Counter
	typedRuns         *Counter
	migrations        *Counter
	migrants          *Counter
	runs              *Counter

	hypervolume    *Gauge
	epsilon        *Gauge
	spread         *Gauge
	frontSize      *Gauge
	cacheSize      *Gauge
	mcacheSize     *Gauge
	arenaOccupancy *Gauge

	dirtyFraction *Histogram
	phaseSeconds  [NumPhases]*Histogram
}

// dirtyFractionBounds buckets the per-offspring dirty-machine fraction
// (dirty machines / total machines): fine resolution near zero, where
// delta evaluation pays off, coarser toward full-population rewrites.
func dirtyFractionBounds() []float64 {
	return []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1}
}

// phaseSecondsBounds buckets per-generation phase durations on a 1-3-10
// log scale from 10µs to 10s: generation phases span microseconds on
// toy instances to seconds at the 10⁶-task scale.
func phaseSecondsBounds() []float64 {
	return []float64{1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1, 3, 10}
}

// NewMetrics registers the standard instrument set on r and returns the
// feeding observer. Metric names are prefixed "tradeoff_".
func NewMetrics(r *Registry) *Metrics {
	m := &Metrics{
		generations:       r.Counter("tradeoff_generations_total", "NSGA-II generations stepped"),
		fullEvals:         r.Counter("tradeoff_full_evals_total", "offspring evaluated by the full kernel"),
		deltaEvals:        r.Counter("tradeoff_delta_evals_total", "offspring evaluated by the delta kernel"),
		machinesSimulated: r.Counter("tradeoff_machines_simulated_total", "machine queues re-simulated during evaluation"),
		machinesInherited: r.Counter("tradeoff_machines_inherited_total", "machine contribution rows inherited from parent caches"),
		cacheHits:         r.Counter("tradeoff_cache_hits_total", "offspring evaluations served from the fitness-memoization cache"),
		cacheMisses:       r.Counter("tradeoff_cache_misses_total", "fitness-cache lookups that required a simulation"),
		cacheEvictions:    r.Counter("tradeoff_cache_evictions_total", "fitness-cache entries displaced by newer outcomes"),
		mcacheHits:        r.Counter("tradeoff_machine_cache_hits_total", "machine simulations served from the machine-bucket cache"),
		mcacheMisses:      r.Counter("tradeoff_machine_cache_misses_total", "machine-bucket cache lookups that required a simulation"),
		mcacheEvictions:   r.Counter("tradeoff_machine_cache_evictions_total", "machine-bucket cache entries displaced by newer rows"),
		typedTasks:        r.Counter("tradeoff_typed_tasks_total", "tasks simulated by the type-compressed kernel"),
		typedRuns:         r.Counter("tradeoff_typed_runs_total", "same-type runs the type-compressed kernel walked"),
		migrations:        r.Counter("tradeoff_migrations_total", "island migration edges performed"),
		migrants:          r.Counter("tradeoff_migrants_total", "individuals migrated between islands"),
		runs:              r.Counter("tradeoff_runs_total", "completed experiment runs"),
		hypervolume:       r.Gauge("tradeoff_front_hypervolume", "hypervolume of the latest observed front"),
		epsilon:           r.Gauge("tradeoff_front_epsilon", "additive epsilon of the latest front vs its predecessor"),
		spread:            r.Gauge("tradeoff_front_spread", "Deb spread of the latest observed front"),
		frontSize:         r.Gauge("tradeoff_front_size", "point count of the latest observed front"),
		cacheSize:         r.Gauge("tradeoff_cache_size", "live entries in the fitness-memoization cache"),
		mcacheSize:        r.Gauge("tradeoff_machine_cache_size", "live entries in the machine-bucket cache"),
		arenaOccupancy:    r.Gauge("tradeoff_arena_occupancy", "in-use fraction of the population arena's slots"),
		dirtyFraction: r.Histogram("tradeoff_dirty_machine_fraction",
			"per-offspring fraction of machines touched by variation", dirtyFractionBounds()),
	}
	for p := Phase(0); int(p) < NumPhases; p++ {
		m.phaseSeconds[p] = r.Histogram("tradeoff_phase_"+p.String()+"_seconds",
			"per-generation wall time of the "+p.String()+" phase", phaseSecondsBounds())
	}
	return m
}

// ObserveGeneration implements Observer.
//
//detlint:hotpath
func (m *Metrics) ObserveGeneration(g GenerationStats) {
	m.generations.Inc()
	m.fullEvals.Add(uint64(g.FullEvals))
	m.deltaEvals.Add(uint64(g.DeltaEvals))
	m.machinesSimulated.Add(uint64(g.MachinesSimulated))
	m.machinesInherited.Add(uint64(g.MachinesInherited))
	m.cacheHits.Add(uint64(g.CacheHits))
	m.cacheMisses.Add(uint64(g.CacheMisses))
	m.cacheEvictions.Add(uint64(g.CacheEvictions))
	m.mcacheHits.Add(uint64(g.MachineCacheHits))
	m.mcacheMisses.Add(uint64(g.MachineCacheMisses))
	m.mcacheEvictions.Add(uint64(g.MachineCacheEvictions))
	m.typedTasks.Add(uint64(g.TypedTasks))
	m.typedRuns.Add(uint64(g.TypedRuns))
	m.cacheSize.Set(float64(g.CacheSize))
	m.mcacheSize.Set(float64(g.MachineCacheSize))
	m.arenaOccupancy.Set(g.ArenaOccupancy())
	m.hypervolume.Set(g.Indicators.Hypervolume)
	m.epsilon.Set(g.Indicators.Epsilon)
	m.spread.Set(g.Indicators.Spread)
	m.frontSize.Set(float64(g.Indicators.FrontSize))
	if g.NumMachines > 0 {
		inv := 1 / float64(g.NumMachines)
		for _, d := range g.DirtyCounts {
			m.dirtyFraction.Observe(float64(d) * inv)
		}
	}
	// Only profiled runs feed the phase histograms: an all-zero
	// PhaseNanos means no PhaseTimer was attached (or its clock is nil),
	// and recording those zeros would drown the real distribution.
	if g.PhaseTotalNanos() > 0 {
		for p, ns := range g.PhaseNanos {
			m.phaseSeconds[p].Observe(float64(ns) / 1e9)
		}
	}
}

// ObserveMigration implements Observer.
func (m *Metrics) ObserveMigration(ev MigrationEvent) {
	m.migrations.Inc()
	m.migrants.Add(uint64(ev.Count))
}

// ObserveRun implements Observer.
func (m *Metrics) ObserveRun(RunEvent) {
	m.runs.Inc()
}
