// Package obs is the framework's observability layer: a typed metrics
// registry (counters, gauges, fixed-bucket histograms), an Observer hook
// interface the NSGA-II engine and the experiment runners report into, a
// per-generation convergence-indicator kernel, and a JSONL trace writer.
//
// The layer is built to the same standards the compute kernels are held
// to (DESIGN.md §9–10): it is stdlib-only, it never reads ambient state
// (no wall clocks — time is injected through the Clock seam by the cmd
// layer), an attached observer never touches the rng streams (results
// stay bit-for-bit identical with observation on or off), and the
// hot-path record calls are allocation-free and no-ops on nil receivers,
// so a disabled observer costs one branch.
package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// Clock returns a timestamp in nanoseconds. The cmd layer injects a
// wall-clock-backed Clock; internal packages and tests inject fixed or
// counting clocks so traces stay byte-identical across repeats.
type Clock func() int64

// metricKind discriminates the registry's exposition sections.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// metric is one registered instrument, exposition-ready.
type metric struct {
	kind metricKind
	name string
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics and renders them in Prometheus text
// format or as an expvar-style JSON document. Registration is
// mutex-guarded; the returned instruments record lock-free via atomics
// and are safe for concurrent use. Exposition order is registration
// order, so rendered output is deterministic.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]bool
	metrics []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

// register validates and records one instrument under its name.
func (r *Registry) register(m metric) {
	if !validMetricName(m.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", m.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[m.name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", m.name))
	}
	r.byName[m.name] = true
	r.metrics = append(r.metrics, m)
}

// validMetricName reports whether name matches the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Counter registers and returns a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(metric{kind: kindCounter, name: name, help: help, c: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(metric{kind: kindGauge, name: name, help: help, g: g})
	return g
}

// Histogram registers and returns a fixed-bucket histogram. Bounds are
// inclusive upper bounds and must be strictly ascending; an implicit
// +Inf bucket is appended.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.register(metric{kind: kindHistogram, name: name, help: help, h: h})
	return h
}

// Counter is a monotonically increasing counter. The zero value is
// ready; a nil *Counter is a no-op, so call sites stay branch-cheap
// when metrics are disabled.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//detlint:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
//
//detlint:hotpath
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64 gauge. A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
//
//detlint:hotpath
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic bucket counts and a
// CAS-accumulated sum. A nil *Histogram is a no-op. Bucket layout is
// frozen at registration, so Observe never allocates.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// Observe records one sample.
//
//detlint:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// BucketCounts returns the per-bucket counts (the last entry is the
// +Inf bucket).
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// formatFloat renders a float the way both expositions expect:
// shortest-round-trip decimal, stable across runs.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range metrics {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
			return err
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.g.Value()))
		case kindHistogram:
			var cum uint64
			counts := m.h.BucketCounts()
			for i, b := range m.h.bounds {
				cum += counts[i]
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatFloat(b), cum); err != nil {
					return err
				}
			}
			cum += counts[len(counts)-1]
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n", m.name, formatFloat(m.h.Sum())); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", m.name, m.h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders every registered metric as one expvar-style JSON
// object, in registration order (JSON objects are unordered to parsers,
// but the rendered bytes are deterministic). Histograms render as
// {"buckets": [...upper bounds...], "counts": [...], "sum": s,
// "count": n}.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	buf := make([]byte, 0, 256)
	buf = append(buf, '{')
	for i, m := range metrics {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendQuote(buf, m.name)
		buf = append(buf, ':')
		switch m.kind {
		case kindCounter:
			buf = strconv.AppendUint(buf, m.c.Value(), 10)
		case kindGauge:
			buf = appendJSONFloat(buf, m.g.Value())
		case kindHistogram:
			buf = append(buf, `{"buckets":[`...)
			for j, b := range m.h.bounds {
				if j > 0 {
					buf = append(buf, ',')
				}
				buf = appendJSONFloat(buf, b)
			}
			buf = append(buf, `],"counts":[`...)
			for j, c := range m.h.BucketCounts() {
				if j > 0 {
					buf = append(buf, ',')
				}
				buf = strconv.AppendUint(buf, c, 10)
			}
			buf = append(buf, `],"sum":`...)
			buf = appendJSONFloat(buf, m.h.Sum())
			buf = append(buf, `,"count":`...)
			buf = strconv.AppendUint(buf, m.h.Count(), 10)
			buf = append(buf, '}')
		}
	}
	buf = append(buf, '}', '\n')
	_, err := w.Write(buf)
	return err
}

// appendJSONFloat appends a float as a JSON value; NaN and infinities,
// which JSON cannot carry, render as null.
func appendJSONFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, "null"...)
	}
	// JSON numbers may not use Go's shortest 'g' exponent forms like
	// "1e+06"? They may — JSON accepts e-notation. Keep 'g'.
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
