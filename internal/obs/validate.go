package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceSummary reports what a validated trace contained.
type TraceSummary struct {
	Generations int
	Migrations  int
	Runs        int
}

// TraceError is the structured per-record validation failure returned by
// ValidateTrace and AnalyzeTrace: the 1-based line number of the
// offending record, its record type ("" when the type itself is missing
// or unparseable), and the underlying violation.
type TraceError struct {
	Line       int
	RecordType string
	Err        error
}

// Error renders "line N: TYPE record: ..." (or "line N: ..." when no
// record type is known).
func (e *TraceError) Error() string {
	if e.RecordType == "" {
		return fmt.Sprintf("line %d: %v", e.Line, e.Err)
	}
	return fmt.Sprintf("line %d: %s record: %v", e.Line, e.RecordType, e.Err)
}

// Unwrap returns the underlying violation.
func (e *TraceError) Unwrap() error { return e.Err }

// traceRecord mirrors the union of the TraceWriter record schemas for
// validation. Pointer fields distinguish absent from zero.
type traceRecord struct {
	Type              string      `json:"type"`
	V                 *int        `json:"v"`
	TS                *int64      `json:"ts"`
	Label             *string     `json:"label"`
	Gen               *int        `json:"gen"`
	Pop               *int        `json:"pop"`
	FullEvals         *int        `json:"full_evals"`
	DeltaEvals        *int        `json:"delta_evals"`
	MachinesSimulated *int        `json:"machines_simulated"`
	MachinesInherited *int        `json:"machines_inherited"`
	CacheHits         *int        `json:"cache_hits"`
	CacheMisses       *int        `json:"cache_misses"`
	CacheHitRate      *float64    `json:"cache_hit_rate"`
	MCacheHits        *int        `json:"machine_cache_hits"`
	MCacheMisses      *int        `json:"machine_cache_misses"`
	MCacheHitRate     *float64    `json:"machine_cache_hit_rate"`
	TypedTasks        *int        `json:"typed_tasks"`
	TypedRuns         *int        `json:"typed_runs"`
	ArenaOccupancy    *float64    `json:"arena_occupancy"`
	PhaseNS           []int64     `json:"phase_ns"`
	DirtyMean         *float64    `json:"dirty_mean"`
	DirtyMax          *int        `json:"dirty_max"`
	Machines          *int        `json:"machines"`
	FrontSize         *int        `json:"front_size"`
	HV                *float64    `json:"hv"`
	Eps               *float64    `json:"eps"`
	Spread            *float64    `json:"spread"`
	Front             [][]float64 `json:"front"`
	From              *int        `json:"from"`
	To                *int        `json:"to"`
	Count             *int        `json:"count"`
	Dataset           *string     `json:"dataset"`
	Variant           *string     `json:"variant"`
	Run               *int        `json:"run"`
	Seed              *uint64     `json:"seed"`
	MaxUtility        *float64    `json:"max_utility"`
}

// ValidateTrace reads a JSONL trace and checks every record against the
// TraceWriter schema: required fields present per record type,
// generation counters strictly increasing per label, evaluation counts
// consistent with the population, dirty-machine summaries within the
// machine count, and front payloads matching their declared size. It
// returns a summary of the record counts, or the first violation as a
// *TraceError carrying its 1-based line number and record type.
func ValidateTrace(r io.Reader) (TraceSummary, error) {
	return scanTrace(r, nil)
}

// scanTrace is the shared trace walk behind ValidateTrace and
// AnalyzeTrace: it validates each record and, when visit is non-nil,
// hands every valid record (with its 1-based line number) to it. The
// record pointer is only valid for the duration of the call.
func scanTrace(r io.Reader, visit func(line int, rec *traceRecord)) (TraceSummary, error) {
	var sum TraceSummary
	lastGen := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	fail := func(recType string, err error) (TraceSummary, error) {
		return sum, &TraceError{Line: line, RecordType: recType, Err: err}
	}
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			return fail("", fmt.Errorf("empty line"))
		}
		var rec traceRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fail("", fmt.Errorf("invalid JSON: %v", err))
		}
		if rec.TS == nil {
			return fail(rec.Type, fmt.Errorf("missing ts"))
		}
		// Schema versioning: records without a "v" field are legacy v1
		// traces and validate against the v1 rules; stamped records
		// must carry a version this validator knows (v2 through the
		// current version — each validates against its own rules).
		if rec.V != nil && (*rec.V < 2 || *rec.V > TraceSchemaVersion) {
			return fail(rec.Type, fmt.Errorf("unsupported schema version %d (validator supports v1 records without a version field, and v2–v%d)",
				*rec.V, TraceSchemaVersion))
		}
		switch rec.Type {
		case "generation":
			if err := validateGeneration(&rec, lastGen); err != nil {
				return fail(rec.Type, err)
			}
			sum.Generations++
		case "migration":
			if rec.Gen == nil || rec.From == nil || rec.To == nil || rec.Count == nil {
				return fail(rec.Type, fmt.Errorf("missing gen/from/to/count"))
			}
			if *rec.From < 0 || *rec.To < 0 || *rec.Count < 0 {
				return fail(rec.Type, fmt.Errorf("negative migration field"))
			}
			sum.Migrations++
		case "run":
			if rec.Dataset == nil || rec.Variant == nil || rec.Run == nil || rec.Seed == nil ||
				rec.HV == nil || rec.MaxUtility == nil || rec.FrontSize == nil {
				return fail(rec.Type, fmt.Errorf("missing required fields"))
			}
			if *rec.FrontSize < 0 {
				return fail(rec.Type, fmt.Errorf("negative front_size"))
			}
			sum.Runs++
		case "":
			return fail("", fmt.Errorf("missing record type"))
		default:
			return fail("", fmt.Errorf("unknown record type %q", rec.Type))
		}
		if visit != nil {
			visit(line, &rec)
		}
	}
	if err := sc.Err(); err != nil {
		return sum, err
	}
	if sum.Generations+sum.Migrations+sum.Runs == 0 {
		return sum, fmt.Errorf("trace contains no records")
	}
	return sum, nil
}

func validateGeneration(rec *traceRecord, lastGen map[string]int) error {
	if rec.Label == nil || rec.Gen == nil || rec.Pop == nil ||
		rec.FullEvals == nil || rec.DeltaEvals == nil ||
		rec.MachinesSimulated == nil || rec.MachinesInherited == nil ||
		rec.DirtyMean == nil || rec.DirtyMax == nil || rec.Machines == nil ||
		rec.FrontSize == nil || rec.HV == nil || rec.Eps == nil || rec.Spread == nil ||
		rec.Front == nil {
		return fmt.Errorf("missing required fields")
	}
	if *rec.Pop <= 0 {
		return fmt.Errorf("pop %d not positive", *rec.Pop)
	}
	if *rec.FullEvals < 0 || *rec.DeltaEvals < 0 {
		return fmt.Errorf("negative evaluation counts")
	}
	if *rec.MachinesSimulated < 0 || *rec.MachinesInherited < 0 {
		return fmt.Errorf("negative machine counts")
	}
	if rec.V != nil {
		// v2 additions: memoization and arena health.
		if rec.CacheHits == nil || rec.CacheMisses == nil ||
			rec.CacheHitRate == nil || rec.ArenaOccupancy == nil {
			return fmt.Errorf("v%d generation record missing cache_hits/cache_misses/cache_hit_rate/arena_occupancy", *rec.V)
		}
		if *rec.CacheHits < 0 || *rec.CacheMisses < 0 {
			return fmt.Errorf("negative cache counters")
		}
		if *rec.CacheHitRate < 0 || *rec.CacheHitRate > 1 {
			return fmt.Errorf("cache_hit_rate %g outside [0,1]", *rec.CacheHitRate)
		}
		if *rec.ArenaOccupancy < 0 || *rec.ArenaOccupancy > 1 {
			return fmt.Errorf("arena_occupancy %g outside [0,1]", *rec.ArenaOccupancy)
		}
	}
	if rec.V != nil && *rec.V >= 3 {
		// v3 additions: machine-bucket memoization and typed-kernel work.
		if rec.MCacheHits == nil || rec.MCacheMisses == nil || rec.MCacheHitRate == nil ||
			rec.TypedTasks == nil || rec.TypedRuns == nil {
			return fmt.Errorf("v%d generation record missing machine_cache_hits/machine_cache_misses/machine_cache_hit_rate/typed_tasks/typed_runs", *rec.V)
		}
		if *rec.MCacheHits < 0 || *rec.MCacheMisses < 0 {
			return fmt.Errorf("negative machine-cache counters")
		}
		if *rec.MCacheHitRate < 0 || *rec.MCacheHitRate > 1 {
			return fmt.Errorf("machine_cache_hit_rate %g outside [0,1]", *rec.MCacheHitRate)
		}
		if *rec.TypedTasks < 0 || *rec.TypedRuns < 0 {
			return fmt.Errorf("negative typed-kernel counters")
		}
		if *rec.TypedRuns > *rec.TypedTasks {
			return fmt.Errorf("typed_runs %d exceeds typed_tasks %d", *rec.TypedRuns, *rec.TypedTasks)
		}
	}
	if rec.V != nil && *rec.V >= 4 {
		// v4 additions: the per-phase step-time breakdown.
		if rec.PhaseNS == nil {
			return fmt.Errorf("v%d generation record missing phase_ns", *rec.V)
		}
		if len(rec.PhaseNS) != NumPhases {
			return fmt.Errorf("phase_ns has %d entries, want %d", len(rec.PhaseNS), NumPhases)
		}
		for p, ns := range rec.PhaseNS {
			if ns < 0 {
				return fmt.Errorf("negative phase_ns[%d] (%s)", p, Phase(p))
			}
		}
	}
	if *rec.Machines > 0 && *rec.DirtyMax > *rec.Machines {
		return fmt.Errorf("dirty_max %d exceeds machine count %d", *rec.DirtyMax, *rec.Machines)
	}
	if *rec.DirtyMean < 0 || float64(*rec.DirtyMax) < *rec.DirtyMean {
		return fmt.Errorf("dirty_mean %g outside [0, dirty_max=%d]", *rec.DirtyMean, *rec.DirtyMax)
	}
	if *rec.FrontSize != len(rec.Front) {
		return fmt.Errorf("front_size %d does not match %d front points", *rec.FrontSize, len(rec.Front))
	}
	if *rec.HV < 0 {
		return fmt.Errorf("negative hypervolume %g", *rec.HV)
	}
	for i, p := range rec.Front {
		if len(p) != 2 {
			return fmt.Errorf("front point %d has %d coordinates, want 2", i, len(p))
		}
	}
	if prev, ok := lastGen[*rec.Label]; ok && *rec.Gen <= prev {
		return fmt.Errorf("generation %d for label %q not after %d", *rec.Gen, *rec.Label, prev)
	}
	lastGen[*rec.Label] = *rec.Gen
	return nil
}
