package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceSummary reports what a validated trace contained.
type TraceSummary struct {
	Generations int
	Migrations  int
	Runs        int
}

// traceRecord mirrors the union of the TraceWriter record schemas for
// validation. Pointer fields distinguish absent from zero.
type traceRecord struct {
	Type              string      `json:"type"`
	V                 *int        `json:"v"`
	TS                *int64      `json:"ts"`
	Label             *string     `json:"label"`
	Gen               *int        `json:"gen"`
	Pop               *int        `json:"pop"`
	FullEvals         *int        `json:"full_evals"`
	DeltaEvals        *int        `json:"delta_evals"`
	MachinesSimulated *int        `json:"machines_simulated"`
	MachinesInherited *int        `json:"machines_inherited"`
	CacheHits         *int        `json:"cache_hits"`
	CacheMisses       *int        `json:"cache_misses"`
	CacheHitRate      *float64    `json:"cache_hit_rate"`
	MCacheHits        *int        `json:"machine_cache_hits"`
	MCacheMisses      *int        `json:"machine_cache_misses"`
	MCacheHitRate     *float64    `json:"machine_cache_hit_rate"`
	TypedTasks        *int        `json:"typed_tasks"`
	TypedRuns         *int        `json:"typed_runs"`
	ArenaOccupancy    *float64    `json:"arena_occupancy"`
	DirtyMean         *float64    `json:"dirty_mean"`
	DirtyMax          *int        `json:"dirty_max"`
	Machines          *int        `json:"machines"`
	FrontSize         *int        `json:"front_size"`
	HV                *float64    `json:"hv"`
	Eps               *float64    `json:"eps"`
	Spread            *float64    `json:"spread"`
	Front             [][]float64 `json:"front"`
	From              *int        `json:"from"`
	To                *int        `json:"to"`
	Count             *int        `json:"count"`
	Dataset           *string     `json:"dataset"`
	Variant           *string     `json:"variant"`
	Run               *int        `json:"run"`
	Seed              *uint64     `json:"seed"`
	MaxUtility        *float64    `json:"max_utility"`
}

// ValidateTrace reads a JSONL trace and checks every record against the
// TraceWriter schema: required fields present per record type,
// generation counters strictly increasing per label, evaluation counts
// consistent with the population, dirty-machine summaries within the
// machine count, and front payloads matching their declared size. It
// returns a summary of the record counts, or the first violation with
// its 1-based line number.
func ValidateTrace(r io.Reader) (TraceSummary, error) {
	var sum TraceSummary
	lastGen := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			return sum, fmt.Errorf("line %d: empty line", line)
		}
		var rec traceRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return sum, fmt.Errorf("line %d: invalid JSON: %v", line, err)
		}
		if rec.TS == nil {
			return sum, fmt.Errorf("line %d: missing ts", line)
		}
		// Schema versioning: records without a "v" field are legacy v1
		// traces and validate against the v1 rules; stamped records
		// must carry a version this validator knows (v2 through the
		// current version — each validates against its own rules).
		if rec.V != nil && (*rec.V < 2 || *rec.V > TraceSchemaVersion) {
			return sum, fmt.Errorf("line %d: unsupported schema version %d (validator supports v1 records without a version field, and v2–v%d)",
				line, *rec.V, TraceSchemaVersion)
		}
		switch rec.Type {
		case "generation":
			if err := validateGeneration(&rec, lastGen); err != nil {
				return sum, fmt.Errorf("line %d: %v", line, err)
			}
			sum.Generations++
		case "migration":
			if rec.Gen == nil || rec.From == nil || rec.To == nil || rec.Count == nil {
				return sum, fmt.Errorf("line %d: migration record missing gen/from/to/count", line)
			}
			if *rec.From < 0 || *rec.To < 0 || *rec.Count < 0 {
				return sum, fmt.Errorf("line %d: negative migration field", line)
			}
			sum.Migrations++
		case "run":
			if rec.Dataset == nil || rec.Variant == nil || rec.Run == nil || rec.Seed == nil ||
				rec.HV == nil || rec.MaxUtility == nil || rec.FrontSize == nil {
				return sum, fmt.Errorf("line %d: run record missing required fields", line)
			}
			if *rec.FrontSize < 0 {
				return sum, fmt.Errorf("line %d: negative front_size", line)
			}
			sum.Runs++
		case "":
			return sum, fmt.Errorf("line %d: missing record type", line)
		default:
			return sum, fmt.Errorf("line %d: unknown record type %q", line, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return sum, err
	}
	if sum.Generations+sum.Migrations+sum.Runs == 0 {
		return sum, fmt.Errorf("trace contains no records")
	}
	return sum, nil
}

func validateGeneration(rec *traceRecord, lastGen map[string]int) error {
	if rec.Label == nil || rec.Gen == nil || rec.Pop == nil ||
		rec.FullEvals == nil || rec.DeltaEvals == nil ||
		rec.MachinesSimulated == nil || rec.MachinesInherited == nil ||
		rec.DirtyMean == nil || rec.DirtyMax == nil || rec.Machines == nil ||
		rec.FrontSize == nil || rec.HV == nil || rec.Eps == nil || rec.Spread == nil ||
		rec.Front == nil {
		return fmt.Errorf("generation record missing required fields")
	}
	if *rec.Pop <= 0 {
		return fmt.Errorf("pop %d not positive", *rec.Pop)
	}
	if *rec.FullEvals < 0 || *rec.DeltaEvals < 0 {
		return fmt.Errorf("negative evaluation counts")
	}
	if *rec.MachinesSimulated < 0 || *rec.MachinesInherited < 0 {
		return fmt.Errorf("negative machine counts")
	}
	if rec.V != nil {
		// v2 additions: memoization and arena health.
		if rec.CacheHits == nil || rec.CacheMisses == nil ||
			rec.CacheHitRate == nil || rec.ArenaOccupancy == nil {
			return fmt.Errorf("v%d generation record missing cache_hits/cache_misses/cache_hit_rate/arena_occupancy", *rec.V)
		}
		if *rec.CacheHits < 0 || *rec.CacheMisses < 0 {
			return fmt.Errorf("negative cache counters")
		}
		if *rec.CacheHitRate < 0 || *rec.CacheHitRate > 1 {
			return fmt.Errorf("cache_hit_rate %g outside [0,1]", *rec.CacheHitRate)
		}
		if *rec.ArenaOccupancy < 0 || *rec.ArenaOccupancy > 1 {
			return fmt.Errorf("arena_occupancy %g outside [0,1]", *rec.ArenaOccupancy)
		}
	}
	if rec.V != nil && *rec.V >= 3 {
		// v3 additions: machine-bucket memoization and typed-kernel work.
		if rec.MCacheHits == nil || rec.MCacheMisses == nil || rec.MCacheHitRate == nil ||
			rec.TypedTasks == nil || rec.TypedRuns == nil {
			return fmt.Errorf("v%d generation record missing machine_cache_hits/machine_cache_misses/machine_cache_hit_rate/typed_tasks/typed_runs", *rec.V)
		}
		if *rec.MCacheHits < 0 || *rec.MCacheMisses < 0 {
			return fmt.Errorf("negative machine-cache counters")
		}
		if *rec.MCacheHitRate < 0 || *rec.MCacheHitRate > 1 {
			return fmt.Errorf("machine_cache_hit_rate %g outside [0,1]", *rec.MCacheHitRate)
		}
		if *rec.TypedTasks < 0 || *rec.TypedRuns < 0 {
			return fmt.Errorf("negative typed-kernel counters")
		}
		if *rec.TypedRuns > *rec.TypedTasks {
			return fmt.Errorf("typed_runs %d exceeds typed_tasks %d", *rec.TypedRuns, *rec.TypedTasks)
		}
	}
	if *rec.Machines > 0 && *rec.DirtyMax > *rec.Machines {
		return fmt.Errorf("dirty_max %d exceeds machine count %d", *rec.DirtyMax, *rec.Machines)
	}
	if *rec.DirtyMean < 0 || float64(*rec.DirtyMax) < *rec.DirtyMean {
		return fmt.Errorf("dirty_mean %g outside [0, dirty_max=%d]", *rec.DirtyMean, *rec.DirtyMax)
	}
	if *rec.FrontSize != len(rec.Front) {
		return fmt.Errorf("front_size %d does not match %d front points", *rec.FrontSize, len(rec.Front))
	}
	if *rec.HV < 0 {
		return fmt.Errorf("negative hypervolume %g", *rec.HV)
	}
	for i, p := range rec.Front {
		if len(p) != 2 {
			return fmt.Errorf("front point %d has %d coordinates, want 2", i, len(p))
		}
	}
	if prev, ok := lastGen[*rec.Label]; ok && *rec.Gen <= prev {
		return fmt.Errorf("generation %d for label %q not after %d", *rec.Gen, *rec.Label, prev)
	}
	lastGen[*rec.Label] = *rec.Gen
	return nil
}
