package obs

import (
	"strings"
	"testing"
)

func TestMultiHeterogeneousFanOutOrder(t *testing.T) {
	// A hand-built Multi over heterogeneous members — callback recorders
	// bracketing a TraceWriter and a FlightRecorder — must deliver every
	// event to every member in declaration order.
	var order []string
	first := &recordingObserver{
		onGen: func(GenerationStats) { order = append(order, "first.gen") },
		onMig: func(MigrationEvent) { order = append(order, "first.mig") },
		onRun: func(RunEvent) { order = append(order, "first.run") },
	}
	last := &recordingObserver{
		onGen: func(GenerationStats) { order = append(order, "last.gen") },
		onMig: func(MigrationEvent) { order = append(order, "last.mig") },
		onRun: func(RunEvent) { order = append(order, "last.run") },
	}
	var sb strings.Builder
	tw := NewTraceWriter(&sb, nil)
	fr := NewFlightRecorder(4, nil)
	m := Multi{first, tw, fr, last}

	m.ObserveGeneration(sampleGeneration(1))
	m.ObserveMigration(MigrationEvent{Generation: 1, From: 0, To: 1, Count: 1})
	m.ObserveRun(RunEvent{Dataset: "ds1", Run: 0, Seed: 1, Hypervolume: 1, MaxUtility: 1, FrontSize: 1})

	want := []string{"first.gen", "last.gen", "first.mig", "last.mig", "first.run", "last.run"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "\n"); n != 3 {
		t.Fatalf("trace member saw %d records, want 3", n)
	}
	if fr.Len() != 3 {
		t.Fatalf("flight member retained %d events, want 3", fr.Len())
	}
}

func TestMultiSkipsNilMembers(t *testing.T) {
	var gens, migs, runs int
	rec := &recordingObserver{
		onGen: func(GenerationStats) { gens++ },
		onMig: func(MigrationEvent) { migs++ },
		onRun: func(RunEvent) { runs++ },
	}
	m := Multi{nil, rec, nil}
	m.ObserveGeneration(GenerationStats{})
	m.ObserveMigration(MigrationEvent{})
	m.ObserveRun(RunEvent{})
	if gens != 1 || migs != 1 || runs != 1 {
		t.Fatalf("live member saw %d/%d/%d events, want 1/1/1", gens, migs, runs)
	}

	var empty Multi
	empty.ObserveGeneration(GenerationStats{}) // must not panic
	allNil := Multi{nil, nil}
	allNil.ObserveMigration(MigrationEvent{})
	allNil.ObserveRun(RunEvent{})
}
