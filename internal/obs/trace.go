package obs

import (
	"io"
	"strconv"
)

// TraceSchemaVersion is the version stamped on every emitted record as
// the "v" field. Version history:
//
//	v1 (implicit; records carry no "v" field): the original schema.
//	v2: every record carries "v"; generation records gain the
//	    fitness-memoization and arena fields cache_hits, cache_misses,
//	    cache_hit_rate, and arena_occupancy.
//	v3: generation records gain the machine-bucket memoization and
//	    typed-kernel fields machine_cache_hits, machine_cache_misses,
//	    machine_cache_hit_rate, typed_tasks, and typed_runs.
//	v4: generation records gain phase_ns, a NumPhases-length array of
//	    per-phase step nanoseconds indexed by Phase (all zero when no
//	    PhaseTimer was attached).
const TraceSchemaVersion = 4

// TraceWriter is an Observer that appends one JSON object per event to
// an io.Writer (JSONL). Records are hand-encoded with strconv into a
// recycled buffer: no reflection, no map iteration, and fixed key
// order, so a seeded run traced with an injected clock produces
// byte-identical output across repeats.
//
// Timestamps come from the injected Clock (nanoseconds); a nil clock
// stamps every record 0. The writer is not safe for concurrent use —
// the engine and runners emit events serially.
type TraceWriter struct {
	w     io.Writer
	clock Clock
	buf   []byte
	err   error
}

// NewTraceWriter returns a TraceWriter emitting to w with timestamps
// from clock (nil for a constant-zero clock).
func NewTraceWriter(w io.Writer, clock Clock) *TraceWriter {
	return &TraceWriter{w: w, clock: clock, buf: make([]byte, 0, 1024)}
}

// Err returns the first write error, if any. After an error the writer
// drops subsequent events.
func (t *TraceWriter) Err() error { return t.err }

// Flush flushes the underlying writer if it is buffered (exposes a
// Flush() error method), and surfaces any sticky write error.
func (t *TraceWriter) Flush() error {
	if t.err != nil {
		return t.err
	}
	if f, ok := t.w.(interface{ Flush() error }); ok {
		t.err = f.Flush()
	}
	return t.err
}

// now returns the current injected timestamp.
func (t *TraceWriter) now() int64 {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

// emit writes the completed buffer as one line.
func (t *TraceWriter) emit() {
	t.buf = append(t.buf, '}', '\n')
	if _, err := t.w.Write(t.buf); err != nil {
		t.err = err
	}
}

// ObserveGeneration implements Observer: emits a "generation" record
// with evaluation-kernel counters, dirty-machine summary, convergence
// indicators, and the full front point list.
//
//detlint:hotpath
func (t *TraceWriter) ObserveGeneration(g GenerationStats) {
	if t.err != nil {
		return
	}
	t.buf = t.buf[:0]
	t.buf = append(t.buf, `{"type":"generation","v":`...)
	t.buf = strconv.AppendInt(t.buf, TraceSchemaVersion, 10)
	t.buf = append(t.buf, `,"ts":`...)
	t.buf = strconv.AppendInt(t.buf, t.now(), 10)
	t.buf = append(t.buf, `,"label":`...)
	t.buf = strconv.AppendQuote(t.buf, g.Label)
	t.buf = append(t.buf, `,"gen":`...)
	t.buf = strconv.AppendInt(t.buf, int64(g.Generation), 10)
	t.buf = append(t.buf, `,"pop":`...)
	t.buf = strconv.AppendInt(t.buf, int64(g.Population), 10)
	t.buf = append(t.buf, `,"full_evals":`...)
	t.buf = strconv.AppendInt(t.buf, int64(g.FullEvals), 10)
	t.buf = append(t.buf, `,"delta_evals":`...)
	t.buf = strconv.AppendInt(t.buf, int64(g.DeltaEvals), 10)
	t.buf = append(t.buf, `,"machines_simulated":`...)
	t.buf = strconv.AppendInt(t.buf, int64(g.MachinesSimulated), 10)
	t.buf = append(t.buf, `,"machines_inherited":`...)
	t.buf = strconv.AppendInt(t.buf, int64(g.MachinesInherited), 10)
	t.buf = append(t.buf, `,"cache_hits":`...)
	t.buf = strconv.AppendInt(t.buf, int64(g.CacheHits), 10)
	t.buf = append(t.buf, `,"cache_misses":`...)
	t.buf = strconv.AppendInt(t.buf, int64(g.CacheMisses), 10)
	t.buf = append(t.buf, `,"cache_hit_rate":`...)
	t.buf = appendJSONFloat(t.buf, g.CacheHitRate())
	t.buf = append(t.buf, `,"machine_cache_hits":`...)
	t.buf = strconv.AppendInt(t.buf, int64(g.MachineCacheHits), 10)
	t.buf = append(t.buf, `,"machine_cache_misses":`...)
	t.buf = strconv.AppendInt(t.buf, int64(g.MachineCacheMisses), 10)
	t.buf = append(t.buf, `,"machine_cache_hit_rate":`...)
	t.buf = appendJSONFloat(t.buf, g.MachineCacheHitRate())
	t.buf = append(t.buf, `,"typed_tasks":`...)
	t.buf = strconv.AppendInt(t.buf, int64(g.TypedTasks), 10)
	t.buf = append(t.buf, `,"typed_runs":`...)
	t.buf = strconv.AppendInt(t.buf, int64(g.TypedRuns), 10)
	t.buf = append(t.buf, `,"arena_occupancy":`...)
	t.buf = appendJSONFloat(t.buf, g.ArenaOccupancy())
	t.buf = append(t.buf, `,"phase_ns":[`...)
	for p, ns := range g.PhaseNanos {
		if p > 0 {
			t.buf = append(t.buf, ',')
		}
		t.buf = strconv.AppendInt(t.buf, ns, 10)
	}
	t.buf = append(t.buf, ']')
	dirtyMax := 0
	dirtySum := 0
	for _, d := range g.DirtyCounts {
		dirtySum += d
		if d > dirtyMax {
			dirtyMax = d
		}
	}
	dirtyMean := 0.0
	if len(g.DirtyCounts) > 0 {
		dirtyMean = float64(dirtySum) / float64(len(g.DirtyCounts))
	}
	t.buf = append(t.buf, `,"dirty_mean":`...)
	t.buf = appendJSONFloat(t.buf, dirtyMean)
	t.buf = append(t.buf, `,"dirty_max":`...)
	t.buf = strconv.AppendInt(t.buf, int64(dirtyMax), 10)
	t.buf = append(t.buf, `,"machines":`...)
	t.buf = strconv.AppendInt(t.buf, int64(g.NumMachines), 10)
	t.buf = append(t.buf, `,"front_size":`...)
	t.buf = strconv.AppendInt(t.buf, int64(g.Indicators.FrontSize), 10)
	t.buf = append(t.buf, `,"hv":`...)
	t.buf = appendJSONFloat(t.buf, g.Indicators.Hypervolume)
	t.buf = append(t.buf, `,"eps":`...)
	t.buf = appendJSONFloat(t.buf, g.Indicators.Epsilon)
	t.buf = append(t.buf, `,"spread":`...)
	t.buf = appendJSONFloat(t.buf, g.Indicators.Spread)
	t.buf = append(t.buf, `,"front":[`...)
	for i, p := range g.Front {
		if i > 0 {
			t.buf = append(t.buf, ',')
		}
		t.buf = append(t.buf, '[')
		t.buf = appendJSONFloat(t.buf, p[0])
		t.buf = append(t.buf, ',')
		t.buf = appendJSONFloat(t.buf, p[1])
		t.buf = append(t.buf, ']')
	}
	t.buf = append(t.buf, ']')
	t.emit()
}

// ObserveMigration implements Observer: emits a "migration" record.
func (t *TraceWriter) ObserveMigration(m MigrationEvent) {
	if t.err != nil {
		return
	}
	t.buf = t.buf[:0]
	t.buf = append(t.buf, `{"type":"migration","v":`...)
	t.buf = strconv.AppendInt(t.buf, TraceSchemaVersion, 10)
	t.buf = append(t.buf, `,"ts":`...)
	t.buf = strconv.AppendInt(t.buf, t.now(), 10)
	t.buf = append(t.buf, `,"gen":`...)
	t.buf = strconv.AppendInt(t.buf, int64(m.Generation), 10)
	t.buf = append(t.buf, `,"from":`...)
	t.buf = strconv.AppendInt(t.buf, int64(m.From), 10)
	t.buf = append(t.buf, `,"to":`...)
	t.buf = strconv.AppendInt(t.buf, int64(m.To), 10)
	t.buf = append(t.buf, `,"count":`...)
	t.buf = strconv.AppendInt(t.buf, int64(m.Count), 10)
	t.emit()
}

// ObserveRun implements Observer: emits a "run" record.
func (t *TraceWriter) ObserveRun(r RunEvent) {
	if t.err != nil {
		return
	}
	t.buf = t.buf[:0]
	t.buf = append(t.buf, `{"type":"run","v":`...)
	t.buf = strconv.AppendInt(t.buf, TraceSchemaVersion, 10)
	t.buf = append(t.buf, `,"ts":`...)
	t.buf = strconv.AppendInt(t.buf, t.now(), 10)
	t.buf = append(t.buf, `,"dataset":`...)
	t.buf = strconv.AppendQuote(t.buf, r.Dataset)
	t.buf = append(t.buf, `,"variant":`...)
	t.buf = strconv.AppendQuote(t.buf, r.Variant)
	t.buf = append(t.buf, `,"run":`...)
	t.buf = strconv.AppendInt(t.buf, int64(r.Run), 10)
	t.buf = append(t.buf, `,"seed":`...)
	t.buf = strconv.AppendUint(t.buf, r.Seed, 10)
	t.buf = append(t.buf, `,"hv":`...)
	t.buf = appendJSONFloat(t.buf, r.Hypervolume)
	t.buf = append(t.buf, `,"max_utility":`...)
	t.buf = appendJSONFloat(t.buf, r.MaxUtility)
	t.buf = append(t.buf, `,"front_size":`...)
	t.buf = strconv.AppendInt(t.buf, int64(r.FrontSize), 10)
	t.emit()
}
