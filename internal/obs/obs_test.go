package obs

import (
	"strings"
	"testing"
)

func TestRegistryCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g_now", "a gauge")
	h := r.Histogram("h_dist", "a histogram", []float64{1, 2, 5})

	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter value %d, want 5", c.Value())
	}
	g.Set(3.5)
	g.Set(-1.25)
	if g.Value() != -1.25 {
		t.Fatalf("gauge value %g, want -1.25", g.Value())
	}
	for _, v := range []float64{0.5, 1, 1.5, 2, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("histogram count %d, want 5", h.Count())
	}
	if h.Sum() != 15 {
		t.Fatalf("histogram sum %g, want 15", h.Sum())
	}
	want := []uint64{2, 2, 0, 1} // (≤1, ≤2, ≤5, +Inf); bounds inclusive
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts %v, want %v", got, want)
		}
	}
}

func TestRegistryNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(7)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.BucketCounts() != nil {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestRegistryRecordPathsAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g_now", "")
	h := r.Histogram("h_dist", "", dirtyFractionBounds())
	var nilC *Counter
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(0.25)
		nilC.Add(1)
	}); n != 0 {
		t.Fatalf("record path allocates %.1f per run, want 0", n)
	}
}

func TestRegistryDuplicateAndInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_name", "")
	mustPanic(t, "duplicate name", func() { r.Gauge("ok_name", "") })
	mustPanic(t, "invalid name", func() { r.Counter("0bad", "") })
	mustPanic(t, "empty name", func() { r.Counter("", "") })
	mustPanic(t, "descending bounds", func() { r.Histogram("h", "", []float64{2, 1}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("steps_total", "steps taken")
	g := r.Gauge("hv_now", "")
	h := r.Histogram("lat", "latency", []float64{1, 2})
	c.Add(3)
	g.Set(2.5)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP steps_total steps taken
# TYPE steps_total counter
steps_total 3
# TYPE hv_now gauge
hv_now 2.5
# HELP lat latency
# TYPE lat histogram
lat_bucket{le="1"} 1
lat_bucket{le="2"} 2
lat_bucket{le="+Inf"} 3
lat_sum 11
lat_count 3
`
	if got != want {
		t.Fatalf("prometheus exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.Gauge("b_now", "").Set(0.5)
	h := r.Histogram("c_dist", "", []float64{1})
	h.Observe(3)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{"a_total":2,"b_now":0.5,"c_dist":{"buckets":[1],"counts":[0,1],"sum":3,"count":1}}` + "\n"
	if sb.String() != want {
		t.Fatalf("json exposition %q, want %q", sb.String(), want)
	}
}

func TestCombine(t *testing.T) {
	if Combine() != nil || Combine(nil, nil) != nil {
		t.Fatal("Combine of no observers must be nil")
	}
	r := NewRegistry()
	m := NewMetrics(r)
	if Combine(nil, m, nil) != Observer(m) {
		t.Fatal("Combine of one observer must return it unwrapped")
	}
	m2 := NewMetrics(NewRegistry())
	combined := Combine(m, m2)
	combined.ObserveMigration(MigrationEvent{Count: 4})
	if m.migrations.Value() != 1 || m2.migrants.Value() != 4 {
		t.Fatal("Combine must fan out to every member")
	}
}

func TestLabeledOverridesGenerationLabel(t *testing.T) {
	var got []string
	rec := &recordingObserver{onGen: func(g GenerationStats) { got = append(got, g.Label) }}
	l := Labeled{Label: "ds1", Next: rec}
	l.ObserveGeneration(GenerationStats{Label: "inner", Generation: 1})
	if len(got) != 1 || got[0] != "ds1" {
		t.Fatalf("labels %v, want [ds1]", got)
	}
}

// recordingObserver is a test helper capturing events via callbacks.
type recordingObserver struct {
	onGen func(GenerationStats)
	onMig func(MigrationEvent)
	onRun func(RunEvent)
}

func (r *recordingObserver) ObserveGeneration(g GenerationStats) {
	if r.onGen != nil {
		r.onGen(g)
	}
}

func (r *recordingObserver) ObserveMigration(m MigrationEvent) {
	if r.onMig != nil {
		r.onMig(m)
	}
}

func (r *recordingObserver) ObserveRun(e RunEvent) {
	if r.onRun != nil {
		r.onRun(e)
	}
}

func TestMetricsObserver(t *testing.T) {
	r := NewRegistry()
	m := NewMetrics(r)
	m.ObserveGeneration(GenerationStats{
		Generation: 1, Population: 4,
		FullEvals: 1, DeltaEvals: 3,
		MachinesSimulated: 10, MachinesInherited: 30,
		DirtyCounts: []int{0, 1, 2, 8}, NumMachines: 8,
		Indicators: Indicators{Hypervolume: 12.5, Epsilon: -0.5, Spread: 0.25, FrontSize: 3},
	})
	m.ObserveMigration(MigrationEvent{From: 0, To: 1, Count: 2})
	m.ObserveRun(RunEvent{Dataset: "ds1"})
	if m.generations.Value() != 1 || m.fullEvals.Value() != 1 || m.deltaEvals.Value() != 3 {
		t.Fatal("generation counters wrong")
	}
	if m.machinesSimulated.Value() != 10 || m.machinesInherited.Value() != 30 {
		t.Fatal("machine counters wrong")
	}
	if m.hypervolume.Value() != 12.5 || m.epsilon.Value() != -0.5 || m.frontSize.Value() != 3 {
		t.Fatal("indicator gauges wrong")
	}
	if m.dirtyFraction.Count() != 4 {
		t.Fatalf("dirty histogram count %d, want 4", m.dirtyFraction.Count())
	}
	if m.migrations.Value() != 1 || m.migrants.Value() != 2 || m.runs.Value() != 1 {
		t.Fatal("migration/run counters wrong")
	}
}

func TestMetricsGenerationPathAllocationFree(t *testing.T) {
	m := NewMetrics(NewRegistry())
	g := GenerationStats{
		Generation: 1, Population: 4, FullEvals: 1, DeltaEvals: 3,
		DirtyCounts: []int{0, 1, 2, 8}, NumMachines: 8,
	}
	if n := testing.AllocsPerRun(200, func() { m.ObserveGeneration(g) }); n != 0 {
		t.Fatalf("Metrics.ObserveGeneration allocates %.1f per run, want 0", n)
	}
}
