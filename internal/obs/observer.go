package obs

// Observer receives telemetry events from the NSGA-II engine, the island
// model, and the experiment runners. Implementations must treat every
// slice reachable from an event as borrowed: valid only for the duration
// of the call, recycled by the producer afterwards. Copy what you keep.
//
// Observers are pure consumers. The engine guarantees an attached
// observer never advances an rng stream and never changes results
// bit-for-bit; an observer must uphold its side by never mutating event
// payloads.
type Observer interface {
	// ObserveGeneration fires once per Engine.Step, after survivor
	// selection, with the post-step state.
	ObserveGeneration(g GenerationStats)
	// ObserveMigration fires once per island migration edge during
	// Islands.Step's serial migration phase.
	ObserveMigration(m MigrationEvent)
	// ObserveRun fires once per completed experiment run, from the
	// serial aggregation phase of experiments.RunRepeats.
	ObserveRun(r RunEvent)
}

// GenerationStats is the per-generation telemetry payload. Front and
// DirtyCounts are borrowed buffers owned by the engine.
type GenerationStats struct {
	// Label identifies the emitting engine ("" for a plain engine,
	// "island3" style labels under the island model, dataset/config
	// labels under experiment runners).
	Label string
	// Generation is the engine's generation counter after the step.
	Generation int
	// Population is the steady-state population size.
	Population int
	// Front holds the current rank-1 objective vectors
	// [utility, energy], sorted by descending utility. Borrowed.
	Front [][]float64
	// FullEvals and DeltaEvals count offspring evaluations this
	// generation by kernel choice; FullEvals + DeltaEvals + CacheHits
	// is the offspring count.
	FullEvals  int
	DeltaEvals int
	// CacheHits, CacheMisses, and CacheEvictions count fitness-
	// memoization activity this generation: hits skipped a simulation
	// entirely, misses were simulated and memoized, evictions displaced
	// older entries. All zero when memoization is disabled.
	CacheHits      int
	CacheMisses    int
	CacheEvictions int
	// CacheSize and CacheCapacity are the memoization table's live-entry
	// count and entry bound after the step (zero when disabled).
	CacheSize     int
	CacheCapacity int
	// ArenaInUse and ArenaSlots describe the population arena's
	// structure-of-arrays slots: handed out vs carved in total.
	ArenaInUse int
	ArenaSlots int
	// MachinesSimulated and MachinesInherited split per-machine work
	// inside the evaluation kernels: simulated machines were re-run,
	// inherited machines reused the parent's cached contribution rows.
	MachinesSimulated int
	MachinesInherited int
	// MachineCacheHits, MachineCacheMisses, and MachineCacheEvictions
	// count machine-bucket memoization activity this generation — the
	// second cache level, keyed on per-machine bucket fingerprints. A
	// hit skipped one machine's queue simulation. All zero when the
	// level is disabled.
	MachineCacheHits      int
	MachineCacheMisses    int
	MachineCacheEvictions int
	// MachineCacheSize and MachineCacheCapacity are the machine-bucket
	// table's live-entry count and entry bound after the step (zero when
	// disabled).
	MachineCacheSize     int
	MachineCacheCapacity int
	// TypedTasks and TypedRuns count the typed evaluation kernel's work
	// this generation: tasks simulated and the same-type runs they
	// compressed into. TypedTasks / TypedRuns is the type-compression
	// ratio; both zero under the scalar kernel.
	TypedTasks int
	TypedRuns  int
	// DirtyCounts[i] is the number of machines touched by variation for
	// offspring i (the dirty-machine distribution). Borrowed.
	DirtyCounts []int
	// NumMachines is the machine count of the problem instance, the
	// upper bound for each DirtyCounts entry.
	NumMachines int
	// PhaseNanos[p] is the nanoseconds Engine.Step spent in phase
	// Phase(p) this generation — all zero when no PhaseTimer is
	// attached (or its clock is nil). A by-value fixed array: nothing
	// here is borrowed.
	PhaseNanos PhaseTotals
	// Indicators holds the convergence indicators for Front, if an
	// indicator kernel is active (all-zero otherwise).
	Indicators Indicators
}

// PhaseTotalNanos sums the per-phase step times, 0 when no phase
// profiler was attached.
func (g *GenerationStats) PhaseTotalNanos() int64 {
	var sum int64
	for _, ns := range g.PhaseNanos {
		sum += ns
	}
	return sum
}

// CacheHitRate returns the generation's fitness-cache hit fraction,
// hits / (hits + misses), or 0 when the cache saw no lookups.
func (g *GenerationStats) CacheHitRate() float64 {
	if n := g.CacheHits + g.CacheMisses; n > 0 {
		return float64(g.CacheHits) / float64(n)
	}
	return 0
}

// MachineCacheHitRate returns the generation's machine-bucket cache hit
// fraction, hits / (hits + misses), or 0 when the level saw no lookups.
func (g *GenerationStats) MachineCacheHitRate() float64 {
	if n := g.MachineCacheHits + g.MachineCacheMisses; n > 0 {
		return float64(g.MachineCacheHits) / float64(n)
	}
	return 0
}

// TypeCompression returns the typed kernel's tasks-per-run ratio this
// generation, or 0 when the typed kernel simulated nothing.
func (g *GenerationStats) TypeCompression() float64 {
	if g.TypedRuns > 0 {
		return float64(g.TypedTasks) / float64(g.TypedRuns)
	}
	return 0
}

// ArenaOccupancy returns the in-use fraction of the population arena's
// slots, or 0 when nothing has been carved.
func (g *GenerationStats) ArenaOccupancy() float64 {
	if g.ArenaSlots > 0 {
		return float64(g.ArenaInUse) / float64(g.ArenaSlots)
	}
	return 0
}

// Indicators bundles the per-generation convergence indicators computed
// by IndicatorKernel.
type Indicators struct {
	// Hypervolume is the 2-D dominated area w.r.t. the kernel's
	// reference point. Larger is better.
	Hypervolume float64
	// Epsilon is the additive ε-indicator of this front measured
	// against the previous generation's front (how far this front is
	// from weakly dominating the previous one). Values ≤ 0 mean the
	// new front weakly dominates the old. Zero for the first observed
	// front.
	Epsilon float64
	// Spread is Deb's Δ diversity indicator (0 for fronts with fewer
	// than 3 points). Lower is more evenly spaced.
	Spread float64
	// FrontSize is the number of rank-1 points.
	FrontSize int
}

// MigrationEvent describes one directed migration edge during an island
// generation. Emitted from the serial migration phase, so event order is
// deterministic: ascending source island within one exchange.
type MigrationEvent struct {
	// Generation is the shared island-model generation counter after
	// the step that triggered the exchange.
	Generation int
	// From and To are island indices (ring topology: To is the
	// successor of From).
	From, To int
	// Count is the number of migrant individuals injected.
	Count int
}

// RunEvent describes one completed experiment run from RunRepeats.
// Emitted serially in grid order (variant-major, then repeat), so event
// order is deterministic regardless of worker count.
type RunEvent struct {
	// Dataset names the data set the run evolved on.
	Dataset string
	// Variant names the configuration variant ("" when unvaried).
	Variant string
	// Run is the repeat index within the variant.
	Run int
	// Seed is the run's root seed.
	Seed uint64
	// Hypervolume is the final front's hypervolume w.r.t. the
	// cross-run reference point.
	Hypervolume float64
	// MaxUtility is the best utility value on the final front.
	MaxUtility float64
	// FrontSize is the final front's size.
	FrontSize int
}

// Multi fans every event out to each member observer in order. A nil or
// empty Multi is a valid no-op observer, and nil members are skipped —
// a hand-built Multi{metrics, nil, trace} fans out to the two live
// members (Combine drops the nils up front instead).
type Multi []Observer

// ObserveGeneration implements Observer.
func (m Multi) ObserveGeneration(g GenerationStats) {
	for _, o := range m {
		if o != nil {
			o.ObserveGeneration(g)
		}
	}
}

// ObserveMigration implements Observer.
func (m Multi) ObserveMigration(ev MigrationEvent) {
	for _, o := range m {
		if o != nil {
			o.ObserveMigration(ev)
		}
	}
}

// ObserveRun implements Observer.
func (m Multi) ObserveRun(r RunEvent) {
	for _, o := range m {
		if o != nil {
			o.ObserveRun(r)
		}
	}
}

// Combine returns an observer that forwards to every non-nil argument,
// or nil when none remain — so callers can pass the result around and
// rely on the engine's nil check as the single disable switch.
func Combine(obs ...Observer) Observer {
	var kept Multi
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// Labeled wraps an observer, overriding the Label of every
// GenerationStats that passes through. Experiment runners use it to tag
// engine-level events with the dataset/variant that produced them.
type Labeled struct {
	Label string
	Next  Observer
}

// ObserveGeneration implements Observer.
func (l Labeled) ObserveGeneration(g GenerationStats) {
	g.Label = l.Label
	l.Next.ObserveGeneration(g)
}

// ObserveMigration implements Observer.
func (l Labeled) ObserveMigration(ev MigrationEvent) {
	l.Next.ObserveMigration(ev)
}

// ObserveRun implements Observer.
func (l Labeled) ObserveRun(r RunEvent) {
	l.Next.ObserveRun(r)
}
