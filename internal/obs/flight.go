package obs

import (
	"fmt"
	"io"
	"sync"
)

// FlightRecorder is an Observer retaining the last N telemetry events
// (generation, migration, and run) in a fixed-capacity ring buffer for
// post-hoc inspection: a long run keeps a bounded window of its recent
// history in memory, and the cmd layer dumps it on SIGUSR1 or at panic
// time. Recording deep-copies each event's borrowed buffers into
// slot-owned storage that is recycled on wrap-around, so the steady
// state allocates nothing once the slots have grown to the working
// set. All methods are mutex-guarded and safe for concurrent use.
type FlightRecorder struct {
	clock Clock
	mu    sync.Mutex
	slots []flightSlot
	next  int    // ring write position
	live  int    // retained events, <= len(slots)
	total uint64 // events ever observed
}

// flightKind discriminates what one ring slot holds.
type flightKind uint8

const (
	flightGeneration flightKind = iota
	flightMigration
	flightRun
)

// flightSlot is one retained event. For generation events, front/coord
// and dirty are the slot-owned deep-copy buffers gen's borrowed Front
// and DirtyCounts views are re-pointed into.
type flightSlot struct {
	kind  flightKind
	ts    int64
	gen   GenerationStats
	front [][]float64
	coord []float64
	dirty []int
	mig   MigrationEvent
	run   RunEvent
}

// NewFlightRecorder returns a recorder retaining the last capacity
// events, stamping each with the injected clock (nil for a
// constant-zero clock). Panics if capacity < 1.
func NewFlightRecorder(capacity int, clock Clock) *FlightRecorder {
	if capacity < 1 {
		panic(fmt.Sprintf("obs: flight recorder capacity %d, want >= 1", capacity))
	}
	return &FlightRecorder{clock: clock, slots: make([]flightSlot, capacity)}
}

// push claims the next ring slot under f.mu, stamping it.
func (f *FlightRecorder) push() *flightSlot {
	s := &f.slots[f.next]
	f.next = (f.next + 1) % len(f.slots)
	if f.live < len(f.slots) {
		f.live++
	}
	f.total++
	if f.clock != nil {
		s.ts = f.clock()
	} else {
		s.ts = 0
	}
	return s
}

// ObserveGeneration implements Observer: deep-copies g into the next
// ring slot. The engine's borrowed Front and DirtyCounts buffers are
// copied into slot storage sized to the largest event the slot has
// seen, so wrap-around recycles rather than reallocates.
func (f *FlightRecorder) ObserveGeneration(g GenerationStats) {
	f.mu.Lock()
	s := f.push()
	s.kind = flightGeneration
	s.gen = g
	need := 0
	for _, p := range g.Front {
		need += len(p)
	}
	if cap(s.coord) < need {
		s.coord = make([]float64, 0, need)
	}
	if cap(s.front) < len(g.Front) {
		s.front = make([][]float64, 0, len(g.Front))
	}
	coord, front := s.coord[:0], s.front[:0]
	for _, p := range g.Front {
		lo := len(coord)
		coord = append(coord, p...)
		front = append(front, coord[lo:len(coord):len(coord)])
	}
	s.coord, s.front = coord, front
	s.gen.Front = front
	if cap(s.dirty) < len(g.DirtyCounts) {
		s.dirty = make([]int, 0, len(g.DirtyCounts))
	}
	s.dirty = append(s.dirty[:0], g.DirtyCounts...)
	s.gen.DirtyCounts = s.dirty
	f.mu.Unlock()
}

// ObserveMigration implements Observer.
func (f *FlightRecorder) ObserveMigration(m MigrationEvent) {
	f.mu.Lock()
	s := f.push()
	s.kind = flightMigration
	s.mig = m
	f.mu.Unlock()
}

// ObserveRun implements Observer.
func (f *FlightRecorder) ObserveRun(r RunEvent) {
	f.mu.Lock()
	s := f.push()
	s.kind = flightRun
	s.run = r
	f.mu.Unlock()
}

// Len returns the number of retained events (at most Cap).
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.live
}

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int { return len(f.slots) }

// TotalObserved returns the number of events ever observed;
// TotalObserved() - Len() of them have been overwritten.
func (f *FlightRecorder) TotalObserved() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Dump writes the retained events, oldest first, as trace JSONL —
// exactly the records a TraceWriter attached alongside the recorder
// would have emitted for those events, stamped with their original
// capture timestamps — so a dump validates with ValidateTrace /
// cmd/tracecheck and analyzes with cmd/tracestat. Dump does not
// consume the ring: repeated dumps replay the same window.
func (f *FlightRecorder) Dump(w io.Writer) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var ts int64
	tw := NewTraceWriter(w, func() int64 { return ts })
	start := f.next - f.live
	if start < 0 {
		start += len(f.slots)
	}
	for k := 0; k < f.live; k++ {
		s := &f.slots[(start+k)%len(f.slots)]
		ts = s.ts
		switch s.kind {
		case flightGeneration:
			tw.ObserveGeneration(s.gen)
		case flightMigration:
			tw.ObserveMigration(s.mig)
		case flightRun:
			tw.ObserveRun(s.run)
		}
	}
	return tw.Err()
}
