package obs

import (
	"math"
	"sort"
)

// IndicatorKernel computes per-generation convergence indicators —
// 2-D hypervolume w.r.t. a reference point, additive epsilon against
// the previous generation's front, and front size/spread — from the
// engine's FrontPoints output ([utility, energy] vectors, utility
// maximized, energy minimized).
//
// The kernel recycles its point buffers across generations, so the
// steady state allocates nothing; Update is on the engine's observer
// path and annotated //detlint:hotpath. It is not safe for concurrent
// use — each engine owns one.
type IndicatorKernel struct {
	// refX, refY is the hypervolume reference point in minimization
	// coordinates (x = -utility, y = energy).
	refX, refY float64
	// margin derives an automatic reference point from the first
	// observed front when no explicit reference was given.
	margin  float64
	haveRef bool

	// cur and prev are recycled minimization-coordinate front buffers;
	// cur is sorted by (x, y) ascending after each Update.
	cur, prev []kpoint
	hasPrev   bool
}

// kpoint is one front point in minimization coordinates.
type kpoint struct{ x, y float64 }

// NewIndicatorKernel returns a kernel using the explicit hypervolume
// reference point ref = [utility, energy] in original objective
// coordinates. The reference must be dominated by (worse than) every
// front point for that point to contribute area, matching
// moea.Hypervolume2D.
func NewIndicatorKernel(ref []float64) *IndicatorKernel {
	if len(ref) != 2 {
		panic("obs: indicator kernel needs a 2-dim reference point")
	}
	return &IndicatorKernel{refX: -ref[0], refY: ref[1], haveRef: true}
}

// NewAutoIndicatorKernel returns a kernel that derives its reference
// point from the first front it sees: the per-objective worst value,
// degraded by margin (a fraction of the observed range, at least 1e-9
// absolute), mirroring moea.ReferenceFrom. Subsequent fronts are
// measured against that fixed reference so hypervolume values are
// comparable across generations.
func NewAutoIndicatorKernel(margin float64) *IndicatorKernel {
	if margin < 0 {
		panic("obs: indicator kernel margin must be >= 0")
	}
	return &IndicatorKernel{margin: margin}
}

// Len, Less, Swap implement sort.Interface over cur so Update can sort
// without a capturing closure.
func (k *IndicatorKernel) Len() int { return len(k.cur) }

func (k *IndicatorKernel) Less(i, j int) bool {
	if k.cur[i].x != k.cur[j].x {
		return k.cur[i].x < k.cur[j].x
	}
	return k.cur[i].y < k.cur[j].y
}

func (k *IndicatorKernel) Swap(i, j int) { k.cur[i], k.cur[j] = k.cur[j], k.cur[i] }

// deriveRef fixes the automatic reference point from the front held in
// cur (minimization coordinates).
func (k *IndicatorKernel) deriveRef() {
	worstX, worstY := math.Inf(-1), math.Inf(-1)
	bestX, bestY := math.Inf(1), math.Inf(1)
	for _, p := range k.cur {
		worstX = math.Max(worstX, p.x)
		worstY = math.Max(worstY, p.y)
		bestX = math.Min(bestX, p.x)
		bestY = math.Min(bestY, p.y)
	}
	padX := math.Max(k.margin*(worstX-bestX), 1e-9)
	padY := math.Max(k.margin*(worstY-bestY), 1e-9)
	k.refX = worstX + padX
	k.refY = worstY + padY
	k.haveRef = true
}

// load fills cur from front in minimization coordinates and sorts it.
//
//detlint:hotpath
func (k *IndicatorKernel) load(front [][]float64) {
	k.cur = k.cur[:0]
	for _, p := range front {
		k.cur = append(k.cur, kpoint{x: -p[0], y: p[1]})
	}
	sort.Sort(k)
}

// Prime seeds the previous-front buffer from front without computing
// indicators, so the next Update's epsilon compares against front
// rather than reporting the first-observation zero. The engine calls it
// when an observer attaches to an already-initialized population.
func (k *IndicatorKernel) Prime(front [][]float64) {
	if len(front) == 0 {
		return
	}
	k.load(front)
	if !k.haveRef {
		k.deriveRef()
	}
	k.cur, k.prev = k.prev, k.cur
	k.hasPrev = true
}

// Update computes the indicators for front and retires it as the new
// previous front. Front points are read during the call only.
//
//detlint:hotpath
func (k *IndicatorKernel) Update(front [][]float64) Indicators {
	ind := Indicators{FrontSize: len(front)}
	if len(front) == 0 {
		return ind
	}
	k.load(front)
	if !k.haveRef {
		k.deriveRef()
	}
	ind.Hypervolume = k.hypervolume()
	if k.hasPrev {
		ind.Epsilon = k.epsilon()
	}
	ind.Spread = k.spread()
	k.cur, k.prev = k.prev, k.cur
	k.hasPrev = true
	return ind
}

// hypervolume sweeps the sorted staircase in cur: each point strictly
// dominating the reference contributes the rectangle between it, the
// running best y, and the reference corner. Identical in result to
// moea.Hypervolume2D.
//
//detlint:hotpath
func (k *IndicatorKernel) hypervolume() float64 {
	var area float64
	bestY := k.refY
	for _, p := range k.cur {
		if p.x >= k.refX || p.y >= bestY {
			continue
		}
		area += (k.refX - p.x) * (bestY - p.y)
		bestY = p.y
	}
	return area
}

// epsilon returns the additive ε-indicator I_ε+(cur, prev): the max
// over previous-front points of the min over current-front points of
// the largest per-coordinate excess, all in minimization coordinates.
// Identical in result to moea.EpsilonIndicator with the previous front
// as reference set.
//
//detlint:hotpath
func (k *IndicatorKernel) epsilon() float64 {
	worst := math.Inf(-1)
	for _, r := range k.prev {
		best := math.Inf(1)
		for _, p := range k.cur {
			eps := math.Max(p.x-r.x, p.y-r.y)
			if eps < best {
				best = eps
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}

// spread returns Deb's Δ diversity indicator over the sorted front in
// cur: the mean absolute deviation of consecutive-point distances
// divided by their mean. Coordinate negation preserves distances, so
// this matches the original-coordinate value. Returns 0 for fronts
// with fewer than 3 points or zero total extent.
//
//detlint:hotpath
func (k *IndicatorKernel) spread() float64 {
	n := len(k.cur)
	if n < 3 {
		return 0
	}
	var sum float64
	for i := 1; i < n; i++ {
		sum += math.Hypot(k.cur[i].x-k.cur[i-1].x, k.cur[i].y-k.cur[i-1].y)
	}
	mean := sum / float64(n-1)
	if mean == 0 {
		return 0
	}
	var dev float64
	for i := 1; i < n; i++ {
		d := math.Hypot(k.cur[i].x-k.cur[i-1].x, k.cur[i].y-k.cur[i-1].y)
		dev += math.Abs(d - mean)
	}
	return dev / (float64(n-1) * mean)
}

// Reference returns the kernel's hypervolume reference point in
// original objective coordinates [utility, energy], and whether it has
// been fixed yet (auto kernels have no reference until the first
// front).
func (k *IndicatorKernel) Reference() ([]float64, bool) {
	if !k.haveRef {
		return nil, false
	}
	return []float64{-k.refX, k.refY}, true
}
