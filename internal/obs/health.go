package obs

import "strconv"

// IslandBoard is a fixed set of per-island health gauges for the
// async island model: ring-edge mailbox depth, local logical-clock
// tick, and fitness-cache occupancy per island, plus a cross-island
// tick-skew gauge. The island count is frozen at construction (the
// Registry has no labels, so each island gets its own gauge names) and
// every setter is a lock-free atomic store, safe from the islands'
// goroutines. A nil *IslandBoard is a no-op, so the island model can
// call the setters unconditionally.
type IslandBoard struct {
	mailbox  []*Gauge
	tick     []*Gauge
	cacheOcc []*Gauge
	skew     *Gauge
}

// NewIslandBoard registers health gauges for the given island count on
// r: tradeoff_island<i>_mailbox_depth, tradeoff_island<i>_tick,
// tradeoff_island<i>_cache_occupancy, and tradeoff_islands_tick_skew.
// Returns nil (the no-op board) when r is nil or islands < 1.
func NewIslandBoard(r *Registry, islands int) *IslandBoard {
	if r == nil || islands < 1 {
		return nil
	}
	b := &IslandBoard{}
	for i := 0; i < islands; i++ {
		idx := strconv.Itoa(i)
		b.mailbox = append(b.mailbox, r.Gauge(
			"tradeoff_island"+idx+"_mailbox_depth",
			"queued migrant batches on island "+idx+"'s outbound ring edge"))
		b.tick = append(b.tick, r.Gauge(
			"tradeoff_island"+idx+"_tick",
			"island "+idx+"'s local generation counter at its last migration tick"))
		b.cacheOcc = append(b.cacheOcc, r.Gauge(
			"tradeoff_island"+idx+"_cache_occupancy",
			"live-entry fraction of island "+idx+"'s fitness-memoization cache"))
	}
	b.skew = r.Gauge("tradeoff_islands_tick_skew",
		"spread (max - min) of the islands' local tick counters")
	return b
}

// Islands returns the board's island count (0 for the nil board).
func (b *IslandBoard) Islands() int {
	if b == nil {
		return 0
	}
	return len(b.tick)
}

// SetMailboxDepth records the queued batch count on island i's outbound
// ring edge. Out-of-range i is ignored.
//
//detlint:hotpath
func (b *IslandBoard) SetMailboxDepth(i, depth int) {
	if b == nil || i < 0 || i >= len(b.mailbox) {
		return
	}
	b.mailbox[i].Set(float64(depth))
}

// SetTick records island i's local generation counter and refreshes the
// cross-island skew gauge from the current tick gauges. The skew read
// is a best-effort snapshot under concurrent setters — health gauges
// are monitoring data, not part of the deterministic telemetry stream.
//
//detlint:hotpath
func (b *IslandBoard) SetTick(i, gen int) {
	if b == nil || i < 0 || i >= len(b.tick) {
		return
	}
	b.tick[i].Set(float64(gen))
	lo, hi := b.tick[0].Value(), b.tick[0].Value()
	for _, g := range b.tick[1:] {
		v := g.Value()
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	b.skew.Set(hi - lo)
}

// SetCacheOccupancy records island i's fitness-cache live-entry
// fraction. Out-of-range i is ignored.
//
//detlint:hotpath
func (b *IslandBoard) SetCacheOccupancy(i int, frac float64) {
	if b == nil || i < 0 || i >= len(b.cacheOcc) {
		return
	}
	b.cacheOcc[i].Set(frac)
}

// TickSkew returns the last computed cross-island tick spread.
func (b *IslandBoard) TickSkew() float64 {
	if b == nil {
		return 0
	}
	return b.skew.Value()
}
