package obs

import (
	"math"
	"sort"
	"testing"

	"tradeoff/internal/moea"
	"tradeoff/internal/rng"
)

// bruteHypervolume computes the 2-D hypervolume by coordinate-compressed
// cell decomposition: the dominated region is a union of axis-aligned
// rectangles, so splitting the plane on every point coordinate yields
// cells that are each entirely inside or outside the union. Slow and
// obviously correct.
func bruteHypervolume(points [][]float64, ref []float64) float64 {
	rx, ry := -ref[0], ref[1]
	type pt struct{ x, y float64 }
	var ps []pt
	xs := []float64{rx}
	ys := []float64{ry}
	for _, p := range points {
		x, y := -p[0], p[1]
		if x < rx && y < ry {
			ps = append(ps, pt{x, y})
			xs = append(xs, x)
			ys = append(ys, y)
		}
	}
	if len(ps) == 0 {
		return 0
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	var area float64
	for i := 0; i+1 < len(xs); i++ {
		for j := 0; j+1 < len(ys); j++ {
			dominated := false
			for _, p := range ps {
				if p.x <= xs[i] && p.y <= ys[j] {
					dominated = true
					break
				}
			}
			if dominated {
				area += (xs[i+1] - xs[i]) * (ys[j+1] - ys[j])
			}
		}
	}
	return area
}

// bruteEpsilon computes the additive epsilon indicator of a vs ref by
// the literal max-min-max definition in minimization coordinates.
func bruteEpsilon(a, ref [][]float64) float64 {
	worst := math.Inf(-1)
	for _, r := range ref {
		best := math.Inf(1)
		for _, p := range a {
			eps := math.Max((-p[0])-(-r[0]), p[1]-r[1])
			if eps < best {
				best = eps
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}

// bruteSpread computes Deb's Δ over the front sorted by descending
// utility, per the kernel's documented definition.
func bruteSpread(points [][]float64) float64 {
	if len(points) < 3 {
		return 0
	}
	sorted := append([][]float64(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] > sorted[j][0]
		}
		return sorted[i][1] < sorted[j][1]
	})
	var d []float64
	var sum float64
	for i := 1; i < len(sorted); i++ {
		dist := math.Hypot(sorted[i][0]-sorted[i-1][0], sorted[i][1]-sorted[i-1][1])
		d = append(d, dist)
		sum += dist
	}
	mean := sum / float64(len(d))
	if mean == 0 {
		return 0
	}
	var dev float64
	for _, di := range d {
		dev += math.Abs(di - mean)
	}
	return dev / (float64(len(d)) * mean)
}

// randomPoints draws n [utility, energy] vectors deterministically.
func randomPoints(src *rng.Source, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{src.Range(0, 100), src.Range(0, 100)}
	}
	return out
}

func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*math.Max(scale, 1)
}

func TestKernelHypervolumeHandComputed(t *testing.T) {
	k := NewIndicatorKernel([]float64{0, 5})
	ind := k.Update([][]float64{{10, 2}, {8, 1}})
	if !approxEqual(ind.Hypervolume, 38, 1e-12) {
		t.Fatalf("hypervolume %g, want 38", ind.Hypervolume)
	}
	if ind.FrontSize != 2 {
		t.Fatalf("front size %d, want 2", ind.FrontSize)
	}
	if ind.Epsilon != 0 {
		t.Fatalf("first-front epsilon %g, want 0", ind.Epsilon)
	}
}

func TestKernelHypervolumeMatchesReferences(t *testing.T) {
	sp := moea.UtilityEnergySpace()
	src := rng.New(42)
	for trial := 0; trial < 30; trial++ {
		pts := randomPoints(src, 1+src.Intn(25))
		ref := sp.ReferenceFrom(0.1, pts)
		k := NewIndicatorKernel(ref)
		got := k.Update(pts).Hypervolume
		wantMoea := sp.Hypervolume2D(pts, ref)
		wantBrute := bruteHypervolume(pts, ref)
		if !approxEqual(got, wantMoea, 1e-9) {
			t.Fatalf("trial %d: kernel HV %g != moea HV %g", trial, got, wantMoea)
		}
		if !approxEqual(got, wantBrute, 1e-9) {
			t.Fatalf("trial %d: kernel HV %g != brute HV %g", trial, got, wantBrute)
		}
	}
}

func TestKernelHypervolumeIgnoresNondominatingPoints(t *testing.T) {
	// Reference (5, 5): one point strictly dominates it, the others are
	// outside the dominated box and must contribute nothing.
	k := NewIndicatorKernel([]float64{5, 5})
	ind := k.Update([][]float64{{10, 3}, {4, 1}, {12, 7}})
	if want := (10.0 - 5.0) * (5.0 - 3.0); !approxEqual(ind.Hypervolume, want, 1e-12) {
		t.Fatalf("hypervolume %g, want %g", ind.Hypervolume, want)
	}
}

func TestKernelEpsilonMatchesReferences(t *testing.T) {
	sp := moea.UtilityEnergySpace()
	src := rng.New(7)
	k := NewIndicatorKernel([]float64{-1, 200})
	prev := randomPoints(src, 10)
	k.Update(prev)
	for trial := 0; trial < 30; trial++ {
		cur := randomPoints(src, 1+src.Intn(20))
		got := k.Update(cur).Epsilon
		wantMoea, err := sp.EpsilonIndicator(cur, prev)
		if err != nil {
			t.Fatal(err)
		}
		wantBrute := bruteEpsilon(cur, prev)
		if !approxEqual(got, wantMoea, 1e-9) {
			t.Fatalf("trial %d: kernel eps %g != moea eps %g", trial, got, wantMoea)
		}
		if !approxEqual(got, wantBrute, 1e-9) {
			t.Fatalf("trial %d: kernel eps %g != brute eps %g", trial, got, wantBrute)
		}
		prev = cur
	}
}

func TestKernelEpsilonSelfIsZeroAndImprovementNegative(t *testing.T) {
	k := NewIndicatorKernel([]float64{0, 100})
	front := [][]float64{{10, 5}, {8, 3}, {6, 1}}
	k.Update(front)
	if eps := k.Update(front).Epsilon; eps != 0 {
		t.Fatalf("epsilon vs identical front %g, want 0", eps)
	}
	// Uniformly better front: +1 utility, -0.5 energy on every point.
	better := [][]float64{{11, 4.5}, {9, 2.5}, {7, 0.5}}
	if eps := k.Update(better).Epsilon; eps >= 0 {
		t.Fatalf("epsilon vs dominated predecessor %g, want negative", eps)
	}
}

func TestKernelSpreadMatchesBruteForce(t *testing.T) {
	src := rng.New(11)
	k := NewIndicatorKernel([]float64{-1, 200})
	for trial := 0; trial < 20; trial++ {
		// Strictly monotone staircase front: utility descending, energy
		// descending — rank-1 by construction, distinct coordinates.
		n := 3 + src.Intn(12)
		pts := make([][]float64, n)
		u, e := 100.0, 100.0
		for i := range pts {
			u -= src.Range(0.5, 5)
			e -= src.Range(0.5, 5)
			pts[i] = []float64{u, e}
		}
		got := k.Update(pts).Spread
		want := bruteSpread(pts)
		if !approxEqual(got, want, 1e-9) {
			t.Fatalf("trial %d: kernel spread %g != brute spread %g", trial, got, want)
		}
	}
	if s := k.Update([][]float64{{1, 1}, {0, 0}}).Spread; s != 0 {
		t.Fatalf("spread of 2-point front %g, want 0", s)
	}
}

func TestKernelAutoReferenceMatchesMoea(t *testing.T) {
	sp := moea.UtilityEnergySpace()
	src := rng.New(3)
	pts := randomPoints(src, 12)
	k := NewAutoIndicatorKernel(0.1)
	if _, ok := k.Reference(); ok {
		t.Fatal("auto kernel must have no reference before the first front")
	}
	got := k.Update(pts).Hypervolume
	ref := sp.ReferenceFrom(0.1, pts)
	want := sp.Hypervolume2D(pts, ref)
	if !approxEqual(got, want, 1e-9) {
		t.Fatalf("auto-ref HV %g, want %g (ref %v)", got, want, ref)
	}
	kref, ok := k.Reference()
	if !ok {
		t.Fatal("auto kernel must expose its derived reference")
	}
	for i := range ref {
		if !approxEqual(kref[i], ref[i], 1e-12) {
			t.Fatalf("derived reference %v, want %v", kref, ref)
		}
	}
	// The reference stays fixed for later fronts.
	k.Update(randomPoints(src, 5))
	kref2, _ := k.Reference()
	if kref2[0] != kref[0] || kref2[1] != kref[1] {
		t.Fatal("auto reference must not move after derivation")
	}
}

func TestKernelPrimeSeedsEpsilonBaseline(t *testing.T) {
	base := [][]float64{{10, 5}, {8, 3}}
	cur := [][]float64{{9, 4}, {7, 2}}
	k := NewIndicatorKernel([]float64{0, 100})
	k.Prime(base)
	got := k.Update(cur).Epsilon
	want := bruteEpsilon(cur, base)
	if !approxEqual(got, want, 1e-12) {
		t.Fatalf("epsilon after Prime %g, want %g", got, want)
	}
}

func TestKernelEmptyFront(t *testing.T) {
	k := NewIndicatorKernel([]float64{0, 100})
	ind := k.Update(nil)
	if ind != (Indicators{}) {
		t.Fatalf("empty front indicators %+v, want zero", ind)
	}
}

func TestKernelUpdateAllocationFree(t *testing.T) {
	src := rng.New(99)
	a := randomPoints(src, 30)
	b := randomPoints(src, 25)
	k := NewIndicatorKernel([]float64{-1, 200})
	k.Update(a)
	k.Update(b)
	if n := testing.AllocsPerRun(100, func() {
		k.Update(a)
		k.Update(b)
	}); n != 0 {
		t.Fatalf("kernel Update allocates %.1f per run in steady state, want 0", n)
	}
}
