package obs

import "strconv"

// DistBoard is the wire-level health surface of a distributed island
// run (internal/dist): total bytes moved over the worker sockets in
// both directions, total coordinator round trips (forwarded migration
// frames and request/reply control exchanges), and a per-worker
// histogram of boundary-edge stall time — the wall time a worker's
// islands spent blocked on wire sends and receives during a run. Like
// IslandBoard, the worker count is frozen at construction, every
// update is atomic, and a nil *DistBoard is a no-op.
type DistBoard struct {
	bytes      *Counter
	roundtrips *Counter
	stall      []*Histogram
}

// distStallBounds buckets per-run worker stall time in seconds.
var distStallBounds = []float64{
	0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1, 5, 30,
}

// NewDistBoard registers wire health metrics for the given worker
// count on r: tradeoff_dist_bytes_total, tradeoff_dist_roundtrips_total
// and tradeoff_dist_worker<w>_stall_seconds. Returns nil (the no-op
// board) when r is nil or workers < 1.
func NewDistBoard(r *Registry, workers int) *DistBoard {
	if r == nil || workers < 1 {
		return nil
	}
	b := &DistBoard{
		bytes: r.Counter("tradeoff_dist_bytes_total",
			"bytes moved over the distributed-island worker sockets, both directions"),
		roundtrips: r.Counter("tradeoff_dist_roundtrips_total",
			"coordinator round trips: forwarded migration frames and control request/reply exchanges"),
	}
	for w := 0; w < workers; w++ {
		idx := strconv.Itoa(w)
		b.stall = append(b.stall, r.Histogram(
			"tradeoff_dist_worker"+idx+"_stall_seconds",
			"per-run wall time worker "+idx+"'s islands spent blocked on boundary-edge wire waits",
			distStallBounds))
	}
	return b
}

// Workers returns the board's worker count (0 for the nil board).
func (b *DistBoard) Workers() int {
	if b == nil {
		return 0
	}
	return len(b.stall)
}

// AddBytes counts n wire bytes (sent or received).
//
//detlint:hotpath
func (b *DistBoard) AddBytes(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.bytes.Add(uint64(n))
}

// AddRoundtrip counts one coordinator round trip.
//
//detlint:hotpath
func (b *DistBoard) AddRoundtrip() {
	if b == nil {
		return
	}
	b.roundtrips.Inc()
}

// ObserveStall records worker w's boundary-edge stall time for one run,
// in seconds. Out-of-range w is ignored.
func (b *DistBoard) ObserveStall(w int, seconds float64) {
	if b == nil || w < 0 || w >= len(b.stall) {
		return
	}
	b.stall[w].Observe(seconds)
}

// WireBytes returns the total counted wire bytes.
func (b *DistBoard) WireBytes() uint64 {
	if b == nil {
		return 0
	}
	return b.bytes.Value()
}

// Roundtrips returns the total counted round trips.
func (b *DistBoard) Roundtrips() uint64 {
	if b == nil {
		return 0
	}
	return b.roundtrips.Value()
}
