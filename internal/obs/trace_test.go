package obs

import (
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
)

// countingClock returns a Clock ticking by step from start on each call.
func countingClock(start, step int64) Clock {
	t := start - step
	return func() int64 {
		t += step
		return t
	}
}

func sampleGeneration(gen int) GenerationStats {
	return GenerationStats{
		Label: "ds1", Generation: gen, Population: 4,
		Front:     [][]float64{{10.5, 2.25}, {8, 1}},
		FullEvals: 1, DeltaEvals: 2, CacheHits: 1, CacheMisses: 3,
		CacheEvictions: 0, CacheSize: 5, CacheCapacity: 16,
		ArenaInUse: 12, ArenaSlots: 16,
		MachinesSimulated: 6, MachinesInherited: 12,
		MachineCacheHits: 4, MachineCacheMisses: 6, MachineCacheEvictions: 0,
		MachineCacheSize: 7, MachineCacheCapacity: 32,
		TypedTasks: 20, TypedRuns: 8,
		DirtyCounts: []int{0, 1, 2, 3}, NumMachines: 6,
		PhaseNanos: PhaseTotals{100, 200, 300, 400, 500, 600, 700, 800},
		Indicators: Indicators{Hypervolume: 38.5, Epsilon: -0.5, Spread: 0.1, FrontSize: 2},
	}
}

func writeSampleTrace(w io.Writer, clock Clock) error {
	tw := NewTraceWriter(w, clock)
	for gen := 1; gen <= 3; gen++ {
		tw.ObserveGeneration(sampleGeneration(gen))
	}
	tw.ObserveMigration(MigrationEvent{Generation: 3, From: 0, To: 1, Count: 2})
	tw.ObserveRun(RunEvent{Dataset: "ds1", Variant: "base", Run: 0, Seed: 42, Hypervolume: 38.5, MaxUtility: 10.5, FrontSize: 2})
	return tw.Err()
}

func TestTraceWriterRecordsParseAndRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := writeSampleTrace(&sb, countingClock(1000, 10)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("trace has %d lines, want 5:\n%s", len(lines), sb.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not valid JSON: %v", err)
	}
	for k, want := range map[string]any{
		"type": "generation", "v": float64(TraceSchemaVersion),
		"ts": 1000.0, "label": "ds1", "gen": 1.0,
		"pop": 4.0, "full_evals": 1.0, "delta_evals": 2.0,
		"machines_simulated": 6.0, "machines_inherited": 12.0,
		"cache_hits": 1.0, "cache_misses": 3.0,
		"cache_hit_rate": 0.25, "arena_occupancy": 0.75,
		"machine_cache_hits": 4.0, "machine_cache_misses": 6.0,
		"machine_cache_hit_rate": 0.4,
		"typed_tasks":            20.0, "typed_runs": 8.0,
		"dirty_mean": 1.5, "dirty_max": 3.0, "machines": 6.0,
		"front_size": 2.0, "hv": 38.5, "eps": -0.5, "spread": 0.1,
	} {
		if first[k] != want {
			t.Fatalf("generation record %s = %v, want %v", k, first[k], want)
		}
	}
	phases, ok := first["phase_ns"].([]any)
	if !ok || len(phases) != NumPhases {
		t.Fatalf("generation record phase_ns = %v, want %d-entry array", first["phase_ns"], NumPhases)
	}
	for p, v := range phases {
		if v != float64((p+1)*100) {
			t.Fatalf("phase_ns[%d] = %v, want %d", p, v, (p+1)*100)
		}
	}
	var mig map[string]any
	if err := json.Unmarshal([]byte(lines[3]), &mig); err != nil {
		t.Fatal(err)
	}
	if mig["type"] != "migration" || mig["from"] != 0.0 || mig["to"] != 1.0 || mig["count"] != 2.0 {
		t.Fatalf("unexpected migration record: %v", mig)
	}
	var run map[string]any
	if err := json.Unmarshal([]byte(lines[4]), &run); err != nil {
		t.Fatal(err)
	}
	if run["type"] != "run" || run["seed"] != 42.0 || run["variant"] != "base" {
		t.Fatalf("unexpected run record: %v", run)
	}
}

func TestTraceByteIdenticalWithInjectedClock(t *testing.T) {
	var a, b strings.Builder
	if err := writeSampleTrace(&a, countingClock(5, 7)); err != nil {
		t.Fatal(err)
	}
	if err := writeSampleTrace(&b, countingClock(5, 7)); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("traces differ across repeats with identical clock:\n%s\nvs\n%s", a.String(), b.String())
	}
	var c strings.Builder
	if err := writeSampleTrace(&c, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(c.String(), "\n", 2)[0], `"ts":0`) {
		t.Fatal("nil clock must stamp ts 0")
	}
}

func TestTraceValidates(t *testing.T) {
	var sb strings.Builder
	if err := writeSampleTrace(&sb, countingClock(0, 1)); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if sum != (TraceSummary{Generations: 3, Migrations: 1, Runs: 1}) {
		t.Fatalf("summary %+v", sum)
	}
}

func TestValidateTraceRejections(t *testing.T) {
	gen := `{"type":"generation","ts":1,"label":"x","gen":1,"pop":4,"full_evals":1,"delta_evals":3,"machines_simulated":0,"machines_inherited":0,"dirty_mean":0,"dirty_max":0,"machines":6,"front_size":1,"hv":1,"eps":0,"spread":0,"front":[[1,2]]}`
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty trace", "", "no records"},
		{"invalid json", "not json\n", "invalid JSON"},
		{"unknown type", `{"type":"bogus","ts":1}` + "\n", "unknown record type"},
		{"missing type", `{"ts":1}` + "\n", "missing record type"},
		{"missing ts", `{"type":"migration","gen":1,"from":0,"to":1,"count":1}` + "\n", "missing ts"},
		{"generation missing fields", `{"type":"generation","ts":1,"gen":1}` + "\n", "missing required fields"},
		{"front size mismatch", strings.Replace(gen, `"front_size":1`, `"front_size":3`, 1) + "\n", "does not match"},
		{"non-increasing gen", gen + "\n" + gen + "\n", "not after"},
		{"dirty max over machines", strings.Replace(gen, `"dirty_max":0`, `"dirty_max":9`, 1) + "\n", "exceeds machine count"},
		{"negative hv", strings.Replace(gen, `"hv":1`, `"hv":-2`, 1) + "\n", "negative hypervolume"},
		{"bad front point", strings.Replace(gen, `"front":[[1,2]]`, `"front":[[1,2,3]]`, 1) + "\n", "coordinates"},
		{"migration missing fields", `{"type":"migration","ts":1,"from":0}` + "\n", "missing gen/from/to/count"},
		{"run missing fields", `{"type":"run","ts":1,"dataset":"x"}` + "\n", "missing required fields"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateTrace(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("validator accepted invalid trace")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestTraceSchemaVersion pins the versioning contract: every emitted
// record carries "v" equal to TraceSchemaVersion, legacy v1 records
// (no "v" field) still validate, and unknown versions are rejected —
// as are stamped records missing the fields their version introduced.
func TestTraceSchemaVersion(t *testing.T) {
	if TraceSchemaVersion != 4 {
		t.Fatalf("TraceSchemaVersion = %d; update this test alongside a schema bump", TraceSchemaVersion)
	}
	var sb strings.Builder
	if err := writeSampleTrace(&sb, nil); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n") {
		var rec struct {
			V *int `json:"v"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.V == nil || *rec.V != TraceSchemaVersion {
			t.Fatalf("line %d: record not stamped with v%d: %s", i+1, TraceSchemaVersion, line)
		}
	}

	v1 := `{"type":"generation","ts":1,"label":"x","gen":1,"pop":4,"full_evals":1,"delta_evals":3,"machines_simulated":0,"machines_inherited":0,"dirty_mean":0,"dirty_max":0,"machines":6,"front_size":1,"hv":1,"eps":0,"spread":0,"front":[[1,2]]}` + "\n"
	if _, err := ValidateTrace(strings.NewReader(v1)); err != nil {
		t.Fatalf("legacy v1 record rejected: %v", err)
	}
	v2 := strings.Replace(v1, `"ts":1`, `"v":2,"ts":1,"cache_hits":2,"cache_misses":2,"cache_hit_rate":0.5,"arena_occupancy":0.5`, 1)
	if _, err := ValidateTrace(strings.NewReader(v2)); err != nil {
		t.Fatalf("well-formed v2 record rejected: %v", err)
	}
	v3 := strings.Replace(v2, `"v":2`,
		`"v":3,"machine_cache_hits":4,"machine_cache_misses":6,"machine_cache_hit_rate":0.4,"typed_tasks":20,"typed_runs":8`, 1)
	if _, err := ValidateTrace(strings.NewReader(v3)); err != nil {
		t.Fatalf("well-formed v3 record rejected: %v", err)
	}
	v4 := strings.Replace(v3, `"v":3`,
		`"v":4,"phase_ns":[1,2,3,4,5,6,7,8]`, 1)
	if _, err := ValidateTrace(strings.NewReader(v4)); err != nil {
		t.Fatalf("well-formed v4 record rejected: %v", err)
	}
	cases := []struct {
		name, in, wantErr string
	}{
		{"future version", strings.Replace(v1, `"ts":1`, `"v":99,"ts":1`, 1), "unsupported schema version"},
		{"v2 missing cache fields", strings.Replace(v1, `"ts":1`, `"v":2,"ts":1`, 1), "missing cache_hits"},
		{"negative cache counter", strings.Replace(v2, `"cache_hits":2`, `"cache_hits":-1`, 1), "negative cache counters"},
		{"hit rate above one", strings.Replace(v2, `"cache_hit_rate":0.5`, `"cache_hit_rate":1.5`, 1), "outside [0,1]"},
		{"occupancy above one", strings.Replace(v2, `"arena_occupancy":0.5`, `"arena_occupancy":2`, 1), "outside [0,1]"},
		{"v3 missing machine-cache fields", strings.Replace(v2, `"v":2`, `"v":3`, 1), "missing machine_cache_hits"},
		{"negative machine-cache counter", strings.Replace(v3, `"machine_cache_misses":6`, `"machine_cache_misses":-1`, 1), "negative machine-cache counters"},
		{"machine hit rate above one", strings.Replace(v3, `"machine_cache_hit_rate":0.4`, `"machine_cache_hit_rate":1.4`, 1), "outside [0,1]"},
		{"negative typed counter", strings.Replace(v3, `"typed_runs":8`, `"typed_runs":-8`, 1), "negative typed-kernel counters"},
		{"typed runs exceed tasks", strings.Replace(v3, `"typed_runs":8`, `"typed_runs":21`, 1), "exceeds typed_tasks"},
		{"v4 missing phase_ns", strings.Replace(v3, `"v":3`, `"v":4`, 1), "missing phase_ns"},
		{"v4 short phase_ns", strings.Replace(v4, `"phase_ns":[1,2,3,4,5,6,7,8]`, `"phase_ns":[1,2]`, 1), "phase_ns has 2 entries"},
		{"v4 negative phase_ns", strings.Replace(v4, `"phase_ns":[1,2,3,4,5,6,7,8]`, `"phase_ns":[1,2,-3,4,5,6,7,8]`, 1), "negative phase_ns"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateTrace(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("validator accepted invalid trace")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestTraceErrorStructure pins the structured validation-error
// contract: the first violation surfaces as a *TraceError carrying the
// 1-based line number and the record type of the offending record.
func TestTraceErrorStructure(t *testing.T) {
	in := `{"type":"migration","ts":1,"gen":1,"from":0,"to":1,"count":2}` + "\n" +
		`{"type":"migration","ts":2,"from":0}` + "\n"
	_, err := ValidateTrace(strings.NewReader(in))
	var te *TraceError
	if !errors.As(err, &te) {
		t.Fatalf("error %T is not a *TraceError: %v", err, err)
	}
	if te.Line != 2 || te.RecordType != "migration" {
		t.Fatalf("TraceError{Line:%d, RecordType:%q}, want line 2, migration", te.Line, te.RecordType)
	}
	if !strings.Contains(te.Error(), "line 2: migration record:") {
		t.Fatalf("rendered error %q missing location prefix", te.Error())
	}
	_, err = ValidateTrace(strings.NewReader("not json\n"))
	if !errors.As(err, &te) || te.Line != 1 || te.RecordType != "" {
		t.Fatalf("unparseable line: got %v, want *TraceError at line 1 with no record type", err)
	}
}

// errWriter fails after n successful writes.
type errWriter struct{ n int }

func (e *errWriter) Write(p []byte) (int, error) {
	if e.n <= 0 {
		return 0, errors.New("disk full")
	}
	e.n--
	return len(p), nil
}

func TestTraceWriterStickyError(t *testing.T) {
	tw := NewTraceWriter(&errWriter{n: 1}, nil)
	tw.ObserveGeneration(sampleGeneration(1))
	if tw.Err() != nil {
		t.Fatal("first write should succeed")
	}
	tw.ObserveGeneration(sampleGeneration(2))
	if tw.Err() == nil {
		t.Fatal("second write must surface the error")
	}
	tw.ObserveGeneration(sampleGeneration(3)) // dropped, no panic
	if err := tw.Flush(); err == nil {
		t.Fatal("Flush must report the sticky error")
	}
}

func TestTraceWriterGenerationPathAllocationFree(t *testing.T) {
	tw := NewTraceWriter(io.Discard, countingClock(0, 1))
	g := sampleGeneration(1)
	tw.ObserveGeneration(g)
	if n := testing.AllocsPerRun(200, func() { tw.ObserveGeneration(g) }); n != 0 {
		t.Fatalf("trace generation path allocates %.1f per run, want 0", n)
	}
}
