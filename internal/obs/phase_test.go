package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestPhaseStrings(t *testing.T) {
	want := []string{"select", "variation", "cache_probe", "eval",
		"cache_insert", "sort", "archive", "migration"}
	if len(want) != NumPhases {
		t.Fatalf("test covers %d phases, taxonomy has %d", len(want), NumPhases)
	}
	for p, name := range want {
		if got := Phase(p).String(); got != name {
			t.Errorf("Phase(%d).String() = %q, want %q", p, got, name)
		}
	}
	if got := Phase(99).String(); got != "phase(99)" {
		t.Errorf("out-of-range phase String() = %q", got)
	}
}

func TestPhaseTimerNilIsNoOp(t *testing.T) {
	var pt *PhaseTimer
	start := pt.Start()
	if start != 0 {
		t.Fatalf("nil timer Start() = %d, want 0", start)
	}
	pt.Record(PhaseEval, start) // must not panic
	if tot := pt.Totals(); tot != (PhaseTotals{}) {
		t.Fatalf("nil timer Totals() = %v, want zero", tot)
	}
	if cnt := pt.Counts(); cnt != (PhaseTotals{}) {
		t.Fatalf("nil timer Counts() = %v, want zero", cnt)
	}
	var sb strings.Builder
	if err := pt.WriteSummary(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil timer WriteSummary wrote %q, err %v", sb.String(), err)
	}
}

func TestPhaseTimerNilClockCountsButRecordsZero(t *testing.T) {
	pt := NewPhaseTimer(nil)
	s := pt.Start()
	pt.Record(PhaseSort, s)
	if tot := pt.Totals(); tot != (PhaseTotals{}) {
		t.Fatalf("nil-clock timer Totals() = %v, want zero", tot)
	}
	cnt := pt.Counts()
	if cnt[PhaseSort] != 1 {
		t.Fatalf("nil-clock timer Counts()[sort] = %d, want 1", cnt[PhaseSort])
	}
}

func TestPhaseTimerAccumulates(t *testing.T) {
	pt := NewPhaseTimer(countingClock(0, 10))
	for i := 0; i < 3; i++ {
		s := pt.Start()
		pt.Record(PhaseEval, s)
	}
	s := pt.Start()
	pt.Record(PhaseSelect, s)

	tot, cnt := pt.Totals(), pt.Counts()
	if tot[PhaseEval] != 30 || cnt[PhaseEval] != 3 {
		t.Fatalf("eval total/count = %d/%d, want 30/3", tot[PhaseEval], cnt[PhaseEval])
	}
	if tot[PhaseSelect] != 10 || cnt[PhaseSelect] != 1 {
		t.Fatalf("select total/count = %d/%d, want 10/1", tot[PhaseSelect], cnt[PhaseSelect])
	}
	if tot[PhaseSort] != 0 || cnt[PhaseSort] != 0 {
		t.Fatalf("untouched phase nonzero: %d/%d", tot[PhaseSort], cnt[PhaseSort])
	}
}

func TestPhaseTimerConcurrentRecording(t *testing.T) {
	// A shared timer aggregates island goroutines via atomic slot adds:
	// under -race this test also proves the data-race freedom claim.
	pt := NewPhaseTimer(func() int64 { return 0 })
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				pt.Record(PhaseMigration, -5) // fixed 5ns bracket
			}
		}()
	}
	wg.Wait()
	tot, cnt := pt.Totals(), pt.Counts()
	if cnt[PhaseMigration] != workers*each {
		t.Fatalf("migration count = %d, want %d", cnt[PhaseMigration], workers*each)
	}
	if tot[PhaseMigration] != int64(workers*each*5) {
		t.Fatalf("migration total = %d, want %d", tot[PhaseMigration], workers*each*5)
	}
}

func TestPhaseTimerWriteSummary(t *testing.T) {
	pt := NewPhaseTimer(countingClock(0, 1000))
	s := pt.Start()
	pt.Record(PhaseVariation, s)
	s = pt.Start()
	pt.Record(PhaseEval, s)

	var sb strings.Builder
	if err := pt.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != NumPhases+1 {
		t.Fatalf("summary has %d lines, want header + %d phases:\n%s", len(lines), NumPhases, out)
	}
	for _, want := range []string{"phase", "count", "total (ms)", "mean (us)", "share",
		"variation", "50.0%", "eval"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
