package obs

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Phase labels one timed section of the engine's generation loop (the
// phase taxonomy of DESIGN.md §14). Order repair is not a separate
// phase: crossover, order repair, and mutation run fused inside the
// parallel variation fan-out, so their cost lands in PhaseVariation.
type Phase int

const (
	// PhaseSelect is serial parent selection: the per-offspring draws
	// that consume the engine rng in a worker-independent order.
	PhaseSelect Phase = iota
	// PhaseVariation is the parallel crossover + order-repair +
	// mutation fan-out, including the offspring arena draws.
	PhaseVariation
	// PhaseCacheProbe is the serial fitness-memoization probe bracket.
	PhaseCacheProbe
	// PhaseEval is offspring evaluation: the prepare fan-out, the
	// serial machine-cache probe, the parallel simulation, and the
	// serial machine-cache insert.
	PhaseEval
	// PhaseCacheInsert is the serial fitness-memoization insert bracket.
	PhaseCacheInsert
	// PhaseSort is survivor selection over the 2N meta-population:
	// nondominated sort, crowding distance, and the truncated fill.
	PhaseSort
	// PhaseArchive is the ε-dominance archive compaction of the final
	// front (core.Options.ArchiveSize), recorded once per run.
	PhaseArchive
	// PhaseMigration is island ring migration: elite collection and
	// injection (plus, in the asynchronous mode, the ring-edge mailbox
	// wait).
	PhaseMigration
)

// NumPhases is the phase-taxonomy size: the length of PhaseTotals and
// of the v4 trace schema's phase_ns array.
const NumPhases = int(PhaseMigration) + 1

// String returns the phase's canonical snake_case name, used in metric
// names, trace analytics, and profile summaries.
func (p Phase) String() string {
	switch p {
	case PhaseSelect:
		return "select"
	case PhaseVariation:
		return "variation"
	case PhaseCacheProbe:
		return "cache_probe"
	case PhaseEval:
		return "eval"
	case PhaseCacheInsert:
		return "cache_insert"
	case PhaseSort:
		return "sort"
	case PhaseArchive:
		return "archive"
	case PhaseMigration:
		return "migration"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// PhaseTotals is a per-phase value table indexed by Phase. It is a
// fixed-size array passed by value, so handing totals around allocates
// nothing and never aliases live timer state.
type PhaseTotals [NumPhases]int64

// PhaseTimer accumulates wall time per phase on the injected Clock.
// A nil *PhaseTimer is a no-op, so instrumented call sites stay
// branch-cheap when profiling is off; a timer with a nil clock records
// zero durations (but still counts brackets), which keeps benchmarks
// and determinism tests free of ambient time.
//
// Record uses fixed-slot atomic adds: one timer may be shared by every
// island of an island-model run, aggregating their phase time without
// locks and without ever influencing results.
type PhaseTimer struct {
	clock Clock
	ns    [NumPhases]atomic.Int64
	count [NumPhases]atomic.Int64
}

// NewPhaseTimer returns a timer reading the injected clock (nil for a
// constant-zero clock). A timer shared across goroutines — one timer
// for every async island — calls the clock concurrently, so the clock
// must be safe for concurrent use (time.Now-style clocks are).
func NewPhaseTimer(clock Clock) *PhaseTimer {
	return &PhaseTimer{clock: clock}
}

// Start opens a phase bracket and returns its start timestamp. On a nil
// timer (or nil clock) it returns 0.
//
//detlint:hotpath
func (t *PhaseTimer) Start() int64 {
	if t == nil || t.clock == nil {
		return 0
	}
	return t.clock()
}

// Record closes a phase bracket opened by Start, attributing the
// elapsed nanoseconds to p. No-op on a nil timer; allocation-free
// always (two atomic adds into constant slots).
//
//detlint:hotpath
func (t *PhaseTimer) Record(p Phase, start int64) {
	if t == nil {
		return
	}
	var now int64
	if t.clock != nil {
		now = t.clock()
	}
	t.ns[p].Add(now - start)
	t.count[p].Add(1)
}

// Totals returns the accumulated nanoseconds per phase. Safe on a nil
// timer (all zero) and during concurrent recording (each slot is read
// atomically; the table is not a single snapshot).
func (t *PhaseTimer) Totals() PhaseTotals {
	var out PhaseTotals
	if t == nil {
		return out
	}
	for p := range out {
		out[p] = t.ns[p].Load()
	}
	return out
}

// Counts returns the number of recorded brackets per phase, with the
// same nil and concurrency behavior as Totals.
func (t *PhaseTimer) Counts() PhaseTotals {
	var out PhaseTotals
	if t == nil {
		return out
	}
	for p := range out {
		out[p] = t.count[p].Load()
	}
	return out
}

// WriteSummary renders the accumulated profile as an aligned per-phase
// table: bracket count, total milliseconds, mean microseconds, and the
// share of all recorded phase time. A nil timer writes nothing.
func (t *PhaseTimer) WriteSummary(w io.Writer) error {
	if t == nil {
		return nil
	}
	tot := t.Totals()
	cnt := t.Counts()
	var sum int64
	for _, ns := range tot {
		sum += ns
	}
	if _, err := fmt.Fprintf(w, "  %-14s %10s %14s %12s %7s\n",
		"phase", "count", "total (ms)", "mean (us)", "share"); err != nil {
		return err
	}
	for p := Phase(0); int(p) < NumPhases; p++ {
		mean := 0.0
		if cnt[p] > 0 {
			mean = float64(tot[p]) / float64(cnt[p]) / 1e3
		}
		share := 0.0
		if sum > 0 {
			share = 100 * float64(tot[p]) / float64(sum)
		}
		if _, err := fmt.Fprintf(w, "  %-14s %10d %14.3f %12.3f %6.1f%%\n",
			p, cnt[p], float64(tot[p])/1e6, mean, share); err != nil {
			return err
		}
	}
	return nil
}
