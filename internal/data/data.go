// Package data embeds the "real historical data" of the paper's §III-D1:
// ETC and EPC matrices for five benchmark programs (Table II) across nine
// machines designated by CPU (Table I), plus the machine-count breakup of
// the enlarged 30-machine suite (Table III).
//
// The paper reads these values from a 2012 openbenchmarking.org result
// page (ref [20]) that is not reachable from an offline build. The
// matrices below are a documented substitution: hand-constructed values
// with realistic magnitudes for the exact CPUs and programs involved
// (TDP-class average powers, minute-scale execution times, overclocked
// parts faster but hungrier). Every downstream algorithm consumes only
// the heterogeneity structure of these matrices, which the substitution
// preserves; see DESIGN.md §3.
package data

import "tradeoff/internal/hcs"

// Machine names, Table I order.
var MachineNames = []string{
	"AMD A8-3870K",
	"AMD FX-8150",
	"Intel Core i3 2120",
	"Intel Core i5 2400S",
	"Intel Core i5 2500K",
	"Intel Core i7 3960X",
	"Intel Core i7 3960X @ 4.2 GHz",
	"Intel Core i7 3770K",
	"Intel Core i7 3770K @ 4.3 GHz",
}

// Program names, Table II order.
var TaskNames = []string{
	"C-Ray",
	"7-Zip Compression",
	"Warsow",
	"Unigine Heaven",
	"Timed Linux Kernel Compilation",
}

// realETC holds average execution time in seconds; rows are task types
// (Table II order), columns machines (Table I order).
var realETC = [][]float64{
	{140, 90, 160, 110, 95, 45, 40, 65, 58},       // C-Ray
	{220, 150, 230, 180, 160, 85, 78, 120, 110},   // 7-Zip
	{95, 80, 88, 72, 62, 50, 46, 52, 48},          // Warsow
	{130, 115, 120, 105, 92, 76, 70, 80, 74},      // Unigine Heaven
	{520, 300, 420, 330, 290, 150, 138, 210, 192}, // kernel compile
}

// realEPC holds average system power draw in watts under each workload.
var realEPC = [][]float64{
	{142, 180, 95, 98, 125, 195, 230, 120, 150},   // C-Ray
	{135, 170, 92, 95, 118, 185, 215, 112, 140},   // 7-Zip
	{150, 190, 110, 112, 135, 200, 235, 130, 158}, // Warsow
	{155, 195, 115, 115, 138, 205, 240, 133, 160}, // Unigine Heaven
	{138, 175, 94, 96, 122, 190, 225, 116, 145},   // kernel compile
}

// RealETC returns a copy of the 5×9 ETC matrix (seconds).
func RealETC() hcs.Matrix {
	m, err := hcs.MatrixFromRows(copyRows(realETC))
	if err != nil {
		panic(err) // static data; cannot fail
	}
	return m
}

// RealEPC returns a copy of the 5×9 EPC matrix (watts).
func RealEPC() hcs.Matrix {
	m, err := hcs.MatrixFromRows(copyRows(realEPC))
	if err != nil {
		panic(err)
	}
	return m
}

func copyRows(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = append([]float64(nil), r...)
	}
	return out
}

// RealSystem returns the paper's data set 1 environment: the nine
// benchmark machines (one instance per machine type, all general
// purpose) and the five benchmark task types.
func RealSystem() *hcs.System {
	s := &hcs.System{
		ETC: RealETC(),
		EPC: RealEPC(),
	}
	for _, name := range MachineNames {
		s.MachineTypes = append(s.MachineTypes, hcs.MachineType{Name: name, Category: hcs.GeneralPurpose})
	}
	for _, name := range TaskNames {
		s.TaskTypes = append(s.TaskTypes, hcs.TaskType{Name: name, Category: hcs.GeneralPurpose})
	}
	for i := range MachineNames {
		s.Machines = append(s.Machines, hcs.Machine{ID: i, Type: i})
	}
	if err := s.Validate(); err != nil {
		panic("data: RealSystem invalid: " + err.Error())
	}
	return s
}

// MachineCount pairs a machine type name with its instance count in the
// enlarged suite.
type MachineCount struct {
	Name  string
	Count int
}

// TableIII returns the machine-to-machine-type breakup of the paper's
// Table III: four special-purpose machine types with one instance each
// and 26 general-purpose machines across the nine real machine types,
// for a total of 30 machines over 13 machine types.
func TableIII() []MachineCount {
	return []MachineCount{
		{"Special-purpose machine A", 1},
		{"Special-purpose machine B", 1},
		{"Special-purpose machine C", 1},
		{"Special-purpose machine D", 1},
		{"AMD A8-3870K", 2},
		{"AMD FX-8150", 3},
		{"Intel Core i3 2120", 3},
		{"Intel Core i5 2400S", 3},
		{"Intel Core i5 2500K", 2},
		{"Intel Core i7 3960X", 4},
		{"Intel Core i7 3960X @ 4.2 GHz", 2},
		{"Intel Core i7 3770K", 5},
		{"Intel Core i7 3770K @ 4.3 GHz", 2},
	}
}

// TotalMachinesTableIII is the machine-instance total of Table III.
const TotalMachinesTableIII = 30

// NumSpecialPurposeTypes is the number of special-purpose machine types
// in the enlarged data sets (machines A–D of Table III).
const NumSpecialPurposeTypes = 4

// NumSyntheticTaskTypes is the number of additional task types created
// for data sets 2 and 3 (25 synthetic + 5 real = 30 total).
const NumSyntheticTaskTypes = 25
