package data

import (
	"testing"

	"tradeoff/internal/stats"
)

func TestRealSystemValid(t *testing.T) {
	s := RealSystem()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumMachineTypes() != 9 || s.NumTaskTypes() != 5 || s.NumMachines() != 9 {
		t.Fatalf("dimensions: %d machine types, %d task types, %d machines",
			s.NumMachineTypes(), s.NumTaskTypes(), s.NumMachines())
	}
}

func TestRealMatricesAreCopies(t *testing.T) {
	a := RealETC()
	a.Set(0, 0, 1)
	b := RealETC()
	if b.At(0, 0) == 1 {
		t.Fatal("RealETC returns shared storage")
	}
}

func TestMachineAndTaskNameCounts(t *testing.T) {
	if len(MachineNames) != 9 {
		t.Fatalf("Table I has %d machines, want 9", len(MachineNames))
	}
	if len(TaskNames) != 5 {
		t.Fatalf("Table II has %d programs, want 5", len(TaskNames))
	}
}

func TestOverclockedPartsFasterAndHungrier(t *testing.T) {
	etc, epc := RealETC(), RealEPC()
	// Column 5 = i7-3960X stock, 6 = overclocked; 7 = 3770K stock, 8 = OC.
	for tt := 0; tt < etc.Rows(); tt++ {
		if !(etc.At(tt, 6) < etc.At(tt, 5)) {
			t.Errorf("task %d: OC 3960X not faster than stock", tt)
		}
		if !(epc.At(tt, 6) > epc.At(tt, 5)) {
			t.Errorf("task %d: OC 3960X not hungrier than stock", tt)
		}
		if !(etc.At(tt, 8) < etc.At(tt, 7)) {
			t.Errorf("task %d: OC 3770K not faster than stock", tt)
		}
		if !(epc.At(tt, 8) > epc.At(tt, 7)) {
			t.Errorf("task %d: OC 3770K not hungrier than stock", tt)
		}
	}
}

func TestHeterogeneityIsPresent(t *testing.T) {
	// The benchmark data must be machine-heterogeneous: the CV of each
	// task's row should be clearly nonzero.
	etc := RealETC()
	for tt := 0; tt < etc.Rows(); tt++ {
		h, err := stats.MeasureHeterogeneity(etc.Row(tt))
		if err != nil {
			t.Fatal(err)
		}
		if h.CV < 0.1 {
			t.Errorf("task %d row CV = %v, too homogeneous for a heterogeneity study", tt, h.CV)
		}
	}
}

func TestMachineTypeAffinityFlips(t *testing.T) {
	// §III-B: machine type A may be faster than B for some task types but
	// slower for others. Verify at least one such flip exists in the data.
	etc := RealETC()
	flips := 0
	for a := 0; a < etc.Cols(); a++ {
		for b := a + 1; b < etc.Cols(); b++ {
			faster, slower := false, false
			for tt := 0; tt < etc.Rows(); tt++ {
				switch {
				case etc.At(tt, a) < etc.At(tt, b):
					faster = true
				case etc.At(tt, a) > etc.At(tt, b):
					slower = true
				}
			}
			if faster && slower {
				flips++
			}
		}
	}
	if flips == 0 {
		t.Fatal("no machine pair exhibits task-dependent relative performance")
	}
}

func TestTableIII(t *testing.T) {
	rows := TableIII()
	if len(rows) != 13 {
		t.Fatalf("Table III has %d machine types, want 13", len(rows))
	}
	total := 0
	special := 0
	for _, r := range rows {
		if r.Count <= 0 {
			t.Errorf("machine type %q has non-positive count", r.Name)
		}
		total += r.Count
		if r.Count == 1 && len(r.Name) > 7 && r.Name[:7] == "Special" {
			special++
		}
	}
	if total != TotalMachinesTableIII {
		t.Fatalf("Table III total = %d, want %d", total, TotalMachinesTableIII)
	}
	if special != NumSpecialPurposeTypes {
		t.Fatalf("Table III special-purpose machines = %d, want %d", special, NumSpecialPurposeTypes)
	}
}

func TestTableIIIIncludesAllRealMachines(t *testing.T) {
	rows := TableIII()
	byName := map[string]bool{}
	for _, r := range rows {
		byName[r.Name] = true
	}
	for _, name := range MachineNames {
		if !byName[name] {
			t.Errorf("Table III missing real machine type %q", name)
		}
	}
}
