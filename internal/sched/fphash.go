package sched

// Deterministic fingerprint primitives shared by the evaluation layer's
// machine-bucket signatures and the NSGA-II engine's whole-chromosome
// fingerprints (internal/nsga2 builds its four-lane genotype hash from
// these same constants). The mixing is splitmix-style — xor-multiply
// absorption with the splitmix64 finalizer — built from compile-time
// constants only: no hash/maphash (whose per-process seed would make
// cache behaviour differ between runs) and no other runtime-seeded
// state, so fingerprints are bit-identical across processes, platforms,
// and worker counts.

const (
	// FPGamma is the splitmix64 increment ("golden gamma"); fingerprint
	// lane seeds are its weyl-sequence multiples, mixed.
	FPGamma = 0x9e3779b97f4a7c15
	// FPMul1/FPMul2 are the splitmix64 finalizer multipliers; FPMul1
	// doubles as the per-element absorption multiplier.
	FPMul1 = 0xbf58476d1ce4e5b9
	FPMul2 = 0x94d049bb133111eb
)

// Mix64 is the splitmix64 finalizer: an invertible avalanche over all 64
// bits.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * FPMul1
	z = (z ^ (z >> 27)) * FPMul2
	return z ^ (z >> 31)
}

// PackSlot packs one task's placement into the execution-order slot
// format the machine-major kernel consumes: machine assignment (shifted
// so Dropped packs to zero) in the high half, task id in the low half.
// An execution-order slot array maps global scheduling order o to
// PackSlot(machine, task) of the task scheduled o-th; dropped tasks are
// recognized by a zero high half.
func PackSlot(machine int32, task int) uint64 {
	return uint64(uint32(machine+1))<<32 | uint64(uint32(task))
}
