package sched

import (
	"math"
	"sort"
	"testing"

	"tradeoff/internal/data"
	"tradeoff/internal/rng"
	"tradeoff/internal/workload"
)

// referenceEvaluate is an independent, deliberately naive implementation
// of the schedule semantics, used as a differential-testing oracle for
// Session.Evaluate: build each machine's queue explicitly, sort it by
// global order, and walk it accumulating start/completion times.
func referenceEvaluate(e *Evaluator, a *Allocation) Evaluation {
	type queued struct {
		task  int
		order int
	}
	queues := make(map[int][]queued)
	for i := 0; i < a.Len(); i++ {
		m := int(a.Machine[i])
		if m == Dropped {
			continue
		}
		queues[m] = append(queues[m], queued{task: i, order: int(a.Order[i])})
	}
	var ev Evaluation
	tasks := e.Trace().Tasks
	// Accumulate in ascending machine order so the float sums are
	// reproducible; map iteration order would reassociate them.
	machines := make([]int, 0, len(queues))
	for m := range queues {
		machines = append(machines, m)
	}
	sort.Ints(machines)
	for _, m := range machines {
		q := queues[m]
		sort.Slice(q, func(x, y int) bool { return q[x].order < q[y].order })
		clock := 0.0
		for _, item := range q {
			task := tasks[item.task]
			start := math.Max(clock, task.Arrival)
			completion := start + e.ETCInstance(task.Type, m)
			clock = completion
			ev.Utility += task.TUF.Value(completion - task.Arrival)
			ev.Energy += e.EECInstance(task.Type, m)
			ev.Makespan = math.Max(ev.Makespan, completion)
			ev.Completed++
		}
	}
	return ev
}

func TestEvaluateAgainstReferenceImplementation(t *testing.T) {
	sys := data.RealSystem()
	for _, n := range []int{1, 2, 10, 80, 250} {
		tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: n, Window: 600}, rng.New(uint64(100+n)))
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEvaluator(sys, tr)
		if err != nil {
			t.Fatal(err)
		}
		sess := e.NewSession()
		src := rng.New(uint64(200 + n))
		for trial := 0; trial < 30; trial++ {
			a := e.RandomAllocation(src)
			got := sess.Evaluate(a)
			want := referenceEvaluate(e, a)
			if math.Abs(got.Utility-want.Utility) > 1e-9 ||
				math.Abs(got.Energy-want.Energy) > 1e-9 ||
				math.Abs(got.Makespan-want.Makespan) > 1e-9 ||
				got.Completed != want.Completed {
				t.Fatalf("n=%d trial %d: fast %+v vs reference %+v", n, trial, got, want)
			}
		}
	}
}

func TestEvaluateAgainstReferenceWithDrops(t *testing.T) {
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: 60, Window: 300}, rng.New(301))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	e.AllowDropping = true
	sess := e.NewSession()
	src := rng.New(302)
	for trial := 0; trial < 20; trial++ {
		a := e.RandomAllocation(src)
		for i := 0; i < a.Len(); i++ {
			if src.Bool(0.3) {
				a.Machine[i] = Dropped
			}
		}
		got := sess.Evaluate(a)
		want := referenceEvaluate(e, a)
		if math.Abs(got.Utility-want.Utility) > 1e-9 || math.Abs(got.Energy-want.Energy) > 1e-9 ||
			got.Completed != want.Completed {
			t.Fatalf("trial %d: fast %+v vs reference %+v", trial, got, want)
		}
	}
}

func TestEvaluateAgainstReferenceOnEnlargedSystem(t *testing.T) {
	// The special-purpose machine paths (Incapable entries) must agree
	// too; use a capability-respecting random allocation.
	sys := data.RealSystem()
	// Build a minimal special-purpose system by hand to avoid importing
	// datagen (cycle-free but heavier); reuse the tiny system style.
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: 150, Window: 900, Arrival: workload.PoissonArrivals}, rng.New(303))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	sess := e.NewSession()
	src := rng.New(304)
	for trial := 0; trial < 20; trial++ {
		a := e.RandomAllocation(src)
		got := sess.Evaluate(a)
		want := referenceEvaluate(e, a)
		if math.Abs(got.Utility-want.Utility) > 1e-9 || math.Abs(got.Energy-want.Energy) > 1e-9 {
			t.Fatalf("trial %d mismatch", trial)
		}
	}
}
