package sched

import (
	"math"
	"slices"
	"testing"

	"tradeoff/internal/data"
	"tradeoff/internal/rng"
	"tradeoff/internal/workload"
)

// deltaEval builds an evaluator over the real system with n tasks.
func deltaEval(t testing.TB, n int, seed uint64) *Evaluator {
	t.Helper()
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: n, Window: 600}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func evaluationsClose(a, b Evaluation) bool {
	near := func(x, y float64) bool {
		diff := math.Abs(x - y)
		scale := math.Max(math.Abs(x), math.Abs(y))
		return diff <= 1e-9 || diff <= 1e-12*scale
	}
	return near(a.Utility, b.Utility) && near(a.Energy, b.Energy) &&
		near(a.Makespan, b.Makespan) && a.Completed == b.Completed
}

// TestEvaluateFullMatchesSession cross-checks the machine-major kernel
// against the task-major Session sweep. The two sum the same per-task
// terms in different orders, so they agree to rounding, not bitwise.
func TestEvaluateFullMatchesSession(t *testing.T) {
	for _, cfg := range []struct {
		n        int
		idle     bool
		dropping bool
	}{
		{40, false, false}, {40, true, false}, {40, false, true}, {40, true, true},
		{250, false, false}, {250, true, true},
	} {
		e := deltaEval(t, cfg.n, uint64(1000+cfg.n))
		if cfg.idle {
			watts := make([]float64, e.System().NumMachineTypes())
			for i := range watts {
				watts[i] = 5 + float64(i)
			}
			if err := e.SetIdlePower(watts); err != nil {
				t.Fatal(err)
			}
		}
		e.AllowDropping = cfg.dropping
		sess := e.NewSession()
		ds := e.NewDeltaSession()
		contribs := e.NewContribs()
		src := rng.New(uint64(7 + cfg.n))
		for trial := 0; trial < 25; trial++ {
			a := e.RandomAllocation(src)
			if cfg.dropping {
				for i := 0; i < a.Len(); i++ {
					if src.Bool(0.2) {
						a.Machine[i] = Dropped
					}
				}
			}
			want := sess.Evaluate(a)
			got := ds.EvaluateFull(a, contribs)
			if !evaluationsClose(got, want) {
				t.Fatalf("n=%d idle=%v drop=%v trial %d: full %+v vs session %+v",
					cfg.n, cfg.idle, cfg.dropping, trial, got, want)
			}
		}
	}
}

// mutateAlloc applies the engine's mutation operator semantics and
// returns the dirtied machines: reassign one gene to a random eligible
// machine (or drop it), and swap two genes' global orders.
func mutateAlloc(e *Evaluator, a *Allocation, src *rng.Source, dirty []bool, allowDrop bool) {
	n := a.Len()
	g := src.Intn(n)
	if old := a.Machine[g]; old >= 0 {
		dirty[old] = true
	}
	if allowDrop && src.Bool(0.3) {
		a.Machine[g] = Dropped
	} else {
		el := e.Eligible(int(e.taskType[g]))
		a.Machine[g] = int32(el[src.Intn(len(el))])
		dirty[a.Machine[g]] = true
	}
	x, y := src.Intn(n), src.Intn(n)
	a.Order[x], a.Order[y] = a.Order[y], a.Order[x]
	if m := a.Machine[x]; m >= 0 {
		dirty[m] = true
	}
	if m := a.Machine[y]; m >= 0 {
		dirty[m] = true
	}
}

// crossAlloc applies the engine's segment-swap crossover with re-rank
// repair to two allocations in place, marking the candidate-dirty
// machines of both children (the same set: every machine present in the
// swapped segment of either side).
func crossAlloc(a, b *Allocation, src *rng.Source, dirty []bool) {
	n := a.Len()
	i, j := src.Intn(n), src.Intn(n)
	if i > j {
		i, j = j, i
	}
	for k := i; k <= j; k++ {
		a.Machine[k], b.Machine[k] = b.Machine[k], a.Machine[k]
		a.Order[k], b.Order[k] = b.Order[k], a.Order[k]
		if m := a.Machine[k]; m >= 0 {
			dirty[m] = true
		}
		if m := b.Machine[k]; m >= 0 {
			dirty[m] = true
		}
	}
	repairRerank(a.Order)
	repairRerank(b.Order)
}

// repairRerank mirrors the engine's re-rank repair: rank genes by
// (order value, gene index).
func repairRerank(ord []int32) {
	n := len(ord)
	keys := make([]int, n)
	for i, v := range ord {
		keys[i] = int(v)*n + i
	}
	slices.Sort(keys)
	for pos, key := range keys {
		ord[key%n] = int32(pos)
	}
}

// runDeltaSequence drives a random variation sequence, checking after
// every step that EvaluateDelta against the previous step's cache is
// bit-identical to EvaluateFull.
func runDeltaSequence(t *testing.T, e *Evaluator, seed uint64, steps int, allowDrop bool) {
	t.Helper()
	e.AllowDropping = e.AllowDropping || allowDrop
	src := rng.New(seed)
	ds := e.NewDeltaSession()
	nm := e.NumMachines()

	cur := e.RandomAllocation(src)
	other := e.RandomAllocation(src)
	parent := e.NewContribs()
	child := e.NewContribs()
	full := e.NewContribs()
	ds.EvaluateFull(cur, parent)
	dirty := make([]bool, nm)

	for s := 0; s < steps; s++ {
		for m := range dirty {
			dirty[m] = false
		}
		// Alternate crossover-style and mutation-style edits, sometimes
		// both, mirroring the engine's variation pipeline.
		next := cur.Clone()
		if src.Bool(0.6) {
			crossAlloc(next, other, src, dirty)
		}
		if src.Bool(0.5) {
			mutateAlloc(e, next, src, dirty, allowDrop)
		}
		got := ds.EvaluateDelta(next, parent, dirty, child)
		want := ds.EvaluateFull(next, full)
		if got != want {
			t.Fatalf("step %d: delta %+v != full %+v (dirty %v)", s, got, want, dirty)
		}
		for m := 0; m < nm; m++ {
			if child.Utility[m] != full.Utility[m] || child.Energy[m] != full.Energy[m] ||
				child.Busy[m] != full.Busy[m] || child.Ready[m] != full.Ready[m] ||
				child.Done[m] != full.Done[m] {
				t.Fatalf("step %d machine %d: delta row diverged from full", s, m)
			}
		}
		cur, other = next, cur
		parent, child = child, parent
	}
}

// TestEvaluateDeltaBitIdenticalToFull is the core incremental-evaluation
// property: over random crossover/mutation sequences, with idle power
// and dropping both on and off, the delta path must reproduce the full
// machine-major evaluation bit for bit.
func TestEvaluateDeltaBitIdenticalToFull(t *testing.T) {
	for _, n := range []int{1, 7, 60, 250} {
		for _, idle := range []bool{false, true} {
			for _, drop := range []bool{false, true} {
				e := deltaEval(t, n, uint64(40+n))
				if idle {
					watts := make([]float64, e.System().NumMachineTypes())
					for i := range watts {
						watts[i] = 2 * float64(i+1)
					}
					if err := e.SetIdlePower(watts); err != nil {
						t.Fatal(err)
					}
				}
				runDeltaSequence(t, e, uint64(n)*31+7, 40, drop)
			}
		}
	}
}

// TestEvaluateDeltaFallsBackWithoutParent checks the structural
// fallbacks: an invalid or aliased parent cache must route to a full
// evaluation rather than inherit garbage.
func TestEvaluateDeltaFallsBackWithoutParent(t *testing.T) {
	e := deltaEval(t, 30, 9)
	ds := e.NewDeltaSession()
	src := rng.New(11)
	a := e.RandomAllocation(src)
	dirty := make([]bool, e.NumMachines())

	dst := e.NewContribs()
	want := ds.EvaluateFull(a, e.NewContribs())
	if got := ds.EvaluateDelta(a, nil, dirty, dst); got != want {
		t.Fatalf("nil parent: %+v != %+v", got, want)
	}
	stale := e.NewContribs()
	stale.Invalidate()
	if got := ds.EvaluateDelta(a, stale, dirty, dst); got != want {
		t.Fatalf("invalid parent: %+v != %+v", got, want)
	}
	// Self-aliased parent/dst must not read rows it is overwriting.
	self := e.NewContribs()
	ds.EvaluateFull(a, self)
	b := a.Clone()
	mutateAlloc(e, b, src, dirty, false)
	if got, wantB := ds.EvaluateDelta(b, self, dirty, self), ds.EvaluateFull(b, e.NewContribs()); got != wantB {
		t.Fatalf("aliased dst: %+v != %+v", got, wantB)
	}
}

// FuzzEvaluateDelta drives arbitrary-seeded variation sequences through
// the delta-vs-full cross-check.
func FuzzEvaluateDelta(f *testing.F) {
	f.Add(uint64(1), uint8(20), false, false)
	f.Add(uint64(99), uint8(60), true, true)
	f.Add(uint64(3), uint8(1), true, false)
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, idle, drop bool) {
		n := 1 + int(nRaw)%120
		e := deltaEval(t, n, seed|1)
		if idle {
			watts := make([]float64, e.System().NumMachineTypes())
			for i := range watts {
				watts[i] = float64(i%7) + 0.5
			}
			if err := e.SetIdlePower(watts); err != nil {
				t.Fatal(err)
			}
		}
		runDeltaSequence(t, e, seed^0x9e3779b97f4a7c15, 12, drop)
	})
}
