package sched

import (
	"testing"

	"tradeoff/internal/data"
	"tradeoff/internal/rng"
	"tradeoff/internal/workload"
)

func dropEval(t *testing.T, tasks int, window float64) *Evaluator {
	t.Helper()
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: tasks, Window: window}, rng.New(81))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDropNegligibleInvariants(t *testing.T) {
	// A heavily overloaded instance (many tasks, short window) so that
	// late tasks earn zero utility and are droppable.
	e := dropEval(t, 300, 60)
	src := rng.New(82)
	for trial := 0; trial < 10; trial++ {
		a := e.RandomAllocation(src)
		base := e.Evaluate(a)
		dropped, ev := DropNegligible(e, a, 0)
		if err := e.Validate(dropped); err != nil {
			t.Fatal(err)
		}
		if ev.Energy > base.Energy+1e-9 {
			t.Fatalf("dropping increased energy: %v -> %v", base.Energy, ev.Energy)
		}
		if ev.Utility < base.Utility-1e-9 {
			t.Fatalf("dropping zero-utility tasks lost utility: %v -> %v", base.Utility, ev.Utility)
		}
	}
}

func TestDropNegligibleActuallyDrops(t *testing.T) {
	e := dropEval(t, 300, 60)
	a := e.RandomAllocation(rng.New(83))
	dropped, ev := DropNegligible(e, a, 0)
	n := 0
	for _, m := range dropped.Machine {
		if m == Dropped {
			n++
		}
	}
	if n == 0 {
		t.Fatal("overloaded instance should have droppable tasks")
	}
	if ev.Completed != a.Len()-n {
		t.Fatalf("Completed %d inconsistent with %d drops of %d", ev.Completed, n, a.Len())
	}
}

func TestDropNegligibleNoopWhenAllUseful(t *testing.T) {
	// Deterministic scenario: the hand-built tiny instance from
	// sched_test.go, whose three tasks all earn strictly positive
	// utility under the arrival-order allocation.
	e := newEval(t)
	a := &Allocation{Machine: []int32{0, 0, 0}, Order: []int32{0, 1, 2}}
	dropped, ev := DropNegligible(e, a, 0)
	for i, m := range dropped.Machine {
		if m == Dropped {
			t.Fatalf("task %d dropped despite positive utility", i)
		}
	}
	if ev != e.Evaluate(a) {
		t.Fatal("no-op drop changed the evaluation")
	}
}

func TestDropNegligibleThreshold(t *testing.T) {
	e := dropEval(t, 150, 120)
	a := e.RandomAllocation(rng.New(85))
	_, evLow := DropNegligible(e, a, 0)
	_, evHigh := DropNegligible(e, a, 1.0)
	// A higher threshold can only drop a superset of tasks.
	if evHigh.Completed > evLow.Completed {
		t.Fatalf("higher threshold dropped fewer tasks: %d vs %d", evHigh.Completed, evLow.Completed)
	}
	if evHigh.Energy > evLow.Energy+1e-9 {
		t.Fatalf("higher threshold used more energy")
	}
}

func TestDropNegligibleDoesNotMutateInput(t *testing.T) {
	e := dropEval(t, 100, 60)
	a := e.RandomAllocation(rng.New(86))
	before := append([]int32(nil), a.Machine...)
	DropNegligible(e, a, 0)
	for i := range before {
		if a.Machine[i] != before[i] {
			t.Fatal("input allocation mutated")
		}
	}
}
