// Package sched defines resource allocations and evaluates them against a
// system and trace, producing the two objective values of the paper's
// §IV-B: total utility earned (Eq. 1) and total energy consumed (Eq. 3).
//
// An Allocation is the phenotype of an NSGA-II chromosome: for every task
// in the trace it holds the machine instance the task executes on and the
// task's global scheduling order. Each machine executes its tasks in
// increasing global order; if the next task has not yet arrived the
// machine idles until the arrival (§IV-D).
package sched

import (
	"fmt"

	"tradeoff/internal/hcs"
	"tradeoff/internal/rng"
	"tradeoff/internal/utility"
	"tradeoff/internal/workload"
)

// Dropped is the machine value of a task that is deliberately not
// executed (the paper's future-work task-dropping extension). Dropped
// tasks consume no energy and earn no utility. Evaluators reject dropped
// tasks unless AllowDropping is set.
const Dropped = -1

// Allocation maps every task of a trace to a machine and a global
// scheduling order. Order must be a permutation of [0, T).
type Allocation struct {
	Machine []int32
	Order   []int32
}

// NewAllocation returns a zero-valued allocation for n tasks with
// identity order.
func NewAllocation(n int) *Allocation {
	a := &Allocation{Machine: make([]int32, n), Order: make([]int32, n)}
	for i := range a.Order {
		a.Order[i] = int32(i)
	}
	return a
}

// Len returns the number of tasks covered by the allocation.
func (a *Allocation) Len() int { return len(a.Machine) }

// Clone returns a deep copy.
func (a *Allocation) Clone() *Allocation {
	return &Allocation{
		Machine: append([]int32(nil), a.Machine...),
		Order:   append([]int32(nil), a.Order...),
	}
}

// CopyFrom overwrites a with src's genes, reusing a's backing arrays
// when they have sufficient capacity. Recycled allocations combined with
// CopyFrom let hot loops (the NSGA-II variation phase) produce offspring
// without per-generation allocation.
func (a *Allocation) CopyFrom(src *Allocation) {
	a.Machine = append(a.Machine[:0], src.Machine...)
	a.Order = append(a.Order[:0], src.Order...)
}

// Evaluation is the outcome of simulating an allocation.
type Evaluation struct {
	// Utility is the total utility earned, U = Σ Υ(t).
	Utility float64
	// Energy is the total energy consumed in joules, E = Σ EEC.
	Energy float64
	// Makespan is the time the last task completes.
	Makespan float64
	// Completed is the number of executed (non-dropped) tasks.
	Completed int
}

// EnergyMegajoules returns the energy objective in MJ, the unit of the
// paper's figures.
func (ev Evaluation) EnergyMegajoules() float64 { return ev.Energy / 1e6 }

// Evaluator simulates allocations for a fixed system and trace. It is
// safe for concurrent use by multiple goroutines once constructed, as
// long as each goroutine passes its own scratch buffers via Evaluate
// (the evaluator itself is read-only); use NewSession for a reusable
// per-goroutine scratch.
type Evaluator struct {
	sys   *hcs.System
	trace *workload.Trace
	// AllowDropping permits Machine[i] == Dropped.
	AllowDropping bool
	// idleWatts, when non-nil, holds per-machine-instance idle power
	// draw; see SetIdlePower.
	idleWatts []float64

	// eec[t][m] caches EEC of task-type t on machine instance m
	// (Incapable where not executable).
	eec [][]float64
	// etc[t][m] caches ETC of task-type t on machine instance m.
	etc [][]float64
	// etcT and eecT are the machine-major transposes [m][t], so the
	// machine-major kernel walks one row per machine.
	etcT [][]float64
	eecT [][]float64
	// eligible[t] lists machine instances capable of task type t.
	eligible [][]int

	// Per-task flattened trace data for the evaluation hot loops: task
	// type, arrival time, and the compiled time-utility functions (one
	// table entry per task, bit-identical to Task.TUF.Value).
	taskType []int32
	arrival  []float64
	tufs     *utility.Table
	// tufTailT and tufTailV mirror the compiled TUF table's per-task
	// tail guard (threshold and past-threshold value), hoisted into flat
	// arrays so the typed kernel resolves the common saturated case
	// without a Table.Value call. Substituting tufTailV past tufTailT is
	// bit-identical to Value by the Table accessors' contract.
	tufTailT []float64
	tufTailV []float64
	// meta interleaves the four per-task hot-loop fields into one
	// 32-byte record so the simulation kernels touch a single cache
	// line per task instead of gathering from four parallel arrays.
	meta []taskMeta
}

// taskMeta is the per-task record of everything the machine-major
// simulation kernels read: arrival time, hoisted TUF tail guard, and
// task type. Sized and padded to 32 bytes — two records per cache line.
type taskMeta struct {
	arrival float64
	tailT   float64
	tailV   float64
	ty      int32
	_       int32
}

// NewEvaluator validates the trace against the system and precomputes
// per-instance ETC/EEC tables.
func NewEvaluator(sys *hcs.System, trace *workload.Trace) (*Evaluator, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("sched: invalid system: %w", err)
	}
	if err := trace.Validate(sys); err != nil {
		return nil, fmt.Errorf("sched: invalid trace: %w", err)
	}
	e := &Evaluator{sys: sys, trace: trace}
	nt, nm := sys.NumTaskTypes(), sys.NumMachines()
	e.eec = make([][]float64, nt)
	e.etc = make([][]float64, nt)
	e.eligible = make([][]int, nt)
	for t := 0; t < nt; t++ {
		e.eec[t] = make([]float64, nm)
		e.etc[t] = make([]float64, nm)
		for m := 0; m < nm; m++ {
			mu := sys.MachineTypeOf(m)
			e.etc[t][m] = sys.ETC.At(t, mu)
			e.eec[t][m] = sys.EEC(t, mu)
		}
		e.eligible[t] = sys.EligibleMachines(t)
	}
	e.etcT = make([][]float64, nm)
	e.eecT = make([][]float64, nm)
	for m := 0; m < nm; m++ {
		e.etcT[m] = make([]float64, nt)
		e.eecT[m] = make([]float64, nt)
		for t := 0; t < nt; t++ {
			e.etcT[m][t] = e.etc[t][m]
			e.eecT[m][t] = e.eec[t][m]
		}
	}
	n := trace.NumTasks()
	e.taskType = make([]int32, n)
	e.arrival = make([]float64, n)
	e.tufs = utility.NewTable(n, 2*n)
	for i := range trace.Tasks {
		task := &trace.Tasks[i]
		e.taskType[i] = int32(task.Type)
		e.arrival[i] = task.Arrival
		if _, err := e.tufs.Add(task.TUF); err != nil {
			return nil, fmt.Errorf("sched: task %d TUF: %w", i, err)
		}
	}
	e.tufTailT = make([]float64, n)
	e.tufTailV = make([]float64, n)
	for i := 0; i < n; i++ {
		e.tufTailT[i] = e.tufs.TailThreshold(i)
		e.tufTailV[i] = e.tufs.TailValue(i)
	}
	e.meta = make([]taskMeta, n)
	for i := 0; i < n; i++ {
		e.meta[i] = taskMeta{
			arrival: e.arrival[i],
			tailT:   e.tufTailT[i],
			tailV:   e.tufTailV[i],
			ty:      e.taskType[i],
		}
	}
	return e, nil
}

// System returns the evaluator's system.
func (e *Evaluator) System() *hcs.System { return e.sys }

// Trace returns the evaluator's trace.
func (e *Evaluator) Trace() *workload.Trace { return e.trace }

// NumTasks returns the trace length.
func (e *Evaluator) NumTasks() int { return e.trace.NumTasks() }

// NumMachines returns the machine-instance count.
func (e *Evaluator) NumMachines() int { return e.sys.NumMachines() }

// ETCInstance returns the execution time of task type t on machine
// instance m.
func (e *Evaluator) ETCInstance(t, m int) float64 { return e.etc[t][m] }

// EECInstance returns the energy of task type t on machine instance m.
func (e *Evaluator) EECInstance(t, m int) float64 { return e.eec[t][m] }

// Eligible returns the machine instances capable of executing task type
// t. The returned slice is shared; callers must not modify it.
func (e *Evaluator) Eligible(t int) []int { return e.eligible[t] }

// Validate checks that an allocation is structurally sound for this
// evaluator: correct length, machines in range and capable (or Dropped if
// permitted), and Order a permutation.
func (e *Evaluator) Validate(a *Allocation) error {
	n := e.NumTasks()
	if len(a.Machine) != n || len(a.Order) != n {
		return fmt.Errorf("sched: allocation covers %d/%d tasks, trace has %d", len(a.Machine), len(a.Order), n)
	}
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		m := a.Machine[i]
		if m == Dropped {
			if !e.AllowDropping {
				return fmt.Errorf("sched: task %d dropped but dropping is not enabled", i)
			}
		} else {
			if m < 0 || int(m) >= e.NumMachines() {
				return fmt.Errorf("sched: task %d assigned machine %d out of range", i, m)
			}
			tt := e.trace.Tasks[i].Type
			if !e.sys.CapableMachine(tt, int(m)) {
				return fmt.Errorf("sched: task %d (type %d) assigned incapable machine %d", i, tt, m)
			}
		}
		o := int(a.Order[i])
		if o < 0 || o >= n {
			return fmt.Errorf("sched: task %d order %d out of range", i, o)
		}
		if seen[o] {
			return fmt.Errorf("sched: order %d assigned twice", o)
		}
		seen[o] = true
	}
	return nil
}

// SetIdlePower enables the idle-energy extension: machine instances of
// machine type mu draw wattsByType[mu] watts whenever they sit idle
// between time 0 and their last task's completion. The paper's base
// model charges only execution energy (Eq. 3); idle power makes energy
// order-dependent, since allocations that idle machines waiting for
// arrivals pay for the gaps. Pass nil to disable. The slice must have
// one entry per machine type, each >= 0.
func (e *Evaluator) SetIdlePower(wattsByType []float64) error {
	if wattsByType == nil {
		e.idleWatts = nil
		return nil
	}
	if len(wattsByType) != e.sys.NumMachineTypes() {
		return fmt.Errorf("sched: %d idle powers for %d machine types", len(wattsByType), e.sys.NumMachineTypes())
	}
	perInstance := make([]float64, e.NumMachines())
	for m := 0; m < e.NumMachines(); m++ {
		w := wattsByType[e.sys.MachineTypeOf(m)]
		if w < 0 {
			return fmt.Errorf("sched: negative idle power %v", w)
		}
		perInstance[m] = w
	}
	e.idleWatts = perInstance
	return nil
}

// IdlePowerEnabled reports whether the idle-energy extension is active.
func (e *Evaluator) IdlePowerEnabled() bool { return e.idleWatts != nil }

// Session holds reusable scratch space for repeated evaluations on one
// goroutine.
type Session struct {
	e     *Evaluator
	seq   []int     // task index by global order
	ready []float64 // per-machine ready time
	busy  []float64 // per-machine accumulated execution time
}

// NewSession returns an evaluation session bound to e.
func (e *Evaluator) NewSession() *Session {
	return &Session{
		e:     e,
		seq:   make([]int, e.NumTasks()),
		ready: make([]float64, e.NumMachines()),
		busy:  make([]float64, e.NumMachines()),
	}
}

// idleEnergy returns the idle-power energy of the finished simulation
// state (0 when the extension is disabled).
func (s *Session) idleEnergy() float64 {
	if s.e.idleWatts == nil {
		return 0
	}
	var sum float64
	for m, w := range s.e.idleWatts {
		if idle := s.ready[m] - s.busy[m]; idle > 0 {
			sum += w * idle
		}
	}
	return sum
}

// Evaluate simulates the allocation and returns the objective values.
// The allocation is not validated; call Validate separately when the
// source is untrusted. Evaluate is deterministic.
func (s *Session) Evaluate(a *Allocation) Evaluation {
	e := s.e
	n := e.NumTasks()
	for i := range s.ready {
		s.ready[i] = 0
		s.busy[i] = 0
	}
	for i := 0; i < n; i++ {
		s.seq[a.Order[i]] = i
	}
	var ev Evaluation
	tasks := e.trace.Tasks
	for _, ti := range s.seq {
		m := a.Machine[ti]
		if m == Dropped {
			continue
		}
		task := &tasks[ti]
		start := s.ready[m]
		if task.Arrival > start {
			start = task.Arrival // machine idles until the task arrives
		}
		etc := e.etc[task.Type][m]
		completion := start + etc
		s.ready[m] = completion
		s.busy[m] += etc
		ev.Utility += e.tufs.Value(ti, completion-task.Arrival)
		ev.Energy += e.eec[task.Type][m]
		if completion > ev.Makespan {
			ev.Makespan = completion
		}
		ev.Completed++
	}
	ev.Energy += s.idleEnergy()
	return ev
}

// CompletionTimes simulates the allocation and additionally returns the
// per-task completion time (NaN-free; dropped tasks report -1).
func (s *Session) CompletionTimes(a *Allocation) ([]float64, Evaluation) {
	e := s.e
	n := e.NumTasks()
	for i := range s.ready {
		s.ready[i] = 0
		s.busy[i] = 0
	}
	for i := 0; i < n; i++ {
		s.seq[a.Order[i]] = i
	}
	times := make([]float64, n)
	var ev Evaluation
	tasks := e.trace.Tasks
	for _, ti := range s.seq {
		m := a.Machine[ti]
		if m == Dropped {
			times[ti] = -1
			continue
		}
		task := &tasks[ti]
		start := s.ready[m]
		if task.Arrival > start {
			start = task.Arrival
		}
		etc := e.etc[task.Type][m]
		completion := start + etc
		s.ready[m] = completion
		s.busy[m] += etc
		times[ti] = completion
		ev.Utility += e.tufs.Value(ti, completion-task.Arrival)
		ev.Energy += e.eec[task.Type][m]
		if completion > ev.Makespan {
			ev.Makespan = completion
		}
		ev.Completed++
	}
	ev.Energy += s.idleEnergy()
	return times, ev
}

// Evaluate is a convenience that allocates a fresh session per call. Use
// a Session in hot loops.
func (e *Evaluator) Evaluate(a *Allocation) Evaluation {
	return e.NewSession().Evaluate(a)
}

// RandomAllocation draws a uniformly random feasible allocation: every
// task on a uniformly random eligible machine, with a uniformly random
// global scheduling order.
func (e *Evaluator) RandomAllocation(src *rng.Source) *Allocation {
	a := &Allocation{}
	e.RandomAllocationInto(a, src)
	return a
}

// RandomAllocationInto fills a with a uniformly random feasible
// allocation, drawing the same rng sequence RandomAllocation would. It
// reuses a's backing arrays when they have sufficient capacity, letting
// arena-backed population initialization stay allocation-free.
func (e *Evaluator) RandomAllocationInto(a *Allocation, src *rng.Source) {
	n := e.NumTasks()
	if cap(a.Machine) < n {
		a.Machine = make([]int32, n)
	}
	if cap(a.Order) < n {
		a.Order = make([]int32, n)
	}
	a.Machine, a.Order = a.Machine[:n], a.Order[:n]
	src.PermInto32(a.Order)
	for i := 0; i < n; i++ {
		el := e.eligible[e.trace.Tasks[i].Type]
		a.Machine[i] = int32(el[src.Intn(len(el))])
	}
}
