package sched

// Task dropping — the paper's second future-work item: tasks that will
// generate negligible utility when they complete need not execute at
// all. Dropping such a task saves its full EEC and can only help the
// tasks queued behind it on the same machine (their start times move
// earlier, and TUFs are monotonically decreasing, so their utility can
// only rise).

// DropNegligible returns a copy of the allocation in which every task
// whose earned utility would be at most minUtility is dropped, iterating
// until a fixed point (dropping a task can change the completion times —
// and hence utilities — of its queue successors). The evaluator's
// AllowDropping flag is enabled as a side effect. The returned
// evaluation describes the final allocation.
//
// Invariants (guaranteed by monotone TUFs): total energy never
// increases, and total utility never decreases by more than
// droppedTasks × minUtility.
func DropNegligible(e *Evaluator, a *Allocation, minUtility float64) (*Allocation, Evaluation) {
	e.AllowDropping = true
	out := a.Clone()
	sess := e.NewSession()
	tasks := e.trace.Tasks
	for {
		times, _ := sess.CompletionTimes(out)
		changed := false
		for i, ct := range times {
			if out.Machine[i] == Dropped || ct < 0 {
				continue
			}
			if u := tasks[i].TUF.Value(ct - tasks[i].Arrival); u <= minUtility {
				out.Machine[i] = Dropped
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return out, sess.Evaluate(out)
}
