package sched

import (
	"testing"

	"tradeoff/internal/data"
	"tradeoff/internal/rng"
	"tradeoff/internal/utility"
	"tradeoff/internal/workload"
)

// randomTUF draws a randomized but valid time-utility function: 1-4
// segments of random shape with non-increasing fractions and a tail not
// above the last segment's end.
func randomTUF(t *testing.T, src *rng.Source) *utility.Function {
	t.Helper()
	nseg := 1 + src.Intn(4)
	segs := make([]utility.Segment, 0, nseg)
	prevEnd := 1.0
	for i := 0; i < nseg; i++ {
		start := prevEnd * (0.2 + 0.8*src.Float64())
		end := start * (0.2 + 0.8*src.Float64())
		shape := utility.Shape(src.Intn(3))
		if shape == utility.Constant {
			end = start
		}
		segs = append(segs, utility.Segment{
			Duration:  1 + 200*src.Float64(),
			StartFrac: start,
			EndFrac:   end,
			Shape:     shape,
		})
		prevEnd = end
	}
	tail := prevEnd * src.Float64()
	f, err := utility.New(1+99*src.Float64(), tail, segs...)
	if err != nil {
		t.Fatalf("random TUF invalid: %v", err)
	}
	return f
}

// degenerateTUF draws one of the closed-form-friendly edge shapes the
// typed kernel special-cases through its hoisted tail guard: a
// single-segment step function, or a zero-penalty function that earns
// full priority no matter when the task completes.
func degenerateTUF(t *testing.T, src *rng.Source) *utility.Function {
	t.Helper()
	var f *utility.Function
	var err error
	if src.Bool(0.5) {
		// Single segment, zero tail: a hard-deadline step.
		f, err = utility.New(1+9*src.Float64(), 0,
			utility.Segment{Duration: 1 + 50*src.Float64(), StartFrac: 1, EndFrac: 1, Shape: utility.Constant})
	} else {
		// Zero penalty: constant at priority forever (tail = 1).
		f, err = utility.New(1+9*src.Float64(), 1,
			utility.Segment{Duration: 1 + 50*src.Float64(), StartFrac: 1, EndFrac: 1, Shape: utility.Constant})
	}
	if err != nil {
		t.Fatalf("degenerate TUF invalid: %v", err)
	}
	return f
}

// kernelEval builds an evaluator over the real system with n tasks whose
// TUFs are replaced by randomized shapes; degenerateFrac of the tasks
// receive a degenerate (single-segment or zero-penalty) function.
func kernelEval(t *testing.T, n int, seed uint64, degenerateFrac float64) *Evaluator {
	t.Helper()
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: n, Window: 600}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed ^ 0x9e3779b97f4a7c15)
	for i := range tr.Tasks {
		if src.Bool(degenerateFrac) {
			tr.Tasks[i].TUF = degenerateTUF(t, src)
		} else {
			tr.Tasks[i].TUF = randomTUF(t, src)
		}
	}
	e, err := NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// contribsEqual reports whether two contribution sets are bitwise equal
// on every machine row.
func contribsEqual(a, b *Contribs) bool {
	for m := range a.Utility {
		if a.Utility[m] != b.Utility[m] || a.Energy[m] != b.Energy[m] ||
			a.Busy[m] != b.Busy[m] || a.Ready[m] != b.Ready[m] ||
			a.Done[m] != b.Done[m] || a.FP[m] != b.FP[m] {
			return false
		}
	}
	return true
}

// TestKernelsBitIdentical is the typed-vs-scalar property test: on
// randomized TUF shapes (including degenerate single-segment and
// zero-penalty functions), random allocations — with and without drops —
// must produce bitwise-equal evaluations and per-machine contribution
// rows under both kernels.
func TestKernelsBitIdentical(t *testing.T) {
	for _, cfg := range []struct {
		n       int
		degFrac float64
		drops   bool
	}{
		{30, 0, false},
		{30, 1, false}, // all degenerate
		{120, 0.3, false},
		{120, 0.3, true},
		{400, 0.5, true},
	} {
		e := kernelEval(t, cfg.n, uint64(9000+cfg.n), cfg.degFrac)
		e.AllowDropping = cfg.drops
		typed := e.NewDeltaSession()
		typed.SetKernel(KernelTyped)
		scalar := e.NewDeltaSession()
		scalar.SetKernel(KernelScalar)
		ct, cs := e.NewContribs(), e.NewContribs()
		src := rng.New(uint64(31 + cfg.n))
		for trial := 0; trial < 20; trial++ {
			a := e.RandomAllocation(src)
			if cfg.drops {
				for i := 0; i < a.Len(); i++ {
					if src.Bool(0.15) {
						a.Machine[i] = Dropped
					}
				}
			}
			evT := typed.EvaluateFull(a, ct)
			evS := scalar.EvaluateFull(a, cs)
			if evT != evS {
				t.Fatalf("n=%d deg=%v drops=%v trial %d: typed %+v vs scalar %+v",
					cfg.n, cfg.degFrac, cfg.drops, trial, evT, evS)
			}
			if !contribsEqual(ct, cs) {
				t.Fatalf("n=%d deg=%v drops=%v trial %d: contribution rows differ",
					cfg.n, cfg.degFrac, cfg.drops, trial)
			}
		}
	}
}

// TestKernelListMatchesPerMachine checks that the batched
// SimulateNeedList path (4-way interleaved under the typed kernel) is
// bitwise equal to simulating each Need machine individually through
// SimulateNeed, for both kernels and odd batch remainders.
func TestKernelListMatchesPerMachine(t *testing.T) {
	for _, kernel := range []Kernel{KernelTyped, KernelScalar} {
		e := kernelEval(t, 150, 42, 0.25)
		batched := e.NewDeltaSession()
		batched.SetKernel(kernel)
		single := e.NewDeltaSession()
		single.SetKernel(kernel)
		cb, cs := e.NewContribs(), e.NewContribs()
		pb, ps := e.NewDeltaPlan(), e.NewDeltaPlan()
		src := rng.New(7)
		counts := make([]int32, e.NumMachines())
		for trial := 0; trial < 10; trial++ {
			a := e.RandomAllocation(src)
			slots := make([]uint64, a.Len())
			batched.ScatterSlots(a, slots, counts)
			batched.Prepare(slots, counts, nil, cb, pb)
			batched.SimulateAllNeeds(pb, cb)
			evB := batched.Finish(cb, pb)

			single.ScatterSlots(a, slots, counts)
			single.Prepare(slots, counts, nil, cs, ps)
			for k := range ps.Need {
				single.SimulateNeed(k, ps, cs)
			}
			evS := single.Finish(cs, ps)
			if evB != evS || !contribsEqual(cb, cs) {
				t.Fatalf("kernel=%v trial %d: batched vs per-machine rows differ", kernel, trial)
			}
		}
	}
}
