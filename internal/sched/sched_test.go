package sched

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"tradeoff/internal/data"
	"tradeoff/internal/hcs"
	"tradeoff/internal/rng"
	"tradeoff/internal/utility"
	"tradeoff/internal/workload"
)

// tinySystem: 2 general-purpose machine types, 1 instance each.
func tinySystem(t *testing.T) *hcs.System {
	t.Helper()
	etc, _ := hcs.MatrixFromRows([][]float64{
		{10, 20},
		{30, 15},
	})
	epc, _ := hcs.MatrixFromRows([][]float64{
		{100, 50},
		{120, 60},
	})
	s := &hcs.System{
		MachineTypes: []hcs.MachineType{{Name: "A", Category: hcs.GeneralPurpose}, {Name: "B", Category: hcs.GeneralPurpose}},
		TaskTypes:    []hcs.TaskType{{Name: "t0", Category: hcs.GeneralPurpose}, {Name: "t1", Category: hcs.GeneralPurpose}},
		ETC:          etc,
		EPC:          epc,
		Machines:     []hcs.Machine{{ID: 0, Type: 0}, {ID: 1, Type: 1}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// tinyTrace: 3 tasks with known TUFs and arrivals.
func tinyTrace(t *testing.T) *workload.Trace {
	t.Helper()
	tuf := utility.LinearDecay(100, 1000)
	tr := &workload.Trace{
		Window: 100,
		Tasks: []workload.Task{
			{ID: 0, Type: 0, Arrival: 0, TUF: tuf.Clone()},
			{ID: 1, Type: 1, Arrival: 5, TUF: tuf.Clone()},
			{ID: 2, Type: 0, Arrival: 50, TUF: tuf.Clone()},
		},
	}
	return tr
}

func newEval(t *testing.T) *Evaluator {
	t.Helper()
	e, err := NewEvaluator(tinySystem(t), tinyTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEvaluateHandComputed(t *testing.T) {
	e := newEval(t)
	// All three tasks on machine 0 in arrival order.
	a := &Allocation{Machine: []int32{0, 0, 0}, Order: []int32{0, 1, 2}}
	if err := e.Validate(a); err != nil {
		t.Fatal(err)
	}
	ev := e.Evaluate(a)
	// Task 0: start 0, etc 10 -> completes 10, elapsed 10, U = 100*(1-10/1000) = 99.
	// Task 1: type 1 on machine 0: etc 30; start max(10,5)=10 -> completes 40, elapsed 35, U = 96.5.
	// Task 2: start max(40,50)=50 (idle) -> completes 60, elapsed 10, U = 99.
	wantU := 99 + 96.5 + 99.0
	if math.Abs(ev.Utility-wantU) > 1e-9 {
		t.Errorf("Utility = %v, want %v", ev.Utility, wantU)
	}
	// Energy: task0 10*100 + task1 30*120 + task2 10*100 = 1000+3600+1000.
	if math.Abs(ev.Energy-5600) > 1e-9 {
		t.Errorf("Energy = %v, want 5600", ev.Energy)
	}
	if ev.Makespan != 60 {
		t.Errorf("Makespan = %v, want 60", ev.Makespan)
	}
	if ev.Completed != 3 {
		t.Errorf("Completed = %d", ev.Completed)
	}
}

func TestGlobalOrderControlsSequence(t *testing.T) {
	e := newEval(t)
	// Tasks 0 and 2 both on machine 0; run task 2 first by global order.
	a := &Allocation{Machine: []int32{0, 1, 0}, Order: []int32{2, 1, 0}}
	if err := e.Validate(a); err != nil {
		t.Fatal(err)
	}
	times, _ := e.NewSession().CompletionTimes(a)
	// Task 2 (order 0) starts at its arrival 50, completes 60.
	// Task 0 (order 2) waits for machine: starts 60, completes 70.
	if times[2] != 60 || times[0] != 70 {
		t.Fatalf("completion times = %v", times)
	}
}

func TestEnergyIndependentOfOrder(t *testing.T) {
	e := newEval(t)
	src := rng.New(1)
	a := e.RandomAllocation(src)
	base := e.Evaluate(a).Energy
	for i := 0; i < 20; i++ {
		b := a.Clone()
		b.Order = make([]int32, a.Len())
		src.PermInto32(b.Order)
		if got := e.Evaluate(b).Energy; math.Abs(got-base) > 1e-9 {
			t.Fatalf("energy changed with order: %v vs %v", got, base)
		}
	}
}

func TestStartNeverBeforeArrival(t *testing.T) {
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: 120, Window: 900}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	sess := e.NewSession()
	for trial := 0; trial < 25; trial++ {
		a := e.RandomAllocation(src)
		times, _ := sess.CompletionTimes(a)
		for i, ct := range times {
			task := tr.Tasks[i]
			etc := e.ETCInstance(task.Type, int(a.Machine[i]))
			if ct-etc < task.Arrival-1e-9 {
				t.Fatalf("task %d starts at %v before arrival %v", i, ct-etc, task.Arrival)
			}
		}
	}
}

func TestMachineQueuesDoNotOverlap(t *testing.T) {
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: 60, Window: 300}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	a := e.RandomAllocation(rng.New(5))
	times, _ := e.NewSession().CompletionTimes(a)
	// Per machine, sort tasks by order; successive intervals must not overlap.
	type interval struct{ start, end float64 }
	byMachine := map[int][]interval{}
	// Reconstruct in global order.
	seq := make([]int, len(times))
	for i, o := range a.Order {
		seq[o] = i
	}
	for _, ti := range seq {
		m := int(a.Machine[ti])
		etc := e.ETCInstance(tr.Tasks[ti].Type, m)
		byMachine[m] = append(byMachine[m], interval{times[ti] - etc, times[ti]})
	}
	for m, ivs := range byMachine {
		for i := 1; i < len(ivs); i++ {
			if ivs[i].start < ivs[i-1].end-1e-9 {
				t.Fatalf("machine %d intervals overlap: %v then %v", m, ivs[i-1], ivs[i])
			}
		}
	}
}

func TestValidateRejectsBadAllocations(t *testing.T) {
	e := newEval(t)
	cases := []*Allocation{
		{Machine: []int32{0, 0}, Order: []int32{0, 1}},        // wrong length
		{Machine: []int32{0, 0, 9}, Order: []int32{0, 1, 2}},  // machine out of range
		{Machine: []int32{0, 0, -1}, Order: []int32{0, 1, 2}}, // dropped without permission
		{Machine: []int32{0, 0, 0}, Order: []int32{0, 1, 1}},  // duplicate order
		{Machine: []int32{0, 0, 0}, Order: []int32{0, 1, 5}},  // order out of range
		{Machine: []int32{0, 0, 0}, Order: []int32{0, 1, -2}}, // negative order
	}
	for i, a := range cases {
		if err := e.Validate(a); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestValidateRejectsIncapableAssignment(t *testing.T) {
	// Build a system with a special-purpose machine and verify Validate
	// rejects assigning a general task to it.
	etc, _ := hcs.MatrixFromRows([][]float64{
		{10, hcs.Incapable},
		{30, 3},
	})
	epc, _ := hcs.MatrixFromRows([][]float64{
		{100, hcs.Incapable},
		{120, 80},
	})
	sys := &hcs.System{
		MachineTypes: []hcs.MachineType{{Name: "gp", Category: hcs.GeneralPurpose}, {Name: "sp", Category: hcs.SpecialPurpose}},
		TaskTypes:    []hcs.TaskType{{Name: "t0", Category: hcs.GeneralPurpose}, {Name: "t1", Category: hcs.SpecialPurpose}},
		ETC:          etc,
		EPC:          epc,
		Machines:     []hcs.Machine{{ID: 0, Type: 0}, {ID: 1, Type: 1}},
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	tuf := utility.LinearDecay(10, 100)
	tr := &workload.Trace{Window: 10, Tasks: []workload.Task{
		{ID: 0, Type: 0, Arrival: 0, TUF: tuf},
		{ID: 1, Type: 1, Arrival: 1, TUF: tuf},
	}}
	e, err := NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Allocation{Machine: []int32{1, 1}, Order: []int32{0, 1}}
	if err := e.Validate(bad); err == nil {
		t.Fatal("general-purpose task on special-purpose machine accepted")
	}
	good := &Allocation{Machine: []int32{0, 1}, Order: []int32{0, 1}}
	if err := e.Validate(good); err != nil {
		t.Fatal(err)
	}
}

func TestDroppedTasks(t *testing.T) {
	e := newEval(t)
	e.AllowDropping = true
	a := &Allocation{Machine: []int32{0, Dropped, 0}, Order: []int32{0, 1, 2}}
	if err := e.Validate(a); err != nil {
		t.Fatal(err)
	}
	ev := e.Evaluate(a)
	if ev.Completed != 2 {
		t.Fatalf("Completed = %d, want 2", ev.Completed)
	}
	// Energy excludes the dropped task (task 1 would cost 30*120).
	full := e.Evaluate(&Allocation{Machine: []int32{0, 0, 0}, Order: []int32{0, 1, 2}})
	if !(ev.Energy < full.Energy) {
		t.Fatal("dropping did not reduce energy")
	}
	times, _ := e.NewSession().CompletionTimes(a)
	if times[1] != -1 {
		t.Fatalf("dropped task completion = %v, want -1", times[1])
	}
}

func TestRandomAllocationFeasibleProperty(t *testing.T) {
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: 80, Window: 900}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	check := func(seed uint32) bool {
		a := e.RandomAllocation(rng.New(uint64(seed)))
		return e.Validate(a) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewEvaluatorRejectsInvalidInputs(t *testing.T) {
	sys := tinySystem(t)
	tr := tinyTrace(t)
	bad := tr.Clone()
	bad.Tasks[0].Type = 99
	if _, err := NewEvaluator(sys, bad); err == nil {
		t.Fatal("invalid trace accepted")
	}
	badSys := sys.Clone()
	badSys.Machines = nil
	if _, err := NewEvaluator(badSys, tr); err == nil {
		t.Fatal("invalid system accepted")
	}
}

func TestSessionReuseMatchesFreshEvaluation(t *testing.T) {
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: 50, Window: 300}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	sess := e.NewSession()
	src := rng.New(8)
	for i := 0; i < 30; i++ {
		a := e.RandomAllocation(src)
		got := sess.Evaluate(a)
		want := e.Evaluate(a)
		if got != want {
			t.Fatalf("session reuse diverged: %+v vs %+v", got, want)
		}
	}
}

func TestEnergyMegajoules(t *testing.T) {
	ev := Evaluation{Energy: 2.5e6}
	if ev.EnergyMegajoules() != 2.5 {
		t.Fatal("MJ conversion wrong")
	}
}

func BenchmarkEvaluate250(b *testing.B)  { benchEvaluate(b, 250) }
func BenchmarkEvaluate1000(b *testing.B) { benchEvaluate(b, 1000) }
func BenchmarkEvaluate4000(b *testing.B) { benchEvaluate(b, 4000) }

func benchEvaluate(b *testing.B, n int) {
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: n, Window: 900}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEvaluator(sys, tr)
	if err != nil {
		b.Fatal(err)
	}
	a := e.RandomAllocation(rng.New(2))
	sess := e.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sess.Evaluate(a)
	}
}

func TestIdlePowerValidation(t *testing.T) {
	e := newEval(t)
	if err := e.SetIdlePower([]float64{10}); err == nil {
		t.Error("wrong-length idle power accepted")
	}
	if err := e.SetIdlePower([]float64{10, -5}); err == nil {
		t.Error("negative idle power accepted")
	}
	if err := e.SetIdlePower([]float64{10, 20}); err != nil {
		t.Fatal(err)
	}
	if !e.IdlePowerEnabled() {
		t.Fatal("idle power not enabled")
	}
	if err := e.SetIdlePower(nil); err != nil {
		t.Fatal(err)
	}
	if e.IdlePowerEnabled() {
		t.Fatal("idle power not disabled")
	}
}

func TestIdlePowerHandComputed(t *testing.T) {
	e := newEval(t)
	// All on machine 0 in arrival order: busy 10+30+10=50, end 60, idle 10.
	a := &Allocation{Machine: []int32{0, 0, 0}, Order: []int32{0, 1, 2}}
	base := e.Evaluate(a).Energy
	if err := e.SetIdlePower([]float64{7, 11}); err != nil {
		t.Fatal(err)
	}
	got := e.Evaluate(a).Energy
	// Machine 0 idles 10 s at 7 W; machine 1 never starts (end=busy=0).
	want := base + 10*7
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("idle energy: got %v, want %v", got, want)
	}
}

func TestIdlePowerMakesEnergyOrderDependent(t *testing.T) {
	e := newEval(t)
	if err := e.SetIdlePower([]float64{50, 50}); err != nil {
		t.Fatal(err)
	}
	// Same machines, different order: running task 2 (arrival 50) first
	// forces idle time before it.
	a := &Allocation{Machine: []int32{0, 1, 0}, Order: []int32{0, 1, 2}}
	b := &Allocation{Machine: []int32{0, 1, 0}, Order: []int32{2, 1, 0}}
	ea, eb := e.Evaluate(a).Energy, e.Evaluate(b).Energy
	if ea == eb {
		t.Fatal("idle power should make energy order-dependent here")
	}
}

func TestIdlePowerNeverReducesEnergy(t *testing.T) {
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: 60, Window: 600}, rng.New(71))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(72)
	watts := make([]float64, sys.NumMachineTypes())
	for i := range watts {
		watts[i] = 30
	}
	for trial := 0; trial < 20; trial++ {
		a := e.RandomAllocation(src)
		if err := e.SetIdlePower(nil); err != nil {
			t.Fatal(err)
		}
		base := e.Evaluate(a).Energy
		if err := e.SetIdlePower(watts); err != nil {
			t.Fatal(err)
		}
		withIdle := e.Evaluate(a).Energy
		if withIdle < base-1e-9 {
			t.Fatalf("idle power reduced energy: %v < %v", withIdle, base)
		}
	}
}

func TestReportBreakdown(t *testing.T) {
	e := newEval(t)
	a := &Allocation{Machine: []int32{0, 0, 1}, Order: []int32{0, 1, 2}}
	reports, err := e.Report(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("%d reports", len(reports))
	}
	// Machine 0: tasks 0 (etc 10, start 0) and 1 (etc 30, start 10);
	// busy 40, span 40, util 1.
	if reports[0].Tasks != 2 || reports[0].BusySeconds != 40 || reports[0].Utilization != 1 {
		t.Fatalf("machine 0 report: %+v", reports[0])
	}
	// Machine 1: task 2 (type 0, etc 20) arrives at 50; span 70, busy 20.
	if reports[1].Tasks != 1 || reports[1].BusySeconds != 20 || reports[1].SpanSeconds != 70 {
		t.Fatalf("machine 1 report: %+v", reports[1])
	}
	// Totals must agree with Evaluate.
	ev := e.Evaluate(a)
	var u, en float64
	for _, r := range reports {
		u += r.Utility
		en += r.EnergyJoules
	}
	if math.Abs(u-ev.Utility) > 1e-9 || math.Abs(en-ev.Energy) > 1e-9 {
		t.Fatal("report totals disagree with Evaluate")
	}
}

func TestReportValidatesInput(t *testing.T) {
	e := newEval(t)
	if _, err := e.Report(&Allocation{Machine: []int32{0}, Order: []int32{0}}); err == nil {
		t.Fatal("short allocation accepted")
	}
}

func TestWriteReport(t *testing.T) {
	e := newEval(t)
	a := &Allocation{Machine: []int32{0, 1, 0}, Order: []int32{0, 1, 2}}
	var sb strings.Builder
	if err := e.WriteReport(&sb, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "machine type") || !strings.Contains(sb.String(), "A") {
		t.Fatalf("report output incomplete:\n%s", sb.String())
	}
}

func TestGanttRowsConsistent(t *testing.T) {
	e := newEval(t)
	a := &Allocation{Machine: []int32{0, 0, 1}, Order: []int32{0, 1, 2}}
	rows, err := e.Gantt(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Sorted by machine then start; no overlap per machine; start >= arrival.
	for i, r := range rows {
		if r.Start < r.Arrival-1e-9 {
			t.Fatalf("row %d starts before arrival", i)
		}
		if r.WaitSeconds != r.Start-r.Arrival {
			t.Fatalf("row %d wait wrong", i)
		}
		if i > 0 && rows[i-1].Machine == r.Machine && r.Start < rows[i-1].End-1e-9 {
			t.Fatalf("rows %d/%d overlap on machine %d", i-1, i, r.Machine)
		}
	}
	// Totals agree with Evaluate.
	ev := e.Evaluate(a)
	var u, en float64
	for _, r := range rows {
		u += r.Utility
		en += r.Energy
	}
	if math.Abs(u-ev.Utility) > 1e-9 || math.Abs(en-ev.Energy) > 1e-9 {
		t.Fatal("gantt totals disagree with Evaluate")
	}
}

func TestGanttSkipsDropped(t *testing.T) {
	e := newEval(t)
	e.AllowDropping = true
	a := &Allocation{Machine: []int32{0, Dropped, 1}, Order: []int32{0, 1, 2}}
	rows, err := e.Gantt(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
}

func TestWriteGanttCSV(t *testing.T) {
	e := newEval(t)
	a := &Allocation{Machine: []int32{0, 0, 1}, Order: []int32{0, 1, 2}}
	var sb strings.Builder
	if err := e.WriteGanttCSV(&sb, a); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "task,task_type,machine") {
		t.Fatal("CSV header wrong")
	}
	if err := e.WriteGanttCSV(&sb, &Allocation{Machine: []int32{9}, Order: []int32{0}}); err == nil {
		t.Fatal("invalid allocation accepted")
	}
}

func TestSessionEvaluateZeroAlloc(t *testing.T) {
	// The GA hot path must not allocate: lock in the property the
	// benchmarks report (0 B/op).
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: 250, Window: 900}, rng.New(91))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	sess := e.NewSession()
	a := e.RandomAllocation(rng.New(92))
	allocs := testing.AllocsPerRun(100, func() {
		_ = sess.Evaluate(a)
	})
	if allocs > 0 {
		t.Fatalf("Session.Evaluate allocates %v per run, want 0", allocs)
	}
}

func TestAllocationCopyFrom(t *testing.T) {
	src := &Allocation{Machine: []int32{2, 0, 1}, Order: []int32{1, 2, 0}}
	dst := NewAllocation(3)
	dst.CopyFrom(src)
	for i := range src.Machine {
		if dst.Machine[i] != src.Machine[i] || dst.Order[i] != src.Order[i] {
			t.Fatalf("CopyFrom mismatch at %d: %+v vs %+v", i, dst, src)
		}
	}
	// Mutating the copy must not touch the source.
	dst.Machine[0], dst.Order[0] = 9, 9
	if src.Machine[0] == 9 || src.Order[0] == 9 {
		t.Fatal("CopyFrom aliases the source")
	}
	// Copying a shorter allocation into a longer one shrinks it in place
	// without reallocating.
	long := NewAllocation(10)
	backing := &long.Machine[0]
	long.CopyFrom(src)
	if long.Len() != 3 {
		t.Fatalf("CopyFrom length %d, want 3", long.Len())
	}
	if &long.Machine[0] != backing {
		t.Fatal("CopyFrom reallocated despite sufficient capacity")
	}
}
