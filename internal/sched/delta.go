package sched

import "slices"

// Machine-major and incremental (dirty-machine) evaluation.
//
// The schedule semantics are machine-independent: a machine's queue —
// and therefore its utility, energy, busy time, and last completion —
// depends only on the set of tasks assigned to it and their relative
// scheduling order, never on what other machines run (§IV-D: a machine
// idles until the next of ITS tasks arrives). Evaluation can therefore
// be restructured machine-major: bucket the tasks per machine in
// execution order, simulate each machine independently, and reduce the
// per-machine contributions in fixed machine order. Because the
// reduction order is fixed, a re-evaluation that re-simulates only the
// machines whose task sequence changed and reuses the cached
// contributions of the rest produces bit-identical objective values —
// the basis of the NSGA-II engine's incremental offspring evaluation.

// Contribs caches the outcome of one allocation's machine-major
// simulation: per-machine objective contributions plus the machine-major
// task layout (each machine's task ids in execution order). A Contribs
// belongs to exactly one allocation snapshot; pass it as the parent
// cache to DeltaSession.EvaluateDelta when evaluating a variation of
// that allocation.
type Contribs struct {
	// Utility, Energy, Busy and Ready hold each machine's total earned
	// utility, execution energy, accumulated execution time, and last
	// task completion time (zero for idle machines).
	Utility []float64
	Energy  []float64
	Busy    []float64
	Ready   []float64
	// Done is the number of executed (non-dropped) tasks per machine.
	Done []int32

	// bucket holds task ids grouped by machine in execution order;
	// machine m's tasks are bucket[start[m]:start[m+1]]. Dropped tasks
	// appear in no bucket.
	bucket []int32
	start  []int32

	valid bool
}

// NewContribs returns an empty contribution cache sized for the
// evaluator, ready to be filled by EvaluateFull or EvaluateDelta.
func (e *Evaluator) NewContribs() *Contribs {
	nm := e.NumMachines()
	return &Contribs{
		Utility: make([]float64, nm),
		Energy:  make([]float64, nm),
		Busy:    make([]float64, nm),
		Ready:   make([]float64, nm),
		Done:    make([]int32, nm),
		bucket:  make([]int32, 0, e.NumTasks()),
		start:   make([]int32, nm+1),
	}
}

// CopyFrom overwrites c with a deep copy of src — contribution rows,
// machine-major task layout, and validity — reusing c's backing arrays
// when they have sufficient capacity. A copied cache is interchangeable
// with the original: passing either as the parent of EvaluateDelta
// yields bit-identical results, which is what lets a fitness-memoization
// layer hand out cached contributions to recycled offspring buffers.
//
//detlint:hotpath
func (c *Contribs) CopyFrom(src *Contribs) {
	c.Utility = c.Utility[:0]
	c.Utility = append(c.Utility, src.Utility...)
	c.Energy = c.Energy[:0]
	c.Energy = append(c.Energy, src.Energy...)
	c.Busy = c.Busy[:0]
	c.Busy = append(c.Busy, src.Busy...)
	c.Ready = c.Ready[:0]
	c.Ready = append(c.Ready, src.Ready...)
	c.Done = c.Done[:0]
	c.Done = append(c.Done, src.Done...)
	c.bucket = c.bucket[:0]
	c.bucket = append(c.bucket, src.bucket...)
	c.start = c.start[:0]
	c.start = append(c.start, src.start...)
	c.valid = src.valid
}

// Equal reports whether two caches hold bit-identical contents
// (contribution rows, machine-major layout, and validity). It backs the
// memoization layer's verify-on-hit debug mode.
func (c *Contribs) Equal(o *Contribs) bool {
	return c.valid == o.valid &&
		slices.Equal(c.Utility, o.Utility) &&
		slices.Equal(c.Energy, o.Energy) &&
		slices.Equal(c.Busy, o.Busy) &&
		slices.Equal(c.Ready, o.Ready) &&
		slices.Equal(c.Done, o.Done) &&
		slices.Equal(c.bucket, o.bucket) &&
		slices.Equal(c.start, o.start)
}

// contribsLine is the cache-line size the batch allocator pads to.
const contribsLine = 64

// padSlots rounds n elements up so a slot's row occupies whole cache
// lines (elemSize must divide contribsLine).
func padSlots(n, elemSize int) int {
	per := contribsLine / elemSize
	return (n + per - 1) / per * per
}

// NewContribsBatch returns k contribution caches laid out
// structure-of-arrays: one contiguous backing slice per field, each
// cache's rows padded to whole cache lines so caches written by
// different workers never share a line. Every returned cache is
// interchangeable with a NewContribs one.
func (e *Evaluator) NewContribsBatch(k int) []*Contribs {
	nm, nt := e.NumMachines(), e.NumTasks()
	fs := padSlots(nm, 8)   // float64 rows
	ds := padSlots(nm, 4)   // int32 Done rows
	bs := padSlots(nt, 4)   // int32 bucket rows
	ss := padSlots(nm+1, 4) // int32 start rows
	util := make([]float64, k*fs)
	energy := make([]float64, k*fs)
	busy := make([]float64, k*fs)
	ready := make([]float64, k*fs)
	done := make([]int32, k*ds)
	bucket := make([]int32, k*bs)
	start := make([]int32, k*ss)
	out := make([]*Contribs, k)
	for s := 0; s < k; s++ {
		out[s] = &Contribs{
			Utility: util[s*fs : s*fs+nm : s*fs+nm],
			Energy:  energy[s*fs : s*fs+nm : s*fs+nm],
			Busy:    busy[s*fs : s*fs+nm : s*fs+nm],
			Ready:   ready[s*fs : s*fs+nm : s*fs+nm],
			Done:    done[s*ds : s*ds+nm : s*ds+nm],
			bucket:  bucket[s*bs : s*bs : s*bs+nt],
			start:   start[s*ss : s*ss+nm+1 : s*ss+nm+1],
		}
	}
	return out
}

// Valid reports whether the cache holds the outcome of a completed
// evaluation.
func (c *Contribs) Valid() bool { return c != nil && c.valid }

// Invalidate marks the cache as stale; the next EvaluateDelta against it
// falls back to a full evaluation.
func (c *Contribs) Invalidate() {
	if c != nil {
		c.valid = false
	}
}

// machineTasks returns machine m's task ids in execution order.
func (c *Contribs) machineTasks(m int) []int32 {
	return c.bucket[c.start[m]:c.start[m+1]]
}

// DeltaStats counts the work a DeltaSession has performed since its
// creation: evaluations by kernel choice and the per-machine
// simulate-vs-inherit split inside them. Counters are cumulative and
// monotone; diff two snapshots for an interval.
type DeltaStats struct {
	// FullEvals counts EvaluateFull runs, including EvaluateDelta
	// fallbacks; DeltaEvals counts EvaluateDelta runs that took the
	// incremental path.
	FullEvals  uint64
	DeltaEvals uint64
	// MachinesSimulated counts machine queues re-simulated;
	// MachinesInherited counts contribution rows reused from a parent
	// cache.
	MachinesSimulated uint64
	MachinesInherited uint64
}

// Add accumulates o into s.
func (s *DeltaStats) Add(o DeltaStats) {
	s.FullEvals += o.FullEvals
	s.DeltaEvals += o.DeltaEvals
	s.MachinesSimulated += o.MachinesSimulated
	s.MachinesInherited += o.MachinesInherited
}

// Sub subtracts o from s (for diffing cumulative snapshots).
func (s *DeltaStats) Sub(o DeltaStats) {
	s.FullEvals -= o.FullEvals
	s.DeltaEvals -= o.DeltaEvals
	s.MachinesSimulated -= o.MachinesSimulated
	s.MachinesInherited -= o.MachinesInherited
}

// DeltaSession holds the scratch space for machine-major evaluation on
// one goroutine. Like Session, the underlying evaluator is read-only and
// may be shared; each goroutine needs its own DeltaSession.
type DeltaSession struct {
	e *Evaluator
	// inv scatters execution order to task id: inv[a.Order[i]] = i.
	inv []int32
	// fill holds per-machine counts, then bucket fill cursors.
	fill []int32
	// stats counts the session's work with plain (non-atomic)
	// increments — sessions are single-goroutine by contract, so the
	// counters are always on and cost nothing measurable.
	stats DeltaStats
}

// Stats returns a snapshot of the session's cumulative work counters.
func (d *DeltaSession) Stats() DeltaStats { return d.stats }

// NewDeltaSession returns a machine-major evaluation session bound to e.
func (e *Evaluator) NewDeltaSession() *DeltaSession {
	return &DeltaSession{
		e:    e,
		inv:  make([]int32, e.NumTasks()),
		fill: make([]int32, e.NumMachines()),
	}
}

// Evaluator returns the evaluator the session is bound to.
func (d *DeltaSession) Evaluator() *Evaluator { return d.e }

// bucketize rewrites dst's machine-major layout for the allocation: a
// counting sort by machine of the order-sorted task stream. Pass one
// scatters order→task and counts each machine's tasks; pass two walks
// the orders once more and appends each task to its machine's bucket.
//
//detlint:hotpath
func (d *DeltaSession) bucketize(a *Allocation, dst *Contribs) {
	n := len(a.Machine)
	inv, fill := d.inv, d.fill
	for m := range fill {
		fill[m] = 0
	}
	executed := 0
	for i := 0; i < n; i++ {
		inv[a.Order[i]] = int32(i)
		if m := a.Machine[i]; m >= 0 {
			fill[m]++
			executed++
		}
	}
	start := dst.start
	var cum int32
	for m, cnt := range fill {
		start[m] = cum
		fill[m] = cum // becomes the bucket fill cursor
		cum += cnt
	}
	start[len(fill)] = cum
	dst.bucket = dst.bucket[:executed]
	bucket := dst.bucket
	for o := 0; o < n; o++ {
		i := inv[o]
		if m := a.Machine[i]; m >= 0 {
			bucket[fill[m]] = i
			fill[m]++
		}
	}
}

// simMachine simulates machine m's task sequence and records its
// contribution row in dst.
//
//detlint:hotpath
func (d *DeltaSession) simMachine(m int, tasks []int32, dst *Contribs) {
	e := d.e
	etcRow, eecRow := e.etcT[m], e.eecT[m]
	var ready, busy, util, energy float64
	for _, ti := range tasks {
		tt := e.taskType[ti]
		arr := e.arrival[ti]
		start := ready
		if arr > start {
			start = arr // machine idles until the task arrives
		}
		etc := etcRow[tt]
		completion := start + etc
		ready = completion
		busy += etc
		util += e.tufs.Value(int(ti), completion-arr)
		energy += eecRow[tt]
	}
	dst.Utility[m] = util
	dst.Energy[m] = energy
	dst.Busy[m] = busy
	dst.Ready[m] = ready
	dst.Done[m] = int32(len(tasks))
}

// reduce folds the per-machine contributions into the objective values
// in fixed machine order. Both the full and the incremental path end
// here, which is what makes them bit-identical.
//
//detlint:hotpath
func (d *DeltaSession) reduce(c *Contribs) Evaluation {
	e := d.e
	var ev Evaluation
	for m := range c.Utility {
		ev.Utility += c.Utility[m]
		ev.Energy += c.Energy[m]
		if c.Ready[m] > ev.Makespan {
			ev.Makespan = c.Ready[m]
		}
		ev.Completed += int(c.Done[m])
	}
	if e.idleWatts != nil {
		var sum float64
		for m, w := range e.idleWatts {
			if idle := c.Ready[m] - c.Busy[m]; idle > 0 {
				sum += w * idle
			}
		}
		ev.Energy += sum
	}
	return ev
}

// EvaluateFull simulates the allocation machine-major, filling dst with
// the per-machine contributions and layout, and returns the objective
// values. dst must come from the same evaluator's NewContribs; its prior
// contents are overwritten. The allocation is not validated.
//
//detlint:hotpath
func (d *DeltaSession) EvaluateFull(a *Allocation, dst *Contribs) Evaluation {
	d.bucketize(a, dst)
	for m := 0; m < len(d.fill); m++ {
		d.simMachine(m, dst.machineTasks(m), dst)
	}
	d.stats.FullEvals++
	d.stats.MachinesSimulated += uint64(len(d.fill))
	dst.valid = true
	return d.reduce(dst)
}

// EvaluateDelta evaluates an allocation derived from a parent whose
// contribution cache is `parent`, re-simulating only machines whose task
// sequence actually changed. `dirty` must flag every machine whose task
// set or intra-machine execution order MAY differ from the parent's — a
// superset is safe (flagged-but-unchanged machines are detected by
// sequence comparison and inherit the parent's row), an undercount is
// not. Machines not flagged dirty inherit the parent's cached
// contribution without any check.
//
// The result is bit-identical to EvaluateFull on the same allocation.
// If parent is nil or invalid, EvaluateDelta falls back to EvaluateFull.
//
//detlint:hotpath
func (d *DeltaSession) EvaluateDelta(a *Allocation, parent *Contribs, dirty []bool, dst *Contribs) Evaluation {
	if !parent.Valid() || parent == dst {
		return d.EvaluateFull(a, dst)
	}
	d.bucketize(a, dst)
	for m := 0; m < len(d.fill); m++ {
		if dirty[m] && !slices.Equal(dst.machineTasks(m), parent.machineTasks(m)) {
			d.simMachine(m, dst.machineTasks(m), dst)
			d.stats.MachinesSimulated++
			continue
		}
		dst.Utility[m] = parent.Utility[m]
		dst.Energy[m] = parent.Energy[m]
		dst.Busy[m] = parent.Busy[m]
		dst.Ready[m] = parent.Ready[m]
		dst.Done[m] = parent.Done[m]
		d.stats.MachinesInherited++
	}
	d.stats.DeltaEvals++
	dst.valid = true
	return d.reduce(dst)
}
