package sched

import "slices"

// Machine-major and incremental (dirty-machine) evaluation.
//
// The schedule semantics are machine-independent: a machine's queue —
// and therefore its utility, energy, busy time, and last completion —
// depends only on the set of tasks assigned to it and their relative
// scheduling order, never on what other machines run (§IV-D: a machine
// idles until the next of ITS tasks arrives). Evaluation can therefore
// be restructured machine-major: bucket the tasks per machine in
// execution order, simulate each machine independently, and reduce the
// per-machine contributions in fixed machine order. Because the
// reduction order is fixed, a re-evaluation that re-simulates only the
// machines whose task sequence changed and reuses the cached
// contributions of the rest produces bit-identical objective values —
// the basis of the NSGA-II engine's incremental offspring evaluation.
//
// Since the type-compressed kernel rework (DESIGN.md §12), a machine's
// bucket is identified by a splitmix fingerprint of its task sequence
// rather than by a stored copy of the sequence itself: Prepare streams
// the allocation's execution-order slots once, accumulating each
// machine's bucket fingerprint while gathering the task sequences
// machine-major, and inherits the parent row of every machine whose
// fingerprint matches the parent's. Only the machines that still need a
// row (a cache miss at every level) get their sequence simulated.

// Contribs caches the outcome of one allocation's machine-major
// simulation: per-machine objective contributions plus each machine's
// bucket fingerprint (a deterministic hash of its task sequence in
// execution order, folded with the machine id and queue length). A
// Contribs belongs to exactly one allocation snapshot; pass it as the
// parent cache to DeltaSession.EvaluateDelta when evaluating a
// variation of that allocation.
type Contribs struct {
	// Utility, Energy, Busy and Ready hold each machine's total earned
	// utility, execution energy, accumulated execution time, and last
	// task completion time (zero for idle machines).
	Utility []float64
	Energy  []float64
	Busy    []float64
	Ready   []float64
	// Done is the number of executed (non-dropped) tasks per machine.
	Done []int32
	// FP is each machine's bucket fingerprint. Equal fingerprints
	// identify equal task sequences (up to 64-bit hash collision), so a
	// row whose fingerprint matches may be inherited without
	// re-simulation.
	FP []uint64

	valid bool
}

// MachineRow is one machine's contribution row, the value cached by the
// engine's machine-bucket memoization layer.
type MachineRow struct {
	Utility float64
	Energy  float64
	Busy    float64
	Ready   float64
	Done    int32
}

// Row returns machine m's contribution row.
func (c *Contribs) Row(m int) MachineRow {
	return MachineRow{
		Utility: c.Utility[m],
		Energy:  c.Energy[m],
		Busy:    c.Busy[m],
		Ready:   c.Ready[m],
		Done:    c.Done[m],
	}
}

// SetRow overwrites machine m's contribution row (the bucket
// fingerprint is untouched; Prepare computes it).
//
//detlint:hotpath
func (c *Contribs) SetRow(m int, r MachineRow) {
	c.Utility[m] = r.Utility
	c.Energy[m] = r.Energy
	c.Busy[m] = r.Busy
	c.Ready[m] = r.Ready
	c.Done[m] = r.Done
}

// NewContribs returns an empty contribution cache sized for the
// evaluator, ready to be filled by EvaluateFull or EvaluateDelta.
func (e *Evaluator) NewContribs() *Contribs {
	nm := e.NumMachines()
	return &Contribs{
		Utility: make([]float64, nm),
		Energy:  make([]float64, nm),
		Busy:    make([]float64, nm),
		Ready:   make([]float64, nm),
		Done:    make([]int32, nm),
		FP:      make([]uint64, nm),
	}
}

// CopyFrom overwrites c with a deep copy of src — contribution rows,
// bucket fingerprints, and validity — reusing c's backing arrays. A
// copied cache is interchangeable with the original: passing either as
// the parent of EvaluateDelta yields bit-identical results, which is
// what lets a fitness-memoization layer hand out cached contributions
// to recycled offspring buffers.
//
//detlint:hotpath
func (c *Contribs) CopyFrom(src *Contribs) {
	c.Utility = c.Utility[:0]
	c.Utility = append(c.Utility, src.Utility...)
	c.Energy = c.Energy[:0]
	c.Energy = append(c.Energy, src.Energy...)
	c.Busy = c.Busy[:0]
	c.Busy = append(c.Busy, src.Busy...)
	c.Ready = c.Ready[:0]
	c.Ready = append(c.Ready, src.Ready...)
	c.Done = c.Done[:0]
	c.Done = append(c.Done, src.Done...)
	c.FP = c.FP[:0]
	c.FP = append(c.FP, src.FP...)
	c.valid = src.valid
}

// Equal reports whether two caches hold bit-identical contents
// (contribution rows, bucket fingerprints, and validity). It backs the
// memoization layers' verify-on-hit debug modes.
func (c *Contribs) Equal(o *Contribs) bool {
	return c.valid == o.valid &&
		slices.Equal(c.Utility, o.Utility) &&
		slices.Equal(c.Energy, o.Energy) &&
		slices.Equal(c.Busy, o.Busy) &&
		slices.Equal(c.Ready, o.Ready) &&
		slices.Equal(c.Done, o.Done) &&
		slices.Equal(c.FP, o.FP)
}

// contribsLine is the cache-line size the batch allocator pads to.
const contribsLine = 64

// padSlots rounds n elements up so a slot's row occupies whole cache
// lines (elemSize must divide contribsLine).
func padSlots(n, elemSize int) int {
	per := contribsLine / elemSize
	return (n + per - 1) / per * per
}

// NewContribsBatch returns k contribution caches laid out
// structure-of-arrays: one contiguous backing slice per field, each
// cache's rows padded to whole cache lines so caches written by
// different workers never share a line. Every returned cache is
// interchangeable with a NewContribs one.
func (e *Evaluator) NewContribsBatch(k int) []*Contribs {
	nm := e.NumMachines()
	fs := padSlots(nm, 8) // float64 and uint64 rows
	ds := padSlots(nm, 4) // int32 Done rows
	util := make([]float64, k*fs)
	energy := make([]float64, k*fs)
	busy := make([]float64, k*fs)
	ready := make([]float64, k*fs)
	done := make([]int32, k*ds)
	fp := make([]uint64, k*fs)
	out := make([]*Contribs, k)
	for s := 0; s < k; s++ {
		out[s] = &Contribs{
			Utility: util[s*fs : s*fs+nm : s*fs+nm],
			Energy:  energy[s*fs : s*fs+nm : s*fs+nm],
			Busy:    busy[s*fs : s*fs+nm : s*fs+nm],
			Ready:   ready[s*fs : s*fs+nm : s*fs+nm],
			Done:    done[s*ds : s*ds+nm : s*ds+nm],
			FP:      fp[s*fs : s*fs+nm : s*fs+nm],
		}
	}
	return out
}

// Valid reports whether the cache holds the outcome of a completed
// evaluation.
func (c *Contribs) Valid() bool { return c != nil && c.valid }

// Invalidate marks the cache as stale; the next EvaluateDelta against it
// falls back to a full evaluation.
func (c *Contribs) Invalidate() {
	if c != nil {
		c.valid = false
	}
}

// Kernel selects the per-machine simulation loop.
type Kernel int

const (
	// KernelTyped is the type-compressed run-length kernel: consecutive
	// same-type tasks in a machine's queue share one ETC/EEC row load,
	// and completions past a task's TUF tail threshold take a
	// precomputed utility instead of a segment-table call. Bit-identical
	// to KernelScalar.
	KernelTyped Kernel = iota
	// KernelScalar is the original per-task loop, kept as the reference
	// implementation and property-test oracle.
	KernelScalar
)

// String names the kernel choice.
func (k Kernel) String() string {
	switch k {
	case KernelTyped:
		return "typed"
	case KernelScalar:
		return "scalar"
	}
	return "unknown"
}

// DeltaStats counts the work a DeltaSession has performed since its
// creation: evaluations by kernel choice, the per-machine
// simulate-vs-inherit split inside them, and the typed kernel's
// run-length compression. Counters are cumulative and monotone; diff
// two snapshots for an interval.
type DeltaStats struct {
	// FullEvals counts evaluations without a usable parent cache;
	// DeltaEvals counts evaluations that could inherit from a parent.
	FullEvals  uint64
	DeltaEvals uint64
	// MachinesSimulated counts machine queues re-simulated;
	// MachinesInherited counts contribution rows reused from a parent
	// cache.
	MachinesSimulated uint64
	MachinesInherited uint64
	// TypedTasks counts tasks simulated by the typed kernel; TypedRuns
	// counts the same-type runs they compressed into. TypedTasks /
	// TypedRuns is the type-compression ratio.
	TypedTasks uint64
	TypedRuns  uint64
}

// Add accumulates o into s.
func (s *DeltaStats) Add(o DeltaStats) {
	s.FullEvals += o.FullEvals
	s.DeltaEvals += o.DeltaEvals
	s.MachinesSimulated += o.MachinesSimulated
	s.MachinesInherited += o.MachinesInherited
	s.TypedTasks += o.TypedTasks
	s.TypedRuns += o.TypedRuns
}

// Sub subtracts o from s (for diffing cumulative snapshots).
func (s *DeltaStats) Sub(o DeltaStats) {
	s.FullEvals -= o.FullEvals
	s.DeltaEvals -= o.DeltaEvals
	s.MachinesSimulated -= o.MachinesSimulated
	s.MachinesInherited -= o.MachinesInherited
	s.TypedTasks -= o.TypedTasks
	s.TypedRuns -= o.TypedRuns
}

// DeltaPlan is the residue of one Prepare call: which machines still
// need a contribution row after parent inheritance, plus every
// machine's task sequence in execution order (gathered machine-major
// during Prepare's single slot walk). Plans are caller-owned scratch
// (the engine keeps one per offspring so the prepare and simulate
// phases can run in separate fan-outs); allocate with NewDeltaPlan and
// reuse freely.
type DeltaPlan struct {
	// Need lists the machines (ascending) whose row was neither
	// inherited from the parent nor otherwise supplied; the caller must
	// fill them via SimulateNeed or SetRow before Finish.
	Need []int32

	// seq holds every machine's task sequence back-to-back in machine
	// order; seqStart[m] offsets machine m's slice.
	seq      []int32
	seqStart []int32

	parentValid bool
}

// NewDeltaPlan returns an empty plan sized for the evaluator.
func (e *Evaluator) NewDeltaPlan() *DeltaPlan {
	nm, nt := e.NumMachines(), e.NumTasks()
	return &DeltaPlan{
		Need:     make([]int32, 0, nm),
		seq:      make([]int32, 0, nt),
		seqStart: make([]int32, nm+1),
	}
}

// NeedSeq returns the task sequence of Need[k] in execution order.
func (p *DeltaPlan) NeedSeq(k int) []int32 {
	m := p.Need[k]
	return p.seq[p.seqStart[m]:p.seqStart[m+1]]
}

// DeltaSession holds the scratch space for machine-major evaluation on
// one goroutine. Like Session, the underlying evaluator is read-only and
// may be shared; each goroutine needs its own DeltaSession.
type DeltaSession struct {
	e      *Evaluator
	kernel Kernel
	// slots is the standalone execution-order scratch for the
	// Allocation-based entry points; engine callers pass their own
	// per-offspring slot arrays.
	slots []uint64
	// fpSeed[m] seeds machine m's bucket fingerprint, so identical
	// sequences on different machines never share one.
	fpSeed []uint64
	// cur is the per-machine gather cursor scratch.
	cur []int32
	// counts is the per-machine task-count scratch for the standalone
	// Allocation-based entry points; engine callers maintain their own
	// counts as a by-product of order repair.
	counts []int32
	// plan is the standalone plan for the Allocation-based entry points.
	plan *DeltaPlan
	// needKs is the Need-index scratch SimulateAllNeeds feeds to
	// SimulateNeedList.
	needKs []int32
	// stats counts the session's work with plain (non-atomic)
	// increments — sessions are single-goroutine by contract, so the
	// counters are always on and cost nothing measurable.
	stats DeltaStats
}

// Stats returns a snapshot of the session's cumulative work counters.
func (d *DeltaSession) Stats() DeltaStats { return d.stats }

// NewDeltaSession returns a machine-major evaluation session bound to e,
// using the typed kernel.
func (e *Evaluator) NewDeltaSession() *DeltaSession {
	nm := e.NumMachines()
	d := &DeltaSession{
		e:      e,
		slots:  make([]uint64, e.NumTasks()),
		fpSeed: make([]uint64, nm),
		cur:    make([]int32, nm),
		counts: make([]int32, nm),
		plan:   e.NewDeltaPlan(),
		needKs: make([]int32, 0, nm),
	}
	for m := 0; m < nm; m++ {
		d.fpSeed[m] = Mix64(uint64(m+1) * FPGamma)
	}
	return d
}

// Evaluator returns the evaluator the session is bound to.
func (d *DeltaSession) Evaluator() *Evaluator { return d.e }

// SetKernel selects the per-machine simulation loop (typed by default).
// Both kernels are bit-identical; the choice only affects speed.
func (d *DeltaSession) SetKernel(k Kernel) { d.kernel = k }

// ScatterSlots rewrites slots (length NumTasks) into the allocation's
// execution-order layout — slots[o] packs the machine assignment and
// task id of the task scheduled o-th — and histograms the non-dropped
// task count per machine into counts (length NumMachines). The engine
// builds both as a by-product of order repair; this is the standalone
// fallback.
//
//detlint:hotpath
func (d *DeltaSession) ScatterSlots(a *Allocation, slots []uint64, counts []int32) {
	machine, order := a.Machine, a.Order
	for m := range counts {
		counts[m] = 0
	}
	for i := range machine {
		m := machine[i]
		slots[order[i]] = PackSlot(m, i)
		if m >= 0 {
			counts[m]++
		}
	}
}

// Prepare streams the execution-order slots once, computing every
// machine's bucket fingerprint into dst and gathering every machine's
// task sequence machine-major into the plan, inheriting the parent's
// contribution row for each machine whose fingerprint matches (any
// machine when parent is nil, invalid, or dst itself never matches),
// and listing the remaining machines in plan.Need. counts must hold
// each machine's non-dropped task count for these slots (a by-product
// of building them — see ScatterSlots); it is what lets the gather
// land machine-major in the same walk that computes the fingerprints.
// The caller supplies each needed machine's row — from a memoization
// layer via SetRow, or by SimulateNeed — then calls Finish.
//
// Fingerprint-matched inheritance subsumes the dirty-machine flags of
// the pre-typed delta path: an unchanged sequence always reproduces the
// parent's fingerprint, so flagged-but-unchanged machines inherit
// without a stored copy of the parent's layout. A 64-bit collision
// between different sequences on the same machine would inherit a stale
// row; the engine's verify mode exists to rule that out.
//
//detlint:hotpath
func (d *DeltaSession) Prepare(slots []uint64, counts []int32, parent *Contribs, dst *Contribs, plan *DeltaPlan) {
	nm := len(dst.FP)
	fp := dst.FP
	copy(fp, d.fpSeed)
	seqStart := plan.seqStart[:nm+1]
	cur := d.cur[:nm]
	var cum int32
	for m, c := range counts[:nm] {
		seqStart[m] = cum
		cur[m] = cum
		cum += c
	}
	seqStart[nm] = cum
	plan.seq = plan.seq[:cum]
	seq := plan.seq
	for _, v := range slots {
		m := v >> 32
		if m == 0 {
			continue // dropped task
		}
		fp[m-1] = (fp[m-1] ^ (v&0xffffffff + 1)) * FPMul1
		seq[cur[m-1]] = int32(uint32(v))
		cur[m-1]++
	}
	pv := parent.Valid() && parent != dst
	plan.parentValid = pv
	plan.Need = plan.Need[:0]
	for m := 0; m < nm; m++ {
		fp[m] = Mix64(fp[m] ^ uint64(uint32(counts[m])))
		if pv && fp[m] == parent.FP[m] {
			dst.Utility[m] = parent.Utility[m]
			dst.Energy[m] = parent.Energy[m]
			dst.Busy[m] = parent.Busy[m]
			dst.Ready[m] = parent.Ready[m]
			dst.Done[m] = parent.Done[m]
			d.stats.MachinesInherited++
			continue
		}
		plan.Need = append(plan.Need, int32(m))
	}
}

// SimulateNeed simulates the k-th Need machine's gathered sequence with
// the session's kernel, writing its contribution row into dst.
//
//detlint:hotpath
func (d *DeltaSession) SimulateNeed(k int, plan *DeltaPlan, dst *Contribs) {
	m := int(plan.Need[k])
	tasks := plan.NeedSeq(k)
	switch d.kernel {
	case KernelTyped:
		d.simMachineTyped(m, tasks, dst)
	case KernelScalar:
		d.simMachine(m, tasks, dst)
	}
	d.stats.MachinesSimulated++
}

// Finish folds dst's per-machine contributions into the objective
// values and marks dst valid. Every Prepare must be balanced by exactly
// one Finish after the Need rows are supplied.
//
//detlint:hotpath
func (d *DeltaSession) Finish(dst *Contribs, plan *DeltaPlan) Evaluation {
	if plan.parentValid {
		d.stats.DeltaEvals++
	} else {
		d.stats.FullEvals++
	}
	dst.valid = true
	return d.reduce(dst)
}

// simMachine simulates machine m's task sequence and records its
// contribution row in dst: the original per-task reference loop.
//
//detlint:hotpath
func (d *DeltaSession) simMachine(m int, tasks []int32, dst *Contribs) {
	e := d.e
	etcRow, eecRow := e.etcT[m], e.eecT[m]
	meta := e.meta
	var ready, busy, util, energy float64
	for _, ti := range tasks {
		mt := &meta[ti]
		arr := mt.arrival
		start := ready
		if arr > start {
			start = arr // machine idles until the task arrives
		}
		etc := etcRow[mt.ty]
		completion := start + etc
		ready = completion
		busy += etc
		util += e.tufs.Value(int(ti), completion-arr)
		energy += eecRow[mt.ty]
	}
	dst.Utility[m] = util
	dst.Energy[m] = energy
	dst.Busy[m] = busy
	dst.Ready[m] = ready
	dst.Done[m] = int32(len(tasks))
}

// simMachineTyped is the type-compressed kernel: it walks the queue as
// runs of consecutive same-type tasks, loading the (type, machine)
// execution time and energy once per run, and resolves each task's
// utility through the hoisted TUF tail guard — a precomputed threshold
// and value per task — falling back to the segment table only for
// completions inside the segment window. Every floating-point operation
// that reaches an accumulator is the same operation in the same order
// as simMachine: the per-task additions are kept sequential (run
// lengths never become multiplications, which would re-associate), and
// the tail guard substitutes the exact product Table.Value returns past
// the threshold. The result is bit-identical to simMachine for any
// queue and any TUF shape.
//
//detlint:hotpath
func (d *DeltaSession) simMachineTyped(m int, tasks []int32, dst *Contribs) {
	st := kstate{prevTy: -1}
	d.typedCont(m, tasks, &st)
	d.stats.TypedRuns += uint64(st.runs)
	d.stats.TypedTasks += uint64(len(tasks))
	dst.Utility[m] = st.util
	dst.Energy[m] = st.energy
	dst.Busy[m] = st.busy
	dst.Ready[m] = st.ready
	dst.Done[m] = int32(len(tasks))
}

// kstate is one machine's in-flight typed-kernel state, carried across
// the lockstep and tail halves of the interleaved batch kernel. prevTy
// tracks the type of the previous task so run boundaries survive the
// hand-off (a run spanning the split must count once); the sentinel -1
// makes the first task always open a run.
type kstate struct {
	ready, busy, util, energy float64
	prevTy                    int32
	runs                      uint32
}

// typedCont advances machine m's typed walk over tasks, continuing from
// (and updating) the carried state. Counting runs by previous-type
// comparison instead of an explicit inner run scan visits each task
// once and accumulates the same floating-point operations in the same
// order, so the walk stays bit-identical to the per-task reference.
//
//detlint:hotpath
func (d *DeltaSession) typedCont(m int, tasks []int32, st *kstate) {
	e := d.e
	etcRow, eecRow := e.etcT[m], e.eecT[m]
	meta := e.meta
	ready, busy, util, energy := st.ready, st.busy, st.util, st.energy
	prevTy, runs := st.prevTy, st.runs
	for _, ti := range tasks {
		mt := &meta[ti]
		ty := mt.ty
		if ty != prevTy {
			prevTy = ty
			runs++
		}
		etc := etcRow[ty]
		arr := mt.arrival
		start := ready
		if arr > start {
			start = arr
		}
		completion := start + etc
		ready = completion
		busy += etc
		if el := completion - arr; el >= mt.tailT {
			util += mt.tailV
		} else {
			util += e.tufs.Value(int(ti), el)
		}
		energy += eecRow[ty]
	}
	st.ready, st.busy, st.util, st.energy = ready, busy, util, energy
	st.prevTy, st.runs = prevTy, runs
}

// simNeed4 simulates four Need machines in interleaved lockstep: the
// inner loop advances each machine by one task per iteration, so the
// four serial completion-time dependency chains (max with arrival, add
// execution time — the latency floor of queue simulation) overlap
// instead of serializing. Each machine's tasks still execute in its own
// sequence order with the exact per-task operations of typedCont, so
// every contribution row is bit-identical to simulating the machines
// one at a time; only the wall-clock interleaving differs. After the
// shortest queue drains, the remaining tails finish through typedCont
// with their carried state.
//
//detlint:hotpath
func (d *DeltaSession) simNeed4(plan *DeltaPlan, dst *Contribs, k0, k1, k2, k3 int) {
	e := d.e
	meta := e.meta
	m0, m1, m2, m3 := int(plan.Need[k0]), int(plan.Need[k1]), int(plan.Need[k2]), int(plan.Need[k3])
	s0, s1, s2, s3 := plan.NeedSeq(k0), plan.NeedSeq(k1), plan.NeedSeq(k2), plan.NeedSeq(k3)
	etc0, eec0 := e.etcT[m0], e.eecT[m0]
	etc1, eec1 := e.etcT[m1], e.eecT[m1]
	etc2, eec2 := e.etcT[m2], e.eecT[m2]
	etc3, eec3 := e.etcT[m3], e.eecT[m3]
	var r0, b0, u0, en0, r1, b1, u1, en1 float64
	var r2, b2, u2, en2, r3, b3, u3, en3 float64
	var pt0, pt1, pt2, pt3 int32 = -1, -1, -1, -1
	var rn0, rn1, rn2, rn3 uint32
	L := len(s0)
	if len(s1) < L {
		L = len(s1)
	}
	if len(s2) < L {
		L = len(s2)
	}
	if len(s3) < L {
		L = len(s3)
	}
	for t := 0; t < L; t++ {
		{
			mt := &meta[s0[t]]
			ty := mt.ty
			if ty != pt0 {
				pt0 = ty
				rn0++
			}
			etc := etc0[ty]
			arr := mt.arrival
			start := r0
			if arr > start {
				start = arr
			}
			completion := start + etc
			r0 = completion
			b0 += etc
			if el := completion - arr; el >= mt.tailT {
				u0 += mt.tailV
			} else {
				u0 += e.tufs.Value(int(s0[t]), el)
			}
			en0 += eec0[ty]
		}
		{
			mt := &meta[s1[t]]
			ty := mt.ty
			if ty != pt1 {
				pt1 = ty
				rn1++
			}
			etc := etc1[ty]
			arr := mt.arrival
			start := r1
			if arr > start {
				start = arr
			}
			completion := start + etc
			r1 = completion
			b1 += etc
			if el := completion - arr; el >= mt.tailT {
				u1 += mt.tailV
			} else {
				u1 += e.tufs.Value(int(s1[t]), el)
			}
			en1 += eec1[ty]
		}
		{
			mt := &meta[s2[t]]
			ty := mt.ty
			if ty != pt2 {
				pt2 = ty
				rn2++
			}
			etc := etc2[ty]
			arr := mt.arrival
			start := r2
			if arr > start {
				start = arr
			}
			completion := start + etc
			r2 = completion
			b2 += etc
			if el := completion - arr; el >= mt.tailT {
				u2 += mt.tailV
			} else {
				u2 += e.tufs.Value(int(s2[t]), el)
			}
			en2 += eec2[ty]
		}
		{
			mt := &meta[s3[t]]
			ty := mt.ty
			if ty != pt3 {
				pt3 = ty
				rn3++
			}
			etc := etc3[ty]
			arr := mt.arrival
			start := r3
			if arr > start {
				start = arr
			}
			completion := start + etc
			r3 = completion
			b3 += etc
			if el := completion - arr; el >= mt.tailT {
				u3 += mt.tailV
			} else {
				u3 += e.tufs.Value(int(s3[t]), el)
			}
			en3 += eec3[ty]
		}
	}
	st0 := kstate{ready: r0, busy: b0, util: u0, energy: en0, prevTy: pt0, runs: rn0}
	st1 := kstate{ready: r1, busy: b1, util: u1, energy: en1, prevTy: pt1, runs: rn1}
	st2 := kstate{ready: r2, busy: b2, util: u2, energy: en2, prevTy: pt2, runs: rn2}
	st3 := kstate{ready: r3, busy: b3, util: u3, energy: en3, prevTy: pt3, runs: rn3}
	d.typedCont(m0, s0[L:], &st0)
	d.typedCont(m1, s1[L:], &st1)
	d.typedCont(m2, s2[L:], &st2)
	d.typedCont(m3, s3[L:], &st3)
	dst.Utility[m0], dst.Energy[m0], dst.Busy[m0], dst.Ready[m0], dst.Done[m0] = st0.util, st0.energy, st0.busy, st0.ready, int32(len(s0))
	dst.Utility[m1], dst.Energy[m1], dst.Busy[m1], dst.Ready[m1], dst.Done[m1] = st1.util, st1.energy, st1.busy, st1.ready, int32(len(s1))
	dst.Utility[m2], dst.Energy[m2], dst.Busy[m2], dst.Ready[m2], dst.Done[m2] = st2.util, st2.energy, st2.busy, st2.ready, int32(len(s2))
	dst.Utility[m3], dst.Energy[m3], dst.Busy[m3], dst.Ready[m3], dst.Done[m3] = st3.util, st3.energy, st3.busy, st3.ready, int32(len(s3))
	d.stats.TypedRuns += uint64(st0.runs) + uint64(st1.runs) + uint64(st2.runs) + uint64(st3.runs)
	d.stats.TypedTasks += uint64(len(s0) + len(s1) + len(s2) + len(s3))
	d.stats.MachinesSimulated += 4
}

// SimulateNeedList simulates the Need machines whose indices are listed
// in ks, batching the typed kernel four machines at a time so their
// completion-time dependency chains overlap; the remainder — and every
// machine under the scalar reference kernel — runs through
// SimulateNeed. Contribution rows are bit-identical either way, so
// callers may hand over any subset in any grouping.
//
//detlint:hotpath
func (d *DeltaSession) SimulateNeedList(ks []int32, plan *DeltaPlan, dst *Contribs) {
	i := 0
	if d.kernel == KernelTyped {
		for ; i+4 <= len(ks); i += 4 {
			d.simNeed4(plan, dst, int(ks[i]), int(ks[i+1]), int(ks[i+2]), int(ks[i+3]))
		}
	}
	for ; i < len(ks); i++ {
		d.SimulateNeed(int(ks[i]), plan, dst)
	}
}

// SimulateAllNeeds simulates every machine the plan left to the caller,
// through the same batched path as SimulateNeedList.
//
//detlint:hotpath
func (d *DeltaSession) SimulateAllNeeds(plan *DeltaPlan, dst *Contribs) {
	ks := d.needKs[:len(plan.Need)]
	for k := range ks {
		ks[k] = int32(k)
	}
	d.needKs = ks
	d.SimulateNeedList(ks, plan, dst)
}

// reduce folds the per-machine contributions into the objective values
// in fixed machine order. Both the full and the incremental path end
// here, which is what makes them bit-identical.
//
//detlint:hotpath
func (d *DeltaSession) reduce(c *Contribs) Evaluation {
	e := d.e
	var ev Evaluation
	for m := range c.Utility {
		ev.Utility += c.Utility[m]
		ev.Energy += c.Energy[m]
		if c.Ready[m] > ev.Makespan {
			ev.Makespan = c.Ready[m]
		}
		ev.Completed += int(c.Done[m])
	}
	if e.idleWatts != nil {
		var sum float64
		for m, w := range e.idleWatts {
			if idle := c.Ready[m] - c.Busy[m]; idle > 0 {
				sum += w * idle
			}
		}
		ev.Energy += sum
	}
	return ev
}

// evaluate is the shared Allocation-based pipeline: scatter, prepare
// against the given parent, simulate every needed machine, reduce.
//
//detlint:hotpath
func (d *DeltaSession) evaluate(a *Allocation, parent *Contribs, dst *Contribs) Evaluation {
	d.ScatterSlots(a, d.slots, d.counts)
	d.Prepare(d.slots, d.counts, parent, dst, d.plan)
	d.SimulateAllNeeds(d.plan, dst)
	return d.Finish(dst, d.plan)
}

// EvaluateFull simulates the allocation machine-major, filling dst with
// the per-machine contributions and bucket fingerprints, and returns
// the objective values. dst must come from the same evaluator's
// NewContribs; its prior contents are overwritten. The allocation is
// not validated.
//
//detlint:hotpath
//detlint:pure
func (d *DeltaSession) EvaluateFull(a *Allocation, dst *Contribs) Evaluation {
	return d.evaluate(a, nil, dst)
}

// EvaluateDelta evaluates an allocation derived from a parent whose
// contribution cache is `parent`, re-simulating only machines whose
// task sequence actually changed: a machine whose bucket fingerprint
// matches the parent's inherits the parent's row. The dirty parameter
// is accepted for compatibility with the pre-typed flag-based path and
// no longer consulted — fingerprint matching checks every machine by
// content, which both subsumes any correct dirty superset and inherits
// through machines the flags over-approximated.
//
// The result is bit-identical to EvaluateFull on the same allocation
// (up to 64-bit fingerprint collision; see Prepare). If parent is nil
// or invalid, every machine is simulated.
//
//detlint:hotpath
func (d *DeltaSession) EvaluateDelta(a *Allocation, parent *Contribs, dirty []bool, dst *Contribs) Evaluation {
	_ = dirty
	return d.evaluate(a, parent, dst)
}
