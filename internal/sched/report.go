package sched

import (
	"fmt"
	"io"
)

// MachineReport describes one machine instance's share of a realized
// schedule — the per-machine breakdown an administrator reads to see
// where energy and work concentrate.
type MachineReport struct {
	Machine     int
	MachineType int
	Tasks       int
	// BusySeconds is the total execution time on the machine.
	BusySeconds float64
	// SpanSeconds is the time from 0 to the machine's last completion.
	SpanSeconds float64
	// Utilization is BusySeconds / SpanSeconds (0 for unused machines).
	Utilization float64
	// EnergyJoules is the execution energy attributed to the machine.
	EnergyJoules float64
	// Utility earned by the machine's tasks.
	Utility float64
}

// Report simulates the allocation and returns per-machine breakdowns,
// index-aligned with the system's machine instances.
func (e *Evaluator) Report(a *Allocation) ([]MachineReport, error) {
	if err := e.Validate(a); err != nil {
		return nil, err
	}
	n := e.NumTasks()
	seq := make([]int, n)
	for i := 0; i < n; i++ {
		seq[a.Order[i]] = i
	}
	reports := make([]MachineReport, e.NumMachines())
	for m := range reports {
		reports[m].Machine = m
		reports[m].MachineType = e.sys.MachineTypeOf(m)
	}
	ready := make([]float64, e.NumMachines())
	tasks := e.trace.Tasks
	for _, ti := range seq {
		m := a.Machine[ti]
		if m == Dropped {
			continue
		}
		task := &tasks[ti]
		start := ready[m]
		if task.Arrival > start {
			start = task.Arrival
		}
		etc := e.etc[task.Type][m]
		completion := start + etc
		ready[m] = completion
		r := &reports[m]
		r.Tasks++
		r.BusySeconds += etc
		r.SpanSeconds = completion
		r.EnergyJoules += e.eec[task.Type][m]
		r.Utility += task.TUF.Value(completion - task.Arrival)
	}
	for m := range reports {
		if reports[m].SpanSeconds > 0 {
			reports[m].Utilization = reports[m].BusySeconds / reports[m].SpanSeconds
		}
	}
	return reports, nil
}

// WriteReport prints the per-machine breakdown with machine-type names.
func (e *Evaluator) WriteReport(w io.Writer, a *Allocation) error {
	reports, err := e.Report(a)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-4s %-32s %6s %10s %8s %12s %10s\n",
		"m", "machine type", "tasks", "busy (s)", "util", "energy (MJ)", "utility")
	for _, r := range reports {
		fmt.Fprintf(w, "%-4d %-32s %6d %10.0f %8.2f %12.4f %10.1f\n",
			r.Machine, e.sys.MachineTypes[r.MachineType].Name, r.Tasks,
			r.BusySeconds, r.Utilization, r.EnergyJoules/1e6, r.Utility)
	}
	return nil
}
