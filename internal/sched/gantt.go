package sched

import (
	"fmt"
	"io"
	"sort"
)

// GanttRow is one executed task in schedule order, for export to
// spreadsheet or plotting tools.
type GanttRow struct {
	Task     int
	TaskType int
	Machine  int
	Arrival  float64
	Start    float64
	End      float64
	// WaitSeconds is Start − Arrival.
	WaitSeconds float64
	Utility     float64
	Energy      float64
}

// Gantt simulates the allocation and returns one row per executed task,
// sorted by machine then start time.
func (e *Evaluator) Gantt(a *Allocation) ([]GanttRow, error) {
	if err := e.Validate(a); err != nil {
		return nil, err
	}
	n := e.NumTasks()
	seq := make([]int, n)
	for i := 0; i < n; i++ {
		seq[a.Order[i]] = i
	}
	ready := make([]float64, e.NumMachines())
	tasks := e.trace.Tasks
	var rows []GanttRow
	for _, ti := range seq {
		m := a.Machine[ti]
		if m == Dropped {
			continue
		}
		task := &tasks[ti]
		start := ready[m]
		if task.Arrival > start {
			start = task.Arrival
		}
		end := start + e.etc[task.Type][m]
		ready[m] = end
		rows = append(rows, GanttRow{
			Task:        ti,
			TaskType:    task.Type,
			Machine:     int(m),
			Arrival:     task.Arrival,
			Start:       start,
			End:         end,
			WaitSeconds: start - task.Arrival,
			Utility:     task.TUF.Value(end - task.Arrival),
			Energy:      e.eec[task.Type][m],
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Machine != rows[j].Machine {
			return rows[i].Machine < rows[j].Machine
		}
		return rows[i].Start < rows[j].Start
	})
	return rows, nil
}

// WriteGanttCSV exports the schedule as CSV.
func (e *Evaluator) WriteGanttCSV(w io.Writer, a *Allocation) error {
	rows, err := e.Gantt(a)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "task,task_type,machine,arrival,start,end,wait_seconds,utility,energy_joules"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n",
			r.Task, r.TaskType, r.Machine, r.Arrival, r.Start, r.End, r.WaitSeconds, r.Utility, r.Energy); err != nil {
			return err
		}
	}
	return nil
}
