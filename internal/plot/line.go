package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// LineChart renders named series as connected lines (e.g. hypervolume
// versus generation). The x axis may be log-scaled, which suits the
// geometric iteration checkpoints of the experiments.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	Series []Series
}

func (c *LineChart) transformed() []Series {
	if !c.LogX {
		return c.Series
	}
	out := make([]Series, len(c.Series))
	for i, s := range c.Series {
		ts := Series{Name: s.Name}
		for _, p := range s.Points {
			if p.X > 0 {
				ts.Points = append(ts.Points, Point{X: math.Log10(p.X), Y: p.Y})
			}
		}
		out[i] = ts
	}
	return out
}

// ASCII renders the chart as text. Lines are drawn as their sample
// points; the terminal raster is too coarse for segments.
func (c *LineChart) ASCII(width, height int) string {
	scatter := &Chart{Title: c.Title, XLabel: c.XLabel, YLabel: c.YLabel, Series: c.transformed()}
	out := scatter.ASCII(width, height)
	if c.LogX {
		out += "(x axis log10)\n"
	}
	return out
}

// SVG renders the chart as a standalone SVG document with connected
// polylines per series.
func (c *LineChart) SVG(width, height int) string {
	if width < 200 {
		width = 200
	}
	if height < 150 {
		height = 150
	}
	const margin = 56.0
	series := c.transformed()
	base := &Chart{Series: series}
	xmin, xmax, ymin, ymax, ok := base.bounds()
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" text-anchor="middle" font-family="sans-serif" font-size="15">%s</text>`+"\n", width/2, escape(c.Title))
	}
	if !ok {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif" font-size="13">(no data)</text>`+"\n", width/2, height/2)
		b.WriteString("</svg>\n")
		return b.String()
	}
	plotW := float64(width) - 2*margin
	plotH := float64(height) - 2*margin
	sx := func(x float64) float64 { return margin + plotW*(x-xmin)/(xmax-xmin) }
	sy := func(y float64) float64 { return margin + plotH*(1-(y-ymin)/(ymax-ymin)) }
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#888"/>`+"\n", margin, margin, plotW, plotH)
	for i := 0; i <= 4; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/4
		fy := ymin + (ymax-ymin)*float64(i)/4
		label := fx
		if c.LogX {
			label = math.Pow(10, fx)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			sx(fx), float64(height)-margin+16, fmtTick(label))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			margin-6, sy(fy)+3, fmtTick(fy))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", sx(fx), margin, sx(fx), margin+plotH)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", margin, sy(fy), margin+plotW, sy(fy))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			width/2, height-12, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%d" transform="rotate(-90 16 %d)" text-anchor="middle" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			height/2, height/2, escape(c.YLabel))
	}
	for si, s := range series {
		color := svgColors[si%len(svgColors)]
		pts := append([]Point(nil), s.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		var poly []string
		for _, p := range pts {
			poly = append(poly, fmt.Sprintf("%.1f,%.1f", sx(p.X), sy(p.Y)))
		}
		if len(poly) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n", strings.Join(poly, " "), color)
		}
		for _, p := range pts {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n", sx(p.X), sy(p.Y), color)
		}
		lx := margin + 8
		ly := margin + 14 + 16*float64(si)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s"/>`+"\n", lx, ly-4, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11">%s</text>`+"\n", lx+8, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}
