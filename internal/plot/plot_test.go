package plot

import (
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "Pareto fronts",
		XLabel: "energy (MJ)",
		YLabel: "utility",
		Series: []Series{
			{Name: "min-energy", Points: []Point{{1, 10}, {2, 20}}},
			{Name: "random", Points: []Point{{3, 15}, {4, 25}}},
		},
	}
}

func TestASCIIContainsStructure(t *testing.T) {
	out := sampleChart().ASCII(60, 20)
	if !strings.Contains(out, "Pareto fronts") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "min-energy") || !strings.Contains(out, "random") {
		t.Error("missing legend entries")
	}
	if !strings.Contains(out, "D") || !strings.Contains(out, "S") {
		t.Error("missing series markers")
	}
	if !strings.Contains(out, "x: energy (MJ), y: utility") {
		t.Error("missing axis labels")
	}
}

func TestASCIIEmptyChart(t *testing.T) {
	c := &Chart{Title: "empty"}
	out := c.ASCII(40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Error("empty chart should say so")
	}
}

func TestASCIIDegenerateRange(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "p", Points: []Point{{5, 5}}}}}
	out := c.ASCII(40, 10)
	if !strings.Contains(out, "D") {
		t.Error("single point not plotted")
	}
}

func TestASCIIClampsTinyDimensions(t *testing.T) {
	out := sampleChart().ASCII(1, 1)
	if len(out) == 0 {
		t.Fatal("no output")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 8 {
		t.Fatalf("height not clamped: %d lines", len(lines))
	}
}

func TestASCIIMarkersInsideFrame(t *testing.T) {
	out := sampleChart().ASCII(50, 12)
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "=") { // legend line
			continue
		}
		if strings.IndexByte(line, 'D') >= 0 && !strings.Contains(line, "|") {
			t.Fatal("marker outside framed area")
		}
	}
}

func TestSVGWellFormed(t *testing.T) {
	out := sampleChart().SVG(640, 480)
	for _, want := range []string{"<svg", "</svg>", "circle", "polyline", "min-energy", "utility"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<svg") != 1 {
		t.Error("multiple svg roots")
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	c := &Chart{Title: `a<b & "c"`, Series: []Series{{Name: "s", Points: []Point{{1, 1}}}}}
	out := c.SVG(300, 200)
	if strings.Contains(out, `a<b`) {
		t.Error("unescaped < in title")
	}
	if !strings.Contains(out, "a&lt;b &amp; &quot;c&quot;") {
		t.Error("escape output wrong")
	}
}

func TestSVGEmpty(t *testing.T) {
	c := &Chart{}
	out := c.SVG(300, 200)
	if !strings.Contains(out, "(no data)") {
		t.Error("empty SVG should say no data")
	}
}

func TestSVGClampsDimensions(t *testing.T) {
	out := sampleChart().SVG(1, 1)
	if !strings.Contains(out, `width="200"`) {
		t.Error("width not clamped")
	}
}

func sampleLineChart() *LineChart {
	return &LineChart{
		Title:  "hypervolume convergence",
		XLabel: "generation",
		YLabel: "hypervolume",
		LogX:   true,
		Series: []Series{
			{Name: "seeded", Points: []Point{{100, 0.4}, {1000, 0.8}, {10000, 1.0}}},
			{Name: "random", Points: []Point{{100, 0.1}, {1000, 0.5}, {10000, 0.95}}},
		},
	}
}

func TestLineChartASCII(t *testing.T) {
	out := sampleLineChart().ASCII(60, 16)
	if !strings.Contains(out, "hypervolume convergence") || !strings.Contains(out, "(x axis log10)") {
		t.Fatalf("line chart ASCII incomplete:\n%s", out)
	}
}

func TestLineChartSVG(t *testing.T) {
	out := sampleLineChart().SVG(640, 480)
	for _, want := range []string{"<svg", "polyline", "seeded", "random", "generation"} {
		if !strings.Contains(out, want) {
			t.Errorf("line SVG missing %q", want)
		}
	}
	// Log-scaled ticks show original magnitudes.
	if !strings.Contains(out, "1e+04") && !strings.Contains(out, "10000") {
		t.Error("log ticks not back-transformed")
	}
}

func TestLineChartLogXDropsNonPositive(t *testing.T) {
	c := &LineChart{LogX: true, Series: []Series{{Name: "s", Points: []Point{{0, 1}, {-5, 2}, {10, 3}}}}}
	out := c.SVG(300, 200)
	if !strings.Contains(out, "circle") {
		t.Fatal("positive point should survive")
	}
}

func TestLineChartEmpty(t *testing.T) {
	c := &LineChart{}
	if !strings.Contains(c.SVG(300, 200), "(no data)") {
		t.Fatal("empty line chart should say no data")
	}
}
