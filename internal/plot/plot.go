// Package plot renders Pareto fronts as ASCII scatter charts for
// terminals and as standalone SVG documents, mirroring the figures of the
// paper's §VI (energy on the x-axis, utility on the y-axis, one marker
// style per population).
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one marker position.
type Point struct {
	X, Y float64
}

// Series is a named point set drawn with one marker.
type Series struct {
	Name   string
	Points []Point
}

// Chart is a scatter chart definition.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// markers used for successive series in ASCII output; the order mirrors
// the paper's figures (diamond = min-energy, square = min-min, circle =
// max-utility, triangle = max-utility-per-energy, star = random).
var asciiMarkers = []byte{'D', 'S', 'O', 'A', '*', '+', 'x', '#'}

// bounds returns the data extent across all series, padding degenerate
// ranges.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, ok bool) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for _, p := range s.Points {
			xmin = math.Min(xmin, p.X)
			xmax = math.Max(xmax, p.X)
			ymin = math.Min(ymin, p.Y)
			ymax = math.Max(ymax, p.Y)
		}
	}
	if math.IsInf(xmin, 1) {
		return 0, 0, 0, 0, false
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax, true
}

// ASCII renders the chart into a width×height character grid
// (plus axes, title, and legend). Width and height are clamped to sane
// minima.
func (c *Chart) ASCII(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	xmin, xmax, ymin, ymax, ok := c.bounds()
	if !ok {
		b.WriteString("(no data)\n")
		return b.String()
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		marker := asciiMarkers[si%len(asciiMarkers)]
		for _, p := range s.Points {
			col := int(float64(width-1) * (p.X - xmin) / (xmax - xmin))
			row := height - 1 - int(float64(height-1)*(p.Y-ymin)/(ymax-ymin))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = marker
			}
		}
	}
	yLo, yHi := fmtTick(ymin), fmtTick(ymax)
	labelW := len(yLo)
	if len(yHi) > labelW {
		labelW = len(yHi)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelW)
		switch i {
		case 0:
			label = pad(yHi, labelW)
		case height - 1:
			label = pad(yLo, labelW)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s  %s%s\n", strings.Repeat(" ", labelW), fmtTick(xmin),
		pad(fmtTick(xmax), width-len(fmtTick(xmin))))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "x: %s, y: %s\n", c.XLabel, c.YLabel)
	}
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", asciiMarkers[si%len(asciiMarkers)], s.Name))
	}
	if len(legend) > 0 {
		b.WriteString(strings.Join(legend, "  ") + "\n")
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6 || (av < 1e-3 && av != 0):
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// svg palette; color-blind friendly.
var svgColors = []string{"#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#F0E442", "#000000"}

// SVG renders the chart as a standalone SVG document of the given pixel
// dimensions.
func (c *Chart) SVG(width, height int) string {
	if width < 200 {
		width = 200
	}
	if height < 150 {
		height = 150
	}
	const margin = 56.0
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	xmin, xmax, ymin, ymax, ok := c.bounds()
	plotW := float64(width) - 2*margin
	plotH := float64(height) - 2*margin
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" text-anchor="middle" font-family="sans-serif" font-size="15">%s</text>`+"\n", width/2, escape(c.Title))
	}
	if !ok {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif" font-size="13">(no data)</text>`+"\n", width/2, height/2)
		b.WriteString("</svg>\n")
		return b.String()
	}
	sx := func(x float64) float64 { return margin + plotW*(x-xmin)/(xmax-xmin) }
	sy := func(y float64) float64 { return margin + plotH*(1-(y-ymin)/(ymax-ymin)) }
	// Axes.
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#888"/>`+"\n", margin, margin, plotW, plotH)
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/4
		fy := ymin + (ymax-ymin)*float64(i)/4
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			sx(fx), float64(height)-margin+16, fmtTick(fx))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			margin-6, sy(fy)+3, fmtTick(fy))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", sx(fx), margin, sx(fx), margin+plotH)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", margin, sy(fy), margin+plotW, sy(fy))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			width/2, height-12, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%d" transform="rotate(-90 16 %d)" text-anchor="middle" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			height/2, height/2, escape(c.YLabel))
	}
	// Series markers and legend.
	for si, s := range c.Series {
		color := svgColors[si%len(svgColors)]
		// Connect front points sorted by x with a faint polyline.
		pts := append([]Point(nil), s.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		if len(pts) > 1 {
			var poly []string
			for _, p := range pts {
				poly = append(poly, fmt.Sprintf("%.1f,%.1f", sx(p.X), sy(p.Y)))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-opacity="0.35"/>`+"\n", strings.Join(poly, " "), color)
		}
		for _, p := range pts {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", sx(p.X), sy(p.Y), color)
		}
		lx := margin + 8
		ly := margin + 14 + 16*float64(si)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s"/>`+"\n", lx, ly-4, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11">%s</text>`+"\n", lx+8, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
