package telemetry

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tradeoff/internal/obs"
)

func sampleGeneration() obs.GenerationStats {
	return obs.GenerationStats{
		Label:             "ds1/test",
		Generation:        1,
		Population:        4,
		Front:             [][]float64{{10, 2}},
		FullEvals:         4,
		MachinesSimulated: 8,
		NumMachines:       2,
		Indicators:        obs.Indicators{Hypervolume: 3.5, FrontSize: 1},
	}
}

func TestSetupDisabled(t *testing.T) {
	s, err := Setup(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Observer() != nil {
		t.Fatal("zero config must yield a nil observer")
	}
	if s.Registry() != nil || s.MetricsURL() != "" {
		t.Fatal("zero config opened a sink")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var nilSession *Session
	if nilSession.Observer() != nil || nilSession.Close() != nil {
		t.Fatal("nil session must be inert")
	}
}

func TestSetupTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	var ticks int64
	s, err := Setup(Config{TracePath: path, Clock: func() int64 { ticks += 7; return ticks }})
	if err != nil {
		t.Fatal(err)
	}
	o := s.Observer()
	if o == nil {
		t.Fatal("trace config yielded no observer")
	}
	o.ObserveGeneration(sampleGeneration())
	o.ObserveMigration(obs.MigrationEvent{Generation: 5, From: 0, To: 1, Count: 2})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sum, err := obs.ValidateTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Generations != 1 || sum.Migrations != 1 {
		t.Fatalf("summary %+v", sum)
	}
}

func TestSetupMetricsServer(t *testing.T) {
	s, err := Setup(Config{MetricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Registry() == nil {
		t.Fatal("metrics config yielded no registry")
	}
	s.Observer().ObserveGeneration(sampleGeneration())

	url := s.MetricsURL()
	if !strings.HasPrefix(url, "http://127.0.0.1:") {
		t.Fatalf("metrics URL %q", url)
	}
	get := func(u string) string {
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", u, resp.StatusCode)
		}
		return string(body)
	}
	text := get(url)
	if !strings.Contains(text, "tradeoff_generations_total 1") {
		t.Fatalf("/metrics missing generation counter:\n%s", text)
	}
	jsonBody := get(strings.TrimSuffix(url, "/metrics") + "/metrics.json")
	if !strings.Contains(jsonBody, "\"tradeoff_generations_total\":1") {
		t.Fatalf("/metrics.json missing generation counter:\n%s", jsonBody)
	}
}

func TestSetupBadAddr(t *testing.T) {
	if _, err := Setup(Config{MetricsAddr: "definitely:not:an:addr"}); err == nil {
		t.Fatal("bad metrics address accepted")
	}
}

func TestSetupBadTracePath(t *testing.T) {
	if _, err := Setup(Config{TracePath: filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl")}); err == nil {
		t.Fatal("uncreatable trace path accepted")
	}
}
