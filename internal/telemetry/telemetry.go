// Package telemetry wires the observability layer (internal/obs) to the
// command-line surface shared by cmd/tradeoff and cmd/experiments: a
// -trace flag streaming JSONL telemetry to a file, and a -metrics-addr
// flag serving the metric registry over HTTP in Prometheus text format
// (with an expvar-style JSON view alongside).
//
// The wall clock is injected by the caller — commands pass
// time.Now().UnixNano at their layer — so this package, like the rest of
// internal/*, never reads ambient time and a fixed clock reproduces
// traces byte for byte.
package telemetry

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"os"

	"tradeoff/internal/obs"
)

// Config selects which telemetry sinks a Session opens. Zero values
// disable each sink; a fully zero Config yields a Session whose
// Observer is nil, which every observation site treats as "off".
type Config struct {
	// TracePath, when non-empty, creates (truncating) a JSONL trace file
	// receiving one object per telemetry event.
	TracePath string
	// MetricsAddr, when non-empty, serves GET /metrics (Prometheus text)
	// and GET /metrics.json (expvar-style JSON) on this TCP address.
	MetricsAddr string
	// PhaseProfile, when true, creates a PhaseTimer on Clock so the run
	// records a phase-level wall-time profile (and, with a trace or
	// metrics sink, per-generation phase breakdowns).
	PhaseProfile bool
	// FlightRecorder, when > 0, attaches a flight recorder retaining the
	// last FlightRecorder telemetry events for on-demand dumps.
	FlightRecorder int
	// Clock timestamps trace records; nil stamps every record 0.
	Clock obs.Clock
}

// Session holds the open telemetry sinks for one command invocation.
type Session struct {
	observer  obs.Observer
	registry  *obs.Registry
	trace     *obs.TraceWriter
	traceBuf  *bufio.Writer
	traceFile *os.File
	server    *http.Server
	listener  net.Listener
	phase     *obs.PhaseTimer
	flight    *obs.FlightRecorder
}

// Setup opens the sinks named by cfg. On error nothing is left open.
func Setup(cfg Config) (*Session, error) {
	s := &Session{}
	var parts []obs.Observer
	if cfg.TracePath != "" {
		f, err := os.Create(cfg.TracePath)
		if err != nil {
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		s.traceFile = f
		s.traceBuf = bufio.NewWriter(f)
		s.trace = obs.NewTraceWriter(s.traceBuf, cfg.Clock)
		parts = append(parts, s.trace)
	}
	if cfg.PhaseProfile {
		s.phase = obs.NewPhaseTimer(cfg.Clock)
	}
	if cfg.FlightRecorder > 0 {
		s.flight = obs.NewFlightRecorder(cfg.FlightRecorder, cfg.Clock)
		parts = append(parts, s.flight)
	}
	if cfg.MetricsAddr != "" {
		ln, err := net.Listen("tcp", cfg.MetricsAddr)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		s.listener = ln
		s.registry = obs.NewRegistry()
		parts = append(parts, obs.NewMetrics(s.registry))
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			s.registry.WritePrometheus(w)
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			s.registry.WriteJSON(w)
		})
		s.server = &http.Server{Handler: mux}
		go s.server.Serve(ln) //nolint:errcheck // Serve always returns on Close
	}
	s.observer = obs.Combine(parts...)
	return s, nil
}

// Observer returns the combined observer to attach to a run, or nil
// when no sink is configured.
func (s *Session) Observer() obs.Observer {
	if s == nil {
		return nil
	}
	return s.observer
}

// Registry returns the metric registry, or nil when -metrics-addr is
// off.
func (s *Session) Registry() *obs.Registry {
	if s == nil {
		return nil
	}
	return s.registry
}

// PhaseTimer returns the phase profiler, or nil when -phase-profile is
// off.
func (s *Session) PhaseTimer() *obs.PhaseTimer {
	if s == nil {
		return nil
	}
	return s.phase
}

// FlightRecorder returns the flight recorder, or nil when
// -flight-recorder is off.
func (s *Session) FlightRecorder() *obs.FlightRecorder {
	if s == nil {
		return nil
	}
	return s.flight
}

// IslandBoard registers per-island health gauges for an island run, or
// returns nil when metrics are off or islands < 2. Call at most once
// per session (gauge names are registered on first call).
func (s *Session) IslandBoard(islands int) *obs.IslandBoard {
	if s == nil || s.registry == nil || islands < 2 {
		return nil
	}
	return obs.NewIslandBoard(s.registry, islands)
}

// DistBoard registers wire-health metrics for a distributed island
// run, or returns nil when metrics are off or workers < 1. Call at
// most once per session (metric names are registered on first call).
func (s *Session) DistBoard(workers int) *obs.DistBoard {
	if s == nil || s.registry == nil || workers < 1 {
		return nil
	}
	return obs.NewDistBoard(s.registry, workers)
}

// MetricsURL returns the resolved base URL of the metrics server, or ""
// when it is off. Useful when the configured address had port 0.
func (s *Session) MetricsURL() string {
	if s == nil || s.listener == nil {
		return ""
	}
	return "http://" + s.listener.Addr().String() + "/metrics"
}

// Close flushes and closes the trace file and shuts the metrics server
// down. It is safe on a nil Session and reports the first error.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	var first error
	if s.trace != nil {
		if err := s.trace.Err(); err != nil && first == nil {
			first = err
		}
	}
	if s.traceBuf != nil {
		if err := s.traceBuf.Flush(); err != nil && first == nil {
			first = err
		}
	}
	if s.traceFile != nil {
		if err := s.traceFile.Close(); err != nil && first == nil {
			first = err
		}
		s.traceFile = nil
	}
	if s.server != nil {
		if err := s.server.Close(); err != nil && first == nil {
			first = err
		}
		s.server = nil
	}
	return first
}
