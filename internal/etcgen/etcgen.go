// Package etcgen implements the classic synthetic ETC-matrix generation
// methods of Ali, Siegel, Maheswaran, Hensgen & Ali, "Representing task
// and machine heterogeneities for heterogeneous computing systems"
// (ref [15] of the paper): the range-based method and the
// coefficient-of-variation-based (CVB) method. The paper's Gram-Charlier
// pipeline (internal/datagen) is the contribution that *replaces* these
// when real data is available; this package provides them as the
// baseline to compare heterogeneity fidelity against, and as standalone
// generators for experiments without real data.
package etcgen

import (
	"fmt"
	"math"

	"tradeoff/internal/hcs"
	"tradeoff/internal/rng"
)

// RangeConfig parameterizes the range-based method: task heterogeneity
// Rtask and machine heterogeneity Rmach are the upper bounds of uniform
// distributions.
type RangeConfig struct {
	TaskTypes    int
	MachineTypes int
	// Rtask bounds the per-task baseline values tau ~ U(1, Rtask).
	Rtask float64
	// Rmach bounds the per-entry multipliers ~ U(1, Rmach).
	Rmach float64
}

// RangeBased generates an ETC matrix with the range-based method:
// ETC(t, m) = tau_t × U(1, Rmach), tau_t ~ U(1, Rtask). High Rtask/Rmach
// values produce high task/machine heterogeneity.
func RangeBased(cfg RangeConfig, src *rng.Source) (hcs.Matrix, error) {
	if cfg.TaskTypes < 1 || cfg.MachineTypes < 1 {
		return hcs.Matrix{}, fmt.Errorf("etcgen: dimensions %dx%d invalid", cfg.TaskTypes, cfg.MachineTypes)
	}
	if cfg.Rtask <= 1 || cfg.Rmach <= 1 {
		return hcs.Matrix{}, fmt.Errorf("etcgen: ranges (%v, %v) must exceed 1", cfg.Rtask, cfg.Rmach)
	}
	m := hcs.NewMatrix(cfg.TaskTypes, cfg.MachineTypes)
	for t := 0; t < cfg.TaskTypes; t++ {
		tau := src.Range(1, cfg.Rtask)
		for mu := 0; mu < cfg.MachineTypes; mu++ {
			m.Set(t, mu, tau*src.Range(1, cfg.Rmach))
		}
	}
	return m, nil
}

// CVBConfig parameterizes the CVB method: mean task execution time and
// the task and machine coefficients of variation.
type CVBConfig struct {
	TaskTypes    int
	MachineTypes int
	// MeanTask is the mean of the per-task baselines (mu_task).
	MeanTask float64
	// Vtask is the task coefficient of variation.
	Vtask float64
	// Vmach is the machine coefficient of variation.
	Vmach float64
}

// CVB generates an ETC matrix with the coefficient-of-variation-based
// method: per-task baselines q_t are gamma distributed with mean
// MeanTask and CV Vtask; each row's entries are gamma distributed with
// mean q_t and CV Vmach.
func CVB(cfg CVBConfig, src *rng.Source) (hcs.Matrix, error) {
	if cfg.TaskTypes < 1 || cfg.MachineTypes < 1 {
		return hcs.Matrix{}, fmt.Errorf("etcgen: dimensions %dx%d invalid", cfg.TaskTypes, cfg.MachineTypes)
	}
	if cfg.MeanTask <= 0 || cfg.Vtask <= 0 || cfg.Vmach <= 0 {
		return hcs.Matrix{}, fmt.Errorf("etcgen: CVB parameters must be positive")
	}
	// Gamma(shape alpha, scale beta): mean = alpha*beta, CV = 1/sqrt(alpha).
	alphaTask := 1 / (cfg.Vtask * cfg.Vtask)
	betaTask := cfg.MeanTask / alphaTask
	alphaMach := 1 / (cfg.Vmach * cfg.Vmach)
	m := hcs.NewMatrix(cfg.TaskTypes, cfg.MachineTypes)
	for t := 0; t < cfg.TaskTypes; t++ {
		q := gamma(src, alphaTask, betaTask)
		betaMach := q / alphaMach
		for mu := 0; mu < cfg.MachineTypes; mu++ {
			m.Set(t, mu, gamma(src, alphaMach, betaMach))
		}
	}
	return m, nil
}

// gamma draws a Gamma(shape, scale) variate via Marsaglia & Tsang's
// method (with Johnk-style boosting for shape < 1).
func gamma(src *rng.Source, shape, scale float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := src.Float64()
		for u == 0 {
			u = src.Float64()
		}
		return gamma(src, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := src.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := src.Float64()
		if u == 0 {
			continue
		}
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// PowerFromETC derives an EPC matrix loosely anticorrelated with speed —
// faster machines draw more power — for experiments that need a full
// system from a synthetic ETC matrix. basePower is the fleet-average
// draw; spread is the relative variation (e.g. 0.4).
func PowerFromETC(etc hcs.Matrix, basePower, spread float64, src *rng.Source) (hcs.Matrix, error) {
	if basePower <= 0 || spread < 0 || spread >= 1 {
		return hcs.Matrix{}, fmt.Errorf("etcgen: power parameters invalid")
	}
	// Column speed score: inverse of mean execution time, normalized.
	cols := etc.Cols()
	speed := make([]float64, cols)
	var total float64
	for mu := 0; mu < cols; mu++ {
		var sum float64
		for t := 0; t < etc.Rows(); t++ {
			sum += etc.At(t, mu)
		}
		speed[mu] = float64(etc.Rows()) / sum
		total += speed[mu]
	}
	meanSpeed := total / float64(cols)
	epc := hcs.NewMatrix(etc.Rows(), cols)
	for mu := 0; mu < cols; mu++ {
		// Faster-than-average machines draw proportionally more power.
		machPower := basePower * (1 + spread*(speed[mu]/meanSpeed-1))
		if machPower < basePower*(1-spread) {
			machPower = basePower * (1 - spread)
		}
		for t := 0; t < etc.Rows(); t++ {
			jitter := 1 + spread*0.25*(2*src.Float64()-1)
			epc.Set(t, mu, machPower*jitter)
		}
	}
	return epc, nil
}

// SystemFrom assembles a general-purpose-only hcs.System from synthetic
// ETC/EPC matrices with one machine instance per machine type.
func SystemFrom(etc, epc hcs.Matrix) (*hcs.System, error) {
	s := &hcs.System{ETC: etc, EPC: epc}
	for mu := 0; mu < etc.Cols(); mu++ {
		s.MachineTypes = append(s.MachineTypes, hcs.MachineType{
			Name:     fmt.Sprintf("synthetic-machine-%02d", mu),
			Category: hcs.GeneralPurpose,
		})
		s.Machines = append(s.Machines, hcs.Machine{ID: mu, Type: mu})
	}
	for t := 0; t < etc.Rows(); t++ {
		s.TaskTypes = append(s.TaskTypes, hcs.TaskType{
			Name:     fmt.Sprintf("synthetic-task-%02d", t),
			Category: hcs.GeneralPurpose,
		})
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("etcgen: assembled system invalid: %w", err)
	}
	return s, nil
}
