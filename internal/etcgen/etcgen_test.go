package etcgen

import (
	"math"
	"testing"

	"tradeoff/internal/rng"
	"tradeoff/internal/stats"
)

func TestRangeBasedDimensionsAndPositivity(t *testing.T) {
	m, err := RangeBased(RangeConfig{TaskTypes: 20, MachineTypes: 8, Rtask: 100, Rmach: 10}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 20 || m.Cols() != 8 {
		t.Fatal("dimensions wrong")
	}
	for tt := 0; tt < m.Rows(); tt++ {
		for mu := 0; mu < m.Cols(); mu++ {
			v := m.At(tt, mu)
			if !(v >= 1) || v > 100*10 {
				t.Fatalf("entry [%d][%d] = %v outside (1, Rtask*Rmach)", tt, mu, v)
			}
		}
	}
}

func TestRangeBasedValidation(t *testing.T) {
	src := rng.New(1)
	bad := []RangeConfig{
		{TaskTypes: 0, MachineTypes: 5, Rtask: 10, Rmach: 10},
		{TaskTypes: 5, MachineTypes: 0, Rtask: 10, Rmach: 10},
		{TaskTypes: 5, MachineTypes: 5, Rtask: 1, Rmach: 10},
		{TaskTypes: 5, MachineTypes: 5, Rtask: 10, Rmach: 0.5},
	}
	for i, cfg := range bad {
		if _, err := RangeBased(cfg, src); err == nil {
			t.Errorf("bad range config %d accepted", i)
		}
	}
}

func TestRangeHeterogeneityKnobs(t *testing.T) {
	// Higher Rtask must yield a larger row-average CV.
	src := rng.New(2)
	low, err := RangeBased(RangeConfig{TaskTypes: 300, MachineTypes: 10, Rtask: 2, Rmach: 5}, src)
	if err != nil {
		t.Fatal(err)
	}
	high, err := RangeBased(RangeConfig{TaskTypes: 300, MachineTypes: 10, Rtask: 1000, Rmach: 5}, src)
	if err != nil {
		t.Fatal(err)
	}
	cv := func(m interface {
		Rows() int
		Row(int) []float64
	}) float64 {
		var avgs []float64
		for i := 0; i < m.Rows(); i++ {
			avgs = append(avgs, stats.Mean(m.Row(i)))
		}
		h, err := stats.MeasureHeterogeneity(avgs)
		if err != nil {
			t.Fatal(err)
		}
		return h.CV
	}
	if !(cv(high) > cv(low)) {
		t.Fatalf("Rtask knob did not increase heterogeneity: %v vs %v", cv(low), cv(high))
	}
}

func TestCVBMatchesTargetCVs(t *testing.T) {
	cfg := CVBConfig{TaskTypes: 4000, MachineTypes: 12, MeanTask: 100, Vtask: 0.6, Vmach: 0.3}
	m, err := CVB(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Task CV: CV of the row baselines ~ row means (machine noise
	// averages out over 12 columns, adding a small bias).
	var rowMeans []float64
	for tt := 0; tt < m.Rows(); tt++ {
		rowMeans = append(rowMeans, stats.Mean(m.Row(tt)))
	}
	hm, err := stats.MeasureHeterogeneity(rowMeans)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hm.CV-0.6) > 0.1 {
		t.Errorf("task CV = %v, want ~0.6", hm.CV)
	}
	if math.Abs(stats.Mean(rowMeans)-100) > 5 {
		t.Errorf("mean task time = %v, want ~100", stats.Mean(rowMeans))
	}
	// Machine CV: per-row CVs should average ~Vmach.
	var sumCV float64
	for tt := 0; tt < m.Rows(); tt++ {
		h, err := stats.MeasureHeterogeneity(m.Row(tt))
		if err != nil {
			t.Fatal(err)
		}
		sumCV += h.CV
	}
	if avg := sumCV / float64(m.Rows()); math.Abs(avg-0.3) > 0.05 {
		t.Errorf("mean machine CV = %v, want ~0.3", avg)
	}
}

func TestCVBValidation(t *testing.T) {
	src := rng.New(1)
	bad := []CVBConfig{
		{TaskTypes: 0, MachineTypes: 5, MeanTask: 10, Vtask: 0.5, Vmach: 0.5},
		{TaskTypes: 5, MachineTypes: 5, MeanTask: 0, Vtask: 0.5, Vmach: 0.5},
		{TaskTypes: 5, MachineTypes: 5, MeanTask: 10, Vtask: 0, Vmach: 0.5},
		{TaskTypes: 5, MachineTypes: 5, MeanTask: 10, Vtask: 0.5, Vmach: -1},
	}
	for i, cfg := range bad {
		if _, err := CVB(cfg, src); err == nil {
			t.Errorf("bad CVB config %d accepted", i)
		}
	}
}

func TestCVBPositive(t *testing.T) {
	m, err := CVB(CVBConfig{TaskTypes: 50, MachineTypes: 10, MeanTask: 10, Vtask: 1.5, Vmach: 0.9}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < m.Rows(); tt++ {
		for mu := 0; mu < m.Cols(); mu++ {
			if !(m.At(tt, mu) > 0) {
				t.Fatalf("non-positive entry at [%d][%d]", tt, mu)
			}
		}
	}
}

func TestGammaMoments(t *testing.T) {
	src := rng.New(5)
	for _, tc := range []struct{ shape, scale float64 }{{0.5, 2}, {1, 1}, {4, 3}, {20, 0.5}} {
		var sum, sum2 float64
		const n = 100000
		for i := 0; i < n; i++ {
			x := gamma(src, tc.shape, tc.scale)
			sum += x
			sum2 += x * x
		}
		mean := sum / n
		wantMean := tc.shape * tc.scale
		if math.Abs(mean-wantMean) > 0.03*wantMean {
			t.Errorf("gamma(%v,%v) mean = %v, want %v", tc.shape, tc.scale, mean, wantMean)
		}
		variance := sum2/n - mean*mean
		wantVar := tc.shape * tc.scale * tc.scale
		if math.Abs(variance-wantVar) > 0.1*wantVar {
			t.Errorf("gamma(%v,%v) variance = %v, want %v", tc.shape, tc.scale, variance, wantVar)
		}
	}
}

func TestPowerFromETCAndSystemAssembly(t *testing.T) {
	src := rng.New(6)
	etc, err := CVB(CVBConfig{TaskTypes: 10, MachineTypes: 6, MeanTask: 100, Vtask: 0.5, Vmach: 0.4}, src)
	if err != nil {
		t.Fatal(err)
	}
	epc, err := PowerFromETC(etc, 120, 0.4, src)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := SystemFrom(etc, epc)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumMachines() != 6 || sys.NumTaskTypes() != 10 {
		t.Fatal("assembled system dimensions wrong")
	}
	// Faster machines draw more power: compare fastest vs slowest column.
	colMean := func(m int) (etcMean, epcMean float64) {
		for tt := 0; tt < etc.Rows(); tt++ {
			etcMean += etc.At(tt, m)
			epcMean += epc.At(tt, m)
		}
		return etcMean / float64(etc.Rows()), epcMean / float64(etc.Rows())
	}
	fast, slow := 0, 0
	fastT, slowT := math.Inf(1), math.Inf(-1)
	for mu := 0; mu < 6; mu++ {
		et, _ := colMean(mu)
		if et < fastT {
			fastT, fast = et, mu
		}
		if et > slowT {
			slowT, slow = et, mu
		}
	}
	_, fastP := colMean(fast)
	_, slowP := colMean(slow)
	if !(fastP > slowP) {
		t.Fatalf("fastest machine draws %v W, slowest %v W; want anticorrelation", fastP, slowP)
	}
}

func TestPowerFromETCValidation(t *testing.T) {
	etc, _ := CVB(CVBConfig{TaskTypes: 3, MachineTypes: 3, MeanTask: 10, Vtask: 0.5, Vmach: 0.5}, rng.New(7))
	if _, err := PowerFromETC(etc, 0, 0.4, rng.New(1)); err == nil {
		t.Error("zero base power accepted")
	}
	if _, err := PowerFromETC(etc, 100, 1.5, rng.New(1)); err == nil {
		t.Error("spread >= 1 accepted")
	}
}

func BenchmarkCVB30x13(b *testing.B) {
	cfg := CVBConfig{TaskTypes: 30, MachineTypes: 13, MeanTask: 100, Vtask: 0.6, Vmach: 0.35}
	src := rng.New(1)
	for i := 0; i < b.N; i++ {
		if _, err := CVB(cfg, src); err != nil {
			b.Fatal(err)
		}
	}
}
