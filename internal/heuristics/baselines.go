package heuristics

import (
	"math"

	"tradeoff/internal/sched"
)

// This file implements the classic static mapping heuristics of Braun et
// al. ("A comparison of eleven static heuristics...", JPDC 2001), which
// the paper cites as the lineage of its Min-Min seed. They serve as
// baselines for the seeding study and as comparison points for the
// NSGA-II fronts: each produces a single allocation somewhere inside the
// utility/energy objective space.

// Baseline names a classic single-solution mapping heuristic.
type Baseline int

const (
	// OLB (opportunistic load balancing) assigns each task, in arrival
	// order, to the machine that becomes ready soonest, ignoring
	// execution times.
	OLB Baseline = iota
	// MCT (minimum completion time) assigns each task, in arrival order,
	// to the machine minimizing that task's completion time.
	MCT
	// MET (minimum execution time) assigns each task to the machine with
	// the smallest ETC for its type, ignoring machine load.
	MET
	// MaxMin is the two-stage counterpart of Min-Min that maps the task
	// with the *largest* best-case completion time first.
	MaxMin
	// Sufferage maps, at each step, the task that would "suffer" most if
	// denied its best machine (largest gap between its best and
	// second-best completion times).
	Sufferage
)

// Baselines lists every baseline in a stable order.
var Baselines = []Baseline{OLB, MCT, MET, MaxMin, Sufferage}

func (b Baseline) String() string {
	switch b {
	case OLB:
		return "olb"
	case MCT:
		return "mct"
	case MET:
		return "met"
	case MaxMin:
		return "max-min"
	case Sufferage:
		return "sufferage"
	default:
		return "baseline-unknown"
	}
}

// Build runs the baseline against an evaluator's system and trace.
func (b Baseline) Build(e *sched.Evaluator) *sched.Allocation {
	switch b {
	case OLB:
		return buildArrivalOrder(e, func(task taskView, ready []float64) int {
			best, bestReady := -1, 0.0
			for _, m := range task.eligible {
				if best == -1 || ready[m] < bestReady {
					best, bestReady = m, ready[m]
				}
			}
			return best
		})
	case MCT:
		return buildArrivalOrder(e, func(task taskView, ready []float64) int {
			best, bestC := -1, 0.0
			for _, m := range task.eligible {
				c := completionOn(task, ready, m)
				if best == -1 || c < bestC {
					best, bestC = m, c
				}
			}
			return best
		})
	case MET:
		return buildArrivalOrder(e, func(task taskView, ready []float64) int {
			best, bestT := -1, 0.0
			for _, m := range task.eligible {
				if t := task.etc[m]; best == -1 || t < bestT {
					best, bestT = m, t
				}
			}
			return best
		})
	case MaxMin:
		return buildTwoStage(e, false)
	case Sufferage:
		return buildSufferage(e)
	default:
		panic("heuristics: unknown baseline")
	}
}

// taskView carries precomputed per-task data through the builders.
type taskView struct {
	index    int
	arrival  float64
	eligible []int
	etc      []float64 // per machine instance
}

func viewTasks(e *sched.Evaluator) []taskView {
	tasks := e.Trace().Tasks
	out := make([]taskView, len(tasks))
	for i := range tasks {
		tt := tasks[i].Type
		etc := make([]float64, e.NumMachines())
		for m := 0; m < e.NumMachines(); m++ {
			etc[m] = e.ETCInstance(tt, m)
		}
		out[i] = taskView{index: i, arrival: tasks[i].Arrival, eligible: e.Eligible(tt), etc: etc}
	}
	return out
}

func completionOn(task taskView, ready []float64, m int) float64 {
	start := ready[m]
	if task.arrival > start {
		start = task.arrival
	}
	return start + task.etc[m]
}

// buildArrivalOrder maps tasks in arrival order with a pluggable machine
// chooser; the global scheduling order is the arrival order.
func buildArrivalOrder(e *sched.Evaluator, choose func(taskView, []float64) int) *sched.Allocation {
	views := viewTasks(e)
	a := sched.NewAllocation(len(views))
	ready := make([]float64, e.NumMachines())
	for i, task := range views {
		m := choose(task, ready)
		a.Machine[i] = int32(m)
		ready[m] = completionOn(task, ready, m)
	}
	return a
}

// buildTwoStage implements Min-Min (minFirst=true) and Max-Min
// (minFirst=false): stage one finds every unmapped task's best machine;
// stage two picks the task with the smallest (respectively largest)
// best completion time.
func buildTwoStage(e *sched.Evaluator, minFirst bool) *sched.Allocation {
	views := viewTasks(e)
	n := len(views)
	a := sched.NewAllocation(n)
	ready := make([]float64, e.NumMachines())
	mapped := make([]bool, n)
	for step := 0; step < n; step++ {
		pick, pickM := -1, -1
		var pickC float64
		for i := range views {
			if mapped[i] {
				continue
			}
			bestM, bestC := -1, 0.0
			for _, m := range views[i].eligible {
				c := completionOn(views[i], ready, m)
				if bestM == -1 || c < bestC {
					bestM, bestC = m, c
				}
			}
			better := pick == -1
			if !better {
				if minFirst {
					better = bestC < pickC
				} else {
					better = bestC > pickC
				}
			}
			if better {
				pick, pickM, pickC = i, bestM, bestC
			}
		}
		a.Machine[pick] = int32(pickM)
		a.Order[pick] = int32(step)
		mapped[pick] = true
		ready[pickM] = pickC
	}
	return a
}

// buildSufferage maps, at each step, the unmapped task with the largest
// sufferage (best vs second-best completion-time gap), to its best
// machine.
func buildSufferage(e *sched.Evaluator) *sched.Allocation {
	views := viewTasks(e)
	n := len(views)
	a := sched.NewAllocation(n)
	ready := make([]float64, e.NumMachines())
	mapped := make([]bool, n)
	for step := 0; step < n; step++ {
		pick, pickM := -1, -1
		pickSuffer := math.Inf(-1)
		var pickC float64
		for i := range views {
			if mapped[i] {
				continue
			}
			best, second := math.Inf(1), math.Inf(1)
			bestM := -1
			for _, m := range views[i].eligible {
				c := completionOn(views[i], ready, m)
				switch {
				case c < best:
					second = best
					best, bestM = c, m
				case c < second:
					second = c
				}
			}
			suffer := second - best
			if math.IsInf(second, 1) {
				// Single eligible machine: treat as maximal sufferage so
				// constrained tasks are placed early.
				suffer = math.Inf(1)
			}
			if suffer > pickSuffer || (suffer == pickSuffer && pick != -1 && best < pickC) {
				pick, pickM, pickSuffer, pickC = i, bestM, suffer, best
			}
		}
		a.Machine[pick] = int32(pickM)
		a.Order[pick] = int32(step)
		mapped[pick] = true
		ready[pickM] = pickC
	}
	return a
}
