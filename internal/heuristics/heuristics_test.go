package heuristics

import (
	"math"
	"testing"

	"tradeoff/internal/data"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
	"tradeoff/internal/workload"
)

func newEval(t testing.TB, n int) *sched.Evaluator {
	t.Helper()
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: n, Window: 900}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sched.NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAllHeuristicsProduceValidAllocations(t *testing.T) {
	e := newEval(t, 120)
	for _, h := range All {
		a, err := h.Build(e)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if err := e.Validate(a); err != nil {
			t.Fatalf("%v produced invalid allocation: %v", h, err)
		}
	}
}

func TestUnknownHeuristicErrors(t *testing.T) {
	e := newEval(t, 5)
	if _, err := Heuristic(99).Build(e); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestMinEnergyAttainsMinimumEnergy(t *testing.T) {
	e := newEval(t, 150)
	a := BuildMinEnergy(e)
	got := e.Evaluate(a).Energy
	// Brute-force lower bound: sum over tasks of min EEC across eligible
	// machines (energy is separable and order-independent).
	var want float64
	for _, task := range e.Trace().Tasks {
		best := math.Inf(1)
		for _, m := range e.Eligible(task.Type) {
			if c := e.EECInstance(task.Type, m); c < best {
				best = c
			}
		}
		want += best
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("MinEnergy energy = %v, lower bound %v", got, want)
	}
	// No random allocation should beat it.
	src := rng.New(7)
	for i := 0; i < 50; i++ {
		r := e.RandomAllocation(src)
		if e.Evaluate(r).Energy < got-1e-9 {
			t.Fatal("random allocation consumed less energy than MinEnergy")
		}
	}
}

func TestMaxUtilityBeatsRandomOnUtility(t *testing.T) {
	e := newEval(t, 150)
	a := BuildMaxUtility(e)
	got := e.Evaluate(a).Utility
	src := rng.New(8)
	beaten := 0
	for i := 0; i < 50; i++ {
		r := e.RandomAllocation(src)
		if e.Evaluate(r).Utility > got {
			beaten++
		}
	}
	// Greedy has no optimality guarantee, but should beat essentially
	// every random allocation on utility.
	if beaten > 2 {
		t.Fatalf("MaxUtility beaten by %d/50 random allocations", beaten)
	}
}

func TestHeuristicsAreDeterministic(t *testing.T) {
	e := newEval(t, 80)
	for _, h := range All {
		a1, err := h.Build(e)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := h.Build(e)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a1.Machine {
			if a1.Machine[i] != a2.Machine[i] || a1.Order[i] != a2.Order[i] {
				t.Fatalf("%v not deterministic at task %d", h, i)
			}
		}
	}
}

func TestHeuristicsCoverDistinctTradeoffs(t *testing.T) {
	// The point of seeding: MinEnergy should consume less energy than
	// MaxUtility's solution, and MaxUtility should earn more utility than
	// MinEnergy's solution.
	e := newEval(t, 200)
	me := e.Evaluate(BuildMinEnergy(e))
	mu := e.Evaluate(BuildMaxUtility(e))
	if !(me.Energy < mu.Energy) {
		t.Fatalf("MinEnergy energy %v not below MaxUtility energy %v", me.Energy, mu.Energy)
	}
	if !(mu.Utility > me.Utility) {
		t.Fatalf("MaxUtility utility %v not above MinEnergy utility %v", mu.Utility, me.Utility)
	}
}

func TestMaxUtilityPerEnergyBetweenExtremes(t *testing.T) {
	e := newEval(t, 200)
	me := e.Evaluate(BuildMinEnergy(e))
	mu := e.Evaluate(BuildMaxUtility(e))
	upe := e.Evaluate(BuildMaxUtilityPerEnergy(e))
	// Its utility/energy ratio should be at least as good as both
	// extremes' ratios (it greedily optimizes exactly that).
	r := func(ev sched.Evaluation) float64 { return ev.Utility / ev.Energy }
	if r(upe) < r(me)*0.95 || r(upe) < r(mu)*0.95 {
		t.Fatalf("UPE ratio %v worse than extremes (%v, %v)", r(upe), r(me), r(mu))
	}
}

func TestMinMinMinimizesCompletionGreedily(t *testing.T) {
	e := newEval(t, 150)
	a := BuildMinMin(e)
	ev := e.Evaluate(a)
	// Min-Min targets completion time; its makespan should beat random
	// allocations' makespans essentially always.
	src := rng.New(9)
	worse := 0
	for i := 0; i < 50; i++ {
		r := e.RandomAllocation(src)
		if e.Evaluate(r).Makespan < ev.Makespan {
			worse++
		}
	}
	if worse > 2 {
		t.Fatalf("MinMin makespan beaten by %d/50 random allocations", worse)
	}
}

func TestMinMinOrderMatchesMappingSequence(t *testing.T) {
	e := newEval(t, 60)
	a := BuildMinMin(e)
	// Order must be a permutation (validated) and the earliest-mapped
	// task should be one whose arrival+ETC is minimal across the trace.
	if err := e.Validate(a); err != nil {
		t.Fatal(err)
	}
	first := -1
	for i, o := range a.Order {
		if o == 0 {
			first = i
			break
		}
	}
	if first == -1 {
		t.Fatal("no task mapped first")
	}
	task := e.Trace().Tasks[first]
	got := task.Arrival + e.ETCInstance(task.Type, int(a.Machine[first]))
	for _, other := range e.Trace().Tasks {
		for _, m := range e.Eligible(other.Type) {
			c := other.Arrival + e.ETCInstance(other.Type, m)
			if c < got-1e-9 {
				t.Fatalf("task %d could complete at %v before first-mapped %v", other.ID, c, got)
			}
		}
	}
}

func TestHeuristicString(t *testing.T) {
	want := map[Heuristic]string{
		MinEnergy:           "min-energy",
		MaxUtility:          "max-utility",
		MaxUtilityPerEnergy: "max-utility-per-energy",
		MinMin:              "min-min",
	}
	if len(want) != len(All) {
		t.Fatalf("want table covers %d heuristics, All has %d", len(want), len(All))
	}
	for _, h := range All {
		if h.String() != want[h] {
			t.Errorf("%d.String() = %q, want %q", int(h), h.String(), want[h])
		}
	}
	if Heuristic(42).String() == "" {
		t.Error("unknown heuristic empty string")
	}
}

func BenchmarkMinEnergy250(b *testing.B) { benchHeuristic(b, MinEnergy, 250) }
func BenchmarkMaxUtility250(b *testing.B) {
	benchHeuristic(b, MaxUtility, 250)
}
func BenchmarkMinMin250(b *testing.B)  { benchHeuristic(b, MinMin, 250) }
func BenchmarkMinMin1000(b *testing.B) { benchHeuristic(b, MinMin, 1000) }

func benchHeuristic(b *testing.B, h Heuristic, n int) {
	e := newEval(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Build(e); err != nil {
			b.Fatal(err)
		}
	}
}
