package heuristics

import (
	"math"
	"testing"

	"tradeoff/internal/rng"
)

func TestAllBaselinesProduceValidAllocations(t *testing.T) {
	e := newEval(t, 120)
	for _, b := range Baselines {
		a := b.Build(e)
		if err := e.Validate(a); err != nil {
			t.Fatalf("%v produced invalid allocation: %v", b, err)
		}
	}
}

func TestBaselinesDeterministic(t *testing.T) {
	e := newEval(t, 80)
	for _, b := range Baselines {
		a1, a2 := b.Build(e), b.Build(e)
		for i := range a1.Machine {
			if a1.Machine[i] != a2.Machine[i] || a1.Order[i] != a2.Order[i] {
				t.Fatalf("%v not deterministic", b)
			}
		}
	}
}

func TestMETMatchesPerTaskMinimumETC(t *testing.T) {
	e := newEval(t, 100)
	a := MET.Build(e)
	for i, task := range e.Trace().Tasks {
		best := math.Inf(1)
		for _, m := range e.Eligible(task.Type) {
			if c := e.ETCInstance(task.Type, m); c < best {
				best = c
			}
		}
		if got := e.ETCInstance(task.Type, int(a.Machine[i])); got != best {
			t.Fatalf("task %d: MET chose ETC %v, min is %v", i, got, best)
		}
	}
}

func TestMCTBeatsOLBOnMakespanUsually(t *testing.T) {
	// MCT considers execution time, OLB does not; on heterogeneous
	// machines MCT should not lose on makespan.
	e := newEval(t, 200)
	mct := e.Evaluate(MCT.Build(e))
	olb := e.Evaluate(OLB.Build(e))
	if mct.Makespan > olb.Makespan*1.05 {
		t.Fatalf("MCT makespan %v much worse than OLB %v", mct.Makespan, olb.Makespan)
	}
}

func TestMinMinVsMaxMinOrdering(t *testing.T) {
	// Max-Min maps long tasks first. Both must remain valid and produce
	// different mappings on a heterogeneous instance.
	e := newEval(t, 150)
	minmin := BuildMinMin(e)
	maxmin := MaxMin.Build(e)
	same := 0
	for i := range minmin.Machine {
		if minmin.Machine[i] == maxmin.Machine[i] {
			same++
		}
	}
	if same == len(minmin.Machine) {
		t.Fatal("Min-Min and Max-Min produced identical mappings")
	}
}

func TestSufferagePrioritizesConstrainedTasks(t *testing.T) {
	e := newEval(t, 120)
	a := Sufferage.Build(e)
	if err := e.Validate(a); err != nil {
		t.Fatal(err)
	}
	ev := e.Evaluate(a)
	// Sufferage targets completion time: it should beat random
	// allocations on makespan essentially always.
	src := rng.New(17)
	worse := 0
	for i := 0; i < 30; i++ {
		if e.Evaluate(e.RandomAllocation(src)).Makespan < ev.Makespan {
			worse++
		}
	}
	if worse > 2 {
		t.Fatalf("Sufferage beaten on makespan by %d/30 random allocations", worse)
	}
}

func TestBaselineStrings(t *testing.T) {
	want := map[Baseline]string{
		OLB: "olb", MCT: "mct", MET: "met", MaxMin: "max-min", Sufferage: "sufferage",
	}
	if len(want) != len(Baselines) {
		t.Fatalf("want table covers %d baselines, Baselines has %d", len(want), len(Baselines))
	}
	for _, b := range Baselines {
		if b.String() != want[b] {
			t.Errorf("%d.String() = %q", int(b), b.String())
		}
	}
	if Baseline(99).String() != "baseline-unknown" {
		t.Error("unknown baseline string wrong")
	}
}

func TestBaselinesLieWithinNSGA2ObjectiveSpace(t *testing.T) {
	// Sanity: every baseline's energy is at least the provable minimum
	// (Min-Energy) and its utility at most the trace's upper bound.
	e := newEval(t, 150)
	minEnergy := e.Evaluate(BuildMinEnergy(e)).Energy
	maxU := e.Trace().MaxUtility()
	for _, b := range Baselines {
		ev := e.Evaluate(b.Build(e))
		if ev.Energy < minEnergy-1e-6 {
			t.Fatalf("%v consumed %v J, below the provable minimum %v", b, ev.Energy, minEnergy)
		}
		if ev.Utility > maxU+1e-6 {
			t.Fatalf("%v earned %v utility, above the upper bound %v", b, ev.Utility, maxU)
		}
	}
}

func TestTwoStageMinFirstMatchesMinMin(t *testing.T) {
	// buildTwoStage(minFirst=true) must agree with the seeding Min-Min.
	e := newEval(t, 60)
	a := buildTwoStage(e, true)
	b := BuildMinMin(e)
	for i := range a.Machine {
		if a.Machine[i] != b.Machine[i] || a.Order[i] != b.Order[i] {
			t.Fatalf("two-stage min-first diverges from BuildMinMin at task %d", i)
		}
	}
}

func BenchmarkSufferage250(b *testing.B) {
	e := newEval(b, 250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Sufferage.Build(e)
	}
}

func BenchmarkMaxMin250(b *testing.B) {
	e := newEval(b, 250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MaxMin.Build(e)
	}
}
