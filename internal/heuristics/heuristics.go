// Package heuristics implements the greedy seeding heuristics of the
// paper's §V-B. Each heuristic deterministically produces one complete
// resource allocation that is injected into an NSGA-II initial population
// to pull the search toward a region of the objective space:
//
//   - Min Energy: per task (in arrival order), the machine with the
//     smallest expected energy consumption. Provably reaches the minimum
//     possible total energy.
//   - Max Utility: per task (in arrival order), the machine whose queue
//     yields the highest utility at the task's completion time.
//   - Max Utility-per-Energy: per task, the machine maximizing utility
//     earned per joule consumed.
//   - Min-Min Completion Time: the classic two-stage heuristic (Ibarra &
//     Kim; Braun et al.): repeatedly map the task whose best-machine
//     completion time is globally smallest.
//
// All heuristics return allocations whose global scheduling order equals
// the order in which they map tasks, and all run in time negligible
// compared to the genetic algorithm.
package heuristics

import (
	"fmt"

	"tradeoff/internal/sched"
)

// Heuristic names a deterministic seeding strategy.
type Heuristic int

const (
	// MinEnergy maps each task to its energy-minimizing machine.
	MinEnergy Heuristic = iota
	// MaxUtility maps each task to the machine maximizing its utility.
	MaxUtility
	// MaxUtilityPerEnergy maps each task to the machine maximizing
	// utility earned per unit energy.
	MaxUtilityPerEnergy
	// MinMin is the two-stage minimum-completion-time heuristic.
	MinMin
)

// All lists every heuristic in a stable order.
var All = []Heuristic{MinEnergy, MaxUtility, MaxUtilityPerEnergy, MinMin}

func (h Heuristic) String() string {
	switch h {
	case MinEnergy:
		return "min-energy"
	case MaxUtility:
		return "max-utility"
	case MaxUtilityPerEnergy:
		return "max-utility-per-energy"
	case MinMin:
		return "min-min"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// Build runs the heuristic against an evaluator's system and trace.
func (h Heuristic) Build(e *sched.Evaluator) (*sched.Allocation, error) {
	switch h {
	case MinEnergy:
		return BuildMinEnergy(e), nil
	case MaxUtility:
		return BuildMaxUtility(e), nil
	case MaxUtilityPerEnergy:
		return BuildMaxUtilityPerEnergy(e), nil
	case MinMin:
		return BuildMinMin(e), nil
	default:
		return nil, fmt.Errorf("heuristics: unknown heuristic %d", int(h))
	}
}

// BuildMinEnergy maps tasks in arrival order to the machine consuming the
// least energy for their type (§V-B1). The resulting allocation attains
// the minimum achievable total energy because energy is separable per
// task and independent of ordering.
func BuildMinEnergy(e *sched.Evaluator) *sched.Allocation {
	n := e.NumTasks()
	a := sched.NewAllocation(n)
	tasks := e.Trace().Tasks
	for i := 0; i < n; i++ {
		best, bestE := -1, 0.0
		for _, m := range e.Eligible(tasks[i].Type) {
			if c := e.EECInstance(tasks[i].Type, m); best == -1 || c < bestE {
				best, bestE = m, c
			}
		}
		a.Machine[i] = int32(best)
	}
	return a
}

// BuildMaxUtility maps tasks in arrival order to the machine that yields
// the highest utility given current machine queues (§V-B2), breaking ties
// toward earlier completion. There is no optimality guarantee.
func BuildMaxUtility(e *sched.Evaluator) *sched.Allocation {
	n := e.NumTasks()
	a := sched.NewAllocation(n)
	tasks := e.Trace().Tasks
	ready := make([]float64, e.NumMachines())
	for i := 0; i < n; i++ {
		task := &tasks[i]
		best, bestU, bestC := -1, 0.0, 0.0
		for _, m := range e.Eligible(task.Type) {
			start := ready[m]
			if task.Arrival > start {
				start = task.Arrival
			}
			completion := start + e.ETCInstance(task.Type, m)
			u := task.TUF.Value(completion - task.Arrival)
			if best == -1 || u > bestU || (u == bestU && completion < bestC) {
				best, bestU, bestC = m, u, completion
			}
		}
		a.Machine[i] = int32(best)
		ready[best] = bestC
	}
	return a
}

// BuildMaxUtilityPerEnergy maps tasks in arrival order to the machine
// maximizing utility earned per unit of energy consumed (§V-B3), breaking
// ties toward lower energy.
func BuildMaxUtilityPerEnergy(e *sched.Evaluator) *sched.Allocation {
	n := e.NumTasks()
	a := sched.NewAllocation(n)
	tasks := e.Trace().Tasks
	ready := make([]float64, e.NumMachines())
	for i := 0; i < n; i++ {
		task := &tasks[i]
		best := -1
		bestRatio, bestEnergy, bestC := 0.0, 0.0, 0.0
		for _, m := range e.Eligible(task.Type) {
			start := ready[m]
			if task.Arrival > start {
				start = task.Arrival
			}
			completion := start + e.ETCInstance(task.Type, m)
			u := task.TUF.Value(completion - task.Arrival)
			en := e.EECInstance(task.Type, m)
			ratio := u / en
			if best == -1 || ratio > bestRatio || (ratio == bestRatio && en < bestEnergy) {
				best, bestRatio, bestEnergy, bestC = m, ratio, en, completion
			}
		}
		a.Machine[i] = int32(best)
		ready[best] = bestC
	}
	return a
}

// BuildMinMin runs the two-stage Min-Min completion time heuristic
// (§V-B4). Stage one finds, for every unmapped task, the machine
// minimizing that task's completion time; stage two maps the task-machine
// pair with the overall minimum completion time, then repeats. The global
// scheduling order records the mapping sequence, so machines execute
// tasks in the order Min-Min chose them.
func BuildMinMin(e *sched.Evaluator) *sched.Allocation {
	n := e.NumTasks()
	a := sched.NewAllocation(n)
	tasks := e.Trace().Tasks
	ready := make([]float64, e.NumMachines())
	mapped := make([]bool, n)

	// bestFor computes stage one for a single task.
	bestFor := func(i int) (machine int, completion float64) {
		task := &tasks[i]
		machine = -1
		for _, m := range e.Eligible(task.Type) {
			start := ready[m]
			if task.Arrival > start {
				start = task.Arrival
			}
			c := start + e.ETCInstance(task.Type, m)
			if machine == -1 || c < completion {
				machine, completion = m, c
			}
		}
		return
	}

	// Cache each task's stage-one result; entries are invalidated lazily
	// when the chosen machine's ready time changes.
	bestM := make([]int, n)
	bestC := make([]float64, n)
	for i := 0; i < n; i++ {
		bestM[i], bestC[i] = bestFor(i)
	}

	for step := 0; step < n; step++ {
		// Stage two: pick the globally minimal completion pair.
		pick := -1
		for i := 0; i < n; i++ {
			if mapped[i] {
				continue
			}
			if pick == -1 || bestC[i] < bestC[pick] {
				pick = i
			}
		}
		a.Machine[pick] = int32(bestM[pick])
		a.Order[pick] = int32(step)
		mapped[pick] = true
		m := bestM[pick]
		ready[m] = bestC[pick]
		// Recompute stage one for tasks whose cached best machine just
		// got busier (other machines' ready times are unchanged, so their
		// cached values remain valid lower bounds that are still exact).
		for i := 0; i < n; i++ {
			if !mapped[i] && bestM[i] == m {
				bestM[i], bestC[i] = bestFor(i)
			}
		}
	}
	return a
}
