// Package analysis post-processes Pareto fronts the way the paper's §VI
// does: locating the region of maximum utility earned per energy spent
// (Fig. 5), quantifying front convergence across iteration checkpoints,
// and comparing fronts produced by differently seeded populations
// (Figs. 3, 4, 6).
package analysis

import (
	"fmt"
	"math"
	"sort"

	"tradeoff/internal/moea"
)

// FrontPoint is one resource allocation's objective pair.
type FrontPoint struct {
	Utility float64
	Energy  float64 // joules
}

// UPE returns the point's utility earned per unit energy spent.
func (p FrontPoint) UPE() float64 {
	if p.Energy == 0 {
		return 0
	}
	return p.Utility / p.Energy
}

// FromObjectives converts engine objective vectors ({utility, energy})
// into front points sorted by increasing energy.
func FromObjectives(points [][]float64) []FrontPoint {
	out := make([]FrontPoint, len(points))
	for i, p := range points {
		out[i] = FrontPoint{Utility: p[0], Energy: p[1]}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Energy < out[j].Energy })
	return out
}

// ToObjectives converts front points back to objective vectors.
func ToObjectives(points []FrontPoint) [][]float64 {
	out := make([][]float64, len(points))
	for i, p := range points {
		out[i] = []float64{p.Utility, p.Energy}
	}
	return out
}

// UPERegion is the outcome of the Fig. 5 analysis: the solutions that
// earn the most utility per energy spent, located by finding the peak of
// UPE against utility (subplot B) and against energy (subplot C) and
// translating both onto the front (subplot A).
type UPERegion struct {
	// Points is the analyzed front sorted by increasing energy.
	Points []FrontPoint
	// PeakIndex locates the maximum-UPE solution within Points.
	PeakIndex int
	// Peak is that solution.
	Peak FrontPoint
	// PeakUPE is its utility-per-energy value.
	PeakUPE float64
	// Lo and Hi bound the indices whose UPE is within Tolerance of the
	// peak — the circled region of the paper's figures.
	Lo, Hi int
	// Tolerance is the relative UPE band defining the region.
	Tolerance float64
}

// AnalyzeUPE locates the maximum utility-per-energy region of a front.
// tolerance is the relative band (e.g. 0.05 keeps solutions within 5% of
// the peak UPE). The input need not be sorted.
func AnalyzeUPE(points []FrontPoint, tolerance float64) (UPERegion, error) {
	if len(points) == 0 {
		return UPERegion{}, fmt.Errorf("analysis: empty front")
	}
	if tolerance < 0 || tolerance >= 1 {
		return UPERegion{}, fmt.Errorf("analysis: tolerance %v outside [0,1)", tolerance)
	}
	sorted := append([]FrontPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Energy < sorted[j].Energy })
	reg := UPERegion{Points: sorted, Tolerance: tolerance, PeakIndex: -1}
	for i, p := range sorted {
		if u := p.UPE(); reg.PeakIndex == -1 || u > reg.PeakUPE {
			reg.PeakIndex, reg.PeakUPE = i, u
		}
	}
	reg.Peak = sorted[reg.PeakIndex]
	floor := reg.PeakUPE * (1 - tolerance)
	reg.Lo, reg.Hi = reg.PeakIndex, reg.PeakIndex
	for reg.Lo > 0 && sorted[reg.Lo-1].UPE() >= floor {
		reg.Lo--
	}
	for reg.Hi < len(sorted)-1 && sorted[reg.Hi+1].UPE() >= floor {
		reg.Hi++
	}
	return reg, nil
}

// MarginalRates returns dU/dE between consecutive points of an
// energy-sorted front: the paper's observation that left of the peak the
// system earns relatively large utility for small energy increases, and
// right of it large energy buys little utility. Returns one rate per
// adjacent pair; pairs with zero energy difference yield +Inf (or 0 when
// the utility difference is also zero).
func MarginalRates(points []FrontPoint) []float64 {
	if len(points) < 2 {
		return nil
	}
	sorted := append([]FrontPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Energy < sorted[j].Energy })
	out := make([]float64, len(sorted)-1)
	for i := 1; i < len(sorted); i++ {
		dU := sorted[i].Utility - sorted[i-1].Utility
		dE := sorted[i].Energy - sorted[i-1].Energy
		switch {
		case dE != 0:
			out[i-1] = dU / dE
		case dU == 0:
			out[i-1] = 0
		default:
			out[i-1] = math.Inf(1)
		}
	}
	return out
}

// Checkpoint is one recorded front during an evolution run.
type Checkpoint struct {
	Generation int
	Front      []FrontPoint
}

// Convergence summarizes a sequence of checkpoints by hypervolume.
type Convergence struct {
	Generations  []int
	Hypervolumes []float64
	// Improvements[i] = HV[i+1] - HV[i].
	Improvements []float64
	// Reference is the common hypervolume reference point used.
	Reference []float64
}

// MeasureConvergence computes the hypervolume trajectory of checkpointed
// fronts with a shared reference point dominated by every recorded point.
func MeasureConvergence(cps []Checkpoint) (Convergence, error) {
	if len(cps) == 0 {
		return Convergence{}, fmt.Errorf("analysis: no checkpoints")
	}
	sp := moea.UtilityEnergySpace()
	sets := make([][][]float64, len(cps))
	for i, cp := range cps {
		sets[i] = ToObjectives(cp.Front)
	}
	ref := sp.ReferenceFrom(0.05, sets...)
	conv := Convergence{Reference: ref}
	for i, cp := range cps {
		conv.Generations = append(conv.Generations, cp.Generation)
		conv.Hypervolumes = append(conv.Hypervolumes, sp.Hypervolume2D(sets[i], ref))
	}
	for i := 1; i < len(conv.Hypervolumes); i++ {
		conv.Improvements = append(conv.Improvements, conv.Hypervolumes[i]-conv.Hypervolumes[i-1])
	}
	return conv, nil
}

// SeedComparison compares fronts obtained from differently seeded
// populations at one checkpoint.
type SeedComparison struct {
	Names []string
	// Coverage[i][j] = C(front_i, front_j): fraction of j's points
	// dominated by some point of i.
	Coverage [][]float64
	// Hypervolume per front under a common reference.
	Hypervolume []float64
}

// CompareSeeds computes pairwise coverage and common-reference
// hypervolume across named fronts (e.g. the five populations of Fig. 3).
func CompareSeeds(names []string, fronts [][]FrontPoint) (SeedComparison, error) {
	if len(names) != len(fronts) {
		return SeedComparison{}, fmt.Errorf("analysis: %d names for %d fronts", len(names), len(fronts))
	}
	if len(fronts) == 0 {
		return SeedComparison{}, fmt.Errorf("analysis: no fronts")
	}
	sp := moea.UtilityEnergySpace()
	sets := make([][][]float64, len(fronts))
	for i, f := range fronts {
		sets[i] = ToObjectives(f)
	}
	ref := sp.ReferenceFrom(0.05, sets...)
	cmp := SeedComparison{Names: append([]string(nil), names...)}
	for i := range sets {
		row := make([]float64, len(sets))
		for j := range sets {
			if i != j {
				row[j] = sp.Coverage(sets[i], sets[j])
			}
		}
		cmp.Coverage = append(cmp.Coverage, row)
		cmp.Hypervolume = append(cmp.Hypervolume, sp.Hypervolume2D(sets[i], ref))
	}
	return cmp, nil
}

// Dominates reports whether front a collectively dominates front b: every
// point of b is dominated by some point of a (the Fig. 6 relationship
// between seeded and random populations).
func Dominates(a, b []FrontPoint) bool {
	sp := moea.UtilityEnergySpace()
	return sp.Coverage(ToObjectives(a), ToObjectives(b)) == 1
}

// MergeFronts unions several fronts and returns the nondominated subset
// sorted by increasing energy — e.g. combining per-island fronts or the
// fronts of repeated runs into one best-known approximation.
func MergeFronts(fronts ...[]FrontPoint) []FrontPoint {
	var union []FrontPoint
	for _, f := range fronts {
		union = append(union, f...)
	}
	if len(union) == 0 {
		return nil
	}
	sp := moea.UtilityEnergySpace()
	objs := ToObjectives(union)
	keep := sp.ParetoFront(objs)
	out := make([]FrontPoint, 0, len(keep))
	seen := map[FrontPoint]bool{}
	for _, idx := range keep {
		p := union[idx]
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Energy < out[j].Energy })
	return out
}
