package analysis

import (
	"math"
	"testing"
)

// kneeFront builds a synthetic front with a clear knee: utility grows
// fast at low energy, then saturates.
func kneeFront() []FrontPoint {
	var pts []FrontPoint
	for e := 1.0; e <= 20; e++ {
		pts = append(pts, FrontPoint{Utility: 100 * (1 - math.Exp(-e/4)), Energy: e})
	}
	return pts
}

func TestFromToObjectivesRoundTrip(t *testing.T) {
	objs := [][]float64{{10, 5}, {20, 9}, {15, 7}}
	pts := FromObjectives(objs)
	// Sorted by energy.
	if pts[0].Energy != 5 || pts[1].Energy != 7 || pts[2].Energy != 9 {
		t.Fatalf("not sorted: %v", pts)
	}
	back := ToObjectives(pts)
	if back[0][0] != 10 || back[0][1] != 5 {
		t.Fatalf("roundtrip wrong: %v", back)
	}
}

func TestUPE(t *testing.T) {
	p := FrontPoint{Utility: 10, Energy: 4}
	if p.UPE() != 2.5 {
		t.Fatalf("UPE = %v", p.UPE())
	}
	z := FrontPoint{Utility: 10, Energy: 0}
	if z.UPE() != 0 {
		t.Fatalf("zero-energy UPE = %v, want 0 sentinel", z.UPE())
	}
}

func TestAnalyzeUPEFindsKnee(t *testing.T) {
	reg, err := AnalyzeUPE(kneeFront(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// For U = 100(1-exp(-e/4)), UPE peaks at small-but-not-minimal e.
	// Verify the peak is the argmax over the supplied points.
	for i, p := range reg.Points {
		if p.UPE() > reg.PeakUPE+1e-12 {
			t.Fatalf("point %d has UPE %v above reported peak %v", i, p.UPE(), reg.PeakUPE)
		}
	}
	if reg.Peak.UPE() != reg.PeakUPE {
		t.Fatal("Peak and PeakUPE disagree")
	}
	// Region bounds contain the peak and are within tolerance.
	if reg.Lo > reg.PeakIndex || reg.Hi < reg.PeakIndex {
		t.Fatalf("region [%d,%d] excludes peak %d", reg.Lo, reg.Hi, reg.PeakIndex)
	}
	floor := reg.PeakUPE * 0.95
	for i := reg.Lo; i <= reg.Hi; i++ {
		if reg.Points[i].UPE() < floor-1e-12 {
			t.Fatalf("region point %d below tolerance", i)
		}
	}
	// Points just outside the region must be below the floor.
	if reg.Lo > 0 && reg.Points[reg.Lo-1].UPE() >= floor {
		t.Fatal("region lower bound too tight")
	}
	if reg.Hi < len(reg.Points)-1 && reg.Points[reg.Hi+1].UPE() >= floor {
		t.Fatal("region upper bound too tight")
	}
}

func TestAnalyzeUPEErrors(t *testing.T) {
	if _, err := AnalyzeUPE(nil, 0.05); err == nil {
		t.Error("empty front accepted")
	}
	if _, err := AnalyzeUPE(kneeFront(), -0.1); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := AnalyzeUPE(kneeFront(), 1); err == nil {
		t.Error("tolerance 1 accepted")
	}
}

func TestAnalyzeUPESinglePoint(t *testing.T) {
	reg, err := AnalyzeUPE([]FrontPoint{{Utility: 5, Energy: 2}}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if reg.PeakIndex != 0 || reg.Lo != 0 || reg.Hi != 0 {
		t.Fatalf("single-point region wrong: %+v", reg)
	}
}

func TestMarginalRatesDecreaseAcrossKnee(t *testing.T) {
	rates := MarginalRates(kneeFront())
	if len(rates) != 19 {
		t.Fatalf("%d rates, want 19", len(rates))
	}
	// Concave utility: marginal utility per energy must decrease.
	for i := 1; i < len(rates); i++ {
		if rates[i] > rates[i-1]+1e-9 {
			t.Fatalf("marginal rate increased at %d: %v -> %v", i, rates[i-1], rates[i])
		}
	}
}

func TestMarginalRatesEdgeCases(t *testing.T) {
	if MarginalRates(nil) != nil {
		t.Error("nil input should give nil")
	}
	if MarginalRates([]FrontPoint{{1, 1}}) != nil {
		t.Error("single point should give nil")
	}
	rates := MarginalRates([]FrontPoint{{1, 1}, {2, 1}})
	if !math.IsInf(rates[0], 1) {
		t.Errorf("zero dE with dU > 0 should be +Inf, got %v", rates[0])
	}
	rates = MarginalRates([]FrontPoint{{1, 1}, {1, 1}})
	if rates[0] != 0 {
		t.Errorf("identical points rate = %v, want 0", rates[0])
	}
}

func TestMeasureConvergence(t *testing.T) {
	cps := []Checkpoint{
		{Generation: 10, Front: []FrontPoint{{10, 10}, {5, 5}}},
		{Generation: 100, Front: []FrontPoint{{12, 9}, {6, 4}}},
		{Generation: 1000, Front: []FrontPoint{{14, 8}, {7, 3}}},
	}
	conv, err := MeasureConvergence(cps)
	if err != nil {
		t.Fatal(err)
	}
	if len(conv.Hypervolumes) != 3 || len(conv.Improvements) != 2 {
		t.Fatalf("lengths wrong: %+v", conv)
	}
	// Each later front dominates the previous, so HV must increase.
	for i, imp := range conv.Improvements {
		if imp <= 0 {
			t.Fatalf("improvement %d = %v, want > 0", i, imp)
		}
	}
	if conv.Generations[2] != 1000 {
		t.Fatal("generations not recorded")
	}
}

func TestMeasureConvergenceEmpty(t *testing.T) {
	if _, err := MeasureConvergence(nil); err == nil {
		t.Fatal("empty checkpoint list accepted")
	}
}

func TestCompareSeeds(t *testing.T) {
	better := []FrontPoint{{Utility: 10, Energy: 1}, {Utility: 20, Energy: 2}}
	worse := []FrontPoint{{Utility: 9, Energy: 1.5}, {Utility: 18, Energy: 3}}
	cmp, err := CompareSeeds([]string{"seeded", "random"}, [][]FrontPoint{better, worse})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Coverage[0][1] != 1 {
		t.Fatalf("better front covers %v of worse, want 1", cmp.Coverage[0][1])
	}
	if cmp.Coverage[1][0] != 0 {
		t.Fatalf("worse front covers %v of better, want 0", cmp.Coverage[1][0])
	}
	if !(cmp.Hypervolume[0] > cmp.Hypervolume[1]) {
		t.Fatalf("hypervolumes %v not ordered", cmp.Hypervolume)
	}
	if cmp.Coverage[0][0] != 0 {
		t.Fatal("self-coverage should be 0 by convention")
	}
}

func TestCompareSeedsErrors(t *testing.T) {
	if _, err := CompareSeeds([]string{"a"}, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := CompareSeeds(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestDominates(t *testing.T) {
	a := []FrontPoint{{Utility: 10, Energy: 1}}
	b := []FrontPoint{{Utility: 5, Energy: 2}, {Utility: 8, Energy: 3}}
	if !Dominates(a, b) {
		t.Fatal("a should dominate b")
	}
	if Dominates(b, a) {
		t.Fatal("b should not dominate a")
	}
	// Partial domination is not collective domination.
	c := []FrontPoint{{Utility: 5, Energy: 2}, {Utility: 50, Energy: 0.5}}
	if Dominates(a, c) {
		t.Fatal("a should not dominate c")
	}
}

func TestMergeFronts(t *testing.T) {
	a := []FrontPoint{{Utility: 10, Energy: 1}, {Utility: 20, Energy: 5}}
	b := []FrontPoint{{Utility: 15, Energy: 2}, {Utility: 5, Energy: 3}} // second dominated by a[0]? u5<u10,e3>e1 yes dominated
	merged := MergeFronts(a, b)
	// {5,3} is dominated by {10,1}; the rest survive.
	if len(merged) != 3 {
		t.Fatalf("merged front = %v", merged)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Energy < merged[i-1].Energy {
			t.Fatal("merged front not energy-sorted")
		}
	}
	if MergeFronts() != nil {
		t.Fatal("empty merge should be nil")
	}
}

func TestMergeFrontsDeduplicates(t *testing.T) {
	a := []FrontPoint{{Utility: 10, Energy: 1}}
	merged := MergeFronts(a, a, a)
	if len(merged) != 1 {
		t.Fatalf("duplicates kept: %v", merged)
	}
}
