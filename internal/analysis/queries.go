package analysis

import (
	"fmt"
	"math"
	"sort"
)

// Operating-point queries: the questions a system administrator asks a
// finished front ("what can I get for this energy budget?", "what does
// this utility target cost?"), plus a curvature-based knee detector that
// complements the UPE-peak region of Fig. 5.

// BestUnderBudget returns the index of the highest-utility front point
// whose energy does not exceed the budget, or -1 if even the frugal end
// exceeds it. The input need not be sorted.
func BestUnderBudget(points []FrontPoint, budget float64) int {
	best := -1
	for i, p := range points {
		if p.Energy > budget {
			continue
		}
		if best == -1 || p.Utility > points[best].Utility ||
			(p.Utility == points[best].Utility && p.Energy < points[best].Energy) {
			best = i
		}
	}
	return best
}

// CheapestAtUtility returns the index of the lowest-energy front point
// earning at least the target utility, or -1 if the target is
// unattainable on this front.
func CheapestAtUtility(points []FrontPoint, target float64) int {
	best := -1
	for i, p := range points {
		if p.Utility < target {
			continue
		}
		if best == -1 || p.Energy < points[best].Energy ||
			(p.Energy == points[best].Energy && p.Utility > points[best].Utility) {
			best = i
		}
	}
	return best
}

// Knee locates the front point of maximum curvature using the normalized
// perpendicular-distance-to-chord method: objectives are scaled to
// [0,1], a chord is drawn between the front's extremes, and the point
// farthest from the chord is the knee. It returns the index into the
// energy-sorted copy it also returns. Fronts with fewer than 3 points
// return index 0.
func Knee(points []FrontPoint) (int, []FrontPoint, error) {
	if len(points) == 0 {
		return 0, nil, fmt.Errorf("analysis: empty front")
	}
	sorted := append([]FrontPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Energy < sorted[j].Energy })
	if len(sorted) < 3 {
		return 0, sorted, nil
	}
	eLo, eHi := sorted[0].Energy, sorted[len(sorted)-1].Energy
	uLo, uHi := math.Inf(1), math.Inf(-1)
	for _, p := range sorted {
		uLo = math.Min(uLo, p.Utility)
		uHi = math.Max(uHi, p.Utility)
	}
	eSpan, uSpan := eHi-eLo, uHi-uLo
	if eSpan == 0 || uSpan == 0 {
		return 0, sorted, nil
	}
	// Normalized endpoints of the chord.
	x0, y0 := 0.0, (sorted[0].Utility-uLo)/uSpan
	x1, y1 := 1.0, (sorted[len(sorted)-1].Utility-uLo)/uSpan
	dx, dy := x1-x0, y1-y0
	norm := math.Hypot(dx, dy)
	bestIdx, bestDist := 0, -1.0
	for i, p := range sorted {
		px := (p.Energy - eLo) / eSpan
		py := (p.Utility - uLo) / uSpan
		// Perpendicular distance from (px,py) to the chord.
		dist := math.Abs(dy*px-dx*py+x1*y0-y1*x0) / norm
		if dist > bestDist {
			bestIdx, bestDist = i, dist
		}
	}
	return bestIdx, sorted, nil
}

// Interpolate returns the utility the front can earn at exactly the
// given energy, linearly interpolating between the two bracketing points
// of the energy-sorted front. Energies outside the front's range clamp
// to the nearest endpoint.
func Interpolate(points []FrontPoint, energy float64) (float64, error) {
	if len(points) == 0 {
		return 0, fmt.Errorf("analysis: empty front")
	}
	sorted := append([]FrontPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Energy < sorted[j].Energy })
	if energy <= sorted[0].Energy {
		return sorted[0].Utility, nil
	}
	if energy >= sorted[len(sorted)-1].Energy {
		return sorted[len(sorted)-1].Utility, nil
	}
	i := sort.Search(len(sorted), func(k int) bool { return sorted[k].Energy >= energy })
	a, b := sorted[i-1], sorted[i]
	if b.Energy == a.Energy {
		return math.Max(a.Utility, b.Utility), nil
	}
	frac := (energy - a.Energy) / (b.Energy - a.Energy)
	return a.Utility + frac*(b.Utility-a.Utility), nil
}
