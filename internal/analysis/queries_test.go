package analysis

import (
	"math"
	"testing"
)

var tradeFront = []FrontPoint{
	{Utility: 10, Energy: 1},
	{Utility: 30, Energy: 2},
	{Utility: 45, Energy: 3},
	{Utility: 50, Energy: 5},
	{Utility: 52, Energy: 9},
}

func TestBestUnderBudget(t *testing.T) {
	if got := BestUnderBudget(tradeFront, 3.5); got != 2 {
		t.Fatalf("budget 3.5 -> index %d, want 2", got)
	}
	if got := BestUnderBudget(tradeFront, 100); got != 4 {
		t.Fatalf("huge budget -> index %d, want 4", got)
	}
	if got := BestUnderBudget(tradeFront, 0.5); got != -1 {
		t.Fatalf("tiny budget -> index %d, want -1", got)
	}
}

func TestBestUnderBudgetTieBreaksOnEnergy(t *testing.T) {
	pts := []FrontPoint{{Utility: 10, Energy: 3}, {Utility: 10, Energy: 2}}
	if got := BestUnderBudget(pts, 5); got != 1 {
		t.Fatalf("tie -> index %d, want cheaper point 1", got)
	}
}

func TestCheapestAtUtility(t *testing.T) {
	if got := CheapestAtUtility(tradeFront, 40); got != 2 {
		t.Fatalf("target 40 -> index %d, want 2", got)
	}
	if got := CheapestAtUtility(tradeFront, 5); got != 0 {
		t.Fatalf("target 5 -> index %d, want 0", got)
	}
	if got := CheapestAtUtility(tradeFront, 99); got != -1 {
		t.Fatalf("target 99 -> index %d, want -1", got)
	}
}

func TestKneeOnConcaveFront(t *testing.T) {
	idx, sorted, err := Knee(kneeFront())
	if err != nil {
		t.Fatal(err)
	}
	// The knee of 100(1-exp(-e/4)) over [1,20] sits at small-but-not-
	// minimal energy; it must be strictly interior.
	if idx <= 0 || idx >= len(sorted)-1 {
		t.Fatalf("knee index %d not interior", idx)
	}
	// Left of the knee the marginal rate is higher than right of it.
	left := (sorted[idx].Utility - sorted[0].Utility) / (sorted[idx].Energy - sorted[0].Energy)
	right := (sorted[len(sorted)-1].Utility - sorted[idx].Utility) / (sorted[len(sorted)-1].Energy - sorted[idx].Energy)
	if !(left > right) {
		t.Fatalf("knee does not separate steep from flat: left %v right %v", left, right)
	}
}

func TestKneeEdgeCases(t *testing.T) {
	if _, _, err := Knee(nil); err == nil {
		t.Fatal("empty front accepted")
	}
	idx, sorted, err := Knee([]FrontPoint{{1, 1}, {2, 2}})
	if err != nil || idx != 0 || len(sorted) != 2 {
		t.Fatalf("2-point knee: %d %v %v", idx, sorted, err)
	}
	// Degenerate span: all same energy.
	idx, _, err = Knee([]FrontPoint{{1, 5}, {2, 5}, {3, 5}})
	if err != nil || idx != 0 {
		t.Fatalf("degenerate span knee: %d %v", idx, err)
	}
}

func TestInterpolate(t *testing.T) {
	u, err := Interpolate(tradeFront, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-37.5) > 1e-12 {
		t.Fatalf("Interpolate(2.5) = %v, want 37.5", u)
	}
	// Clamping.
	if u, _ := Interpolate(tradeFront, 0); u != 10 {
		t.Fatalf("below range = %v", u)
	}
	if u, _ := Interpolate(tradeFront, 100); u != 52 {
		t.Fatalf("above range = %v", u)
	}
	if _, err := Interpolate(nil, 1); err == nil {
		t.Fatal("empty front accepted")
	}
}

func TestInterpolateExactPoint(t *testing.T) {
	u, err := Interpolate(tradeFront, 3)
	if err != nil {
		t.Fatal(err)
	}
	if u != 45 {
		t.Fatalf("Interpolate at exact point = %v, want 45", u)
	}
}

func TestInterpolateMonotoneOnFront(t *testing.T) {
	prev := -1.0
	for e := 1.0; e <= 9; e += 0.1 {
		u, err := Interpolate(tradeFront, e)
		if err != nil {
			t.Fatal(err)
		}
		if u < prev-1e-12 {
			t.Fatalf("interpolated utility decreased at %v", e)
		}
		prev = u
	}
}
