package nsga2

import "testing"

// FuzzRepairOrder feeds arbitrary byte strings as order arrays and
// checks the permutation and order-preservation invariants.
func FuzzRepairOrder(f *testing.F) {
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6})
	f.Add([]byte{255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 {
			return
		}
		n := len(raw)
		ord := make([]int32, n)
		for i, b := range raw {
			ord[i] = int32(int(b) % n)
		}
		before := append([]int32(nil), ord...)
		repairOrder(ord)
		seen := make([]bool, n)
		for _, v := range ord {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("not a permutation: %v", ord)
			}
			seen[v] = true
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if before[i] < before[j] && ord[i] > ord[j] {
					t.Fatalf("relative order broken between %d and %d", i, j)
				}
			}
		}
	})
}
