package nsga2

import (
	"sync/atomic"
	"testing"

	"tradeoff/internal/obs"
	"tradeoff/internal/rng"
)

// tickClock returns an obs.Clock advancing by step on every reading, so
// every phase bracket records a nonzero duration. Atomic, because a
// shared timer hands the clock to every async island goroutine.
func tickClock(step int64) obs.Clock {
	var t atomic.Int64
	return func() int64 {
		return t.Add(step)
	}
}

func TestPhaseTimerDoesNotChangeResults(t *testing.T) {
	eval := newEval(t, 30)
	newEng := func() *Engine {
		eng, err := New(eval, Config{PopulationSize: 12}, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	plain, timed := newEng(), newEng()
	timed.SetObserver(&recorder{})
	timed.SetPhaseTimer(obs.NewPhaseTimer(tickClock(7)))
	plain.Run(20)
	timed.Run(20)
	pp, tp := plain.Population(), timed.Population()
	for i := range pp {
		if pp[i].Rank != tp[i].Rank || pp[i].Crowding != tp[i].Crowding {
			t.Fatalf("individual %d rank/crowding diverged with phase timer attached", i)
		}
		for m := range pp[i].Objectives {
			if pp[i].Objectives[m] != tp[i].Objectives[m] {
				t.Fatalf("individual %d objective %d diverged: %v vs %v",
					i, m, pp[i].Objectives[m], tp[i].Objectives[m])
			}
		}
		for g := range pp[i].Alloc.Machine {
			if pp[i].Alloc.Machine[g] != tp[i].Alloc.Machine[g] || pp[i].Alloc.Order[g] != tp[i].Alloc.Order[g] {
				t.Fatalf("individual %d gene %d diverged", i, g)
			}
		}
	}
}

func TestPhaseTimerBracketsEveryStepPhase(t *testing.T) {
	eng := newEngine(t, 30, Config{PopulationSize: 10}, 23)
	pt := obs.NewPhaseTimer(tickClock(3))
	eng.SetPhaseTimer(pt)
	const gens = 5
	eng.Run(gens)

	cnt, tot := pt.Counts(), pt.Totals()
	// Step brackets select, variation, eval, and sort every generation;
	// the cache brackets fire too because memoization is on by default.
	for _, p := range []obs.Phase{obs.PhaseSelect, obs.PhaseVariation,
		obs.PhaseCacheProbe, obs.PhaseEval, obs.PhaseCacheInsert, obs.PhaseSort} {
		if cnt[p] != gens {
			t.Errorf("phase %s bracketed %d times, want %d", p, cnt[p], gens)
		}
		if tot[p] <= 0 {
			t.Errorf("phase %s recorded %dns, want > 0", p, tot[p])
		}
	}
	// A plain engine run never records archive or migration time.
	for _, p := range []obs.Phase{obs.PhaseArchive, obs.PhaseMigration} {
		if cnt[p] != 0 || tot[p] != 0 {
			t.Errorf("phase %s recorded %d brackets / %dns on a plain engine", p, cnt[p], tot[p])
		}
	}
}

func TestPhaseTimerCacheBracketsFollowCacheConfig(t *testing.T) {
	eng := newEngine(t, 20, Config{PopulationSize: 10, CacheCapacity: -1}, 29)
	pt := obs.NewPhaseTimer(tickClock(3))
	eng.SetPhaseTimer(pt)
	eng.Run(3)
	cnt := pt.Counts()
	if cnt[obs.PhaseCacheProbe] != 0 || cnt[obs.PhaseCacheInsert] != 0 {
		t.Fatalf("cache brackets %d/%d with memoization disabled, want 0/0",
			cnt[obs.PhaseCacheProbe], cnt[obs.PhaseCacheInsert])
	}
	if cnt[obs.PhaseEval] != 3 {
		t.Fatalf("eval bracketed %d times, want 3", cnt[obs.PhaseEval])
	}
}

func TestPhaseNanosPerGenerationDiffs(t *testing.T) {
	eng := newEngine(t, 30, Config{PopulationSize: 10}, 31)
	rec := &recorder{}
	eng.SetObserver(rec)
	pt := obs.NewPhaseTimer(tickClock(5))
	eng.SetPhaseTimer(pt)
	const gens = 4
	eng.Run(gens)

	if len(rec.gens) != gens {
		t.Fatalf("%d generation events, want %d", len(rec.gens), gens)
	}
	var sum obs.PhaseTotals
	for i, g := range rec.gens {
		// Every generation's breakdown covers the per-step phases and
		// only those: archive and migration never run here.
		for _, p := range []obs.Phase{obs.PhaseSelect, obs.PhaseVariation, obs.PhaseEval, obs.PhaseSort} {
			if g.PhaseNanos[p] <= 0 {
				t.Fatalf("event %d: phase %s %dns, want > 0", i, p, g.PhaseNanos[p])
			}
		}
		if g.PhaseNanos[obs.PhaseArchive] != 0 || g.PhaseNanos[obs.PhaseMigration] != 0 {
			t.Fatalf("event %d: archive/migration time on a plain engine step", i)
		}
		for p := range sum {
			sum[p] += g.PhaseNanos[p]
		}
	}
	// The per-generation diffs partition the timer's cumulative totals.
	if sum != pt.Totals() {
		t.Fatalf("per-generation phase sums %v != timer totals %v", sum, pt.Totals())
	}
}

func TestPhaseNanosZeroWithoutTimer(t *testing.T) {
	eng := newEngine(t, 20, Config{PopulationSize: 10}, 37)
	rec := &recorder{}
	eng.SetObserver(rec)
	eng.Run(2)
	for i, g := range rec.gens {
		if g.PhaseNanos != (obs.PhaseTotals{}) {
			t.Fatalf("event %d: nonzero PhaseNanos without a timer: %v", i, g.PhaseNanos)
		}
		if g.PhaseTotalNanos() != 0 {
			t.Fatalf("event %d: PhaseTotalNanos %d", i, g.PhaseTotalNanos())
		}
	}
}

func TestIslandsPhaseTimerRecordsMigration(t *testing.T) {
	for _, async := range []bool{false, true} {
		name := "sync"
		if async {
			name = "async"
		}
		t.Run(name, func(t *testing.T) {
			is := newIslands(t, 40, IslandConfig{
				Islands:           3,
				MigrationInterval: 4,
				Migrants:          1,
				Async:             async,
				Engine:            Config{PopulationSize: 8},
			}, 7)
			pt := obs.NewPhaseTimer(tickClock(2))
			is.SetPhaseTimer(pt)
			is.Run(8) // two migration exchanges

			cnt, tot := pt.Counts(), pt.Totals()
			if cnt[obs.PhaseMigration] == 0 || tot[obs.PhaseMigration] <= 0 {
				t.Fatalf("migration phase %d brackets / %dns, want recorded work",
					cnt[obs.PhaseMigration], tot[obs.PhaseMigration])
			}
			// The shared timer aggregates the engine phases of all three
			// islands: 8 generations x 3 islands = 24 step brackets each.
			for _, p := range []obs.Phase{obs.PhaseSelect, obs.PhaseVariation, obs.PhaseEval, obs.PhaseSort} {
				if cnt[p] != 24 {
					t.Errorf("phase %s bracketed %d times, want 24", p, cnt[p])
				}
			}
		})
	}
}

func TestIslandsPhaseTimerDoesNotChangeResults(t *testing.T) {
	run := func(timed bool) [][]float64 {
		is := newIslands(t, 40, IslandConfig{
			Islands:           2,
			MigrationInterval: 4,
			Migrants:          1,
			Engine:            Config{PopulationSize: 8},
		}, 3)
		if timed {
			is.SetPhaseTimer(obs.NewPhaseTimer(tickClock(11)))
			is.SetHealth(obs.NewIslandBoard(obs.NewRegistry(), 2))
		}
		is.Run(12)
		return is.FrontPoints()
	}
	plain, timed := run(false), run(true)
	if len(plain) != len(timed) {
		t.Fatalf("front sizes diverged: %d vs %d", len(plain), len(timed))
	}
	for i := range plain {
		if plain[i][0] != timed[i][0] || plain[i][1] != timed[i][1] {
			t.Fatalf("front point %d diverged: %v vs %v", i, plain[i], timed[i])
		}
	}
}
